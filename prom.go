package gompi

import (
	"fmt"
	"io"

	"gompi/internal/hist"
	"gompi/internal/metrics"
)

// WriteProm renders the snapshot in the Prometheus text exposition
// format: one summary per latency histogram (quantiles 0.5/0.9/0.99
// plus _sum and _count), counters for the transport paths and matching
// engine, and gauges for queue high waters and virtual cycles. Each
// series carries a rank label; rank="all" is the job-wide merge. Values
// are virtual cycles or counts — there is no wall-clock anywhere in the
// model.
func (s *Stats) WriteProm(w io.Writer) error {
	type lat struct {
		name string
		get  func(metrics.LatSnapshot) hist.Snapshot
	}
	lats := []lat{
		{"gompi_post_match_cycles", func(l metrics.LatSnapshot) hist.Snapshot { return l.PostMatch }},
		{"gompi_unexpected_residency_cycles", func(l metrics.LatSnapshot) hist.Snapshot { return l.UnexRes }},
		{"gompi_rendezvous_rtt_cycles", func(l metrics.LatSnapshot) hist.Snapshot { return l.RndvRTT }},
		{"gompi_request_lifetime_cycles", func(l metrics.LatSnapshot) hist.Snapshot { return l.ReqLife }},
		{"gompi_wait_park_cycles", func(l metrics.LatSnapshot) hist.Snapshot { return l.WaitPark }},
		{"gompi_rma_epoch_flush_cycles", func(l metrics.LatSnapshot) hist.Snapshot { return l.EpochFlush }},
		{"gompi_rma_notify_wait_cycles", func(l metrics.LatSnapshot) hist.Snapshot { return l.NotifyWait }},
	}
	agg := s.Aggregate()
	row := func(rank string, m metrics.Snapshot) {
		for _, l := range lats {
			h := l.get(m.Lat)
			fmt.Fprintf(w, "%s{rank=%q,quantile=\"0.5\"} %d\n", l.name, rank, h.P50)
			fmt.Fprintf(w, "%s{rank=%q,quantile=\"0.9\"} %d\n", l.name, rank, h.P90)
			fmt.Fprintf(w, "%s{rank=%q,quantile=\"0.99\"} %d\n", l.name, rank, h.P99)
			fmt.Fprintf(w, "%s_sum{rank=%q} %d\n", l.name, rank, h.Sum)
			fmt.Fprintf(w, "%s_count{rank=%q} %d\n", l.name, rank, h.Count)
		}
		paths := []struct {
			name string
			p    metrics.PathStat
		}{
			{"self", m.Self}, {"shm_send", m.ShmSend}, {"shm_recv", m.ShmRecv},
			{"net_send", m.NetSend}, {"net_recv", m.NetRecv},
			{"eager", m.Eager}, {"rendezvous", m.Rndv},
			{"am_send", m.AmSend}, {"am_recv", m.AmRecv},
		}
		for _, p := range paths {
			fmt.Fprintf(w, "gompi_path_msgs_total{rank=%q,path=%q} %d\n", rank, p.name, p.p.Msgs)
			fmt.Fprintf(w, "gompi_path_bytes_total{rank=%q,path=%q} %d\n", rank, p.name, p.p.Bytes)
		}
		rmaOps := []struct {
			name string
			n    int64
		}{
			{"put", m.Rma.Puts}, {"get", m.Rma.Gets}, {"accumulate", m.Rma.Accs},
			{"get_accumulate", m.Rma.GetAccs}, {"flush", m.Rma.Flushes},
			{"lock_all", m.Rma.LockAlls}, {"notify", m.Rma.Notifies},
		}
		for _, o := range rmaOps {
			fmt.Fprintf(w, "gompi_rma_ops_total{rank=%q,op=%q} %d\n", rank, o.name, o.n)
		}
		fmt.Fprintf(w, "gompi_match_searches_total{rank=%q} %d\n", rank, m.Match.Searches)
		fmt.Fprintf(w, "gompi_match_bin_ops_total{rank=%q} %d\n", rank, m.Match.BinOps)
		fmt.Fprintf(w, "gompi_unexpected_queue_max{rank=%q} %d\n", rank, m.Match.UnexpectedMax)
		fmt.Fprintf(w, "gompi_posted_queue_max{rank=%q} %d\n", rank, m.Match.PostedMax)
		fmt.Fprintf(w, "gompi_sched_cache_hits_total{rank=%q} %d\n", rank, m.Sched.CacheHits)
		fmt.Fprintf(w, "gompi_sched_cache_misses_total{rank=%q} %d\n", rank, m.Sched.CacheMisses)
		fmt.Fprintf(w, "gompi_partitions_ready_total{rank=%q} %d\n", rank, m.Sched.PartitionsReady)
	}
	fmt.Fprintln(w, "# TYPE gompi_post_match_cycles summary")
	fmt.Fprintln(w, "# TYPE gompi_unexpected_residency_cycles summary")
	fmt.Fprintln(w, "# TYPE gompi_rendezvous_rtt_cycles summary")
	fmt.Fprintln(w, "# TYPE gompi_request_lifetime_cycles summary")
	fmt.Fprintln(w, "# TYPE gompi_wait_park_cycles summary")
	fmt.Fprintln(w, "# TYPE gompi_rma_epoch_flush_cycles summary")
	fmt.Fprintln(w, "# TYPE gompi_rma_notify_wait_cycles summary")
	fmt.Fprintln(w, "# TYPE gompi_path_msgs_total counter")
	fmt.Fprintln(w, "# TYPE gompi_path_bytes_total counter")
	fmt.Fprintln(w, "# TYPE gompi_rma_ops_total counter")
	fmt.Fprintln(w, "# TYPE gompi_sched_cache_hits_total counter")
	fmt.Fprintln(w, "# TYPE gompi_sched_cache_misses_total counter")
	fmt.Fprintln(w, "# TYPE gompi_partitions_ready_total counter")
	row("all", agg)
	for i := range s.Ranks {
		r := &s.Ranks[i]
		row(fmt.Sprintf("%d", r.Rank), r.Metrics)
		fmt.Fprintf(w, "gompi_virtual_cycles{rank=\"%d\"} %d\n", r.Rank, r.VirtualCycles)
	}
	fmt.Fprintf(w, "gompi_watchdog_trips_total %d\n", s.WatchdogTrips)

	// POP efficiency hierarchy: run-level gauges, plus one series per
	// named phase region. Values are dimensionless fractions in [0,1].
	eff := s.Efficiency()
	gauges := []struct {
		name string
		get  func(m EfficiencyMetrics) float64
	}{
		{"gompi_efficiency_parallel", func(m EfficiencyMetrics) float64 { return m.ParallelEff }},
		{"gompi_efficiency_load_balance", func(m EfficiencyMetrics) float64 { return m.LoadBalance }},
		{"gompi_efficiency_communication", func(m EfficiencyMetrics) float64 { return m.CommEff }},
		{"gompi_efficiency_serialization", func(m EfficiencyMetrics) float64 { return m.SerEff }},
		{"gompi_efficiency_transfer", func(m EfficiencyMetrics) float64 { return m.TransferEff }},
	}
	for _, g := range gauges {
		fmt.Fprintf(w, "# TYPE %s gauge\n", g.name)
		fmt.Fprintf(w, "%s %g\n", g.name, g.get(eff.Metrics))
		for _, ph := range eff.Phases {
			fmt.Fprintf(w, "%s{phase=%q} %g\n", g.name, ph.Name, g.get(ph.Metrics))
		}
	}
	return nil
}
