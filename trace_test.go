package gompi

import (
	"fmt"
	"strings"
	"testing"
)

func TestTraceRecordsOperations(t *testing.T) {
	run(t, 2, Config{Fabric: "ofi", Trace: true}, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			if err := w.Send(make([]byte, 16), 16, Byte, 1, 0); err != nil {
				return err
			}
		} else {
			buf := make([]byte, 16)
			if _, err := w.Recv(buf, 16, Byte, 0, 0); err != nil {
				return err
			}
		}
		if err := w.Barrier(); err != nil {
			return err
		}

		events := p.TraceEvents()
		if len(events) == 0 {
			return fmt.Errorf("no events recorded")
		}
		kinds := map[string]int{}
		var prev int64 = -1
		for _, e := range events {
			kinds[e.Kind.String()]++
			if int64(e.Start) < prev {
				return fmt.Errorf("events out of order")
			}
			prev = int64(e.Start)
			if e.End < e.Start {
				return fmt.Errorf("negative duration: %+v", e)
			}
		}
		if kinds["collective"] == 0 {
			return fmt.Errorf("barrier not traced: %v", kinds)
		}
		if p.Rank() == 0 && kinds["send"] == 0 {
			return fmt.Errorf("send not traced: %v", kinds)
		}
		if p.Rank() == 1 && (kinds["recv"] == 0 || kinds["wait"] == 0) {
			return fmt.Errorf("recv/wait not traced: %v", kinds)
		}
		// Send events carry peer and bytes.
		if p.Rank() == 0 {
			for _, e := range events {
				if e.Kind == TraceSend {
					if e.Peer != 1 || e.Bytes != 16 {
						return fmt.Errorf("send event %+v", e)
					}
				}
			}
		}
		var sb strings.Builder
		p.WriteTraceSummary(&sb)
		if !strings.Contains(sb.String(), "total") {
			return fmt.Errorf("summary: %s", sb.String())
		}
		return nil
	})
}

func TestTraceRMAOperations(t *testing.T) {
	run(t, 2, Config{Fabric: "inf", Trace: true}, func(p *Proc) error {
		w := p.World()
		win, _, err := w.WinAllocate(16, 1)
		if err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			if err := win.Put([]byte{1, 2}, 2, Byte, 1, 0); err != nil {
				return err
			}
			buf := make([]byte, 2)
			if err := win.Get(buf, 2, Byte, 1, 4); err != nil {
				return err
			}
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if err := win.Free(); err != nil {
			return err
		}
		kinds := map[string]int{}
		for _, e := range p.TraceEvents() {
			kinds[e.Kind.String()]++
		}
		if kinds["rma-sync"] < 2 {
			return fmt.Errorf("fences not traced: %v", kinds)
		}
		if p.Rank() == 0 && (kinds["put"] != 1 || kinds["get"] != 1) {
			return fmt.Errorf("rma ops not traced: %v", kinds)
		}
		return nil
	})
}

func TestTraceDisabledByDefault(t *testing.T) {
	run(t, 1, Config{}, func(p *Proc) error {
		if err := p.World().Barrier(); err != nil {
			return err
		}
		if len(p.TraceEvents()) != 0 {
			return fmt.Errorf("events recorded without Trace")
		}
		return nil
	})
}

func TestTraceDoesNotPerturbCounts(t *testing.T) {
	// Tracing must not change the instruction accounting.
	for _, tr := range []bool{false, true} {
		run(t, 2, Config{Fabric: "inf", Build: "default", Trace: tr}, func(p *Proc) error {
			w := p.World()
			if p.Rank() != 0 {
				buf := make([]byte, 1)
				_, err := w.Recv(buf, 1, Byte, 0, 0)
				return err
			}
			before := p.Counters()
			req, err := w.Isend([]byte{1}, 1, Byte, 1, 0)
			if err != nil {
				return err
			}
			d := p.Counters().Sub(before)
			if _, err := req.Wait(); err != nil {
				return err
			}
			if d.TotalInstr != 221 {
				return fmt.Errorf("trace=%v: isend = %d instructions", tr, d.TotalInstr)
			}
			return nil
		})
	}
}
