package gompi

import (
	"gompi/internal/instr"
	"gompi/internal/trace"
	"gompi/internal/vtime"
)

// PhaseStats is one named application region's accumulated cost on one
// rank: how often it ran, its total virtual cycles, and the split the
// efficiency model attributes — useful (application compute) cycles,
// transport (data movement) cycles, and MPI-library instructions. It
// is collected into RankStats at teardown and drives the per-phase rows
// of Stats.Efficiency().
type PhaseStats struct {
	Name  string `json:"name"`
	Calls int64  `json:"calls"`
	// Cycles is total virtual time inside the phase, including cycles
	// spent parked waiting on peers.
	Cycles int64 `json:"cycles"`
	// UsefulCycles is application compute (ChargeCompute) inside the
	// phase; TransportCycles is fabric/shm injection and delivery.
	UsefulCycles    int64 `json:"useful_cycles"`
	TransportCycles int64 `json:"transport_cycles"`
	// MPIInstr is the MPI-library instruction count (the Table 1
	// total) charged inside the phase.
	MPIInstr int64 `json:"mpi_instr"`
}

// phaseFrame is one open PhaseBegin on the stack.
type phaseFrame struct {
	idx   int
	start vtime.Time
	snap  instr.Snapshot
}

// PhaseBegin opens a named phase region on this rank. Cycles accrued
// until the matching PhaseEnd are attributed to the region; regions
// with the same name accumulate across calls (an iteration loop entered
// 100 times yields one row with Calls=100). Regions may nest; a nested
// region's cycles are attributed to it and to every open enclosing
// region, so sibling phases partition a run only when they do not
// overlap. The API costs no instruction charges — phases are an
// observability construct, not an MPI operation.
func (p *Proc) PhaseBegin(name string) {
	if p.phaseIdx == nil {
		p.phaseIdx = make(map[string]int)
	}
	idx, ok := p.phaseIdx[name]
	if !ok {
		idx = len(p.phases)
		p.phaseIdx[name] = idx
		p.phases = append(p.phases, PhaseStats{Name: name})
	}
	p.phaseStack = append(p.phaseStack, phaseFrame{
		idx:   idx,
		start: p.rank.Now(),
		snap:  p.rank.Profile().Snap(),
	})
}

// PhaseEnd closes the innermost open phase region, accumulating its
// cycle deltas. It panics when no region is open — an unmatched
// PhaseEnd is a programming error, like an unmatched Unlock.
func (p *Proc) PhaseEnd() {
	n := len(p.phaseStack)
	if n == 0 {
		panic("gompi: PhaseEnd without matching PhaseBegin")
	}
	f := p.phaseStack[n-1]
	p.phaseStack = p.phaseStack[:n-1]
	end := p.rank.Now()
	d := p.rank.Profile().Delta(f.snap)
	cycles := int64(end - f.start)
	useful := d.Count(instr.Compute)
	ps := &p.phases[f.idx]
	ps.Calls++
	ps.Cycles += cycles
	ps.UsefulCycles += useful
	ps.TransportCycles += d.Count(instr.Transport)
	ps.MPIInstr += d.Total
	if p.tlog.Enabled() {
		p.tlog.Record(trace.Event{
			Kind: trace.KindPhase, Name: ps.Name,
			Peer: -1, VCI: -1,
			Start: f.start, End: end,
			Useful: useful, Comm: cycles - useful,
		})
	}
}

// Phase runs fn inside a region named name: PhaseBegin, fn, PhaseEnd.
// The region closes even when fn returns an error, so partial work is
// still attributed; fn's error is returned unchanged.
func (p *Proc) Phase(name string, fn func() error) error {
	p.PhaseBegin(name)
	defer p.PhaseEnd()
	return fn()
}

// phaseSnapshot returns the rank's accumulated phase table for the
// teardown snapshot, closing any regions left open (a body that
// returned mid-phase still gets its cycles attributed).
func (p *Proc) phaseSnapshot() []PhaseStats {
	for len(p.phaseStack) > 0 {
		p.PhaseEnd()
	}
	if len(p.phases) == 0 {
		return nil
	}
	return append([]PhaseStats(nil), p.phases...)
}
