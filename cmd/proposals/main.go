// Command proposals regenerates Figure 6: the message rate of
// MPI_ISEND as the proposed MPI standard extensions stack up on the
// infinitely fast network, from the MPI-3.1 floor (minimal_pt2pt) to
// the fused MPI_ISEND_ALL_OPTS path (~16 instructions, ~137 M msg/s at
// the 2.2 GHz model frequency; the paper reports 132.8 M on its
// testbed).
package main

import (
	"flag"
	"fmt"
	"os"

	"gompi/internal/bench"
)

func main() {
	msgs := flag.Int("msgs", 2000, "messages per measurement")
	csv := flag.Bool("csv", false, "emit CSV for plotting")
	flag.Parse()

	pts, err := bench.ProposalLadder(*msgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "proposals:", err)
		os.Exit(1)
	}
	if *csv {
		bench.WriteProposalsCSV(os.Stdout, pts)
		return
	}
	bench.WriteProposals(os.Stdout, pts)
}
