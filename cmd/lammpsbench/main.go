// Command lammpsbench regenerates Figure 8: LAMMPS-style Lennard-Jones
// strong scaling. The paper's 3-million-atom FCC crystal over 512 to
// 8,192 BG/Q nodes becomes a scaled-down run (default 27 ranks) that
// keeps the paper's atoms-per-core ladder (368, 184, 90, 45, 23); the
// figure reports timesteps/second and parallel efficiency for
// MPICH/CH4 versus MPICH/Original, plus the percentage speedup.
package main

import (
	"flag"
	"fmt"
	"os"

	"gompi/internal/bench"
)

func main() {
	ranksX := flag.Int("px", 3, "process grid x")
	ranksY := flag.Int("py", 3, "process grid y")
	ranksZ := flag.Int("pz", 3, "process grid z")
	steps := flag.Int("steps", 10, "timesteps per measurement")
	fabricName := flag.String("net", "bgq", "fabric profile")
	csv := flag.Bool("csv", false, "emit CSV for plotting")
	flag.Parse()

	pts, err := bench.LammpsSweep(bench.LammpsSweepOptions{
		RankGrid: [3]int{*ranksX, *ranksY, *ranksZ},
		Steps:    *steps,
		Fabric:   *fabricName,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lammpsbench:", err)
		os.Exit(1)
	}
	if *csv {
		bench.WriteLammpsCSV(os.Stdout, pts)
		return
	}
	bench.WriteLammps(os.Stdout, pts)
}
