// Command nekbench regenerates Figure 7: the Nek5000 mass-matrix
// inversion model problem swept over polynomial order N and elements
// per rank E/P, under MPICH/Original ("Std") and MPICH/CH4 ("Lite") on
// the BG/Q platform profile. The y-axis is point-iterations per
// processor-second; the center panel is the Lite/Std ratio; the right
// panel is the Amdahl parallel-efficiency model of Section 4.3.
//
// The paper's 16,384-rank runs are scaled down (default 16 ranks) with
// the per-rank load n/P kept on the paper's axis.
package main

import (
	"flag"
	"fmt"
	"os"

	"gompi/internal/bench"
)

func main() {
	ranksX := flag.Int("px", 4, "process grid x")
	ranksY := flag.Int("py", 2, "process grid y")
	ranksZ := flag.Int("pz", 2, "process grid z")
	maxEP := flag.Int("maxep", 128, "largest E/P (swept in powers of two)")
	iters := flag.Int("iters", 25, "CG iterations per measurement")
	fabricName := flag.String("net", "bgq", "fabric profile")
	csv := flag.Bool("csv", false, "emit CSV for plotting")
	flag.Parse()

	pts, err := bench.NekSweep(bench.NekSweepOptions{
		RankGrid: [3]int{*ranksX, *ranksY, *ranksZ},
		MaxEPerP: *maxEP,
		Iters:    *iters,
		Fabric:   *fabricName,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "nekbench:", err)
		os.Exit(1)
	}
	if *csv {
		bench.WriteNekCSV(os.Stdout, pts)
		return
	}
	bench.WriteNek(os.Stdout, pts)
}
