// Command instrcount regenerates the paper's instruction-count analysis:
// Table 1 (the per-category breakdown of the default ch4 build), Figure 2
// (the build-configuration ladder for both devices), and the Section 3
// per-proposal savings. It is the stand-in for the Intel SDE tracing
// workflow of the paper's artifact.
//
// Usage:
//
//	instrcount             # everything
//	instrcount -table1     # Table 1 only
//	instrcount -fig2       # Figure 2 only
//	instrcount -proposals  # Section 3 savings only
package main

import (
	"flag"
	"fmt"
	"os"

	"gompi/internal/bench"
)

func main() {
	table1 := flag.Bool("table1", false, "print Table 1 only")
	fig2 := flag.Bool("fig2", false, "print Figure 2 only")
	proposals := flag.Bool("proposals", false, "print Section 3 proposal savings only")
	flag.Parse()
	all := !*table1 && !*fig2 && !*proposals

	if *table1 || all {
		isend, put, err := bench.Table1()
		fail(err)
		bench.WriteTable1(os.Stdout, isend, put)
		fmt.Println()
	}
	if *fig2 || all {
		isends, puts, err := bench.Figure2()
		fail(err)
		bench.WriteFigure2(os.Stdout, isends, puts)
		fmt.Println()
	}
	if *proposals || all {
		rows, base, err := bench.ProposalSavings()
		fail(err)
		bench.WriteProposalSavings(os.Stdout, rows, base)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "instrcount:", err)
		os.Exit(1)
	}
}
