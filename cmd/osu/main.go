// Command osu runs OSU-microbenchmark-style point-to-point latency and
// bandwidth sweeps over message sizes, for any device/fabric/build
// combination — the classic companion view to the paper's message-rate
// figures (rates show the small-message software floor; latency and
// bandwidth show where the wire takes over).
//
// Usage:
//
//	osu                              # ch4 on ofi
//	osu -device original -net ucx
//	osu -max 1048576 -iters 200
//	osu -coll                        # nonblocking-collectives sweep
package main

import (
	"flag"
	"fmt"
	"os"

	"gompi"
	"gompi/internal/bench"
)

func main() {
	device := flag.String("device", "ch4", "device: ch4 | original")
	net := flag.String("net", "ofi", "fabric: ofi | ucx | inf | bgq")
	build := flag.String("build", "no-err-single-ipo", "build configuration")
	max := flag.Int("max", 1<<16, "largest message size in bytes")
	iters := flag.Int("iters", 100, "iterations per size")
	window := flag.Int("window", 32, "messages in flight for the bandwidth test")
	coll := flag.Bool("coll", false, "run the nonblocking-collectives sweep instead of pt2pt")
	rpn := flag.Int("ranks-per-node", 1, "ranks per node (>1 puts the pair on one node, over shm)")
	shmEager := flag.Int("shm-eager", 0, "shm staged/handoff threshold in bytes (0 disables zero-copy handoff)")
	handoff := flag.Bool("handoff", false, "run the staged-vs-handoff shm sweep instead of pt2pt")
	rmaSweep := flag.Bool("rma", false, "run the one-sided zerocopy-vs-staged shm sweep instead of pt2pt")
	spmv := flag.Bool("spmv", false, "run the SpMV halo-exchange sweep (percall vs persistent vs partitioned)")
	partitions := flag.Int("partitions", 0, "partitions per halo for the -spmv partitioned mode (0 = default)")
	flag.Parse()

	if *spmv {
		pts, err := bench.SpmvSweep(nil, *partitions)
		if err != nil {
			fmt.Fprintln(os.Stderr, "osu:", err)
			os.Exit(1)
		}
		bench.WriteSpmv(os.Stdout, pts)
		pp, err := bench.PersistSweep(nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "osu:", err)
			os.Exit(1)
		}
		fmt.Println()
		bench.WritePersist(os.Stdout, pp)
		return
	}

	if *rmaSweep {
		pts, err := bench.RmaSweep(nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "osu:", err)
			os.Exit(1)
		}
		bench.WriteRma(os.Stdout, pts)
		return
	}

	if *handoff {
		pts, err := bench.HandoffSweep(nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "osu:", err)
			os.Exit(1)
		}
		bench.WriteHandoff(os.Stdout, pts)
		return
	}

	if *coll {
		pts, err := bench.CollSweep(nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "osu:", err)
			os.Exit(1)
		}
		bench.WriteColl(os.Stdout, pts)
		return
	}

	cfg := gompi.Config{
		Device: gompi.DeviceKind(*device), Fabric: gompi.FabricKind(*net), Build: gompi.BuildKind(*build),
		RanksPerNode: *rpn, ShmEagerMax: *shmEager,
	}
	pts, err := bench.OSUSweep(cfg, *max, *iters, *window)
	if err != nil {
		fmt.Fprintln(os.Stderr, "osu:", err)
		os.Exit(1)
	}
	bench.WriteOSU(os.Stdout, fmt.Sprintf("OSU-style pt2pt sweep: device=%s fabric=%s build=%s rpn=%d shm-eager=%d", *device, *net, *build, *rpn, *shmEager), pts)
}
