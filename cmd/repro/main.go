// Command repro runs the full reproduction: every table and figure of
// the paper's evaluation, in order, printing paper-comparable output.
// See EXPERIMENTS.md for the paper-vs-measured record this generates.
//
// Usage:
//
//	repro            # quick sweep (minutes)
//	repro -full      # larger rank counts and sample sizes
//	repro -metrics   # append the observability snapshot as JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"gompi"
	"gompi/internal/bench"
)

func main() {
	full := flag.Bool("full", false, "larger rank counts and sample sizes")
	metrics := flag.Bool("metrics", false, "emit the per-device metrics snapshot of the reference exchange")
	flag.Parse()

	msgs := 2000
	nekOpts := bench.NekSweepOptions{RankGrid: [3]int{2, 2, 2}, MaxEPerP: 32, Iters: 15}
	ljOpts := bench.LammpsSweepOptions{RankGrid: [3]int{3, 3, 3}, Steps: 6}
	if *full {
		msgs = 10000
		nekOpts = bench.NekSweepOptions{RankGrid: [3]int{4, 2, 2}, MaxEPerP: 128, Iters: 25}
		ljOpts = bench.LammpsSweepOptions{RankGrid: [3]int{3, 3, 3}, Steps: 15}
	}

	section("Table 1")
	isend, put, err := bench.Table1()
	fail(err)
	bench.WriteTable1(os.Stdout, isend, put)

	section("Figure 2")
	isends, puts, err := bench.Figure2()
	fail(err)
	bench.WriteFigure2(os.Stdout, isends, puts)

	for _, fab := range []string{"ofi", "ucx", "inf"} {
		section(map[string]string{
			"ofi": "Figure 3 (OFI/PSM2)", "ucx": "Figure 4 (UCX/EDR)", "inf": "Figure 5 (infinite network)",
		}[fab])
		pts, err := bench.MessageRates(fab, msgs)
		fail(err)
		bench.WriteRates(os.Stdout, "Message rates on "+fab, pts)
	}

	section("Figure 6")
	lad, err := bench.ProposalLadder(msgs)
	fail(err)
	bench.WriteProposals(os.Stdout, lad)

	section("Section 3 savings")
	rows, base, err := bench.ProposalSavings()
	fail(err)
	bench.WriteProposalSavings(os.Stdout, rows, base)

	section("Figure 7 (Nek5000 model problem)")
	nk, err := bench.NekSweep(nekOpts)
	fail(err)
	bench.WriteNek(os.Stdout, nk)

	section("Figure 8 (LAMMPS strong scaling)")
	lj, err := bench.LammpsSweep(ljOpts)
	fail(err)
	bench.WriteLammps(os.Stdout, lj)

	if *metrics {
		section("Metrics (4-rank exchange aggregate)")
		for _, dev := range []gompi.DeviceKind{gompi.DeviceCH4, gompi.DeviceOriginal} {
			st, err := bench.ExchangeStats(gompi.Config{Device: dev}, 1024)
			fail(err)
			fail(bench.CheckExchangeBalance(st))
			fmt.Printf("%s:\n", dev)
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			fail(enc.Encode(st.Aggregate()))
		}
	}
}

func section(name string) {
	fmt.Printf("\n==== %s ====\n", name)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}
