// Command scale runs the large-world stress harness: a halo exchange
// and a two-level allreduce across up to 10,000 goroutine ranks, once
// with lazy (on-demand) peer state and once with the EagerPeers
// all-pairs baseline, and prints setup time, peers touched, and modeled
// bytes/rank for each point. The lazy runs execute under the per-rank
// memory ceiling, so a regression to O(n) per-rank state aborts the run
// instead of quietly inflating the numbers.
//
// Usage:
//
//	scale [-sizes 1000,4000,10000] [-iters 2]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gompi/internal/bench"
)

func main() {
	sizesFlag := flag.String("sizes", "1000,4000,10000", "comma-separated world sizes")
	iters := flag.Int("iters", 2, "halo+allreduce iterations per run")
	flag.Parse()

	var sizes []int
	for _, s := range strings.Split(*sizesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "scale: bad size %q\n", s)
			os.Exit(1)
		}
		sizes = append(sizes, n)
	}

	pts, err := bench.ScaleSweep(sizes, *iters)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scale:", err)
		os.Exit(1)
	}
	bench.WriteScaleTable(os.Stdout, pts)
}
