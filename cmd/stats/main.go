// Command stats runs the observability reference workload — a 4-rank
// all-pairs exchange with 2 ranks per node — and emits the job's
// metrics snapshot as JSON: per-rank counters plus the job-wide
// aggregate, in which the shm and net send/receive byte counters
// balance exactly.
//
// Usage:
//
//	stats                       # ch4 device, 1 KiB messages
//	stats -device original
//	stats -bytes 65536
//	stats -chrome trace.json    # also write a Chrome trace of the run
//	stats -prom                 # Prometheus text format instead of JSON
//	stats -report               # POP efficiency table of the fresh run
//	stats -eff stats.json       # render the POP efficiency + per-phase
//	                            # table from a previously written stats
//	                            # JSON file (no run)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"gompi"
	"gompi/internal/bench"
)

func jsonEncoder(w io.Writer) *json.Encoder {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc
}

func main() {
	device := flag.String("device", "ch4", "device: ch4 or original")
	build := flag.String("build", "default", "build configuration")
	msgBytes := flag.Int("bytes", 1024, "small-message payload size")
	chrome := flag.String("chrome", "", "write a Chrome trace (catapult JSON) to this path")
	prom := flag.Bool("prom", false, "emit Prometheus text format (latency quantiles, path counters) instead of JSON")
	eff := flag.String("eff", "", "render the POP efficiency table from a stats JSON file at this path, then exit")
	report := flag.Bool("report", false, "append the POP efficiency table of the run to stderr")
	flag.Parse()

	if *eff != "" {
		// Offline mode: rebuild a Stats from a previously written
		// document (either `stats` output or Stats.WriteJSON) and render
		// its efficiency hierarchy — no run.
		raw, err := os.ReadFile(*eff)
		fail(err)
		var doc struct {
			Hz    float64           `json:"hz"`
			Ranks []gompi.RankStats `json:"ranks"`
		}
		fail(json.Unmarshal(raw, &doc))
		st := &gompi.Stats{Hz: doc.Hz, Ranks: doc.Ranks}
		fail(st.WriteEfficiencyReport(os.Stdout))
		return
	}

	cfg := gompi.Config{
		Device: gompi.DeviceKind(*device),
		Build:  gompi.BuildKind(*build),
		Trace:  *chrome != "",
	}
	st, err := bench.ExchangeStats(cfg, *msgBytes)
	fail(err)
	fail(bench.CheckExchangeBalance(st))

	if *prom {
		fail(st.WriteProm(os.Stdout))
	} else {
		out := struct {
			Hz        float64               `json:"hz"`
			Ranks     []gompi.RankStats     `json:"ranks"`
			Aggregate gompi.MetricsSnapshot `json:"aggregate"`
		}{st.Hz, st.Ranks, st.Aggregate()}
		enc := jsonEncoder(os.Stdout)
		fail(enc.Encode(out))
	}

	if *chrome != "" {
		f, err := os.Create(*chrome)
		fail(err)
		fail(st.WriteChromeTrace(f))
		fail(f.Close())
		fmt.Fprintln(os.Stderr, "chrome trace written to", *chrome)
	}

	if *report {
		fail(st.WriteEfficiencyReport(os.Stderr))
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "stats:", err)
		os.Exit(1)
	}
}
