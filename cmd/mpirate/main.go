// Command mpirate regenerates the message-rate microbenchmarks of
// Figures 3 (OFI/PSM2), 4 (UCX/EDR), and 5 (infinitely fast network):
// the single-core 1-byte MPI_ISEND and MPI_PUT issue rates under each
// build configuration.
//
// With -vci it instead runs the multi-VCI scaling sweep: multiple
// goroutines per rank ping-ponging on hinted disjoint communicators,
// reporting how the message rate scales with the number of virtual
// communication interfaces.
//
// Usage:
//
//	mpirate                 # all three fabrics
//	mpirate -net ofi        # one fabric
//	mpirate -msgs 5000      # sample size
//	mpirate -vci            # VCI-scaling sweep (1,2,4,8 interfaces)
//	mpirate -vci -lanes 8   # with 8 goroutines per rank
package main

import (
	"flag"
	"fmt"
	"os"

	"gompi/internal/bench"
)

var figureByFabric = map[string]string{
	"ofi": "Figure 3: Message rates with OFI/PSM2 (IT cluster profile)",
	"ucx": "Figure 4: Message rates with UCX (Gomez cluster profile)",
	"inf": "Figure 5: Message rates with infinitely fast network",
}

func main() {
	net := flag.String("net", "", "fabric: ofi | ucx | inf (default: all)")
	msgs := flag.Int("msgs", 2000, "messages per measurement")
	csv := flag.Bool("csv", false, "emit CSV for plotting")
	vci := flag.Bool("vci", false, "run the multi-VCI scaling sweep instead")
	lanes := flag.Int("lanes", 4, "goroutines per rank for -vci")
	flag.Parse()

	if *vci {
		pts, err := bench.VCIScaling([]int{1, 2, 4, 8}, *lanes, *msgs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpirate:", err)
			os.Exit(1)
		}
		if *csv {
			bench.WriteVCIScalingCSV(os.Stdout, pts)
		} else {
			bench.WriteVCIScaling(os.Stdout, pts)
		}
		return
	}

	fabrics := []string{"ofi", "ucx", "inf"}
	if *net != "" {
		fabrics = []string{*net}
	}
	for i, fab := range fabrics {
		title, ok := figureByFabric[fab]
		if !ok {
			fmt.Fprintf(os.Stderr, "mpirate: unknown fabric %q\n", fab)
			os.Exit(2)
		}
		pts, err := bench.MessageRates(fab, *msgs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpirate:", err)
			os.Exit(1)
		}
		if *csv {
			fmt.Printf("# %s\n", title)
			bench.WriteRatesCSV(os.Stdout, pts)
			continue
		}
		bench.WriteRates(os.Stdout, title, pts)
		if i < len(fabrics)-1 {
			fmt.Println()
		}
	}
}
