// Command benchjson runs the benchmark suite once and writes a
// machine-readable summary — per-benchmark ns/op and allocs/op (each
// benchmark repeated -count times so benchdiff can median away
// wall-clock noise) plus
// the metrics aggregates of the reference exchange on both devices —
// as JSON — plus the multi-VCI scaling sweep and the latency
// decomposition (post→match, unexpected residency, rendezvous RTT,
// request lifetime, wait park percentiles) of the reference exchange.
// The Makefile's bench-json target uses it to produce BENCH_PR10.json.
// Timestamps are deliberately omitted so reruns diff cleanly.
//
// Usage:
//
//	benchjson [-o BENCH_PR10.json] [-benchtime 1x]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"gompi"
	"gompi/internal/bench"
	"gompi/internal/metrics"
)

// BenchResult is one benchmark line of `go test -bench`.
type BenchResult struct {
	Name     string  `json:"name"`
	Iters    int64   `json:"iters"`
	NsPerOp  float64 `json:"ns_per_op"`
	BytesOp  int64   `json:"bytes_per_op"`
	AllocsOp int64   `json:"allocs_per_op"`
}

// Output is the whole document.
type Output struct {
	Benchmarks []BenchResult                    `json:"benchmarks"`
	Exchange   map[string]gompi.MetricsSnapshot `json:"exchange_aggregate"`
	// Latency lifts the exchange aggregates' latency decomposition to
	// the top level so cross-PR diffs of the percentile summaries
	// (post→match, unexpected residency, ...) don't have to dig through
	// the full snapshots.
	Latency    map[string]metrics.LatSnapshot `json:"latency"`
	VCIScaling []bench.VCIPoint               `json:"vci_scaling"`
	// Collectives is the nonblocking-collectives sweep: every
	// algorithm family forced in turn on the 4-rank hierarchical
	// layout, with latency and the net/shm traffic split.
	Collectives []bench.CollPoint `json:"collectives"`
	// Handoff is the staged-vs-zero-copy shm sweep: the same on-node
	// message under both transports at each size, with latency,
	// charged transport cycles, and the copy accounting.
	Handoff []bench.HandoffPoint `json:"handoff"`
	// Rma is the one-sided sweep: Put/Get message rate and flush
	// latency on an shm-backed window under the zero-copy and staged
	// intra-node cost models, plus the FetchAndOp atomics floor.
	Rma []bench.RmaPoint `json:"rma"`
	// Scale is the 10K-rank world sweep: halo exchange + two-level
	// allreduce at each size, lazy (on-demand peer state, per-rank
	// memory ceiling enforced) versus the EagerPeers all-pairs
	// baseline, with setup time and modeled bytes/rank.
	Scale []bench.ScalePoint `json:"scale"`
	// Efficiency is the POP parallel-efficiency section benchdiff
	// gates on: the reference exchange's hierarchy per device, and the
	// strong-scaling np sweep (speedup-vs-serial and self-scaling,
	// median of N trials, per-np POP metrics).
	Efficiency EffSection `json:"efficiency"`
	// Spmv is the declared-shape halo-exchange sweep: per-call
	// Isend/Irecv versus persistent neighborhood collective versus
	// partitioned pt2pt, in virtual latency and charged MPI
	// instructions per iteration.
	Spmv []bench.SpmvPoint `json:"spmv"`
	// Persistent is the persistent-collective cost split: one-time Init
	// (compile) versus first activation versus steady-state replay,
	// with the schedule-cache hit/miss counts.
	Persistent []bench.PersistPoint `json:"persistent"`
}

// EffSection is the efficiency analytics of the document.
type EffSection struct {
	Exchange map[string]gompi.EfficiencyReport `json:"exchange"`
	Scaling  *bench.ScalingSweep               `json:"scaling"`
}

// benchLine matches e.g.
// BenchmarkIsendIPO-8  1  452 ns/op  0 B/op  0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("o", "BENCH_PR10.json", "output path")
	benchtime := flag.String("benchtime", "1x", "go test -benchtime value")
	count := flag.Int("count", 3, "benchmark repetitions; duplicates are median-reduced by benchdiff")
	flag.Parse()

	cmd := exec.Command("go", "test", "-run", "xxx", "-bench", ".",
		"-benchtime", *benchtime, "-count", fmt.Sprint(*count), "-benchmem", "./...")
	raw, err := cmd.CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go test: %v\n%s", err, raw)
		os.Exit(1)
	}

	var results []BenchResult
	for _, line := range strings.Split(string(raw), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		r := BenchResult{Name: m[1]}
		r.Iters, _ = strconv.ParseInt(m[2], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			r.BytesOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			r.AllocsOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		results = append(results, r)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })

	exchange := map[string]gompi.MetricsSnapshot{}
	latency := map[string]metrics.LatSnapshot{}
	eff := EffSection{Exchange: map[string]gompi.EfficiencyReport{}}
	for _, dev := range []gompi.DeviceKind{gompi.DeviceCH4, gompi.DeviceOriginal} {
		st, err := bench.ExchangeStats(gompi.Config{Device: dev}, 1024)
		fail(err)
		fail(bench.CheckExchangeBalance(st))
		agg := st.Aggregate()
		exchange[string(dev)] = agg
		latency[string(dev)] = agg.Lat
		eff.Exchange[string(dev)] = st.Efficiency()
	}

	scaling, err := bench.EfficiencySweep([]int{1, 2, 4, 8}, 3)
	fail(err)
	eff.Scaling = scaling

	vci, err := bench.VCIScaling([]int{1, 2, 4, 8}, 4, 2000)
	fail(err)

	colls, err := bench.CollSweep(nil)
	fail(err)

	handoff, err := bench.HandoffSweep(nil)
	fail(err)

	rmaPts, err := bench.RmaSweep(nil)
	fail(err)

	scale, err := bench.ScaleSweep([]int{1000, 4000, 10000}, 2)
	fail(err)

	spmv, err := bench.SpmvSweep(nil, 0)
	fail(err)

	persist, err := bench.PersistSweep(nil)
	fail(err)

	f, err := os.Create(*out)
	fail(err)
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	fail(enc.Encode(Output{Benchmarks: results, Exchange: exchange, Latency: latency, VCIScaling: vci, Collectives: colls, Handoff: handoff, Rma: rmaPts, Scale: scale, Efficiency: eff, Spmv: spmv, Persistent: persist}))
	fail(f.Close())
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(results), *out)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
