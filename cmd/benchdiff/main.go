// Command benchdiff compares two benchjson documents (BENCH_PR*.json)
// and reports per-benchmark deltas. Duplicate benchmark names — the
// result of running the suite N times into one document — are
// median-reduced before comparison, so one noisy run cannot fake or
// mask a regression. The exit status is the gate: nonzero when any
// hot-path metric regressed by more than the tolerance.
//
// Wall-clock ns/op samples from -benchtime 1x runs of multi-goroutine
// simulations carry run-to-run noise far beyond any usable tolerance,
// and the two documents are generated on different days on a shared
// machine. So a regression is flagged only when, in addition to the
// median delta exceeding the tolerance, the sample ranges are disjoint
// beyond it: the best new sample is still worse than the worst old
// sample by more than the tolerance. Deterministic metrics (the
// virtual-time Coll/Handoff/Rma/Exchange latencies, which repeat
// bit-identically) have zero spread, so for them this reduces to the
// plain median comparison — the gate on the simulator's actual
// performance model is not loosened.
//
// The efficiency section gates separately: POP Parallel Efficiency is
// a deterministic higher-is-better fraction of virtual time, so a drop
// of more than -effdrop (default 2 points, absolute) on any shared
// efficiency metric fails the gate with no noise tolerance at all.
//
// Usage:
//
//	benchdiff [-tolerance 0.10] [-effdrop 0.02] [-hot regex] OLD.json NEW.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
)

// doc mirrors the benchjson Output fields benchdiff consumes; unknown
// fields (exchange aggregates, latency decompositions) are ignored so
// older and newer documents both load.
type doc struct {
	Benchmarks []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
	Collectives []struct {
		Collective string  `json:"collective"`
		Algo       string  `json:"algo"`
		Bytes      int     `json:"bytes"`
		LatencyUs  float64 `json:"latency_us"`
	} `json:"collectives"`
	Handoff []struct {
		Mode      string  `json:"mode"`
		Bytes     int     `json:"bytes"`
		LatencyUs float64 `json:"latency_us"`
	} `json:"handoff"`
	Rma []struct {
		Op        string  `json:"op"`
		Mode      string  `json:"mode"`
		Bytes     int     `json:"bytes"`
		LatencyUs float64 `json:"latency_us"`
	} `json:"rma"`
	Spmv []struct {
		Mode      string  `json:"mode"`
		HaloBytes int     `json:"halo_bytes"`
		LatencyUs float64 `json:"latency_us"`
		MPIInstr  int64   `json:"mpi_instr"`
	} `json:"spmv"`
	Persistent []struct {
		Collective string  `json:"collective"`
		Bytes      int     `json:"bytes"`
		ReplayUs   float64 `json:"replay_us"`
	} `json:"persistent"`
	Efficiency struct {
		Exchange map[string]struct {
			ParallelEff float64 `json:"parallel_efficiency"`
		} `json:"exchange"`
		Scaling struct {
			Points []struct {
				NP         int `json:"np"`
				Efficiency struct {
					ParallelEff float64 `json:"parallel_efficiency"`
				} `json:"efficiency"`
			} `json:"points"`
		} `json:"scaling"`
	} `json:"efficiency"`
}

// efficiencies flattens the document's POP Parallel Efficiency values:
// name → PE. Unlike the latency metrics these are higher-is-better
// fractions, deterministic in virtual time, so the gate is a plain
// absolute-points comparison with no noise tolerance.
func (d *doc) efficiencies() map[string]float64 {
	eff := map[string]float64{}
	for dev, e := range d.Efficiency.Exchange {
		eff["Eff/exchange/"+dev] = e.ParallelEff
	}
	for _, p := range d.Efficiency.Scaling.Points {
		eff[fmt.Sprintf("Eff/scaling/np%d", p.NP)] = p.Efficiency.ParallelEff
	}
	return eff
}

// metrics flattens a document into name → sorted samples (lower is
// better for every metric benchdiff tracks).
func (d *doc) metrics() map[string][]float64 {
	samples := map[string][]float64{}
	for _, b := range d.Benchmarks {
		samples[b.Name] = append(samples[b.Name], b.NsPerOp)
	}
	for _, c := range d.Collectives {
		key := fmt.Sprintf("Coll/%s/%s/%d", c.Collective, c.Algo, c.Bytes)
		samples[key] = append(samples[key], c.LatencyUs)
	}
	for _, h := range d.Handoff {
		key := fmt.Sprintf("Handoff/%s/%d", h.Mode, h.Bytes)
		samples[key] = append(samples[key], h.LatencyUs)
	}
	for _, r := range d.Rma {
		key := fmt.Sprintf("Rma/%s/%s/%d", r.Op, r.Mode, r.Bytes)
		samples[key] = append(samples[key], r.LatencyUs)
	}
	for _, s := range d.Spmv {
		key := fmt.Sprintf("Spmv/%s/%d", s.Mode, s.HaloBytes)
		samples[key] = append(samples[key], s.LatencyUs)
		ikey := fmt.Sprintf("Spmv/%s/%d/instr", s.Mode, s.HaloBytes)
		samples[ikey] = append(samples[ikey], float64(s.MPIInstr))
	}
	for _, p := range d.Persistent {
		key := fmt.Sprintf("Persist/%s/%d/replay", p.Collective, p.Bytes)
		samples[key] = append(samples[key], p.ReplayUs)
	}
	for _, v := range samples {
		sort.Float64s(v)
	}
	return samples
}

func median(v []float64) float64 {
	n := len(v)
	if n%2 == 1 {
		return v[n/2]
	}
	return (v[n/2-1] + v[n/2]) / 2
}

func load(path string) (*doc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d doc
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &d, nil
}

func main() {
	tolerance := flag.Float64("tolerance", 0.10, "hot-path regression gate (fraction)")
	effDrop := flag.Float64("effdrop", 0.02, "Parallel Efficiency drop gate (absolute, 0.02 = 2 points)")
	hot := flag.String("hot", `Isend|Send|Recv|Exchange|Latency|Handoff|Coll|Rma|Spmv|Persist`,
		"regexp naming the hot-path metrics the gate applies to")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tolerance 0.10] [-hot regex] OLD.json NEW.json")
		os.Exit(2)
	}
	hotRe, err := regexp.Compile(*hot)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	oldDoc, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newDoc, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	oldM, newM := oldDoc.metrics(), newDoc.metrics()
	var names []string
	for k := range oldM {
		if _, ok := newM[k]; ok {
			names = append(names, k)
		}
	}
	sort.Strings(names)

	var regressed []string
	fmt.Printf("%-52s %14s %14s %8s\n", "metric", flag.Arg(0), flag.Arg(1), "delta")
	for _, k := range names {
		oldS, newS := oldM[k], newM[k]
		o, n := median(oldS), median(newS)
		delta := 0.0
		if o > 0 {
			delta = (n - o) / o
		}
		mark := ""
		if hotRe.MatchString(k) && delta > *tolerance {
			// The median moved; confirm the sample ranges are disjoint
			// beyond the tolerance before calling it a regression.
			worstOld, bestNew := oldS[len(oldS)-1], newS[0]
			if bestNew > worstOld*(1+*tolerance) {
				mark = "  << REGRESSION"
				regressed = append(regressed, fmt.Sprintf("%s: %.2f -> %.2f (%+.1f%%)", k, o, n, delta*100))
			} else {
				mark = "  (noise: sample ranges overlap)"
			}
		}
		fmt.Printf("%-52s %14.2f %14.2f %+7.1f%%%s\n", k, o, n, delta*100, mark)
	}
	// POP Parallel Efficiency gate: deterministic virtual-time
	// fractions, compared in absolute points (no noise tolerance). A
	// drop beyond -effdrop points on any shared efficiency metric is a
	// regression; metrics present in only one document are reported but
	// not gated, so the section's first appearance does not self-flag.
	oldEff, newEff := oldDoc.efficiencies(), newDoc.efficiencies()
	var effNames []string
	for k := range oldEff {
		if _, ok := newEff[k]; ok {
			effNames = append(effNames, k)
		}
	}
	sort.Strings(effNames)
	for _, k := range effNames {
		o, n := oldEff[k], newEff[k]
		mark := ""
		if o-n > *effDrop {
			mark = "  << REGRESSION"
			regressed = append(regressed, fmt.Sprintf("%s: PE %.3f -> %.3f (%.1f points)", k, o, n, (n-o)*100))
		}
		fmt.Printf("%-52s %14.3f %14.3f %+7.1fpt%s\n", k, o, n, (n-o)*100, mark)
	}

	onlyOld, onlyNew := 0, 0
	for k := range oldM {
		if _, ok := newM[k]; !ok {
			onlyOld++
		}
	}
	for k := range newM {
		if _, ok := oldM[k]; !ok {
			onlyNew++
		}
	}
	if onlyOld+onlyNew > 0 {
		fmt.Printf("(%d metrics only in %s, %d only in %s)\n", onlyOld, flag.Arg(0), onlyNew, flag.Arg(1))
	}
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) (hot-path beyond %.0f%%, or PE drop beyond %.0f points):\n",
			len(regressed), *tolerance*100, *effDrop*100)
		for _, r := range regressed {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d shared metrics, no hot-path regression beyond %.0f%%\n", len(names), *tolerance*100)
}
