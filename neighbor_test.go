package gompi

import (
	"fmt"
	"testing"
)

// TestGraphNeighborAlltoallv exchanges ragged per-neighbor payloads on
// an explicit distributed graph (MPI_DIST_GRAPH_CREATE_ADJACENT): each
// rank sends rank+1 bytes to every out-neighbor and receives src+1
// bytes from every in-neighbor, on both devices.
func TestGraphNeighborAlltoallv(t *testing.T) {
	const ranks = 4
	for _, dev := range []DeviceKind{DeviceCH4, DeviceOriginal} {
		t.Run(string(dev), func(t *testing.T) {
			run(t, ranks, Config{Device: dev, Fabric: "ofi", RanksPerNode: 2}, func(p *Proc) error {
				w := p.World()
				// A directed cycle plus a chord from every rank to rank 0.
				sources := []int{(p.Rank() + ranks - 1) % ranks}
				destinations := []int{(p.Rank() + 1) % ranks}
				if p.Rank() != 0 {
					destinations = append(destinations, 0)
				} else {
					for s := 1; s < ranks; s++ {
						sources = append(sources, s)
					}
				}
				g, err := w.DistGraphCreateAdjacent(sources, destinations)
				if err != nil {
					return err
				}
				sendCounts := make([]int, len(destinations))
				sendDispls := make([]int, len(destinations))
				total := 0
				for i := range destinations {
					sendCounts[i] = p.Rank() + 1
					sendDispls[i] = total
					total += sendCounts[i]
				}
				send := make([]byte, total)
				for i := range send {
					send[i] = byte(10*p.Rank() + i)
				}
				recvCounts := make([]int, len(sources))
				recvDispls := make([]int, len(sources))
				total = 0
				for i, s := range sources {
					recvCounts[i] = s + 1
					recvDispls[i] = total
					total += recvCounts[i]
				}
				recv := make([]byte, total)
				if err := g.NeighborAlltoallv(send, sendCounts, sendDispls,
					recv, recvCounts, recvDispls, Byte); err != nil {
					return err
				}
				// The k-th receive from a duplicated source pairs with that
				// source's k-th edge toward us (pairwise FIFO). Rank 0 sees
				// rank ranks-1 twice: its cycle block (offset 0) then its
				// chord block (offset s+1); every other in-edge is a chord
				// block at offset s+1, except the plain cycle edge.
				seen := map[int]int{}
				for i, s := range sources {
					occ := seen[s]
					seen[s]++
					off := s + 1 // chord block offset in s's send buffer
					if p.Rank() == (s+1)%ranks && occ == 0 {
						off = 0 // s's first edge toward us is the cycle block
					}
					for j := 0; j < recvCounts[i]; j++ {
						want := byte(10*s + off + j)
						if recv[recvDispls[i]+j] != want {
							return fmt.Errorf("from %d (occurrence %d) byte %d = %d, want %d",
								s, occ, j, recv[recvDispls[i]+j], want)
						}
					}
				}
				return nil
			})
		})
	}
}

// TestNeighborProcNullZeroing: on a non-periodic grid the boundary
// ranks' missing neighbors are PROC_NULL, and their receive blocks
// must be zeroed on every activation — including replays over a dirty
// buffer, which exercises the schedule prologue.
func TestNeighborProcNullZeroing(t *testing.T) {
	const ranks = 4
	run(t, ranks, Config{Fabric: "ofi", RanksPerNode: 2}, func(p *Proc) error {
		w := p.World()
		cc, err := w.CartCreate([]int{ranks}, []bool{false})
		if err != nil {
			return err
		}
		send := []byte{byte(p.Rank() + 1)}
		recv := make([]byte, 2)
		for round := 0; round < 2; round++ {
			recv[0], recv[1] = 0xee, 0xee // dirty: zeroing must be per-activation
			if err := cc.NeighborAllgather(send, recv, 1, Byte); err != nil {
				return err
			}
			var wantLo, wantHi byte
			if p.Rank() > 0 {
				wantLo = byte(p.Rank())
			}
			if p.Rank() < ranks-1 {
				wantHi = byte(p.Rank() + 2)
			}
			if recv[0] != wantLo || recv[1] != wantHi {
				return fmt.Errorf("round %d: recv = %v, want [%d %d]",
					round, recv, wantLo, wantHi)
			}
		}
		return nil
	})
}

// TestNeighborAllgatherCacheHit: a halo exchange repeated on the same
// buffers compiles once; every later call replays the cached schedule.
func TestNeighborAllgatherCacheHit(t *testing.T) {
	const ranks = 4
	const calls = 6
	var st Stats
	run(t, ranks, Config{Fabric: "ofi", RanksPerNode: 2, Stats: &st}, func(p *Proc) error {
		w := p.World()
		cc, err := w.CartCreate([]int{ranks}, []bool{true})
		if err != nil {
			return err
		}
		send := make([]byte, 32)
		recv := make([]byte, 64)
		for i := 0; i < calls; i++ {
			if err := cc.NeighborAllgather(send, recv, 32, Byte); err != nil {
				return err
			}
		}
		return nil
	})
	agg := st.Aggregate()
	if want := int64((calls - 1) * ranks); agg.Sched.CacheHits != want {
		t.Errorf("sched cache hits = %d, want %d", agg.Sched.CacheHits, want)
	}
	if want := int64(ranks); agg.Sched.CacheMisses != want {
		t.Errorf("sched cache misses = %d, want %d", agg.Sched.CacheMisses, want)
	}
}

// TestNeighborPersistentReplay: the persistent neighborhood exchange
// picks up fresh send-buffer contents on every activation.
func TestNeighborPersistentReplay(t *testing.T) {
	const ranks = 4
	for _, dev := range []DeviceKind{DeviceCH4, DeviceOriginal} {
		t.Run(string(dev), func(t *testing.T) {
			run(t, ranks, Config{Device: dev, Fabric: "ofi", RanksPerNode: 2}, func(p *Proc) error {
				w := p.World()
				cc, err := w.CartCreate([]int{ranks}, []bool{true})
				if err != nil {
					return err
				}
				send := make([]byte, 4)
				recv := make([]byte, 8)
				op, err := cc.NeighborAllgatherInit(send, recv, 4, Byte)
				if err != nil {
					return err
				}
				lo := (p.Rank() + ranks - 1) % ranks
				hi := (p.Rank() + 1) % ranks
				for round := 0; round < 4; round++ {
					for i := range send {
						send[i] = byte(10*p.Rank() + round)
					}
					if err := op.Start(); err != nil {
						return err
					}
					if err := op.Wait(); err != nil {
						return err
					}
					if recv[0] != byte(10*lo+round) || recv[4] != byte(10*hi+round) {
						return fmt.Errorf("round %d: recv = %v", round, recv)
					}
				}
				return nil
			})
		})
	}
}
