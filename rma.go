package gompi

import (
	"gompi/internal/core"
	"gompi/internal/rma"
)

// rmaEpochLock aliases the internal epoch kind for the LockAll
// bookkeeping.
const rmaEpochLock = rma.EpochLock

// Win is a one-sided communication window (MPI_Win).
type Win struct {
	p *Proc
	w *rma.Win
}

// VAddr is a remote virtual address for the MPI_PUT_VIRTUAL_ADDR
// proposal and dynamic windows.
type VAddr = rma.VAddr

// WinCreate collectively exposes mem over the communicator with the
// given displacement unit (MPI_WIN_CREATE).
func (c *Comm) WinCreate(mem []byte, dispUnit int) (*Win, error) {
	if err := c.p.checkComm(c); err != nil {
		return nil, err
	}
	w, err := c.p.dev.WinCreate(mem, dispUnit, c.c)
	if err != nil {
		return nil, errc(ErrWin, "%v", err)
	}
	return &Win{p: c.p, w: w}, nil
}

// WinAllocate allocates size bytes and exposes them
// (MPI_WIN_ALLOCATE). Returns the window and the local memory.
func (c *Comm) WinAllocate(size, dispUnit int) (*Win, []byte, error) {
	mem := make([]byte, size)
	w, err := c.WinCreate(mem, dispUnit)
	if err != nil {
		return nil, nil, err
	}
	return w, mem, nil
}

// WinCreateDynamic collectively creates a window with no initial memory
// (MPI_WIN_CREATE_DYNAMIC); Attach exposes regions.
func (c *Comm) WinCreateDynamic() (*Win, error) {
	if err := c.p.checkComm(c); err != nil {
		return nil, err
	}
	w, err := c.p.dev.WinCreateDynamic(c.c)
	if err != nil {
		return nil, errc(ErrWin, "%v", err)
	}
	return &Win{p: c.p, w: w}, nil
}

// winAttacher is implemented by devices supporting dynamic windows.
type winAttacher interface {
	WinAttach(w *rma.Win, mem []byte) (rma.VAddr, error)
	WinDetach(w *rma.Win, mem []byte, va rma.VAddr) error
}

// Attach exposes mem through a dynamic window (MPI_WIN_ATTACH) and
// returns its remote virtual address (what MPI_GET_ADDRESS would hand
// the application to distribute).
func (w *Win) Attach(mem []byte) (VAddr, error) {
	att, ok := w.p.dev.(winAttacher)
	if !ok {
		return 0, errc(ErrWin, "device does not support dynamic windows")
	}
	va, err := att.WinAttach(w.w, mem)
	if err != nil {
		return 0, errc(ErrWin, "%v", err)
	}
	return va, nil
}

// Detach revokes an attachment (MPI_WIN_DETACH).
func (w *Win) Detach(mem []byte, va VAddr) error {
	att, ok := w.p.dev.(winAttacher)
	if !ok {
		return errc(ErrWin, "device does not support dynamic windows")
	}
	if err := att.WinDetach(w.w, mem, va); err != nil {
		return errc(ErrWin, "%v", err)
	}
	return nil
}

// Free collectively releases the window (MPI_WIN_FREE).
func (w *Win) Free() error {
	if err := w.p.dev.WinFree(w.w); err != nil {
		return errc(ErrWin, "%v", err)
	}
	return nil
}

// Mem returns the locally exposed memory.
func (w *Win) Mem() []byte { return w.w.Mem }

// BaseAddr returns the virtual address of byte 0 of target's window,
// for applications adopting the virtual-address proposal.
func (w *Win) BaseAddr(target int) VAddr { return w.w.BaseAddr(target) }

// rmaEnter charges the MPI-layer costs of a one-sided call.
func (w *Win) rmaEnter(origin []byte, count int, dt *Datatype, target, disp int) error {
	p := w.p
	p.chargeCall()
	unlock := p.chargeThread(nil, true)
	defer unlock()
	if p.bc.ErrorChecking {
		return p.checkRMAArgs(origin, count, dt, target, disp, w)
	}
	return nil
}

// Put transfers count elements of dt from origin into target's window
// at displacement disp (MPI_PUT).
func (w *Win) Put(origin []byte, count int, dt *Datatype, target, disp int) error {
	if end := w.p.span(TracePut, target, traceBytes(count, dt)); end != nil {
		defer end()
	}
	if err := w.rmaEnter(origin, count, dt, target, disp); err != nil {
		return err
	}
	if err := w.p.dev.Put(origin, count, dt, target, disp, w.w, 0); err != nil {
		return errc(ErrWin, "%v", err)
	}
	return nil
}

// PutVirtualAddr is the MPI_PUT_VIRTUAL_ADDR proposal (Section 3.2):
// the target location is a virtual address the application tracked, so
// the displacement-unit scaling and base dereference are skipped. Works
// on every window flavor, removing the dynamic-window disadvantages the
// paper describes.
func (w *Win) PutVirtualAddr(origin []byte, count int, dt *Datatype, target int, addr VAddr) error {
	if err := w.rmaEnter(origin, count, dt, target, int(addr)); err != nil {
		return err
	}
	if err := w.p.dev.Put(origin, count, dt, target, int(addr), w.w, core.FlagVirtAddr); err != nil {
		return errc(ErrWin, "%v", err)
	}
	return nil
}

// Get transfers from the target window into origin (MPI_GET).
func (w *Win) Get(origin []byte, count int, dt *Datatype, target, disp int) error {
	if end := w.p.span(TraceGet, target, traceBytes(count, dt)); end != nil {
		defer end()
	}
	if err := w.rmaEnter(origin, count, dt, target, disp); err != nil {
		return err
	}
	if err := w.p.dev.Get(origin, count, dt, target, disp, w.w, 0); err != nil {
		return errc(ErrWin, "%v", err)
	}
	return nil
}

// GetVirtualAddr is the get-side virtual-address fast path.
func (w *Win) GetVirtualAddr(origin []byte, count int, dt *Datatype, target int, addr VAddr) error {
	if err := w.rmaEnter(origin, count, dt, target, int(addr)); err != nil {
		return err
	}
	if err := w.p.dev.Get(origin, count, dt, target, int(addr), w.w, core.FlagVirtAddr); err != nil {
		return errc(ErrWin, "%v", err)
	}
	return nil
}

// Accumulate folds origin into the target window with op
// (MPI_ACCUMULATE). Elementwise atomicity matches MPI semantics.
func (w *Win) Accumulate(origin []byte, count int, dt *Datatype, target, disp int, op Op) error {
	if end := w.p.span(TraceAcc, target, traceBytes(count, dt)); end != nil {
		defer end()
	}
	if err := w.rmaEnter(origin, count, dt, target, disp); err != nil {
		return err
	}
	if err := w.p.dev.Accumulate(origin, count, dt, target, disp, op, w.w, 0); err != nil {
		return errc(ErrWin, "%v", err)
	}
	return nil
}

// GetAccumulate atomically fetches the prior target contents into
// result and folds origin in (MPI_GET_ACCUMULATE).
func (w *Win) GetAccumulate(origin, result []byte, count int, dt *Datatype, target, disp int, op Op) error {
	if err := w.rmaEnter(origin, count, dt, target, disp); err != nil {
		return err
	}
	if err := w.p.dev.GetAccumulate(origin, result, count, dt, target, disp, op, w.w, 0); err != nil {
		return errc(ErrWin, "%v", err)
	}
	return nil
}

// FetchAndOp is the single-element MPI_FETCH_AND_OP convenience.
func (w *Win) FetchAndOp(origin, result []byte, dt *Datatype, target, disp int, op Op) error {
	return w.GetAccumulate(origin, result, 1, dt, target, disp, op)
}

// Fence closes the current epoch and opens the next (MPI_WIN_FENCE).
func (w *Win) Fence() error {
	if end := w.p.span(TraceSync, -1, 0); end != nil {
		defer end()
	}
	w.p.chargeCall()
	unlock := w.p.chargeThread(nil, true)
	defer unlock()
	if err := w.p.dev.Fence(w.w); err != nil {
		return errc(ErrRMASync, "%v", err)
	}
	return nil
}

// FenceEnd closes the fence epoch sequence without opening another
// (MPI_WIN_FENCE with MPI_MODE_NOSUCCEED); required before switching
// to passive-target synchronization.
func (w *Win) FenceEnd() error {
	w.p.chargeCall()
	unlock := w.p.chargeThread(nil, true)
	defer unlock()
	if err := w.p.dev.FenceEnd(w.w); err != nil {
		return errc(ErrRMASync, "%v", err)
	}
	return nil
}

// Lock opens a passive-target epoch on target (MPI_WIN_LOCK).
func (w *Win) Lock(target int, exclusive bool) error {
	if err := w.p.dev.Lock(w.w, target, exclusive); err != nil {
		return errc(ErrRMASync, "%v", err)
	}
	return nil
}

// LockAll opens a shared passive-target epoch on every rank
// (MPI_WIN_LOCK_ALL): the window becomes accessible everywhere until
// UnlockAll, the MPI-3 idiom for long-lived one-sided phases.
func (w *Win) LockAll() error {
	size := w.w.Comm.Size()
	for target := 0; target < size; target++ {
		if err := w.p.dev.Lock(w.w, target, false); err != nil {
			return errc(ErrRMASync, "%v", err)
		}
		// The epoch tracker only holds one target; widen it manually.
		if target < size-1 {
			if _, err := w.w.CloseEpoch(); err != nil {
				return errc(ErrRMASync, "%v", err)
			}
		}
	}
	w.w.SetAccessGroup(allRanks(size))
	return nil
}

// UnlockAll flushes and closes the LockAll epoch (MPI_WIN_UNLOCK_ALL).
func (w *Win) UnlockAll() error {
	size := w.w.Comm.Size()
	// Flush everything, then release each shared lock.
	for target := size - 1; target >= 0; target-- {
		if target < size-1 {
			if err := w.w.OpenEpoch(rmaEpochLock, target); err != nil {
				return errc(ErrRMASync, "%v", err)
			}
		}
		if err := w.p.dev.Unlock(w.w, target); err != nil {
			return errc(ErrRMASync, "%v", err)
		}
	}
	return nil
}

func allRanks(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Unlock flushes and closes the passive epoch (MPI_WIN_UNLOCK).
func (w *Win) Unlock(target int) error {
	if err := w.p.dev.Unlock(w.w, target); err != nil {
		return errc(ErrRMASync, "%v", err)
	}
	return nil
}

// Flush completes outstanding operations to target without closing the
// epoch (MPI_WIN_FLUSH).
func (w *Win) Flush(target int) error {
	if err := w.p.dev.Flush(w.w, target); err != nil {
		return errc(ErrRMASync, "%v", err)
	}
	return nil
}
