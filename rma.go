package gompi

import (
	"gompi/internal/core"
	"gompi/internal/flight"
	"gompi/internal/rma"
)

// Win is a one-sided communication window (MPI_Win).
type Win struct {
	p *Proc
	w *rma.Win
}

// WinOptions carries window-creation assertions, mirroring the
// MPI_WIN_CREATE info keys the paper's Section 3 fast paths rely on.
// The zero value asserts nothing.
type WinOptions struct {
	// NoLocks asserts the window will never be locked (the no_locks
	// info key): passive-target synchronization is rejected, and the
	// implementation skips lock-state maintenance.
	NoLocks bool
	// SameDispUnit asserts every rank passed the same displacement unit
	// (the same_disp_unit info key), so target-offset scaling reads the
	// local unit instead of dereferencing the exchanged per-rank table.
	SameDispUnit bool
}

// VAddr is a remote virtual address for the MPI_PUT_VIRTUAL_ADDR
// proposal and dynamic windows.
type VAddr = rma.VAddr

// WinCreate collectively exposes mem over the communicator with the
// given displacement unit (MPI_WIN_CREATE).
func (c *Comm) WinCreate(mem []byte, dispUnit int) (*Win, error) {
	if err := c.p.checkComm(c); err != nil {
		return nil, err
	}
	w, err := c.p.dev.WinCreate(mem, dispUnit, c.c)
	if err != nil {
		return nil, errc(ErrWin, "%v", err)
	}
	return &Win{p: c.p, w: w}, nil
}

// WinAllocate allocates size bytes and exposes them
// (MPI_WIN_ALLOCATE). Returns the window and the local memory. On
// co-located ranks the allocation is shm-backed, so intra-node Put/Get
// take the zero-copy direct path (see DESIGN.md §6f).
func (c *Comm) WinAllocate(size, dispUnit int) (*Win, []byte, error) {
	mem := make([]byte, size)
	w, err := c.WinCreate(mem, dispUnit)
	if err != nil {
		return nil, nil, err
	}
	return w, mem, nil
}

// WinCreateOpt is WinCreate with creation-time assertions.
func (c *Comm) WinCreateOpt(mem []byte, dispUnit int, o WinOptions) (*Win, error) {
	w, err := c.WinCreate(mem, dispUnit)
	if err != nil {
		return nil, err
	}
	w.w.NoLocks = o.NoLocks
	w.w.SameDispUnit = o.SameDispUnit
	return w, nil
}

// WinAllocateOpt is WinAllocate with creation-time assertions.
func (c *Comm) WinAllocateOpt(size, dispUnit int, o WinOptions) (*Win, []byte, error) {
	w, mem, err := c.WinAllocate(size, dispUnit)
	if err != nil {
		return nil, nil, err
	}
	w.w.NoLocks = o.NoLocks
	w.w.SameDispUnit = o.SameDispUnit
	return w, mem, nil
}

// WinCreateDynamic collectively creates a window with no initial memory
// (MPI_WIN_CREATE_DYNAMIC); Attach exposes regions.
func (c *Comm) WinCreateDynamic() (*Win, error) {
	if err := c.p.checkComm(c); err != nil {
		return nil, err
	}
	w, err := c.p.dev.WinCreateDynamic(c.c)
	if err != nil {
		return nil, errc(ErrWin, "%v", err)
	}
	return &Win{p: c.p, w: w}, nil
}

// winAttacher is implemented by devices supporting dynamic windows.
type winAttacher interface {
	WinAttach(w *rma.Win, mem []byte) (rma.VAddr, error)
	WinDetach(w *rma.Win, mem []byte, va rma.VAddr) error
}

// Attach exposes mem through a dynamic window (MPI_WIN_ATTACH) and
// returns its remote virtual address (what MPI_GET_ADDRESS would hand
// the application to distribute).
func (w *Win) Attach(mem []byte) (VAddr, error) {
	att, ok := w.p.dev.(winAttacher)
	if !ok {
		return 0, errc(ErrWin, "device does not support dynamic windows")
	}
	va, err := att.WinAttach(w.w, mem)
	if err != nil {
		return 0, errc(ErrWin, "%v", err)
	}
	return va, nil
}

// Detach revokes an attachment (MPI_WIN_DETACH).
func (w *Win) Detach(mem []byte, va VAddr) error {
	att, ok := w.p.dev.(winAttacher)
	if !ok {
		return errc(ErrWin, "device does not support dynamic windows")
	}
	if err := att.WinDetach(w.w, mem, va); err != nil {
		return errc(ErrWin, "%v", err)
	}
	return nil
}

// Free collectively releases the window (MPI_WIN_FREE).
func (w *Win) Free() error {
	if err := w.p.dev.WinFree(w.w); err != nil {
		return errc(ErrWin, "%v", err)
	}
	return nil
}

// Mem returns the locally exposed memory.
func (w *Win) Mem() []byte { return w.w.Mem }

// BaseAddr returns the virtual address of byte 0 of target's window,
// for applications adopting the virtual-address proposal.
func (w *Win) BaseAddr(target int) VAddr { return w.w.BaseAddr(target) }

// rmaEnter charges the MPI-layer costs of a one-sided call.
func (w *Win) rmaEnter(origin []byte, count int, dt *Datatype, target, disp int) error {
	p := w.p
	p.chargeCall()
	unlock := p.chargeThread(nil, true)
	defer unlock()
	if p.bc.ErrorChecking {
		return p.checkRMAArgs(origin, count, dt, target, disp, w)
	}
	return nil
}

// Put transfers count elements of dt from origin into target's window
// at displacement disp (MPI_PUT).
func (w *Win) Put(origin []byte, count int, dt *Datatype, target, disp int) error {
	if end := w.p.span(TracePut, target, traceBytes(count, dt)); end != nil {
		defer end()
	}
	if err := w.rmaEnter(origin, count, dt, target, disp); err != nil {
		return err
	}
	if err := w.p.dev.Put(origin, count, dt, target, disp, w.w, 0); err != nil {
		return errc(ErrWin, "%v", err)
	}
	return nil
}

// PutOptions carries the per-call assertions of the fused one-sided
// fast path, mirroring SendOptions on the two-sided side.
type PutOptions struct {
	// GlobalRank asserts target is a world rank on a world-spanning
	// window, skipping communicator rank translation.
	GlobalRank bool
	// NoProcNull asserts target is not MPI_PROC_NULL, skipping the
	// check.
	NoProcNull bool
}

// AllPutOptions asserts every PutOptions fast-path condition at once —
// the one-sided analogue of AllSendOptions.
var AllPutOptions = PutOptions{GlobalRank: true, NoProcNull: true}

// PutOpt is Put with caller assertions. When every option is asserted
// and the transfer is a plain byte blob, the call collapses into the
// fused device entry (MPI_PUT_ALL_OPTS in the paper's terms): one
// constant instruction budget covering window load, epoch bump,
// displacement scaling, locality check, and descriptor injection —
// validation and rank translation are skipped entirely.
func (w *Win) PutOpt(origin []byte, count int, dt *Datatype, target, disp int, o PutOptions) error {
	if o == AllPutOptions && dt == Byte && count == len(origin) {
		if end := w.p.span(TracePut, target, len(origin)); end != nil {
			defer end()
		}
		if err := w.p.dev.PutAllOpts(origin, target, disp, w.w); err != nil {
			return errc(ErrWin, "%v", err)
		}
		return nil
	}
	// Partial assertions buy nothing on the one-sided path (the paper's
	// point: only full fusion collapses the layering); fall back.
	return w.Put(origin, count, dt, target, disp)
}

// PutVirtualAddr is the MPI_PUT_VIRTUAL_ADDR proposal (Section 3.2):
// the target location is a virtual address the application tracked, so
// the displacement-unit scaling and base dereference are skipped. Works
// on every window flavor, removing the dynamic-window disadvantages the
// paper describes.
func (w *Win) PutVirtualAddr(origin []byte, count int, dt *Datatype, target int, addr VAddr) error {
	if err := w.rmaEnter(origin, count, dt, target, int(addr)); err != nil {
		return err
	}
	if err := w.p.dev.Put(origin, count, dt, target, int(addr), w.w, core.FlagVirtAddr); err != nil {
		return errc(ErrWin, "%v", err)
	}
	return nil
}

// Get transfers from the target window into origin (MPI_GET).
func (w *Win) Get(origin []byte, count int, dt *Datatype, target, disp int) error {
	if end := w.p.span(TraceGet, target, traceBytes(count, dt)); end != nil {
		defer end()
	}
	if err := w.rmaEnter(origin, count, dt, target, disp); err != nil {
		return err
	}
	if err := w.p.dev.Get(origin, count, dt, target, disp, w.w, 0); err != nil {
		return errc(ErrWin, "%v", err)
	}
	return nil
}

// GetVirtualAddr is the get-side virtual-address fast path.
func (w *Win) GetVirtualAddr(origin []byte, count int, dt *Datatype, target int, addr VAddr) error {
	if err := w.rmaEnter(origin, count, dt, target, int(addr)); err != nil {
		return err
	}
	if err := w.p.dev.Get(origin, count, dt, target, int(addr), w.w, core.FlagVirtAddr); err != nil {
		return errc(ErrWin, "%v", err)
	}
	return nil
}

// Accumulate folds origin into the target window with op
// (MPI_ACCUMULATE). Elementwise atomicity matches MPI semantics.
func (w *Win) Accumulate(origin []byte, count int, dt *Datatype, target, disp int, op Op) error {
	if end := w.p.span(TraceAcc, target, traceBytes(count, dt)); end != nil {
		defer end()
	}
	if err := w.rmaEnter(origin, count, dt, target, disp); err != nil {
		return err
	}
	if err := w.p.dev.Accumulate(origin, count, dt, target, disp, op, w.w, 0); err != nil {
		return errc(ErrWin, "%v", err)
	}
	return nil
}

// GetAccumulate atomically fetches the prior target contents into
// result and folds origin in (MPI_GET_ACCUMULATE).
func (w *Win) GetAccumulate(origin, result []byte, count int, dt *Datatype, target, disp int, op Op) error {
	if err := w.rmaEnter(origin, count, dt, target, disp); err != nil {
		return err
	}
	if err := w.p.dev.GetAccumulate(origin, result, count, dt, target, disp, op, w.w, 0); err != nil {
		return errc(ErrWin, "%v", err)
	}
	return nil
}

// FetchAndOp is the single-element MPI_FETCH_AND_OP convenience.
func (w *Win) FetchAndOp(origin, result []byte, dt *Datatype, target, disp int, op Op) error {
	return w.GetAccumulate(origin, result, 1, dt, target, disp, op)
}

// Fence closes the current epoch and opens the next (MPI_WIN_FENCE).
func (w *Win) Fence() error {
	if end := w.p.span(TraceSync, -1, 0); end != nil {
		defer end()
	}
	w.p.chargeCall()
	unlock := w.p.chargeThread(nil, true)
	defer unlock()
	if err := w.p.dev.Fence(w.w); err != nil {
		return errc(ErrRMASync, "%v", err)
	}
	return nil
}

// FenceEnd closes the fence epoch sequence without opening another
// (MPI_WIN_FENCE with MPI_MODE_NOSUCCEED); required before switching
// to passive-target synchronization.
func (w *Win) FenceEnd() error {
	w.p.chargeCall()
	unlock := w.p.chargeThread(nil, true)
	defer unlock()
	if err := w.p.dev.FenceEnd(w.w); err != nil {
		return errc(ErrRMASync, "%v", err)
	}
	return nil
}

// Lock opens a passive-target epoch on target (MPI_WIN_LOCK).
func (w *Win) Lock(target int, exclusive bool) error {
	if end := w.p.span(TraceSync, target, 0); end != nil {
		defer end()
	}
	w.p.chargeCall()
	if w.w.NoLocks {
		return errc(ErrRMASync, "window created with NoLocks")
	}
	if err := w.p.dev.Lock(w.w, target, exclusive); err != nil {
		return errc(ErrRMASync, "%v", err)
	}
	return nil
}

// LockAll opens a shared passive-target epoch on every rank
// (MPI_WIN_LOCK_ALL): the window becomes accessible everywhere until
// UnlockAll, the MPI-3 idiom for long-lived one-sided phases. It is one
// epoch object — not n stacked Locks — so Flush keeps working against
// any target while the epoch stays open; the ch4 device opens it in a
// single round trip, the baseline pays the legacy per-target loop.
func (w *Win) LockAll() error { return w.lockAll(false) }

// LockAllExclusive opens the epoch with exclusive locks on every rank —
// the whole window becomes this origin's private property until
// UnlockAll. (MPI_WIN_LOCK_ALL is shared by definition; the exclusive
// flavor is the natural extension the flush redesign makes cheap.)
func (w *Win) LockAllExclusive() error { return w.lockAll(true) }

func (w *Win) lockAll(exclusive bool) error {
	if end := w.p.span(TraceSync, -1, 0); end != nil {
		defer end()
	}
	w.p.chargeCall()
	if w.w.NoLocks {
		return errc(ErrRMASync, "window created with NoLocks")
	}
	if err := w.p.dev.LockAll(w.w, exclusive); err != nil {
		return errc(ErrRMASync, "%v", err)
	}
	return nil
}

// UnlockAll flushes and closes the LockAll epoch (MPI_WIN_UNLOCK_ALL).
func (w *Win) UnlockAll() error {
	if end := w.p.span(TraceSync, -1, 0); end != nil {
		defer end()
	}
	w.p.chargeCall()
	if err := w.p.dev.UnlockAll(w.w); err != nil {
		return errc(ErrRMASync, "%v", err)
	}
	return nil
}

// Unlock flushes and closes the passive epoch (MPI_WIN_UNLOCK).
func (w *Win) Unlock(target int) error {
	if err := w.p.dev.Unlock(w.w, target); err != nil {
		return errc(ErrRMASync, "%v", err)
	}
	return nil
}

// Flush completes all outstanding operations to target at both origin
// and target without closing the epoch (MPI_WIN_FLUSH) — the primitive
// the foMPI-style passive-target redesign is built around: synchronize
// data, not epochs.
func (w *Win) Flush(target int) error {
	if end := w.p.span(TraceFlush, target, 0); end != nil {
		defer end()
	}
	w.p.chargeCall()
	if err := w.p.dev.Flush(w.w, target); err != nil {
		return errc(ErrRMASync, "%v", err)
	}
	return nil
}

// FlushLocal completes outstanding operations to target locally
// (MPI_WIN_FLUSH_LOCAL): the origin buffers are reusable, remote
// completion is not implied.
func (w *Win) FlushLocal(target int) error {
	if end := w.p.span(TraceFlush, target, 0); end != nil {
		defer end()
	}
	w.p.chargeCall()
	if err := w.p.dev.FlushLocal(w.w, target); err != nil {
		return errc(ErrRMASync, "%v", err)
	}
	return nil
}

// FlushAll completes outstanding operations to every target
// (MPI_WIN_FLUSH_ALL). On the ch4 device this is one completion wait —
// not a per-target loop — so its cost is independent of world size.
func (w *Win) FlushAll() error {
	if end := w.p.span(TraceFlush, -1, 0); end != nil {
		defer end()
	}
	w.p.chargeCall()
	if err := w.p.dev.FlushAll(w.w); err != nil {
		return errc(ErrRMASync, "%v", err)
	}
	return nil
}

// FlushLocalAll locally completes outstanding operations to every
// target (MPI_WIN_FLUSH_LOCAL_ALL).
func (w *Win) FlushLocalAll() error {
	if end := w.p.span(TraceFlush, -1, 0); end != nil {
		defer end()
	}
	w.p.chargeCall()
	if err := w.p.dev.FlushLocal(w.w, -1); err != nil {
		return errc(ErrRMASync, "%v", err)
	}
	return nil
}

// Rput is the request-based MPI_RPUT: the put is issued immediately and
// the returned request completes when the transfer is remotely
// complete, progressed off the same request engine as two-sided
// traffic. Only valid inside a passive-target epoch.
func (w *Win) Rput(origin []byte, count int, dt *Datatype, target, disp int) (*Request, error) {
	if end := w.p.span(TracePut, target, traceBytes(count, dt)); end != nil {
		defer end()
	}
	if err := w.rmaEnter(origin, count, dt, target, disp); err != nil {
		return nil, err
	}
	if err := w.p.dev.Put(origin, count, dt, target, disp, w.w, 0); err != nil {
		return nil, errc(ErrWin, "%v", err)
	}
	return w.flushRequest(target)
}

// Rget is the request-based MPI_RGET.
func (w *Win) Rget(origin []byte, count int, dt *Datatype, target, disp int) (*Request, error) {
	if end := w.p.span(TraceGet, target, traceBytes(count, dt)); end != nil {
		defer end()
	}
	if err := w.rmaEnter(origin, count, dt, target, disp); err != nil {
		return nil, err
	}
	if err := w.p.dev.Get(origin, count, dt, target, disp, w.w, 0); err != nil {
		return nil, errc(ErrWin, "%v", err)
	}
	return w.flushRequest(target)
}

// Raccumulate is the request-based MPI_RACCUMULATE.
func (w *Win) Raccumulate(origin []byte, count int, dt *Datatype, target, disp int, op Op) (*Request, error) {
	if end := w.p.span(TraceAcc, target, traceBytes(count, dt)); end != nil {
		defer end()
	}
	if err := w.rmaEnter(origin, count, dt, target, disp); err != nil {
		return nil, err
	}
	if err := w.p.dev.Accumulate(origin, count, dt, target, disp, op, w.w, 0); err != nil {
		return nil, errc(ErrWin, "%v", err)
	}
	return w.flushRequest(target)
}

// flushRequest wraps the device's completion request for the public
// request machinery (Wait/Test/Waitall compose with two-sided
// requests).
func (w *Win) flushRequest(target int) (*Request, error) {
	r, err := w.p.dev.FlushRequest(w.w, target)
	if err != nil {
		return nil, errc(ErrWin, "%v", err)
	}
	return &Request{r: r, p: w.p}, nil
}

// tagWinNotify is the reserved collective-context tag notified access
// rides on (post/complete tokens use 700/701).
const tagWinNotify = 704

// PutNotify transfers like Put, then delivers a notification the
// target can await with WaitNotify — the foMPI-style notified access
// that replaces "put + fence" or "put + send flag" idioms with one
// call. The notification orders after the data: the put is flushed
// before the token is sent, so a target returning from WaitNotify reads
// the new window contents.
func (w *Win) PutNotify(origin []byte, count int, dt *Datatype, target, disp int) error {
	if end := w.p.span(TraceNotify, target, traceBytes(count, dt)); end != nil {
		defer end()
	}
	if err := w.rmaEnter(origin, count, dt, target, disp); err != nil {
		return err
	}
	if err := w.p.dev.Put(origin, count, dt, target, disp, w.w, 0); err != nil {
		return errc(ErrWin, "%v", err)
	}
	if err := w.p.dev.Flush(w.w, target); err != nil {
		return errc(ErrRMASync, "%v", err)
	}
	w.p.rank.Metrics().NoteRmaNotify()
	cv := w.w.Comm.CollView()
	if _, err := w.p.dev.Isend(nil, 0, Byte, target, tagWinNotify, cv, core.FlagNoReq|core.FlagNoProcNull); err != nil {
		return errc(ErrRMASync, "notify token to %d: %v", target, err)
	}
	return nil
}

// WaitNotify blocks until a notification from origin arrives
// (origin = AnySource accepts any rank) and returns the notifying rank.
// The rank parks in the request engine while waiting, so a lost
// notification is diagnosed by the stall watchdog's wait graph like any
// unmatched receive.
func (w *Win) WaitNotify(origin int) (int, error) {
	if end := w.p.span(TraceNotify, origin, 0); end != nil {
		defer end()
	}
	w.p.chargeCall()
	m := w.p.rank.Metrics()
	start := w.p.rank.Now()
	m.Flight.Record(flight.NotifyWait, int64(start), origin, 0, -1)
	cv := w.w.Comm.CollView()
	req, err := w.p.dev.Irecv(nil, 0, Byte, origin, tagWinNotify, cv, core.FlagNoProcNull)
	if err != nil {
		return -1, errc(ErrRMASync, "notify token from %d: %v", origin, err)
	}
	req.Wait()
	src := req.Status.Source
	req.Free()
	m.NoteRmaNotify()
	m.Lat.NotifyWait.Observe(int64(w.p.rank.Now() - start))
	return src, nil
}
