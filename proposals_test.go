package gompi

import (
	"fmt"
	"testing"

	"gompi/internal/core"
)

// Flag combinations for the proposal-ladder measurement.
const (
	flagNoMatchNoReq       = core.FlagNoMatch | core.FlagNoReq
	flagNoMatchNoReqGlobal = flagNoMatchNoReq | core.FlagGlobalRank
	flagAllButPredef       = flagNoMatchNoReqGlobal | core.FlagNoProcNull
)

// ipoCfg is the fastest MPI-3.1-conformant build, the baseline for
// proposal measurements (Figure 6 runs on the infinitely fast network).
var ipoCfg = Config{Device: "ch4", Fabric: "inf", Build: "no-err-single-ipo"}

func TestIsendGlobalPublic(t *testing.T) {
	const n = 4
	run(t, n, Config{Fabric: "ofi"}, func(p *Proc) error {
		w := p.World()
		// Build a reversed subcommunicator so comm ranks != world ranks.
		sub, err := w.Split(0, n-p.Rank())
		if err != nil {
			return err
		}
		// Stencil pattern: precompute the right neighbor's WORLD rank
		// once (MPI_GROUP_TRANSLATE_RANKS style), then send with the
		// global-rank call.
		rightComm := (sub.Rank() + 1) % n
		rightWorld, err := sub.WorldRank(rightComm)
		if err != nil {
			return err
		}
		req, err := sub.IsendGlobal([]byte{byte(sub.Rank())}, 1, Byte, rightWorld, 0)
		if err != nil {
			return err
		}
		buf := make([]byte, 1)
		leftComm := (sub.Rank() - 1 + n) % n
		st, err := sub.Recv(buf, 1, Byte, leftComm, 0)
		if err != nil {
			return err
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
		if int(buf[0]) != leftComm || st.Source != leftComm {
			return fmt.Errorf("global-rank send delivered %d from %d, want %d", buf[0], st.Source, leftComm)
		}
		return nil
	})
}

func TestIsendNPNPublic(t *testing.T) {
	run(t, 2, Config{}, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			req, err := w.IsendNPN([]byte{5}, 1, Byte, 1, 0)
			if err != nil {
				return err
			}
			_, err = req.Wait()
			return err
		}
		buf := make([]byte, 1)
		_, err := w.Recv(buf, 1, Byte, 0, 0)
		if err != nil {
			return err
		}
		if buf[0] != 5 {
			return fmt.Errorf("NPN send delivered %d", buf[0])
		}
		return nil
	})
}

func TestNoReqCommWaitallPublic(t *testing.T) {
	run(t, 2, Config{Fabric: "ucx"}, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			for i := 0; i < 20; i++ {
				if err := w.IsendNoReq([]byte{byte(i)}, 1, Byte, 1, i); err != nil {
					return err
				}
			}
			return w.CommWaitall()
		}
		for i := 0; i < 20; i++ {
			buf := make([]byte, 1)
			if _, err := w.Recv(buf, 1, Byte, 0, i); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestNoMatchArrivalOrder(t *testing.T) {
	run(t, 2, Config{}, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			for i := 0; i < 8; i++ {
				req, err := w.IsendNoMatch([]byte{byte(i)}, 1, Byte, 1)
				if err != nil {
					return err
				}
				if _, err := req.Wait(); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < 8; i++ {
			buf := make([]byte, 1)
			if _, err := w.RecvNoMatch(buf, 1, Byte); err != nil {
				return err
			}
			if buf[0] != byte(i) {
				return fmt.Errorf("arrival order: got %d at %d", buf[0], i)
			}
		}
		return nil
	})
}

func TestPredefinedCommPublic(t *testing.T) {
	run(t, 2, Config{}, func(p *Proc) error {
		w := p.World()
		if _, err := w.DupPredefined(Comm1); err != nil {
			return err
		}
		if p.PredefComm(Comm1) == nil {
			return fmt.Errorf("predefined slot empty after dup")
		}
		if p.PredefComm(Comm2) != nil {
			return fmt.Errorf("unpopulated slot non-nil")
		}
		if p.Rank() == 0 {
			req, err := p.IsendPredef(Comm1, []byte{3}, 1, Byte, 1, 0)
			if err != nil {
				return err
			}
			_, err = req.Wait()
			return err
		}
		buf := make([]byte, 1)
		_, err := p.PredefComm(Comm1).Recv(buf, 1, Byte, 0, 0)
		if err != nil {
			return err
		}
		if buf[0] != 3 {
			return fmt.Errorf("predef comm delivered %d", buf[0])
		}
		return nil
	})
}

func TestPredefinedHandleValidation(t *testing.T) {
	run(t, 1, Config{}, func(p *Proc) error {
		w := p.World()
		if _, err := w.DupPredefined(CommHandle(99)); ClassOf(err) != ErrArg {
			return fmt.Errorf("bad handle accepted: %v", err)
		}
		if _, err := p.IsendPredef(Comm3, []byte{1}, 1, Byte, 0, 0); ClassOf(err) != ErrComm {
			return fmt.Errorf("unpopulated handle accepted: %v", err)
		}
		return nil
	})
}

func TestAllOptsPublic(t *testing.T) {
	run(t, 2, ipoCfg, func(p *Proc) error {
		w := p.World()
		if _, err := w.DupPredefined(Comm1); err != nil {
			return err
		}
		if p.Rank() == 0 {
			for i := 0; i < 4; i++ {
				if err := p.IsendAllOpts(Comm1, []byte{byte(40 + i)}, 1); err != nil {
					return err
				}
			}
			return p.PredefComm(Comm1).CommWaitall()
		}
		for i := 0; i < 4; i++ {
			buf := make([]byte, 1)
			if _, err := p.PredefComm(Comm1).RecvNoMatch(buf, 1, Byte); err != nil {
				return err
			}
			if buf[0] != byte(40+i) {
				return fmt.Errorf("all-opts arrival order: %d at %d", buf[0], i)
			}
		}
		return nil
	})
}

// measureIsend returns the MPI instruction cost of one send variant on
// the ipo build.
func measureIsend(p *Proc, send func() error) (int64, error) {
	before := p.Counters()
	if err := send(); err != nil {
		return 0, err
	}
	return p.Counters().Sub(before).TotalInstr, nil
}

// TestProposalLadderPublic verifies the Figure 6 ordering end-to-end:
// each proposal strictly reduces the instruction count, bottoming out
// at 16 for the fused path.
func TestProposalLadderPublic(t *testing.T) {
	run(t, 2, ipoCfg, func(p *Proc) error {
		w := p.World()
		if _, err := w.DupPredefined(Comm1); err != nil {
			return err
		}
		if p.Rank() != 0 {
			for i := 0; i < 4; i++ {
				buf := make([]byte, 1)
				if _, err := w.RecvNoMatch(buf, 1, Byte); err != nil {
					return err
				}
			}
			buf := make([]byte, 1)
			if _, err := p.PredefComm(Comm1).RecvNoMatch(buf, 1, Byte); err != nil {
				return err
			}
			return nil
		}
		buf := []byte{1}
		// Baseline: a no-match send (the receiver is in arrival-order
		// mode); each step stacks one more proposal flag through the
		// MPI layer, the last being the fused all-opts path.
		base, err := measureIsend(p, func() error { _, e := w.IsendNoMatch(buf, 1, Byte, 1); return e })
		if err != nil {
			return err
		}
		noReq, err := measureIsend(p, func() error {
			_, e := w.isend(buf, 1, Byte, 1, 0, flagNoMatchNoReq)
			return e
		})
		if err != nil {
			return err
		}
		glob, err := measureIsend(p, func() error {
			_, e := w.isend(buf, 1, Byte, 1, 0, flagNoMatchNoReqGlobal)
			return e
		})
		if err != nil {
			return err
		}
		npn, err := measureIsend(p, func() error {
			_, e := w.isend(buf, 1, Byte, 1, 0, flagAllButPredef)
			return e
		})
		if err != nil {
			return err
		}
		all, err := measureIsend(p, func() error { return p.IsendAllOpts(Comm1, buf, 1) })
		if err != nil {
			return err
		}
		if !(base > noReq && noReq > glob && glob > npn && npn > all) {
			return fmt.Errorf("ladder not strictly decreasing: %d %d %d %d %d", base, noReq, glob, npn, all)
		}
		if all != 16 {
			return fmt.Errorf("all-opts = %d instructions, want 16", all)
		}
		if err := w.CommWaitall(); err != nil {
			return err
		}
		return p.PredefComm(Comm1).CommWaitall()
	})
}

// TestNoMatchInfoHintAlternative verifies the Section 3.6 alternative:
// the "allow overtaking" info hint gives the same wire semantics as
// MPI_ISEND_NOMATCH but costs an extra dereference and branch (4
// instructions), shrinking to just the branch (2) when the
// communicator is a predefined handle — the paper's exact analysis.
func TestNoMatchInfoHintAlternative(t *testing.T) {
	run(t, 2, ipoCfg, func(p *Proc) error {
		w := p.World()
		hinted, err := w.DupPredefined(Comm1)
		if err != nil {
			return err
		}
		hinted.SetInfo("mpi_assert_allow_overtaking", "true")
		if p.Rank() != 0 {
			buf := make([]byte, 1)
			for i := 0; i < 3; i++ {
				if _, err := hinted.RecvNoMatch(buf, 1, Byte); err != nil {
					return err
				}
			}
			return nil
		}
		buf := []byte{1}
		measure := func(send func() error) (int64, error) {
			before := p.Counters()
			if err := send(); err != nil {
				return 0, err
			}
			return p.Counters().Sub(before).TotalInstr, nil
		}
		// Dedicated function on the hinted comm (flag wins the switch).
		fn, err := measure(func() error {
			req, e := hinted.IsendNoMatch(buf, 1, Byte, 1)
			if e != nil {
				return e
			}
			_, e = req.Wait()
			return e
		})
		if err != nil {
			return err
		}
		// Hint-driven path through the plain Isend.
		hint, err := measure(func() error {
			req, e := hinted.Isend(buf, 1, Byte, 1, 0)
			if e != nil {
				return e
			}
			_, e = req.Wait()
			return e
		})
		if err != nil {
			return err
		}
		if hint-fn != 4 {
			return fmt.Errorf("hint cost %d vs function %d: delta %d, want 4", hint, fn, hint-fn)
		}
		// With the predefined-handle flag, only the branch remains.
		hintPredef, err := measure(func() error {
			req, e := p.IsendPredef(Comm1, buf, 1, Byte, 1, 0)
			if e != nil {
				return e
			}
			_, e = req.Wait()
			return e
		})
		if err != nil {
			return err
		}
		fnPredefExpected := fn - 7 // predefined handle saves the comm deref
		if hintPredef-fnPredefExpected != 2 {
			return fmt.Errorf("predef hint = %d, function-equivalent %d: delta %d, want 2",
				hintPredef, fnPredefExpected, hintPredef-fnPredefExpected)
		}
		return nil
	})
}

// TestClass3DatatypeSurvivesInlining reproduces the Section 2.2
// datatype-usage analysis: class-2 usage (a compile-time-constant
// predefined type) loses its redundant runtime checks under link-time
// inlining, but class-3 usage (a predefined type reached through a
// runtime variable, the LULESH/Nekbone idiom) keeps the datatype check
// even in the ipo build.
func TestClass3DatatypeSurvivesInlining(t *testing.T) {
	run(t, 2, ipoCfg, func(p *Proc) error {
		w := p.World()
		if p.Rank() != 0 {
			buf := make([]byte, 8)
			for i := 0; i < 2; i++ {
				if _, err := w.Recv(buf, 8, Byte, 0, 0); err != nil {
					return err
				}
			}
			return nil
		}
		buf := make([]byte, 8)
		measure := func(dt *Datatype) (int64, error) {
			before := p.Counters()
			req, err := w.Isend(buf, 8, dt, 1, 0)
			if err != nil {
				return 0, err
			}
			if _, err := req.Wait(); err != nil {
				return 0, err
			}
			return p.Counters().Sub(before).Redundant, nil
		}
		class2, err := measure(Byte) // compile-time constant
		if err != nil {
			return err
		}
		class3, err := measure(Byte.AsRuntimeMapped()) // runtime variable
		if err != nil {
			return err
		}
		if class2 != 0 {
			return fmt.Errorf("class-2 redundant = %d under ipo, want 0", class2)
		}
		if class3 != 14 {
			return fmt.Errorf("class-3 redundant = %d under ipo, want 14 (datatype re-derivation)", class3)
		}
		return nil
	})
}
