package gompi

import (
	"bytes"
	"errors"
	"fmt"
	"regexp"
	"strconv"
	"testing"
	"time"
)

// TestWatchdogTripsOnDeadlock drives the canonical deadlock — two ranks
// each blocked in a Recv the other will never satisfy — and checks that
// the stall watchdog trips, Run surfaces ErrStalled, and the diagnosis
// names the unmatched posted receives on both ranks with the
// who-waits-on-whom edges.
func TestWatchdogTripsOnDeadlock(t *testing.T) {
	for _, dev := range []DeviceKind{DeviceCH4, DeviceOriginal} {
		t.Run(string(dev), func(t *testing.T) {
			var diag bytes.Buffer
			var st Stats
			cfg := Config{
				Device: dev, Fabric: "ofi",
				Watchdog:         true,
				WatchdogInterval: 5 * time.Millisecond,
				DiagWriter:       &diag,
				Stats:            &st,
			}
			err := Run(2, cfg, func(p *Proc) error {
				w := p.World()
				buf := make([]byte, 8)
				// Both ranks receive from the other; nobody ever sends.
				_, err := w.Recv(buf, 8, Byte, 1-p.Rank(), 0)
				return err
			})
			if !errors.Is(err, ErrStalled) {
				t.Fatalf("err = %v, want ErrStalled", err)
			}
			if st.WatchdogTrips != 1 {
				t.Errorf("WatchdogTrips = %d, want 1", st.WatchdogTrips)
			}
			out := diag.String()
			if !bytes.Contains(diag.Bytes(), []byte("stall watchdog tripped")) {
				t.Errorf("diagnosis missing trip header:\n%s", out)
			}
			// Both ranks' unmatched posted receives must be named, with
			// the concrete source each is waiting on.
			for rank := 0; rank < 2; rank++ {
				want := fmt.Sprintf("src=%d tag=0", 1-rank)
				if !bytes.Contains(diag.Bytes(), []byte(want)) {
					t.Errorf("diagnosis missing posted receive %q on rank %d:\n%s", want, rank, out)
				}
			}
			if !bytes.Contains(diag.Bytes(), []byte("posted recv")) {
				t.Errorf("diagnosis missing posted-recv lines:\n%s", out)
			}
			if dev == DeviceCH4 {
				// The fabric wait-graph renders explicit edges.
				for _, want := range []string{"rank 0 waits on rank 1", "rank 1 waits on rank 0"} {
					if !bytes.Contains(diag.Bytes(), []byte(want)) {
						t.Errorf("diagnosis missing edge %q:\n%s", want, out)
					}
				}
			}
			if !bytes.Contains(diag.Bytes(), []byte("flight recorder")) {
				t.Errorf("diagnosis missing flight-recorder dump:\n%s", out)
			}
		})
	}
}

// promCount extracts the value of a metric_count{rank="all"} line.
func promCount(t *testing.T, prom, metric string) int64 {
	t.Helper()
	re := regexp.MustCompile(regexp.QuoteMeta(metric) + `_count\{rank="all"\} (\d+)`)
	m := re.FindStringSubmatch(prom)
	if m == nil {
		t.Fatalf("metric %s_count{rank=\"all\"} not found in prom output", metric)
	}
	n, err := strconv.ParseInt(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestWatchdogHealthyRunAndProm runs a healthy 4-rank exchange with the
// watchdog armed: zero trips, no diagnosis output, and the Prometheus
// export reports post→match and unexpected-residency percentiles with
// real observation counts.
func TestWatchdogHealthyRunAndProm(t *testing.T) {
	var diag bytes.Buffer
	var st Stats
	cfg := Config{
		Device: "ch4", Fabric: "ofi", RanksPerNode: 2,
		Watchdog:   true,
		DiagWriter: &diag,
		Stats:      &st,
	}
	const msgs = 8
	err := Run(4, cfg, func(p *Proc) error {
		w := p.World()
		next := (p.Rank() + 1) % p.Size()
		prev := (p.Rank() + p.Size() - 1) % p.Size()
		// Send first so some messages land unexpected, then receive;
		// a second round posts receives before the barrier-released
		// sends so post→match also sees non-trivial spans.
		for i := 0; i < msgs; i++ {
			if err := w.Send([]byte{byte(i)}, 1, Byte, next, i); err != nil {
				return err
			}
		}
		buf := make([]byte, 1)
		for i := 0; i < msgs; i++ {
			if _, err := w.Recv(buf, 1, Byte, prev, i); err != nil {
				return err
			}
		}
		return w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.WatchdogTrips != 0 {
		t.Fatalf("WatchdogTrips = %d, want 0", st.WatchdogTrips)
	}
	if diag.Len() != 0 {
		t.Errorf("healthy run wrote a diagnosis:\n%s", diag.String())
	}

	var prom bytes.Buffer
	if err := st.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	out := prom.String()
	for _, metric := range []string{"gompi_post_match_cycles", "gompi_unexpected_residency_cycles"} {
		if n := promCount(t, out, metric); n == 0 {
			t.Errorf("%s_count = 0, want > 0", metric)
		}
		if !bytes.Contains(prom.Bytes(), []byte(metric+`{rank="all",quantile="0.99"}`)) {
			t.Errorf("prom output missing %s p99 quantile", metric)
		}
	}
	// Per-rank series and the path counters must be present too.
	for _, want := range []string{
		`gompi_post_match_cycles{rank="0",quantile="0.5"}`,
		`gompi_path_msgs_total{rank="all",path="eager"}`,
		`gompi_virtual_cycles{rank="3"}`,
		"gompi_watchdog_trips_total 0",
	} {
		if !bytes.Contains(prom.Bytes(), []byte(want)) {
			t.Errorf("prom output missing %q", want)
		}
	}
}

// TestChaosWatchdogNoFalseTrips is the CI guard against watchdog false
// positives: a healthy chaos round (random traffic, both devices, shm
// and netmod) with the watchdog armed at its default interval must
// finish clean with zero trips. Run under -race via the ordinary test
// suite.
func TestChaosWatchdogNoFalseTrips(t *testing.T) {
	configs := []Config{
		{Device: "ch4", Fabric: "ofi", RanksPerNode: 2, Watchdog: true},
		{Device: "original", Fabric: "ofi", Watchdog: true},
	}
	for ci, cfg := range configs {
		cfg := cfg
		t.Run(cfgName(cfg), func(t *testing.T) {
			var st Stats
			var diag bytes.Buffer
			cfg.Stats = &st
			cfg.DiagWriter = &diag
			chaosRound(t, cfg, int64(4000+ci))
			if st.WatchdogTrips != 0 {
				t.Fatalf("WatchdogTrips = %d, want 0\n%s", st.WatchdogTrips, diag.String())
			}
			if diag.Len() != 0 {
				t.Errorf("healthy chaos round wrote a diagnosis:\n%s", diag.String())
			}
		})
	}
}

// TestDumpStateInBody checks the in-body diagnosis entry point: a rank
// can dump the world state at any time, and the dump carries the header,
// every rank's clock line, and the device wait graph.
func TestDumpStateInBody(t *testing.T) {
	var dump bytes.Buffer
	run(t, 2, Config{Device: "ch4", Fabric: "inf"}, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			if err := w.Send([]byte{1}, 1, Byte, 1, 0); err != nil {
				return err
			}
			p.DumpState(&dump)
		} else {
			if _, err := w.Recv(make([]byte, 1), 1, Byte, 0, 0); err != nil {
				return err
			}
		}
		return w.Barrier()
	})
	out := dump.String()
	for _, want := range []string{"gompi state dump", "rank 0: vcycles=", "rank 1: vcycles=", "wait-graph"} {
		if !bytes.Contains(dump.Bytes(), []byte(want)) {
			t.Errorf("DumpState output missing %q:\n%s", want, out)
		}
	}
}

// TestStatsTraceEventsEdges pins Stats.TraceEvents behavior at the
// edges: out-of-range ranks return nil, and a run without tracing
// returns no events for any rank.
func TestStatsTraceEventsEdges(t *testing.T) {
	body := func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			return w.Send([]byte{1}, 1, Byte, 1, 0)
		}
		_, err := w.Recv(make([]byte, 1), 1, Byte, 0, 0)
		return err
	}

	st, err := RunStats(2, Config{Fabric: "inf", Trace: true}, body)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.TraceEvents(0)) == 0 {
		t.Error("traced run has no events for rank 0")
	}
	for _, rank := range []int{-1, 2, 1000} {
		if ev := st.TraceEvents(rank); ev != nil {
			t.Errorf("TraceEvents(%d) = %d events, want nil", rank, len(ev))
		}
	}

	st, err = RunStats(2, Config{Fabric: "inf"}, body)
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 2; rank++ {
		if ev := st.TraceEvents(rank); len(ev) != 0 {
			t.Errorf("untraced run: TraceEvents(%d) = %d events, want 0", rank, len(ev))
		}
	}
}
