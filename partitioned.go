package gompi

import (
	"sync"

	"gompi/internal/core"
	"gompi/internal/flight"
	"gompi/internal/match"
	"gompi/internal/request"
)

// Partitioned point-to-point communication (MPI-4 MPI_PSEND_INIT /
// MPI_PRECV_INIT / MPI_PREADY / MPI_PARRIVED): the application declares
// the full transfer shape once — a buffer divided into partitions — and
// then marks partitions ready from as many producer goroutines as it
// likes. The library aggregates consecutive partitions into chunks
// bounded by the shm-handoff threshold (falling back to the eager
// limit) and publishes each chunk the moment its last partition is
// ready. Chunk tags are drawn from a reserved range and differ per
// chunk, so the ch4 device's (context,tag) VCI hash spreads concurrent
// producers across disjoint virtual interfaces — the declared-shape
// answer to the paper's big-lock contention analysis. A partition
// larger than the threshold becomes its own chunk and rides the
// zero-copy handoff path on-node automatically.

// PartitionedOp is an initialized partitioned send or receive. Start,
// Wait, and Parrived belong to the owning rank; Pready and PreadyRange
// may be called concurrently from any number of producer goroutines.
type PartitionedOp struct {
	c          *Comm
	send       bool
	buf        []byte
	partitions int
	partBytes  int
	peer       int
	tag        int

	chunks  []partChunk
	toChunk []int // partition index -> chunk index

	// mu guards the activation state and serializes this operation's
	// device injections: producers of one operation contend only here,
	// never on a process-wide lock.
	mu       sync.Mutex
	started  bool
	ready    []bool // per partition (send side)
	readyCnt []int  // per chunk: partitions marked ready (send side)
	arrived  []bool // per chunk: completion observed (recv side)
	reqs     []*request.Request
	opErr    error
}

// partChunk is one wire transfer: partitions [lo,hi) occupying
// buf[off:off+n].
type partChunk struct {
	lo, hi int
	off, n int
}

// partChunkBound resolves the aggregation bound: the zero-copy handoff
// threshold when the device has one, else the eager limit, else a page.
func (c *Comm) partChunkBound() int {
	if h := c.nbcPort().HandoffEager(); h > 0 {
		return h
	}
	if c.p.eagerLimit > 0 {
		return c.p.eagerLimit
	}
	return 4096
}

// partitionChunks derives the deterministic chunking: greedy
// aggregation of consecutive partitions up to bound bytes, an
// oversized partition forming its own chunk. Sender and receiver run
// this from the same declared shape, so both sides agree on every
// chunk's byte range and tag without negotiation.
func partitionChunks(partitions, partBytes, bound int) []partChunk {
	chunks := make([]partChunk, 0, 4)
	lo := 0
	for lo < partitions {
		hi := lo + 1
		n := partBytes
		for hi < partitions && n+partBytes <= bound {
			n += partBytes
			hi++
		}
		chunks = append(chunks, partChunk{lo: lo, hi: hi, off: lo * partBytes, n: n})
		lo = hi
	}
	return chunks
}

// pinit validates and builds one side of a partitioned operation.
func (c *Comm) pinit(buf []byte, partitions, count int, dt *Datatype, peer, tag int, send bool) (*PartitionedOp, error) {
	if c.p.bc.ErrorChecking {
		if err := c.p.checkSendArgs(buf, partitions*count, dt, peer, tag, c, false); err != nil {
			return nil, err
		}
		if partitions < 1 {
			return nil, errc(ErrArg, "partitioned: %d partitions", partitions)
		}
		if tag >= match.TagPartMaxUserTag {
			return nil, errc(ErrTag, "partitioned: tag %d exceeds %d", tag, match.TagPartMaxUserTag-1)
		}
	}
	o := &PartitionedOp{
		c: c, send: send, buf: buf,
		partitions: partitions, partBytes: count * dt.Size(),
		peer: peer, tag: tag,
	}
	if send {
		// Readiness is tracked even against PROC_NULL: Pready must
		// still enforce the once-per-partition contract there.
		o.ready = make([]bool, partitions)
	}
	if peer != ProcNull {
		o.chunks = partitionChunks(partitions, o.partBytes, c.partChunkBound())
		if len(o.chunks) > match.TagPartMaxChunks {
			return nil, errc(ErrArg, "partitioned: %d chunks exceed the %d-tag window", len(o.chunks), match.TagPartMaxChunks)
		}
		o.toChunk = make([]int, partitions)
		for ci, ch := range o.chunks {
			for i := ch.lo; i < ch.hi; i++ {
				o.toChunk[i] = ci
			}
		}
		o.reqs = make([]*request.Request, len(o.chunks))
		if send {
			o.readyCnt = make([]int, len(o.chunks))
		} else {
			o.arrived = make([]bool, len(o.chunks))
		}
	}
	return o, nil
}

// PsendInit declares a partitioned send (MPI_PSEND_INIT): partitions
// partitions of count elements each, transferred to dest as each is
// marked ready. Arguments are validated once, here.
func (c *Comm) PsendInit(buf []byte, partitions, count int, dt *Datatype, dest, tag int) (*PartitionedOp, error) {
	return c.pinit(buf, partitions, count, dt, dest, tag, true)
}

// PrecvInit declares a partitioned receive (MPI_PRECV_INIT). The
// declared shape must match the sender's: same partition count, same
// per-partition size.
func (c *Comm) PrecvInit(buf []byte, partitions, count int, dt *Datatype, src, tag int) (*PartitionedOp, error) {
	return c.pinit(buf, partitions, count, dt, src, tag, false)
}

// chunkTag encodes chunk ci's matching tag in the reserved partitioned
// range on the collective context.
func (o *PartitionedOp) chunkTag(ci int) int {
	return match.TagPartBase + o.tag*match.TagPartMaxChunks + ci
}

// Start activates the operation (MPI_START). On the send side it only
// arms the readiness tracking — nothing moves until Pready. On the
// receive side every chunk receive is posted immediately, each on the
// virtual interface its tag hashes to.
func (o *PartitionedOp) Start() error {
	p := o.c.p
	p.chargeCall()
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.started {
		return errc(ErrRequest, "partitioned operation already active")
	}
	o.started = true
	o.opErr = nil
	if o.send {
		for i := range o.ready {
			o.ready[i] = false
		}
		for i := range o.readyCnt {
			o.readyCnt[i] = 0
		}
		return nil
	}
	cv := o.c.c.CollView()
	for ci, ch := range o.chunks {
		o.arrived[ci] = false
		r, err := p.dev.Irecv(o.buf[ch.off:ch.off+ch.n], ch.n, Byte, o.peer, o.chunkTag(ci), cv, core.FlagNoProcNull)
		if err != nil {
			o.opErr = errc(ErrOther, "%v", err)
			return o.opErr
		}
		o.reqs[ci] = r
	}
	return nil
}

// Pready marks one partition of an active partitioned send ready
// (MPI_PREADY). Safe to call from any goroutine: concurrent producers
// of one operation serialize on the operation's own mutex, and chunks
// completed by different operations ride different VCI lanes. The
// chunk containing the partition is injected the moment its last
// partition is readied.
func (o *PartitionedOp) Pready(i int) error {
	return o.PreadyRange(i, i+1)
}

// PreadyRange marks partitions [lo, hi) ready (MPI_PREADY_RANGE).
func (o *PartitionedOp) PreadyRange(lo, hi int) error {
	if !o.send {
		return errc(ErrRequest, "Pready on a partitioned receive")
	}
	if lo < 0 || hi > o.partitions || lo >= hi {
		return errc(ErrArg, "partitioned: ready range [%d,%d) outside [0,%d)", lo, hi, o.partitions)
	}
	p := o.c.p
	p.chargeCall()
	m := p.rank.Metrics()
	o.mu.Lock()
	if !o.started {
		o.mu.Unlock()
		return errc(ErrRequest, "partitioned operation not active")
	}
	cv := o.c.c.CollView()
	var err error
	for i := lo; i < hi; i++ {
		if o.ready[i] {
			o.mu.Unlock()
			return errc(ErrRequest, "partition %d already marked ready", i)
		}
		o.ready[i] = true
		if o.peer == ProcNull {
			continue
		}
		ci := o.toChunk[i]
		o.readyCnt[ci]++
		ch := o.chunks[ci]
		if o.readyCnt[ci] == ch.hi-ch.lo {
			r, e := p.dev.Isend(o.buf[ch.off:ch.off+ch.n], ch.n, Byte, o.peer, o.chunkTag(ci), cv, core.FlagNoProcNull)
			if e != nil {
				err = errc(ErrOther, "%v", e)
				if o.opErr == nil {
					o.opErr = err
				}
				break
			}
			o.reqs[ci] = r
		}
	}
	o.mu.Unlock()
	// Owner-goroutine-only observability (trace spans) is off limits
	// here; the flight ring and metrics are concurrency-safe.
	m.NotePartitionsReady(hi - lo)
	m.Flight.Record(flight.Pready, int64(p.rank.Now()), o.peer, (hi-lo)*o.partBytes, -1)
	return err
}

// Parrived reports whether partition i of an active partitioned
// receive has landed (MPI_PARRIVED). Polling it pumps device progress,
// so a consumer loop over Parrived drains the fabric.
func (o *PartitionedOp) Parrived(i int) (bool, error) {
	if o.send {
		return false, errc(ErrRequest, "Parrived on a partitioned send")
	}
	if i < 0 || i >= o.partitions {
		return false, errc(ErrArg, "partitioned: partition %d outside [0,%d)", i, o.partitions)
	}
	p := o.c.p
	p.chargeCall()
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.started {
		return false, errc(ErrRequest, "partitioned operation not active")
	}
	if o.peer == ProcNull {
		return true, nil
	}
	ci := o.toChunk[i]
	if o.arrived[ci] {
		return true, nil
	}
	r := o.reqs[ci]
	if r == nil || !r.Done() {
		return false, nil
	}
	o.arrived[ci] = true
	ch := o.chunks[ci]
	m := p.rank.Metrics()
	m.Flight.Record(flight.Parrived, int64(p.rank.Now()), o.peer, ch.n, -1)
	return true, nil
}

// Wait completes the current activation (MPI_WAIT on the partitioned
// request): the send side drains every chunk injection — erroring if
// some partitions were never marked ready, which in MPI would be a
// silent deadlock — and the receive side blocks until every chunk has
// landed. The operation is then ready for the next Start.
func (o *PartitionedOp) Wait() error {
	p := o.c.p
	p.chargeCall()
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.started {
		return errc(ErrRequest, "partitioned operation not active")
	}
	if o.send {
		for i, rdy := range o.ready {
			if !rdy && o.peer != ProcNull {
				return errc(ErrRequest, "partitioned wait: partition %d never marked ready", i)
			}
		}
	}
	m := p.rank.Metrics()
	for ci, r := range o.reqs {
		if r == nil {
			continue
		}
		r.Wait()
		trunc := r.Status.Truncated
		r.Free()
		o.reqs[ci] = nil
		if !o.send && !o.arrived[ci] {
			o.arrived[ci] = true
			m.Flight.Record(flight.Parrived, int64(p.rank.Now()), o.peer, o.chunks[ci].n, -1)
		}
		if trunc && o.opErr == nil {
			o.opErr = errc(ErrTruncate, "partitioned chunk %d truncated", ci)
		}
	}
	o.started = false
	err := o.opErr
	o.opErr = nil
	return err
}

// Partitions returns the declared partition count.
func (o *PartitionedOp) Partitions() int { return o.partitions }

// Chunks returns how many wire transfers the declared shape aggregates
// into — diagnostic, so benchmarks can report the aggregation factor.
func (o *PartitionedOp) Chunks() int { return len(o.chunks) }
