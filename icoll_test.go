package gompi

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
)

// runICollJob executes body on a 4-rank world with the given config
// knobs, failing the test on any rank error.
func runICollJob(t *testing.T, cfg Config, n int, body func(p *Proc) error) *Stats {
	t.Helper()
	st, err := RunStats(n, cfg, body)
	if err != nil {
		t.Fatalf("job failed: %v", err)
	}
	return st
}

// TestICollAllComplete runs every nonblocking collective through
// Wait/Test on both devices and checks the results.
func TestICollAllComplete(t *testing.T) {
	for _, dev := range []DeviceKind{DeviceCH4, DeviceOriginal} {
		t.Run(string(dev), func(t *testing.T) {
			const n = 4
			runICollJob(t, Config{Device: dev, RanksPerNode: 2}, n, func(p *Proc) error {
				w := p.World()
				rank, size := p.Rank(), p.Size()

				// Ibarrier.
				req, err := w.Ibarrier()
				if err != nil {
					return err
				}
				if _, err := req.Wait(); err != nil {
					return err
				}

				// Ibcast, root 1.
				buf := make([]byte, 100)
				if rank == 1 {
					for i := range buf {
						buf[i] = byte(i + 7)
					}
				}
				req, err = w.Ibcast(buf, len(buf), Byte, 1)
				if err != nil {
					return err
				}
				if _, err := req.Wait(); err != nil {
					return err
				}
				for i := range buf {
					if buf[i] != byte(i+7) {
						return fmt.Errorf("ibcast byte %d wrong", i)
					}
				}

				// Ireduce to root 2, completed by Test polling.
				contrib := make([]byte, 8)
				binary.LittleEndian.PutUint64(contrib, uint64(rank+1))
				rbuf := make([]byte, 8)
				req, err = w.Ireduce(contrib, rbuf, 1, Long, OpSum, 2)
				if err != nil {
					return err
				}
				for {
					_, done, err := req.Test()
					if err != nil {
						return err
					}
					if done {
						break
					}
				}
				if rank == 2 {
					if got := binary.LittleEndian.Uint64(rbuf); got != 10 {
						return fmt.Errorf("ireduce got %d want 10", got)
					}
				}

				// Iallreduce.
				abuf := make([]byte, 8)
				req, err = w.Iallreduce(contrib, abuf, 1, Long, OpSum)
				if err != nil {
					return err
				}
				if _, err := req.Wait(); err != nil {
					return err
				}
				if got := binary.LittleEndian.Uint64(abuf); got != 10 {
					return fmt.Errorf("iallreduce got %d want 10", got)
				}

				// Iallgather.
				block := []byte{byte(rank), byte(rank + 100)}
				gbuf := make([]byte, len(block)*size)
				req, err = w.Iallgather(block, gbuf, len(block), Byte)
				if err != nil {
					return err
				}
				if _, err := req.Wait(); err != nil {
					return err
				}
				for r := 0; r < size; r++ {
					if gbuf[2*r] != byte(r) || gbuf[2*r+1] != byte(r+100) {
						return fmt.Errorf("iallgather block %d wrong", r)
					}
				}

				// Ialltoall.
				sendAll := make([]byte, 4*size)
				for d := 0; d < size; d++ {
					binary.LittleEndian.PutUint32(sendAll[4*d:], uint32(rank*1000+d))
				}
				recvAll := make([]byte, 4*size)
				req, err = w.Ialltoall(sendAll, recvAll, 4, Byte)
				if err != nil {
					return err
				}
				if _, err := req.Wait(); err != nil {
					return err
				}
				for srcRank := 0; srcRank < size; srcRank++ {
					want := uint32(srcRank*1000 + rank)
					if got := binary.LittleEndian.Uint32(recvAll[4*srcRank:]); got != want {
						return fmt.Errorf("ialltoall from %d: got %d want %d", srcRank, got, want)
					}
				}
				return nil
			})
		})
	}
}

// netBytesAllreduce measures aggregate network bytes for one 4-rank,
// 2-ranks-per-node Iallreduce of n bytes under the given algorithm pin.
func netBytesAllreduce(t *testing.T, algo string, n int) int64 {
	t.Helper()
	st := runICollJob(t, Config{RanksPerNode: 2, CollAlgorithm: algo}, 4, func(p *Proc) error {
		send := make([]byte, n)
		for i := range send {
			send[i] = byte(p.Rank() + 1)
		}
		recv := make([]byte, n)
		req, err := p.World().Iallreduce(send, recv, n/8, Long, OpBOr)
		if err != nil {
			return err
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
		var want byte
		for r := 0; r < p.Size(); r++ {
			want |= byte(r + 1)
		}
		for i := range recv {
			if recv[i] != want {
				return fmt.Errorf("allreduce byte %d: got %d want %d", i, recv[i], want)
			}
		}
		return nil
	})
	return st.Aggregate().NetSend.Bytes
}

// TestTwoLevelAllreduceNetBytes is the tentpole acceptance check: on 4
// ranks across 2 nodes, the hierarchical allreduce must move fewer
// bytes over the network than flat recursive doubling (2n vs 4n for
// payload n), observable in the aggregated metrics.
func TestTwoLevelAllreduceNetBytes(t *testing.T) {
	const n = 4096
	flat := netBytesAllreduce(t, "flat", n)
	two := netBytesAllreduce(t, "two-level", n)
	if flat != 4*n {
		t.Errorf("flat recursive doubling net bytes = %d, want %d", flat, 4*n)
	}
	if two != 2*n {
		t.Errorf("two-level net bytes = %d, want %d", two, 2*n)
	}
	if two >= flat {
		t.Fatalf("two-level allreduce saved nothing: %d >= %d net bytes", two, flat)
	}
	// Auto selection on a hierarchical layout must pick the two-level
	// algorithm.
	if auto := netBytesAllreduce(t, "", n); auto != two {
		t.Errorf("auto selection net bytes = %d, want the two-level %d", auto, two)
	}
}

// TestTwoLevelBcastNetBytes pins the broadcast side, with the
// algorithm forced through the communicator info key instead of the
// Config: root 1 on the {0,1}|{2,3} layout costs 3n net flat
// (vrank rotation sends 1→2, 1→3, 2→0 across nodes) but only 1n
// two-level (root → the other node's leader).
func TestTwoLevelBcastNetBytes(t *testing.T) {
	const n = 2048
	run := func(algo string) int64 {
		st := runICollJob(t, Config{RanksPerNode: 2}, 4, func(p *Proc) error {
			w := p.World()
			if algo != "" {
				w.SetInfo(CollAlgorithmKey, algo)
			}
			buf := make([]byte, n)
			if p.Rank() == 1 {
				for i := range buf {
					buf[i] = byte(i)
				}
			}
			req, err := w.Ibcast(buf, n, Byte, 1)
			if err != nil {
				return err
			}
			if _, err := req.Wait(); err != nil {
				return err
			}
			for i := range buf {
				if buf[i] != byte(i) {
					return fmt.Errorf("bcast byte %d wrong", i)
				}
			}
			return nil
		})
		return st.Aggregate().NetSend.Bytes
	}
	flat := run("flat")
	two := run("two-level")
	if flat != 3*n {
		t.Errorf("flat binomial net bytes = %d, want %d", flat, 3*n)
	}
	if two != n {
		t.Errorf("two-level net bytes = %d, want %d", two, n)
	}
	if two >= flat {
		t.Fatalf("two-level bcast saved nothing: %d >= %d net bytes", two, flat)
	}
}

// TestIallreduceOverlap demonstrates genuine communication/compute
// overlap: the schedule completes through Test polls issued from
// inside a compute loop, and the final Wait costs zero additional
// virtual time because nothing is left to do.
func TestIallreduceOverlap(t *testing.T) {
	runICollJob(t, Config{RanksPerNode: 2}, 4, func(p *Proc) error {
		const elems = 512
		send := make([]byte, 8*elems)
		for i := 0; i < elems; i++ {
			binary.LittleEndian.PutUint64(send[8*i:], uint64(p.Rank()+i))
		}
		recv := make([]byte, len(send))
		req, err := p.World().Iallreduce(send, recv, elems, Long, OpSum)
		if err != nil {
			return err
		}
		completedDuringCompute := false
		for i := 0; i < 10000; i++ {
			p.ChargeCompute(1000)
			if _, done, err := req.Test(); err != nil {
				return err
			} else if done {
				completedDuringCompute = true
				break
			}
		}
		if !completedDuringCompute {
			return fmt.Errorf("iallreduce made no progress across 10M compute cycles of polling")
		}
		// The virtual-time assertion: with the schedule already
		// complete, Wait must not advance the clock at all.
		before := p.VirtualCycles()
		if _, err := req.Wait(); err != nil {
			return err
		}
		if after := p.VirtualCycles(); after != before {
			return fmt.Errorf("wait after completion advanced the clock %d -> %d", before, after)
		}
		for i := 0; i < elems; i++ {
			want := uint64(0+1+2+3) + 4*uint64(i)
			if got := binary.LittleEndian.Uint64(recv[8*i:]); got != want {
				return fmt.Errorf("elem %d: got %d want %d", i, got, want)
			}
		}
		return nil
	})
}

// TestWaitallMixed completes point-to-point and collective requests
// through one Waitall call (MPI_WAITALL over heterogeneous requests).
func TestWaitallMixed(t *testing.T) {
	runICollJob(t, Config{}, 4, func(p *Proc) error {
		w := p.World()
		rank, size := p.Rank(), p.Size()
		peer := rank ^ 1

		in := make([]byte, 64)
		rreq, err := w.Irecv(in, len(in), Byte, peer, 77)
		if err != nil {
			return err
		}
		out := bytes.Repeat([]byte{byte(rank + 1)}, 64)
		sreq, err := w.Isend(out, len(out), Byte, peer, 77)
		if err != nil {
			return err
		}
		contrib := make([]byte, 8)
		binary.LittleEndian.PutUint64(contrib, uint64(rank+1))
		sum := make([]byte, 8)
		areq, err := w.Iallreduce(contrib, sum, 1, Long, OpSum)
		if err != nil {
			return err
		}
		breq, err := w.Ibarrier()
		if err != nil {
			return err
		}
		if err := Waitall([]*Request{rreq, sreq, areq, breq}); err != nil {
			return err
		}
		for i := range in {
			if in[i] != byte(peer+1) {
				return fmt.Errorf("pt2pt payload byte %d wrong", i)
			}
		}
		var want uint64
		for r := 0; r < size; r++ {
			want += uint64(r + 1)
		}
		if got := binary.LittleEndian.Uint64(sum); got != want {
			return fmt.Errorf("mixed allreduce got %d want %d", got, want)
		}
		return nil
	})
}

// TestLargeAlltoallNeverBlocks pins the collective never-blocks
// contract: with a tiny eager threshold and blocks far above it, both
// the blocking and nonblocking Alltoall must segment into eager
// fragments — zero rendezvous messages — instead of stalling sends.
func TestLargeAlltoallNeverBlocks(t *testing.T) {
	const blockBytes = 4096
	st := runICollJob(t, Config{Fabric: FabricOFI, EagerLimit: 512}, 4, func(p *Proc) error {
		w := p.World()
		rank, size := p.Rank(), p.Size()
		send := make([]byte, blockBytes*size)
		for d := 0; d < size; d++ {
			copy(send[d*blockBytes:(d+1)*blockBytes], bytes.Repeat([]byte{byte(10*rank + d)}, blockBytes))
		}
		check := func(recv []byte) error {
			for srcRank := 0; srcRank < size; srcRank++ {
				want := byte(10*srcRank + rank)
				for i := 0; i < blockBytes; i++ {
					if recv[srcRank*blockBytes+i] != want {
						return fmt.Errorf("block from %d corrupt at %d", srcRank, i)
					}
				}
			}
			return nil
		}
		recv := make([]byte, blockBytes*size)
		if err := w.Alltoall(send, recv, blockBytes, Byte); err != nil {
			return err
		}
		if err := check(recv); err != nil {
			return err
		}
		recv2 := make([]byte, blockBytes*size)
		req, err := w.Ialltoall(send, recv2, blockBytes, Byte)
		if err != nil {
			return err
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
		return check(recv2)
	})
	if rndv := st.Aggregate().Rndv.Msgs; rndv != 0 {
		t.Fatalf("collective traffic entered rendezvous %d times; segmentation must keep it eager", rndv)
	}
}

// opSubtract is the non-commutative regression operator: inout = in - inout.
var opSubtract = OpCreate(func(in, inout []byte, count int, elem *Datatype) error {
	for i := 0; i < count; i++ {
		a := int64(binary.LittleEndian.Uint64(in[8*i:]))
		b := int64(binary.LittleEndian.Uint64(inout[8*i:]))
		binary.LittleEndian.PutUint64(inout[8*i:], uint64(a-b))
	}
	return nil
}, false)

// TestNonCommutativeReducePublic pins MPI_Op_create semantics end to
// end: a subtraction operator declared non-commutative must fold in
// strict rank order through both the blocking and nonblocking
// reduction paths. With contributions 2^rank on 4 ranks the
// rank-ordered fold is 1-(2-(4-8)) = -5; the commutative tree
// algorithms produce a different value, so this fails on the old path.
func TestNonCommutativeReducePublic(t *testing.T) {
	if OpCommutative(opSubtract) {
		t.Fatal("opSubtract registered as commutative")
	}
	if !OpCommutative(OpSum) {
		t.Fatal("OpSum not commutative")
	}
	const want = int64(-5)
	runICollJob(t, Config{}, 4, func(p *Proc) error {
		w := p.World()
		contrib := make([]byte, 8)
		binary.LittleEndian.PutUint64(contrib, uint64(int64(1)<<uint(p.Rank())))

		recv := make([]byte, 8)
		if err := w.Reduce(contrib, recv, 1, Long, opSubtract, 0); err != nil {
			return err
		}
		if p.Rank() == 0 {
			if got := int64(binary.LittleEndian.Uint64(recv)); got != want {
				return fmt.Errorf("blocking reduce: got %d want %d", got, want)
			}
		}

		all := make([]byte, 8)
		if err := w.Allreduce(contrib, all, 1, Long, opSubtract); err != nil {
			return err
		}
		if got := int64(binary.LittleEndian.Uint64(all)); got != want {
			return fmt.Errorf("blocking allreduce: got %d want %d", got, want)
		}

		irecv := make([]byte, 8)
		req, err := w.Ireduce(contrib, irecv, 1, Long, opSubtract, 0)
		if err != nil {
			return err
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			if got := int64(binary.LittleEndian.Uint64(irecv)); got != want {
				return fmt.Errorf("ireduce: got %d want %d", got, want)
			}
		}

		iall := make([]byte, 8)
		req, err = w.Iallreduce(contrib, iall, 1, Long, opSubtract)
		if err != nil {
			return err
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
		if got := int64(binary.LittleEndian.Uint64(iall)); got != want {
			return fmt.Errorf("iallreduce: got %d want %d", got, want)
		}
		return nil
	})
}

// TestCollAlgorithmValidation pins configuration errors: a bogus
// Config.CollAlgorithm fails at Run, a bogus info key fails at the
// collective call.
func TestCollAlgorithmValidation(t *testing.T) {
	err := Run(2, Config{CollAlgorithm: "no-such-algo"}, func(p *Proc) error { return nil })
	if err == nil {
		t.Fatal("Run accepted a bogus CollAlgorithm")
	}
	runICollJob(t, Config{}, 2, func(p *Proc) error {
		w := p.World()
		w.SetInfo(CollAlgorithmKey, "bogus")
		buf := make([]byte, 8)
		if _, err := w.Ibcast(buf, 8, Byte, 0); err == nil {
			return fmt.Errorf("Ibcast accepted a bogus info-key algorithm")
		}
		// Clear the pin; the world must still be usable (and ranks must
		// stay aligned on the tag sequence, which the failed call never
		// touched... it did draw a tag, so draw it on every rank alike).
		w.SetInfo(CollAlgorithmKey, "auto")
		req, err := w.Ibcast(buf, 8, Byte, 0)
		if err != nil {
			return err
		}
		_, err = req.Wait()
		return err
	})
}

// TestSchedRoundTrace checks that nonblocking-collective schedules
// emit per-round trace spans (TraceSched) into the event log.
func TestSchedRoundTrace(t *testing.T) {
	st := runICollJob(t, Config{Trace: true}, 4, func(p *Proc) error {
		contrib := make([]byte, 8)
		binary.LittleEndian.PutUint64(contrib, uint64(p.Rank()))
		recv := make([]byte, 8)
		req, err := p.World().Iallreduce(contrib, recv, 1, Long, OpSum)
		if err != nil {
			return err
		}
		_, err = req.Wait()
		return err
	})
	for rank := 0; rank < 4; rank++ {
		rounds := 0
		for _, e := range st.TraceEvents(rank) {
			if e.Kind == TraceSched {
				rounds++
			}
		}
		// Recursive doubling on 4 flat ranks has 2 rounds.
		if rounds != 2 {
			t.Errorf("rank %d recorded %d sched-round spans, want 2", rank, rounds)
		}
	}
}

// TestCollMetricsSnapshot checks the per-algorithm call/byte counters
// surface in MetricsSnapshot and merge across ranks.
func TestCollMetricsSnapshot(t *testing.T) {
	const n = 256
	st := runICollJob(t, Config{RanksPerNode: 2}, 4, func(p *Proc) error {
		buf := make([]byte, n)
		req, err := p.World().Ibcast(buf, n, Byte, 0)
		if err != nil {
			return err
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
		return p.World().Barrier()
	})
	agg := st.Aggregate()
	var twoLevelCalls, barrierCalls, twoLevelBytes int64
	for _, cs := range agg.Coll {
		switch cs.Algo {
		case "bcast/two-level":
			twoLevelCalls, twoLevelBytes = cs.Calls, cs.Bytes
		case "barrier/dissemination":
			barrierCalls = cs.Calls
		}
	}
	if twoLevelCalls != 4 {
		t.Errorf("bcast/two-level calls = %d, want 4 (one per rank)", twoLevelCalls)
	}
	if twoLevelBytes != 4*n {
		t.Errorf("bcast/two-level bytes = %d, want %d", twoLevelBytes, 4*n)
	}
	if barrierCalls != 4 {
		t.Errorf("barrier/dissemination calls = %d, want 4", barrierCalls)
	}
}
