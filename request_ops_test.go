package gompi

import (
	"fmt"
	"testing"
)

func TestWaitanyPicksCompleted(t *testing.T) {
	run(t, 3, Config{Fabric: "ofi"}, func(p *Proc) error {
		w := p.World()
		if p.Rank() != 0 {
			// Rank 2 sends promptly; rank 1 delays.
			if p.Rank() == 1 {
				p.ChargeCompute(1_000_000)
			}
			return w.Send([]byte{byte(p.Rank())}, 1, Byte, 0, p.Rank())
		}
		bufs := [][]byte{make([]byte, 1), make([]byte, 1)}
		reqs := make([]*Request, 2)
		var err error
		for i := 0; i < 2; i++ {
			reqs[i], err = w.Irecv(bufs[i], 1, Byte, i+1, i+1)
			if err != nil {
				return err
			}
		}
		seen := map[int]bool{}
		for k := 0; k < 2; k++ {
			idx, st, err := Waitany(reqs)
			if err != nil {
				return err
			}
			if idx == UndefinedIndex {
				return fmt.Errorf("undefined with %d pending", 2-k)
			}
			if reqs[idx] != nil {
				return fmt.Errorf("completed slot %d not cleared", idx)
			}
			if st.Source != idx+1 || bufs[idx][0] != byte(idx+1) {
				return fmt.Errorf("slot %d: status %+v buf %v", idx, st, bufs[idx])
			}
			seen[idx] = true
		}
		if len(seen) != 2 {
			return fmt.Errorf("indices %v", seen)
		}
		// All nil now: immediate UNDEFINED.
		if idx, _, _ := Waitany(reqs); idx != UndefinedIndex {
			return fmt.Errorf("waitany on empty set = %d", idx)
		}
		return nil
	})
}

func TestTestanyAndTestall(t *testing.T) {
	run(t, 2, Config{Fabric: "inf"}, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 1 {
			for i := 0; i < 3; i++ {
				if err := w.Send([]byte{byte(i)}, 1, Byte, 0, i); err != nil {
					return err
				}
			}
			return nil
		}
		reqs := make([]*Request, 3)
		bufs := make([][]byte, 3)
		for i := range reqs {
			bufs[i] = make([]byte, 1)
			var err error
			reqs[i], err = w.Irecv(bufs[i], 1, Byte, 1, i)
			if err != nil {
				return err
			}
		}
		// Eventually Testall must report done with all statuses.
		for {
			sts, done, err := Testall(reqs)
			if err != nil {
				return err
			}
			if done {
				if len(sts) != 3 {
					return fmt.Errorf("%d statuses", len(sts))
				}
				for i, st := range sts {
					if st.Tag != i || bufs[i][0] != byte(i) {
						return fmt.Errorf("slot %d: %+v", i, st)
					}
				}
				break
			}
		}
		// Testany on the now-empty set reports done/UNDEFINED.
		idx, _, done, err := Testany(reqs)
		if err != nil || !done || idx != UndefinedIndex {
			return fmt.Errorf("testany empty = (%d,%v,%v)", idx, done, err)
		}
		return nil
	})
}

func TestWaitsomeHarvestsBatch(t *testing.T) {
	run(t, 2, Config{Fabric: "inf"}, func(p *Proc) error {
		w := p.World()
		const msgs = 6
		if p.Rank() == 1 {
			for i := 0; i < msgs; i++ {
				if err := w.Send([]byte{byte(i)}, 1, Byte, 0, i); err != nil {
					return err
				}
			}
			return nil
		}
		reqs := make([]*Request, msgs)
		for i := range reqs {
			var err error
			reqs[i], err = w.Irecv(make([]byte, 1), 1, Byte, 1, i)
			if err != nil {
				return err
			}
		}
		total := 0
		for total < msgs {
			idx, sts, err := Waitsome(reqs)
			if err != nil {
				return err
			}
			if len(idx) == 0 {
				return fmt.Errorf("waitsome returned empty batch at %d", total)
			}
			if len(idx) != len(sts) {
				return fmt.Errorf("indices/statuses mismatch")
			}
			total += len(idx)
		}
		if total != msgs {
			return fmt.Errorf("harvested %d", total)
		}
		return nil
	})
}

func TestScanExscanPublic(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8} {
		run(t, n, Config{Fabric: "ofi"}, func(p *Proc) error {
			w := p.World()
			send := Int64Bytes([]int64{int64(p.Rank() + 1)}, nil)
			recv := make([]byte, 8)
			if err := w.Scan(send, recv, 1, Long, OpSum); err != nil {
				return err
			}
			r := p.Rank() + 1
			if got := BytesInt64(recv, nil)[0]; got != int64(r*(r+1)/2) {
				return fmt.Errorf("scan rank %d = %d", p.Rank(), got)
			}
			ex := Int64Bytes([]int64{-1}, nil)
			if err := w.Exscan(send, ex, 1, Long, OpSum); err != nil {
				return err
			}
			got := BytesInt64(ex, nil)[0]
			if p.Rank() == 0 && got != -1 {
				return fmt.Errorf("exscan touched rank 0: %d", got)
			}
			if p.Rank() > 0 && got != int64(p.Rank()*(p.Rank()+1)/2) {
				return fmt.Errorf("exscan rank %d = %d", p.Rank(), got)
			}
			return nil
		})
	}
}

func TestGathervScattervAllgathervPublic(t *testing.T) {
	const n = 4
	run(t, n, Config{Fabric: "ucx"}, func(p *Proc) error {
		w := p.World()
		counts := []int{2, 4, 6, 8}
		displs := []int{0, 2, 6, 12}
		total := 20
		mine := make([]byte, counts[p.Rank()])
		for i := range mine {
			mine[i] = byte(p.Rank() * 11)
		}
		all := make([]byte, total)
		if err := w.Gatherv(mine, all, counts, displs, 2); err != nil {
			return err
		}
		if p.Rank() == 2 {
			for r := 0; r < n; r++ {
				for i := 0; i < counts[r]; i++ {
					if all[displs[r]+i] != byte(r*11) {
						return fmt.Errorf("gatherv block %d: %v", r, all)
					}
				}
			}
		}
		back := make([]byte, counts[p.Rank()])
		if err := w.Scatterv(all, counts, displs, back, 2); err != nil {
			return err
		}
		for i := range back {
			if back[i] != byte(p.Rank()*11) {
				return fmt.Errorf("scatterv rank %d: %v", p.Rank(), back)
			}
		}
		everyone := make([]byte, total)
		if err := w.Allgatherv(mine, everyone, counts, displs); err != nil {
			return err
		}
		for r := 0; r < n; r++ {
			if everyone[displs[r]] != byte(r*11) {
				return fmt.Errorf("allgatherv rank %d block %d: %v", p.Rank(), r, everyone)
			}
		}
		return nil
	})
}
