package gompi

import (
	"gompi/internal/coll"
	"gompi/internal/comm"
	"gompi/internal/core"
	"gompi/internal/metrics"
)

// Op is a predefined reduction operator.
type Op = coll.Op

// Predefined reduction operators.
const (
	OpSum     = coll.OpSum
	OpProd    = coll.OpProd
	OpMax     = coll.OpMax
	OpMin     = coll.OpMin
	OpLAnd    = coll.OpLAnd
	OpLOr     = coll.OpLOr
	OpBAnd    = coll.OpBAnd
	OpBOr     = coll.OpBOr
	OpReplace = coll.OpReplace
	OpNoOp    = coll.OpNoOp
)

// collPort adapts the device to the machine-independent collective
// algorithms: blocking matched send/recv on the communicator's
// collective context. Internal traffic skips the public layer's
// revalidation, as MPICH's internals do.
type collPort struct {
	p  *Proc
	cv *comm.Comm
}

// Rank implements coll.PT2PT.
func (cp collPort) Rank() int { return cp.cv.MyRank }

// Size implements coll.PT2PT.
func (cp collPort) Size() int { return cp.cv.Size() }

// Send implements coll.PT2PT with a requestless eager send. Payloads
// above the fabric's eager threshold are segmented into eager-sized
// fragments (same tag, matched in FIFO order by the symmetric Recv
// below), so collective sends honor the never-blocks contract instead
// of entering the rendezvous protocol.
func (cp collPort) Send(data []byte, dest, tag int) error {
	lim := cp.p.eagerLimit
	if lim <= 0 || len(data) <= lim {
		_, err := cp.p.dev.Isend(data, len(data), Byte, dest, tag, cp.cv, core.FlagNoReq|core.FlagNoProcNull)
		return err
	}
	for off := 0; off < len(data); off += lim {
		end := off + lim
		if end > len(data) {
			end = len(data)
		}
		if _, err := cp.p.dev.Isend(data[off:end], end-off, Byte, dest, tag, cp.cv, core.FlagNoReq|core.FlagNoProcNull); err != nil {
			return err
		}
	}
	return nil
}

// Recv implements coll.PT2PT with a blocking matched receive,
// reassembling the fragments Send produced (every collective algorithm
// receives into exact-size buffers, so both sides derive identical
// fragment boundaries from the payload length).
func (cp collPort) Recv(buf []byte, src, tag int) (int, error) {
	lim := cp.p.eagerLimit
	if lim <= 0 || len(buf) <= lim {
		return cp.recvOne(buf, src, tag)
	}
	total := 0
	for off := 0; off < len(buf); off += lim {
		end := off + lim
		if end > len(buf) {
			end = len(buf)
		}
		n, err := cp.recvOne(buf[off:end], src, tag)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func (cp collPort) recvOne(buf []byte, src, tag int) (int, error) {
	r, err := cp.p.dev.Irecv(buf, len(buf), Byte, src, tag, cp.cv, core.FlagNoProcNull)
	if err != nil {
		return 0, err
	}
	r.Wait()
	n := r.Status.Count
	trunc := r.Status.Truncated
	r.Free()
	if trunc {
		return n, errc(ErrTruncate, "collective fragment truncated")
	}
	return n, nil
}

// port builds the adapter after the MPI-layer charges for a collective
// entry.
func (c *Comm) port() collPort { return collPort{p: c.p, cv: c.c.CollView()} }

// collEnter charges the MPI-layer costs every collective entry pays.
// The returned func (deferred by the collective) both unlocks and
// records the traced interval.
func (c *Comm) collEnter() (func(), error) {
	p := c.p
	end := p.span(TraceColl, -1, 0)
	p.chargeCall()
	unlock := p.chargeThread(c.c, false)
	done := func() {
		unlock()
		if end != nil {
			end()
		}
	}
	if p.bc.ErrorChecking {
		if err := p.checkComm(c); err != nil {
			done()
			return nil, err
		}
	}
	return done, nil
}

// Barrier blocks until every rank of the communicator has entered
// (MPI_BARRIER).
func (c *Comm) Barrier() error {
	unlock, err := c.collEnter()
	if err != nil {
		return err
	}
	defer unlock()
	c.p.noteColl(metrics.CollBarrierDissem, 0)
	return coll.Barrier(c.port())
}

// Bcast broadcasts root's buffer to all ranks (MPI_BCAST). buf must be
// count elements of dt on every rank; contiguous layouts only (derived
// types take the pack path in the devices; collectives here move raw
// bytes, as the machine-independent layer does).
func (c *Comm) Bcast(buf []byte, count int, dt *Datatype, root int) error {
	unlock, err := c.collEnter()
	if err != nil {
		return err
	}
	defer unlock()
	n := count * dt.Size()
	c.p.noteColl(metrics.CollBcastBinomial, n)
	return coll.Bcast(c.port(), buf[:n], root)
}

// Reduce folds count elements of elem from every rank into recv on root
// (MPI_REDUCE). recv is ignored elsewhere.
func (c *Comm) Reduce(send, recv []byte, count int, elem *Datatype, op Op, root int) error {
	unlock, err := c.collEnter()
	if err != nil {
		return err
	}
	defer unlock()
	n := count * elem.Size()
	var out []byte
	if c.Rank() == root {
		out = recv[:n]
	}
	if coll.Commutative(op) {
		c.p.noteColl(metrics.CollReduceBinomial, n)
	} else {
		c.p.noteColl(metrics.CollReduceChain, n)
	}
	return coll.Reduce(c.port(), op, elem, send[:n], out, root)
}

// Allreduce folds contributions and delivers the result everywhere
// (MPI_ALLREDUCE).
func (c *Comm) Allreduce(send, recv []byte, count int, elem *Datatype, op Op) error {
	unlock, err := c.collEnter()
	if err != nil {
		return err
	}
	defer unlock()
	n := count * elem.Size()
	if size := c.Size(); coll.Commutative(op) && size&(size-1) == 0 {
		c.p.noteColl(metrics.CollAllreduceRecDoubling, n)
	} else {
		c.p.noteColl(metrics.CollAllreduceReduceBcast, n)
	}
	return coll.Allreduce(c.port(), op, elem, send[:n], recv[:n])
}

// Gather concentrates equal-size blocks on root (MPI_GATHER).
func (c *Comm) Gather(send, recv []byte, count int, dt *Datatype, root int) error {
	unlock, err := c.collEnter()
	if err != nil {
		return err
	}
	defer unlock()
	n := count * dt.Size()
	var out []byte
	if c.Rank() == root {
		out = recv
	} else {
		out = nil
	}
	if c.Rank() == root && len(out) < n*c.Size() {
		return errc(ErrBuffer, "gather recv buffer %d < %d", len(out), n*c.Size())
	}
	c.p.noteColl(metrics.CollGatherLinear, n)
	return coll.Gather(c.port(), send[:n], out, root)
}

// Scatter distributes root's equal-size blocks (MPI_SCATTER).
func (c *Comm) Scatter(send, recv []byte, count int, dt *Datatype, root int) error {
	unlock, err := c.collEnter()
	if err != nil {
		return err
	}
	defer unlock()
	n := count * dt.Size()
	var in []byte
	if c.Rank() == root {
		in = send
		if len(in) < n*c.Size() {
			return errc(ErrBuffer, "scatter send buffer %d < %d", len(in), n*c.Size())
		}
	}
	c.p.noteColl(metrics.CollScatterLinear, n)
	return coll.Scatter(c.port(), in, recv[:n], root)
}

// Allgather concentrates equal-size blocks everywhere (MPI_ALLGATHER,
// ring algorithm).
func (c *Comm) Allgather(send, recv []byte, count int, dt *Datatype) error {
	unlock, err := c.collEnter()
	if err != nil {
		return err
	}
	defer unlock()
	n := count * dt.Size()
	if len(recv) < n*c.Size() {
		return errc(ErrBuffer, "allgather recv buffer %d < %d", len(recv), n*c.Size())
	}
	c.p.noteColl(metrics.CollAllgatherRing, n)
	return coll.Allgather(c.port(), send[:n], recv)
}

// Alltoall exchanges equal-size blocks pairwise (MPI_ALLTOALL).
func (c *Comm) Alltoall(send, recv []byte, count int, dt *Datatype) error {
	unlock, err := c.collEnter()
	if err != nil {
		return err
	}
	defer unlock()
	n := count * dt.Size()
	if len(send) < n*c.Size() || len(recv) < n*c.Size() {
		return errc(ErrBuffer, "alltoall buffers short")
	}
	c.p.noteColl(metrics.CollAlltoallPairwise, n*c.Size())
	return coll.Alltoall(c.port(), send[:n*c.Size()], recv[:n*c.Size()])
}

// ReduceScatterBlock reduces and scatters equal blocks
// (MPI_REDUCE_SCATTER_BLOCK).
func (c *Comm) ReduceScatterBlock(send, recv []byte, count int, elem *Datatype, op Op) error {
	unlock, err := c.collEnter()
	if err != nil {
		return err
	}
	defer unlock()
	n := count * elem.Size()
	if len(send) < n*c.Size() || len(recv) < n {
		return errc(ErrBuffer, "reduce_scatter buffers short")
	}
	c.p.noteColl(metrics.CollRedScatBlock, n*c.Size())
	return coll.ReduceScatterBlock(c.port(), op, elem, send[:n*c.Size()], recv[:n])
}

// OpCreate registers a user-defined reduction operator (MPI_OP_CREATE)
// usable in every reduction collective and in ReduceLocal. fn folds
// `in` into `inout` elementwise for count elements of elem; it must be
// associative. commute declares whether it is also commutative: a
// non-commutative operator makes every reduction collective fold
// contributions in strict rank order (the chain algorithms), exactly
// as MPI requires.
func OpCreate(fn func(in, inout []byte, count int, elem *Datatype) error, commute bool) Op {
	return coll.CreateOp(coll.UserFunc(fn), commute)
}

// OpCommutative reports whether op was declared commutative
// (MPI_OP_COMMUTATIVE). Predefined operators always are.
func OpCommutative(op Op) bool { return coll.Commutative(op) }

// ReduceLocal folds inbuf into inoutbuf with op (MPI_REDUCE_LOCAL): a
// purely local building block for user-level reduction trees.
func ReduceLocal(inbuf, inoutbuf []byte, count int, elem *Datatype, op Op) error {
	n := count * elem.Size()
	if err := coll.Apply(op, elem, inoutbuf[:n], inbuf[:n]); err != nil {
		return errc(ErrArg, "%v", err)
	}
	return nil
}

// AllreduceFloat64 is a typed convenience for the dominant application
// pattern: allreduce over float64 values.
func (c *Comm) AllreduceFloat64(vals []float64, op Op) ([]float64, error) {
	send := Float64Bytes(vals, nil)
	recv := make([]byte, len(send))
	if err := c.Allreduce(send, recv, len(vals), Double, op); err != nil {
		return nil, err
	}
	return BytesFloat64(recv, vals), nil
}
