package gompi

import (
	"gompi/internal/coll"
	"gompi/internal/match"
	"gompi/internal/nbc"
	"gompi/internal/trace"
	"gompi/internal/vtime"
)

// Persistent collectives (MPI-4 MPI_BCAST_INIT / MPI_ALLREDUCE_INIT /
// MPI_ALLTOALL_INIT): the collective's schedule DAG is compiled exactly
// once, at Init — argument validation, algorithm selection, topology
// derivation, round construction, buffer seeding all happen there — and
// every Start replays the compiled rounds against the bound buffers.
// The replay allocates nothing: Reset rewinds cursors and re-runs the
// recorded prologue copies, the pending list keeps its capacity, and
// the device's pooled descriptors cover the per-round receives. Each
// Init draws one tag from the reserved persistent-collective range;
// Inits are collective calls made in the same order on every rank, so
// the replayed tags agree globally without negotiation.

// PersistentColl is an initialized, restartable collective operation.
// It satisfies the same Start contract as PersistentOp and
// PartitionedOp, so StartAll restarts mixed sets.
type PersistentColl struct {
	c      *Comm
	s      *nbc.Schedule
	tag    int
	active bool
}

// persistTag draws the operation's fixed schedule tag.
func (c *Comm) persistTag() int {
	return match.TagPersistCollBase + c.c.NextPersistSeq()%match.TagPersistCollSpan
}

// persistWrap finishes an Init: the compiled schedule becomes a
// restartable operation, with round tracing attached once here rather
// than per Start (the OnRound closure would otherwise be a per-replay
// allocation).
func (c *Comm) persistWrap(s *nbc.Schedule, tag int) *PersistentColl {
	p := c.p
	p.rank.Metrics().NoteSchedCache(false) // the one compilation
	if p.tlog.Enabled() {
		var roundStart vtime.Time
		bytes := s.Bytes
		s.OnRound = func(idx int, start bool) {
			if start {
				roundStart = p.rank.Now()
				return
			}
			p.tlog.Record(trace.Event{
				Kind: trace.KindSched, Peer: idx, Bytes: bytes, VCI: -1,
				Start: roundStart, End: p.rank.Now(),
			})
		}
	}
	return &PersistentColl{c: c, s: s, tag: tag}
}

// Start restarts the collective (MPI_START). Every rank of the
// communicator must restart the same operation; the call only rewinds
// the schedule and kicks round 0's sends into flight — a schedule-cache
// hit by construction, with no compilation, no validation, and no
// allocation on the way down.
func (o *PersistentColl) Start() error {
	if o.active {
		return errc(ErrRequest, "persistent collective already active")
	}
	p := o.c.p
	p.chargeCall()
	unlock := p.chargeThread(o.c.c, false)
	m := p.rank.Metrics()
	m.NoteSchedCache(true)
	p.noteColl(o.s.Algo, o.s.Bytes)
	o.s.Reset(o.tag)
	o.active = true
	_, err := o.s.Test() // issue round 0 before returning
	unlock()
	if err != nil {
		o.active = false
		return errc(ErrOther, "%v", err)
	}
	return nil
}

// Wait drives the current activation to completion (MPI_WAIT), leaving
// the operation ready for the next Start.
func (o *PersistentColl) Wait() error {
	if !o.active {
		return errc(ErrRequest, "persistent collective not active")
	}
	err := o.s.Wait()
	o.active = false
	if err != nil {
		return errc(ErrOther, "%v", err)
	}
	return nil
}

// Test polls the current activation.
func (o *PersistentColl) Test() (bool, error) {
	if !o.active {
		return false, errc(ErrRequest, "persistent collective not active")
	}
	done, err := o.s.Test()
	if done {
		o.active = false
	}
	if err != nil {
		return done, errc(ErrOther, "%v", err)
	}
	return done, nil
}

// BcastInit binds a persistent broadcast (MPI_BCAST_INIT).
func (c *Comm) BcastInit(buf []byte, count int, dt *Datatype, root int) (*PersistentColl, error) {
	done, err := c.collEnter()
	if err != nil {
		return nil, err
	}
	defer done()
	f, err := c.collForce()
	if err != nil {
		return nil, err
	}
	n := count * dt.Size()
	t := c.nbcPort()
	tag := c.persistTag()
	s, err := nbc.Bcast(t, tag, buf[:n], root, nbc.SelectBcast(t, n, f))
	if err != nil {
		return nil, errc(ErrArg, "%v", err)
	}
	return c.persistWrap(s, tag), nil
}

// AllreduceInit binds a persistent allreduce (MPI_ALLREDUCE_INIT).
func (c *Comm) AllreduceInit(send, recv []byte, count int, elem *Datatype, op Op) (*PersistentColl, error) {
	done, err := c.collEnter()
	if err != nil {
		return nil, err
	}
	defer done()
	f, err := c.collForce()
	if err != nil {
		return nil, err
	}
	n := count * elem.Size()
	t := c.nbcPort()
	tag := c.persistTag()
	s, err := nbc.Allreduce(t, tag, op, elem, send[:n], recv[:n],
		nbc.SelectAllreduce(t, count, elem.Size(), coll.Commutative(op), f))
	if err != nil {
		return nil, errc(ErrArg, "%v", err)
	}
	return c.persistWrap(s, tag), nil
}

// AlltoallInit binds a persistent all-to-all (MPI_ALLTOALL_INIT).
func (c *Comm) AlltoallInit(send, recv []byte, count int, dt *Datatype) (*PersistentColl, error) {
	done, err := c.collEnter()
	if err != nil {
		return nil, err
	}
	defer done()
	f, err := c.collForce()
	if err != nil {
		return nil, err
	}
	n := count * dt.Size()
	if len(send) < n*c.Size() || len(recv) < n*c.Size() {
		return nil, errc(ErrBuffer, "alltoall_init buffers short")
	}
	t := c.nbcPort()
	tag := c.persistTag()
	s, err := nbc.Alltoall(t, tag, send[:n*c.Size()], recv[:n*c.Size()],
		nbc.SelectAlltoall(t, n, f))
	if err != nil {
		return nil, errc(ErrArg, "%v", err)
	}
	return c.persistWrap(s, tag), nil
}
