//go:build race

package gompi

// raceEnabled reports that this test binary was built with -race. The
// race runtime caps the process at 8192 goroutines, so the 10K-rank
// scale tests skip themselves under it.
const raceEnabled = true
