package gompi

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// Tests for the 10K-rank scale work: the unified communicator-creation
// surface, the lazy peer-state defaults and ceiling, sparse rank
// tables at large world sizes, and watchdog diagnosis of a big world.

// TestCommOptionsSurfacePinned pins the unified communicator-creation
// surface at compile time: DupOpt/SplitOpt/CreateOpt with CommOptions
// are the canonical entry points, and the historical names remain as
// fixed-signature wrappers.
func TestCommOptionsSurfacePinned(t *testing.T) {
	c := (*Comm)(nil)
	var (
		_ func(CommOptions) (*Comm, error)           = c.DupOpt
		_ func(int, int, CommOptions) (*Comm, error) = c.SplitOpt
		_ func(*Group, CommOptions) (*Comm, error)   = c.CreateOpt
		_ func() (*Comm, error)                      = c.Dup
		_ func(CommHints) (*Comm, error)             = c.DupWithHints
		_ func(int, int) (*Comm, error)              = c.Split
		_ func(int, int, CommHints) (*Comm, error)   = c.SplitWithHints
		_ func(int, int) (*Comm, error)              = c.SplitType
		_ func(*Group) (*Comm, error)                = c.Create
	)
	var o CommOptions
	o.Hints = CommHints{NoAnySource: true, NoAnyTag: true, ExactLength: true}
	o.Type = SplitTypeShared
}

// TestCommOptionsBehavior checks that the options struct reproduces
// the historical variants: a typed split partitions by node, hints
// attach at creation, and an unknown type is rejected.
func TestCommOptionsBehavior(t *testing.T) {
	run(t, 4, Config{RanksPerNode: 2}, func(p *Proc) error {
		w := p.World()
		node, err := w.SplitOpt(0, 0, CommOptions{
			Type:  SplitTypeShared,
			Hints: CommHints{NoAnySource: true},
		})
		if err != nil {
			return err
		}
		if node.Size() != 2 || node.Rank() != p.Rank()%2 {
			return fmt.Errorf("node comm %d/%d", node.Rank(), node.Size())
		}
		if !node.Hints().NoAnySource {
			return fmt.Errorf("split hint lost")
		}
		d, err := w.DupOpt(CommOptions{Hints: CommHints{NoAnyTag: true}})
		if err != nil {
			return err
		}
		if !d.Hints().NoAnyTag {
			return fmt.Errorf("dup hint lost")
		}
		evens, err := w.Group().Incl([]int{0, 2})
		if err != nil {
			return err
		}
		sub, err := w.CreateOpt(evens, CommOptions{Hints: CommHints{ExactLength: true}})
		if err != nil {
			return err
		}
		if p.Rank()%2 == 0 {
			if sub == nil || !sub.Hints().ExactLength {
				return fmt.Errorf("create hint lost")
			}
		} else if sub != nil {
			return fmt.Errorf("non-member got a communicator")
		}
		if _, err := w.SplitOpt(0, 0, CommOptions{Type: 99}); ClassOf(err) != ErrArg {
			return fmt.Errorf("unknown split type: %v", err)
		}
		return nil
	})
}

// TestScaleConfigDefaults pins the scale knobs' defaults: peer state is
// lazy unless EagerPeers is set, a zero MaxPeerBytes means no ceiling,
// and a negative ceiling is rejected at Run.
func TestScaleConfigDefaults(t *testing.T) {
	var st Stats
	run(t, 2, Config{Stats: &st}, func(p *Proc) error {
		if p.Rank() == 0 {
			return p.World().Send([]byte{1}, 1, Byte, 1, 0)
		}
		buf := make([]byte, 1)
		_, err := p.World().Recv(buf, 1, Byte, 0, 0)
		return err
	})
	// Lazy is the default: the one exercised peer materialized state,
	// and nothing else did.
	peers := st.Aggregate().Peers
	if peers.Touched == 0 || peers.StateBytes == 0 {
		t.Errorf("default run recorded no peer-state materialization: %+v", peers)
	}
	if err := Run(1, Config{MaxPeerBytes: -1}, func(p *Proc) error { return nil }); err == nil || !strings.Contains(err.Error(), "MaxPeerBytes") {
		t.Errorf("negative MaxPeerBytes accepted: %v", err)
	}
}

// scaleGeometry is the small-ring layout the ceiling and harness tests
// share: 16 ranks/node with 8-cell 256-byte rings keeps the modeled
// per-peer state small enough that the eager baseline can materialize
// everything, yet large enough that the ceiling separates the modes.
func scaleGeometry() Config {
	return Config{
		Fabric: "inf", RanksPerNode: 16,
		ShmCellSize: 256, ShmRingCells: 8,
	}
}

// TestPeerStateCeilingDifferential is the memory-ceiling assertion of
// the lazy model: a 256-rank halo exchange runs comfortably under a
// 32KB per-rank ceiling with on-demand peer state, while the EagerPeers
// baseline — all-pairs connections plus every intra-node ring — blows
// through the same ceiling at init and aborts the world.
func TestPeerStateCeilingDifferential(t *testing.T) {
	const n, ceiling = 256, 32 << 10
	body := func(p *Proc) error {
		w := p.World()
		me := p.Rank()
		var reqs []*Request
		sbuf := make([]byte, 32)
		for _, d := range []int{-1, 1} {
			nb := me + d
			if nb < 0 || nb >= n {
				continue
			}
			rr, err := w.Irecv(make([]byte, 32), 32, Byte, nb, 0)
			if err != nil {
				return err
			}
			sr, err := w.Isend(sbuf, 32, Byte, nb, 0)
			if err != nil {
				return err
			}
			reqs = append(reqs, rr, sr)
		}
		return Waitall(reqs)
	}

	lazy := scaleGeometry()
	lazy.MaxPeerBytes = ceiling
	if err := Run(n, lazy, body); err != nil {
		t.Fatalf("lazy run under %dB ceiling: %v", ceiling, err)
	}

	eager := scaleGeometry()
	eager.MaxPeerBytes = ceiling
	eager.EagerPeers = true
	err := failFast(t, n, eager, body)
	if err == nil || !strings.Contains(err.Error(), "MaxPeerBytes") {
		t.Fatalf("eager run under the same ceiling must trip it, got: %v", err)
	}
}

// TestWatchdogDiagnosesLargeWorld deadlocks a 1K-rank world — every
// rank receives from its successor in a ring and nobody sends — and
// checks the watchdog still trips and the wait-graph names concrete
// edges with lazily materialized endpoints.
func TestWatchdogDiagnosesLargeWorld(t *testing.T) {
	const n = 1024
	var diag bytes.Buffer
	var st Stats
	cfg := Config{
		Fabric:           "ofi",
		Watchdog:         true,
		WatchdogInterval: 10 * time.Millisecond,
		DiagWriter:       &diag,
		Stats:            &st,
	}
	err := Run(n, cfg, func(p *Proc) error {
		buf := make([]byte, 8)
		_, err := p.World().Recv(buf, 8, Byte, (p.Rank()+1)%n, 0)
		return err
	})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	if st.WatchdogTrips == 0 {
		t.Error("watchdog never tripped")
	}
	out := diag.String()
	if !strings.Contains(out, "stall watchdog tripped") {
		t.Errorf("diagnosis missing trip header:\n%.2000s", out)
	}
	// The ring produces concrete who-waits-on-whom edges; spot-check
	// one from each end of the world.
	for _, want := range []string{"rank 0 waits on rank 1", fmt.Sprintf("rank %d waits on rank 0", n-1)} {
		if !strings.Contains(out, want) {
			t.Errorf("diagnosis missing edge %q", want)
		}
	}
}

// TestSparseWorld10K builds a 10,000-rank world, translates ranks, and
// splits it — with zero traffic. With sparse rank tables and lazy peer
// state this is cheap: no O(n) per-rank table copies, no per-peer
// endpoint or ring state at all. The peer-state aggregate pins that:
// constructing and carving a 10K world materializes nothing.
func TestSparseWorld10K(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime caps goroutines below 10K ranks")
	}
	const n = 10_000
	var st Stats
	cfg := Config{RanksPerNode: 16, Stats: &st}
	run(t, n, cfg, func(p *Proc) error {
		w := p.World()
		me := p.Rank()
		// O(1) rank translation on the identity table.
		if wr, err := w.WorldRank(me); err != nil || wr != me {
			return fmt.Errorf("world translation %d -> %d (%v)", me, wr, err)
		}
		if _, err := w.WorldRank(n); err == nil {
			return fmt.Errorf("out-of-range translation accepted")
		}
		// A parity split: 5000 ranks each, stride-2 arithmetic groups.
		half, err := w.Split(me%2, me)
		if err != nil {
			return err
		}
		if half.Size() != n/2 || half.Rank() != me/2 {
			return fmt.Errorf("split %d/%d", half.Rank(), half.Size())
		}
		// Translation through the strided table stays exact.
		if wr, err := half.WorldRank(half.Rank()); err != nil || wr != me {
			return fmt.Errorf("split translation %d -> %d (%v)", half.Rank(), wr, err)
		}
		return nil
	})
	if peers := st.Aggregate().Peers; peers.Touched != 0 || peers.StateBytes != 0 {
		t.Errorf("world construction + split materialized peer state: %+v", peers)
	}
}
