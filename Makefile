GO ?= go

.PHONY: ci build vet test race bench-smoke fuzz-smoke bench-json benchdiff

# The tier-1 gate: everything a PR must keep green. When both the
# baseline and current benchmark documents exist, the perf gate runs
# too: benchdiff fails the build on a >10% hot-path regression.
ci: build vet test race bench-smoke
	@if [ -f BENCH_PR9.json ] && [ -f BENCH_PR10.json ]; then \
		$(MAKE) benchdiff; \
	else \
		echo "ci: benchdiff skipped (need BENCH_PR9.json and BENCH_PR10.json)"; \
	fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The whole suite under the race detector: the multi-VCI engine makes
# every layer reachable from concurrent goroutines, so everything runs
# race-checked (including the ThreadMultiple chaos rounds).
race:
	$(GO) test -race ./...

# One iteration of every benchmark: catches bit-rot in the figure
# regeneration paths and allocation regressions (all benches report
# allocs) without the cost of a full run.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# Machine-readable benchmark summary: one iteration of every benchmark
# (ns/op, allocs/op), the reference-exchange metric aggregates with
# their latency histogram summaries (post-match, unexpected residency,
# ...), the multi-VCI scaling sweep, the nonblocking-collectives
# sweep, the staged-vs-handoff shm sweep, the one-sided
# zerocopy-vs-staged sweep, the 10K-rank scale sweep (lazy vs
# eager peer state), and the POP efficiency section (per-device
# exchange hierarchy + strong-scaling np sweep), written to
# BENCH_PR10.json for cross-PR comparison.
bench-json:
	$(GO) run ./cmd/benchjson -o BENCH_PR10.json

# Cross-PR perf gate: median-aware comparison of the previous PR's
# benchmark document against this one; exits nonzero when a hot-path
# metric (sends, receives, exchange, collectives, handoff, rma)
# regressed by more than 10%, or when POP Parallel Efficiency drops
# by more than 2 points on any shared efficiency metric.
benchdiff:
	$(GO) run ./cmd/benchdiff BENCH_PR9.json BENCH_PR10.json

# Short differential-fuzz runs: binned vs linear matching must agree,
# and staged vs zero-copy shm RMA must deliver identical bytes.
fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzBinnedMatchesLinear -fuzztime 10s ./internal/match
	$(GO) test -run xxx -fuzz FuzzRmaStagedZeroCopy -fuzztime 10s .
	$(GO) test -run xxx -fuzz FuzzPartitionedVsPlain -fuzztime 10s .
