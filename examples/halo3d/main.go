// halo3d: a 3-D halo exchange on a Cartesian topology with persistent
// requests — the production idiom for stencil and lattice codes. The
// communicator comes from CartCreate, the neighbor ranks from Shift
// (with MPI_PROC_NULL at the non-periodic boundaries), and the
// exchange itself is a set of persistent operations initialized once
// and restarted every iteration, amortizing the MPI layer's argument
// validation. Event tracing prints the per-operation profile at the
// end.
//
// Run:
//
//	go run ./examples/halo3d
package main

import (
	"fmt"
	"log"
	"os"

	"gompi"
)

const (
	nLocal = 16 // local cube edge (points)
	iters  = 30
)

func main() {
	dims, err := gompi.DimsCreate(8, 3, nil) // 2x2x2
	if err != nil {
		log.Fatal(err)
	}
	cfg := gompi.Config{Device: "ch4", Fabric: "bgq", Trace: true}
	err = gompi.Run(8, cfg, func(p *gompi.Proc) error {
		cart, err := p.World().CartCreate(dims, []bool{true, true, false})
		if err != nil {
			return err
		}

		// One face buffer per direction; persistent send/recv pairs
		// bound once. PROC_NULL neighbors simply get no operations —
		// the application-level check of Section 3.4.
		face := nLocal * nLocal * 8
		var ops []*gompi.PersistentOp
		for dim := 0; dim < 3; dim++ {
			src, dst, err := cart.Shift(dim, 1)
			if err != nil {
				return err
			}
			for side, peerPair := range [][2]int{{dst, src}, {src, dst}} {
				sendTo, recvFrom := peerPair[0], peerPair[1]
				tag := 2*dim + side
				if sendTo != gompi.ProcNull {
					out := make([]byte, face)
					for i := range out {
						out[i] = byte(cart.Rank())
					}
					op, err := cart.SendInit(out, face, gompi.Byte, sendTo, tag)
					if err != nil {
						return err
					}
					ops = append(ops, op)
				}
				if recvFrom != gompi.ProcNull {
					in := make([]byte, face)
					op, err := cart.RecvInit(in, face, gompi.Byte, recvFrom, tag)
					if err != nil {
						return err
					}
					ops = append(ops, op)
				}
			}
		}

		for it := 0; it < iters; it++ {
			if err := gompi.StartAll(ops); err != nil {
				return err
			}
			for _, op := range ops {
				if _, err := op.Wait(); err != nil {
					return err
				}
			}
			// "Compute" on the interior while halos are fresh.
			p.ChargeCompute(int64(nLocal * nLocal * nLocal * 8))
		}
		if err := cart.Barrier(); err != nil {
			return err
		}

		if p.Rank() == 0 {
			fmt.Printf("3-D halo exchange, %v grid, %d^3 local points, %d iterations\n",
				dims, nLocal, iters)
			c := p.Counters()
			fmt.Printf("rank 0: %d MPI instructions, %.2f ms virtual time\n",
				c.TotalInstr, p.VirtualTime()*1e3)
			fmt.Println("\nrank 0 operation profile:")
			p.WriteTraceSummary(os.Stdout)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
