// rma: one-sided communication on the public API — window creation,
// fence epochs, put/get/accumulate, a passive-target atomic counter,
// and the paper's Section 3.2 virtual-address proposal
// (MPI_PUT_VIRTUAL_ADDR), including on a dynamic window.
//
// Run:
//
//	go run ./examples/rma
package main

import (
	"fmt"
	"log"

	"gompi"
)

func main() {
	err := gompi.Run(4, gompi.Config{Device: "ch4", Fabric: "ucx"}, func(p *gompi.Proc) error {
		world := p.World()
		rank, size := p.Rank(), p.Size()

		// --- fence epoch: everyone writes its rank into rank 0 -------
		win, mem, err := world.WinAllocate(8*size, 8) // 8-byte displacement unit
		if err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		cell := gompi.Int64Bytes([]int64{int64(rank * rank)}, nil)
		if err := win.Put(cell, 8, gompi.Byte, 0, rank); err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if rank == 0 {
			vals := gompi.BytesInt64(mem, nil)
			fmt.Printf("rank 0 window after puts: %v (squares by origin rank)\n", vals)
		}

		// --- passive target: a shared atomic counter on rank 0 -------
		// End the fence epoch sequence first (MPI_MODE_NOSUCCEED).
		if err := win.FenceEnd(); err != nil {
			return err
		}
		if err := win.Lock(0, true); err != nil {
			return err
		}
		one := gompi.Int64Bytes([]int64{1}, nil)
		old := make([]byte, 8)
		if err := win.FetchAndOp(one, old, gompi.Long, 0, 0, gompi.OpSum); err != nil {
			return err
		}
		if err := win.Unlock(0); err != nil {
			return err
		}
		ticket := gompi.BytesInt64(old, nil)[0]
		fmt.Printf("rank %d drew ticket %d\n", rank, ticket)
		if err := world.Barrier(); err != nil {
			return err
		}

		// --- virtual-address put on a dynamic window (Section 3.2) ---
		dyn, err := world.WinCreateDynamic()
		if err != nil {
			return err
		}
		var va gompi.VAddr
		slab := make([]byte, 64)
		if rank == 1 {
			va, err = dyn.Attach(slab)
			if err != nil {
				return err
			}
		}
		// Publish rank 1's address the way applications do: a bcast.
		addr := gompi.Int64Bytes([]int64{int64(va)}, nil)
		if err := world.Bcast(addr, 1, gompi.Long, 1); err != nil {
			return err
		}
		va = gompi.VAddr(gompi.BytesInt64(addr, nil)[0])
		if err := dyn.Fence(); err != nil {
			return err
		}
		if rank == 2 {
			if err := dyn.PutVirtualAddr([]byte("via-virtual-address"), 19, gompi.Byte, 1, va); err != nil {
				return err
			}
		}
		if err := dyn.Fence(); err != nil {
			return err
		}
		if rank == 1 {
			fmt.Printf("rank 1 dynamic window now holds %q\n", slab[:19])
			if err := dyn.Detach(slab, va); err != nil {
				return err
			}
		}
		if err := world.Barrier(); err != nil {
			return err
		}
		if err := dyn.Free(); err != nil {
			return err
		}
		return win.Free()
	})
	if err != nil {
		log.Fatal(err)
	}
}
