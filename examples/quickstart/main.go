// Quickstart: the gompi equivalent of every MPI tutorial's first
// program — init, rank/size, point-to-point ping-pong, a broadcast, an
// allreduce, and the cost counters that make this library a
// reproduction of "Why Is MPI So Slow?" (SC'17) rather than just
// another message-passing toy.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gompi"
)

func main() {
	cfg := gompi.Config{
		Device: "ch4", // the paper's lightweight device
		Fabric: "ofi", // simulated Omni-Path/PSM2
	}
	err := gompi.Run(4, cfg, func(p *gompi.Proc) error {
		world := p.World()
		rank, size := p.Rank(), p.Size()

		// --- point-to-point ping-pong between ranks 0 and 1 ---------
		if rank == 0 {
			msg := []byte("hello from rank 0")
			if err := world.Send(msg, len(msg), gompi.Byte, 1, 42); err != nil {
				return err
			}
			reply := make([]byte, 64)
			st, err := world.Recv(reply, len(reply), gompi.Byte, 1, 43)
			if err != nil {
				return err
			}
			fmt.Printf("rank 0 got %q (%d bytes) from rank %d\n",
				reply[:st.Count], st.Count, st.Source)
		} else if rank == 1 {
			buf := make([]byte, 64)
			st, err := world.Recv(buf, len(buf), gompi.Byte, 0, 42)
			if err != nil {
				return err
			}
			reply := append([]byte("ack: "), buf[:st.Count]...)
			if err := world.Send(reply, len(reply), gompi.Byte, 0, 43); err != nil {
				return err
			}
		}

		// --- collectives ---------------------------------------------
		if err := world.Barrier(); err != nil {
			return err
		}
		data := []byte{0}
		if rank == 0 {
			data[0] = 99
		}
		if err := world.Bcast(data, 1, gompi.Byte, 0); err != nil {
			return err
		}
		sums, err := world.AllreduceFloat64([]float64{float64(rank)}, gompi.OpSum)
		if err != nil {
			return err
		}
		fmt.Printf("rank %d/%d: bcast=%d allreduce-sum=%v\n", rank, size, data[0], sums[0])

		// --- the paper's instrumentation ------------------------------
		c := p.Counters()
		fmt.Printf("rank %d spent %d MPI instructions (%d mandatory) and %.1f us virtual time\n",
			rank, c.TotalInstr, c.Mandatory, p.VirtualTime()*1e6)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
