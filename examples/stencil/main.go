// Stencil: a 2-D five-point Jacobi iteration with halo exchange — the
// exact application pattern the paper's Section 3.1 proposal targets.
// Each rank owns a block of the grid and exchanges boundary rows and
// columns with its four neighbors every sweep. The example runs the
// exchange twice: once with plain MPI-3.1 calls, and once with the
// paper's proposed extensions (MPI_ISEND_GLOBAL with precomputed world
// ranks, no-PROC_NULL sends at interior ranks, requestless completion),
// then prints the instruction savings.
//
// Run:
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"log"
	"math"

	"gompi"
)

const (
	gridP  = 2  // 2x2 process grid
	nLocal = 32 // local block size (nLocal x nLocal)
	sweeps = 50
)

func main() {
	cfg := gompi.Config{Device: "ch4", Fabric: "ofi", Build: "no-err-single-ipo"}
	err := gompi.Run(gridP*gridP, cfg, func(p *gompi.Proc) error {
		world := p.World()
		px, py := p.Rank()%gridP, p.Rank()/gridP

		// Neighbor ranks; MPI_PROC_NULL at the domain boundary.
		left, right, up, down := gompi.ProcNull, gompi.ProcNull, gompi.ProcNull, gompi.ProcNull
		if px > 0 {
			left = p.Rank() - 1
		}
		if px < gridP-1 {
			right = p.Rank() + 1
		}
		if py > 0 {
			up = p.Rank() - gridP
		}
		if py < gridP-1 {
			down = p.Rank() + gridP
		}

		// Local block with a one-cell halo; fixed boundary condition
		// u=1 on the global edge, u=0 inside.
		n := nLocal + 2
		u := make([]float64, n*n)
		next := make([]float64, n*n)
		at := func(g []float64, i, j int) *float64 { return &g[i+n*j] }
		for i := 0; i < n; i++ {
			if px == 0 {
				*at(u, 1, i) = 1
			}
			if py == 0 {
				*at(u, i, 1) = 1
			}
		}

		row := make([]byte, 8*nLocal)
		col := make([]byte, 8*nLocal)
		rowIn := make([]byte, 8*nLocal)
		colIn := make([]byte, 8*nLocal)
		vals := make([]float64, nLocal)

		// The proposal pattern: translate neighbor ranks to
		// MPI_COMM_WORLD ranks once (they already are, here; a real
		// code would call MPI_GROUP_TRANSLATE_RANKS), then use
		// MPI_ISEND_GLOBAL + no-request completion in the loop. The
		// per-side PROC_NULL checks move into the application — done
		// once below, not per message.
		type side struct {
			peer  int
			tagTx int
			tagRx int
			fill  func() []byte   // gather my boundary into a wire buffer
			apply func(in []byte) // scatter the received halo
		}
		sides := []side{
			{left, 0, 1,
				func() []byte {
					for j := 0; j < nLocal; j++ {
						vals[j] = *at(u, 1, j+1)
					}
					return gompi.Float64Bytes(vals, col)
				},
				func(in []byte) {
					for j, v := range gompi.BytesFloat64(in, vals) {
						*at(u, 0, j+1) = v
					}
				}},
			{right, 1, 0,
				func() []byte {
					for j := 0; j < nLocal; j++ {
						vals[j] = *at(u, nLocal, j+1)
					}
					return gompi.Float64Bytes(vals, col)
				},
				func(in []byte) {
					for j, v := range gompi.BytesFloat64(in, vals) {
						*at(u, nLocal+1, j+1) = v
					}
				}},
			{up, 2, 3,
				func() []byte {
					for i := 0; i < nLocal; i++ {
						vals[i] = *at(u, i+1, 1)
					}
					return gompi.Float64Bytes(vals, row)
				},
				func(in []byte) {
					for i, v := range gompi.BytesFloat64(in, vals) {
						*at(u, i+1, 0) = v
					}
				}},
			{down, 3, 2,
				func() []byte {
					for i := 0; i < nLocal; i++ {
						vals[i] = *at(u, i+1, nLocal+1)
					}
					return gompi.Float64Bytes(vals, row)
				},
				func(in []byte) {
					for i, v := range gompi.BytesFloat64(in, vals) {
						*at(u, i+1, nLocal+1) = v
					}
				}},
		}

		exchange := func(useProposals bool) error {
			for _, s := range sides {
				if s.peer == gompi.ProcNull {
					if !useProposals {
						// Plain MPI-3.1: let the library discard it.
						if err := world.IsendNoReq(row[:0], 0, gompi.Byte, s.peer, s.tagTx); err != nil {
							return err
						}
					}
					continue // proposal path: the app checked once
				}
				wire := s.fill()
				if useProposals {
					if _, err := world.IsendOpt(wire, len(wire), gompi.Byte, s.peer, s.tagTx,
						gompi.SendOptions{GlobalRank: true, NoProcNull: true, NoReq: true}); err != nil {
						return err
					}
				} else {
					if err := world.IsendNoReq(wire, len(wire), gompi.Byte, s.peer, s.tagTx); err != nil {
						return err
					}
				}
			}
			for _, s := range sides {
				if s.peer == gompi.ProcNull {
					continue
				}
				buf := rowIn
				if s.tagRx < 2 {
					buf = colIn
				}
				if _, err := world.Recv(buf, len(buf), gompi.Byte, s.peer, s.tagRx); err != nil {
					return err
				}
				s.apply(buf)
			}
			return world.CommWaitall()
		}

		run := func(useProposals bool) (float64, int64, error) {
			before := p.Counters()
			var resid float64
			for s := 0; s < sweeps; s++ {
				if err := exchange(useProposals); err != nil {
					return 0, 0, err
				}
				resid = 0
				for j := 1; j <= nLocal; j++ {
					for i := 1; i <= nLocal; i++ {
						v := 0.25 * (*at(u, i-1, j) + *at(u, i+1, j) + *at(u, i, j-1) + *at(u, i, j+1))
						resid += math.Abs(v - *at(u, i, j))
						*at(next, i, j) = v
					}
				}
				p.ChargeCompute(int64(nLocal * nLocal * 6))
				u, next = next, u
			}
			instr := p.Counters().Sub(before).TotalInstr
			sums, err := world.AllreduceFloat64([]float64{resid}, gompi.OpSum)
			if err != nil {
				return 0, 0, err
			}
			return sums[0], instr, nil
		}

		res31, instr31, err := run(false)
		if err != nil {
			return err
		}
		resProp, instrProp, err := run(true)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			fmt.Printf("Jacobi 5-point stencil, %dx%d ranks, %dx%d local, %d sweeps x2\n",
				gridP, gridP, nLocal, nLocal, sweeps)
			fmt.Printf("  MPI-3.1 exchange:   residual %.4f, %6d MPI instructions\n", res31, instr31)
			fmt.Printf("  proposals exchange: residual %.4f, %6d MPI instructions (%.1f%% fewer)\n",
				resProp, instrProp, 100*float64(instr31-instrProp)/float64(instr31))
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
