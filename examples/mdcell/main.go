// mdcell: a small molecular-dynamics run on the public API — the
// LAMMPS-style workload of the paper's Section 4.4 — comparing the
// lightweight ch4 device against the CH3-style baseline at the
// strong-scaling limit, where the per-step neighbor exchange is
// latency-bound and the MPI software path shows up directly in
// timesteps per second.
//
// Run:
//
//	go run ./examples/mdcell
package main

import (
	"fmt"
	"log"

	"gompi"
	"gompi/internal/md"
)

func main() {
	prm := md.Params{
		AtomsPerCore: 64,
		RankGrid:     [3]int{2, 2, 2},
		Steps:        20,
	}
	fmt.Printf("LJ melt, %d ranks, ~%d atoms/core, %d steps, BG/Q platform profile\n\n",
		8, prm.AtomsPerCore, prm.Steps)

	for _, dev := range []gompi.DeviceKind{gompi.DeviceCH4, gompi.DeviceOriginal} {
		var res md.Result
		err := gompi.Run(8, gompi.Config{Device: dev, Fabric: "bgq"}, func(p *gompi.Proc) error {
			r, err := md.Run(p, prm)
			if err != nil {
				return err
			}
			if p.Rank() == 0 {
				res = r
			}
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %8.1f timesteps/s   %5.1f%% comm   energy drift %+.2e   |p| = %.2e\n",
			dev+":", res.StepsPerSec, 100*res.CommFrac,
			(res.Energy-res.InitialEnergy)/res.InitialEnergy, res.Momentum)
	}
}
