package gompi

import (
	"fmt"
	"testing"
)

func TestPersistentSendRecv(t *testing.T) {
	run(t, 2, Config{Fabric: "ofi", Build: "default"}, func(p *Proc) error {
		w := p.World()
		const iters = 10
		if p.Rank() == 0 {
			buf := []byte{0}
			op, err := w.SendInit(buf, 1, Byte, 1, 7)
			if err != nil {
				return err
			}
			for i := 0; i < iters; i++ {
				buf[0] = byte(i)
				if err := op.Start(); err != nil {
					return err
				}
				if _, err := op.Wait(); err != nil {
					return err
				}
			}
			return nil
		}
		buf := []byte{0}
		op, err := w.RecvInit(buf, 1, Byte, 0, 7)
		if err != nil {
			return err
		}
		for i := 0; i < iters; i++ {
			if err := op.Start(); err != nil {
				return err
			}
			st, err := op.Wait()
			if err != nil {
				return err
			}
			if buf[0] != byte(i) || st.Source != 0 {
				return fmt.Errorf("iter %d: buf %d st %+v", i, buf[0], st)
			}
		}
		return nil
	})
}

func TestPersistentAmortizesValidation(t *testing.T) {
	// On the default build, Start must skip the 74-instruction error
	// checking that a fresh Isend pays.
	run(t, 2, Config{Fabric: "inf", Build: "default"}, func(p *Proc) error {
		w := p.World()
		if p.Rank() != 0 {
			buf := make([]byte, 1)
			for i := 0; i < 2; i++ {
				if _, err := w.Recv(buf, 1, Byte, 0, 0); err != nil {
					return err
				}
			}
			return nil
		}
		buf := []byte{1}
		before := p.Counters()
		req, err := w.Isend(buf, 1, Byte, 1, 0)
		if err != nil {
			return err
		}
		fresh := p.Counters().Sub(before)
		if _, err := req.Wait(); err != nil {
			return err
		}

		op, err := w.SendInit(buf, 1, Byte, 1, 0)
		if err != nil {
			return err
		}
		before = p.Counters()
		if err := op.Start(); err != nil {
			return err
		}
		started := p.Counters().Sub(before)
		if _, err := op.Wait(); err != nil {
			return err
		}
		if started.ErrorCheck != 0 {
			return fmt.Errorf("Start charged %d error-check instructions", started.ErrorCheck)
		}
		if started.TotalInstr >= fresh.TotalInstr {
			return fmt.Errorf("Start (%d) not cheaper than Isend (%d)", started.TotalInstr, fresh.TotalInstr)
		}
		if fresh.TotalInstr-started.TotalInstr != fresh.ErrorCheck {
			return fmt.Errorf("saving %d != error checking %d",
				fresh.TotalInstr-started.TotalInstr, fresh.ErrorCheck)
		}
		return nil
	})
}

func TestPersistentStateValidation(t *testing.T) {
	run(t, 1, Config{Build: "default"}, func(p *Proc) error {
		w := p.World()
		if _, err := w.SendInit(nil, 4, Byte, 0, 0); ClassOf(err) != ErrBuffer {
			return fmt.Errorf("bad init args: %v", err)
		}
		op, err := w.SendInit([]byte{1}, 1, Byte, ProcNull, 0)
		if err != nil {
			return err
		}
		if _, err := op.Wait(); ClassOf(err) != ErrRequest {
			return fmt.Errorf("wait before start: %v", err)
		}
		if err := op.Start(); err != nil {
			return err
		}
		if err := op.Start(); ClassOf(err) != ErrRequest {
			return fmt.Errorf("double start: %v", err)
		}
		if _, err := op.Wait(); err != nil {
			return err
		}
		return nil
	})
}

func TestStartAllHaloPattern(t *testing.T) {
	// The persistent-halo idiom: init once, StartAll + Waitall per
	// iteration, on a periodic ring.
	const n = 4
	run(t, n, Config{Fabric: "ucx"}, func(p *Proc) error {
		w := p.World()
		right := (p.Rank() + 1) % n
		left := (p.Rank() - 1 + n) % n
		out := []byte{0}
		in := []byte{0}
		sendOp, err := w.SendInit(out, 1, Byte, right, 1)
		if err != nil {
			return err
		}
		recvOp, err := w.RecvInit(in, 1, Byte, left, 1)
		if err != nil {
			return err
		}
		ops := []*PersistentOp{sendOp, recvOp}
		for iter := 0; iter < 5; iter++ {
			out[0] = byte(p.Rank()*10 + iter)
			if err := StartAll(ops); err != nil {
				return err
			}
			for _, o := range ops {
				if _, err := o.Wait(); err != nil {
					return err
				}
			}
			if in[0] != byte(left*10+iter) {
				return fmt.Errorf("iter %d: got %d", iter, in[0])
			}
		}
		return nil
	})
}

func TestSplitTypeShared(t *testing.T) {
	run(t, 8, Config{Fabric: "ofi", RanksPerNode: 4}, func(p *Proc) error {
		w := p.World()
		node, err := w.SplitType(SplitTypeShared, p.Rank())
		if err != nil {
			return err
		}
		if node.Size() != 4 {
			return fmt.Errorf("node comm size %d, want 4", node.Size())
		}
		if node.Rank() != p.Rank()%4 {
			return fmt.Errorf("node rank %d for world %d", node.Rank(), p.Rank())
		}
		// On-node collective must work (and ride the shmmod).
		vals, err := node.AllreduceFloat64([]float64{1}, OpSum)
		if err != nil {
			return err
		}
		if vals[0] != 4 {
			return fmt.Errorf("node allreduce = %v", vals[0])
		}
		if _, err := w.SplitType(99, 0); ClassOf(err) != ErrArg {
			return fmt.Errorf("bad split type: %v", err)
		}
		return nil
	})
}

func TestSendrecvReplace(t *testing.T) {
	const n = 3
	run(t, n, Config{}, func(p *Proc) error {
		w := p.World()
		right := (p.Rank() + 1) % n
		left := (p.Rank() - 1 + n) % n
		buf := []byte{byte(p.Rank() + 1)}
		st, err := w.SendrecvReplace(buf, 1, Byte, right, 0, left, 0)
		if err != nil {
			return err
		}
		if buf[0] != byte(left+1) || st.Source != left {
			return fmt.Errorf("rank %d: buf %d st %+v", p.Rank(), buf[0], st)
		}
		return nil
	})
}

func TestReduceLocal(t *testing.T) {
	in := Int64Bytes([]int64{5, 7}, nil)
	inout := Int64Bytes([]int64{1, 2}, nil)
	if err := ReduceLocal(in, inout, 2, Long, OpSum); err != nil {
		t.Fatal(err)
	}
	got := BytesInt64(inout, nil)
	if got[0] != 6 || got[1] != 9 {
		t.Fatalf("reduce_local = %v", got)
	}
	if err := ReduceLocal(in, inout, 2, Double, OpBAnd); err == nil {
		t.Fatal("bitwise op on double accepted")
	}
}
