package gompi

import (
	"bytes"
	"fmt"
	"testing"
)

var collSizes = []int{1, 2, 3, 4, 7, 8}

func TestBarrierPublic(t *testing.T) {
	for _, cfg := range sweepConfigs {
		t.Run(cfgName(cfg), func(t *testing.T) {
			run(t, 4, cfg, func(p *Proc) error {
				for i := 0; i < 3; i++ {
					if err := p.World().Barrier(); err != nil {
						return err
					}
				}
				return nil
			})
		})
	}
}

func TestBcastPublic(t *testing.T) {
	for _, n := range collSizes {
		run(t, n, Config{Fabric: "ofi"}, func(p *Proc) error {
			w := p.World()
			buf := make([]byte, 32)
			root := n - 1
			if p.Rank() == root {
				for i := range buf {
					buf[i] = byte(i ^ 0x5A)
				}
			}
			if err := w.Bcast(buf, 32, Byte, root); err != nil {
				return err
			}
			for i := range buf {
				if buf[i] != byte(i^0x5A) {
					return fmt.Errorf("rank %d byte %d = %d", p.Rank(), i, buf[i])
				}
			}
			return nil
		})
	}
}

func TestAllreducePublic(t *testing.T) {
	for _, n := range collSizes {
		run(t, n, Config{Fabric: "ucx"}, func(p *Proc) error {
			w := p.World()
			vals, err := w.AllreduceFloat64([]float64{1.0, float64(p.Rank())}, OpSum)
			if err != nil {
				return err
			}
			if vals[0] != float64(n) || vals[1] != float64(n*(n-1)/2) {
				return fmt.Errorf("allreduce = %v", vals)
			}
			return nil
		})
	}
}

func TestReduceMaxPublic(t *testing.T) {
	run(t, 5, Config{}, func(p *Proc) error {
		w := p.World()
		send := Int64Bytes([]int64{int64(p.Rank() * 10)}, nil)
		recv := make([]byte, 8)
		if err := w.Reduce(send, recv, 1, Long, OpMax, 2); err != nil {
			return err
		}
		if p.Rank() == 2 {
			if got := BytesInt64(recv, nil)[0]; got != 40 {
				return fmt.Errorf("max = %d", got)
			}
		}
		return nil
	})
}

func TestGatherScatterPublic(t *testing.T) {
	const n = 4
	run(t, n, Config{Fabric: "inf"}, func(p *Proc) error {
		w := p.World()
		mine := []byte{byte(p.Rank()), byte(p.Rank() * 2)}
		all := make([]byte, 2*n)
		if err := w.Gather(mine, all, 2, Byte, 0); err != nil {
			return err
		}
		if p.Rank() == 0 {
			for r := 0; r < n; r++ {
				if all[2*r] != byte(r) || all[2*r+1] != byte(2*r) {
					return fmt.Errorf("gather block %d = %v", r, all[2*r:2*r+2])
				}
			}
		}
		back := make([]byte, 2)
		if err := w.Scatter(all, back, 2, Byte, 0); err != nil {
			return err
		}
		if !bytes.Equal(back, mine) {
			return fmt.Errorf("scatter returned %v", back)
		}
		return nil
	})
}

func TestAllgatherPublic(t *testing.T) {
	for _, n := range collSizes {
		run(t, n, Config{Fabric: "ofi"}, func(p *Proc) error {
			w := p.World()
			mine := []byte{byte(p.Rank() + 1)}
			all := make([]byte, n)
			if err := w.Allgather(mine, all, 1, Byte); err != nil {
				return err
			}
			for r := 0; r < n; r++ {
				if all[r] != byte(r+1) {
					return fmt.Errorf("rank %d: allgather %v", p.Rank(), all)
				}
			}
			return nil
		})
	}
}

func TestAlltoallPublic(t *testing.T) {
	for _, n := range collSizes {
		run(t, n, Config{}, func(p *Proc) error {
			w := p.World()
			send := make([]byte, n)
			for r := range send {
				send[r] = byte(p.Rank()*8 + r)
			}
			recv := make([]byte, n)
			if err := w.Alltoall(send, recv, 1, Byte); err != nil {
				return err
			}
			for r := 0; r < n; r++ {
				if recv[r] != byte(r*8+p.Rank()) {
					return fmt.Errorf("rank %d recv %v", p.Rank(), recv)
				}
			}
			return nil
		})
	}
}

func TestReduceScatterBlockPublic(t *testing.T) {
	const n = 4
	run(t, n, Config{}, func(p *Proc) error {
		w := p.World()
		send := Int64Bytes([]int64{1, 2, 3, 4}, nil)
		recv := make([]byte, 8)
		if err := w.ReduceScatterBlock(send, recv, 1, Long, OpSum); err != nil {
			return err
		}
		if got := BytesInt64(recv, nil)[0]; got != int64(n*(p.Rank()+1)) {
			return fmt.Errorf("rank %d got %d", p.Rank(), got)
		}
		return nil
	})
}

func TestCollectivesIsolatedFromPt2pt(t *testing.T) {
	// A pending wildcard receive must not swallow collective traffic:
	// collectives run on the collective context.
	run(t, 2, Config{Fabric: "inf"}, func(p *Proc) error {
		w := p.World()
		var pending *Request
		if p.Rank() == 1 {
			var err error
			pending, err = w.Irecv(make([]byte, 1), 1, Byte, AnySource, AnyTag)
			if err != nil {
				return err
			}
		}
		if err := w.Barrier(); err != nil {
			return err
		}
		buf := []byte{42}
		if err := w.Bcast(buf, 1, Byte, 0); err != nil {
			return err
		}
		if buf[0] != 42 {
			return fmt.Errorf("bcast delivered %d", buf[0])
		}
		if p.Rank() == 0 {
			return w.Send([]byte{7}, 1, Byte, 1, 9)
		}
		st, err := pending.Wait()
		if err != nil {
			return err
		}
		if st.Tag != 9 {
			return fmt.Errorf("wildcard matched collective traffic: %+v", st)
		}
		return nil
	})
}

func TestCollectivesOnSubcommunicator(t *testing.T) {
	const n = 6
	run(t, n, Config{Fabric: "ofi"}, func(p *Proc) error {
		w := p.World()
		sub, err := w.Split(p.Rank()%2, p.Rank())
		if err != nil {
			return err
		}
		vals, err := sub.AllreduceFloat64([]float64{float64(p.Rank())}, OpSum)
		if err != nil {
			return err
		}
		// Even ranks: 0+2+4 = 6; odd: 1+3+5 = 9.
		want := 6.0
		if p.Rank()%2 == 1 {
			want = 9.0
		}
		if vals[0] != want {
			return fmt.Errorf("rank %d subcomm sum = %v, want %v", p.Rank(), vals[0], want)
		}
		return sub.Free()
	})
}

func TestCollectiveOnFreedCommRejected(t *testing.T) {
	run(t, 1, Config{Build: "default"}, func(p *Proc) error {
		w := p.World()
		d, err := w.Dup()
		if err != nil {
			return err
		}
		if err := d.Free(); err != nil {
			return err
		}
		if err := d.Barrier(); ClassOf(err) != ErrComm {
			return fmt.Errorf("barrier on freed comm: %v", err)
		}
		return nil
	})
}
