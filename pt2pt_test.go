package gompi

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func TestNonblockingWindowedExchange(t *testing.T) {
	run(t, 2, Config{Fabric: "ofi"}, func(p *Proc) error {
		w := p.World()
		const msgs = 32
		if p.Rank() == 0 {
			reqs := make([]*Request, 0, msgs)
			for i := 0; i < msgs; i++ {
				req, err := w.Isend([]byte{byte(i)}, 1, Byte, 1, i)
				if err != nil {
					return err
				}
				reqs = append(reqs, req)
			}
			return Waitall(reqs)
		}
		reqs := make([]*Request, 0, msgs)
		bufs := make([][]byte, msgs)
		for i := 0; i < msgs; i++ {
			bufs[i] = make([]byte, 1)
			req, err := w.Irecv(bufs[i], 1, Byte, 0, i)
			if err != nil {
				return err
			}
			reqs = append(reqs, req)
		}
		if err := Waitall(reqs); err != nil {
			return err
		}
		for i, b := range bufs {
			if b[0] != byte(i) {
				return fmt.Errorf("msg %d carried %d", i, b[0])
			}
		}
		return nil
	})
}

func TestAnySourceAnyTagPublic(t *testing.T) {
	run(t, 4, Config{Fabric: "ofi"}, func(p *Proc) error {
		w := p.World()
		if p.Rank() != 0 {
			return w.Send([]byte{byte(p.Rank())}, 1, Byte, 0, 100+p.Rank())
		}
		seen := map[int]bool{}
		for i := 0; i < 3; i++ {
			buf := make([]byte, 1)
			st, err := w.Recv(buf, 1, Byte, AnySource, AnyTag)
			if err != nil {
				return err
			}
			if st.Tag != 100+st.Source || buf[0] != byte(st.Source) {
				return fmt.Errorf("status %+v buf %d", st, buf[0])
			}
			seen[st.Source] = true
		}
		if len(seen) != 3 {
			return fmt.Errorf("sources %v", seen)
		}
		return nil
	})
}

func TestSendToProcNullPublic(t *testing.T) {
	run(t, 1, Config{}, func(p *Proc) error {
		w := p.World()
		if err := w.Send([]byte{1}, 1, Byte, ProcNull, 0); err != nil {
			return err
		}
		buf := make([]byte, 1)
		st, err := w.Recv(buf, 1, Byte, ProcNull, 0)
		if err != nil {
			return err
		}
		if st.Source != ProcNull || st.Count != 0 {
			return fmt.Errorf("status %+v", st)
		}
		return nil
	})
}

func TestTruncationReturnsError(t *testing.T) {
	run(t, 2, Config{}, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			return w.Send(make([]byte, 16), 16, Byte, 1, 0)
		}
		_, err := w.Recv(make([]byte, 4), 4, Byte, 0, 0)
		if ClassOf(err) != ErrTruncate {
			return fmt.Errorf("err = %v, want truncate", err)
		}
		return nil
	})
}

func TestProbeThenRecv(t *testing.T) {
	run(t, 2, Config{Fabric: "ofi"}, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			return w.Send([]byte("probe-me"), 8, Byte, 1, 3)
		}
		st, err := w.Probe(0, 3)
		if err != nil {
			return err
		}
		if st.Count != 8 {
			return fmt.Errorf("probe count %d", st.Count)
		}
		// Size the buffer from the probe, the classic pattern.
		buf := make([]byte, st.Count)
		if _, err := w.Recv(buf, st.Count, Byte, st.Source, st.Tag); err != nil {
			return err
		}
		if string(buf) != "probe-me" {
			return fmt.Errorf("recv %q", buf)
		}
		return nil
	})
}

func TestSendrecvRing(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		run(t, n, Config{Fabric: "inf"}, func(p *Proc) error {
			w := p.World()
			right := (p.Rank() + 1) % n
			left := (p.Rank() - 1 + n) % n
			out := []byte{byte(p.Rank())}
			in := make([]byte, 1)
			st, err := w.Sendrecv(out, 1, Byte, right, 0, in, 1, Byte, left, 0)
			if err != nil {
				return err
			}
			if in[0] != byte(left) || st.Source != left {
				return fmt.Errorf("ring got %d from %d", in[0], st.Source)
			}
			return nil
		})
	}
}

func TestDerivedTypePublicRoundTrip(t *testing.T) {
	run(t, 2, Config{Build: "default"}, func(p *Proc) error {
		w := p.World()
		// Column of a 4x4 byte matrix: vector(4 blocks of 1, stride 4).
		col, err := TypeVector(4, 1, 4, Byte)
		if err != nil {
			return err
		}
		if err := col.Commit(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			m := []byte{
				1, 2, 3, 4,
				5, 6, 7, 8,
				9, 10, 11, 12,
				13, 14, 15, 16,
			}
			return w.Send(m, 1, col, 1, 0) // column 0: 1,5,9,13
		}
		m := make([]byte, 16)
		if _, err := w.Recv(m, 1, col, 0, 0); err != nil {
			return err
		}
		want := []byte{1, 0, 0, 0, 5, 0, 0, 0, 9, 0, 0, 0, 13, 0, 0, 0}
		if !bytes.Equal(m, want) {
			return fmt.Errorf("column landed as %v", m)
		}
		return nil
	})
}

func TestTestPolling(t *testing.T) {
	run(t, 2, Config{Fabric: "ofi"}, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			// Delay the send so rank 1 polls at least once.
			for i := 0; i < 1000; i++ {
				p.ChargeCompute(10)
			}
			return w.Send([]byte{9}, 1, Byte, 1, 0)
		}
		buf := make([]byte, 1)
		req, err := w.Irecv(buf, 1, Byte, 0, 0)
		if err != nil {
			return err
		}
		for {
			st, done, err := req.Test()
			if err != nil {
				return err
			}
			if done {
				if st.Count != 1 || buf[0] != 9 {
					return fmt.Errorf("test completion %+v %v", st, buf)
				}
				return nil
			}
		}
	})
}

func TestSelfMessagingPublic(t *testing.T) {
	run(t, 1, Config{}, func(p *Proc) error {
		w := p.World()
		req, err := w.Isend([]byte("self"), 4, Byte, 0, 0)
		if err != nil {
			return err
		}
		buf := make([]byte, 4)
		if _, err := w.Recv(buf, 4, Byte, 0, 0); err != nil {
			return err
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
		if string(buf) != "self" {
			return errors.New("self message corrupted")
		}
		return nil
	})
}

func TestWaitOnNilRequestIsNoop(t *testing.T) {
	var r *Request
	if _, err := r.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, done, err := r.Test(); !done || err != nil {
		t.Fatal("nil request should test complete")
	}
}

func TestMessageOrderingPerPair(t *testing.T) {
	// Non-overtaking: same (src, tag) messages arrive in send order.
	run(t, 2, Config{Fabric: "ucx"}, func(p *Proc) error {
		w := p.World()
		const msgs = 64
		if p.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				if err := w.IsendNoReq([]byte{byte(i)}, 1, Byte, 1, 0); err != nil {
					return err
				}
			}
			return w.CommWaitall()
		}
		for i := 0; i < msgs; i++ {
			buf := make([]byte, 1)
			if _, err := w.Recv(buf, 1, Byte, 0, 0); err != nil {
				return err
			}
			if buf[0] != byte(i) {
				return fmt.Errorf("message %d arrived as %d", i, buf[0])
			}
		}
		return nil
	})
}
