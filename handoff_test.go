package gompi

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
	"time"

	"gompi/internal/metrics"
)

// fillPattern writes a deterministic byte pattern so corruption is
// position-sensitive (a swapped fragment changes bytes, not just sums).
func fillPattern(buf []byte, seed int) {
	for i := range buf {
		buf[i] = byte((i+seed)*131 + 7)
	}
}

// TestHandoffCopyCounts pins the copy-count contract of the shm
// transport: above the handoff threshold a message costs zero staging
// copies and exactly one direct copy into the posted buffer; below it
// the staged path pays at least two (copy-in plus reassembly).
func TestHandoffCopyCounts(t *testing.T) {
	const thresh = 16384
	cases := []struct {
		name  string
		size  int
		// expectations on the job-wide aggregate
		stagedMax int64 // -1 = no bound
		stagedMin int64
		direct    int64
		handoffs  int64
	}{
		{name: "handoff", size: 65536, stagedMax: 0, stagedMin: 0, direct: 1, handoffs: 1},
		{name: "staged", size: 4096, stagedMax: -1, stagedMin: 2, direct: 1, handoffs: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var st Stats
			cfg := Config{RanksPerNode: 2, Fabric: "ofi", ShmEagerMax: thresh, Stats: &st}
			err := Run(2, cfg, func(p *Proc) error {
				w := p.World()
				if p.Rank() == 0 {
					buf := make([]byte, tc.size)
					fillPattern(buf, 3)
					r, err := w.Isend(buf, tc.size, Byte, 1, 9)
					if err != nil {
						return err
					}
					_, err = r.Wait()
					return err
				}
				got := make([]byte, tc.size)
				if _, err := w.Recv(got, tc.size, Byte, 0, 9); err != nil {
					return err
				}
				want := make([]byte, tc.size)
				fillPattern(want, 3)
				if !bytes.Equal(got, want) {
					return fmt.Errorf("payload corrupted")
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			agg := st.Aggregate()
			if tc.stagedMax >= 0 && agg.CopiesStaged.Msgs > tc.stagedMax {
				t.Errorf("CopiesStaged.Msgs = %d, want <= %d", agg.CopiesStaged.Msgs, tc.stagedMax)
			}
			if agg.CopiesStaged.Msgs < tc.stagedMin {
				t.Errorf("CopiesStaged.Msgs = %d, want >= %d", agg.CopiesStaged.Msgs, tc.stagedMin)
			}
			if agg.CopiesDirect.Msgs != tc.direct {
				t.Errorf("CopiesDirect.Msgs = %d, want %d", agg.CopiesDirect.Msgs, tc.direct)
			}
			if agg.ShmHandoff.Msgs != tc.handoffs {
				t.Errorf("ShmHandoff.Msgs = %d, want %d", agg.ShmHandoff.Msgs, tc.handoffs)
			}
			if tc.handoffs > 0 {
				if agg.ShmHandoff.Bytes != int64(tc.size) {
					t.Errorf("ShmHandoff.Bytes = %d, want %d", agg.ShmHandoff.Bytes, tc.size)
				}
				if agg.Lat.HandoffRTT.Count < tc.handoffs {
					t.Errorf("HandoffRTT.Count = %d, want >= %d", agg.Lat.HandoffRTT.Count, tc.handoffs)
				}
			}
		})
	}
}

// TestHandoffAllreduceInPlace runs the zero-copy two-level allreduce on
// a single 4-rank node: the intra-node reduce-scatter folds lent views
// in place, so the whole collective performs ZERO staging copies — the
// only copies in the job are the final fan-out landings in the posted
// result buffers.
func TestHandoffAllreduceInPlace(t *testing.T) {
	const (
		ranks = 4
		count = 4096 // longs; 32 KiB payload, 8 KiB per-member chunk
	)
	var st Stats
	cfg := Config{
		RanksPerNode:  ranks,
		Fabric:        "ofi",
		ShmEagerMax:   1024,
		CollAlgorithm: "two-level",
		Stats:         &st,
	}
	err := Run(ranks, cfg, func(p *Proc) error {
		w := p.World()
		rank := p.Rank()
		send := make([]byte, count*8)
		for i := 0; i < count; i++ {
			binary.LittleEndian.PutUint64(send[i*8:], uint64((rank+1)*(i+1)))
		}
		recv := make([]byte, count*8)
		r, err := w.Iallreduce(send, recv, count, Long, OpSum)
		if err != nil {
			return err
		}
		if _, err := r.Wait(); err != nil {
			return err
		}
		for i := 0; i < count; i++ {
			want := uint64(10 * (i + 1)) // (1+2+3+4)*(i+1)
			if got := binary.LittleEndian.Uint64(recv[i*8:]); got != want {
				return fmt.Errorf("rank %d element %d = %d, want %d", rank, i, got, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	agg := st.Aggregate()
	zc := agg.Coll[metrics.CollAllreduceTwoLevelZC]
	if zc.Calls != ranks {
		t.Errorf("two-level-zerocopy calls = %d, want %d", zc.Calls, ranks)
	}
	if agg.CopiesStaged.Msgs != 0 {
		t.Errorf("CopiesStaged.Msgs = %d, want 0 (in-place reduction)", agg.CopiesStaged.Msgs)
	}
	// Leader lands 3 chunks, fan-out lands 3 full results; the
	// reduce-scatter folds are not copies.
	if agg.CopiesDirect.Msgs != 6 {
		t.Errorf("CopiesDirect.Msgs = %d, want 6", agg.CopiesDirect.Msgs)
	}
	if agg.ShmHandoff.Msgs == 0 {
		t.Error("no handoffs recorded for the zero-copy allreduce")
	}
}

// TestHandoffSelectionFallsBack pins that the zero-copy algorithm is
// NOT selected below the handoff threshold or when handoff is
// disabled: the plain two-level algorithm runs instead.
func TestHandoffSelectionFallsBack(t *testing.T) {
	for _, tc := range []struct {
		name  string
		eager int
		count int
	}{
		{name: "below-threshold", eager: 1 << 20, count: 64},
		{name: "disabled", eager: 0, count: 4096},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var st Stats
			cfg := Config{
				RanksPerNode: 2, Fabric: "ofi",
				ShmEagerMax: tc.eager, CollAlgorithm: "two-level", Stats: &st,
			}
			err := Run(4, cfg, func(p *Proc) error {
				w := p.World()
				send := make([]byte, tc.count*8)
				recv := make([]byte, tc.count*8)
				for i := 0; i < tc.count; i++ {
					binary.LittleEndian.PutUint64(send[i*8:], uint64(p.Rank()+1))
				}
				r, err := w.Iallreduce(send, recv, tc.count, Long, OpSum)
				if err != nil {
					return err
				}
				if _, err := r.Wait(); err != nil {
					return err
				}
				if got := binary.LittleEndian.Uint64(recv); got != 10 {
					return fmt.Errorf("element 0 = %d, want 10", got)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			agg := st.Aggregate()
			if zc := agg.Coll[metrics.CollAllreduceTwoLevelZC]; zc.Calls != 0 {
				t.Errorf("two-level-zerocopy used %d times, want 0", zc.Calls)
			}
			if tl := agg.Coll[metrics.CollAllreduceTwoLevel]; tl.Calls != 4 {
				t.Errorf("two-level used %d times, want 4", tl.Calls)
			}
		})
	}
}

// TestHandoffProbeFullSize pins satellite semantics: Iprobe and Mprobe
// on a handoff message report the full payload size, not the one
// descriptor cell that carried it.
func TestHandoffProbeFullSize(t *testing.T) {
	const size = 32768
	run(t, 2, Config{RanksPerNode: 2, Fabric: "ofi", ShmEagerMax: 4096}, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			buf := make([]byte, size)
			fillPattern(buf, 11)
			r, err := w.Isend(buf, size, Byte, 1, 4)
			if err != nil {
				return err
			}
			_, err = r.Wait()
			return err
		}
		// Non-consuming probe first: full size, not one cell.
		for {
			st, ok, err := w.Iprobe(0, 4)
			if err != nil {
				return err
			}
			if ok {
				if st.GetCount(Byte) != size {
					return fmt.Errorf("Iprobe count %d, want %d", st.GetCount(Byte), size)
				}
				break
			}
		}
		m, err := w.Mprobe(0, 4)
		if err != nil {
			return err
		}
		if m.Size() != size || m.Count(Byte) != size {
			return fmt.Errorf("Mprobe size %d count %d, want %d", m.Size(), m.Count(Byte), size)
		}
		got := make([]byte, size)
		st, err := m.Recv(got, size, Byte)
		if err != nil {
			return err
		}
		if st.GetCount(Byte) != size {
			return fmt.Errorf("Mrecv count %d, want %d", st.GetCount(Byte), size)
		}
		want := make([]byte, size)
		fillPattern(want, 11)
		if !bytes.Equal(got, want) {
			return fmt.Errorf("mrecv payload corrupted")
		}
		return nil
	})
}

// TestWatchdogHandoffDeadlock drives the handoff-specific deadlock — a
// sender parked on a completion ack for a lent buffer whose receiver
// exited without receiving — and checks that the watchdog trips, the
// abort unparks the sender, and the diagnosis names the outstanding
// handoff in the wait graph and the flight recorder.
func TestWatchdogHandoffDeadlock(t *testing.T) {
	var diag bytes.Buffer
	var st Stats
	cfg := Config{
		RanksPerNode: 2, Fabric: "ofi",
		ShmEagerMax:      1024,
		Watchdog:         true,
		WatchdogInterval: 5 * time.Millisecond,
		DiagWriter:       &diag,
		Stats:            &st,
	}
	err := Run(2, cfg, func(p *Proc) error {
		if p.Rank() != 0 {
			return nil // exit without ever receiving
		}
		buf := make([]byte, 65536)
		r, err := p.World().Isend(buf, len(buf), Byte, 1, 0)
		if err != nil {
			return err
		}
		_, err = r.Wait() // parks awaiting the handoff ack
		return err
	})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	out := diag.String()
	if !bytes.Contains(diag.Bytes(), []byte("awaits handoff ack")) {
		t.Errorf("diagnosis missing handoff wait-graph line:\n%s", out)
	}
	if !bytes.Contains(diag.Bytes(), []byte("shm-handoff")) {
		t.Errorf("flight recorder missing shm-handoff event:\n%s", out)
	}
}

// handoffEcho runs a 2-rank on-node job sending one size-byte message
// under the given threshold and returns the received bytes.
func handoffEcho(size, eagerMax int) ([]byte, error) {
	got := make([]byte, size)
	err := Run(2, Config{RanksPerNode: 2, Fabric: "ofi", ShmEagerMax: eagerMax}, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			buf := make([]byte, size)
			fillPattern(buf, 29)
			r, err := w.Isend(buf, size, Byte, 1, 2)
			if err != nil {
				return err
			}
			_, err = r.Wait()
			return err
		}
		_, err := w.Recv(got, size, Byte, 0, 2)
		return err
	})
	return got, err
}

// FuzzHandoffStaged differentially fuzzes the staged and handoff
// paths: for any payload size and threshold, the bytes delivered must
// be identical whether the message rode staging cells or a lent view.
// Seeds straddle the threshold (below, exact, above) and ragged
// multi-cell sizes.
func FuzzHandoffStaged(f *testing.F) {
	f.Add(uint32(0), uint32(4096))
	f.Add(uint32(4095), uint32(4096))
	f.Add(uint32(4096), uint32(4096))
	f.Add(uint32(4097), uint32(4096))
	f.Add(uint32(3*4096+123), uint32(4096))
	f.Add(uint32(16384), uint32(1))
	f.Fuzz(func(t *testing.T, size, thresh uint32) {
		size %= 1 << 17
		thresh = thresh%(1<<16) + 1
		staged, err := handoffEcho(int(size), 0)
		if err != nil {
			t.Fatalf("staged run: %v", err)
		}
		handoff, err := handoffEcho(int(size), int(thresh))
		if err != nil {
			t.Fatalf("handoff run: %v", err)
		}
		if !bytes.Equal(staged, handoff) {
			t.Fatalf("size %d thresh %d: staged and handoff payloads differ", size, thresh)
		}
	})
}
