package gompi

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// run is the test harness: fail the test if any rank errors.
func run(t *testing.T, n int, cfg Config, body func(p *Proc) error) {
	t.Helper()
	if err := Run(n, cfg, body); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidatesConfig(t *testing.T) {
	if err := Run(2, Config{Fabric: "tcp"}, func(*Proc) error { return nil }); err == nil {
		t.Error("unknown fabric accepted")
	}
	if err := Run(2, Config{Build: "turbo"}, func(*Proc) error { return nil }); err == nil {
		t.Error("unknown build accepted")
	}
	if err := Run(2, Config{Device: "ch5"}, func(*Proc) error { return nil }); err == nil {
		t.Error("unknown device accepted")
	}
	if err := Run(0, Config{}, func(*Proc) error { return nil }); err == nil {
		t.Error("zero world accepted")
	}
}

func TestRankAndSize(t *testing.T) {
	seen := make([]bool, 5)
	run(t, 5, Config{}, func(p *Proc) error {
		if p.Size() != 5 {
			return fmt.Errorf("size %d", p.Size())
		}
		if p.World().Rank() != p.Rank() || p.World().Size() != 5 {
			return errors.New("world comm mismatch")
		}
		seen[p.Rank()] = true
		return nil
	})
	for r, ok := range seen {
		if !ok {
			t.Errorf("rank %d missing", r)
		}
	}
}

func TestRunPropagatesRankErrors(t *testing.T) {
	err := Run(3, Config{}, func(p *Proc) error {
		if p.Rank() == 1 {
			return errors.New("deliberate")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "rank 1") {
		t.Fatalf("err = %v", err)
	}
}

// devices and fabrics to sweep in cross-config tests.
var sweepConfigs = []Config{
	{Device: "ch4", Fabric: "ofi"},
	{Device: "ch4", Fabric: "ucx"},
	{Device: "ch4", Fabric: "inf"},
	{Device: "ch4", Fabric: "ofi", RanksPerNode: 2},
	{Device: "original", Fabric: "ofi"},
	{Device: "original", Fabric: "inf"},
}

func cfgName(cfg Config) string {
	return fmt.Sprintf("%s-%s-rpn%d", cfg.Device, cfg.Fabric, cfg.RanksPerNode)
}

func TestPingPongAcrossConfigs(t *testing.T) {
	for _, cfg := range sweepConfigs {
		t.Run(cfgName(cfg), func(t *testing.T) {
			run(t, 2, cfg, func(p *Proc) error {
				w := p.World()
				msg := []byte("ping-pong-payload")
				if p.Rank() == 0 {
					if err := w.Send(msg, len(msg), Byte, 1, 7); err != nil {
						return err
					}
					buf := make([]byte, len(msg))
					st, err := w.Recv(buf, len(buf), Byte, 1, 8)
					if err != nil {
						return err
					}
					if string(buf) != string(msg) || st.Source != 1 {
						return fmt.Errorf("pong %q st %+v", buf, st)
					}
					return nil
				}
				buf := make([]byte, len(msg))
				if _, err := w.Recv(buf, len(buf), Byte, 0, 7); err != nil {
					return err
				}
				return w.Send(buf, len(buf), Byte, 0, 8)
			})
		})
	}
}

// TestTable1Isend pins the headline Table 1 column: the default ch4
// build spends exactly 221 instructions on MPI_ISEND, split
// 74/6/23/59/59 across the five categories.
func TestTable1Isend(t *testing.T) {
	run(t, 2, Config{Device: "ch4", Fabric: "inf", Build: "default"}, func(p *Proc) error {
		w := p.World()
		if p.Rank() != 0 {
			buf := make([]byte, 8)
			_, err := w.Recv(buf, 8, Byte, 0, 0)
			return err
		}
		buf := make([]byte, 8)
		before := p.Counters()
		req, err := w.Isend(buf, 8, Byte, 1, 0)
		if err != nil {
			return err
		}
		d := p.Counters().Sub(before)
		if _, err := req.Wait(); err != nil {
			return err
		}
		want := Counters{ErrorCheck: 74, ThreadCheck: 6, Call: 23, Redundant: 59, Mandatory: 59, TotalInstr: 221}
		if d.ErrorCheck != want.ErrorCheck || d.ThreadCheck != want.ThreadCheck ||
			d.Call != want.Call || d.Redundant != want.Redundant ||
			d.Mandatory != want.Mandatory || d.TotalInstr != want.TotalInstr {
			return fmt.Errorf("Isend breakdown = %+v, want %+v", d, want)
		}
		return nil
	})
}

// TestTable1Put pins the MPI_PUT column: 72/14/25/62/44 (total 217; the
// paper's Table 1 rows sum to the same 217).
func TestTable1Put(t *testing.T) {
	run(t, 2, Config{Device: "ch4", Fabric: "inf", Build: "default"}, func(p *Proc) error {
		w := p.World()
		win, _, err := w.WinAllocate(64, 1)
		if err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			before := p.Counters()
			if err := win.Put([]byte{1}, 1, Byte, 1, 0); err != nil {
				return err
			}
			d := p.Counters().Sub(before)
			want := Counters{ErrorCheck: 72, ThreadCheck: 14, Call: 25, Redundant: 62, Mandatory: 44, TotalInstr: 217}
			if d.ErrorCheck != want.ErrorCheck || d.ThreadCheck != want.ThreadCheck ||
				d.Call != want.Call || d.Redundant != want.Redundant ||
				d.Mandatory != want.Mandatory || d.TotalInstr != want.TotalInstr {
				return fmt.Errorf("Put breakdown = %+v, want %+v", d, want)
			}
		}
		if err := win.Fence(); err != nil {
			return err
		}
		return win.Free()
	})
}

// TestFigure2Ladder pins the build ladder of Figure 2 for both devices:
// Original 253/1342, ch4 221/217, no-err 147/145, no-err-single
// 141/131, ipo 59/44 for Isend/Put. (The paper prints 215/143/129 for
// the Put intermediates; our Table 1 columns sum to slightly different
// intermediate totals with identical row values — see EXPERIMENTS.md.)
func TestFigure2Ladder(t *testing.T) {
	type point struct {
		device, build string
		isend, put    int64
	}
	points := []point{
		{"original", "default", 253, 1342},
		{"ch4", "default", 221, 217},
		{"ch4", "no-err", 147, 145},
		{"ch4", "no-err-single", 141, 131},
		{"ch4", "no-err-single-ipo", 59, 44},
	}
	for _, pt := range points {
		pt := pt
		t.Run(pt.device+"-"+pt.build, func(t *testing.T) {
			run(t, 2, Config{Device: DeviceKind(pt.device), Fabric: FabricInf, Build: BuildKind(pt.build)}, func(p *Proc) error {
				w := p.World()
				// Isend measurement.
				var isend int64
				if p.Rank() == 0 {
					before := p.Counters()
					req, err := w.Isend([]byte{1}, 1, Byte, 1, 0)
					if err != nil {
						return err
					}
					isend = p.Counters().Sub(before).TotalInstr
					if _, err := req.Wait(); err != nil {
						return err
					}
					if isend != pt.isend {
						return fmt.Errorf("isend = %d, want %d", isend, pt.isend)
					}
				} else {
					buf := make([]byte, 1)
					if _, err := w.Recv(buf, 1, Byte, 0, 0); err != nil {
						return err
					}
				}
				// Put measurement.
				win, _, err := w.WinAllocate(16, 1)
				if err != nil {
					return err
				}
				if err := win.Fence(); err != nil {
					return err
				}
				if p.Rank() == 0 {
					before := p.Counters()
					if err := win.Put([]byte{1}, 1, Byte, 1, 0); err != nil {
						return err
					}
					put := p.Counters().Sub(before).TotalInstr
					if put != pt.put {
						return fmt.Errorf("put = %d, want %d", put, pt.put)
					}
				}
				if err := win.Fence(); err != nil {
					return err
				}
				return win.Free()
			})
		})
	}
}

func TestThreadMultipleCharges(t *testing.T) {
	run(t, 2, Config{Fabric: "inf", Build: "default", ThreadMultiple: true}, func(p *Proc) error {
		w := p.World()
		if p.Rank() != 0 {
			buf := make([]byte, 1)
			_, err := w.Recv(buf, 1, Byte, 0, 0)
			return err
		}
		before := p.Counters()
		if err := w.Send([]byte{1}, 1, Byte, 1, 0); err != nil {
			return err
		}
		d := p.Counters().Sub(before)
		if d.ThreadCheck <= 6 {
			return fmt.Errorf("THREAD_MULTIPLE charged only %d thread instructions", d.ThreadCheck)
		}
		return nil
	})
}

func TestVirtualTimeAdvances(t *testing.T) {
	run(t, 2, Config{Fabric: "ofi"}, func(p *Proc) error {
		w := p.World()
		if p.VirtualCycles() < 0 {
			return errors.New("negative clock")
		}
		if p.Rank() == 0 {
			t0 := p.VirtualTime()
			for i := 0; i < 100; i++ {
				if err := w.IsendNoReq([]byte{1}, 1, Byte, 1, 0); err != nil {
					return err
				}
			}
			if p.VirtualTime() <= t0 {
				return errors.New("clock did not advance across sends")
			}
		} else {
			for i := 0; i < 100; i++ {
				buf := make([]byte, 1)
				if _, err := w.Recv(buf, 1, Byte, 0, 0); err != nil {
					return err
				}
			}
		}
		if p.ClockHz() != 2.2e9 {
			return fmt.Errorf("hz = %v", p.ClockHz())
		}
		return nil
	})
}

func TestChargeCompute(t *testing.T) {
	run(t, 1, Config{}, func(p *Proc) error {
		before := p.Counters()
		p.ChargeCompute(12345)
		d := p.Counters().Sub(before)
		if d.Compute != 12345 || d.TotalInstr != 0 {
			return fmt.Errorf("compute charge leaked: %+v", d)
		}
		return nil
	})
}

func TestErrorClasses(t *testing.T) {
	run(t, 1, Config{Build: "default"}, func(p *Proc) error {
		w := p.World()
		cases := []struct {
			err   error
			class ErrorClass
		}{
			{func() error { _, e := w.Isend(nil, 4, Byte, 0, 0); return e }(), ErrBuffer},
			{func() error { _, e := w.Isend([]byte{1}, -1, Byte, 0, 0); return e }(), ErrCount},
			{func() error { _, e := w.Isend([]byte{1}, 1, nil, 0, 0); return e }(), ErrType},
			{func() error { _, e := w.Isend([]byte{1}, 1, Byte, 5, 0); return e }(), ErrRank},
			{func() error { _, e := w.Isend([]byte{1}, 1, Byte, 0, -3); return e }(), ErrTag},
			{func() error { _, e := w.Irecv([]byte{1}, 1, Byte, AnySource, AnyTag); return e }(), ErrNone},
		}
		for i, c := range cases {
			if ClassOf(c.err) != c.class {
				return fmt.Errorf("case %d: class %v (err %v), want %v", i, ClassOf(c.err), c.err, c.class)
			}
		}
		// Drain the wildcard receive posted above with a self-send.
		if err := w.Send([]byte{1}, 1, Byte, 0, 1); err != nil {
			return err
		}
		return nil
	})
}

func TestUncommittedTypeRejected(t *testing.T) {
	run(t, 1, Config{Build: "default"}, func(p *Proc) error {
		v, err := TypeVector(2, 1, 2, Byte)
		if err != nil {
			return err
		}
		if _, err := p.World().Isend(make([]byte, 4), 1, v, 0, 0); ClassOf(err) != ErrType {
			return fmt.Errorf("uncommitted type: %v", err)
		}
		return nil
	})
}
