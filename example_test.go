package gompi_test

import (
	"fmt"
	"sort"
	"strings"

	"gompi"
)

// The smallest complete program: two ranks exchange a greeting.
func ExampleRun() {
	cfg := gompi.Config{Device: "ch4", Fabric: "ofi"}
	err := gompi.Run(2, cfg, func(p *gompi.Proc) error {
		world := p.World()
		if p.Rank() == 0 {
			return world.Send([]byte("hello"), 5, gompi.Byte, 1, 0)
		}
		buf := make([]byte, 5)
		st, err := world.Recv(buf, 5, gompi.Byte, 0, 0)
		if err != nil {
			return err
		}
		fmt.Printf("rank 1 received %q from rank %d\n", buf, st.Source)
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output: rank 1 received "hello" from rank 0
}

// Allreduce over float64 values with the typed convenience wrapper.
func ExampleComm_AllreduceFloat64() {
	var lines []string
	_ = gompi.Run(4, gompi.Config{Fabric: "inf"}, func(p *gompi.Proc) error {
		sums, err := p.World().AllreduceFloat64([]float64{float64(p.Rank())}, gompi.OpSum)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			lines = append(lines, fmt.Sprintf("sum of ranks = %v", sums[0]))
		}
		return nil
	})
	fmt.Println(strings.Join(lines, "\n"))
	// Output: sum of ranks = 6
}

// The Table 1 measurement: per-category instruction cost of one
// MPI_ISEND on the default build.
func ExampleProc_Counters() {
	_ = gompi.Run(2, gompi.Config{Fabric: "inf", Build: "default"}, func(p *gompi.Proc) error {
		w := p.World()
		if p.Rank() != 0 {
			buf := make([]byte, 1)
			_, err := w.Recv(buf, 1, gompi.Byte, 0, 0)
			return err
		}
		before := p.Counters()
		req, err := w.Isend([]byte{1}, 1, gompi.Byte, 1, 0)
		if err != nil {
			return err
		}
		d := p.Counters().Sub(before)
		if _, err := req.Wait(); err != nil {
			return err
		}
		fmt.Printf("error=%d thread=%d call=%d redundant=%d mandatory=%d total=%d\n",
			d.ErrorCheck, d.ThreadCheck, d.Call, d.Redundant, d.Mandatory, d.TotalInstr)
		return nil
	})
	// Output: error=74 thread=6 call=23 redundant=59 mandatory=59 total=221
}

// One-sided communication inside a fence epoch.
func ExampleWin_Put() {
	var got []int
	_ = gompi.Run(3, gompi.Config{Fabric: "inf"}, func(p *gompi.Proc) error {
		w := p.World()
		win, mem, err := w.WinAllocate(3, 1)
		if err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		// Everyone writes its rank into slot rank of rank 0's window.
		if err := win.Put([]byte{byte(p.Rank() + 1)}, 1, gompi.Byte, 0, p.Rank()); err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			for _, b := range mem {
				got = append(got, int(b))
			}
		}
		return win.Free()
	})
	sort.Ints(got)
	fmt.Println(got)
	// Output: [1 2 3]
}

// The fused all-opts path of Section 3.7: sixteen instructions from
// the application to the network on the inlined build.
func ExampleProc_IsendAllOpts() {
	_ = gompi.Run(2, gompi.Config{Fabric: "inf", Build: "no-err-single-ipo"}, func(p *gompi.Proc) error {
		w := p.World()
		if _, err := w.DupPredefined(gompi.Comm1); err != nil {
			return err
		}
		if p.Rank() == 0 {
			before := p.Counters()
			if err := p.IsendAllOpts(gompi.Comm1, []byte{42}, 1); err != nil {
				return err
			}
			fmt.Printf("all-opts path: %d instructions\n", p.Counters().Sub(before).TotalInstr)
			return p.PredefComm(gompi.Comm1).CommWaitall()
		}
		buf := make([]byte, 1)
		_, err := p.PredefComm(gompi.Comm1).RecvNoMatch(buf, 1, gompi.Byte)
		return err
	})
	// Output: all-opts path: 16 instructions
}
