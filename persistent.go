package gompi

import (
	"gompi/internal/core"
)

// Persistent requests (MPI_SEND_INIT / MPI_RECV_INIT / MPI_START):
// applications with fixed communication patterns bind the arguments
// once and restart the operation every iteration. This amortizes the
// argument validation of Table 1's error-checking row — validation
// happens at Init, not per Start — which is the standard-conformant
// cousin of the paper's per-call overhead analysis.

// PersistentOp is an initialized, restartable operation.
type PersistentOp struct {
	c     *Comm
	send  bool
	buf   []byte
	count int
	dt    *Datatype
	peer  int
	tag   int
	flags core.OpFlags

	active *Request
}

// SendInit binds a persistent send (MPI_SEND_INIT). Arguments are
// validated once, here.
func (c *Comm) SendInit(buf []byte, count int, dt *Datatype, dest, tag int) (*PersistentOp, error) {
	if c.p.bc.ErrorChecking {
		if err := c.p.checkSendArgs(buf, count, dt, dest, tag, c, false); err != nil {
			return nil, err
		}
	}
	return &PersistentOp{c: c, send: true, buf: buf, count: count, dt: dt, peer: dest, tag: tag}, nil
}

// RecvInit binds a persistent receive (MPI_RECV_INIT).
func (c *Comm) RecvInit(buf []byte, count int, dt *Datatype, src, tag int) (*PersistentOp, error) {
	if c.p.bc.ErrorChecking {
		if err := c.p.checkSendArgs(buf, count, dt, src, tag, c, true); err != nil {
			return nil, err
		}
	}
	return &PersistentOp{c: c, send: false, buf: buf, count: count, dt: dt, peer: src, tag: tag}, nil
}

// Start restarts the operation (MPI_START). The previous activation
// must have completed (Wait returned). No argument validation runs: the
// MPI layer charges only the call and thread-check costs, descending
// straight into the device — which is why persistent operations are
// cheaper per iteration than fresh Isends on the default build.
func (o *PersistentOp) Start() error {
	if o.active != nil {
		return errc(ErrRequest, "persistent operation already active")
	}
	p := o.c.p
	kind := traceRecvKind
	if o.send {
		kind = traceSendKind
	}
	if end := p.span(kind, o.peer, o.count*o.dt.Size()); end != nil {
		defer end()
	}
	p.chargeCall()
	unlock := p.chargeThread(o.c.c, false)
	defer unlock()
	var err error
	if o.send {
		r, e := p.dev.Isend(o.buf, o.count, o.dt, o.peer, o.tag, o.c.c, o.flags)
		if e == nil && r != nil {
			o.active = &Request{r: r, p: p}
		}
		err = e
	} else {
		r, e := p.dev.Irecv(o.buf, o.count, o.dt, o.peer, o.tag, o.c.c, o.flags)
		if e == nil {
			o.active = &Request{r: r, p: p}
		}
		err = e
	}
	if err != nil {
		return errc(ErrOther, "%v", err)
	}
	return nil
}

// Wait completes the current activation, leaving the operation ready
// for the next Start.
func (o *PersistentOp) Wait() (Status, error) {
	if o.active == nil {
		return Status{}, errc(ErrRequest, "persistent operation not active")
	}
	st, err := o.active.Wait()
	o.active = nil
	return st, err
}

// Test polls the current activation.
func (o *PersistentOp) Test() (Status, bool, error) {
	if o.active == nil {
		return Status{}, false, errc(ErrRequest, "persistent operation not active")
	}
	st, done, err := o.active.Test()
	if done {
		o.active = nil
	}
	return st, done, err
}

// StartAll restarts a set of persistent operations (MPI_STARTALL). It
// is generic over everything restartable — persistent point-to-point
// operations, persistent collectives, and partitioned operations all
// share the Start contract. The first error stops the sweep;
// already-started operations stay started, as in MPI.
func StartAll[T interface{ Start() error }](ops []T) error {
	for _, o := range ops {
		if err := o.Start(); err != nil {
			return err
		}
	}
	return nil
}
