package gompi

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// partitionedEcho transfers size bytes from rank 0 to rank 1 in
// `partitions` partitions (readied in a scattered order), repeated for
// `rounds` activations of the same operation, and returns the bytes
// the receiver saw in the final round.
func partitionedEcho(dev DeviceKind, size, partitions, rounds int) ([]byte, error) {
	if size%partitions != 0 {
		return nil, fmt.Errorf("size %d %% partitions %d != 0", size, partitions)
	}
	per := size / partitions
	var got []byte
	err := Run(2, Config{Device: dev, Fabric: "ofi"}, func(p *Proc) error {
		w := p.World()
		buf := make([]byte, size)
		if p.Rank() == 0 {
			op, err := w.PsendInit(buf, partitions, per, Byte, 1, 3)
			if err != nil {
				return err
			}
			for r := 0; r < rounds; r++ {
				for i := range buf {
					buf[i] = byte(i + r)
				}
				if err := op.Start(); err != nil {
					return err
				}
				// Ready partitions in a scattered order: odd ones
				// first, then the evens, so chunk completion order is
				// decoupled from partition order.
				for i := 1; i < partitions; i += 2 {
					if err := op.Pready(i); err != nil {
						return err
					}
				}
				for i := 0; i < partitions; i += 2 {
					if err := op.Pready(i); err != nil {
						return err
					}
				}
				if err := op.Wait(); err != nil {
					return err
				}
			}
			return nil
		}
		op, err := w.PrecvInit(buf, partitions, per, Byte, 0, 3)
		if err != nil {
			return err
		}
		for r := 0; r < rounds; r++ {
			if err := op.Start(); err != nil {
				return err
			}
			// Poll some partitions through Parrived (pumping progress),
			// then drain the rest in Wait.
			for i := 0; i < partitions; i += 2 {
				for {
					ok, err := op.Parrived(i)
					if err != nil {
						return err
					}
					if ok {
						break
					}
				}
			}
			if err := op.Wait(); err != nil {
				return err
			}
			if r == rounds-1 {
				got = append([]byte(nil), buf...)
			}
		}
		return nil
	})
	return got, err
}

// plainEcho is the reference: the same payload as one Isend/Irecv.
func plainEcho(dev DeviceKind, size int, round int) ([]byte, error) {
	var got []byte
	err := Run(2, Config{Device: dev, Fabric: "ofi"}, func(p *Proc) error {
		w := p.World()
		buf := make([]byte, size)
		if p.Rank() == 0 {
			for i := range buf {
				buf[i] = byte(i + round)
			}
			r, err := w.Isend(buf, size, Byte, 1, 3)
			if err != nil {
				return err
			}
			_, err = r.Wait()
			return err
		}
		r, err := w.Irecv(buf, size, Byte, 0, 3)
		if err != nil {
			return err
		}
		if _, err := r.Wait(); err != nil {
			return err
		}
		got = append([]byte(nil), buf...)
		return nil
	})
	return got, err
}

// TestPartitionedSendRecv covers both devices at sizes below, at, and
// above the chunk-aggregation bound, with restarts.
func TestPartitionedSendRecv(t *testing.T) {
	for _, dev := range []DeviceKind{DeviceCH4, DeviceOriginal} {
		for _, tc := range []struct{ size, partitions int }{
			{64, 1},    // single partition, single chunk
			{64, 8},    // all partitions aggregate into one chunk
			{8192, 8},  // chunks straddle the eager limit
			{32768, 4}, // every partition its own oversize chunk
		} {
			name := fmt.Sprintf("%s/%db/%dp", dev, tc.size, tc.partitions)
			t.Run(name, func(t *testing.T) {
				got, err := partitionedEcho(dev, tc.size, tc.partitions, 3)
				if err != nil {
					t.Fatal(err)
				}
				want := make([]byte, tc.size)
				for i := range want {
					want[i] = byte(i + 2) // final round r=2
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("payload mismatch (len %d)", tc.size)
				}
			})
		}
	}
}

// FuzzPartitionedVsPlain is the differential fuzz: a partitioned
// transfer must deliver bytes identical to a single plain Isend of the
// same payload, for any partition count and any size — ragged chunking,
// threshold-straddling partitions, and all.
func FuzzPartitionedVsPlain(f *testing.F) {
	f.Add(uint32(64), uint8(1))
	f.Add(uint32(64), uint8(7))
	f.Add(uint32(4096), uint8(4))
	f.Add(uint32(4097), uint8(17))
	f.Add(uint32(12288), uint8(3))
	f.Fuzz(func(t *testing.T, rawSize uint32, rawParts uint8) {
		partitions := int(rawParts)%32 + 1
		per := int(rawSize) % 4097
		if per == 0 {
			per = 1
		}
		size := per * partitions
		for _, dev := range []DeviceKind{DeviceCH4, DeviceOriginal} {
			part, err := partitionedEcho(dev, size, partitions, 1)
			if err != nil {
				t.Fatalf("%s partitioned size=%d parts=%d: %v", dev, size, partitions, err)
			}
			plain, err := plainEcho(dev, size, 0)
			if err != nil {
				t.Fatalf("%s plain size=%d: %v", dev, size, err)
			}
			if !bytes.Equal(part, plain) {
				t.Fatalf("%s size=%d parts=%d: partitioned and plain payloads differ",
					dev, size, partitions)
			}
		}
	})
}

// TestPartitionedConcurrentProducers drives Pready from one goroutine
// per partition on both devices — the declared-shape threading claim.
// Run under -race this checks the producer-side synchronization; the
// payload check makes it a correctness test too.
func TestPartitionedConcurrentProducers(t *testing.T) {
	const partitions = 16
	const per = 512
	const size = partitions * per
	for _, dev := range []DeviceKind{DeviceCH4, DeviceOriginal} {
		t.Run(string(dev), func(t *testing.T) {
			run(t, 2, Config{Device: dev, Fabric: "ofi", ThreadMultiple: true}, func(p *Proc) error {
				w := p.World()
				buf := make([]byte, size)
				if p.Rank() == 0 {
					op, err := w.PsendInit(buf, partitions, per, Byte, 1, 0)
					if err != nil {
						return err
					}
					for round := 0; round < 3; round++ {
						if err := op.Start(); err != nil {
							return err
						}
						var wg sync.WaitGroup
						errs := make([]error, partitions)
						for i := 0; i < partitions; i++ {
							wg.Add(1)
							go func(i int) {
								defer wg.Done()
								for j := i * per; j < (i+1)*per; j++ {
									buf[j] = byte(j + round)
								}
								errs[i] = op.Pready(i)
							}(i)
						}
						wg.Wait()
						for _, e := range errs {
							if e != nil {
								return e
							}
						}
						if err := op.Wait(); err != nil {
							return err
						}
					}
					return nil
				}
				op, err := w.PrecvInit(buf, partitions, per, Byte, 0, 0)
				if err != nil {
					return err
				}
				for round := 0; round < 3; round++ {
					if err := op.Start(); err != nil {
						return err
					}
					if err := op.Wait(); err != nil {
						return err
					}
					for j := range buf {
						if buf[j] != byte(j+round) {
							return fmt.Errorf("round %d: byte %d = %d, want %d",
								round, j, buf[j], byte(j+round))
						}
					}
				}
				return nil
			})
		})
	}
}

// TestPartitionedStateValidation checks the MPI state machine: Start
// on an active op, Pready outside the window, Pready on a receive,
// double Pready, Wait with unready partitions, and init-time errors.
func TestPartitionedStateValidation(t *testing.T) {
	run(t, 2, Config{Fabric: "ofi"}, func(p *Proc) error {
		w := p.World()
		buf := make([]byte, 64)
		if p.Rank() == 1 {
			op, err := w.PrecvInit(buf, 4, 16, Byte, 0, 1)
			if err != nil {
				return err
			}
			if err := op.Pready(0); err == nil {
				return fmt.Errorf("Pready accepted on a receive op")
			}
			if err := op.Start(); err != nil {
				return err
			}
			if err := op.Start(); err == nil {
				return fmt.Errorf("double Start accepted")
			}
			return op.Wait()
		}
		if _, err := w.PsendInit(buf, 0, 16, Byte, 1, 1); err == nil {
			return fmt.Errorf("0 partitions accepted")
		}
		if _, err := w.PsendInit(buf, 4, 16, Byte, 1, 1<<12); err == nil {
			return fmt.Errorf("oversized tag accepted")
		}
		op, err := w.PsendInit(buf, 4, 16, Byte, 1, 1)
		if err != nil {
			return err
		}
		if err := op.Pready(0); err == nil {
			return fmt.Errorf("Pready accepted before Start")
		}
		if err := op.Wait(); err == nil {
			return fmt.Errorf("Wait accepted before Start")
		}
		if err := op.Start(); err != nil {
			return err
		}
		if err := op.Start(); err == nil {
			return fmt.Errorf("double Start accepted")
		}
		if err := op.Pready(4); err == nil {
			return fmt.Errorf("out-of-range partition accepted")
		}
		if err := op.Wait(); err == nil {
			return fmt.Errorf("Wait with unready partitions accepted")
		}
		if err := op.PreadyRange(0, 4); err != nil {
			return err
		}
		if err := op.Pready(2); err == nil {
			return fmt.Errorf("double Pready accepted")
		}
		return op.Wait()
	})
}

// TestPartitionedProcNull: both sides bound to PROC_NULL transfer
// nothing and complete immediately, Parrived included.
func TestPartitionedProcNull(t *testing.T) {
	run(t, 1, Config{Fabric: "ofi"}, func(p *Proc) error {
		w := p.World()
		buf := make([]byte, 16)
		s, err := w.PsendInit(buf, 4, 4, Byte, ProcNull, 0)
		if err != nil {
			return err
		}
		r, err := w.PrecvInit(buf, 4, 4, Byte, ProcNull, 0)
		if err != nil {
			return err
		}
		for _, op := range []*PartitionedOp{s, r} {
			if err := op.Start(); err != nil {
				return err
			}
		}
		if err := s.PreadyRange(0, 4); err != nil {
			return err
		}
		ok, err := r.Parrived(2)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("ProcNull partition not immediately arrived")
		}
		for _, op := range []*PartitionedOp{s, r} {
			if err := op.Wait(); err != nil {
				return err
			}
		}
		return nil
	})
}

// TestStartAllMixedKinds restarts a heterogeneous set — persistent
// pt2pt, partitioned, and a persistent collective — through the one
// generic StartAll (MPI_STARTALL over mixed request kinds).
func TestStartAllMixedKinds(t *testing.T) {
	run(t, 2, Config{Fabric: "ofi"}, func(p *Proc) error {
		w := p.World()
		pbuf := make([]byte, 32)
		abuf := make([]byte, 8)
		ares := make([]byte, 8)
		coll, err := w.AllreduceInit(abuf, ares, 1, Long, OpSum)
		if err != nil {
			return err
		}
		var part *PartitionedOp
		var pers *PersistentOp
		if p.Rank() == 0 {
			if part, err = w.PsendInit(pbuf, 4, 8, Byte, 1, 0); err != nil {
				return err
			}
			if pers, err = w.SendInit(abuf[:1], 1, Byte, 1, 9); err != nil {
				return err
			}
		} else {
			if part, err = w.PrecvInit(pbuf, 4, 8, Byte, 0, 0); err != nil {
				return err
			}
			if pers, err = w.RecvInit(abuf[:1], 1, Byte, 0, 9); err != nil {
				return err
			}
		}
		for round := 0; round < 2; round++ {
			ops := []interface{ Start() error }{part, coll, pers}
			if err := StartAll(ops); err != nil {
				return err
			}
			// Double-start through the same generic path must fail for
			// every kind.
			if err := StartAll(ops); err == nil {
				return fmt.Errorf("round %d: StartAll restarted active ops", round)
			}
			if p.Rank() == 0 {
				if err := part.PreadyRange(0, 4); err != nil {
					return err
				}
			}
			if err := part.Wait(); err != nil {
				return err
			}
			if err := coll.Wait(); err != nil {
				return err
			}
			if _, err := pers.Wait(); err != nil {
				return err
			}
		}
		return nil
	})
}

// TestPartitionedWatchdogEdge parks rank 1 in a partitioned Wait whose
// sender never readies anything, and checks the deadlock diagnosis
// labels the stalled edge with the partitioned tag class.
func TestPartitionedWatchdogEdge(t *testing.T) {
	var diag bytes.Buffer
	cfg := Config{
		Device: DeviceCH4, Fabric: "ofi",
		Watchdog:         true,
		WatchdogInterval: 5 * time.Millisecond,
		DiagWriter:       &diag,
	}
	err := Run(2, cfg, func(p *Proc) error {
		w := p.World()
		buf := make([]byte, 64)
		if p.Rank() == 0 {
			// The sender initializes but never calls Pready: the
			// declared-shape deadlock.
			op, err := w.PsendInit(buf, 4, 16, Byte, 1, 2)
			if err != nil {
				return err
			}
			return op.Start()
		}
		op, err := w.PrecvInit(buf, 4, 16, Byte, 0, 2)
		if err != nil {
			return err
		}
		if err := op.Start(); err != nil {
			return err
		}
		return op.Wait()
	})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	if !bytes.Contains(diag.Bytes(), []byte("[partitioned]")) {
		t.Errorf("diagnosis missing [partitioned] edge label:\n%s", diag.String())
	}
}
