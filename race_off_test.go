//go:build !race

package gompi

// raceEnabled reports that this test binary was built with -race.
const raceEnabled = false
