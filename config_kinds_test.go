package gompi

import (
	"fmt"
	"testing"
)

// TestStringConfigStillWorks is the deprecation guarantee of the typed
// Config migration: untyped string literals keep compiling and resolve
// to the same devices, fabrics, and builds as the typed constants.
// This test is the compatibility contract — do not "fix" the string
// literals below to constants.
func TestStringConfigStillWorks(t *testing.T) {
	legacy := []Config{
		{Device: "ch4", Fabric: "ofi", Build: "default"},
		{Device: "original", Fabric: "ucx", Build: "no-err"},
		{Device: "ch4", Fabric: "inf", Build: "no-err-single-ipo"},
		{Device: "ch4", Fabric: "bgq", Build: "no-err-single"},
	}
	typed := []Config{
		{Device: DeviceCH4, Fabric: FabricOFI, Build: BuildDefault},
		{Device: DeviceOriginal, Fabric: FabricUCX, Build: BuildNoErr},
		{Device: DeviceCH4, Fabric: FabricInf, Build: BuildNoErrSingleIPO},
		{Device: DeviceCH4, Fabric: FabricBGQ, Build: BuildNoErrSingle},
	}
	for i := range legacy {
		if legacy[i] != typed[i] {
			t.Fatalf("case %d: string config %+v != typed config %+v", i, legacy[i], typed[i])
		}
		run(t, 2, legacy[i], func(p *Proc) error {
			w := p.World()
			if p.Rank() == 0 {
				return w.Send([]byte{9}, 1, Byte, 1, 0)
			}
			buf := make([]byte, 1)
			if _, err := w.Recv(buf, 1, Byte, 0, 0); err != nil {
				return err
			}
			if buf[0] != 9 {
				return fmt.Errorf("delivered %d", buf[0])
			}
			return nil
		})
	}
}

// TestUnknownConfigKindsError pins the validation errors for bad names,
// typed or not.
func TestUnknownConfigKindsError(t *testing.T) {
	cases := []Config{
		{Device: "ch5"},
		{Fabric: "ethernet"},
		{Build: "release"},
	}
	for i, cfg := range cases {
		if err := Run(2, cfg, func(p *Proc) error { return nil }); err == nil {
			t.Fatalf("case %d: Run accepted invalid config %+v", i, cfg)
		}
	}
}

// TestZeroConfigDefaults pins the documented defaults: ch4 on the
// infinite network, default build.
func TestZeroConfigDefaults(t *testing.T) {
	run(t, 1, Config{}, func(p *Proc) error {
		if p.ClockHz() != 2.2e9 {
			return fmt.Errorf("hz %g", p.ClockHz())
		}
		return nil
	})
}
