package gompi_test

import (
	"testing"
	"time"

	"gompi"
)

// Allocation-regression guards for the steady-state hot paths: the
// 1-byte eager Isend and the 1-byte Put must not allocate once the
// endpoint pools and free lists are warm, so a future PR that
// reintroduces a per-message allocation fails here rather than only
// showing up in benchmark numbers.
//
// testing.AllocsPerRun counts mallocs process-wide, so each guard parks
// the peer rank on an operation that cannot complete until the
// measurement is over, leaving the measuring rank the only goroutine
// doing work.

// TestIsendSteadyStateAllocs measures the sender-side eager path. The
// warm-up phase pushes `warm` messages through the unexpected queue so
// the receive side returns that many payload buffers, message
// envelopes, and match nodes to the free lists; the measured sends then
// recycle them.
func TestIsendSteadyStateAllocs(t *testing.T) {
	const warm = 300
	const runs = 200
	var allocs float64
	err := gompi.Run(2, gompi.Config{Fabric: "inf", Build: "no-err-single-ipo"}, func(p *gompi.Proc) error {
		w := p.World()
		buf := []byte{1}
		if p.Rank() == 0 {
			for i := 0; i < warm; i++ {
				if err := w.IsendNoReq(buf, 1, gompi.Byte, 1, 0); err != nil {
					return err
				}
			}
			// Wait for the receiver to drain, then let it park.
			ack := make([]byte, 1)
			if _, err := w.Recv(ack, 1, gompi.Byte, 1, 2); err != nil {
				return err
			}
			time.Sleep(20 * time.Millisecond)
			allocs = testing.AllocsPerRun(runs, func() {
				if err := w.IsendNoReq(buf, 1, gompi.Byte, 1, 0); err != nil {
					t.Error(err)
				}
			})
			// Release the parked receiver and let it drain the
			// measured messages.
			if err := w.IsendNoReq(buf, 1, gompi.Byte, 1, 1); err != nil {
				return err
			}
			return w.CommWaitall()
		}
		rbuf := make([]byte, 1)
		for i := 0; i < warm; i++ {
			if _, err := w.Recv(rbuf, 1, gompi.Byte, 0, 0); err != nil {
				return err
			}
		}
		if err := w.Send([]byte{1}, 1, gompi.Byte, 0, 2); err != nil {
			return err
		}
		if _, err := w.Recv(rbuf, 1, gompi.Byte, 0, 1); err != nil {
			return err
		}
		for i := 0; i < runs+1; i++ {
			if _, err := w.Recv(rbuf, 1, gompi.Byte, 0, 0); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs > 0 {
		t.Errorf("steady-state 1-byte Isend allocates %.1f objects/op, want 0", allocs)
	}
}

// TestPutSteadyStateAllocs measures the one-sided fast path inside a
// fence epoch while the target rank waits in the closing fence.
func TestPutSteadyStateAllocs(t *testing.T) {
	var allocs float64
	err := gompi.Run(2, gompi.Config{Fabric: "inf", Build: "no-err-single-ipo"}, func(p *gompi.Proc) error {
		w := p.World()
		win, _, err := w.WinAllocate(64, 1)
		if err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			data := []byte{9}
			if err := win.Put(data, 1, gompi.Byte, 1, 0); err != nil {
				return err
			}
			time.Sleep(20 * time.Millisecond) // let rank 1 park in its fence
			allocs = testing.AllocsPerRun(200, func() {
				if err := win.Put(data, 1, gompi.Byte, 1, 0); err != nil {
					t.Error(err)
				}
			})
		}
		if err := win.Fence(); err != nil {
			return err
		}
		return win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs > 0 {
		t.Errorf("steady-state 1-byte Put allocates %.1f objects/op, want 0", allocs)
	}
}

// TestFlushEmptyEpochAllocs guards the flush fast path: a Flush inside
// a passive epoch with nothing outstanding must not allocate — it is
// the polling primitive flush-based applications sit in.
func TestFlushEmptyEpochAllocs(t *testing.T) {
	var allocs float64
	err := gompi.Run(2, gompi.Config{Fabric: "inf", Build: "no-err-single-ipo"}, func(p *gompi.Proc) error {
		w := p.World()
		win, _, err := w.WinAllocate(8, 1)
		if err != nil {
			return err
		}
		if err := win.LockAll(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			time.Sleep(20 * time.Millisecond) // let rank 1 park in its barrier below
			allocs = testing.AllocsPerRun(200, func() {
				if err := win.Flush(1); err != nil {
					t.Error(err)
				}
			})
		}
		if err := win.UnlockAll(); err != nil {
			return err
		}
		if err := w.Barrier(); err != nil {
			return err
		}
		return win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs > 0 {
		t.Errorf("Flush on an empty epoch allocates %.1f objects/op, want 0", allocs)
	}
}

// TestShmPutSteadyStateAllocs guards the zero-copy intra-node Put: a
// small put on an shm-backed window inside a LockAll epoch must stay
// allocation-free (it is one memcpy plus accounting).
func TestShmPutSteadyStateAllocs(t *testing.T) {
	var allocs float64
	err := gompi.Run(2, gompi.Config{Fabric: "inf", Build: "no-err-single-ipo", RanksPerNode: 2}, func(p *gompi.Proc) error {
		w := p.World()
		win, _, err := w.WinAllocate(64, 1)
		if err != nil {
			return err
		}
		if err := win.LockAll(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			data := []byte{9}
			if err := win.Put(data, 1, gompi.Byte, 1, 0); err != nil {
				return err
			}
			time.Sleep(20 * time.Millisecond)
			allocs = testing.AllocsPerRun(200, func() {
				if err := win.Put(data, 1, gompi.Byte, 1, 0); err != nil {
					t.Error(err)
				}
			})
		}
		if err := win.UnlockAll(); err != nil {
			return err
		}
		if err := w.Barrier(); err != nil {
			return err
		}
		return win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
	if allocs > 0 {
		t.Errorf("steady-state 1-byte shm Put allocates %.1f objects/op, want 0", allocs)
	}
}
