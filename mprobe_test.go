package gompi

import (
	"bytes"
	"fmt"
	"testing"
)

func TestMprobeMrecvBasic(t *testing.T) {
	for _, dev := range []string{"ch4", "original"} {
		dev := dev
		t.Run(dev, func(t *testing.T) {
			run(t, 2, Config{Device: dev, Fabric: "ofi"}, func(p *Proc) error {
				w := p.World()
				if p.Rank() == 0 {
					return w.Send([]byte("matched!"), 8, Byte, 1, 3)
				}
				m, err := w.Mprobe(0, 3)
				if err != nil {
					return err
				}
				if m.Count() != 8 {
					return fmt.Errorf("count %d", m.Count())
				}
				buf := make([]byte, m.Count())
				st, err := m.Recv(buf, m.Count(), Byte)
				if err != nil {
					return err
				}
				if string(buf) != "matched!" || st.Source != 0 || st.Tag != 3 {
					return fmt.Errorf("mrecv %q %+v", buf, st)
				}
				// Double receive must fail.
				if _, err := m.Recv(buf, m.Count(), Byte); ClassOf(err) != ErrRequest {
					return fmt.Errorf("double mrecv: %v", err)
				}
				return nil
			})
		})
	}
}

func TestMprobeExtractsFromMatching(t *testing.T) {
	// After Improbe, the message must NOT match a posted receive; the
	// second message must.
	run(t, 2, Config{Fabric: "inf"}, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			if err := w.Send([]byte{1}, 1, Byte, 1, 5); err != nil {
				return err
			}
			return w.Send([]byte{2}, 1, Byte, 1, 5)
		}
		// Extract the first message.
		m, err := w.Mprobe(0, 5)
		if err != nil {
			return err
		}
		// A normal receive now gets the SECOND message.
		buf := make([]byte, 1)
		if _, err := w.Recv(buf, 1, Byte, 0, 5); err != nil {
			return err
		}
		if buf[0] != 2 {
			return fmt.Errorf("recv after extraction got %d, want 2", buf[0])
		}
		// The extracted handle still delivers the first.
		mb := make([]byte, 1)
		if _, err := m.Recv(mb, 1, Byte); err != nil {
			return err
		}
		if mb[0] != 1 {
			return fmt.Errorf("mrecv got %d, want 1", mb[0])
		}
		return nil
	})
}

func TestImprobeMiss(t *testing.T) {
	run(t, 1, Config{}, func(p *Proc) error {
		if m, ok, err := p.World().Improbe(0, 9); err != nil || ok || m != nil {
			return fmt.Errorf("improbe on empty = (%v,%v,%v)", m, ok, err)
		}
		return nil
	})
}

func TestMprobeWildcards(t *testing.T) {
	run(t, 3, Config{Fabric: "ofi"}, func(p *Proc) error {
		w := p.World()
		if p.Rank() != 0 {
			return w.Send([]byte{byte(p.Rank())}, 1, Byte, 0, 40+p.Rank())
		}
		seen := map[int]bool{}
		for i := 0; i < 2; i++ {
			m, err := w.Mprobe(AnySource, AnyTag)
			if err != nil {
				return err
			}
			buf := make([]byte, 1)
			st, err := m.Recv(buf, 1, Byte)
			if err != nil {
				return err
			}
			if st.Tag != 40+st.Source || buf[0] != byte(st.Source) {
				return fmt.Errorf("wildcard mprobe %+v %v", st, buf)
			}
			seen[st.Source] = true
		}
		if len(seen) != 2 {
			return fmt.Errorf("sources %v", seen)
		}
		return nil
	})
}

func TestMrecvDerivedType(t *testing.T) {
	vec, err := TypeVector(2, 1, 2, Byte)
	if err != nil {
		t.Fatal(err)
	}
	if err := vec.Commit(); err != nil {
		t.Fatal(err)
	}
	run(t, 2, Config{}, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			return w.Send([]byte{'a', 'b'}, 2, Byte, 1, 0)
		}
		m, err := w.Mprobe(0, 0)
		if err != nil {
			return err
		}
		dst := bytes.Repeat([]byte{'.'}, 4)
		if _, err := m.Recv(dst, 1, vec); err != nil {
			return err
		}
		if string(dst) != "a.b." {
			return fmt.Errorf("derived mrecv %q", dst)
		}
		return nil
	})
}

func TestMrecvTruncation(t *testing.T) {
	run(t, 2, Config{}, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			return w.Send(make([]byte, 8), 8, Byte, 1, 0)
		}
		m, err := w.Mprobe(0, 0)
		if err != nil {
			return err
		}
		buf := make([]byte, 4)
		if _, err := m.Recv(buf, 4, Byte); ClassOf(err) != ErrTruncate {
			return fmt.Errorf("truncated mrecv: %v", err)
		}
		return nil
	})
}
