package gompi

import (
	"bytes"
	"fmt"
	"testing"
)

func TestMprobeMrecvBasic(t *testing.T) {
	for _, dev := range []DeviceKind{DeviceCH4, DeviceOriginal} {
		dev := dev
		t.Run(string(dev), func(t *testing.T) {
			run(t, 2, Config{Device: dev, Fabric: "ofi"}, func(p *Proc) error {
				w := p.World()
				if p.Rank() == 0 {
					return w.Send([]byte("matched!"), 8, Byte, 1, 3)
				}
				m, err := w.Mprobe(0, 3)
				if err != nil {
					return err
				}
				if m.Count(Byte) != 8 || m.Size() != 8 {
					return fmt.Errorf("count %d size %d", m.Count(Byte), m.Size())
				}
				buf := make([]byte, m.Size())
				st, err := m.Recv(buf, m.Count(Byte), Byte)
				if err != nil {
					return err
				}
				if string(buf) != "matched!" || st.Source != 0 || st.Tag != 3 {
					return fmt.Errorf("mrecv %q %+v", buf, st)
				}
				// Double receive must fail.
				if _, err := m.Recv(buf, m.Count(Byte), Byte); ClassOf(err) != ErrRequest {
					return fmt.Errorf("double mrecv: %v", err)
				}
				return nil
			})
		})
	}
}

func TestMprobeExtractsFromMatching(t *testing.T) {
	// After Improbe, the message must NOT match a posted receive; the
	// second message must.
	run(t, 2, Config{Fabric: "inf"}, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			if err := w.Send([]byte{1}, 1, Byte, 1, 5); err != nil {
				return err
			}
			return w.Send([]byte{2}, 1, Byte, 1, 5)
		}
		// Extract the first message.
		m, err := w.Mprobe(0, 5)
		if err != nil {
			return err
		}
		// A normal receive now gets the SECOND message.
		buf := make([]byte, 1)
		if _, err := w.Recv(buf, 1, Byte, 0, 5); err != nil {
			return err
		}
		if buf[0] != 2 {
			return fmt.Errorf("recv after extraction got %d, want 2", buf[0])
		}
		// The extracted handle still delivers the first.
		mb := make([]byte, 1)
		if _, err := m.Recv(mb, 1, Byte); err != nil {
			return err
		}
		if mb[0] != 1 {
			return fmt.Errorf("mrecv got %d, want 1", mb[0])
		}
		return nil
	})
}

func TestImprobeMiss(t *testing.T) {
	run(t, 1, Config{}, func(p *Proc) error {
		if m, ok, err := p.World().Improbe(0, 9); err != nil || ok || m != nil {
			return fmt.Errorf("improbe on empty = (%v,%v,%v)", m, ok, err)
		}
		return nil
	})
}

func TestMprobeWildcards(t *testing.T) {
	run(t, 3, Config{Fabric: "ofi"}, func(p *Proc) error {
		w := p.World()
		if p.Rank() != 0 {
			return w.Send([]byte{byte(p.Rank())}, 1, Byte, 0, 40+p.Rank())
		}
		seen := map[int]bool{}
		for i := 0; i < 2; i++ {
			m, err := w.Mprobe(AnySource, AnyTag)
			if err != nil {
				return err
			}
			buf := make([]byte, 1)
			st, err := m.Recv(buf, 1, Byte)
			if err != nil {
				return err
			}
			if st.Tag != 40+st.Source || buf[0] != byte(st.Source) {
				return fmt.Errorf("wildcard mprobe %+v %v", st, buf)
			}
			seen[st.Source] = true
		}
		if len(seen) != 2 {
			return fmt.Errorf("sources %v", seen)
		}
		return nil
	})
}

func TestMrecvDerivedType(t *testing.T) {
	vec, err := TypeVector(2, 1, 2, Byte)
	if err != nil {
		t.Fatal(err)
	}
	if err := vec.Commit(); err != nil {
		t.Fatal(err)
	}
	run(t, 2, Config{}, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			return w.Send([]byte{'a', 'b'}, 2, Byte, 1, 0)
		}
		m, err := w.Mprobe(0, 0)
		if err != nil {
			return err
		}
		dst := bytes.Repeat([]byte{'.'}, 4)
		if _, err := m.Recv(dst, 1, vec); err != nil {
			return err
		}
		if string(dst) != "a.b." {
			return fmt.Errorf("derived mrecv %q", dst)
		}
		return nil
	})
}

func TestMrecvTruncation(t *testing.T) {
	run(t, 2, Config{}, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			return w.Send(make([]byte, 8), 8, Byte, 1, 0)
		}
		m, err := w.Mprobe(0, 0)
		if err != nil {
			return err
		}
		buf := make([]byte, 4)
		if _, err := m.Recv(buf, 4, Byte); ClassOf(err) != ErrTruncate {
			return fmt.Errorf("truncated mrecv: %v", err)
		}
		return nil
	})
}

// TestMessageCountDatatypes pins the satellite fix: Message.Count is
// datatype-aware and agrees with Status.GetCount — it reports element
// counts, not raw bytes.
func TestMessageCountDatatypes(t *testing.T) {
	run(t, 2, Config{}, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			// 3 Int32-sized elements (12 bytes), then a 5-byte payload
			// that is not a whole number of Ints, then a zero-byte one.
			if err := w.Send(make([]byte, 12), 12, Byte, 1, 0); err != nil {
				return err
			}
			if err := w.Send(make([]byte, 5), 5, Byte, 1, 1); err != nil {
				return err
			}
			return w.Send(nil, 0, Byte, 1, 2)
		}
		m, err := w.Mprobe(0, 0)
		if err != nil {
			return err
		}
		if m.Size() != 12 || m.Count(Byte) != 12 || m.Count(Int) != 12/Int.Size() {
			return fmt.Errorf("whole payload: size=%d bytes=%d ints=%d", m.Size(), m.Count(Byte), m.Count(Int))
		}
		if _, err := m.Recv(make([]byte, 12), 12, Byte); err != nil {
			return err
		}

		m, err = w.Mprobe(0, 1)
		if err != nil {
			return err
		}
		// 5 bytes is not a whole number of Ints: MPI_UNDEFINED.
		if m.Count(Int) != UndefinedIndex || m.Count(Byte) != 5 {
			return fmt.Errorf("ragged payload: ints=%d bytes=%d", m.Count(Int), m.Count(Byte))
		}
		if _, err := m.Recv(make([]byte, 5), 5, Byte); err != nil {
			return err
		}

		m, err = w.Mprobe(0, 2)
		if err != nil {
			return err
		}
		// A zero-byte message counts zero elements of any type, nil
		// included (matching Status.GetCount's convention).
		if m.Size() != 0 || m.Count(Int) != 0 || m.Count(nil) != 0 {
			return fmt.Errorf("empty payload: size=%d ints=%d nil=%d", m.Size(), m.Count(Int), m.Count(nil))
		}
		_, err = m.Recv(nil, 0, Byte)
		return err
	})
}

// TestStatusGetCountTruncation pins GetCount on a truncated receive:
// the status carries the delivered byte count, so element counts stay
// consistent with what landed in the buffer.
func TestStatusGetCountTruncation(t *testing.T) {
	run(t, 2, Config{}, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			return w.Send(make([]byte, 12), 12, Byte, 1, 0)
		}
		st, err := w.Recv(make([]byte, 12), 12, Byte, 0, 0)
		if err != nil {
			return err
		}
		if st.GetCount(Int) != 12/Int.Size() || st.GetCount(Byte) != 12 {
			return fmt.Errorf("counts: ints=%d bytes=%d", st.GetCount(Int), st.GetCount(Byte))
		}
		return nil
	})
}
