package gompi

import (
	"fmt"
	"testing"
)

func TestDimsCreatePublic(t *testing.T) {
	dims, err := DimsCreate(12, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dims[0]*dims[1] != 12 {
		t.Errorf("dims %v", dims)
	}
	if _, err := DimsCreate(0, 2, nil); ClassOf(err) != ErrArg {
		t.Error("bad nnodes accepted")
	}
}

func TestCartCreateValidation(t *testing.T) {
	run(t, 4, Config{}, func(p *Proc) error {
		w := p.World()
		if _, err := w.CartCreate([]int{3, 2}, []bool{false, false}); ClassOf(err) != ErrArg {
			return fmt.Errorf("oversized grid accepted")
		}
		cart, err := w.CartCreate([]int{2, 2}, []bool{false, true})
		if err != nil {
			return err
		}
		if cart.Size() != 4 || len(cart.Dims()) != 2 {
			return fmt.Errorf("cart comm wrong: %v", cart.Dims())
		}
		return nil
	})
}

func TestCartCoordsAndShift(t *testing.T) {
	run(t, 6, Config{}, func(p *Proc) error {
		w := p.World()
		cart, err := w.CartCreate([]int{3, 2}, []bool{true, false})
		if err != nil {
			return err
		}
		coords := cart.Coords()
		back, err := cart.CartRank(coords)
		if err != nil || back != p.Rank() {
			return fmt.Errorf("coords round trip: %v -> %d", coords, back)
		}
		// Dim 0 is periodic: no ProcNull.
		src, dst, err := cart.Shift(0, 1)
		if err != nil || src == ProcNull || dst == ProcNull {
			return fmt.Errorf("periodic shift = (%d,%d,%v)", src, dst, err)
		}
		// Dim 1 is not: edges see ProcNull.
		src, dst, err = cart.Shift(1, 1)
		if err != nil {
			return err
		}
		if coords[1] == 0 && src != ProcNull {
			return fmt.Errorf("low edge src = %d", src)
		}
		if coords[1] == 1 && dst != ProcNull {
			return fmt.Errorf("high edge dst = %d", dst)
		}
		return nil
	})
}

func TestCartShiftExchangeWithProcNull(t *testing.T) {
	// The canonical stencil pattern: Sendrecv along each dimension with
	// the shift's (src,dst), relying on PROC_NULL at the edges.
	run(t, 4, Config{Fabric: "ofi"}, func(p *Proc) error {
		cart, err := p.World().CartCreate([]int{4}, []bool{false})
		if err != nil {
			return err
		}
		src, dst, err := cart.Shift(0, 1)
		if err != nil {
			return err
		}
		out := []byte{byte(p.Rank())}
		in := []byte{0xFF}
		if _, err := cart.Sendrecv(out, 1, Byte, dst, 5, in, 1, Byte, src, 5); err != nil {
			return err
		}
		if p.Rank() == 0 {
			// Received from ProcNull: untouched count 0; value stays.
			if in[0] != 0xFF {
				return fmt.Errorf("edge rank got %d from PROC_NULL", in[0])
			}
		} else if in[0] != byte(p.Rank()-1) {
			return fmt.Errorf("rank %d got %d, want %d", p.Rank(), in[0], p.Rank()-1)
		}
		return nil
	})
}

func TestNeighborAllgather(t *testing.T) {
	run(t, 4, Config{Fabric: "ofi"}, func(p *Proc) error {
		cart, err := p.World().CartCreate([]int{2, 2}, []bool{false, true})
		if err != nil {
			return err
		}
		mine := []byte{byte(p.Rank() + 1)}
		nb := cart.Neighbors()
		recv := make([]byte, len(nb))
		if err := cart.NeighborAllgather(mine, recv, 1, Byte); err != nil {
			return err
		}
		for d, peer := range nb {
			want := byte(0)
			if peer != ProcNull {
				want = byte(peer + 1)
			}
			if recv[d] != want {
				return fmt.Errorf("rank %d dir %d: got %d, want %d (neighbors %v)",
					p.Rank(), d, recv[d], want, nb)
			}
		}
		return nil
	})
}

func TestNeighborAllgatherDegenerate(t *testing.T) {
	// A 2-rank periodic ring: both directions point at the same peer;
	// the direction-coded tags must keep the blocks straight.
	run(t, 2, Config{}, func(p *Proc) error {
		cart, err := p.World().CartCreate([]int{2}, []bool{true})
		if err != nil {
			return err
		}
		mine := []byte{byte(10 + p.Rank())}
		recv := make([]byte, 2)
		if err := cart.NeighborAllgather(mine, recv, 1, Byte); err != nil {
			return err
		}
		peer := byte(10 + (1 - p.Rank()))
		if recv[0] != peer || recv[1] != peer {
			return fmt.Errorf("rank %d: recv %v, want both %d", p.Rank(), recv, peer)
		}
		return nil
	})
}
