package gompi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync/atomic"
	"testing"
)

// exchangeBody is a small neighbor exchange every observability test
// reuses: each rank sends msgs messages to its right neighbor and
// receives from its left.
func exchangeBody(msgs, bytes int) func(p *Proc) error {
	return func(p *Proc) error {
		w := p.World()
		right := (p.Rank() + 1) % p.Size()
		left := (p.Rank() - 1 + p.Size()) % p.Size()
		buf := make([]byte, bytes)
		recv := make([]byte, bytes)
		for i := 0; i < msgs; i++ {
			req, err := w.Isend(buf, bytes, Byte, right, i)
			if err != nil {
				return err
			}
			if _, err := w.Recv(recv, bytes, Byte, left, i); err != nil {
				return err
			}
			if _, err := req.Wait(); err != nil {
				return err
			}
		}
		return nil
	}
}

// TestRunStatsCollects verifies the teardown snapshot: every rank slot
// filled, counters and metrics nonzero, virtual time advanced.
func TestRunStatsCollects(t *testing.T) {
	for _, dev := range []DeviceKind{DeviceCH4, DeviceOriginal} {
		dev := dev
		t.Run(string(dev), func(t *testing.T) {
			st, err := RunStats(4, Config{Device: dev, Fabric: "ofi"}, exchangeBody(5, 64))
			if err != nil {
				t.Fatal(err)
			}
			if st.Hz != 2.2e9 || len(st.Ranks) != 4 {
				t.Fatalf("hz=%g ranks=%d", st.Hz, len(st.Ranks))
			}
			for i, r := range st.Ranks {
				if r.Rank != i {
					t.Fatalf("slot %d holds rank %d", i, r.Rank)
				}
				if r.Counters.TotalInstr == 0 || r.VirtualCycles == 0 {
					t.Fatalf("rank %d: empty counters %+v", i, r)
				}
				if r.Metrics.NetSend.Msgs != 5 || r.Metrics.NetRecv.Msgs != 5 {
					t.Fatalf("rank %d: net msgs %+v", i, r.Metrics.NetSend)
				}
			}
			agg := st.Aggregate()
			if agg.NetSend.Bytes != agg.NetRecv.Bytes || agg.NetSend.Bytes != 4*5*64 {
				t.Fatalf("aggregate bytes send=%d recv=%d, want %d",
					agg.NetSend.Bytes, agg.NetRecv.Bytes, 4*5*64)
			}
		})
	}
}

// TestProcMetricsInBody verifies the mid-run snapshot path.
func TestProcMetricsInBody(t *testing.T) {
	run(t, 2, Config{}, func(p *Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			if err := w.Send([]byte{1}, 1, Byte, 1, 0); err != nil {
				return err
			}
			m := p.Metrics()
			if m.NetSend.Msgs != 1 || m.NetSend.Bytes != 1 {
				return fmt.Errorf("send metrics %+v", m.NetSend)
			}
			return nil
		}
		buf := make([]byte, 1)
		if _, err := w.Recv(buf, 1, Byte, 0, 0); err != nil {
			return err
		}
		m := p.Metrics()
		if m.NetRecv.Msgs != 1 {
			return fmt.Errorf("recv metrics %+v", m.NetRecv)
		}
		return nil
	})
}

// TestChromeTraceExport runs traced jobs under both devices and checks
// the catapult document parses and holds this run's events.
func TestChromeTraceExport(t *testing.T) {
	for _, dev := range []DeviceKind{DeviceCH4, DeviceOriginal} {
		dev := dev
		t.Run(string(dev), func(t *testing.T) {
			st, err := RunStats(2, Config{Device: dev, Trace: true}, exchangeBody(3, 16))
			if err != nil {
				t.Fatal(err)
			}
			if len(st.TraceEvents(0)) == 0 || len(st.TraceEvents(1)) == 0 {
				t.Fatal("traced run collected no events")
			}
			var buf bytes.Buffer
			if err := st.WriteChromeTrace(&buf); err != nil {
				t.Fatal(err)
			}
			var doc struct {
				TraceEvents []struct {
					Name string  `json:"name"`
					Ph   string  `json:"ph"`
					Ts   float64 `json:"ts"`
					Tid  int     `json:"tid"`
				} `json:"traceEvents"`
			}
			if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
				t.Fatalf("chrome export does not parse: %v", err)
			}
			var sends, ranks int
			seen := map[int]bool{}
			for _, e := range doc.TraceEvents {
				if e.Ph == "X" && e.Name == "send" {
					sends++
				}
				if !seen[e.Tid] {
					seen[e.Tid] = true
					ranks++
				}
			}
			if sends != 2*3 {
				t.Fatalf("chrome export has %d send events, want 6", sends)
			}
			if ranks != 2 {
				t.Fatalf("chrome export covers %d ranks, want 2", ranks)
			}
		})
	}
}

// TestTraceRingOverflowPublic forces the bounded ring to evict oldest
// events and checks the drop count surfaces in the teardown snapshot
// while the retained window stays chronological.
func TestTraceRingOverflowPublic(t *testing.T) {
	for _, dev := range []DeviceKind{DeviceCH4, DeviceOriginal} {
		dev := dev
		t.Run(string(dev), func(t *testing.T) {
			const ring = 8
			st, err := RunStats(2, Config{Device: dev, Trace: true, TraceEvents: ring},
				exchangeBody(20, 8)) // 20 x (send+recv+waits) >> ring
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < 2; r++ {
				if st.Ranks[r].TraceDropped == 0 {
					t.Fatalf("rank %d: ring of %d did not drop with 20 exchanges", r, ring)
				}
				evs := st.TraceEvents(r)
				if len(evs) != ring {
					t.Fatalf("rank %d retained %d events, want the full ring %d", r, len(evs), ring)
				}
				for i := 1; i < len(evs); i++ {
					if evs[i].Start < evs[i-1].Start {
						t.Fatalf("rank %d: retained events out of order at %d", r, i)
					}
				}
			}
		})
	}
}

// countingProfiler counts Enter/Exit pairs across all ranks.
type countingProfiler struct {
	enters, exits atomic.Int64
	sendBytes     atomic.Int64
}

func (c *countingProfiler) Enter(rank int, op TraceKind, peer, bytes int, vcycles int64) {
	c.enters.Add(1)
}

func (c *countingProfiler) Exit(rank int, op TraceKind, peer, bytes int, vcycles int64) {
	c.exits.Add(1)
	if op == TraceSend {
		c.sendBytes.Add(int64(bytes))
	}
}

// TestProfilerHooks verifies the PMPI-style interception layer fires
// around every operation, balanced, with tracing off.
func TestProfilerHooks(t *testing.T) {
	prof := &countingProfiler{}
	err := Run(2, Config{Profiler: prof}, exchangeBody(4, 32))
	if err != nil {
		t.Fatal(err)
	}
	if prof.enters.Load() == 0 {
		t.Fatal("profiler never fired")
	}
	if prof.enters.Load() != prof.exits.Load() {
		t.Fatalf("unbalanced hooks: %d enters, %d exits", prof.enters.Load(), prof.exits.Load())
	}
	// 2 ranks x 4 sends x 32 bytes.
	if prof.sendBytes.Load() != 2*4*32 {
		t.Fatalf("profiler saw %d send bytes, want %d", prof.sendBytes.Load(), 2*4*32)
	}
}

// TestProfilerSeesAllOpts verifies the fused path reports through the
// hooks too (it bypasses the generic MPI layer but not observability).
func TestProfilerSeesAllOpts(t *testing.T) {
	prof := &countingProfiler{}
	err := Run(2, Config{Profiler: prof, Device: "ch4", Fabric: "inf", Build: "no-err-single-ipo"},
		func(p *Proc) error {
			w := p.World()
			if _, err := w.DupPredefined(Comm1); err != nil {
				return err
			}
			if p.Rank() == 0 {
				if err := p.IsendAllOpts(Comm1, []byte{7}, 1); err != nil {
					return err
				}
				return w.CommWaitall()
			}
			buf := make([]byte, 1)
			_, err := p.PredefComm(Comm1).RecvNoMatch(buf, 1, Byte)
			return err
		})
	if err != nil {
		t.Fatal(err)
	}
	if prof.sendBytes.Load() != 1 {
		t.Fatalf("profiler saw %d bytes from the all-opts send, want 1", prof.sendBytes.Load())
	}
}
