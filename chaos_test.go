package gompi

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// TestChaosRandomTraffic drives the whole stack with randomized but
// self-checking traffic: every rank sends a deterministic schedule of
// messages (random sizes, tags, destinations, send variants) derived
// from a shared seed, so every rank can independently compute exactly
// what it must receive, post matching receives in a shuffled order, and
// verify payload contents byte for byte. Runs across devices, fabrics,
// and node widths.
func TestChaosRandomTraffic(t *testing.T) {
	configs := []Config{
		{Device: "ch4", Fabric: "ofi"},
		{Device: "ch4", Fabric: "ucx", RanksPerNode: 2},
		{Device: "ch4", Fabric: "inf", Build: "no-err-single-ipo"},
		{Device: "original", Fabric: "ofi"},
	}
	for ci, cfg := range configs {
		cfg := cfg
		t.Run(cfgName(cfg), func(t *testing.T) {
			chaosRound(t, cfg, int64(1000+ci))
		})
	}
}

type chaosMsg struct {
	src, dst, tag, size int
	variant             int // 0 plain, 1 global-rank, 2 npn, 3 noreq
}

// chaosSchedule derives the full message list from the seed; all ranks
// compute the identical list.
func chaosSchedule(seed int64, ranks, msgs int) []chaosMsg {
	rng := rand.New(rand.NewSource(seed))
	out := make([]chaosMsg, msgs)
	for i := range out {
		src := rng.Intn(ranks)
		dst := rng.Intn(ranks)
		out[i] = chaosMsg{
			src: src, dst: dst,
			tag:     rng.Intn(50),
			size:    rng.Intn(6000), // crosses the shm cell and some header sizes
			variant: rng.Intn(4),
		}
	}
	return out
}

// payload is the deterministic content of message i.
func payload(i, size int) []byte {
	b := make([]byte, size)
	for j := range b {
		b[j] = byte(i*31 + j*7)
	}
	return b
}

func chaosRound(t *testing.T, cfg Config, seed int64) {
	const ranks, msgs = 5, 120
	sched := chaosSchedule(seed, ranks, msgs)
	run(t, ranks, cfg, func(p *Proc) error {
		w := p.World()
		me := p.Rank()

		// Post receives for everything addressed to me, in a
		// rank-specific shuffled order (message matching must untangle
		// it). Tags disambiguate same-(src,tag) collisions only by
		// FIFO, so receives for a given (src,tag) must stay in send
		// order: shuffle across distinct (src,tag) keys only.
		type rx struct {
			idx int
			buf []byte
			req *Request
		}
		var mine []rx
		perKey := map[[2]int][]int{}
		for i, m := range sched {
			if m.dst == me {
				key := [2]int{m.src, m.tag}
				perKey[key] = append(perKey[key], i)
			}
		}
		keys := make([][2]int, 0, len(perKey))
		for k := range perKey {
			keys = append(keys, k)
		}
		rng := rand.New(rand.NewSource(seed + int64(me)))
		rng.Shuffle(len(keys), func(a, b int) { keys[a], keys[b] = keys[b], keys[a] })
		for _, k := range keys {
			for _, i := range perKey[k] {
				m := sched[i]
				buf := make([]byte, m.size)
				req, err := w.Irecv(buf, m.size, Byte, m.src, m.tag)
				if err != nil {
					return fmt.Errorf("irecv %d: %v", i, err)
				}
				mine = append(mine, rx{idx: i, buf: buf, req: req})
			}
		}

		// Send my share, in schedule order, through a random variant.
		for i, m := range sched {
			if m.src != me {
				continue
			}
			data := payload(i, m.size)
			var err error
			switch m.variant {
			case 1:
				worldDst, e := w.WorldRank(m.dst)
				if e != nil {
					return e
				}
				var req *Request
				req, err = w.IsendGlobal(data, m.size, Byte, worldDst, m.tag)
				if err == nil {
					_, err = req.Wait()
				}
			case 2:
				var req *Request
				req, err = w.IsendNPN(data, m.size, Byte, m.dst, m.tag)
				if err == nil {
					_, err = req.Wait()
				}
			case 3:
				err = w.IsendNoReq(data, m.size, Byte, m.dst, m.tag)
			default:
				err = w.Send(data, m.size, Byte, m.dst, m.tag)
			}
			if err != nil {
				return fmt.Errorf("send %d: %v", i, err)
			}
		}
		if err := w.CommWaitall(); err != nil {
			return err
		}

		// Verify every delivery.
		for _, r := range mine {
			st, err := r.req.Wait()
			if err != nil {
				return fmt.Errorf("recv %d: %v", r.idx, err)
			}
			m := sched[r.idx]
			if st.Source != m.src || st.Tag != m.tag || st.Count != m.size {
				return fmt.Errorf("msg %d status %+v, want src %d tag %d size %d",
					r.idx, st, m.src, m.tag, m.size)
			}
			if !bytes.Equal(r.buf, payload(r.idx, m.size)) {
				return fmt.Errorf("msg %d payload corrupted", r.idx)
			}
		}
		return w.Barrier()
	})
}

// TestChaosThreadMultipleVCIs is the multi-threaded round: every rank
// runs several goroutines concurrently under MPI_THREAD_MULTIPLE, each
// on its own hinted communicator — so each goroutine's traffic rides a
// private virtual communication interface — and byte-verifies a ring
// exchange. Run under -race this is the main data-race probe for the
// multi-VCI engine (and, for the original device, the global critical
// section).
func TestChaosThreadMultipleVCIs(t *testing.T) {
	configs := []Config{
		{Device: "ch4", Fabric: "inf", ThreadMultiple: true, VCIs: 4},
		{Device: "ch4", Fabric: "ofi", ThreadMultiple: true, VCIs: 4, RanksPerNode: 2},
		{Device: "original", Fabric: "ofi", ThreadMultiple: true},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfgName(cfg), func(t *testing.T) {
			chaosThreadMultipleRound(t, cfg)
		})
	}
}

func chaosThreadMultipleRound(t *testing.T, cfg Config) {
	const ranks, lanes, rounds = 4, 4, 24
	run(t, ranks, cfg, func(p *Proc) error {
		w := p.World()
		me := p.Rank()
		// Communicator creation is collective: build every lane's hinted
		// duplicate on the main goroutine before any thread starts.
		comms := make([]*Comm, lanes)
		for g := range comms {
			c, err := w.DupWithHints(CommHints{NoAnySource: true, NoAnyTag: true, ExactLength: true})
			if err != nil {
				return err
			}
			comms[g] = c
		}
		right := (me + 1) % ranks
		left := (me - 1 + ranks) % ranks
		errs := make(chan error, lanes)
		for g := 0; g < lanes; g++ {
			go func(g int) {
				c := comms[g]
				for i := 0; i < rounds; i++ {
					size := 1 + (g*97+i*13)%600 // crosses eager header sizes
					out := make([]byte, size)
					for j := range out {
						out[j] = byte(me ^ g*31 ^ i*7 ^ j)
					}
					sreq, err := c.Isend(out, size, Byte, right, i)
					if err != nil {
						errs <- fmt.Errorf("lane %d round %d isend: %v", g, i, err)
						return
					}
					in := make([]byte, size)
					st, err := c.Recv(in, size, Byte, left, i)
					if err != nil {
						errs <- fmt.Errorf("lane %d round %d recv: %v", g, i, err)
						return
					}
					if st.Source != left || st.Tag != i || st.Count != size {
						errs <- fmt.Errorf("lane %d round %d status %+v", g, i, st)
						return
					}
					for j := range in {
						if in[j] != byte(left^g*31^i*7^j) {
							errs <- fmt.Errorf("lane %d round %d byte %d corrupted", g, i, j)
							return
						}
					}
					if _, err := sreq.Wait(); err != nil {
						errs <- fmt.Errorf("lane %d round %d send wait: %v", g, i, err)
						return
					}
				}
				errs <- nil
			}(g)
		}
		for g := 0; g < lanes; g++ {
			if err := <-errs; err != nil {
				return err
			}
		}
		return w.Barrier()
	})
}

// TestChaosCollectiveStorm interleaves every collective in a long
// random-but-agreed sequence; each result is independently checkable.
func TestChaosCollectiveStorm(t *testing.T) {
	const ranks, rounds = 6, 40
	run(t, ranks, Config{Fabric: "ofi", RanksPerNode: 3}, func(p *Proc) error {
		w := p.World()
		rng := rand.New(rand.NewSource(777)) // same stream on all ranks
		for round := 0; round < rounds; round++ {
			switch rng.Intn(6) {
			case 0:
				if err := w.Barrier(); err != nil {
					return err
				}
			case 1:
				root := rng.Intn(ranks)
				buf := []byte{0}
				if p.Rank() == root {
					buf[0] = byte(round)
				}
				if err := w.Bcast(buf, 1, Byte, root); err != nil {
					return err
				}
				if buf[0] != byte(round) {
					return fmt.Errorf("round %d bcast got %d", round, buf[0])
				}
			case 2:
				vals, err := w.AllreduceFloat64([]float64{float64(p.Rank() + round)}, OpSum)
				if err != nil {
					return err
				}
				want := float64(ranks*(ranks-1)/2 + ranks*round)
				if vals[0] != want {
					return fmt.Errorf("round %d allreduce %v, want %v", round, vals[0], want)
				}
			case 3:
				mine := []byte{byte(p.Rank()*7 + round)}
				all := make([]byte, ranks)
				if err := w.Allgather(mine, all, 1, Byte); err != nil {
					return err
				}
				for r := 0; r < ranks; r++ {
					if all[r] != byte(r*7+round) {
						return fmt.Errorf("round %d allgather %v", round, all)
					}
				}
			case 4:
				send := Int64Bytes([]int64{int64(p.Rank())}, nil)
				recv := make([]byte, 8)
				root := rng.Intn(ranks)
				if err := w.Reduce(send, recv, 1, Long, OpMax, root); err != nil {
					return err
				}
				if p.Rank() == root {
					if got := BytesInt64(recv, nil)[0]; got != int64(ranks-1) {
						return fmt.Errorf("round %d reduce-max %d", round, got)
					}
				}
			default:
				send := Int64Bytes([]int64{int64(round)}, nil)
				recv := make([]byte, 8)
				if err := w.Scan(send, recv, 1, Long, OpSum); err != nil {
					return err
				}
				if got := BytesInt64(recv, nil)[0]; got != int64(round*(p.Rank()+1)) {
					return fmt.Errorf("round %d scan %d", round, got)
				}
			}
		}
		return nil
	})
}

// TestChaosMixedPt2ptAndRMA interleaves fence-epoch RMA with tagged
// traffic on the same ranks.
func TestChaosMixedPt2ptAndRMA(t *testing.T) {
	const ranks = 4
	run(t, ranks, Config{Fabric: "ucx"}, func(p *Proc) error {
		w := p.World()
		win, mem, err := w.WinAllocate(8*ranks, 8)
		if err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		for round := 0; round < 10; round++ {
			right := (p.Rank() + 1) % ranks
			left := (p.Rank() - 1 + ranks) % ranks
			// Tagged ring exchange...
			out := Int64Bytes([]int64{int64(p.Rank()*100 + round)}, nil)
			in := make([]byte, 8)
			if _, err := w.Sendrecv(out, 8, Byte, right, round, in, 8, Byte, left, round); err != nil {
				return err
			}
			if got := BytesInt64(in, nil)[0]; got != int64(left*100+round) {
				return fmt.Errorf("round %d ring got %d", round, got)
			}
			// ...and a put into the right neighbor's slot for me.
			if err := win.Put(out, 8, Byte, right, p.Rank()); err != nil {
				return err
			}
			if err := win.Fence(); err != nil {
				return err
			}
			if got := BytesInt64(mem[8*left:8*left+8], nil)[0]; got != int64(left*100+round) {
				return fmt.Errorf("round %d window got %d", round, got)
			}
			// Separate the local reads above from the next round's
			// puts: reading the window while a peer's next-epoch put
			// lands is erroneous under MPI RMA semantics.
			if err := win.Fence(); err != nil {
				return err
			}
		}
		return win.Free()
	})
}
