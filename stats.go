package gompi

import (
	"encoding/json"
	"io"

	"gompi/internal/metrics"
	"gompi/internal/trace"
)

// MetricsSnapshot is the per-rank observability snapshot: message and
// byte counts by transport path (self/shm/netmod and eager/rendezvous),
// matching-engine statistics, queue high-water marks, buffer- and
// request-pool behavior, and RMA operation counts. The underlying
// counters are plain per-rank integers bumped on the hot paths — no
// locks, no allocation, no instruction charges — and are folded into
// this structure only when snapshotted.
type MetricsSnapshot = metrics.Snapshot

// RankStats is one rank's complete teardown snapshot.
type RankStats struct {
	Rank int `json:"rank"`
	// Valid marks a slot actually filled by a rank that ran its body to
	// completion. A rank that dies by panic leaves a zero slot with
	// Valid false; consumers doing cross-rank math (Stats.Efficiency)
	// must exclude such slots instead of reading 0 cycles as a
	// perfectly-idle rank.
	Valid    bool            `json:"valid"`
	Counters Counters        `json:"counters"`
	Metrics  MetricsSnapshot `json:"metrics"`
	// Phases is the rank's named phase-region table (PhaseBegin /
	// PhaseEnd), in first-entry order; empty when the body declared no
	// regions.
	Phases        []PhaseStats `json:"phases,omitempty"`
	TraceDropped  int64        `json:"trace_dropped,omitempty"`
	VirtualCycles int64        `json:"virtual_cycles"`
}

// Stats is a whole-job observability snapshot, filled at teardown when
// Config.Stats points at it (or via RunStats). Each rank writes its
// own slot as its body function returns; the slices are complete once
// Run returns. Ranks that die by panic leave a zero slot.
type Stats struct {
	// Hz is the model core frequency, for converting virtual cycles
	// to seconds.
	Hz float64 `json:"hz"`
	// Ranks holds one entry per rank, indexed by world rank.
	Ranks []RankStats `json:"ranks"`
	// WatchdogTrips counts stall-watchdog firings during the run (0 or
	// 1; only meaningful when Config.Watchdog was set).
	WatchdogTrips int64 `json:"watchdog_trips,omitempty"`

	// traces holds each rank's event log (empty unless Config.Trace
	// was set); exported only through WriteChromeTrace.
	traces [][]trace.Event
}

// Aggregate merges every rank's metrics into one job-wide snapshot:
// counters sum, high-water marks take the maximum. In a balanced run
// the aggregate's shm_send/shm_recv and net_send/net_recv byte totals
// are equal — bytes leave one rank's counter and arrive on another's.
func (s *Stats) Aggregate() MetricsSnapshot {
	var agg MetricsSnapshot
	for i := range s.Ranks {
		agg = agg.Merge(s.Ranks[i].Metrics)
	}
	return agg
}

// WriteJSON renders the snapshot as indented JSON.
func (s *Stats) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteChromeTrace renders the run's event logs as a Chrome-trace
// (catapult JSON) document loadable in chrome://tracing or Perfetto:
// one thread per rank, one complete event per MPI operation, with
// timestamps in microseconds of virtual time. The document is empty
// unless the run had Config.Trace set.
func (s *Stats) WriteChromeTrace(w io.Writer) error {
	return trace.WriteChrome(w, s.Hz, s.traces)
}

// TraceEvents returns one rank's recorded events (empty unless the run
// had Config.Trace set), for programmatic inspection.
func (s *Stats) TraceEvents(rank int) []TraceEvent {
	if rank < 0 || rank >= len(s.traces) {
		return nil
	}
	return s.traces[rank]
}

// RunStats runs an n-rank job like Run and returns the teardown
// snapshot alongside the job error. The snapshot is valid (possibly
// with zero slots for failed ranks) even when err is non-nil, except
// for configuration errors where no job ran.
func RunStats(n int, cfg Config, body func(p *Proc) error) (*Stats, error) {
	st := &Stats{}
	cfg.Stats = st
	err := Run(n, cfg, body)
	return st, err
}
