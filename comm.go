package gompi

import (
	"gompi/internal/comm"
	"gompi/internal/core"
	"gompi/internal/group"
	"gompi/internal/instr"
	"gompi/internal/nbc"
)

// Comm is a communicator: an isolated communication context over an
// ordered group of ranks.
type Comm struct {
	p *Proc
	c *comm.Comm

	// sched caches compiled nonblocking-collective schedules keyed by
	// (operation, algorithm, buffers): a repeated I-collective on
	// identical arguments replays the compiled rounds instead of
	// rebuilding them. Owned by the rank; the zero value is ready.
	sched nbc.Cache
}

// Rank returns the calling process's rank within the communicator.
func (c *Comm) Rank() int { return c.c.Rank() }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return c.c.Size() }

// Group returns the communicator's process group.
func (c *Comm) Group() *Group { return &Group{g: c.c.Group()} }

// WorldRank translates a communicator rank to its MPI_COMM_WORLD rank —
// the translation applications perform once when adopting the
// global-rank proposal (MPI_GROUP_TRANSLATE_RANKS).
func (c *Comm) WorldRank(rank int) (int, error) {
	w, err := c.c.WorldRank(rank)
	if err != nil {
		return -1, errc(ErrRank, "%v", err)
	}
	return w, nil
}

// CommOptions unifies the communicator-creation variants behind one
// options struct, mirroring SendOptions/RecvOptions/WinOptions: the
// canonical entry points are DupOpt, SplitOpt, and CreateOpt, and the
// historical names (Dup, DupWithHints, Split, SplitWithHints,
// SplitType, Create) are pinned zero-overhead wrappers over them.
type CommOptions struct {
	// Hints are the MPI-4 communicator assertions attached to the new
	// communicator at creation, before any traffic can flow on it.
	Hints CommHints
	// Type selects SplitOpt's partition rule: 0 partitions by the
	// caller-supplied color, SplitTypeShared partitions by locality
	// (MPI_COMM_SPLIT_TYPE semantics — the color argument is ignored
	// and the node id is used instead).
	Type int
}

// chargeCommCreate models the collective cost of communicator
// creation: context-id agreement over a recursive-doubling round
// structure, ceil(log2 n) rounds of CommCreateStepCost cycles each.
// With sparse rank tables there is no O(n) per-rank table copy left to
// charge — this logarithmic agreement is the whole creation cost.
func (c *Comm) chargeCommCreate() {
	steps := int64(0)
	for s := 1; s < c.c.Size(); s <<= 1 {
		steps++
	}
	c.p.rank.ChargeCycles(instr.Transport, steps*core.CommCreateStepCost)
}

// DupOpt duplicates the communicator with a fresh context and applies
// the options to the duplicate (MPI_COMM_DUP / MPI_COMM_DUP_WITH_INFO).
// Collective.
func (c *Comm) DupOpt(o CommOptions) (*Comm, error) {
	if err := c.p.checkComm(c); err != nil {
		return nil, err
	}
	c.chargeCommCreate()
	d, err := c.c.Dup()
	if err != nil {
		return nil, errc(ErrComm, "%v", err)
	}
	o.Hints.apply(d)
	return &Comm{p: c.p, c: d}, nil
}

// Dup duplicates the communicator with a fresh context
// (MPI_COMM_DUP). Collective.
func (c *Comm) Dup() (*Comm, error) { return c.DupOpt(CommOptions{}) }

// CommHints are the MPI-4-style communicator assertions
// (mpi_assert_*): promises about how the communicator will be used,
// given at creation time. A hinted communicator gets a private virtual
// communication interface and its receives never touch the cross-VCI
// wildcard path; in exchange, an operation violating an assertion
// returns an ErrHint-classed error. This is the hint-driven
// alternative to the paper's observation that mandatory thread-safety
// and wildcard generality tax every caller: the application states
// what it will not do, and only then does the library drop the
// machinery.
type CommHints struct {
	// NoAnySource promises no receive or probe ever uses AnySource.
	NoAnySource bool
	// NoAnyTag promises no receive or probe ever uses AnyTag.
	NoAnyTag bool
	// ExactLength promises every receive buffer exactly fits its
	// message; a short or truncated delivery is reported as ErrHint.
	ExactLength bool
}

// apply caches the hints into the freshly created communicator through
// the info-key path, so they propagate on Dup like any other hint.
func (h CommHints) apply(c *comm.Comm) {
	if h.NoAnySource {
		c.SetInfo(comm.HintNoAnySource, "true")
	}
	if h.NoAnyTag {
		c.SetInfo(comm.HintNoAnyTag, "true")
	}
	if h.ExactLength {
		c.SetInfo(comm.HintExactLength, "true")
	}
}

// Hints returns the communicator's cached assertions.
func (c *Comm) Hints() CommHints {
	return CommHints{
		NoAnySource: c.c.Hints.NoAnySource,
		NoAnyTag:    c.c.Hints.NoAnyTag,
		ExactLength: c.c.Hints.ExactLength,
	}
}

// DupWithHints duplicates the communicator and attaches assertions to
// the duplicate before any traffic can flow on it
// (MPI_COMM_DUP_WITH_INFO with mpi_assert_* keys). Collective.
func (c *Comm) DupWithHints(h CommHints) (*Comm, error) {
	return c.DupOpt(CommOptions{Hints: h})
}

// SplitWithHints partitions like Split and attaches assertions to each
// resulting communicator at creation. Collective; ranks receiving nil
// still participate.
func (c *Comm) SplitWithHints(color, key int, h CommHints) (*Comm, error) {
	return c.SplitOpt(color, key, CommOptions{Hints: h})
}

// DupPredefined duplicates the communicator into the given predefined
// handle slot (the MPI_COMM_DUP_PREDEFINED proposal, Section 3.3).
// Subsequent communication through PredefComm(h) — or flagged calls
// like IsendPredef — reference the communicator as a constant-indexed
// global instead of a dereferenced dynamic object. Collective.
func (c *Comm) DupPredefined(h CommHandle) (*Comm, error) {
	if h < 0 || int(h) >= MaxPredefinedComms {
		return nil, errc(ErrArg, "predefined handle %d out of range", h)
	}
	d, err := c.Dup()
	if err != nil {
		return nil, err
	}
	c.p.predef[h] = d
	return d, nil
}

// SplitOpt partitions the communicator and applies the options to each
// resulting communicator at creation (MPI_COMM_SPLIT /
// MPI_COMM_SPLIT_TYPE). With o.Type zero the partition is by the given
// color, each part ordered by key; with o.Type == SplitTypeShared the
// color argument is ignored and ranks are partitioned by node (the
// communicator over which shared-memory optimizations apply).
// Collective; ranks passing color < 0 (plain splits only) receive nil
// but still participate.
func (c *Comm) SplitOpt(color, key int, o CommOptions) (*Comm, error) {
	if err := c.p.checkComm(c); err != nil {
		return nil, err
	}
	switch o.Type {
	case 0:
		// Plain color/key split.
	case SplitTypeShared:
		// Color by node id of the rank's world rank.
		w, err := c.c.WorldRank(c.c.Rank())
		if err != nil {
			return nil, errc(ErrRank, "%v", err)
		}
		color = c.p.rank.World().Node(w)
	default:
		return nil, errc(ErrArg, "unknown split type %d", o.Type)
	}
	c.chargeCommCreate()
	col := color
	if col < 0 {
		col = comm.Undefined
	}
	s, err := c.c.Split(col, key)
	if err != nil {
		return nil, errc(ErrComm, "%v", err)
	}
	if s == nil {
		return nil, nil
	}
	o.Hints.apply(s)
	return &Comm{p: c.p, c: s}, nil
}

// Split partitions by color, ordering each part by key
// (MPI_COMM_SPLIT). Ranks passing color < 0 receive nil. Collective.
func (c *Comm) Split(color, key int) (*Comm, error) {
	return c.SplitOpt(color, key, CommOptions{})
}

// SplitTypeShared is the MPI_COMM_TYPE_SHARED selector for SplitType.
const SplitTypeShared = 1

// SplitType partitions the communicator by locality
// (MPI_COMM_SPLIT_TYPE with MPI_COMM_TYPE_SHARED): ranks on the same
// simulated node land in the same communicator — the communicator over
// which shared-memory optimizations (the shmmod) apply. Collective.
func (c *Comm) SplitType(splitType, key int) (*Comm, error) {
	if splitType != SplitTypeShared {
		return nil, errc(ErrArg, "unknown split type %d", splitType)
	}
	return c.SplitOpt(0, key, CommOptions{Type: splitType})
}

// CreateOpt builds a communicator over a subgroup and applies the
// options to it at creation (MPI_COMM_CREATE / ..._WITH_INFO).
// Collective over c; non-members receive nil but still participate.
func (c *Comm) CreateOpt(g *Group, o CommOptions) (*Comm, error) {
	if err := c.p.checkComm(c); err != nil {
		return nil, err
	}
	c.chargeCommCreate()
	s, err := c.c.Create(g.g)
	if err != nil {
		return nil, errc(ErrComm, "%v", err)
	}
	if s == nil {
		return nil, nil
	}
	o.Hints.apply(s)
	return &Comm{p: c.p, c: s}, nil
}

// Create builds a communicator over a subgroup (MPI_COMM_CREATE).
// Collective over c; non-members receive nil.
func (c *Comm) Create(g *Group) (*Comm, error) {
	return c.CreateOpt(g, CommOptions{})
}

// Free releases the communicator (MPI_COMM_FREE).
func (c *Comm) Free() error {
	if err := c.c.Free(); err != nil {
		return errc(ErrComm, "%v", err)
	}
	return nil
}

// SetInfo attaches an info hint (MPI_COMM_SET_INFO).
func (c *Comm) SetInfo(key, value string) { c.c.SetInfo(key, value) }

// Info reads an info hint (MPI_COMM_GET_INFO).
func (c *Comm) Info(key string) (string, bool) { return c.c.Info(key) }

// Group is an ordered set of world ranks (MPI_GROUP).
type Group struct {
	g *group.Group
}

// Size returns the group size.
func (g *Group) Size() int { return g.g.Size() }

// Rank returns the world rank's position in the group, or -1.
func (g *Group) Rank(world int) int { return g.g.Rank(world) }

// WorldRanks returns the ordered world-rank list.
func (g *Group) WorldRanks() []int { return g.g.Ranks() }

// Incl returns the subgroup of the listed group ranks (MPI_GROUP_INCL).
func (g *Group) Incl(ranks []int) (*Group, error) {
	s, err := g.g.Incl(ranks)
	if err != nil {
		return nil, errc(ErrRank, "%v", err)
	}
	return &Group{g: s}, nil
}

// Excl returns the group without the listed ranks (MPI_GROUP_EXCL).
func (g *Group) Excl(ranks []int) (*Group, error) {
	s, err := g.g.Excl(ranks)
	if err != nil {
		return nil, errc(ErrRank, "%v", err)
	}
	return &Group{g: s}, nil
}

// GroupUnion returns a's processes followed by b's new ones
// (MPI_GROUP_UNION).
func GroupUnion(a, b *Group) *Group { return &Group{g: group.Union(a.g, b.g)} }

// GroupIntersection returns a's processes that are also in b
// (MPI_GROUP_INTERSECTION).
func GroupIntersection(a, b *Group) *Group { return &Group{g: group.Intersection(a.g, b.g)} }

// GroupDifference returns a's processes not in b
// (MPI_GROUP_DIFFERENCE).
func GroupDifference(a, b *Group) *Group { return &Group{g: group.Difference(a.g, b.g)} }

// TranslateRanks maps ranks of group a to their positions in group b
// (MPI_GROUP_TRANSLATE_RANKS); absent ranks map to -1.
func TranslateRanks(a *Group, ranks []int, b *Group) ([]int, error) {
	out, err := group.TranslateRanks(a.g, ranks, b.g)
	if err != nil {
		return nil, errc(ErrRank, "%v", err)
	}
	return out, nil
}
