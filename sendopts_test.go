package gompi

import (
	"fmt"
	"testing"
)

// drainNoMatch receives n arrival-order messages on c.
func drainNoMatch(c *Comm, n int) error {
	for i := 0; i < n; i++ {
		buf := make([]byte, 1)
		if _, err := c.RecvNoMatch(buf, 1, Byte); err != nil {
			return err
		}
	}
	return nil
}

// TestWrappersMatchIsendOpt pins the satellite consolidation: every
// named send variant costs exactly as many instructions as IsendOpt
// with the equivalent SendOptions — the wrappers are zero-overhead.
func TestWrappersMatchIsendOpt(t *testing.T) {
	run(t, 2, ipoCfg, func(p *Proc) error {
		w := p.World()
		if p.Rank() != 0 {
			buf := make([]byte, 1)
			// The Global and NPN pairs send 2 matched messages each;
			// the NoMatch pair's 2 ride the arrival-order queue.
			for i := 0; i < 4; i++ {
				if _, err := w.Recv(buf, 1, Byte, 0, AnyTag); err != nil {
					return err
				}
			}
			return drainNoMatch(w, 2)
		}
		buf := []byte{1}
		type pair struct {
			name    string
			wrapper func() error
			opt     SendOptions
			tag     int
		}
		pairs := []pair{
			{"IsendGlobal", func() error { _, e := w.IsendGlobal(buf, 1, Byte, 1, 0); return e },
				SendOptions{GlobalRank: true}, 0},
			{"IsendNPN", func() error { _, e := w.IsendNPN(buf, 1, Byte, 1, 0); return e },
				SendOptions{NoProcNull: true}, 0},
			{"IsendNoMatch", func() error { _, e := w.IsendNoMatch(buf, 1, Byte, 1); return e },
				SendOptions{NoMatch: true}, 0},
		}
		for _, pr := range pairs {
			viaWrapper, err := measureIsend(p, pr.wrapper)
			if err != nil {
				return err
			}
			viaOpt, err := measureIsend(p, func() error {
				_, e := w.IsendOpt(buf, 1, Byte, 1, pr.tag, pr.opt)
				return e
			})
			if err != nil {
				return err
			}
			if viaWrapper != viaOpt {
				return fmt.Errorf("%s costs %d instructions, IsendOpt equivalent %d",
					pr.name, viaWrapper, viaOpt)
			}
		}
		return nil
	})
}

// TestNoReqGlobalCombo pins the new pairwise combination: its savings
// over a plain no-req send equal the global-rank proposal's savings,
// measured on the same rank in the same run.
func TestNoReqGlobalCombo(t *testing.T) {
	run(t, 2, ipoCfg, func(p *Proc) error {
		w := p.World()
		if p.Rank() != 0 {
			buf := make([]byte, 1)
			for i := 0; i < 4; i++ {
				if _, err := w.Recv(buf, 1, Byte, 0, 0); err != nil {
					return err
				}
			}
			return nil
		}
		buf := []byte{1}
		plain, err := measureIsend(p, func() error { _, e := w.Isend(buf, 1, Byte, 1, 0); return e })
		if err != nil {
			return err
		}
		noReq, err := measureIsend(p, func() error { return w.IsendNoReq(buf, 1, Byte, 1, 0) })
		if err != nil {
			return err
		}
		glob, err := measureIsend(p, func() error {
			_, e := w.IsendGlobal(buf, 1, Byte, 1, 0)
			if e != nil {
				return e
			}
			return nil
		})
		if err != nil {
			return err
		}
		combo, err := measureIsend(p, func() error { return w.IsendNoReqGlobal(buf, 1, Byte, 1, 0) })
		if err != nil {
			return err
		}
		// The proposals are independent code paths, so their savings
		// compose additively.
		wantSaving := (plain - noReq) + (plain - glob)
		if plain-combo != wantSaving {
			return fmt.Errorf("NoReq+Global saves %d instructions, want additive %d (plain=%d noReq=%d glob=%d combo=%d)",
				plain-combo, wantSaving, plain, noReq, glob, combo)
		}
		if err := w.CommWaitall(); err != nil {
			return err
		}
		// Wait for the two requestful sends' matching on the peer.
		return nil
	})
}

// TestIsendOptFusedPath pins the satellite's routing rule: IsendOpt
// with AllSendOptions on a whole-buffer byte send costs exactly the 16
// instructions of the dedicated MPI_ISEND_ALL_OPTS entry.
func TestIsendOptFusedPath(t *testing.T) {
	run(t, 2, ipoCfg, func(p *Proc) error {
		w := p.World()
		if _, err := w.DupPredefined(Comm1); err != nil {
			return err
		}
		c := p.PredefComm(Comm1)
		if p.Rank() != 0 {
			return drainNoMatch(c, 2)
		}
		buf := []byte{1}
		viaOpt, err := measureIsend(p, func() error {
			_, e := c.IsendOpt(buf, 1, Byte, 1, 0, AllSendOptions)
			return e
		})
		if err != nil {
			return err
		}
		viaNamed, err := measureIsend(p, func() error { return p.IsendAllOpts(Comm1, buf, 1) })
		if err != nil {
			return err
		}
		if viaOpt != 16 || viaNamed != 16 {
			return fmt.Errorf("fused path: IsendOpt=%d, IsendAllOpts=%d, want 16 for both", viaOpt, viaNamed)
		}
		return c.CommWaitall()
	})
}
