package gompi

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// failFast runs body and requires it to finish well under the test
// timeout — the whole point of world teardown.
func failFast(t *testing.T, n int, cfg Config, body func(p *Proc) error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- Run(n, cfg, body) }()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		t.Fatal("world did not tear down after a rank failure")
		return nil
	}
}

func TestAbortUnblocksPendingRecv(t *testing.T) {
	for _, dev := range []DeviceKind{DeviceCH4, DeviceOriginal} {
		dev := dev
		t.Run(string(dev), func(t *testing.T) {
			boom := errors.New("boom")
			err := failFast(t, 3, Config{Device: dev, Fabric: "ofi"}, func(p *Proc) error {
				if p.Rank() == 0 {
					return boom // never sends what rank 1 waits for
				}
				buf := make([]byte, 1)
				_, err := p.World().Recv(buf, 1, Byte, 0, 0)
				return err
			})
			if !errors.Is(err, boom) {
				t.Fatalf("original failure lost: %v", err)
			}
			if err != nil && strings.Contains(err.Error(), "world aborted") {
				t.Fatalf("fallout not filtered: %v", err)
			}
		})
	}
}

func TestAbortUnblocksCollective(t *testing.T) {
	boom := errors.New("collective boom")
	err := failFast(t, 4, Config{Fabric: "inf"}, func(p *Proc) error {
		if p.Rank() == 2 {
			return boom
		}
		return p.World().Barrier()
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestAbortUnblocksCommCreation(t *testing.T) {
	boom := errors.New("split boom")
	err := failFast(t, 3, Config{}, func(p *Proc) error {
		if p.Rank() == 1 {
			return boom
		}
		// The creation collective needs all ranks; rank 1 never joins.
		_, err := p.World().Split(0, p.Rank())
		return err
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestAbortUnblocksPSCW(t *testing.T) {
	boom := errors.New("pscw boom")
	err := failFast(t, 2, Config{Fabric: "ucx"}, func(p *Proc) error {
		w := p.World()
		win, _, err := w.WinAllocate(8, 1)
		if err != nil {
			return err
		}
		if p.Rank() == 1 {
			return boom // never posts
		}
		if err := win.Start([]int{1}); err != nil { // blocks on the post token
			return err
		}
		return win.Complete()
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestAbortPanicAlsoTearsDown(t *testing.T) {
	// A rank panicking while a peer is blocked on it: the panic must
	// tear the world down and be the reported failure.
	err := failFast(t, 3, Config{Fabric: "ofi"}, func(p *Proc) error {
		if p.Rank() == 0 {
			panic("deliberate panic")
		}
		buf := make([]byte, 1)
		_, err := p.World().Recv(buf, 1, Byte, 0, 0)
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panic lost: %v", err)
	}
	if strings.Contains(err.Error(), "world aborted") {
		t.Fatalf("fallout not filtered: %v", err)
	}
}

func TestNoSpuriousAbortOnSuccess(t *testing.T) {
	// A clean run must not trip any abort machinery.
	err := failFast(t, 4, Config{Fabric: "ofi", RanksPerNode: 2}, func(p *Proc) error {
		if err := p.World().Barrier(); err != nil {
			return err
		}
		vals, err := p.World().AllreduceFloat64([]float64{1}, OpSum)
		if err != nil {
			return err
		}
		if vals[0] != 4 {
			return fmt.Errorf("allreduce %v", vals[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
