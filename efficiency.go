package gompi

import (
	"encoding/json"
	"io"

	"gompi/internal/pop"
)

// EfficiencyReport is the POP parallel-efficiency hierarchy of one run:
// Parallel Efficiency factored into Load Balance and Communication
// Efficiency, the latter split into Serialization and Transfer
// efficiency, each in [0,1], plus one such hierarchy per named phase
// region. See internal/pop for the model and DESIGN.md §6h for the
// mapping from each metric to the counters it is derived from.
type EfficiencyReport = pop.Report

// EfficiencyMetrics is one level of the hierarchy (the five
// efficiencies), reused by the scaling sweep's per-np points.
type EfficiencyMetrics = pop.Metrics

// Efficiency computes the POP efficiency hierarchy from the run's
// per-rank cycle totals: useful = application-compute cycles, transport
// = fabric/shm data-movement cycles, runtime = the slowest rank's
// virtual clock. Slots left invalid by ranks that died by panic are
// excluded (Report.Excluded counts them). Phase rows are built from the
// ranks' PhaseBegin/PhaseEnd tables, keyed by name.
func (s *Stats) Efficiency() EfficiencyReport {
	ranks := make([]pop.Rank, len(s.Ranks))
	for i := range s.Ranks {
		r := &s.Ranks[i]
		ranks[i] = pop.Rank{
			Valid:     r.Valid,
			Total:     r.VirtualCycles,
			Useful:    r.Counters.Compute,
			Transport: r.Counters.Transport,
		}
	}
	// Phase tables are per-rank; join them by name, preserving the
	// first-seen order across ranks so reports are stable.
	idx := map[string]int{}
	var phases []pop.PhaseInput
	for i := range s.Ranks {
		r := &s.Ranks[i]
		if !r.Valid {
			continue
		}
		for _, ph := range r.Phases {
			j, ok := idx[ph.Name]
			if !ok {
				j = len(phases)
				idx[ph.Name] = j
				phases = append(phases, pop.PhaseInput{
					Name:  ph.Name,
					Ranks: make([]pop.Rank, len(s.Ranks)),
				})
			}
			phases[j].Calls += ph.Calls
			phases[j].Ranks[i] = pop.Rank{
				Valid:     true,
				Total:     ph.Cycles,
				Useful:    ph.UsefulCycles,
				Transport: ph.TransportCycles,
			}
		}
	}
	return pop.Build(ranks, phases)
}

// WriteEfficiencyReport renders the POP hierarchy as an aligned text
// table: the run-level factorization followed by one row per phase.
func (s *Stats) WriteEfficiencyReport(w io.Writer) error {
	return s.Efficiency().WriteTable(w)
}

// WriteEfficiencyJSON renders the same report as indented JSON, the
// machine-readable twin of WriteEfficiencyReport (benchjson embeds the
// identical structure in its efficiency section).
func (s *Stats) WriteEfficiencyJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Efficiency())
}
