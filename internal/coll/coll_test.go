package coll

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"gompi/internal/datatype"
)

// mesh is an in-memory PT2PT used to test the algorithms in isolation
// from any device: per-(src,dst) FIFO queues with tag filtering.
type mesh struct {
	n    int
	mu   sync.Mutex
	cond *sync.Cond
	q    map[[2]int][]meshMsg
}

type meshMsg struct {
	tag  int
	data []byte
}

func newMesh(n int) *mesh {
	m := &mesh{n: n, q: make(map[[2]int][]meshMsg)}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mesh) port(rank int) *port { return &port{m, rank} }

type port struct {
	m    *mesh
	rank int
}

func (p *port) Rank() int { return p.rank }
func (p *port) Size() int { return p.m.n }

func (p *port) Send(data []byte, dest, tag int) error {
	cp := append([]byte(nil), data...)
	p.m.mu.Lock()
	k := [2]int{p.rank, dest}
	p.m.q[k] = append(p.m.q[k], meshMsg{tag, cp})
	p.m.cond.Broadcast()
	p.m.mu.Unlock()
	return nil
}

func (p *port) Recv(buf []byte, src, tag int) (int, error) {
	k := [2]int{src, p.rank}
	p.m.mu.Lock()
	defer p.m.mu.Unlock()
	for {
		q := p.m.q[k]
		for i, msg := range q {
			if msg.tag == tag {
				p.m.q[k] = append(q[:i:i], q[i+1:]...)
				return copy(buf, msg.data), nil
			}
		}
		p.m.cond.Wait()
	}
}

// runAll executes body on every rank of a fresh mesh and reports the
// first error.
func runAll(t *testing.T, n int, body func(p PT2PT) error) {
	t.Helper()
	m := newMesh(n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = body(m.port(r))
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func longs(vals ...int64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(v))
	}
	return b
}

func getLongs(b []byte) []int64 {
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

var worldSizes = []int{1, 2, 3, 4, 5, 7, 8, 16}

func TestBarrierCompletes(t *testing.T) {
	for _, n := range worldSizes {
		runAll(t, n, Barrier)
	}
}

func TestBcastAllRoots(t *testing.T) {
	for _, n := range worldSizes {
		for root := 0; root < n; root++ {
			runAll(t, n, func(p PT2PT) error {
				buf := make([]byte, 16)
				if p.Rank() == root {
					for i := range buf {
						buf[i] = byte(root*10 + i)
					}
				}
				if err := Bcast(p, buf, root); err != nil {
					return err
				}
				for i := range buf {
					if buf[i] != byte(root*10+i) {
						return fmt.Errorf("rank %d byte %d = %d", p.Rank(), i, buf[i])
					}
				}
				return nil
			})
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, n := range worldSizes {
		for root := 0; root < n && root < 3; root++ {
			runAll(t, n, func(p PT2PT) error {
				mine := longs(int64(p.Rank()+1), int64(2*p.Rank()))
				out := make([]byte, len(mine))
				if err := Reduce(p, OpSum, datatype.Long, mine, out, root); err != nil {
					return err
				}
				if p.Rank() != root {
					return nil
				}
				got := getLongs(out)
				wantA := int64(n * (n + 1) / 2)
				wantB := int64(n * (n - 1))
				if got[0] != wantA || got[1] != wantB {
					return fmt.Errorf("reduce = %v, want [%d %d]", got, wantA, wantB)
				}
				return nil
			})
		}
	}
}

func TestReduceMaxMin(t *testing.T) {
	runAll(t, 5, func(p PT2PT) error {
		mine := longs(int64(p.Rank()), int64(-p.Rank()))
		outMax := make([]byte, len(mine))
		if err := Reduce(p, OpMax, datatype.Long, mine, outMax, 0); err != nil {
			return err
		}
		outMin := make([]byte, len(mine))
		if err := Reduce(p, OpMin, datatype.Long, mine, outMin, 0); err != nil {
			return err
		}
		if p.Rank() == 0 {
			if v := getLongs(outMax); v[0] != 4 || v[1] != 0 {
				return fmt.Errorf("max = %v", v)
			}
			if v := getLongs(outMin); v[0] != 0 || v[1] != -4 {
				return fmt.Errorf("min = %v", v)
			}
		}
		return nil
	})
}

func TestAllreduce(t *testing.T) {
	for _, n := range worldSizes {
		runAll(t, n, func(p PT2PT) error {
			mine := longs(1, int64(p.Rank()))
			out := make([]byte, len(mine))
			if err := Allreduce(p, OpSum, datatype.Long, mine, out); err != nil {
				return err
			}
			got := getLongs(out)
			if got[0] != int64(n) || got[1] != int64(n*(n-1)/2) {
				return fmt.Errorf("rank %d: allreduce = %v", p.Rank(), got)
			}
			return nil
		})
	}
}

func TestAllreduceDouble(t *testing.T) {
	runAll(t, 8, func(p PT2PT) error {
		mine := make([]byte, 8)
		binary.LittleEndian.PutUint64(mine, uint64(0x3FF0000000000000)) // 1.0
		out := make([]byte, 8)
		if err := Allreduce(p, OpSum, datatype.Double, mine, out); err != nil {
			return err
		}
		if got := binary.LittleEndian.Uint64(out); got != 0x4020000000000000 { // 8.0
			return fmt.Errorf("sum of eight 1.0 = %x", got)
		}
		return nil
	})
}

func TestGatherScatter(t *testing.T) {
	for _, n := range worldSizes {
		runAll(t, n, func(p PT2PT) error {
			mine := []byte{byte(p.Rank()), byte(p.Rank() + 100)}
			all := make([]byte, 2*n)
			if err := Gather(p, mine, all, 0); err != nil {
				return err
			}
			if p.Rank() == 0 {
				for r := 0; r < n; r++ {
					if all[2*r] != byte(r) || all[2*r+1] != byte(r+100) {
						return fmt.Errorf("gather block %d = %v", r, all[2*r:2*r+2])
					}
				}
			}
			// Scatter it back; every rank must get its own block.
			back := make([]byte, 2)
			if err := Scatter(p, all, back, 0); err != nil {
				return err
			}
			if back[0] != byte(p.Rank()) || back[1] != byte(p.Rank()+100) {
				return fmt.Errorf("scatter got %v", back)
			}
			return nil
		})
	}
}

func TestAllgatherBothAlgorithms(t *testing.T) {
	algos := map[string]func(PT2PT, []byte, []byte) error{
		"ring":  Allgather,
		"bruck": AllgatherBruck,
	}
	for name, algo := range algos {
		for _, n := range worldSizes {
			runAll(t, n, func(p PT2PT) error {
				mine := []byte{byte(p.Rank() * 3), byte(p.Rank()*3 + 1)}
				all := make([]byte, 2*n)
				if err := algo(p, mine, all); err != nil {
					return err
				}
				for r := 0; r < n; r++ {
					if all[2*r] != byte(r*3) || all[2*r+1] != byte(r*3+1) {
						return fmt.Errorf("%s rank %d block %d = %v", name, p.Rank(), r, all[2*r:2*r+2])
					}
				}
				return nil
			})
		}
	}
}

func TestAlltoall(t *testing.T) {
	for _, n := range worldSizes {
		runAll(t, n, func(p PT2PT) error {
			send := make([]byte, n)
			for r := 0; r < n; r++ {
				send[r] = byte(p.Rank()*16 + r) // block for rank r
			}
			recv := make([]byte, n)
			if err := Alltoall(p, send, recv); err != nil {
				return err
			}
			for r := 0; r < n; r++ {
				if recv[r] != byte(r*16+p.Rank()) {
					return fmt.Errorf("rank %d block %d = %d", p.Rank(), r, recv[r])
				}
			}
			return nil
		})
	}
}

func TestReduceScatterBlock(t *testing.T) {
	const n = 4
	runAll(t, n, func(p PT2PT) error {
		send := longs(1, 2, 3, 4) // one long per destination rank
		recv := make([]byte, 8)
		if err := ReduceScatterBlock(p, OpSum, datatype.Long, send, recv); err != nil {
			return err
		}
		if got := getLongs(recv)[0]; got != int64(n*(p.Rank()+1)) {
			return fmt.Errorf("rank %d got %d", p.Rank(), got)
		}
		return nil
	})
}

func TestApplyOps(t *testing.T) {
	cases := []struct {
		op   Op
		a, b int64
		want int64
	}{
		{OpSum, 3, 4, 7},
		{OpProd, 3, 4, 12},
		{OpMax, 3, 4, 4},
		{OpMin, 3, 4, 3},
		{OpLAnd, 1, 0, 0},
		{OpLOr, 1, 0, 1},
		{OpBAnd, 6, 3, 2},
		{OpBOr, 6, 3, 7},
		{OpReplace, 6, 3, 3},
		{OpNoOp, 6, 3, 6},
	}
	for _, c := range cases {
		dst := longs(c.a)
		if err := Apply(c.op, datatype.Long, dst, longs(c.b)); err != nil {
			t.Fatalf("%v: %v", c.op, err)
		}
		if got := getLongs(dst)[0]; got != c.want {
			t.Errorf("%v(%d,%d) = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestApplyRejectsBadCombos(t *testing.T) {
	if err := Apply(OpBAnd, datatype.Double, make([]byte, 8), make([]byte, 8)); err == nil {
		t.Error("bitwise op on double accepted")
	}
	ct, _ := datatype.NewContiguous(2, datatype.Int)
	ct.Commit()
	if err := Apply(OpSum, ct, make([]byte, 8), make([]byte, 8)); err == nil {
		t.Error("derived type accepted by Apply")
	}
	if err := Apply(OpSum, datatype.Int, make([]byte, 8), make([]byte, 4)); err == nil {
		t.Error("mismatched buffers accepted")
	}
	if err := Apply(OpSum, datatype.Int, make([]byte, 6), make([]byte, 6)); err == nil {
		t.Error("non-multiple buffer accepted")
	}
}

func TestApplyAllTypes(t *testing.T) {
	types := []*datatype.Type{datatype.Byte, datatype.Char, datatype.Short, datatype.Int, datatype.Long, datatype.Float, datatype.Double}
	for _, ty := range types {
		dst := make([]byte, ty.Size())
		src := make([]byte, ty.Size())
		if err := Apply(OpSum, ty, dst, src); err != nil {
			t.Errorf("OpSum on %s: %v", ty.Name(), err)
		}
	}
}

// Property: allreduce(SUM) over random contributions equals the local
// sum of all contributions, on every rank, for random world sizes.
func TestAllreduceSumProperty(t *testing.T) {
	f := func(sz uint8, vals [16]int32) bool {
		n := int(sz%7) + 1
		var want int64
		for r := 0; r < n; r++ {
			want += int64(vals[r])
		}
		m := newMesh(n)
		results := make([]int64, n)
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				out := make([]byte, 8)
				if err := Allreduce(m.port(r), OpSum, datatype.Long, longs(int64(vals[r])), out); err != nil {
					return
				}
				results[r] = getLongs(out)[0]
			}(r)
		}
		wg.Wait()
		for r := 0; r < n; r++ {
			if results[r] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: bcast delivers the root's exact bytes for random payloads,
// sizes, and roots.
func TestBcastProperty(t *testing.T) {
	f := func(sz, rt uint8, payload []byte) bool {
		n := int(sz%6) + 1
		root := int(rt) % n
		if len(payload) == 0 {
			payload = []byte{0}
		}
		m := newMesh(n)
		ok := make([]bool, n)
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				buf := make([]byte, len(payload))
				if r == root {
					copy(buf, payload)
				}
				if err := Bcast(m.port(r), buf, root); err != nil {
					return
				}
				ok[r] = bytes.Equal(buf, payload)
			}(r)
		}
		wg.Wait()
		for _, o := range ok {
			if !o {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
