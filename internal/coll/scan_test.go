package coll

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"gompi/internal/datatype"
)

func TestScanInclusive(t *testing.T) {
	for _, n := range worldSizes {
		runAll(t, n, func(p PT2PT) error {
			mine := longs(int64(p.Rank() + 1))
			out := make([]byte, 8)
			if err := Scan(p, OpSum, datatype.Long, mine, out); err != nil {
				return err
			}
			r := p.Rank() + 1
			want := int64(r * (r + 1) / 2)
			if got := getLongs(out)[0]; got != want {
				return fmt.Errorf("rank %d scan = %d, want %d", p.Rank(), got, want)
			}
			return nil
		})
	}
}

func TestScanNonCommutativeOrder(t *testing.T) {
	// MPI_SCAN folds in rank order; check with a min/max mix that would
	// expose misordering of operands for MPI_MIN (commutative but
	// verify values anyway) and with rank-dependent values.
	runAll(t, 5, func(p PT2PT) error {
		mine := longs(int64(10 - p.Rank()))
		out := make([]byte, 8)
		if err := Scan(p, OpMin, datatype.Long, mine, out); err != nil {
			return err
		}
		want := int64(10 - p.Rank()) // values decrease with rank: min = own
		if got := getLongs(out)[0]; got != want {
			return fmt.Errorf("rank %d min-scan = %d, want %d", p.Rank(), got, want)
		}
		return nil
	})
}

func TestExscan(t *testing.T) {
	for _, n := range worldSizes {
		runAll(t, n, func(p PT2PT) error {
			mine := longs(int64(p.Rank() + 1))
			out := longs(-99) // sentinel: rank 0 must keep it
			if err := Exscan(p, OpSum, datatype.Long, mine, out); err != nil {
				return err
			}
			got := getLongs(out)[0]
			if p.Rank() == 0 {
				if got != -99 {
					return fmt.Errorf("rank 0 exscan touched recv: %d", got)
				}
				return nil
			}
			r := p.Rank()
			want := int64(r * (r + 1) / 2)
			if got != want {
				return fmt.Errorf("rank %d exscan = %d, want %d", p.Rank(), got, want)
			}
			return nil
		})
	}
}

func TestGathervScatterv(t *testing.T) {
	const n = 4
	runAll(t, n, func(p PT2PT) error {
		// Rank r contributes r+1 bytes of value r.
		mine := bytes.Repeat([]byte{byte(p.Rank())}, p.Rank()+1)
		counts := []int{1, 2, 3, 4}
		displs := []int{0, 1, 3, 6}
		total := 10
		recv := make([]byte, total)
		if err := Gatherv(p, mine, recv, counts, displs, 0); err != nil {
			return err
		}
		if p.Rank() == 0 {
			want := []byte{0, 1, 1, 2, 2, 2, 3, 3, 3, 3}
			if !bytes.Equal(recv, want) {
				return fmt.Errorf("gatherv = %v", recv)
			}
		}
		// Scatter it back.
		back := make([]byte, p.Rank()+1)
		if err := Scatterv(p, recv, counts, displs, back, 0); err != nil {
			return err
		}
		if !bytes.Equal(back, mine) {
			return fmt.Errorf("rank %d scatterv = %v", p.Rank(), back)
		}
		return nil
	})
}

func TestGathervValidatesTables(t *testing.T) {
	runAll(t, 2, func(p PT2PT) error {
		if p.Rank() == 0 {
			err := Gatherv(p, []byte{1}, make([]byte, 2), []int{1}, []int{0}, 0)
			if err == nil {
				return fmt.Errorf("short counts accepted")
			}
			// Drain the message rank 1 sent so the mesh is clean.
			buf := make([]byte, 1)
			if _, err := p.Recv(buf, 1, tagGatherv); err != nil {
				return err
			}
			return nil
		}
		return p.Send([]byte{1}, 0, tagGatherv)
	})
}

func TestAllgathervRing(t *testing.T) {
	for _, n := range worldSizes {
		counts := make([]int, n)
		displs := make([]int, n)
		total := 0
		for r := 0; r < n; r++ {
			counts[r] = r + 1
			displs[r] = total
			total += counts[r]
		}
		runAll(t, n, func(p PT2PT) error {
			mine := bytes.Repeat([]byte{byte(p.Rank() + 1)}, counts[p.Rank()])
			recv := make([]byte, total)
			if err := Allgatherv(p, mine, recv, counts, displs); err != nil {
				return err
			}
			for r := 0; r < n; r++ {
				for i := 0; i < counts[r]; i++ {
					if recv[displs[r]+i] != byte(r+1) {
						return fmt.Errorf("rank %d block %d = %v", p.Rank(), r, recv)
					}
				}
			}
			return nil
		})
	}
}

func TestUserOpRegistry(t *testing.T) {
	xor := CreateOp(func(in, inout []byte, count int, elem *datatype.Type) error {
		for i := range inout {
			inout[i] ^= in[i]
		}
		return nil
	}, true)
	if xor.String() == "MPI_OP_UNKNOWN" || xor.String() == "" {
		t.Fatalf("user op name %q", xor.String())
	}
	dst := []byte{0b1100}
	if err := Apply(xor, datatype.Byte, dst, []byte{0b1010}); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 0b0110 {
		t.Fatalf("xor apply = %b", dst[0])
	}
	// Unregistered user op id errors.
	if err := Apply(Op(250), datatype.Byte, dst, []byte{1}); err == nil {
		t.Fatal("unregistered op accepted")
	}
	// All predefined names render.
	for _, o := range []Op{OpSum, OpProd, OpMax, OpMin, OpLAnd, OpLOr, OpBAnd, OpBOr, OpReplace, OpNoOp} {
		if o.String() == "MPI_OP_UNKNOWN" {
			t.Errorf("op %d unnamed", o)
		}
	}
}

func TestUserOpInReduce(t *testing.T) {
	gcd := CreateOp(func(in, inout []byte, count int, elem *datatype.Type) error {
		a := getLongs(in)
		b := getLongs(inout)
		for i := range b {
			x, y := a[i], b[i]
			for y != 0 {
				x, y = y, x%y
			}
			copy(inout[8*i:], longs(x))
		}
		return nil
	}, true)
	runAll(t, 4, func(p PT2PT) error {
		mine := longs(int64(12 * (p.Rank() + 1))) // 12,24,36,48 -> gcd 12
		out := make([]byte, 8)
		if err := Reduce(p, gcd, datatype.Long, mine, out, 0); err != nil {
			return err
		}
		if p.Rank() == 0 && getLongs(out)[0] != 12 {
			return fmt.Errorf("gcd reduce = %d", getLongs(out)[0])
		}
		return nil
	})
}

func TestFloatOps(t *testing.T) {
	d := make([]byte, 8)
	binary.LittleEndian.PutUint64(d, math.Float64bits(2.5))
	s := make([]byte, 8)
	binary.LittleEndian.PutUint64(s, math.Float64bits(4.0))
	if err := Apply(OpProd, datatype.Double, d, s); err != nil {
		t.Fatal(err)
	}
	if got := math.Float64frombits(binary.LittleEndian.Uint64(d)); got != 10.0 {
		t.Fatalf("prod = %v", got)
	}
	if err := Apply(OpMin, datatype.Double, d, s); err != nil {
		t.Fatal(err)
	}
	if got := math.Float64frombits(binary.LittleEndian.Uint64(d)); got != 4.0 {
		t.Fatalf("min = %v", got)
	}
	// Float32 path.
	f1 := make([]byte, 4)
	binary.LittleEndian.PutUint32(f1, math.Float32bits(1.5))
	f2 := make([]byte, 4)
	binary.LittleEndian.PutUint32(f2, math.Float32bits(2.0))
	if err := Apply(OpMax, datatype.Float, f1, f2); err != nil {
		t.Fatal(err)
	}
	if got := math.Float32frombits(binary.LittleEndian.Uint32(f1)); got != 2.0 {
		t.Fatalf("fmax = %v", got)
	}
}
