package coll

import (
	"fmt"

	"gompi/internal/datatype"
)

// Tags for the v-collectives and scans.
const (
	tagScan = iota + 20
	tagGatherv
	tagScatterv
	tagAllgatherv
)

// Scan computes the inclusive prefix reduction: rank r receives the
// fold of contributions from ranks 0..r (MPI_SCAN). Linear-chain
// algorithm: receive the running prefix from the left, fold, forward.
func Scan(p PT2PT, op Op, elem *datatype.Type, contribution, recv []byte) error {
	rank, size := p.Rank(), p.Size()
	copy(recv, contribution)
	if rank > 0 {
		prev := make([]byte, len(contribution))
		if _, err := p.Recv(prev, rank-1, tagScan); err != nil {
			return err
		}
		// recv = prev OP mine, in rank order (prefix semantics).
		tmp := append([]byte(nil), prev...)
		if err := Apply(op, elem, tmp, recv); err != nil {
			return err
		}
		copy(recv, tmp)
	}
	if rank < size-1 {
		if err := p.Send(recv, rank+1, tagScan); err != nil {
			return err
		}
	}
	return nil
}

// Exscan computes the exclusive prefix reduction: rank r receives the
// fold of ranks 0..r-1; rank 0's recv is left untouched, per
// MPI_EXSCAN.
func Exscan(p PT2PT, op Op, elem *datatype.Type, contribution, recv []byte) error {
	rank, size := p.Rank(), p.Size()
	// Running inclusive prefix travels the chain; each rank keeps what
	// it receives (the exclusive prefix) and forwards prefix OP mine.
	running := append([]byte(nil), contribution...)
	if rank > 0 {
		prev := make([]byte, len(contribution))
		if _, err := p.Recv(prev, rank-1, tagScan); err != nil {
			return err
		}
		copy(recv, prev)
		if err := Apply(op, elem, prev, contribution); err != nil {
			return err
		}
		running = prev
	}
	if rank < size-1 {
		if err := p.Send(running, rank+1, tagScan); err != nil {
			return err
		}
	}
	return nil
}

// Gatherv concentrates variable-size blocks on root (MPI_GATHERV):
// counts[r] bytes from rank r land at displs[r] in recv. counts and
// displs are significant only on the root; non-roots send len(mine)
// bytes.
func Gatherv(p PT2PT, mine []byte, recv []byte, counts, displs []int, root int) error {
	rank, size := p.Rank(), p.Size()
	if rank != root {
		return p.Send(mine, root, tagGatherv)
	}
	if len(counts) != size || len(displs) != size {
		return fmt.Errorf("coll: gatherv counts/displs length %d/%d for %d ranks", len(counts), len(displs), size)
	}
	copy(recv[displs[rank]:displs[rank]+counts[rank]], mine)
	for r := 0; r < size; r++ {
		if r == rank {
			continue
		}
		n, err := p.Recv(recv[displs[r]:displs[r]+counts[r]], r, tagGatherv)
		if err != nil {
			return err
		}
		if n != counts[r] {
			return fmt.Errorf("coll: gatherv rank %d sent %d bytes, expected %d", r, n, counts[r])
		}
	}
	return nil
}

// Scatterv distributes variable-size blocks from root (MPI_SCATTERV):
// rank r receives counts[r] bytes taken from displs[r] of send. mine
// must hold the caller's count.
func Scatterv(p PT2PT, send []byte, counts, displs []int, mine []byte, root int) error {
	rank, size := p.Rank(), p.Size()
	if rank != root {
		_, err := p.Recv(mine, root, tagScatterv)
		return err
	}
	if len(counts) != size || len(displs) != size {
		return fmt.Errorf("coll: scatterv counts/displs length %d/%d for %d ranks", len(counts), len(displs), size)
	}
	for r := 0; r < size; r++ {
		blk := send[displs[r] : displs[r]+counts[r]]
		if r == rank {
			copy(mine, blk)
			continue
		}
		if err := p.Send(blk, r, tagScatterv); err != nil {
			return err
		}
	}
	return nil
}

// Allgatherv concentrates variable-size blocks everywhere
// (MPI_ALLGATHERV): ring algorithm over the full count/displacement
// tables, which every rank supplies identically.
func Allgatherv(p PT2PT, mine []byte, recv []byte, counts, displs []int) error {
	rank, size := p.Rank(), p.Size()
	if len(counts) != size || len(displs) != size {
		return fmt.Errorf("coll: allgatherv counts/displs length %d/%d for %d ranks", len(counts), len(displs), size)
	}
	if len(mine) != counts[rank] {
		return fmt.Errorf("coll: allgatherv rank %d contributes %d bytes, counts say %d", rank, len(mine), counts[rank])
	}
	copy(recv[displs[rank]:displs[rank]+counts[rank]], mine)
	right := (rank + 1) % size
	left := (rank - 1 + size) % size
	for step := 0; step < size-1; step++ {
		sendBlock := (rank - step + size) % size
		recvBlock := (rank - step - 1 + size) % size
		if err := p.Send(recv[displs[sendBlock]:displs[sendBlock]+counts[sendBlock]], right, tagAllgatherv); err != nil {
			return err
		}
		if _, err := p.Recv(recv[displs[recvBlock]:displs[recvBlock]+counts[recvBlock]], left, tagAllgatherv); err != nil {
			return err
		}
	}
	return nil
}
