package coll

import (
	"fmt"

	"gompi/internal/datatype"
)

// PT2PT is the transport the collective algorithms run over: blocking
// matched send/recv on the communicator's collective context. The
// public MPI layer adapts a device to this interface, so the algorithms
// here are device-independent (the "machine-independent collectives" of
// the MPICH MPI layer).
type PT2PT interface {
	Rank() int
	Size() int
	// Send transmits data to dest with the given tag. It is an eager
	// send: it returns once the buffer is reusable and never blocks
	// waiting for the receiver — the algorithms rely on this for
	// deadlock freedom.
	Send(data []byte, dest, tag int) error
	// Recv blocks until a message from src with the given tag arrives
	// and returns its length.
	Recv(buf []byte, src, tag int) (int, error)
}

// Tags isolating the algorithms from one another within the collective
// context.
const (
	tagBarrier = iota + 1
	tagBcast
	tagReduce
	tagAllreduce
	tagGather
	tagScatter
	tagAllgather
	tagAlltoall
	tagRedScat
)

// Barrier blocks until all ranks have entered (dissemination
// algorithm: ceil(log2 P) rounds of pairwise messages).
func Barrier(p PT2PT) error {
	rank, size := p.Rank(), p.Size()
	if size == 1 {
		return nil
	}
	var token [1]byte
	for dist := 1; dist < size; dist *= 2 {
		to := (rank + dist) % size
		from := (rank - dist + size) % size
		if err := p.Send(token[:], to, tagBarrier); err != nil {
			return err
		}
		if _, err := p.Recv(token[:], from, tagBarrier); err != nil {
			return err
		}
	}
	return nil
}

// Bcast distributes root's buf to all ranks (binomial tree).
func Bcast(p PT2PT, buf []byte, root int) error {
	rank, size := p.Rank(), p.Size()
	if size == 1 {
		return nil
	}
	// Rotate so the root is virtual rank 0.
	vrank := (rank - root + size) % size

	// Receive from parent.
	if vrank != 0 {
		parent := (vrank&(vrank-1) + root) % size
		if _, err := p.Recv(buf, parent, tagBcast); err != nil {
			return err
		}
	}
	// Forward to children: for the lowest set bit b of vrank (or size
	// for vrank 0), children are vrank+2^k for 2^k < b.
	limit := lowbit(vrank)
	if vrank == 0 {
		limit = nextPow2(size)
	}
	for m := limit / 2; m >= 1; m /= 2 {
		child := vrank + m
		if child < size {
			if err := p.Send(buf, (child+root)%size, tagBcast); err != nil {
				return err
			}
		}
	}
	return nil
}

// Reduce folds each rank's contribution of count elements of elem into
// recv on root (binomial tree). contribution and recv may alias on the
// root. recv is ignored on non-roots. Non-commutative operators route
// to the rank-ordered chain: the binomial tree folds partials in tree
// order, which is only correct when operand order does not matter.
func Reduce(p PT2PT, op Op, elem *datatype.Type, contribution, recv []byte, root int) error {
	if !Commutative(op) {
		return ReduceChain(p, op, elem, contribution, recv, root)
	}
	rank, size := p.Rank(), p.Size()
	acc := append([]byte(nil), contribution...) // running partial
	vrank := (rank - root + size) % size
	tmp := make([]byte, len(contribution))

	for m := 1; m < size; m *= 2 {
		if vrank&m != 0 {
			parent := ((vrank - m) + root) % size
			if err := p.Send(acc, parent, tagReduce); err != nil {
				return err
			}
			return nil // leaf done
		}
		childV := vrank + m
		if childV < size {
			child := (childV + root) % size
			if _, err := p.Recv(tmp, child, tagReduce); err != nil {
				return err
			}
			// Fold the child's partial into ours. Children hold
			// higher virtual ranks; for non-commutative user ops MPI
			// prescribes rank order, but all predefined ops here are
			// commutative and associative (modulo FP rounding).
			if err := Apply(op, elem, acc, tmp); err != nil {
				return err
			}
		}
	}
	if rank == root {
		copy(recv, acc)
	}
	return nil
}

// Allreduce folds every rank's contribution and leaves the result in
// recv on all ranks. Power-of-two worlds use recursive doubling; other
// sizes fall back to reduce+bcast, as MPICH's machine-independent layer
// does for small messages. Non-commutative operators take the
// rank-ordered reduce followed by a broadcast: recursive doubling
// interleaves operand order.
func Allreduce(p PT2PT, op Op, elem *datatype.Type, contribution, recv []byte) error {
	size := p.Size()
	if !Commutative(op) {
		if err := ReduceChain(p, op, elem, contribution, recv, 0); err != nil {
			return err
		}
		return Bcast(p, recv, 0)
	}
	if size&(size-1) == 0 {
		return allreduceRecursiveDoubling(p, op, elem, contribution, recv)
	}
	if err := Reduce(p, op, elem, contribution, recv, 0); err != nil {
		return err
	}
	return Bcast(p, recv, 0)
}

func allreduceRecursiveDoubling(p PT2PT, op Op, elem *datatype.Type, contribution, recv []byte) error {
	rank, size := p.Rank(), p.Size()
	copy(recv, contribution)
	tmp := make([]byte, len(contribution))
	for m := 1; m < size; m *= 2 {
		peer := rank ^ m
		// Lower rank sends first to keep the pairwise exchange
		// deadlock-free on bounded transports.
		if rank < peer {
			if err := p.Send(recv, peer, tagAllreduce); err != nil {
				return err
			}
			if _, err := p.Recv(tmp, peer, tagAllreduce); err != nil {
				return err
			}
		} else {
			if _, err := p.Recv(tmp, peer, tagAllreduce); err != nil {
				return err
			}
			if err := p.Send(recv, peer, tagAllreduce); err != nil {
				return err
			}
		}
		if err := Apply(op, elem, recv, tmp); err != nil {
			return err
		}
	}
	return nil
}

// ReduceChain folds contributions in strict rank order: rank P-1 sends
// its value down; each rank r computes v_r OP partial_{r+1} and passes
// it on, so rank 0 ends with v_0 OP (v_1 OP (... OP v_{P-1})) — operand
// order preserved, association right-to-left, which equals the standard
// left-to-right fold for the associative operators MPI requires. The
// result lands in recv on root (forwarded from rank 0 when root != 0).
// This is the algorithm MPI prescribes for non-commutative operators.
func ReduceChain(p PT2PT, op Op, elem *datatype.Type, contribution, recv []byte, root int) error {
	rank, size := p.Rank(), p.Size()
	if size == 1 {
		copy(recv, contribution)
		return nil
	}
	// Rank P-1 starts the chain with its raw contribution.
	if rank == size-1 {
		if err := p.Send(contribution, rank-1, tagReduce); err != nil {
			return err
		}
	} else {
		tmp := make([]byte, len(contribution))
		if _, err := p.Recv(tmp, rank+1, tagReduce); err != nil {
			return err
		}
		// Apply computes dst = src OP dst; with dst holding the partial
		// from above and src the local value, operand order is v_rank OP
		// partial — exactly the rank-ordered fold.
		if err := Apply(op, elem, tmp, contribution); err != nil {
			return err
		}
		switch {
		case rank > 0:
			if err := p.Send(tmp, rank-1, tagReduce); err != nil {
				return err
			}
		case root == 0:
			copy(recv, tmp)
			return nil
		default:
			if err := p.Send(tmp, root, tagReduce); err != nil {
				return err
			}
		}
	}
	if rank == root && root != 0 {
		if _, err := p.Recv(recv, 0, tagReduce); err != nil {
			return err
		}
	}
	return nil
}

// Gather concentrates each rank's block (len(mine) bytes, equal
// everywhere) into recv on root, ordered by rank. recv is ignored on
// non-roots.
func Gather(p PT2PT, mine, recv []byte, root int) error {
	rank, size := p.Rank(), p.Size()
	if rank != root {
		return p.Send(mine, root, tagGather)
	}
	bs := len(mine)
	if len(recv) < bs*size {
		return fmt.Errorf("coll: gather recv buffer %d < %d", len(recv), bs*size)
	}
	copy(recv[rank*bs:], mine)
	for r := 0; r < size; r++ {
		if r == rank {
			continue
		}
		if _, err := p.Recv(recv[r*bs:(r+1)*bs], r, tagGather); err != nil {
			return err
		}
	}
	return nil
}

// Scatter distributes root's send buffer (size equal blocks) so each
// rank receives its block in mine. send is ignored on non-roots.
func Scatter(p PT2PT, send, mine []byte, root int) error {
	rank, size := p.Rank(), p.Size()
	bs := len(mine)
	if rank != root {
		_, err := p.Recv(mine, root, tagScatter)
		return err
	}
	if len(send) < bs*size {
		return fmt.Errorf("coll: scatter send buffer %d < %d", len(send), bs*size)
	}
	for r := 0; r < size; r++ {
		if r == rank {
			copy(mine, send[r*bs:(r+1)*bs])
			continue
		}
		if err := p.Send(send[r*bs:(r+1)*bs], r, tagScatter); err != nil {
			return err
		}
	}
	return nil
}

// Allgather concentrates every rank's equal-size block into recv on all
// ranks (ring algorithm: P-1 steps, each passing the newest block to
// the right neighbor).
func Allgather(p PT2PT, mine, recv []byte) error {
	rank, size := p.Rank(), p.Size()
	bs := len(mine)
	if len(recv) < bs*size {
		return fmt.Errorf("coll: allgather recv buffer %d < %d", len(recv), bs*size)
	}
	copy(recv[rank*bs:], mine)
	right := (rank + 1) % size
	left := (rank - 1 + size) % size
	for step := 0; step < size-1; step++ {
		sendBlock := (rank - step + size) % size
		recvBlock := (rank - step - 1 + size) % size
		// Send first: the PT2PT contract is an eager send that never
		// blocks, so send-before-receive is deadlock-free on any
		// topology (receive-first pairs can cycle).
		if err := p.Send(recv[sendBlock*bs:(sendBlock+1)*bs], right, tagAllgather); err != nil {
			return err
		}
		if _, err := p.Recv(recv[recvBlock*bs:(recvBlock+1)*bs], left, tagAllgather); err != nil {
			return err
		}
	}
	return nil
}

// AllgatherBruck is the log-step Bruck variant, kept alongside the ring
// for the algorithm ablation bench.
func AllgatherBruck(p PT2PT, mine, recv []byte) error {
	rank, size := p.Rank(), p.Size()
	bs := len(mine)
	if len(recv) < bs*size {
		return fmt.Errorf("coll: allgather recv buffer %d < %d", len(recv), bs*size)
	}
	// Work in a rotated temporary: block i holds rank+i's data.
	tmp := make([]byte, bs*size)
	copy(tmp[:bs], mine)
	have := 1
	for m := 1; m < size; m *= 2 {
		to := (rank - m + size) % size
		from := (rank + m) % size
		n := have
		if n > size-have {
			n = size - have
		}
		// Send first (eager transport): receive-first pairings can
		// form waiting cycles when the step distance has the same
		// parity as the ring.
		if err := p.Send(tmp[:n*bs], to, tagAllgather); err != nil {
			return err
		}
		if _, err := p.Recv(tmp[have*bs:(have+n)*bs], from, tagAllgather); err != nil {
			return err
		}
		have += n
	}
	// Unrotate.
	for i := 0; i < size; i++ {
		copy(recv[((rank+i)%size)*bs:((rank+i)%size+1)*bs], tmp[i*bs:(i+1)*bs])
	}
	return nil
}

// Alltoall exchanges equal-size blocks: block r of send goes to rank r,
// landing as block rank of its recv (pairwise exchange).
func Alltoall(p PT2PT, send, recv []byte) error {
	rank, size := p.Rank(), p.Size()
	bs := len(send) / size
	if len(recv) < bs*size {
		return fmt.Errorf("coll: alltoall recv buffer %d < %d", len(recv), bs*size)
	}
	copy(recv[rank*bs:(rank+1)*bs], send[rank*bs:(rank+1)*bs])
	pow2 := size&(size-1) == 0
	for step := 1; step < size; step++ {
		if pow2 {
			// XOR pairing is mutual: exchange with one peer per step.
			peer := rank ^ step
			sendBlk := send[peer*bs : (peer+1)*bs]
			recvBlk := recv[peer*bs : (peer+1)*bs]
			if rank < peer {
				if err := p.Send(sendBlk, peer, tagAlltoall); err != nil {
					return err
				}
				if _, err := p.Recv(recvBlk, peer, tagAlltoall); err != nil {
					return err
				}
			} else {
				if _, err := p.Recv(recvBlk, peer, tagAlltoall); err != nil {
					return err
				}
				if err := p.Send(sendBlk, peer, tagAlltoall); err != nil {
					return err
				}
			}
			continue
		}
		// Rotation: send to rank+step, receive from rank-step (the
		// pairing is not mutual, so the two transfers are independent;
		// eager sends keep this deadlock-free).
		to := (rank + step) % size
		from := (rank - step + size) % size
		if err := p.Send(send[to*bs:(to+1)*bs], to, tagAlltoall); err != nil {
			return err
		}
		if _, err := p.Recv(recv[from*bs:(from+1)*bs], from, tagAlltoall); err != nil {
			return err
		}
	}
	return nil
}

// ReduceScatterBlock reduces count*size elements and scatters equal
// blocks: rank r receives block r of the reduction.
func ReduceScatterBlock(p PT2PT, op Op, elem *datatype.Type, send, recv []byte) error {
	size := p.Size()
	full := make([]byte, len(send))
	if err := Reduce(p, op, elem, send, full, 0); err != nil {
		return err
	}
	bs := len(send) / size
	if len(recv) < bs {
		return fmt.Errorf("coll: reduce_scatter recv buffer %d < %d", len(recv), bs)
	}
	return Scatter(p, full, recv[:bs], 0)
}

// lowbit returns the lowest set bit of v, or 0 for v == 0.
func lowbit(v int) int { return v & -v }

// nextPow2 returns the smallest power of two >= v.
func nextPow2(v int) int {
	p := 1
	for p < v {
		p *= 2
	}
	return p
}
