// Package coll implements the machine-independent collectives of the
// MPI layer (binomial broadcast/reduce, recursive-doubling allreduce,
// dissemination barrier, ring and Bruck allgathers, pairwise alltoall)
// over a minimal point-to-point interface, plus the predefined
// reduction operators shared with one-sided accumulate. Algorithms are
// written exactly once and run over any device, matching MPICH's
// layering.
package coll

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"gompi/internal/datatype"
)

// Op is a predefined reduction operator.
type Op uint8

// Predefined operators.
const (
	OpSum Op = iota
	OpProd
	OpMax
	OpMin
	OpLAnd
	OpLOr
	OpBAnd
	OpBOr
	OpReplace // MPI_REPLACE (accumulate only)
	OpNoOp    // MPI_NO_OP (get_accumulate only)

	// opUserBase is the first user-defined operator id
	// (MPI_OP_CREATE).
	opUserBase Op = 128
)

// String returns the MPI name of the operator.
func (o Op) String() string {
	if o >= opUserBase {
		return fmt.Sprintf("MPI_OP_USER(%d)", o-opUserBase)
	}
	switch o {
	case OpSum:
		return "MPI_SUM"
	case OpProd:
		return "MPI_PROD"
	case OpMax:
		return "MPI_MAX"
	case OpMin:
		return "MPI_MIN"
	case OpLAnd:
		return "MPI_LAND"
	case OpLOr:
		return "MPI_LOR"
	case OpBAnd:
		return "MPI_BAND"
	case OpBOr:
		return "MPI_BOR"
	case OpReplace:
		return "MPI_REPLACE"
	case OpNoOp:
		return "MPI_NO_OP"
	default:
		return "MPI_OP_UNKNOWN"
	}
}

// ErrBadOp reports an operator/datatype combination outside the MPI
// predefined table.
var ErrBadOp = errors.New("coll: invalid op/datatype combination")

// UserFunc is a user-defined reduction: fold in into inout elementwise
// for count elements of elem (MPI_User_function). It must be
// associative; commutativity is declared at CreateOp time, and the
// reduction algorithms honor the declaration (MPI_Op_create's commute
// argument).
type UserFunc func(in, inout []byte, count int, elem *datatype.Type) error

// userOps is the process-global registry of created operators. In this
// in-process world every rank shares the table; registration happens
// before communication, so a mutex suffices.
var userOps struct {
	mu      sync.Mutex
	fns     []UserFunc
	commute []bool
}

// CreateOp registers a user-defined reduction operator (MPI_OP_CREATE)
// and returns its handle. commute declares the operator commutative;
// non-commutative operators are folded in strict rank order by the
// reduction collectives, exactly as the MPI standard prescribes.
func CreateOp(fn UserFunc, commute bool) Op {
	if fn == nil {
		panic("coll: nil user op")
	}
	userOps.mu.Lock()
	defer userOps.mu.Unlock()
	userOps.fns = append(userOps.fns, fn)
	userOps.commute = append(userOps.commute, commute)
	return opUserBase + Op(len(userOps.fns)-1)
}

// Commutative reports whether op may be folded in arbitrary order.
// Every predefined operator is commutative (modulo floating-point
// rounding, which MPI accepts); user operators carry the declaration
// made at CreateOp time.
func Commutative(op Op) bool {
	if op < opUserBase {
		return true
	}
	userOps.mu.Lock()
	defer userOps.mu.Unlock()
	i := int(op - opUserBase)
	if i >= len(userOps.commute) {
		return true
	}
	return userOps.commute[i]
}

func userOp(op Op) (UserFunc, bool) {
	if op < opUserBase {
		return nil, false
	}
	userOps.mu.Lock()
	defer userOps.mu.Unlock()
	i := int(op - opUserBase)
	if i >= len(userOps.fns) {
		return nil, false
	}
	return userOps.fns[i], true
}

// Apply folds src into dst elementwise: dst[i] = dst[i] OP src[i]. Both
// buffers hold count elements of the predefined type elem, in the
// little-endian layout the public API's conversion helpers produce.
func Apply(op Op, elem *datatype.Type, dst, src []byte) error {
	if !elem.Predefined() {
		return fmt.Errorf("%w: %s is not predefined", ErrBadOp, elem.Name())
	}
	if len(dst) != len(src) || len(dst)%elem.Size() != 0 {
		return fmt.Errorf("%w: buffer sizes %d/%d for %s", ErrBadOp, len(dst), len(src), elem.Name())
	}
	if op == OpNoOp {
		return nil
	}
	if fn, ok := userOp(op); ok {
		return fn(src, dst, len(dst)/elem.Size(), elem)
	}
	if op >= opUserBase {
		return fmt.Errorf("%w: unregistered user op %d", ErrBadOp, op)
	}
	if op == OpReplace {
		copy(dst, src)
		return nil
	}
	n := len(dst) / elem.Size()
	switch elem {
	case datatype.Byte, datatype.Char:
		for i := 0; i < n; i++ {
			dst[i] = byte(intOp(op, int64(dst[i]), int64(src[i])))
		}
	case datatype.Short:
		for i := 0; i < n; i++ {
			a := int16(binary.LittleEndian.Uint16(dst[2*i:]))
			b := int16(binary.LittleEndian.Uint16(src[2*i:]))
			binary.LittleEndian.PutUint16(dst[2*i:], uint16(intOp(op, int64(a), int64(b))))
		}
	case datatype.Int:
		for i := 0; i < n; i++ {
			a := int32(binary.LittleEndian.Uint32(dst[4*i:]))
			b := int32(binary.LittleEndian.Uint32(src[4*i:]))
			binary.LittleEndian.PutUint32(dst[4*i:], uint32(intOp(op, int64(a), int64(b))))
		}
	case datatype.Long:
		for i := 0; i < n; i++ {
			a := int64(binary.LittleEndian.Uint64(dst[8*i:]))
			b := int64(binary.LittleEndian.Uint64(src[8*i:]))
			binary.LittleEndian.PutUint64(dst[8*i:], uint64(intOp(op, a, b)))
		}
	case datatype.Float:
		if !floatOpOK(op) {
			return fmt.Errorf("%w: %s on MPI_FLOAT", ErrBadOp, op)
		}
		for i := 0; i < n; i++ {
			a := math.Float32frombits(binary.LittleEndian.Uint32(dst[4*i:]))
			b := math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
			binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(float32(floatOp(op, float64(a), float64(b)))))
		}
	case datatype.Double:
		if !floatOpOK(op) {
			return fmt.Errorf("%w: %s on MPI_DOUBLE", ErrBadOp, op)
		}
		for i := 0; i < n; i++ {
			a := math.Float64frombits(binary.LittleEndian.Uint64(dst[8*i:]))
			b := math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
			binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(floatOp(op, a, b)))
		}
	default:
		return fmt.Errorf("%w: unsupported type %s", ErrBadOp, elem.Name())
	}
	return nil
}

func intOp(op Op, a, b int64) int64 {
	switch op {
	case OpSum:
		return a + b
	case OpProd:
		return a * b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	case OpLAnd:
		return b2i(a != 0 && b != 0)
	case OpLOr:
		return b2i(a != 0 || b != 0)
	case OpBAnd:
		return a & b
	case OpBOr:
		return a | b
	default:
		return a
	}
}

func floatOpOK(op Op) bool {
	switch op {
	case OpSum, OpProd, OpMax, OpMin:
		return true
	}
	return false
}

func floatOp(op Op, a, b float64) float64 {
	switch op {
	case OpSum:
		return a + b
	case OpProd:
		return a * b
	case OpMax:
		return math.Max(a, b)
	default:
		return math.Min(a, b)
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
