// Package metrics is the per-rank observability registry: plain-field
// counters and high-water gauges updated by the transports, the
// matching engine, the pools, and the devices as traffic flows. The
// registry is deliberately allocation-free and unsynchronized — every
// counter is an int64 field bumped either on the owning rank's
// goroutine or under a lock the updating code already holds (the
// fabric endpoint lock for receive-side attribution), so enabling
// metrics costs a handful of adds on the hot paths and nothing else.
// Cross-rank aggregation happens only at teardown, when each rank's
// registry is snapshotted and merged (see DESIGN.md §6a).
package metrics

// PathStat counts messages and payload bytes on one transport path.
type PathStat struct {
	Msgs  int64 `json:"msgs"`
	Bytes int64 `json:"bytes"`
}

// Note records one message of n payload bytes.
func (p *PathStat) Note(n int) {
	p.Msgs++
	p.Bytes += int64(n)
}

// add folds o into p.
func (p *PathStat) add(o PathStat) {
	p.Msgs += o.Msgs
	p.Bytes += o.Bytes
}

// NumPoolClasses is the number of size classes the fabric's payload
// buffer pool keeps (fabric asserts its class table matches).
const NumPoolClasses = 4

// Rank is one rank's live registry. Writers touch the fields directly
// (the same idiom as match.Engine's Searches counter); readers take a
// Snapshot. The zero value is ready to use.
type Rank struct {
	// Transport paths. Self-loop traffic is counted once, at delivery.
	// Send-side counters accrue on the sending rank, receive-side
	// counters on the receiving rank, so summing a path's send bytes
	// across ranks must equal the sum of its receive bytes.
	Self    PathStat
	ShmSend PathStat
	ShmRecv PathStat
	NetSend PathStat
	NetRecv PathStat
	// Protocol split of netmod sends: eager vs rendezvous, decided by
	// the fabric profile's eager limit at injection.
	Eager PathStat
	Rndv  PathStat
	// Active messages (RMA fallback on ch4; everything on the CH3-style
	// baseline rides eager AM packets as well).
	AmSend PathStat
	AmRecv PathStat

	// Matching-engine counters, stored (not accumulated) from the
	// engine's own counters when a snapshot is taken. BinHits are
	// matches found through the per-(ctx,src) bin organization;
	// WildHits are matches found on the wildcard/global walk (which is
	// every match in Linear mode).
	MatchBinOps   int64
	MatchSearches int64
	MatchBinHits  int64
	MatchWildHits int64

	// Queue-depth high waters, updated as entries are enqueued.
	UnexpectedMax int64
	PostedMax     int64

	// Payload buffer pool, per size class, plus buffers too large for
	// any class (allocated and dropped, never pooled).
	PoolHits     [NumPoolClasses]int64
	PoolMisses   [NumPoolClasses]int64
	PoolOversize int64

	// Request-object recycling: total pool gets and how many reused a
	// freed request instead of allocating.
	ReqAllocs int64
	ReqReuses int64

	// One-sided operation counts, at the device ADI entry.
	RmaPuts    int64
	RmaGets    int64
	RmaAccs    int64
	RmaGetAccs int64
}

// MaxUnexpected raises the unexpected-queue high water to n.
func (r *Rank) MaxUnexpected(n int) {
	if int64(n) > r.UnexpectedMax {
		r.UnexpectedMax = int64(n)
	}
}

// MaxPosted raises the posted-queue high water to n.
func (r *Rank) MaxPosted(n int) {
	if int64(n) > r.PostedMax {
		r.PostedMax = int64(n)
	}
}

// MatchStats is the snapshot of the matching-engine counters.
type MatchStats struct {
	BinOps        int64 `json:"bin_ops"`
	Searches      int64 `json:"searches"`
	BinHits       int64 `json:"bin_hits"`
	WildHits      int64 `json:"wildcard_hits"`
	UnexpectedMax int64 `json:"unexpected_max"`
	PostedMax     int64 `json:"posted_max"`
}

// PoolStats is the snapshot of the payload buffer pool.
type PoolStats struct {
	Hits     [NumPoolClasses]int64 `json:"hits"`
	Misses   [NumPoolClasses]int64 `json:"misses"`
	Oversize int64                 `json:"oversize"`
}

// ReqStats is the snapshot of request-object recycling.
type ReqStats struct {
	Allocs int64 `json:"allocs"`
	Reuses int64 `json:"reuses"`
}

// RmaStats is the snapshot of one-sided operation counts.
type RmaStats struct {
	Puts    int64 `json:"puts"`
	Gets    int64 `json:"gets"`
	Accs    int64 `json:"accumulates"`
	GetAccs int64 `json:"get_accumulates"`
}

// Snapshot is a frozen copy of a registry, grouped for JSON output.
type Snapshot struct {
	Self    PathStat   `json:"self"`
	ShmSend PathStat   `json:"shm_send"`
	ShmRecv PathStat   `json:"shm_recv"`
	NetSend PathStat   `json:"net_send"`
	NetRecv PathStat   `json:"net_recv"`
	Eager   PathStat   `json:"eager"`
	Rndv    PathStat   `json:"rendezvous"`
	AmSend  PathStat   `json:"am_send"`
	AmRecv  PathStat   `json:"am_recv"`
	Match   MatchStats `json:"match"`
	Pool    PoolStats  `json:"buffer_pool"`
	Req     ReqStats   `json:"request_pool"`
	Rma     RmaStats   `json:"rma"`
}

// Snapshot freezes the registry. Callers that maintain counters
// outside the registry (the devices' matching engines) fold them in
// first.
func (r *Rank) Snapshot() Snapshot {
	return Snapshot{
		Self:    r.Self,
		ShmSend: r.ShmSend,
		ShmRecv: r.ShmRecv,
		NetSend: r.NetSend,
		NetRecv: r.NetRecv,
		Eager:   r.Eager,
		Rndv:    r.Rndv,
		AmSend:  r.AmSend,
		AmRecv:  r.AmRecv,
		Match: MatchStats{
			BinOps:        r.MatchBinOps,
			Searches:      r.MatchSearches,
			BinHits:       r.MatchBinHits,
			WildHits:      r.MatchWildHits,
			UnexpectedMax: r.UnexpectedMax,
			PostedMax:     r.PostedMax,
		},
		Pool: PoolStats{Hits: r.PoolHits, Misses: r.PoolMisses, Oversize: r.PoolOversize},
		Req:  ReqStats{Allocs: r.ReqAllocs, Reuses: r.ReqReuses},
		Rma:  RmaStats{Puts: r.RmaPuts, Gets: r.RmaGets, Accs: r.RmaAccs, GetAccs: r.RmaGetAccs},
	}
}

// Merge folds o into s: counters sum, high-water gauges take the
// maximum (summing per-rank high waters would overstate any one
// queue's depth).
func (s Snapshot) Merge(o Snapshot) Snapshot {
	s.Self.add(o.Self)
	s.ShmSend.add(o.ShmSend)
	s.ShmRecv.add(o.ShmRecv)
	s.NetSend.add(o.NetSend)
	s.NetRecv.add(o.NetRecv)
	s.Eager.add(o.Eager)
	s.Rndv.add(o.Rndv)
	s.AmSend.add(o.AmSend)
	s.AmRecv.add(o.AmRecv)
	s.Match.BinOps += o.Match.BinOps
	s.Match.Searches += o.Match.Searches
	s.Match.BinHits += o.Match.BinHits
	s.Match.WildHits += o.Match.WildHits
	if o.Match.UnexpectedMax > s.Match.UnexpectedMax {
		s.Match.UnexpectedMax = o.Match.UnexpectedMax
	}
	if o.Match.PostedMax > s.Match.PostedMax {
		s.Match.PostedMax = o.Match.PostedMax
	}
	for i := range s.Pool.Hits {
		s.Pool.Hits[i] += o.Pool.Hits[i]
		s.Pool.Misses[i] += o.Pool.Misses[i]
	}
	s.Pool.Oversize += o.Pool.Oversize
	s.Req.Allocs += o.Req.Allocs
	s.Req.Reuses += o.Req.Reuses
	s.Rma.Puts += o.Rma.Puts
	s.Rma.Gets += o.Rma.Gets
	s.Rma.Accs += o.Rma.Accs
	s.Rma.GetAccs += o.Rma.GetAccs
	return s
}
