// Package metrics is the per-rank observability registry: counters and
// high-water gauges updated by the transports, the matching engine, the
// pools, and the devices as traffic flows. The registry is
// allocation-free; every counter is an int64 field updated with an
// atomic add, so it is safe both for the owning rank's goroutine and
// for peers attributing receive-side traffic — and, under
// MPI_THREAD_MULTIPLE, for several application goroutines driving one
// rank concurrently across different VCIs. Enabling metrics costs a few
// uncontended atomic adds on the hot paths and nothing else. Cross-rank
// aggregation happens only at teardown, when each rank's registry is
// snapshotted and merged (see DESIGN.md §6a).
package metrics

import (
	"sync/atomic"

	"gompi/internal/flight"
	"gompi/internal/hist"
)

// PathStat counts messages and payload bytes on one transport path.
type PathStat struct {
	Msgs  int64 `json:"msgs"`
	Bytes int64 `json:"bytes"`
}

// Note records one message of n payload bytes.
func (p *PathStat) Note(n int) {
	atomic.AddInt64(&p.Msgs, 1)
	atomic.AddInt64(&p.Bytes, int64(n))
}

// snap returns an atomically loaded copy.
func (p *PathStat) snap() PathStat {
	return PathStat{Msgs: atomic.LoadInt64(&p.Msgs), Bytes: atomic.LoadInt64(&p.Bytes)}
}

// add folds o into p (plain adds: snapshots are private values).
func (p *PathStat) add(o PathStat) {
	p.Msgs += o.Msgs
	p.Bytes += o.Bytes
}

// NumPoolClasses is the number of size classes the fabric's payload
// buffer pool keeps (fabric asserts its class table matches).
const NumPoolClasses = 4

// Collective-algorithm identifiers for the per-algorithm call/byte
// counters. The MPI layer notes one entry per collective call with the
// algorithm the selection logic chose, so the observability output
// shows not just that an Allreduce ran but which schedule it compiled
// to (and the bench harness can diff two-level against flat).
const (
	CollBarrierDissem = iota
	CollBcastBinomial
	CollBcastScatterAllgather
	CollBcastTwoLevel
	CollReduceBinomial
	CollReduceChain
	CollAllreduceRecDoubling
	CollAllreduceRedScatGather
	CollAllreduceTwoLevel
	CollAllreduceTwoLevelZC
	CollAllreduceReduceBcast
	CollAllgatherRing
	CollAllgatherBruck
	CollAlltoallPairwise
	CollAlltoallPosted
	CollGatherLinear
	CollScatterLinear
	CollRedScatBlock
	CollNeighborAllgather
	CollNeighborAlltoall
	CollNeighborAlltoallv
	NumCollAlgos
)

// CollAlgoNames maps algorithm ids to their display names (used as the
// JSON "algo" field of CollStat).
var CollAlgoNames = [NumCollAlgos]string{
	CollBarrierDissem:          "barrier/dissemination",
	CollBcastBinomial:          "bcast/binomial",
	CollBcastScatterAllgather:  "bcast/scatter-allgather",
	CollBcastTwoLevel:          "bcast/two-level",
	CollReduceBinomial:         "reduce/binomial",
	CollReduceChain:            "reduce/chain",
	CollAllreduceRecDoubling:   "allreduce/rdouble",
	CollAllreduceRedScatGather: "allreduce/rsag",
	CollAllreduceTwoLevel:      "allreduce/two-level",
	CollAllreduceTwoLevelZC:    "allreduce/two-level-zerocopy",
	CollAllreduceReduceBcast:   "allreduce/reduce-bcast",
	CollAllgatherRing:          "allgather/ring",
	CollAllgatherBruck:         "allgather/bruck",
	CollAlltoallPairwise:       "alltoall/pairwise",
	CollAlltoallPosted:         "alltoall/posted",
	CollGatherLinear:           "gather/linear",
	CollScatterLinear:          "scatter/linear",
	CollRedScatBlock:           "reduce_scatter/block",
	CollNeighborAllgather:      "neighbor_allgather/locality",
	CollNeighborAlltoall:       "neighbor_alltoall/locality",
	CollNeighborAlltoallv:      "neighbor_alltoallv/locality",
}

// Rank is one rank's live registry. Writers use the Note*/Max* methods
// (atomic adds and CAS maxima); readers take a Snapshot. The zero value
// is ready to use.
type Rank struct {
	// Transport paths. Self-loop traffic is counted once, at delivery.
	// Send-side counters accrue on the sending rank, receive-side
	// counters on the receiving rank, so summing a path's send bytes
	// across ranks must equal the sum of its receive bytes.
	Self    PathStat
	ShmSend PathStat
	ShmRecv PathStat
	NetSend PathStat
	NetRecv PathStat
	// Protocol split of netmod sends: eager vs rendezvous, decided by
	// the fabric profile's eager limit at injection.
	Eager PathStat
	Rndv  PathStat
	// Active messages (RMA fallback on ch4; everything on the CH3-style
	// baseline rides eager AM packets as well).
	AmSend PathStat
	AmRecv PathStat
	// Copy accounting for the intra-node paths. CopiesStaged counts
	// every intermediate staging copy a payload crossed (shm cell
	// copy-in, ring reassembly, unexpected-queue pool buffering);
	// CopiesDirect counts final copies into the posted user buffer.
	// An in-place handoff reduction notes neither — the payload was
	// folded where it lay. ShmHandoff counts messages (and payload
	// bytes lent) that took the zero-copy handoff path; it is a subset
	// of ShmSend, noted on the sending rank.
	CopiesStaged PathStat
	CopiesDirect PathStat
	ShmHandoff   PathStat

	// Matching-engine counters, stored (not accumulated) from the
	// engine's own counters when a snapshot is taken. BinHits are
	// matches found through the per-(ctx,src) bin organization;
	// WildHits are matches found on the wildcard/global walk (which is
	// every match in Linear mode).
	MatchBinOps   int64
	MatchSearches int64
	MatchBinHits  int64
	MatchWildHits int64

	// Queue-depth high waters, updated as entries are enqueued.
	UnexpectedMax int64
	PostedMax     int64

	// Payload buffer pool, per size class, plus buffers too large for
	// any class (allocated and dropped, never pooled).
	PoolHits     [NumPoolClasses]int64
	PoolMisses   [NumPoolClasses]int64
	PoolOversize int64

	// Request-object recycling: total pool gets and how many reused a
	// freed request instead of allocating.
	ReqAllocs int64
	ReqReuses int64

	// One-sided operation counts, at the device ADI entry.
	RmaPuts    int64
	RmaGets    int64
	RmaAccs    int64
	RmaGetAccs int64
	// Flush-based passive-target synchronization: flushes (all Flush
	// variants), single-epoch LockAll opens, and notified-access
	// tokens sent (PutNotify).
	RmaFlushes  int64
	RmaLockAlls int64
	RmaNotifies int64

	// Lazy peer-state materialization (the on-demand connection model):
	// PeersTouched counts distinct peers whose per-peer state (fabric
	// connection slot, shm ring) this rank materialized on first use;
	// PeerStateBytes is the modeled bytes of per-peer state currently
	// attributed to this rank — the number the MaxPeerBytes ceiling is
	// enforced against.
	PeersTouched   int64
	PeerStateBytes int64

	// Per-algorithm collective counters, noted at the MPI layer with
	// the algorithm the selection logic chose and the per-rank payload
	// bytes of the call.
	CollCalls [NumCollAlgos]int64
	CollBytes [NumCollAlgos]int64

	// Declared-shape communication counters. SchedCacheHits/Misses
	// count lookups in the per-communicator nbc schedule cache (a hit
	// replays a compiled schedule; a miss compiles one);
	// PartitionsReady counts Pready publications on partitioned sends.
	SchedCacheHits   int64
	SchedCacheMisses int64
	PartitionsReady  int64

	// Latency decomposition: log2-bucketed histograms over virtual
	// cycles at the message lifecycle points the paper's Figure 2
	// attributes time to. All hist.H operations are atomic, so peers
	// depositing into this rank's endpoint may record here directly.
	Lat Latency

	// Flight is the rank's always-on flight recorder: a fixed ring of
	// recent protocol events for post-mortem dumps (abort, error
	// teardown, watchdog trip). Living in the registry threads it
	// through every transport without new interfaces.
	Flight flight.Ring
}

// Latency holds one rank's span histograms. Each span is a difference
// of virtual clocks (cycles), observed at the point where the span
// closes:
//
//	PostMatch - receive posted until the matching message arrived
//	            (zero when the message was already waiting unexpected).
//	UnexRes   - message arrival until a receive consumed it off the
//	            unexpected queue (zero when it matched a posted receive
//	            on arrival).
//	RndvRTT   - rendezvous handshake round-trip charged at injection.
//	ReqLife   - request issue until completion was observed.
//	WaitPark  - virtual time a Wait jumped forward to reach an
//	            operation's completion (the park, in virtual cycles).
//	HandoffRTT- shm handoff descriptor publish until the sender observed
//	            the receiver's completion ack (buffer-reuse latency of
//	            the zero-copy path).
//	EpochFlush- access-epoch open until a flush completed inside it
//	            (epoch-open→flush, the passive-target working-set span).
//	NotifyWait- WaitNotify post until the notification token arrived
//	            (the notified-access round trip seen by the consumer).
type Latency struct {
	PostMatch  hist.H
	UnexRes    hist.H
	RndvRTT    hist.H
	ReqLife    hist.H
	WaitPark   hist.H
	HandoffRTT hist.H
	EpochFlush hist.H
	NotifyWait hist.H
}

// maxInt64 raises *p to n with a CAS loop.
func maxInt64(p *int64, n int64) {
	for {
		cur := atomic.LoadInt64(p)
		if n <= cur || atomic.CompareAndSwapInt64(p, cur, n) {
			return
		}
	}
}

// MaxUnexpected raises the unexpected-queue high water to n.
func (r *Rank) MaxUnexpected(n int) { maxInt64(&r.UnexpectedMax, int64(n)) }

// MaxPosted raises the posted-queue high water to n.
func (r *Rank) MaxPosted(n int) { maxInt64(&r.PostedMax, int64(n)) }

// NotePoolHit counts a buffer-pool hit in size class i.
func (r *Rank) NotePoolHit(i int) { atomic.AddInt64(&r.PoolHits[i], 1) }

// NotePoolMiss counts a buffer-pool miss in size class i.
func (r *Rank) NotePoolMiss(i int) { atomic.AddInt64(&r.PoolMisses[i], 1) }

// NotePoolOversize counts an unpoolable oversize buffer allocation.
func (r *Rank) NotePoolOversize() { atomic.AddInt64(&r.PoolOversize, 1) }

// NoteReqAlloc counts a request-pool get; reused says whether it came
// off the freelist.
func (r *Rank) NoteReqAlloc(reused bool) {
	atomic.AddInt64(&r.ReqAllocs, 1)
	if reused {
		atomic.AddInt64(&r.ReqReuses, 1)
	}
}

// NoteColl counts one collective call compiled to the given algorithm
// with n payload bytes on this rank.
func (r *Rank) NoteColl(algo int, n int64) {
	if algo < 0 || algo >= NumCollAlgos {
		return
	}
	atomic.AddInt64(&r.CollCalls[algo], 1)
	atomic.AddInt64(&r.CollBytes[algo], n)
}

// NoteSchedCache counts one schedule-cache lookup: hit replays a
// compiled schedule, miss compiles (and usually caches) a fresh one.
func (r *Rank) NoteSchedCache(hit bool) {
	if hit {
		atomic.AddInt64(&r.SchedCacheHits, 1)
	} else {
		atomic.AddInt64(&r.SchedCacheMisses, 1)
	}
}

// NotePartitionsReady counts n partition-ready publications on a
// partitioned send.
func (r *Rank) NotePartitionsReady(n int) {
	atomic.AddInt64(&r.PartitionsReady, int64(n))
}

// NoteRmaPut / NoteRmaGet / NoteRmaAcc / NoteRmaGetAcc count one-sided
// operations at the device ADI entry.
func (r *Rank) NoteRmaPut()    { atomic.AddInt64(&r.RmaPuts, 1) }
func (r *Rank) NoteRmaGet()    { atomic.AddInt64(&r.RmaGets, 1) }
func (r *Rank) NoteRmaAcc()    { atomic.AddInt64(&r.RmaAccs, 1) }
func (r *Rank) NoteRmaGetAcc() { atomic.AddInt64(&r.RmaGetAccs, 1) }

// NoteRmaFlush / NoteRmaLockAll / NoteRmaNotify count the flush-based
// synchronization primitives: any Flush variant, a single-epoch
// LockAll open, a notified-access token sent.
func (r *Rank) NoteRmaFlush()   { atomic.AddInt64(&r.RmaFlushes, 1) }
func (r *Rank) NoteRmaLockAll() { atomic.AddInt64(&r.RmaLockAlls, 1) }
func (r *Rank) NoteRmaNotify()  { atomic.AddInt64(&r.RmaNotifies, 1) }

// NotePeerState accounts the materialization of per-peer state: bytes
// of modeled state added (a connection slot, a shm ring), with newPeer
// set when this is the first state for that peer. Returns the rank's
// new per-peer state total so the caller can enforce a MaxPeerBytes
// ceiling without a second load.
func (r *Rank) NotePeerState(newPeer bool, bytes int64) int64 {
	if newPeer {
		atomic.AddInt64(&r.PeersTouched, 1)
	}
	return atomic.AddInt64(&r.PeerStateBytes, bytes)
}

// StoreMatch stores the matching-engine counters (devices fold their
// engines in before snapshotting).
func (r *Rank) StoreMatch(binOps, searches, binHits, wildHits int64) {
	atomic.StoreInt64(&r.MatchBinOps, binOps)
	atomic.StoreInt64(&r.MatchSearches, searches)
	atomic.StoreInt64(&r.MatchBinHits, binHits)
	atomic.StoreInt64(&r.MatchWildHits, wildHits)
}

// MatchStats is the snapshot of the matching-engine counters.
type MatchStats struct {
	BinOps        int64 `json:"bin_ops"`
	Searches      int64 `json:"searches"`
	BinHits       int64 `json:"bin_hits"`
	WildHits      int64 `json:"wildcard_hits"`
	UnexpectedMax int64 `json:"unexpected_max"`
	PostedMax     int64 `json:"posted_max"`
}

// PoolStats is the snapshot of the payload buffer pool.
type PoolStats struct {
	Hits     [NumPoolClasses]int64 `json:"hits"`
	Misses   [NumPoolClasses]int64 `json:"misses"`
	Oversize int64                 `json:"oversize"`
}

// ReqStats is the snapshot of request-object recycling.
type ReqStats struct {
	Allocs int64 `json:"allocs"`
	Reuses int64 `json:"reuses"`
}

// RmaStats is the snapshot of one-sided operation counts.
type RmaStats struct {
	Puts     int64 `json:"puts"`
	Gets     int64 `json:"gets"`
	Accs     int64 `json:"accumulates"`
	GetAccs  int64 `json:"get_accumulates"`
	Flushes  int64 `json:"flushes"`
	LockAlls int64 `json:"lock_alls"`
	Notifies int64 `json:"notifies"`
}

// PeerStats is the snapshot of lazy peer-state materialization. On a
// single-rank snapshot StateBytes == MaxStateBytes; a merge sums
// Touched and StateBytes across ranks but takes the per-rank maximum
// for MaxStateBytes — the high-water bytes/rank the memory ceiling is
// judged against.
type PeerStats struct {
	Touched       int64 `json:"touched"`
	StateBytes    int64 `json:"state_bytes"`
	MaxStateBytes int64 `json:"max_state_bytes"`
}

// SchedStats is the snapshot of the declared-shape counters: schedule
// cache lookups split hit/miss, and partitions published ready.
type SchedStats struct {
	CacheHits       int64 `json:"cache_hits"`
	CacheMisses     int64 `json:"cache_misses"`
	PartitionsReady int64 `json:"partitions_ready"`
}

// CollStat is one collective algorithm's aggregate: calls that
// compiled to it and their per-rank payload bytes.
type CollStat struct {
	Algo  string `json:"algo"`
	Calls int64  `json:"calls"`
	Bytes int64  `json:"bytes"`
}

// VCIStat is one virtual communication interface's receive-side
// traffic: tagged messages landed on it, their payload bytes, and the
// transport events (deposits, AMs, wakes) its event sequence counted.
// PostMatch is the per-VCI post→match latency distribution.
type VCIStat struct {
	Msgs      int64         `json:"msgs"`
	Bytes     int64         `json:"bytes"`
	Events    int64         `json:"events"`
	PostMatch hist.Snapshot `json:"post_match"`
}

// LatSnapshot is the frozen latency decomposition of one rank (or an
// aggregate when merged).
type LatSnapshot struct {
	PostMatch  hist.Snapshot `json:"post_match"`
	UnexRes    hist.Snapshot `json:"unexpected_residency"`
	RndvRTT    hist.Snapshot `json:"rendezvous_rtt"`
	ReqLife    hist.Snapshot `json:"request_lifetime"`
	WaitPark   hist.Snapshot `json:"wait_park"`
	HandoffRTT hist.Snapshot `json:"handoff_rtt"`
	EpochFlush hist.Snapshot `json:"epoch_flush"`
	NotifyWait hist.Snapshot `json:"notify_wait"`
}

// Snapshot is a frozen copy of a registry, grouped for JSON output.
type Snapshot struct {
	Self    PathStat `json:"self"`
	ShmSend PathStat `json:"shm_send"`
	ShmRecv PathStat `json:"shm_recv"`
	NetSend PathStat `json:"net_send"`
	NetRecv PathStat `json:"net_recv"`
	Eager   PathStat `json:"eager"`
	Rndv    PathStat `json:"rendezvous"`
	AmSend  PathStat `json:"am_send"`
	AmRecv  PathStat `json:"am_recv"`
	// Copy accounting (see Rank): staging copies, direct final copies,
	// and the handoff path's message/byte split.
	CopiesStaged PathStat    `json:"copies_staged"`
	CopiesDirect PathStat    `json:"copies_direct"`
	ShmHandoff   PathStat    `json:"shm_handoff"`
	Match        MatchStats  `json:"match"`
	Pool         PoolStats   `json:"buffer_pool"`
	Req          ReqStats    `json:"request_pool"`
	Rma          RmaStats    `json:"rma"`
	Peers        PeerStats   `json:"peer_state"`
	Sched        SchedStats  `json:"sched_cache"`
	Lat          LatSnapshot `json:"latency"`
	// VCIs is the per-virtual-interface receive-side split; empty on a
	// single-VCI endpoint snapshot only if the device never filled it.
	VCIs []VCIStat `json:"vcis,omitempty"`
	// Coll is the per-algorithm collective split, indexed by algorithm
	// id (CollAlgoNames order); empty when the rank ran no collectives.
	Coll []CollStat `json:"coll,omitempty"`
}

// Snapshot freezes the registry. Callers that maintain counters
// outside the registry (the devices' matching engines, the endpoint's
// per-VCI stats) fold them in first.
func (r *Rank) Snapshot() Snapshot {
	s := Snapshot{
		Self:         r.Self.snap(),
		ShmSend:      r.ShmSend.snap(),
		ShmRecv:      r.ShmRecv.snap(),
		NetSend:      r.NetSend.snap(),
		NetRecv:      r.NetRecv.snap(),
		Eager:        r.Eager.snap(),
		Rndv:         r.Rndv.snap(),
		AmSend:       r.AmSend.snap(),
		AmRecv:       r.AmRecv.snap(),
		CopiesStaged: r.CopiesStaged.snap(),
		CopiesDirect: r.CopiesDirect.snap(),
		ShmHandoff:   r.ShmHandoff.snap(),
		Match: MatchStats{
			BinOps:        atomic.LoadInt64(&r.MatchBinOps),
			Searches:      atomic.LoadInt64(&r.MatchSearches),
			BinHits:       atomic.LoadInt64(&r.MatchBinHits),
			WildHits:      atomic.LoadInt64(&r.MatchWildHits),
			UnexpectedMax: atomic.LoadInt64(&r.UnexpectedMax),
			PostedMax:     atomic.LoadInt64(&r.PostedMax),
		},
		Pool: PoolStats{Oversize: atomic.LoadInt64(&r.PoolOversize)},
		Req: ReqStats{
			Allocs: atomic.LoadInt64(&r.ReqAllocs),
			Reuses: atomic.LoadInt64(&r.ReqReuses),
		},
		Rma: RmaStats{
			Puts:     atomic.LoadInt64(&r.RmaPuts),
			Gets:     atomic.LoadInt64(&r.RmaGets),
			Accs:     atomic.LoadInt64(&r.RmaAccs),
			GetAccs:  atomic.LoadInt64(&r.RmaGetAccs),
			Flushes:  atomic.LoadInt64(&r.RmaFlushes),
			LockAlls: atomic.LoadInt64(&r.RmaLockAlls),
			Notifies: atomic.LoadInt64(&r.RmaNotifies),
		},
	}
	touched := atomic.LoadInt64(&r.PeersTouched)
	stateBytes := atomic.LoadInt64(&r.PeerStateBytes)
	s.Peers = PeerStats{Touched: touched, StateBytes: stateBytes, MaxStateBytes: stateBytes}
	s.Sched = SchedStats{
		CacheHits:       atomic.LoadInt64(&r.SchedCacheHits),
		CacheMisses:     atomic.LoadInt64(&r.SchedCacheMisses),
		PartitionsReady: atomic.LoadInt64(&r.PartitionsReady),
	}
	for i := range r.PoolHits {
		s.Pool.Hits[i] = atomic.LoadInt64(&r.PoolHits[i])
		s.Pool.Misses[i] = atomic.LoadInt64(&r.PoolMisses[i])
	}
	s.Lat = LatSnapshot{
		PostMatch:  r.Lat.PostMatch.Snapshot(),
		UnexRes:    r.Lat.UnexRes.Snapshot(),
		RndvRTT:    r.Lat.RndvRTT.Snapshot(),
		ReqLife:    r.Lat.ReqLife.Snapshot(),
		WaitPark:   r.Lat.WaitPark.Snapshot(),
		HandoffRTT: r.Lat.HandoffRTT.Snapshot(),
		EpochFlush: r.Lat.EpochFlush.Snapshot(),
		NotifyWait: r.Lat.NotifyWait.Snapshot(),
	}
	for i := 0; i < NumCollAlgos; i++ {
		calls := atomic.LoadInt64(&r.CollCalls[i])
		bytes := atomic.LoadInt64(&r.CollBytes[i])
		if calls == 0 && bytes == 0 {
			continue
		}
		if s.Coll == nil {
			s.Coll = make([]CollStat, NumCollAlgos)
			for j := range s.Coll {
				s.Coll[j].Algo = CollAlgoNames[j]
			}
		}
		s.Coll[i].Calls = calls
		s.Coll[i].Bytes = bytes
	}
	return s
}

// Merge folds o into s: counters sum, high-water gauges take the
// maximum (summing per-rank high waters would overstate any one
// queue's depth). Per-VCI stats merge element-wise, padding to the
// longer of the two (ranks may run with different VCI counts only in
// principle, but the merge should not silently drop data if they do).
func (s Snapshot) Merge(o Snapshot) Snapshot {
	s.Self.add(o.Self)
	s.ShmSend.add(o.ShmSend)
	s.ShmRecv.add(o.ShmRecv)
	s.NetSend.add(o.NetSend)
	s.NetRecv.add(o.NetRecv)
	s.Eager.add(o.Eager)
	s.Rndv.add(o.Rndv)
	s.AmSend.add(o.AmSend)
	s.AmRecv.add(o.AmRecv)
	s.CopiesStaged.add(o.CopiesStaged)
	s.CopiesDirect.add(o.CopiesDirect)
	s.ShmHandoff.add(o.ShmHandoff)
	s.Match.BinOps += o.Match.BinOps
	s.Match.Searches += o.Match.Searches
	s.Match.BinHits += o.Match.BinHits
	s.Match.WildHits += o.Match.WildHits
	if o.Match.UnexpectedMax > s.Match.UnexpectedMax {
		s.Match.UnexpectedMax = o.Match.UnexpectedMax
	}
	if o.Match.PostedMax > s.Match.PostedMax {
		s.Match.PostedMax = o.Match.PostedMax
	}
	for i := range s.Pool.Hits {
		s.Pool.Hits[i] += o.Pool.Hits[i]
		s.Pool.Misses[i] += o.Pool.Misses[i]
	}
	s.Pool.Oversize += o.Pool.Oversize
	s.Req.Allocs += o.Req.Allocs
	s.Req.Reuses += o.Req.Reuses
	s.Rma.Puts += o.Rma.Puts
	s.Rma.Gets += o.Rma.Gets
	s.Rma.Accs += o.Rma.Accs
	s.Rma.GetAccs += o.Rma.GetAccs
	s.Rma.Flushes += o.Rma.Flushes
	s.Rma.LockAlls += o.Rma.LockAlls
	s.Rma.Notifies += o.Rma.Notifies
	s.Peers.Touched += o.Peers.Touched
	s.Peers.StateBytes += o.Peers.StateBytes
	s.Sched.CacheHits += o.Sched.CacheHits
	s.Sched.CacheMisses += o.Sched.CacheMisses
	s.Sched.PartitionsReady += o.Sched.PartitionsReady
	if o.Peers.MaxStateBytes > s.Peers.MaxStateBytes {
		s.Peers.MaxStateBytes = o.Peers.MaxStateBytes
	}
	s.Lat.PostMatch.Merge(o.Lat.PostMatch)
	s.Lat.UnexRes.Merge(o.Lat.UnexRes)
	s.Lat.RndvRTT.Merge(o.Lat.RndvRTT)
	s.Lat.ReqLife.Merge(o.Lat.ReqLife)
	s.Lat.WaitPark.Merge(o.Lat.WaitPark)
	s.Lat.HandoffRTT.Merge(o.Lat.HandoffRTT)
	s.Lat.EpochFlush.Merge(o.Lat.EpochFlush)
	s.Lat.NotifyWait.Merge(o.Lat.NotifyWait)
	n := len(s.VCIs)
	if len(o.VCIs) > n {
		n = len(o.VCIs)
	}
	if n > 0 {
		vcis := make([]VCIStat, n)
		copy(vcis, s.VCIs)
		for i, v := range o.VCIs {
			vcis[i].Msgs += v.Msgs
			vcis[i].Bytes += v.Bytes
			vcis[i].Events += v.Events
			vcis[i].PostMatch.Merge(v.PostMatch)
		}
		s.VCIs = vcis
	}
	n = len(s.Coll)
	if len(o.Coll) > n {
		n = len(o.Coll)
	}
	if n > 0 {
		cs := make([]CollStat, n)
		copy(cs, s.Coll)
		for i, c := range o.Coll {
			if cs[i].Algo == "" {
				cs[i].Algo = c.Algo
			}
			cs[i].Calls += c.Calls
			cs[i].Bytes += c.Bytes
		}
		s.Coll = cs
	}
	return s
}
