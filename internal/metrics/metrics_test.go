package metrics

import (
	"encoding/json"
	"testing"
)

func TestNoteAndSnapshot(t *testing.T) {
	var r Rank
	r.NetSend.Note(100)
	r.NetSend.Note(28)
	r.Eager.Note(128)
	r.MaxUnexpected(5)
	r.MaxUnexpected(3) // must not lower the high water
	r.PoolHits[1]++
	r.ReqAllocs++
	r.ReqReuses++
	r.RmaPuts++

	s := r.Snapshot()
	if s.NetSend.Msgs != 2 || s.NetSend.Bytes != 128 {
		t.Errorf("NetSend = %+v, want {2 128}", s.NetSend)
	}
	if s.Match.UnexpectedMax != 5 {
		t.Errorf("UnexpectedMax = %d, want 5", s.Match.UnexpectedMax)
	}
	if s.Pool.Hits[1] != 1 || s.Req.Reuses != 1 || s.Rma.Puts != 1 {
		t.Errorf("snapshot dropped counters: %+v", s)
	}
}

func TestMerge(t *testing.T) {
	var a, b Rank
	a.ShmSend.Note(64)
	a.MaxUnexpected(7)
	b.ShmRecv.Note(64)
	b.MaxUnexpected(3)
	b.MatchBinHits = 2

	m := a.Snapshot().Merge(b.Snapshot())
	if m.ShmSend.Bytes != 64 || m.ShmRecv.Bytes != 64 {
		t.Errorf("merge lost path bytes: %+v", m)
	}
	if m.Match.UnexpectedMax != 7 {
		t.Errorf("merged UnexpectedMax = %d, want max(7,3)=7", m.Match.UnexpectedMax)
	}
	if m.Match.BinHits != 2 {
		t.Errorf("merged BinHits = %d, want 2", m.Match.BinHits)
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	var r Rank
	r.NetSend.Note(1)
	out, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(out, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"net_send", "shm_send", "match", "buffer_pool", "request_pool", "rma"} {
		if _, ok := m[key]; !ok {
			t.Errorf("snapshot JSON missing %q: %s", key, out)
		}
	}
}
