// Package topo implements MPI virtual process topologies: the
// Cartesian topology (MPI_CART_CREATE and friends) that structures the
// halo-exchange applications of the paper's evaluation, including the
// dimension factorization of MPI_DIMS_CREATE. A topology is pure
// bookkeeping over a communicator — rank-to-coordinate mappings and
// neighbor computation — so this package has no communication of its
// own.
package topo

import (
	"errors"
	"fmt"
)

// ErrBadTopo reports an invalid topology request.
var ErrBadTopo = errors.New("topo: invalid topology")

// ProcNull is the neighbor value at a non-periodic boundary
// (MPI_PROC_NULL).
const ProcNull = -2

// Cart is a Cartesian topology over ranks 0..Size-1 in row-major order
// (dimension 0 varies slowest, matching MPI).
type Cart struct {
	dims     []int
	periodic []bool
	size     int
}

// NewCart builds a topology with the given extents and periodicity.
func NewCart(dims []int, periodic []bool) (*Cart, error) {
	if len(dims) == 0 || len(dims) != len(periodic) {
		return nil, fmt.Errorf("%w: dims %v periodic %v", ErrBadTopo, dims, periodic)
	}
	size := 1
	for _, d := range dims {
		if d < 1 {
			return nil, fmt.Errorf("%w: dimension %d", ErrBadTopo, d)
		}
		size *= d
	}
	return &Cart{
		dims:     append([]int(nil), dims...),
		periodic: append([]bool(nil), periodic...),
		size:     size,
	}, nil
}

// Size returns the number of positions in the grid.
func (c *Cart) Size() int { return c.size }

// NDims returns the dimensionality.
func (c *Cart) NDims() int { return len(c.dims) }

// Dims returns a copy of the extents.
func (c *Cart) Dims() []int { return append([]int(nil), c.dims...) }

// Periodic reports whether dimension d wraps.
func (c *Cart) Periodic(d int) bool { return c.periodic[d] }

// Coords returns the coordinates of a rank (MPI_CART_COORDS).
func (c *Cart) Coords(rank int) ([]int, error) {
	if rank < 0 || rank >= c.size {
		return nil, fmt.Errorf("%w: rank %d", ErrBadTopo, rank)
	}
	coords := make([]int, len(c.dims))
	// Row-major: dimension 0 varies slowest.
	for d := len(c.dims) - 1; d >= 0; d-- {
		coords[d] = rank % c.dims[d]
		rank /= c.dims[d]
	}
	return coords, nil
}

// Rank returns the rank at the given coordinates (MPI_CART_RANK).
// Periodic dimensions wrap; out-of-range coordinates on non-periodic
// dimensions are an error.
func (c *Cart) Rank(coords []int) (int, error) {
	if len(coords) != len(c.dims) {
		return -1, fmt.Errorf("%w: %d coords for %d dims", ErrBadTopo, len(coords), len(c.dims))
	}
	rank := 0
	for d := 0; d < len(c.dims); d++ {
		x := coords[d]
		if c.periodic[d] {
			x = ((x % c.dims[d]) + c.dims[d]) % c.dims[d]
		} else if x < 0 || x >= c.dims[d] {
			return -1, fmt.Errorf("%w: coord %d out of [0,%d)", ErrBadTopo, x, c.dims[d])
		}
		rank = rank*c.dims[d] + x
	}
	return rank, nil
}

// Shift returns the source and destination ranks for a displacement
// along one dimension (MPI_CART_SHIFT): src sends to the caller, the
// caller sends to dst. At a non-periodic boundary the value is
// ProcNull.
func (c *Cart) Shift(rank, dim, disp int) (src, dst int, err error) {
	if dim < 0 || dim >= len(c.dims) {
		return ProcNull, ProcNull, fmt.Errorf("%w: dimension %d", ErrBadTopo, dim)
	}
	coords, err := c.Coords(rank)
	if err != nil {
		return ProcNull, ProcNull, err
	}
	at := func(offset int) int {
		cc := append([]int(nil), coords...)
		cc[dim] += offset
		r, err := c.Rank(cc)
		if err != nil {
			return ProcNull
		}
		return r
	}
	return at(-disp), at(+disp), nil
}

// Neighbors returns the 2*NDims nearest neighbors in dimension order
// (low, high per dimension), with ProcNull at non-periodic boundaries —
// the neighborhood MPI_NEIGHBOR_ALLTOALL communicates over.
func (c *Cart) Neighbors(rank int) ([]int, error) {
	out := make([]int, 0, 2*len(c.dims))
	for d := range c.dims {
		src, dst, err := c.Shift(rank, d, 1)
		if err != nil {
			return nil, err
		}
		out = append(out, src, dst)
	}
	return out, nil
}

// DimsCreate factors nnodes into ndims balanced extents
// (MPI_DIMS_CREATE): nonzero entries of hints are kept fixed, zeros are
// chosen so the extents are as close to each other as possible.
func DimsCreate(nnodes, ndims int, hints []int) ([]int, error) {
	if nnodes < 1 || ndims < 1 {
		return nil, fmt.Errorf("%w: nnodes %d ndims %d", ErrBadTopo, nnodes, ndims)
	}
	dims := make([]int, ndims)
	if hints != nil {
		if len(hints) != ndims {
			return nil, fmt.Errorf("%w: %d hints for %d dims", ErrBadTopo, len(hints), ndims)
		}
		copy(dims, hints)
	}
	remaining := nnodes
	free := 0
	for _, d := range dims {
		switch {
		case d < 0:
			return nil, fmt.Errorf("%w: negative hint %d", ErrBadTopo, d)
		case d > 0:
			if remaining%d != 0 {
				return nil, fmt.Errorf("%w: %d does not divide %d", ErrBadTopo, d, nnodes)
			}
			remaining /= d
		default:
			free++
		}
	}
	if free == 0 {
		if remaining != 1 {
			return nil, fmt.Errorf("%w: fixed dims use %d of %d nodes", ErrBadTopo, nnodes/remaining, nnodes)
		}
		return dims, nil
	}
	// Greedy balanced factorization: repeatedly give the largest prime
	// factor to the smallest free extent.
	extents := make([]int, free)
	for i := range extents {
		extents[i] = 1
	}
	for _, f := range primeFactorsDesc(remaining) {
		min := 0
		for i := 1; i < free; i++ {
			if extents[i] < extents[min] {
				min = i
			}
		}
		extents[min] *= f
	}
	// Assign descending so dimension 0 gets the largest extent, as MPI
	// recommends.
	sortDesc(extents)
	j := 0
	for i := range dims {
		if dims[i] == 0 {
			dims[i] = extents[j]
			j++
		}
	}
	return dims, nil
}

// primeFactorsDesc returns n's prime factorization, largest first.
func primeFactorsDesc(n int) []int {
	var fs []int
	for f := 2; f*f <= n; f++ {
		for n%f == 0 {
			fs = append(fs, f)
			n /= f
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	// Reverse to descending.
	for i, j := 0, len(fs)-1; i < j; i, j = i+1, j-1 {
		fs[i], fs[j] = fs[j], fs[i]
	}
	return fs
}

func sortDesc(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] > xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
