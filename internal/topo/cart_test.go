package topo

import (
	"testing"
	"testing/quick"
)

func TestNewCartValidation(t *testing.T) {
	if _, err := NewCart(nil, nil); err == nil {
		t.Error("empty dims accepted")
	}
	if _, err := NewCart([]int{2, 2}, []bool{true}); err == nil {
		t.Error("mismatched periodic accepted")
	}
	if _, err := NewCart([]int{2, 0}, []bool{false, false}); err == nil {
		t.Error("zero extent accepted")
	}
	c, err := NewCart([]int{3, 4}, []bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 12 || c.NDims() != 2 || !c.Periodic(0) || c.Periodic(1) {
		t.Errorf("cart properties wrong: %+v", c)
	}
}

func TestCoordsRankRoundTrip(t *testing.T) {
	c, _ := NewCart([]int{2, 3, 4}, []bool{false, false, false})
	for r := 0; r < c.Size(); r++ {
		coords, err := c.Coords(r)
		if err != nil {
			t.Fatal(err)
		}
		back, err := c.Rank(coords)
		if err != nil || back != r {
			t.Fatalf("rank %d -> %v -> %d (%v)", r, coords, back, err)
		}
	}
	if _, err := c.Coords(24); err == nil {
		t.Error("out-of-range rank accepted")
	}
}

func TestRowMajorOrder(t *testing.T) {
	// MPI row-major: dimension 0 varies slowest.
	c, _ := NewCart([]int{2, 3}, []bool{false, false})
	want := [][2]int{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}
	for r, w := range want {
		coords, _ := c.Coords(r)
		if coords[0] != w[0] || coords[1] != w[1] {
			t.Errorf("rank %d = %v, want %v", r, coords, w)
		}
	}
}

func TestRankPeriodicWrap(t *testing.T) {
	c, _ := NewCart([]int{4}, []bool{true})
	if r, err := c.Rank([]int{-1}); err != nil || r != 3 {
		t.Errorf("wrap(-1) = (%d,%v)", r, err)
	}
	if r, err := c.Rank([]int{5}); err != nil || r != 1 {
		t.Errorf("wrap(5) = (%d,%v)", r, err)
	}
	np, _ := NewCart([]int{4}, []bool{false})
	if _, err := np.Rank([]int{-1}); err == nil {
		t.Error("non-periodic out-of-range accepted")
	}
}

func TestShift(t *testing.T) {
	// 1-D non-periodic chain of 4.
	c, _ := NewCart([]int{4}, []bool{false})
	src, dst, err := c.Shift(0, 0, 1)
	if err != nil || src != ProcNull || dst != 1 {
		t.Errorf("shift at low edge = (%d,%d,%v)", src, dst, err)
	}
	src, dst, _ = c.Shift(3, 0, 1)
	if src != 2 || dst != ProcNull {
		t.Errorf("shift at high edge = (%d,%d)", src, dst)
	}
	src, dst, _ = c.Shift(1, 0, 1)
	if src != 0 || dst != 2 {
		t.Errorf("interior shift = (%d,%d)", src, dst)
	}
	// Periodic ring.
	p, _ := NewCart([]int{4}, []bool{true})
	src, dst, _ = p.Shift(0, 0, 1)
	if src != 3 || dst != 1 {
		t.Errorf("periodic shift = (%d,%d)", src, dst)
	}
	if _, _, err := c.Shift(0, 2, 1); err == nil {
		t.Error("bad dimension accepted")
	}
}

func TestNeighbors(t *testing.T) {
	c, _ := NewCart([]int{2, 2}, []bool{false, true})
	// Rank 0 = (0,0): dim0 low=ProcNull high=2; dim1 periodic low=1 high=1.
	nb, err := c.Neighbors(0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{ProcNull, 2, 1, 1}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("neighbors(0) = %v, want %v", nb, want)
		}
	}
}

func TestDimsCreate(t *testing.T) {
	cases := []struct {
		nnodes, ndims int
		hints         []int
		want          []int
	}{
		{12, 2, nil, []int{4, 3}},
		{8, 3, nil, []int{2, 2, 2}},
		{16, 2, nil, []int{4, 4}},
		{7, 2, nil, []int{7, 1}},
		{12, 2, []int{0, 2}, []int{6, 2}},
		{6, 1, nil, []int{6}},
	}
	for _, c := range cases {
		got, err := DimsCreate(c.nnodes, c.ndims, c.hints)
		if err != nil {
			t.Fatalf("DimsCreate(%d,%d,%v): %v", c.nnodes, c.ndims, c.hints, err)
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("DimsCreate(%d,%d,%v) = %v, want %v", c.nnodes, c.ndims, c.hints, got, c.want)
				break
			}
		}
	}
	if _, err := DimsCreate(12, 2, []int{5, 0}); err == nil {
		t.Error("non-dividing hint accepted")
	}
	if _, err := DimsCreate(12, 2, []int{3, 5}); err == nil {
		t.Error("over-constrained hints accepted")
	}
}

// Property: DimsCreate output multiplies to nnodes and is descending
// where unconstrained.
func TestDimsCreateProperty(t *testing.T) {
	f := func(nRaw, dRaw uint8) bool {
		n := int(nRaw%100) + 1
		d := int(dRaw%4) + 1
		dims, err := DimsCreate(n, d, nil)
		if err != nil {
			return false
		}
		prod := 1
		for i, x := range dims {
			prod *= x
			if i > 0 && dims[i] > dims[i-1] {
				return false
			}
		}
		return prod == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Coords/Rank are inverse bijections over the whole grid for
// random shapes.
func TestCartBijectionProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		dims := []int{int(a%4) + 1, int(b%4) + 1, int(c%4) + 1}
		ct, err := NewCart(dims, []bool{false, true, false})
		if err != nil {
			return false
		}
		seen := map[int]bool{}
		for r := 0; r < ct.Size(); r++ {
			coords, err := ct.Coords(r)
			if err != nil {
				return false
			}
			back, err := ct.Rank(coords)
			if err != nil || back != r || seen[back] {
				return false
			}
			seen[back] = true
		}
		return len(seen) == ct.Size()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
