package nek

import (
	"fmt"
	"testing"

	"gompi"
)

func TestParamsValidate(t *testing.T) {
	good := Params{N: 3, ElemsPerRank: [3]int{2, 2, 2}, RankGrid: [3]int{2, 2, 2}, Iters: 5}
	if err := good.Validate(8); err != nil {
		t.Fatal(err)
	}
	if err := good.Validate(4); err == nil {
		t.Error("wrong world size accepted")
	}
	bad := good
	bad.N = 0
	if err := bad.Validate(8); err == nil {
		t.Error("order 0 accepted")
	}
	bad = good
	bad.Iters = 0
	if err := bad.Validate(8); err == nil {
		t.Error("0 iterations accepted")
	}
	bad = good
	bad.ElemsPerRank = [3]int{0, 1, 1}
	if err := bad.Validate(8); err == nil {
		t.Error("empty rank box accepted")
	}
}

func TestGeometry(t *testing.T) {
	p := Params{N: 5, ElemsPerRank: [3]int{2, 1, 1}, RankGrid: [3]int{2, 2, 1}}
	if got := p.NOverP(); got != 2*125 {
		t.Errorf("NOverP = %d, want 250", got)
	}
	if got := p.PointsPerRank(); got != 11*6*6 {
		t.Errorf("PointsPerRank = %d, want %d", got, 11*6*6)
	}
	if got := p.GlobalPoints(); got != 21*11*6 {
		t.Errorf("GlobalPoints = %d, want %d", got, 21*11*6)
	}
}

func TestMeshNeighbors(t *testing.T) {
	p := Params{N: 3, ElemsPerRank: [3]int{1, 1, 1}, RankGrid: [3]int{2, 2, 2}}
	m := newMesh(&p, 0) // corner rank
	if m.neighbors[0][0] != -1 || m.neighbors[0][1] != 1 {
		t.Errorf("x neighbors of rank 0: %v", m.neighbors[0])
	}
	if m.neighbors[1][0] != -1 || m.neighbors[1][1] != 2 {
		t.Errorf("y neighbors of rank 0: %v", m.neighbors[1])
	}
	if m.neighbors[2][0] != -1 || m.neighbors[2][1] != 4 {
		t.Errorf("z neighbors of rank 0: %v", m.neighbors[2])
	}
	m7 := newMesh(&p, 7) // opposite corner
	if m7.neighbors[0][1] != -1 || m7.neighbors[0][0] != 6 {
		t.Errorf("x neighbors of rank 7: %v", m7.neighbors[0])
	}
}

func TestPlaneExtractAdd(t *testing.T) {
	p := Params{N: 2, ElemsPerRank: [3]int{1, 1, 1}, RankGrid: [3]int{1, 1, 1}}
	m := newMesh(&p, 0) // 3x3x3 points
	u := make([]float64, m.points())
	for i := range u {
		u[i] = float64(i)
	}
	plane := make([]float64, m.planeSize(0))
	m.extractPlane(u, 0, 1, plane) // high-x plane: indices 2,5,8,...
	if plane[0] != float64(m.idx(2, 0, 0)) || plane[1] != float64(m.idx(2, 1, 0)) {
		t.Errorf("extracted plane %v", plane[:3])
	}
	m.addPlane(u, 0, 1, plane)
	if u[m.idx(2, 0, 0)] != 2*float64(m.idx(2, 0, 0)) {
		t.Error("addPlane did not accumulate")
	}
}

// TestGatherAssemblesMultiplicity checks the three-sweep exchange: a
// vector of ones gathers to the dof multiplicity (up to 8 at rank
// corners).
func TestGatherAssemblesMultiplicity(t *testing.T) {
	prm := Params{N: 2, ElemsPerRank: [3]int{1, 1, 1}, RankGrid: [3]int{2, 2, 2}, Iters: 1}
	err := gompi.Run(8, gompi.Config{Fabric: "inf"}, func(p *gompi.Proc) error {
		m := newMesh(&prm, p.Rank())
		s := &solver{p: p, w: p.World(), prm: &prm, m: m, gs: newGSBuffers(m), flop: func(int) {}}
		u := make([]float64, m.points())
		for i := range u {
			u[i] = 1
		}
		if err := s.gather(u); err != nil {
			return err
		}
		// The corner facing the domain center is shared by all 8
		// ranks on a 2x2x2 grid.
		ci, cj, ck := m.nx-1, m.ny-1, m.nz-1
		if m.coords[0] == 1 {
			ci = 0
		}
		if m.coords[1] == 1 {
			cj = 0
		}
		if m.coords[2] == 1 {
			ck = 0
		}
		if got := u[m.idx(ci, cj, ck)]; got != 8 {
			return fmt.Errorf("rank %d center-corner multiplicity %v, want 8", p.Rank(), got)
		}
		// Face-interior point shared by 2.
		if got := u[m.idx(m.nx-1, 1, 1)]; p.Rank() == 0 && got != 2 {
			return fmt.Errorf("face multiplicity %v, want 2", got)
		}
		// Strictly interior point stays 1.
		if got := u[m.idx(1, 1, 1)]; got != 1 {
			return fmt.Errorf("interior multiplicity %v, want 1", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSolveConverges verifies the manufactured solution is recovered on
// a multi-rank mesh.
func TestSolveConverges(t *testing.T) {
	prm := Params{N: 3, ElemsPerRank: [3]int{2, 2, 2}, RankGrid: [3]int{2, 2, 1}, Iters: 10}
	err := gompi.Run(4, gompi.Config{Fabric: "ofi"}, func(p *gompi.Proc) error {
		res, err := Solve(p, prm)
		if err != nil {
			return err
		}
		if res.Residual > 1e-10 {
			return fmt.Errorf("residual %g", res.Residual)
		}
		if res.Iters != prm.Iters {
			return fmt.Errorf("ran %d timing iterations, want %d", res.Iters, prm.Iters)
		}
		if res.Seconds <= 0 || res.PerfPIPS <= 0 {
			return fmt.Errorf("bad timing: %+v", res)
		}
		if res.NOverP != 8*27 {
			return fmt.Errorf("NOverP = %d", res.NOverP)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSolveSingleRank(t *testing.T) {
	prm := Params{N: 5, ElemsPerRank: [3]int{2, 2, 2}, RankGrid: [3]int{1, 1, 1}, Iters: 5}
	err := gompi.Run(1, gompi.Config{}, func(p *gompi.Proc) error {
		res, err := Solve(p, prm)
		if err != nil {
			return err
		}
		if res.Residual > 1e-10 {
			return fmt.Errorf("residual %g", res.Residual)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestStrongScalingShape: with fixed per-rank work shrinking (strong
// scaling), communication overhead fraction must grow.
func TestStrongScalingShape(t *testing.T) {
	var commSmall, commLarge float64
	for _, tc := range []struct {
		e    int
		comm *float64
	}{
		{4, &commLarge}, {1, &commSmall},
	} {
		prm := Params{N: 3, ElemsPerRank: [3]int{tc.e, tc.e, tc.e}, RankGrid: [3]int{2, 2, 2}, Iters: 8}
		var got float64
		err := gompi.Run(8, gompi.Config{Fabric: "ofi"}, func(p *gompi.Proc) error {
			res, err := Solve(p, prm)
			if err != nil {
				return err
			}
			if p.Rank() == 0 {
				got = res.CommFrac
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		*tc.comm = got
	}
	if !(commSmall > commLarge) {
		t.Errorf("comm fraction small=%v should exceed large=%v", commSmall, commLarge)
	}
}

// TestCh4BeatsOriginal: the paper's Figure 7 center panel — at small
// n/P the lightweight device wins.
func TestCh4BeatsOriginal(t *testing.T) {
	prm := Params{N: 3, ElemsPerRank: [3]int{1, 1, 1}, RankGrid: [3]int{2, 2, 1}, Iters: 10}
	perf := map[string]float64{}
	for _, dev := range []gompi.DeviceKind{gompi.DeviceCH4, gompi.DeviceOriginal} {
		var got float64
		err := gompi.Run(4, gompi.Config{Device: dev, Fabric: "ofi"}, func(p *gompi.Proc) error {
			res, err := Solve(p, prm)
			if err != nil {
				return err
			}
			if res.Residual > 1e-10 {
				return fmt.Errorf("%s residual %g", dev, res.Residual)
			}
			if p.Rank() == 0 {
				got = res.PerfPIPS
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		perf[string(dev)] = got
	}
	if perf["ch4"] <= perf["original"] {
		t.Errorf("ch4 %.3g <= original %.3g at the strong-scaling limit", perf["ch4"], perf["original"])
	}
}

func TestEfficiencyModel(t *testing.T) {
	m := EfficiencyModel{O: 1e-6, W: 64e-6, P: 64}
	if e := m.Efficiency(1); e < 0.97 {
		t.Errorf("efficiency at P=1 should approach 1, got %v", e)
	}
	e64 := m.Efficiency(64)
	e512 := m.Efficiency(512)
	if !(e64 > e512) {
		t.Errorf("efficiency must fall with P: %v -> %v", e64, e512)
	}
	if m.Efficiency(0) != 0 {
		t.Error("efficiency at P=0")
	}
	if m.String() == "" {
		t.Error("empty model string")
	}
}

// TestDecompositionInvariance: the same global problem solved on 1 and
// 8 ranks must produce the same residual (the assembled system is
// identical; only the partitioning differs).
func TestDecompositionInvariance(t *testing.T) {
	residuals := map[int]float64{}
	for _, grid := range [][3]int{{1, 1, 1}, {2, 2, 2}} {
		ranks := grid[0] * grid[1] * grid[2]
		// Same global mesh: 4 elements per dimension.
		e := 4 / grid[0]
		prm := Params{N: 3, ElemsPerRank: [3]int{e, e, e}, RankGrid: grid, Iters: 5}
		var res float64
		err := gompi.Run(ranks, gompi.Config{Fabric: "inf"}, func(p *gompi.Proc) error {
			r, err := Solve(p, prm)
			if err != nil {
				return err
			}
			if p.Rank() == 0 {
				res = r.Residual
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		residuals[ranks] = res
	}
	if residuals[1] > 1e-10 || residuals[8] > 1e-10 {
		t.Fatalf("residuals %v", residuals)
	}
	// Both are at machine precision; the invariance statement is that
	// both decompositions solve the identical global system (exact
	// equality of rounding is not required for CG).
}

func TestGlobalDofCountInvariant(t *testing.T) {
	// Assembled dof count must be independent of the decomposition.
	a := Params{N: 3, ElemsPerRank: [3]int{4, 4, 4}, RankGrid: [3]int{1, 1, 1}}
	b := Params{N: 3, ElemsPerRank: [3]int{2, 2, 2}, RankGrid: [3]int{2, 2, 2}}
	if a.GlobalPoints() != b.GlobalPoints() {
		t.Fatalf("global dofs differ: %d vs %d", a.GlobalPoints(), b.GlobalPoints())
	}
}
