// Package nek implements the paper's Nek5000 model problem (Section
// 4.3, Figure 7): solving the linear system B u = f by conjugate
// gradient iteration, where B is the mass matrix of a spectral-element
// discretization with E elements of polynomial order N covering the
// unit cube. The mass matrix is diagonal under Gauss-Lobatto-Legendre
// quadrature, so the computational kernel per iteration is a pointwise
// multiply, the direct-stiffness summation (gather-scatter) across
// element and rank boundaries, and two allreduce dot products — the
// communication pattern whose latency sensitivity the paper measures.
//
// Ranks form a 3-D process grid; each owns a box of elements. Shared
// degrees of freedom on rank boundaries are assembled with the classic
// three-sweep plane exchange (x, then y, then z), which covers all 26
// neighbor directions with 6 messages by transitivity.
package nek

import (
	"fmt"
	"math"
)

// Params describes one model-problem run.
type Params struct {
	// N is the polynomial order (the paper uses 3, 5, 7).
	N int
	// ElemsPerRank is the number of elements each rank owns along
	// x/y/z (E/P = product; the paper sweeps E/P in 1..128).
	ElemsPerRank [3]int
	// RankGrid is the 3-D process grid; its product must equal the
	// world size.
	RankGrid [3]int
	// Iters is the number of CG iterations to run (performance is
	// reported per point-iteration, so the count only sets the sample
	// size).
	Iters int
	// CyclesPerFlop models the core's floating-point throughput
	// (charged to the virtual clock per flop executed).
	CyclesPerFlop float64
}

// Validate checks internal consistency against a world size.
func (p *Params) Validate(worldSize int) error {
	if p.N < 1 {
		return fmt.Errorf("nek: order N=%d", p.N)
	}
	if p.Iters < 1 {
		return fmt.Errorf("nek: iters=%d", p.Iters)
	}
	np := p.RankGrid[0] * p.RankGrid[1] * p.RankGrid[2]
	if np != worldSize {
		return fmt.Errorf("nek: rank grid %v = %d ranks, world has %d", p.RankGrid, np, worldSize)
	}
	for d := 0; d < 3; d++ {
		if p.ElemsPerRank[d] < 1 || p.RankGrid[d] < 1 {
			return fmt.Errorf("nek: bad geometry %v / %v", p.ElemsPerRank, p.RankGrid)
		}
	}
	return nil
}

// PointsPerRank returns the local dof count: (e*N+1) per dimension
// (element-interior points plus shared element-boundary points).
func (p *Params) PointsPerRank() int {
	n := 1
	for d := 0; d < 3; d++ {
		n *= p.ElemsPerRank[d]*p.N + 1
	}
	return n
}

// GlobalPoints returns the assembled global dof count
// (E_d*N+1 per dimension).
func (p *Params) GlobalPoints() int {
	n := 1
	for d := 0; d < 3; d++ {
		n *= p.ElemsPerRank[d]*p.RankGrid[d]*p.N + 1
	}
	return n
}

// NOverP returns the per-rank grid-point load n/P used as the x-axis of
// Figure 7 (the paper computes n ~ E N^3, i.e. points counted once per
// element).
func (p *Params) NOverP() int {
	return p.ElemsPerRank[0] * p.ElemsPerRank[1] * p.ElemsPerRank[2] * p.N * p.N * p.N
}

// mesh is one rank's box of grid points.
type mesh struct {
	nx, ny, nz int       // local point-grid dimensions
	coords     [3]int    // rank coordinates in the process grid
	grid       [3]int    // process grid
	neighbors  [3][2]int // world rank of the low/high neighbor per dim, -1 at the boundary
}

// newMesh lays out rank `rank`'s box.
func newMesh(p *Params, rank int) *mesh {
	m := &mesh{
		nx:   p.ElemsPerRank[0]*p.N + 1,
		ny:   p.ElemsPerRank[1]*p.N + 1,
		nz:   p.ElemsPerRank[2]*p.N + 1,
		grid: p.RankGrid,
	}
	m.coords[0] = rank % p.RankGrid[0]
	m.coords[1] = (rank / p.RankGrid[0]) % p.RankGrid[1]
	m.coords[2] = rank / (p.RankGrid[0] * p.RankGrid[1])
	for d := 0; d < 3; d++ {
		m.neighbors[d][0] = m.neighborRank(d, -1)
		m.neighbors[d][1] = m.neighborRank(d, +1)
	}
	return m
}

// neighborRank returns the world rank one step along dim, or -1 outside
// the (non-periodic) unit cube.
func (m *mesh) neighborRank(dim, step int) int {
	c := m.coords
	c[dim] += step
	if c[dim] < 0 || c[dim] >= m.grid[dim] {
		return -1
	}
	return c[0] + m.grid[0]*(c[1]+m.grid[1]*c[2])
}

// points returns the local dof count.
func (m *mesh) points() int { return m.nx * m.ny * m.nz }

// idx addresses the local point grid.
func (m *mesh) idx(i, j, k int) int { return i + m.nx*(j+m.ny*k) }

// planeSize returns the number of points in a boundary plane normal to
// dim.
func (m *mesh) planeSize(dim int) int {
	switch dim {
	case 0:
		return m.ny * m.nz
	case 1:
		return m.nx * m.nz
	default:
		return m.nx * m.ny
	}
}

// extractPlane copies the boundary plane (side 0 = low, 1 = high)
// normal to dim into out.
func (m *mesh) extractPlane(u []float64, dim, side int, out []float64) {
	fix := 0
	if side == 1 {
		fix = [3]int{m.nx, m.ny, m.nz}[dim] - 1
	}
	n := 0
	switch dim {
	case 0:
		for k := 0; k < m.nz; k++ {
			for j := 0; j < m.ny; j++ {
				out[n] = u[m.idx(fix, j, k)]
				n++
			}
		}
	case 1:
		for k := 0; k < m.nz; k++ {
			for i := 0; i < m.nx; i++ {
				out[n] = u[m.idx(i, fix, k)]
				n++
			}
		}
	default:
		for j := 0; j < m.ny; j++ {
			for i := 0; i < m.nx; i++ {
				out[n] = u[m.idx(i, j, fix)]
				n++
			}
		}
	}
}

// addPlane accumulates in onto the boundary plane.
func (m *mesh) addPlane(u []float64, dim, side int, in []float64) {
	fix := 0
	if side == 1 {
		fix = [3]int{m.nx, m.ny, m.nz}[dim] - 1
	}
	n := 0
	switch dim {
	case 0:
		for k := 0; k < m.nz; k++ {
			for j := 0; j < m.ny; j++ {
				u[m.idx(fix, j, k)] += in[n]
				n++
			}
		}
	case 1:
		for k := 0; k < m.nz; k++ {
			for i := 0; i < m.nx; i++ {
				u[m.idx(i, fix, k)] += in[n]
				n++
			}
		}
	default:
		for j := 0; j < m.ny; j++ {
			for i := 0; i < m.nx; i++ {
				u[m.idx(i, j, fix)] += in[n]
				n++
			}
		}
	}
}

// massDiag builds the local diagonal of the unassembled mass matrix:
// GLL quadrature weights times the element Jacobian. Weights are the
// simplified Newton-Cotes-like profile (half weight at element
// endpoints), which preserves the assembly structure (shared points
// accumulate neighbors' halves) without a full GLL table.
func massDiag(p *Params, m *mesh) []float64 {
	// Within one dimension, element-boundary points carry half weight
	// per adjacent element; the assembly (gs) sums the halves.
	w1 := func(localIdx int) float64 {
		if localIdx%p.N == 0 {
			return 0.5
		}
		return 1.0
	}
	hx := 1.0 / float64(p.ElemsPerRank[0]*m.grid[0]*p.N)
	hy := 1.0 / float64(p.ElemsPerRank[1]*m.grid[1]*p.N)
	hz := 1.0 / float64(p.ElemsPerRank[2]*m.grid[2]*p.N)
	jac := hx * hy * hz

	b := make([]float64, m.points())
	for k := 0; k < m.nz; k++ {
		for j := 0; j < m.ny; j++ {
			for i := 0; i < m.nx; i++ {
				b[m.idx(i, j, k)] = jac * w1(i) * w1(j) * w1(k)
			}
		}
	}
	return b
}

// refSolution is the manufactured field the correctness checks solve
// for: smooth and globally consistent (the same value computed at the
// same global coordinate on every rank).
func refSolution(p *Params, m *mesh, i, j, k int) float64 {
	gx := float64(m.coords[0]*(m.nx-1)+i) / float64(m.grid[0]*(m.nx-1))
	gy := float64(m.coords[1]*(m.ny-1)+j) / float64(m.grid[1]*(m.ny-1))
	gz := float64(m.coords[2]*(m.nz-1)+k) / float64(m.grid[2]*(m.nz-1))
	return math.Sin(math.Pi*gx) * math.Cos(math.Pi*gy) * math.Sin(math.Pi*gz)
}
