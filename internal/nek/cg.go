package nek

import (
	"fmt"
	"math"

	"gompi"
)

// Result reports one solve.
type Result struct {
	NGlobal   int     // assembled global dofs
	NOverP    int     // per-rank load (Figure 7 x-axis)
	Iters     int     // CG iterations executed
	Seconds   float64 // max virtual seconds across ranks
	PerfPIPS  float64 // point-iterations per processor-second (Figure 7 y-axis)
	Residual  float64 // final ||f - B u|| / ||f||
	CommFrac  float64 // fraction of virtual cycles in communication (overhead O)
	WorkCycle int64   // compute cycles (parallel work W per rank)
}

// gsBuffers holds the plane-exchange scratch space.
type gsBuffers struct {
	sendLo, sendHi   []float64
	recvLo, recvHi   []float64
	wireLo, wireHi   []byte
	wireRLo, wireRHi []byte
}

func newGSBuffers(m *mesh) *gsBuffers {
	max := 0
	for d := 0; d < 3; d++ {
		if s := m.planeSize(d); s > max {
			max = s
		}
	}
	return &gsBuffers{
		sendLo: make([]float64, max), sendHi: make([]float64, max),
		recvLo: make([]float64, max), recvHi: make([]float64, max),
		wireLo: make([]byte, 8*max), wireHi: make([]byte, 8*max),
		wireRLo: make([]byte, 8*max), wireRHi: make([]byte, 8*max),
	}
}

// solver carries one rank's state.
type solver struct {
	p    *gompi.Proc
	w    *gompi.Comm
	prm  *Params
	m    *mesh
	gs   *gsBuffers
	flop func(n int) // charges n flops to the virtual clock
}

// gather performs the direct-stiffness summation: after the three plane
// sweeps every shared dof holds the global sum of its contributions.
// Tags separate the six exchanges of one gather call; gathers are
// globally ordered by the surrounding CG structure.
func (s *solver) gather(u []float64) error {
	const tagBase = 300
	for dim := 0; dim < 3; dim++ {
		ps := s.m.planeSize(dim)
		lo, hi := s.m.neighbors[dim][0], s.m.neighbors[dim][1]

		// Post sends of both boundary planes (eager, so order is free).
		if lo >= 0 {
			s.m.extractPlane(u, dim, 0, s.gs.sendLo[:ps])
			wire := gompi.Float64Bytes(s.gs.sendLo[:ps], s.gs.wireLo)
			if err := s.w.IsendNoReq(wire, len(wire), gompi.Byte, lo, tagBase+2*dim); err != nil {
				return err
			}
		}
		if hi >= 0 {
			s.m.extractPlane(u, dim, 1, s.gs.sendHi[:ps])
			wire := gompi.Float64Bytes(s.gs.sendHi[:ps], s.gs.wireHi)
			if err := s.w.IsendNoReq(wire, len(wire), gompi.Byte, hi, tagBase+2*dim+1); err != nil {
				return err
			}
		}
		// Receive the matching planes and accumulate.
		if lo >= 0 {
			buf := s.gs.wireRLo[:8*ps]
			if _, err := s.w.Recv(buf, len(buf), gompi.Byte, lo, tagBase+2*dim+1); err != nil {
				return err
			}
			in := gompi.BytesFloat64(buf, s.gs.recvLo)
			s.m.addPlane(u, dim, 0, in)
			s.flop(ps)
		}
		if hi >= 0 {
			buf := s.gs.wireRHi[:8*ps]
			if _, err := s.w.Recv(buf, len(buf), gompi.Byte, hi, tagBase+2*dim); err != nil {
				return err
			}
			in := gompi.BytesFloat64(buf, s.gs.recvHi)
			s.m.addPlane(u, dim, 1, in)
			s.flop(ps)
		}
		if err := s.w.CommWaitall(); err != nil {
			return err
		}
	}
	return nil
}

// dot computes the assembled global inner product of u and v, weighting
// shared dofs by inverse multiplicity so each global dof counts once.
func (s *solver) dot(u, v, invMult []float64) (float64, error) {
	local := 0.0
	for i := range u {
		local += u[i] * v[i] * invMult[i]
	}
	s.flop(3 * len(u))
	vals, err := s.w.AllreduceFloat64([]float64{local}, gompi.OpSum)
	if err != nil {
		return 0, err
	}
	return vals[0], nil
}

// Solve runs the model problem on the calling rank (collective over the
// world communicator).
func Solve(p *gompi.Proc, prm Params) (Result, error) {
	if err := prm.Validate(p.Size()); err != nil {
		return Result{}, err
	}
	if prm.CyclesPerFlop <= 0 {
		prm.CyclesPerFlop = 1.0
	}
	// Low polynomial orders run at lower per-point efficiency: short
	// element loops vectorize and cache poorly, and the O(M^3 N)
	// interpolation overhead weighs relatively more — the reasons the
	// paper gives for the weak N=3 curve in Figure 7. Model it as a
	// per-flop penalty decaying with N.
	prm.CyclesPerFlop *= 1 + 4.0/float64(prm.N)
	m := newMesh(&prm, p.Rank())
	s := &solver{p: p, w: p.World(), prm: &prm, m: m, gs: newGSBuffers(m)}
	flopAcc := 0.0
	s.flop = func(n int) {
		flopAcc += float64(n) * prm.CyclesPerFlop
		if flopAcc >= 4096 {
			p.ChargeCompute(int64(flopAcc))
			flopAcc = 0
		}
	}

	n := m.points()
	// Unassembled local mass diagonal (applied per element, then
	// gathered — the real SE kernel) and its assembled counterpart.
	bLocal := massDiag(&prm, m)
	bAssembled := append([]float64(nil), bLocal...)
	if err := s.gather(bAssembled); err != nil {
		return Result{}, err
	}
	mult := make([]float64, n)
	for i := range mult {
		mult[i] = 1
	}
	if err := s.gather(mult); err != nil {
		return Result{}, err
	}
	invMult := make([]float64, n)
	for i := range invMult {
		invMult[i] = 1 / mult[i]
	}

	// Manufactured right-hand side: f = B * uExact (assembled).
	uExact := make([]float64, n)
	for k := 0; k < m.nz; k++ {
		for j := 0; j < m.ny; j++ {
			for i := 0; i < m.nx; i++ {
				uExact[m.idx(i, j, k)] = refSolution(&prm, m, i, j, k)
			}
		}
	}
	f := make([]float64, n)
	for i := range f {
		f[i] = bAssembled[i] * uExact[i]
	}

	u := make([]float64, n)
	r := make([]float64, n)
	q := make([]float64, n)
	pvec := make([]float64, n)

	// applyB computes q = gather(bLocal .* v): the per-iteration
	// operator (local diagonal multiply + direct-stiffness summation).
	applyB := func(v, q []float64) error {
		for i := range q {
			q[i] = bLocal[i] * v[i]
		}
		s.flop(n)
		return s.gather(q)
	}

	// cgIter runs one standard CG iteration; returns the new rho.
	cgIter := func(rho float64) (float64, error) {
		if err := applyB(pvec, q); err != nil {
			return 0, err
		}
		pq, err := s.dot(pvec, q, invMult)
		if err != nil {
			return 0, err
		}
		if pq == 0 {
			return 0, nil
		}
		alpha := rho / pq
		for i := range u {
			u[i] += alpha * pvec[i]
			r[i] -= alpha * q[i]
		}
		s.flop(4 * n)
		rhoNew, err := s.dot(r, r, invMult)
		if err != nil {
			return 0, err
		}
		beta := rhoNew / rho
		for i := range pvec {
			pvec[i] = r[i] + beta*pvec[i]
		}
		s.flop(2 * n)
		return rhoNew, nil
	}

	// Phase A — correctness: solve to convergence (B is diagonal, so a
	// handful of iterations reaches machine precision).
	copy(r, f)
	copy(pvec, f)
	rho, err := s.dot(r, r, invMult)
	if err != nil {
		return Result{}, err
	}
	rho0 := rho
	for it := 0; it < 50 && rho > 1e-24*rho0 && rho > 0; it++ {
		rho, err = cgIter(rho)
		if err != nil {
			return Result{}, err
		}
	}
	num, den := 0.0, 0.0
	for i := range u {
		d := u[i] - uExact[i]
		num += d * d * invMult[i]
		den += uExact[i] * uExact[i] * invMult[i]
	}
	sums, err := s.w.AllreduceFloat64([]float64{num, den}, gompi.OpSum)
	if err != nil {
		return Result{}, err
	}
	residual := math.Sqrt(sums[0] / math.Max(sums[1], 1e-300))

	// Phase B — timing: exactly prm.Iters fixed-cost iterations (the
	// paper's performance kernel). When the residual underflows, reset
	// the iteration state from the cached start — pure local copies,
	// no extra communication, constant per-iteration cost.
	for i := range u {
		u[i] = 0
	}
	copy(r, f)
	copy(pvec, f)
	rho = rho0
	if err := s.w.Barrier(); err != nil {
		return Result{}, err
	}
	startCycles := p.VirtualCycles()
	startCounters := p.Counters()

	iters := 0
	for it := 0; it < prm.Iters; it++ {
		rho, err = cgIter(rho)
		if err != nil {
			return Result{}, err
		}
		iters++
		if rho < 1e-20*rho0 {
			for i := range u {
				u[i] = 0
			}
			copy(r, f)
			copy(pvec, f)
			rho = rho0
			s.flop(2 * n)
		}
	}
	p.ChargeCompute(int64(flopAcc))
	flopAcc = 0

	// Timing: the slowest rank defines the run.
	elapsed := float64(p.VirtualCycles() - startCycles)
	maxed, err := s.w.AllreduceFloat64([]float64{elapsed}, gompi.OpMax)
	if err != nil {
		return Result{}, err
	}
	seconds := maxed[0] / p.ClockHz()

	dc := p.Counters().Sub(startCounters)
	commCycles := elapsed - float64(dc.Compute)

	res := Result{
		NGlobal:   prm.GlobalPoints(),
		NOverP:    prm.NOverP(),
		Iters:     iters,
		Seconds:   seconds,
		Residual:  residual,
		WorkCycle: dc.Compute,
	}
	if seconds > 0 {
		nP := float64(prm.NOverP())
		res.PerfPIPS = nP * float64(iters) / seconds
	}
	if elapsed > 0 {
		res.CommFrac = commCycles / elapsed
	}
	return res, nil
}

// EfficiencyModel is the Amdahl model of Section 4.3: TP = O + W/P with
// measured per-iteration overhead O and work W; Efficiency(P') predicts
// parallel efficiency at scale P' relative to the work-dominated limit.
type EfficiencyModel struct {
	O float64 // overhead seconds per iteration (latency-dominated messages)
	W float64 // work seconds per iteration across all ranks
	P float64 // ranks the measurement used
}

// NewEfficiencyModel fits the model from a run's measured split.
func NewEfficiencyModel(r Result, ranks int, hz float64) EfficiencyModel {
	perIter := r.Seconds / math.Max(float64(r.Iters), 1)
	o := perIter * r.CommFrac
	w := perIter * (1 - r.CommFrac) * float64(ranks)
	return EfficiencyModel{O: o, W: w, P: float64(ranks)}
}

// Efficiency returns the modeled parallel efficiency at p ranks:
// (W/p) / (O + W/p).
func (m EfficiencyModel) Efficiency(p float64) float64 {
	if p <= 0 {
		return 0
	}
	tp := m.O + m.W/p
	if tp <= 0 {
		return 1
	}
	return (m.W / p) / tp
}

// String formats the model for reports.
func (m EfficiencyModel) String() string {
	return fmt.Sprintf("T(P) = %.3g + %.3g/P seconds/iteration", m.O, m.W)
}
