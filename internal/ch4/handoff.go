package ch4

import (
	"gompi/internal/comm"
	"gompi/internal/fabric"
	"gompi/internal/instr"
	"gompi/internal/match"
	"gompi/internal/request"
)

// This file is the device's zero-copy handoff surface for the
// collectives engine: explicit entry points that expose the shm
// transport's large-message lending protocol (DESIGN.md §6e) where the
// implicit Isend path cannot — schedules need the completion handle to
// gate buffer reuse across rounds, and reductions want to fold the
// lent view in place instead of receiving into scratch.

// ShmHandoffMax reports the shared-memory staged/handoff threshold in
// bytes, or 0 when the zero-copy path is unavailable (no shm domain,
// or Config.ShmEagerMax unset). The collectives layer keys its
// algorithm refinement off this.
func (d *Device) ShmHandoffMax() int {
	if d.g.Shm == nil {
		return 0
	}
	return d.g.Shm.EagerMax()
}

// IsendNoCopy sends buf to dest over the zero-copy handoff path when
// it applies: on-node destination, handoff enabled, payload above the
// threshold. ok=false means the caller must fall back to ordinary
// sends — nothing was sent. On ok=true the returned request completes
// when the receiver has released the lent buffer; the caller must not
// touch buf until then. dest is a communicator rank; the send is
// tagged and matches like any Isend.
func (d *Device) IsendNoCopy(buf []byte, dest, tag int, c *comm.Comm) (*request.Request, bool, error) {
	world, err := d.translateRank(c, dest)
	if err != nil {
		return nil, false, err
	}
	if d.g.Shm == nil || d.g.Shm.EagerMax() <= 0 || len(buf) <= d.g.Shm.EagerMax() ||
		world == d.rank.ID() || !d.g.World.SameNode(world, d.rank.ID()) {
		return nil, false, nil
	}
	d.chargeDispatch(costDispatchPt2pt)
	issued := d.rank.Now()
	d.charge(instr.Mandatory, costCommDeref+costMatchBits+costLocality+costShmPrep)
	bits := match.MakeBits(c.Ctx, c.MyRank, tag)
	h := d.g.Shm.SendVCI(d.rank.ID(), world, bits, buf, d.sendVCI(c, bits))
	if h == nil {
		// The geometry said staged after all (raced config is
		// impossible — thresholds are fixed at job start — so this is
		// defensive): the payload is captured, complete immediately.
		r := d.pool.Get(request.KindSend)
		r.Issued = int64(issued)
		r.MarkComplete(request.Status{})
		return r, true, nil
	}
	d.charge(instr.Mandatory, costRequestAlloc)
	return d.handoffRequest(h, issued), true, nil
}

// IrecvReduce posts a tagged receive that consumes its payload with
// fold(acc, incoming) instead of a copy into a buffer. When the
// matched payload is a zero-copy handoff view the reduction touches no
// intermediate bytes at all: the fold reads the sender's buffer where
// it lies. Works for staged arrivals too (the fold then reads the
// reassembly scratch or the unexpected-queue copy). acc must be at
// least as large as the expected payload; fold runs on this rank's
// goroutine (the device keeps shm deposits on the receiver's progress
// loop). src is a communicator rank; wildcards are not supported.
func (d *Device) IrecvReduce(acc []byte, src, tag int, c *comm.Comm,
	fold func(dst, incoming []byte)) (*request.Request, error) {

	d.chargeDispatch(costDispatchPt2pt)
	d.charge(instr.Mandatory, costCommDeref+costMatchBits)
	bits := match.MakeBits(c.Ctx, src, tag)
	mask := match.RecvMask(false, false)

	op := &fabric.RecvOp{Buf: acc, Fold: fold}
	d.charge(instr.Mandatory, costRecvPost+costRequestAlloc)
	d.ep.PostRecvVCI(op, bits, mask, d.recvVCI(c, bits, mask))

	r := d.pool.Get(request.KindRecv)
	r.Issued = int64(d.rank.Now())
	finish := func(r *request.Request) {
		d.rank.Metrics().Lat.ReqLife.Observe(int64(d.rank.Now()) - r.Issued)
		r.MarkComplete(request.Status{
			Source: op.Src, Tag: op.Tag, Count: op.N, Truncated: op.Truncated,
		})
	}
	r.Poll = func(r *request.Request) bool {
		if !d.recvDone(op) {
			return false
		}
		finish(r)
		return true
	}
	r.Block = func(r *request.Request) {
		d.waitRecv(op)
		finish(r)
	}
	return r, nil
}
