package ch4

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"gompi/internal/comm"
	"gompi/internal/core"
	"gompi/internal/datatype"
	"gompi/internal/fabric"
	"gompi/internal/instr"
	"gompi/internal/proc"
	"gompi/internal/request"
)

// env is what each rank's test body receives.
type env struct {
	d *Device
	c *comm.Comm // world communicator
}

// runWorld spins up n ranks with ch4 devices over the given fabric
// profile and ranks-per-node, then runs body on each.
func runWorld(t *testing.T, n, rpn int, prof fabric.Profile, cfg core.Config, body func(e *env) error) {
	t.Helper()
	hz := prof.Hz
	if hz == 0 {
		hz = 2.2e9
	}
	w := proc.NewWorld(n, rpn, hz)
	g := NewGlobal(w, prof, cfg)
	reg := comm.NewRegistry()
	err := w.Run(func(r *proc.Rank) error {
		d := g.Open(r)
		r.StartBarrier()
		return body(&env{d: d, c: comm.NewWorld(reg, n, r.ID())})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvNetmod(t *testing.T) {
	runWorld(t, 2, 1, fabric.OFI, core.Default, func(e *env) error {
		switch e.c.Rank() {
		case 0:
			req, err := e.d.Isend([]byte("ping"), 4, datatype.Byte, 1, 7, e.c, 0)
			if err != nil {
				return err
			}
			req.Wait()
			req.Free()
		case 1:
			buf := make([]byte, 4)
			req, err := e.d.Irecv(buf, 4, datatype.Byte, 0, 7, e.c, 0)
			if err != nil {
				return err
			}
			req.Wait()
			if string(buf) != "ping" {
				return fmt.Errorf("got %q", buf)
			}
			if req.Status.Source != 0 || req.Status.Tag != 7 || req.Status.Count != 4 {
				return fmt.Errorf("status %+v", req.Status)
			}
			req.Free()
		}
		return nil
	})
}

func TestSendRecvShm(t *testing.T) {
	// Both ranks on one node: traffic must ride the shmmod.
	runWorld(t, 2, 2, fabric.OFI, core.Default, func(e *env) error {
		if e.c.Rank() == 0 {
			_, err := e.d.Isend([]byte{42}, 1, datatype.Byte, 1, 0, e.c, 0)
			return err
		}
		buf := make([]byte, 1)
		req, err := e.d.Irecv(buf, 1, datatype.Byte, 0, 0, e.c, 0)
		if err != nil {
			return err
		}
		req.Wait()
		if buf[0] != 42 {
			return fmt.Errorf("got %d", buf[0])
		}
		// No netmod injection should have been charged for the send on
		// rank 0 — checked there via the transport counter being
		// below the OFI injection cost.
		return nil
	})
}

func TestSelfSend(t *testing.T) {
	runWorld(t, 1, 1, fabric.OFI, core.Default, func(e *env) error {
		if _, err := e.d.Isend([]byte{9}, 1, datatype.Byte, 0, 3, e.c, 0); err != nil {
			return err
		}
		buf := make([]byte, 1)
		req, err := e.d.Irecv(buf, 1, datatype.Byte, 0, 3, e.c, 0)
		if err != nil {
			return err
		}
		req.Wait()
		if buf[0] != 9 {
			return fmt.Errorf("self send got %d", buf[0])
		}
		return nil
	})
}

func TestAnySourceAcrossTransports(t *testing.T) {
	// Four ranks, two per node: rank 0 receives ANY_SOURCE from an
	// on-node peer (shm) and an off-node peer (netmod) through the one
	// shared matching context.
	runWorld(t, 4, 2, fabric.OFI, core.Default, func(e *env) error {
		switch e.c.Rank() {
		case 1, 2: // 1 shares node 0 with rank 0; 2 is on node 1
			_, err := e.d.Isend([]byte{byte(e.c.Rank())}, 1, datatype.Byte, 0, 5, e.c, 0)
			return err
		case 0:
			got := map[int]bool{}
			for i := 0; i < 2; i++ {
				buf := make([]byte, 1)
				req, err := e.d.Irecv(buf, 1, datatype.Byte, core.AnySource, 5, e.c, 0)
				if err != nil {
					return err
				}
				req.Wait()
				got[req.Status.Source] = true
			}
			if !got[1] || !got[2] {
				return fmt.Errorf("sources seen: %v", got)
			}
		}
		return nil
	})
}

func TestProcNull(t *testing.T) {
	runWorld(t, 1, 1, fabric.INF, core.Default, func(e *env) error {
		req, err := e.d.Isend([]byte{1}, 1, datatype.Byte, core.ProcNull, 0, e.c, 0)
		if err != nil {
			return err
		}
		if !req.Done() {
			return errors.New("PROC_NULL send not immediately complete")
		}
		rreq, err := e.d.Irecv(make([]byte, 1), 1, datatype.Byte, core.ProcNull, 0, e.c, 0)
		if err != nil {
			return err
		}
		rreq.Wait()
		if rreq.Status.Source != core.ProcNull || rreq.Status.Count != 0 {
			return fmt.Errorf("status %+v", rreq.Status)
		}
		return nil
	})
}

func TestDerivedDatatypeRoundTrip(t *testing.T) {
	vec, _ := datatype.NewVector(3, 1, 2, datatype.Byte) // every other byte
	if err := vec.Commit(); err != nil {
		t.Fatal(err)
	}
	runWorld(t, 2, 1, fabric.INF, core.Default, func(e *env) error {
		if e.c.Rank() == 0 {
			src := []byte{'a', 'x', 'b', 'y', 'c', 'z'}
			_, err := e.d.Isend(src, 1, vec, 1, 0, e.c, 0)
			return err
		}
		dst := bytes.Repeat([]byte{'.'}, 6)
		req, err := e.d.Irecv(dst, 1, vec, 0, 0, e.c, 0)
		if err != nil {
			return err
		}
		req.Wait()
		if string(dst) != "a.b.c." {
			return fmt.Errorf("unpacked %q", dst)
		}
		return nil
	})
}

func TestTruncationStatus(t *testing.T) {
	runWorld(t, 2, 1, fabric.INF, core.Default, func(e *env) error {
		if e.c.Rank() == 0 {
			_, err := e.d.Isend(make([]byte, 8), 8, datatype.Byte, 1, 0, e.c, 0)
			return err
		}
		req, err := e.d.Irecv(make([]byte, 4), 4, datatype.Byte, 0, 0, e.c, 0)
		if err != nil {
			return err
		}
		req.Wait()
		if !req.Status.Truncated {
			return errors.New("truncation not reported")
		}
		return nil
	})
}

func TestNoReqAndCommWaitall(t *testing.T) {
	runWorld(t, 2, 1, fabric.INF, core.Default, func(e *env) error {
		if e.c.Rank() == 0 {
			for i := 0; i < 10; i++ {
				req, err := e.d.Isend([]byte{byte(i)}, 1, datatype.Byte, 1, i, e.c, core.FlagNoReq)
				if err != nil {
					return err
				}
				if req != nil {
					return errors.New("no-req send returned a request")
				}
			}
			return e.d.CommWaitall(e.c)
		}
		for i := 0; i < 10; i++ {
			buf := make([]byte, 1)
			req, err := e.d.Irecv(buf, 1, datatype.Byte, 0, i, e.c, 0)
			if err != nil {
				return err
			}
			req.Wait()
			if buf[0] != byte(i) {
				return fmt.Errorf("message %d carried %d", i, buf[0])
			}
		}
		return nil
	})
}

func TestAllOptsPathAndNoMatchRecv(t *testing.T) {
	runWorld(t, 2, 1, fabric.INF, core.NoErrSingleIPO, func(e *env) error {
		if e.c.Rank() == 0 {
			for i := 0; i < 3; i++ {
				if err := e.d.IsendAllOpts([]byte{byte(10 + i)}, 1, e.c); err != nil {
					return err
				}
			}
			return nil
		}
		// Arrival order: 10, 11, 12.
		for i := 0; i < 3; i++ {
			buf := make([]byte, 1)
			req, err := e.d.Irecv(buf, 1, datatype.Byte, core.AnySource, core.AnyTag, e.c, core.FlagNoMatch)
			if err != nil {
				return err
			}
			req.Wait()
			if buf[0] != byte(10+i) {
				return fmt.Errorf("arrival order violated: got %d at %d", buf[0], i)
			}
		}
		return nil
	})
}

func TestIprobe(t *testing.T) {
	runWorld(t, 2, 1, fabric.INF, core.Default, func(e *env) error {
		if e.c.Rank() == 0 {
			_, err := e.d.Isend([]byte{1, 2, 3}, 3, datatype.Byte, 1, 9, e.c, 0)
			return err
		}
		var st request.Status
		var ok bool
		for !ok {
			var err error
			st, ok, err = e.d.Iprobe(0, 9, e.c)
			if err != nil {
				return err
			}
		}
		if st.Count != 3 || st.Source != 0 || st.Tag != 9 {
			return fmt.Errorf("probe status %+v", st)
		}
		// The message is still receivable.
		buf := make([]byte, 3)
		req, err := e.d.Irecv(buf, 3, datatype.Byte, 0, 9, e.c, 0)
		if err != nil {
			return err
		}
		req.Wait()
		return nil
	})
}

// TestIsendMandatoryInstructionCount pins the Table 1 "MPI mandatory
// overheads" figure for the default MPI_ISEND fast path: 59.
func TestIsendMandatoryInstructionCount(t *testing.T) {
	runWorld(t, 2, 1, fabric.INF, core.Default, func(e *env) error {
		if e.c.Rank() != 0 {
			buf := make([]byte, 1)
			req, err := e.d.Irecv(buf, 1, datatype.Byte, 0, 0, e.c, 0)
			if err != nil {
				return err
			}
			req.Wait()
			return nil
		}
		snap := e.d.Rank().Profile().Snap()
		req, err := e.d.Isend([]byte{1}, 1, datatype.Byte, 1, 0, e.c, 0)
		if err != nil {
			return err
		}
		req.Free()
		delta := e.d.Rank().Profile().Delta(snap)
		if got := delta.Count(instr.Mandatory); got != 59 {
			return fmt.Errorf("mandatory = %d, want 59", got)
		}
		if got := delta.Count(instr.Redundant); got != 59 {
			return fmt.Errorf("redundant = %d, want 59", got)
		}
		return nil
	})
}

// TestAllOptsInstructionCount pins the Section 3.7 figure: 16
// instructions for MPI_ISEND_ALL_OPTS.
func TestAllOptsInstructionCount(t *testing.T) {
	runWorld(t, 2, 1, fabric.INF, core.NoErrSingleIPO, func(e *env) error {
		if e.c.Rank() != 0 {
			buf := make([]byte, 1)
			req, err := e.d.Irecv(buf, 1, datatype.Byte, core.AnySource, core.AnyTag, e.c, core.FlagNoMatch)
			if err != nil {
				return err
			}
			req.Wait()
			return nil
		}
		snap := e.d.Rank().Profile().Snap()
		if err := e.d.IsendAllOpts([]byte{1}, 1, e.c); err != nil {
			return err
		}
		delta := e.d.Rank().Profile().Delta(snap)
		if got := delta.Total; got != 16 {
			return fmt.Errorf("all-opts total = %d, want 16", got)
		}
		return nil
	})
}

// TestIPOBuildChargesNoRedundant confirms the inlined build drops the
// redundant-runtime-check charges.
func TestIPOBuildChargesNoRedundant(t *testing.T) {
	runWorld(t, 2, 1, fabric.INF, core.NoErrSingleIPO, func(e *env) error {
		if e.c.Rank() != 0 {
			buf := make([]byte, 1)
			req, err := e.d.Irecv(buf, 1, datatype.Byte, 0, 0, e.c, 0)
			if err != nil {
				return err
			}
			req.Wait()
			return nil
		}
		snap := e.d.Rank().Profile().Snap()
		req, err := e.d.Isend([]byte{1}, 1, datatype.Byte, 1, 0, e.c, 0)
		if err != nil {
			return err
		}
		req.Free()
		delta := e.d.Rank().Profile().Delta(snap)
		if got := delta.Count(instr.Redundant); got != 0 {
			return fmt.Errorf("ipo build charged %d redundant instructions", got)
		}
		return nil
	})
}

// TestProposalSavings verifies each Section 3 flag shaves its
// documented instruction count off the Isend fast path.
func TestProposalSavings(t *testing.T) {
	measure := func(e *env, flags core.OpFlags, dest int) int64 {
		snap := e.d.Rank().Profile().Snap()
		req, err := e.d.Isend([]byte{1}, 1, datatype.Byte, dest, 0, e.c, flags)
		if err != nil {
			t.Error(err)
		}
		if req != nil {
			req.Free()
		}
		return e.d.Rank().Profile().Delta(snap).Count(instr.Mandatory)
	}
	runWorld(t, 2, 1, fabric.INF, core.NoErrSingleIPO, func(e *env) error {
		if e.c.Rank() != 0 {
			// Drain everything rank 0 sends (arrival order, any bits).
			for i := 0; i < 5; i++ {
				buf := make([]byte, 1)
				req, err := e.d.Irecv(buf, 1, datatype.Byte, core.AnySource, core.AnyTag, e.c, core.FlagNoMatch)
				if err != nil {
					return err
				}
				req.Wait()
			}
			return nil
		}
		base := measure(e, 0, 1)
		if base != 59 {
			return fmt.Errorf("baseline mandatory = %d, want 59", base)
		}
		cases := []struct {
			name string
			flag core.OpFlags
			save int64
		}{
			{"glob_rank", core.FlagGlobalRank, costRankTranslate},
			{"predef_comm", core.FlagPredefComm, costCommDeref - costCommPredef},
			{"no_proc_null", core.FlagNoProcNull, costProcNull},
			{"no_req", core.FlagNoReq, costRequestAlloc - costCounter},
			{"no_match", core.FlagNoMatch, costMatchBits - costMatchBitsNoMatch},
		}
		for _, c := range cases {
			got := measure(e, c.flag, 1)
			if base-got != c.save {
				return fmt.Errorf("%s saved %d, want %d", c.name, base-got, c.save)
			}
		}
		return nil
	})
}

func TestDenseTableTranslationCheaper(t *testing.T) {
	// A dense (irregular) communicator charges the O(P)-table cost; the
	// compressed representation charges more instructions (the
	// rank-translation ablation).
	runWorld(t, 3, 1, fabric.INF, core.NoErrSingleIPO, func(e *env) error {
		sub, err := e.c.Split(0, []int{0, 2, 1}[e.c.Rank()])
		if err != nil {
			return err
		}
		if sub.Table.Kind() != comm.TableDense {
			return fmt.Errorf("table kind = %d, want dense", sub.Table.Kind())
		}
		if e.c.Rank() == 0 {
			snap := e.d.Rank().Profile().Snap()
			req, err := e.d.Isend([]byte{1}, 1, datatype.Byte, 1, 0, sub, 0)
			if err != nil {
				return err
			}
			req.Free()
			dense := e.d.Rank().Profile().Delta(snap).Count(instr.Mandatory)
			if dense != 59-costRankTranslate+costRankTranslateDense {
				return fmt.Errorf("dense mandatory = %d", dense)
			}
		}
		// sub ranks: 0->world0, 1->world2, 2->world1. World rank 2 is
		// sub rank 1: receive there.
		if e.c.Rank() == 2 {
			buf := make([]byte, 1)
			req, err := e.d.Irecv(buf, 1, datatype.Byte, 0, 0, sub, 0)
			if err != nil {
				return err
			}
			req.Wait()
		}
		return nil
	})
}
