package ch4

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"

	"gompi/internal/abort"
	"gompi/internal/coll"
	"gompi/internal/comm"
	"gompi/internal/core"
	"gompi/internal/datatype"
	"gompi/internal/instr"
	"gompi/internal/rma"
	"gompi/internal/vtime"
)

// Mandatory-overhead charges on the one-sided fast path (Table 1,
// MPI_PUT column).
const (
	costWinDeref     = 8 // dereference into the window object
	costOffsetXlate  = 4 // base lookup + displacement-unit scaling (§3.2)
	costVirtAddr     = 1 // the virtual-address fast path's single load
	costEpochTrack   = 6 // outstanding-op accounting for flush semantics
	costRDMADescPrep = 8 // RDMA descriptor preparation
	costAMFallback   = 30
	costLockProto    = 24 // passive-target lock protocol round trip
	costFlushProto   = 12
)

// ErrNotAttached reports RMA to a dynamic window address with no
// attachment.
var ErrNotAttached = errors.New("ch4: dynamic window address not attached")

// winInfo is the per-rank record exchanged during window creation.
type winInfo struct {
	key, size, dispUnit int
}

// WinCreate collectively creates a window exposing mem.
func (d *Device) WinCreate(mem []byte, dispUnit int, c *comm.Comm) (*rma.Win, error) {
	return d.winCreate(mem, dispUnit, c, false)
}

// WinCreateDynamic collectively creates a window with no initial
// memory.
func (d *Device) WinCreateDynamic(c *comm.Comm) (*rma.Win, error) {
	return d.winCreate(nil, 1, c, true)
}

func (d *Device) winCreate(mem []byte, dispUnit int, c *comm.Comm, dynamic bool) (*rma.Win, error) {
	if dispUnit <= 0 {
		return nil, errString("win_create", rma.ErrBadWinArg)
	}
	myKey := 0
	if !dynamic {
		myKey = d.g.Fab.RegisterRegion(d.rank.ID(), mem)
	}
	// Phase 1: everyone learns everyone's region key, size, and
	// displacement unit (the real implementation's allgather).
	vals := c.Exchange(winInfo{myKey, len(mem), dispUnit})
	var sh *rma.Shared
	if c.MyRank == 0 {
		sh = rma.NewShared(c.Size(), dynamic)
		for r, v := range vals {
			wi := v.(winInfo)
			sh.Keys[r], sh.Sizes[r], sh.DispUnits[r] = wi.key, wi.size, wi.dispUnit
		}
	}
	// Phase 2: distribute the completed shared table (and its lock
	// instances) from rank 0.
	vals = c.Exchange(sh)
	sh = vals[0].(*rma.Shared)

	w := rma.NewWin(c, mem, dispUnit, myKey, sh)
	// Windows open in an implicit fence-capable state; MPI programs
	// call Fence to start the first access epoch.
	return w, nil
}

// WinFree collectively releases the window.
func (d *Device) WinFree(w *rma.Win) error {
	d.barrier(w.Comm)
	if !w.Shared.Dynamic {
		d.g.Fab.UnregisterRegion(d.rank.ID(), w.MyKey)
	}
	return nil
}

// WinAttach exposes mem through a dynamic window and returns its
// virtual address, which the application distributes to origins (as it
// would distribute MPI_GET_ADDRESS results).
func (d *Device) WinAttach(w *rma.Win, mem []byte) (rma.VAddr, error) {
	if !w.Shared.Dynamic {
		return 0, errString("win_attach", rma.ErrBadWinArg)
	}
	key := d.g.Fab.RegisterRegion(d.rank.ID(), mem)
	if err := w.Attach(mem, key); err != nil {
		return 0, err
	}
	return rma.MakeDynAddr(key, 0), nil
}

// WinDetach revokes an attachment.
func (d *Device) WinDetach(w *rma.Win, mem []byte, va rma.VAddr) error {
	if err := w.Detach(mem); err != nil {
		return err
	}
	d.g.Fab.UnregisterRegion(d.rank.ID(), va.DynKey())
	return nil
}

// resolveTarget turns (target, disp, flags) into the fabric (rank,
// region key, byte offset) triple, charging the Section 3.2 costs.
func (d *Device) resolveTarget(target, disp, nbytes int, w *rma.Win, flags core.OpFlags) (world, key, off int, err error) {
	world, err = d.translateRank(w.Comm, target)
	if err != nil {
		return 0, 0, 0, err
	}
	if flags.Has(core.FlagVirtAddr) || w.Shared.Dynamic {
		// Virtual-address path: no displacement-unit scaling, no base
		// dereference — a single register use (§3.2 proposal; dynamic
		// windows already carry addresses).
		d.charge(instr.Mandatory, costVirtAddr)
		va := rma.VAddr(disp)
		if w.Shared.Dynamic {
			return world, va.DynKey(), va.DynOff(), nil
		}
		if err := w.CheckVAddr(target, va, nbytes); err != nil {
			return 0, 0, 0, err
		}
		return world, w.Shared.Keys[target], int(va), nil
	}
	d.charge(instr.Mandatory, costOffsetXlate)
	off, err = w.TargetOffset(target, disp, nbytes)
	if err != nil {
		return 0, 0, 0, err
	}
	return world, w.Shared.Keys[target], off, nil
}

// Put implements the ADI one-sided put: native RDMA for contiguous
// layouts, ch4-core active-message fallback for derived target
// layouts — exactly the netmod decision the paper walks through.
func (d *Device) Put(origin []byte, count int, dt *datatype.Type, target, disp int,
	w *rma.Win, flags core.OpFlags) error {

	d.rank.Metrics().NoteRmaPut()
	d.chargeDispatch(costDispatchRMA)

	if !flags.Has(core.FlagNoProcNull) {
		d.charge(instr.Mandatory, costProcNull)
		if target == core.ProcNull {
			return nil
		}
	}
	d.charge(instr.Mandatory, costWinDeref+costEpochTrack)
	d.chargeRedundant(costRedundantMarshal + costRedundantReload + costRedundantBufAddr + costRedundantWinKind)
	d.chargeRedundantType(dt, costRedundantDatatype)

	nbytes := datatype.PackedSize(dt, count)
	world, key, off, err := d.resolveTarget(target, disp, nbytes, w, flags)
	if err != nil {
		return errString("put", err)
	}
	d.charge(instr.Mandatory, costLocality)

	if view, ok := datatype.ContigView(dt, count, origin); ok {
		// Native netmod fast path: one RDMA write.
		d.charge(instr.Mandatory, costRDMADescPrep)
		d.ep.Put(world, key, off, view)
		return nil
	}
	// Active-message fallback in the ch4 core: pack the origin data,
	// ship the flattened target layout, and let the target-side
	// handler scatter it.
	return d.putDerivedAM(origin, count, dt, world, key, off)
}

// Get implements the ADI one-sided get: RDMA reads, per-segment for
// derived layouts.
func (d *Device) Get(origin []byte, count int, dt *datatype.Type, target, disp int,
	w *rma.Win, flags core.OpFlags) error {

	d.rank.Metrics().NoteRmaGet()
	d.chargeDispatch(costDispatchRMA)

	if !flags.Has(core.FlagNoProcNull) {
		d.charge(instr.Mandatory, costProcNull)
		if target == core.ProcNull {
			return nil
		}
	}
	d.charge(instr.Mandatory, costWinDeref+costEpochTrack)
	d.chargeRedundant(costRedundantMarshal + costRedundantReload + costRedundantBufAddr + costRedundantWinKind)
	d.chargeRedundantType(dt, costRedundantDatatype)

	nbytes := datatype.PackedSize(dt, count)
	world, key, off, err := d.resolveTarget(target, disp, nbytes, w, flags)
	if err != nil {
		return errString("get", err)
	}
	d.charge(instr.Mandatory, costLocality)

	if view, ok := datatype.ContigView(dt, count, origin); ok {
		d.charge(instr.Mandatory, costRDMADescPrep)
		d.ep.Get(world, key, off, view)
		return nil
	}
	// Derived layout: one RDMA read per segment, landing directly in
	// the laid-out origin buffer.
	for k := 0; k < count; k++ {
		base := k * dt.Extent()
		for _, s := range dt.Segments() {
			d.charge(instr.Mandatory, costRDMADescPrep)
			d.ep.Get(world, key, off+base+s.Off, origin[base+s.Off:base+s.Off+s.Len])
		}
	}
	return nil
}

// Accumulate folds origin into the target window. Predefined element
// types ride the fabric's atomic read-modify-write (the NIC atomic);
// derived layouts fall back to active messages.
func (d *Device) Accumulate(origin []byte, count int, dt *datatype.Type, target, disp int,
	op coll.Op, w *rma.Win, flags core.OpFlags) error {
	d.rank.Metrics().NoteRmaAcc()
	return d.accumulate(origin, nil, count, dt, target, disp, op, w, flags)
}

// GetAccumulate atomically fetches the prior contents into result and
// folds origin in.
func (d *Device) GetAccumulate(origin, result []byte, count int, dt *datatype.Type,
	target, disp int, op coll.Op, w *rma.Win, flags core.OpFlags) error {
	if result == nil {
		return errString("get_accumulate", rma.ErrBadWinArg)
	}
	d.rank.Metrics().NoteRmaGetAcc()
	return d.accumulate(origin, result, count, dt, target, disp, op, w, flags)
}

func (d *Device) accumulate(origin, result []byte, count int, dt *datatype.Type,
	target, disp int, op coll.Op, w *rma.Win, flags core.OpFlags) error {

	d.chargeDispatch(costDispatchRMA)

	if !flags.Has(core.FlagNoProcNull) {
		d.charge(instr.Mandatory, costProcNull)
		if target == core.ProcNull {
			return nil
		}
	}
	d.charge(instr.Mandatory, costWinDeref+costEpochTrack)
	d.chargeRedundant(costRedundantMarshal + costRedundantReload + costRedundantWinKind)
	d.chargeRedundantType(dt, costRedundantDatatype)

	elem := dt.BaseElem()
	if elem == nil {
		return errString("accumulate", coll.ErrBadOp)
	}
	nbytes := datatype.PackedSize(dt, count)
	world, key, off, err := d.resolveTarget(target, disp, nbytes, w, flags)
	if err != nil {
		return errString("accumulate", err)
	}
	d.charge(instr.Mandatory, costLocality)

	view, contig := datatype.ContigView(dt, count, origin)
	if !contig {
		// Derived layouts take the AM fallback; result fetch is not
		// supported there (matching MPI implementations that restrict
		// get_accumulate fast paths).
		if result != nil {
			return errString("get_accumulate", coll.ErrBadOp)
		}
		return d.accDerivedAM(origin, count, dt, op, world, key, off)
	}

	d.charge(instr.Mandatory, costRDMADescPrep)
	var applyErr error
	d.ep.RMW(world, key, off, nbytes, func(tgt []byte) {
		if result != nil {
			copy(result, tgt)
		}
		applyErr = coll.Apply(op, elem, tgt, view)
	})
	if applyErr != nil {
		return errString("accumulate", applyErr)
	}
	return nil
}

// Fence closes the current fence epoch and opens the next
// (MPI_WIN_FENCE): wait out the AM fallback acknowledgements, barrier,
// and fold remote-write arrival times into the local clock.
func (d *Device) Fence(w *rma.Win) error {
	d.charge(instr.Mandatory, costEpochTrack)
	d.flushAM()
	d.barrier(w.Comm)
	if !w.Shared.Dynamic {
		d.rank.Sync(d.g.Fab.RegionArrival(d.rank.ID(), w.MyKey))
	}
	return w.OpenEpoch(rma.EpochFence, -1)
}

// FenceEnd closes the fence epoch sequence (MPI_WIN_FENCE with
// MPI_MODE_NOSUCCEED): flush, synchronize, and leave the window
// epoch-free so passive-target epochs may follow.
func (d *Device) FenceEnd(w *rma.Win) error {
	d.charge(instr.Mandatory, costEpochTrack)
	d.flushAM()
	d.barrier(w.Comm)
	if !w.Shared.Dynamic {
		d.rank.Sync(d.g.Fab.RegionArrival(d.rank.ID(), w.MyKey))
	}
	if w.InEpoch() {
		if _, err := w.CloseEpoch(); err != nil {
			return err
		}
	}
	return nil
}

// Lock opens a passive-target access epoch on target
// (MPI_WIN_LOCK). The lock protocol costs a network round trip.
func (d *Device) Lock(w *rma.Win, target int, exclusive bool) error {
	if err := w.OpenEpoch(rma.EpochLock, target); err != nil {
		return err
	}
	d.charge(instr.Mandatory, costLockProto)
	d.rank.ChargeCycles(instr.Transport, 2*d.g.Fab.Profile().WireLatency)
	// Spin with progress: a blocked rank must keep servicing AM
	// fallback traffic or lock holders could never finish their epoch.
	for !w.Shared.TryAcquireLock(target, exclusive) {
		if d.g.Fab.Aborted() {
			panic(abort.ErrWorldAborted)
		}
		d.Progress()
		runtime.Gosched()
	}
	w.LockExclusive = exclusive
	return nil
}

// Unlock flushes and closes the passive-target epoch (MPI_WIN_UNLOCK).
func (d *Device) Unlock(w *rma.Win, target int) error {
	if lr := w.LockedRank(); lr != target {
		return errString("unlock", fmt.Errorf("locked %d, unlocking %d", lr, target))
	}
	if _, err := w.CloseEpoch(); err != nil {
		return err
	}
	if err := d.Flush(w, target); err != nil {
		return err
	}
	d.charge(instr.Mandatory, costLockProto)
	w.Shared.ReleaseLock(target, w.LockExclusive)
	return nil
}

// Flush completes all outstanding operations to target
// (MPI_WIN_FLUSH). Our RDMA is synchronous at injection, so this waits
// out AM fallback acks and charges the completion round trip.
func (d *Device) Flush(w *rma.Win, target int) error {
	d.charge(instr.Mandatory, costFlushProto)
	d.flushAM()
	d.rank.ChargeCycles(instr.Transport, 2*d.g.Fab.Profile().WireLatency)
	return nil
}

// --- active-message fallback -------------------------------------------

// amPending tracks unacknowledged AM fallback operations; mutated only
// on the owner goroutine (the ack handler runs there too).
func (d *Device) flushAM() {
	if d.amSent != d.amAcked {
		d.waitUntil(func() bool { return d.amSent == d.amAcked })
	}
	d.rank.Sync(d.amAckArrival)
}

// putDerivedAM ships a derived-layout put as an active message: packed
// payload plus the flattened target layout; the target-side handler
// scatters it and acknowledges.
func (d *Device) putDerivedAM(origin []byte, count int, dt *datatype.Type, world, key, off int) error {
	d.charge(instr.Mandatory, costAMFallback)
	packed := make([]byte, datatype.PackedSize(dt, count))
	if _, err := datatype.Pack(dt, count, origin, packed); err != nil {
		return errString("put", err)
	}
	d.charge(instr.Mandatory, int64(10+len(packed)/2))
	hdr := encodeLayoutHeader(key, off, count, dt)
	d.amSent++
	d.ep.AMSend(world, amPutDerived, hdr, packed)
	return nil
}

// accDerivedAM ships a derived-layout accumulate.
func (d *Device) accDerivedAM(origin []byte, count int, dt *datatype.Type, op coll.Op, world, key, off int) error {
	d.charge(instr.Mandatory, costAMFallback)
	packed := make([]byte, datatype.PackedSize(dt, count))
	if _, err := datatype.Pack(dt, count, origin, packed); err != nil {
		return errString("accumulate", err)
	}
	hdr := encodeLayoutHeader(key, off, count, dt)
	hdr = append(hdr, byte(op), byte(elemCode(dt.BaseElem())))
	d.amSent++
	d.ep.AMSend(world, amAccDerived, hdr, packed)
	return nil
}

// encodeLayoutHeader flattens (key, off, count, extent, segments) into
// the AM header the target handler scatters by.
func encodeLayoutHeader(key, off, count int, dt *datatype.Type) []byte {
	segs := dt.Segments()
	hdr := make([]byte, 0, 20+8*len(segs))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(key))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(off))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(count))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(dt.Extent()))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(segs)))
	for _, s := range segs {
		hdr = binary.LittleEndian.AppendUint32(hdr, uint32(s.Off))
		hdr = binary.LittleEndian.AppendUint32(hdr, uint32(s.Len))
	}
	return hdr
}

type layoutHeader struct {
	key, off, count, extent int
	segs                    []datatype.Segment
	rest                    []byte
}

func decodeLayoutHeader(hdr []byte) layoutHeader {
	u := func(i int) int { return int(binary.LittleEndian.Uint32(hdr[4*i:])) }
	n := u(4)
	lh := layoutHeader{key: u(0), off: u(1), count: u(2), extent: u(3)}
	for i := 0; i < n; i++ {
		lh.segs = append(lh.segs, datatype.Segment{Off: u(5 + 2*i), Len: u(6 + 2*i)})
	}
	lh.rest = hdr[4*(5+2*n):]
	return lh
}

// handlePutDerived is the target-side AM fallback for derived-layout
// puts: scatter the packed payload into window memory per the shipped
// layout, then acknowledge.
func (d *Device) handlePutDerived(src int, hdr, payload []byte, _ vtime.Time) {
	lh := decodeLayoutHeader(hdr)
	d.charge(instr.Mandatory, int64(20+len(payload)/2))
	d.scatter(lh, payload, nil, 0)
	d.ep.AMSend(src, amAck, nil, nil)
}

// handleAccDerived is the target-side AM fallback for derived-layout
// accumulates.
func (d *Device) handleAccDerived(src int, hdr, payload []byte, _ vtime.Time) {
	lh := decodeLayoutHeader(hdr)
	op := coll.Op(lh.rest[0])
	elem := elemFromCode(int(lh.rest[1]))
	d.charge(instr.Mandatory, int64(20+len(payload)))
	d.scatter(lh, payload, elem, op)
	d.ep.AMSend(src, amAck, nil, nil)
}

// scatter writes the packed payload into the local window region
// according to the shipped layout. elem == nil means plain copy;
// otherwise fold with op.
func (d *Device) scatter(lh layoutHeader, payload []byte, elem *datatype.Type, op coll.Op) {
	mem := d.localRegion(lh.key)
	n := 0
	for k := 0; k < lh.count; k++ {
		base := lh.off + k*lh.extent
		for _, s := range lh.segs {
			dst := mem[base+s.Off : base+s.Off+s.Len]
			src := payload[n : n+s.Len]
			if elem == nil {
				copy(dst, src)
			} else if err := coll.Apply(op, elem, dst, src); err != nil {
				panic(errString("am accumulate", err))
			}
			n += s.Len
		}
	}
}

// handleAck counts an AM fallback acknowledgement; the arrival folds
// into the clock at the next flush.
func (d *Device) handleAck(_ int, _, _ []byte, arrival vtime.Time) {
	d.amAcked++
	if arrival > d.amAckArrival {
		d.amAckArrival = arrival
	}
}

// elemCode/elemFromCode serialize predefined element types for AM
// headers.
var elemTable = []*datatype.Type{datatype.Byte, datatype.Char, datatype.Short,
	datatype.Int, datatype.Long, datatype.Float, datatype.Double}

func elemCode(t *datatype.Type) int {
	for i, e := range elemTable {
		if e == t {
			return i
		}
	}
	return -1
}

func elemFromCode(c int) *datatype.Type {
	if c < 0 || c >= len(elemTable) {
		return nil
	}
	return elemTable[c]
}

// --- device-internal barrier -------------------------------------------

// barrier is the dissemination barrier used by epoch synchronization
// and window creation teardown, run over the device's own pt2pt on the
// communicator's collective context with a reserved tag block.
const barrierTagBase = 1 << 20

func (d *Device) barrier(c *comm.Comm) {
	cv := c.CollView()
	rank, size := cv.MyRank, cv.Size()
	var token [1]byte
	round := 0
	for dist := 1; dist < size; dist *= 2 {
		to := (rank + dist) % size
		from := (rank - dist + size) % size
		tag := barrierTagBase + round
		if _, err := d.Isend(token[:], 1, datatype.Byte, to, tag, cv, core.FlagNoProcNull|core.FlagNoReq); err != nil {
			panic(errString("barrier send", err))
		}
		req, err := d.Irecv(token[:], 1, datatype.Byte, from, tag, cv, core.FlagNoProcNull)
		if err != nil {
			panic(errString("barrier recv", err))
		}
		req.Wait()
		req.Free()
		round++
	}
}

// localRegion resolves one of this rank's own region keys to its
// memory.
func (d *Device) localRegion(key int) []byte {
	return d.g.Fab.RegionMem(d.rank.ID(), key)
}
