package ch4

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"

	"gompi/internal/abort"
	"gompi/internal/coll"
	"gompi/internal/comm"
	"gompi/internal/core"
	"gompi/internal/datatype"
	"gompi/internal/flight"
	"gompi/internal/instr"
	"gompi/internal/request"
	"gompi/internal/rma"
	"gompi/internal/vtime"
)

// Mandatory-overhead charges on the one-sided fast path (Table 1,
// MPI_PUT column).
const (
	costWinDeref     = 8 // dereference into the window object
	costOffsetXlate  = 4 // base lookup + displacement-unit scaling (§3.2)
	costVirtAddr     = 1 // the virtual-address fast path's single load
	costEpochTrack   = 6 // outstanding-op accounting for flush semantics
	costRDMADescPrep = 8 // RDMA descriptor preparation
	costAMFallback   = 30
	costLockProto    = 24 // passive-target lock protocol round trip
	costFlushProto   = 12
	// costFlushLocal: local completion is a bookkeeping check — origin
	// buffers are reusable at issue on this device (RDMA copies at
	// injection, the AM fallback packs), so FLUSH_LOCAL pays no wire
	// round trip. The cheap half of the flush split foMPI exploits.
	costFlushLocal = 4
	// costPutAllOpts is the fused one-sided path's total mandatory
	// charge: window handle load (2), epoch-counter bump (2),
	// displacement scale (2), locality branch (2), fused descriptor
	// build + doorbell write (8) — the Section 3.7 treatment applied
	// to MPI_PUT.
	costPutAllOpts = 16
)

// ErrNotAttached reports RMA to a dynamic window address with no
// attachment.
var ErrNotAttached = errors.New("ch4: dynamic window address not attached")

// winInfo is the per-rank record exchanged during window creation.
type winInfo struct {
	key, size, dispUnit int
}

// WinCreate collectively creates a window exposing mem.
func (d *Device) WinCreate(mem []byte, dispUnit int, c *comm.Comm) (*rma.Win, error) {
	return d.winCreate(mem, dispUnit, c, false)
}

// WinCreateDynamic collectively creates a window with no initial
// memory.
func (d *Device) WinCreateDynamic(c *comm.Comm) (*rma.Win, error) {
	return d.winCreate(nil, 1, c, true)
}

func (d *Device) winCreate(mem []byte, dispUnit int, c *comm.Comm, dynamic bool) (*rma.Win, error) {
	if dispUnit <= 0 {
		return nil, errString("win_create", rma.ErrBadWinArg)
	}
	myKey := 0
	if !dynamic {
		myKey = d.g.Fab.RegisterRegion(d.rank.ID(), mem)
	}
	// Phase 1: everyone learns everyone's region key, size, and
	// displacement unit (the real implementation's allgather).
	vals := c.Exchange(winInfo{myKey, len(mem), dispUnit})
	var sh *rma.Shared
	if c.MyRank == 0 {
		sh = rma.NewShared(c.Size(), dynamic)
		for r, v := range vals {
			wi := v.(winInfo)
			sh.Keys[r], sh.Sizes[r], sh.DispUnits[r] = wi.key, wi.size, wi.dispUnit
		}
	}
	// Phase 2: distribute the completed shared table (and its lock
	// instances) from rank 0.
	vals = c.Exchange(sh)
	sh = vals[0].(*rma.Shared)

	w := rma.NewWin(c, mem, dispUnit, myKey, sh)
	// Windows open in an implicit fence-capable state; MPI programs
	// call Fence to start the first access epoch.
	return w, nil
}

// WinFree collectively releases the window.
func (d *Device) WinFree(w *rma.Win) error {
	d.barrier(w.Comm)
	if !w.Shared.Dynamic {
		d.g.Fab.UnregisterRegion(d.rank.ID(), w.MyKey)
	}
	return nil
}

// WinAttach exposes mem through a dynamic window and returns its
// virtual address, which the application distributes to origins (as it
// would distribute MPI_GET_ADDRESS results).
func (d *Device) WinAttach(w *rma.Win, mem []byte) (rma.VAddr, error) {
	if !w.Shared.Dynamic {
		return 0, errString("win_attach", rma.ErrBadWinArg)
	}
	key := d.g.Fab.RegisterRegion(d.rank.ID(), mem)
	if err := w.Attach(mem, key); err != nil {
		return 0, err
	}
	return rma.MakeDynAddr(key, 0), nil
}

// WinDetach revokes an attachment.
func (d *Device) WinDetach(w *rma.Win, mem []byte, va rma.VAddr) error {
	if err := w.Detach(mem); err != nil {
		return err
	}
	d.g.Fab.UnregisterRegion(d.rank.ID(), va.DynKey())
	return nil
}

// resolveTarget turns (target, disp, flags) into the fabric (rank,
// region key, byte offset) triple, charging the Section 3.2 costs.
func (d *Device) resolveTarget(target, disp, nbytes int, w *rma.Win, flags core.OpFlags) (world, key, off int, err error) {
	world, err = d.translateRank(w.Comm, target)
	if err != nil {
		return 0, 0, 0, err
	}
	if flags.Has(core.FlagVirtAddr) || w.Shared.Dynamic {
		// Virtual-address path: no displacement-unit scaling, no base
		// dereference — a single register use (§3.2 proposal; dynamic
		// windows already carry addresses).
		d.charge(instr.Mandatory, costVirtAddr)
		va := rma.VAddr(disp)
		if w.Shared.Dynamic {
			return world, va.DynKey(), va.DynOff(), nil
		}
		if err := w.CheckVAddr(target, va, nbytes); err != nil {
			return 0, 0, 0, err
		}
		return world, w.Shared.Keys[target], int(va), nil
	}
	d.charge(instr.Mandatory, costOffsetXlate)
	off, err = w.TargetOffset(target, disp, nbytes)
	if err != nil {
		return 0, 0, 0, err
	}
	return world, w.Shared.Keys[target], off, nil
}

// Put implements the ADI one-sided put: native RDMA for contiguous
// layouts, ch4-core active-message fallback for derived target
// layouts — exactly the netmod decision the paper walks through.
func (d *Device) Put(origin []byte, count int, dt *datatype.Type, target, disp int,
	w *rma.Win, flags core.OpFlags) error {

	d.rank.Metrics().NoteRmaPut()
	d.chargeDispatch(costDispatchRMA)

	if !flags.Has(core.FlagNoProcNull) {
		d.charge(instr.Mandatory, costProcNull)
		if target == core.ProcNull {
			return nil
		}
	}
	d.charge(instr.Mandatory, costWinDeref+costEpochTrack)
	d.chargeRedundant(costRedundantMarshal + costRedundantReload + costRedundantBufAddr + costRedundantWinKind)
	d.chargeRedundantType(dt, costRedundantDatatype)

	nbytes := datatype.PackedSize(dt, count)
	world, key, off, err := d.resolveTarget(target, disp, nbytes, w, flags)
	if err != nil {
		return errString("put", err)
	}
	d.charge(instr.Mandatory, costLocality)
	d.rank.Metrics().Flight.Record(flight.RmaPut, int64(d.rank.Now()), world, nbytes, -1)

	if view, ok := datatype.ContigView(dt, count, origin); ok {
		if d.shmWindowLocal(world) && !w.Shared.Dynamic {
			d.putShm(world, key, off, view)
			return nil
		}
		// Native netmod fast path: one RDMA write.
		d.charge(instr.Mandatory, costRDMADescPrep)
		d.ep.Put(world, key, off, view)
		return nil
	}
	// Active-message fallback in the ch4 core: pack the origin data,
	// ship the flattened target layout, and let the target-side
	// handler scatter it.
	return d.putDerivedAM(origin, count, dt, world, key, off)
}

// shmWindowLocal reports whether world's window memory sits in this
// node's shared address space, so direct loads and stores (not wire
// injections) can move the bytes.
func (d *Device) shmWindowLocal(world int) bool {
	return d.g.Shm != nil && d.g.World.SameNode(world, d.rank.ID())
}

// putShm is the intra-node window write. The default arm is zero-copy:
// ranks share the address space, so the payload lands in the target's
// window with a single direct store stream — no staging copy, exactly
// the PiP-style ownership the paper's shared-address ranks enable.
// Under Config.RmaStagedShm the staged arm instead models the CH3-era
// cell-fragmented path (copy into ring cells, drain into the window)
// for the ablation sweep: one staged copy plus the landing copy, with
// per-cell overheads on both sides.
func (d *Device) putShm(world, key, off int, data []byte) {
	m := d.rank.Metrics()
	p := d.g.Shm.Profile()
	if d.cfg.RmaStagedShm {
		cells := (len(data) + d.g.Shm.CellBytes() - 1) / d.g.Shm.CellBytes()
		d.rank.ChargeCycles(instr.Transport,
			int64(p.SendOverhead)+int64(p.RecvOverhead)+
				int64(cells)*2*int64(p.CellOverhead)+int64(2*float64(len(data))*p.PerByte))
		m.CopiesStaged.Note(len(data))
	} else {
		d.charge(instr.Mandatory, costShmPrep)
		d.rank.ChargeCycles(instr.Transport, int64(p.Latency)+int64(float64(len(data))*p.PerByte))
	}
	m.CopiesDirect.Note(len(data))
	d.g.Fab.PutLocal(world, key, off, data, d.rank.Now())
}

// getShm is the intra-node window read, mirroring putShm's two arms.
func (d *Device) getShm(world, key, off int, buf []byte) {
	m := d.rank.Metrics()
	p := d.g.Shm.Profile()
	if d.cfg.RmaStagedShm {
		cells := (len(buf) + d.g.Shm.CellBytes() - 1) / d.g.Shm.CellBytes()
		d.rank.ChargeCycles(instr.Transport,
			int64(p.SendOverhead)+int64(p.RecvOverhead)+
				int64(cells)*2*int64(p.CellOverhead)+int64(2*float64(len(buf))*p.PerByte))
		m.CopiesStaged.Note(len(buf))
	} else {
		d.charge(instr.Mandatory, costShmPrep)
		d.rank.ChargeCycles(instr.Transport, int64(p.Latency)+int64(float64(len(buf))*p.PerByte))
	}
	m.CopiesDirect.Note(len(buf))
	d.g.Fab.GetLocal(world, key, off, buf)
}

// Get implements the ADI one-sided get: RDMA reads, per-segment for
// derived layouts.
func (d *Device) Get(origin []byte, count int, dt *datatype.Type, target, disp int,
	w *rma.Win, flags core.OpFlags) error {

	d.rank.Metrics().NoteRmaGet()
	d.chargeDispatch(costDispatchRMA)

	if !flags.Has(core.FlagNoProcNull) {
		d.charge(instr.Mandatory, costProcNull)
		if target == core.ProcNull {
			return nil
		}
	}
	d.charge(instr.Mandatory, costWinDeref+costEpochTrack)
	d.chargeRedundant(costRedundantMarshal + costRedundantReload + costRedundantBufAddr + costRedundantWinKind)
	d.chargeRedundantType(dt, costRedundantDatatype)

	nbytes := datatype.PackedSize(dt, count)
	world, key, off, err := d.resolveTarget(target, disp, nbytes, w, flags)
	if err != nil {
		return errString("get", err)
	}
	d.charge(instr.Mandatory, costLocality)
	d.rank.Metrics().Flight.Record(flight.RmaGet, int64(d.rank.Now()), world, nbytes, -1)

	if view, ok := datatype.ContigView(dt, count, origin); ok {
		if d.shmWindowLocal(world) && !w.Shared.Dynamic {
			d.getShm(world, key, off, view)
			return nil
		}
		d.charge(instr.Mandatory, costRDMADescPrep)
		d.ep.Get(world, key, off, view)
		return nil
	}
	// Derived layout: one RDMA read per segment, landing directly in
	// the laid-out origin buffer.
	for k := 0; k < count; k++ {
		base := k * dt.Extent()
		for _, s := range dt.Segments() {
			d.charge(instr.Mandatory, costRDMADescPrep)
			d.ep.Get(world, key, off+base+s.Off, origin[base+s.Off:base+s.Off+s.Len])
		}
	}
	return nil
}

// Accumulate folds origin into the target window. Predefined element
// types ride the fabric's atomic read-modify-write (the NIC atomic);
// derived layouts fall back to active messages.
func (d *Device) Accumulate(origin []byte, count int, dt *datatype.Type, target, disp int,
	op coll.Op, w *rma.Win, flags core.OpFlags) error {
	d.rank.Metrics().NoteRmaAcc()
	return d.accumulate(origin, nil, count, dt, target, disp, op, w, flags)
}

// GetAccumulate atomically fetches the prior contents into result and
// folds origin in.
func (d *Device) GetAccumulate(origin, result []byte, count int, dt *datatype.Type,
	target, disp int, op coll.Op, w *rma.Win, flags core.OpFlags) error {
	if result == nil {
		return errString("get_accumulate", rma.ErrBadWinArg)
	}
	d.rank.Metrics().NoteRmaGetAcc()
	return d.accumulate(origin, result, count, dt, target, disp, op, w, flags)
}

func (d *Device) accumulate(origin, result []byte, count int, dt *datatype.Type,
	target, disp int, op coll.Op, w *rma.Win, flags core.OpFlags) error {

	d.chargeDispatch(costDispatchRMA)

	if !flags.Has(core.FlagNoProcNull) {
		d.charge(instr.Mandatory, costProcNull)
		if target == core.ProcNull {
			return nil
		}
	}
	d.charge(instr.Mandatory, costWinDeref+costEpochTrack)
	d.chargeRedundant(costRedundantMarshal + costRedundantReload + costRedundantWinKind)
	d.chargeRedundantType(dt, costRedundantDatatype)

	elem := dt.BaseElem()
	if elem == nil {
		return errString("accumulate", coll.ErrBadOp)
	}
	nbytes := datatype.PackedSize(dt, count)
	world, key, off, err := d.resolveTarget(target, disp, nbytes, w, flags)
	if err != nil {
		return errString("accumulate", err)
	}
	d.charge(instr.Mandatory, costLocality)
	d.rank.Metrics().Flight.Record(flight.RmaAcc, int64(d.rank.Now()), world, nbytes, -1)

	view, contig := datatype.ContigView(dt, count, origin)
	if !contig {
		// Derived layouts take the AM fallback; result fetch is not
		// supported there (matching MPI implementations that restrict
		// get_accumulate fast paths).
		if result != nil {
			return errString("get_accumulate", coll.ErrBadOp)
		}
		return d.accDerivedAM(origin, count, dt, op, world, key, off)
	}

	if d.shmWindowLocal(world) && !w.Shared.Dynamic && !d.cfg.RmaStagedShm {
		// Intra-node lent-view fold: the origin mutates the target
		// bytes where they lie, under the region's atomicity lock —
		// zero staged, zero direct copies (the GetAccumulate result
		// fetch still lands one direct copy into the caller's buffer).
		d.charge(instr.Mandatory, costShmPrep)
		p := d.g.Shm.Profile()
		d.rank.ChargeCycles(instr.Transport, int64(p.Latency)+int64(2*float64(nbytes)*p.PerByte))
		var applyErr error
		d.g.Fab.RMWLocal(world, key, off, nbytes, func(tgt []byte) {
			if result != nil {
				copy(result, tgt)
				d.rank.Metrics().CopiesDirect.Note(nbytes)
			}
			applyErr = coll.Apply(op, elem, tgt, view)
		}, d.rank.Now())
		if applyErr != nil {
			return errString("accumulate", applyErr)
		}
		return nil
	}

	d.charge(instr.Mandatory, costRDMADescPrep)
	var applyErr error
	d.ep.RMW(world, key, off, nbytes, func(tgt []byte) {
		if result != nil {
			copy(result, tgt)
		}
		applyErr = coll.Apply(op, elem, tgt, view)
	})
	if applyErr != nil {
		return errString("accumulate", applyErr)
	}
	return nil
}

// Fence closes the current fence epoch and opens the next
// (MPI_WIN_FENCE): wait out the AM fallback acknowledgements, barrier,
// and fold remote-write arrival times into the local clock.
func (d *Device) Fence(w *rma.Win) error {
	d.charge(instr.Mandatory, costEpochTrack)
	d.flushAM()
	d.barrier(w.Comm)
	if !w.Shared.Dynamic {
		d.rank.Sync(d.g.Fab.RegionArrival(d.rank.ID(), w.MyKey))
	}
	if err := w.OpenEpoch(rma.EpochFence, -1); err != nil {
		return err
	}
	w.OpenedAt = d.rank.Now()
	return nil
}

// FenceEnd closes the fence epoch sequence (MPI_WIN_FENCE with
// MPI_MODE_NOSUCCEED): flush, synchronize, and leave the window
// epoch-free so passive-target epochs may follow.
func (d *Device) FenceEnd(w *rma.Win) error {
	d.charge(instr.Mandatory, costEpochTrack)
	d.flushAM()
	d.barrier(w.Comm)
	if !w.Shared.Dynamic {
		d.rank.Sync(d.g.Fab.RegionArrival(d.rank.ID(), w.MyKey))
	}
	if w.InEpoch() {
		if _, err := w.CloseEpoch(); err != nil {
			return err
		}
	}
	return nil
}

// Lock opens a passive-target access epoch on target
// (MPI_WIN_LOCK). The lock protocol costs a network round trip.
func (d *Device) Lock(w *rma.Win, target int, exclusive bool) error {
	if err := w.OpenEpoch(rma.EpochLock, target); err != nil {
		return err
	}
	w.OpenedAt = d.rank.Now()
	d.charge(instr.Mandatory, costLockProto)
	d.rank.ChargeCycles(instr.Transport, 2*d.g.Fab.Profile().WireLatency)
	// Spin with progress: a blocked rank must keep servicing AM
	// fallback traffic or lock holders could never finish their epoch.
	for !w.Shared.TryAcquireLock(target, exclusive) {
		if d.g.Fab.Aborted() {
			panic(abort.ErrWorldAborted)
		}
		d.Progress()
		runtime.Gosched()
	}
	w.LockExclusive = exclusive
	return nil
}

// Unlock flushes and closes the passive-target epoch (MPI_WIN_UNLOCK).
func (d *Device) Unlock(w *rma.Win, target int) error {
	if lr := w.LockedRank(); lr != target {
		return errString("unlock", fmt.Errorf("locked %d, unlocking %d", lr, target))
	}
	if _, err := w.CloseEpoch(); err != nil {
		return err
	}
	if err := d.Flush(w, target); err != nil {
		return err
	}
	d.charge(instr.Mandatory, costLockProto)
	w.Shared.ReleaseLock(target, w.LockExclusive)
	return nil
}

// Flush completes all outstanding operations to target
// (MPI_WIN_FLUSH). Our RDMA is synchronous at injection, so this waits
// out AM fallback acks and charges the completion round trip.
func (d *Device) Flush(w *rma.Win, target int) error {
	d.charge(instr.Mandatory, costFlushProto)
	d.flushAM()
	d.rank.ChargeCycles(instr.Transport, 2*d.g.Fab.Profile().WireLatency)
	d.observeFlush(w, target)
	return nil
}

// observeFlush threads one completed flush through the observability
// layers: the op counter, the epoch-open→flush histogram (only while
// an epoch is open — Unlock's internal flush runs after the close and
// records the counter alone), and the flight recorder.
func (d *Device) observeFlush(w *rma.Win, target int) {
	m := d.rank.Metrics()
	m.NoteRmaFlush()
	if w.InEpoch() && w.OpenedAt > 0 {
		m.Lat.EpochFlush.Observe(int64(d.rank.Now() - w.OpenedAt))
	}
	m.Flight.Record(flight.RmaFlush, int64(d.rank.Now()), target, 0, -1)
}

// FlushLocal completes outstanding operations to target locally
// (MPI_WIN_FLUSH_LOCAL; target -1 covers all targets): origin buffers
// become reusable, remote completion is not implied. On this device
// every op is locally complete at issue, so the call is pure
// bookkeeping — no AM wait, no wire round trip.
func (d *Device) FlushLocal(w *rma.Win, target int) error {
	d.charge(instr.Mandatory, costFlushLocal)
	d.observeFlush(w, target)
	return nil
}

// FlushAll completes outstanding operations to every target
// (MPI_WIN_FLUSH_ALL) without closing the epoch. Completion tracking
// is per-endpoint, so one AM drain and one round trip cover all
// targets — the same cost as a single Flush, which is the point of
// the flush-based design.
func (d *Device) FlushAll(w *rma.Win) error {
	d.charge(instr.Mandatory, costFlushProto)
	d.flushAM()
	d.rank.ChargeCycles(instr.Transport, 2*d.g.Fab.Profile().WireLatency)
	d.observeFlush(w, -1)
	return nil
}

// FlushRequest returns a request completing when every operation
// issued so far to target (or all targets for -1) is remotely
// complete — the substrate under Rput/Rget/Raccumulate. Pure-RDMA
// epochs complete immediately; with AM fallback traffic in flight the
// request polls the ack counter off the progress engine like any
// two-sided request.
func (d *Device) FlushRequest(w *rma.Win, target int) (*request.Request, error) {
	d.charge(instr.Mandatory, costFlushProto+costRequestAlloc)
	r := d.pool.Get(request.KindRMA)
	r.Issued = int64(d.rank.Now())
	sent := d.amSent
	finish := func(r *request.Request) {
		d.rank.Sync(d.amAckArrival)
		d.rank.ChargeCycles(instr.Transport, 2*d.g.Fab.Profile().WireLatency)
		d.observeFlush(w, target)
		d.rank.Metrics().Lat.ReqLife.Observe(int64(d.rank.Now()) - r.Issued)
		r.MarkComplete(request.Status{})
	}
	if d.amAcked >= sent {
		finish(r)
		return r, nil
	}
	r.Poll = func(r *request.Request) bool {
		d.Progress()
		if d.amAcked < sent {
			return false
		}
		finish(r)
		return true
	}
	r.Block = func(r *request.Request) {
		d.waitUntil(func() bool { return d.amAcked >= sent })
		finish(r)
	}
	return r, nil
}

// LockAll opens one passive-target access epoch spanning every rank
// (MPI_WIN_LOCK_ALL): a single epoch object and one protocol round
// trip, not n Lock calls — the scalable flush-based design. The lock
// table is still honored per target (shared mode admits concurrent
// origins; exclusive serializes against everyone), acquired in rank
// order so concurrent exclusive LockAlls cannot deadlock.
func (d *Device) LockAll(w *rma.Win, exclusive bool) error {
	if err := w.OpenEpoch(rma.EpochLockAll, -1); err != nil {
		return err
	}
	w.OpenedAt = d.rank.Now()
	d.rank.Metrics().NoteRmaLockAll()
	d.charge(instr.Mandatory, costLockProto+costEpochTrack)
	d.rank.ChargeCycles(instr.Transport, 2*d.g.Fab.Profile().WireLatency)
	for t := 0; t < w.Comm.Size(); t++ {
		for !w.Shared.TryAcquireLock(t, exclusive) {
			if d.g.Fab.Aborted() {
				panic(abort.ErrWorldAborted)
			}
			d.Progress()
			runtime.Gosched()
		}
	}
	w.LockExclusive = exclusive
	return nil
}

// UnlockAll flushes and closes the LockAll epoch (MPI_WIN_UNLOCK_ALL).
func (d *Device) UnlockAll(w *rma.Win) error {
	if w.Epoch != rma.EpochLockAll {
		return errString("unlock_all", rma.ErrNoEpoch)
	}
	if err := d.FlushAll(w); err != nil {
		return err
	}
	d.charge(instr.Mandatory, costLockProto)
	for t := w.Comm.Size() - 1; t >= 0; t-- {
		w.Shared.ReleaseLock(t, w.LockExclusive)
	}
	_, err := w.CloseEpoch()
	return err
}

// PutAllOpts is the hand-minimized fused one-sided path, the RMA
// analogue of IsendAllOpts: a contiguous byte payload to a world
// target rank on a world-communicator window with a uniform
// displacement unit, inside an already-open epoch. Validation,
// call-frame, and dispatch charges are elided by the caller's
// contract; with the inlined build this is the 16-instruction put.
func (d *Device) PutAllOpts(origin []byte, worldTarget, disp int, w *rma.Win) error {
	d.rank.Metrics().NoteRmaPut()
	d.charge(instr.Mandatory, costPutAllOpts)
	off := disp * w.DispUnit
	key := w.Shared.Keys[worldTarget]
	if d.shmWindowLocal(worldTarget) && !d.cfg.RmaStagedShm {
		p := d.g.Shm.Profile()
		d.rank.ChargeCycles(instr.Transport, int64(p.Latency)+int64(float64(len(origin))*p.PerByte))
		d.rank.Metrics().CopiesDirect.Note(len(origin))
		d.g.Fab.PutLocal(worldTarget, key, off, origin, d.rank.Now())
		return nil
	}
	d.ep.Put(worldTarget, key, off, origin)
	return nil
}

// --- active-message fallback -------------------------------------------

// amPending tracks unacknowledged AM fallback operations; mutated only
// on the owner goroutine (the ack handler runs there too).
func (d *Device) flushAM() {
	if d.amSent != d.amAcked {
		d.waitUntil(func() bool { return d.amSent == d.amAcked })
	}
	d.rank.Sync(d.amAckArrival)
}

// putDerivedAM ships a derived-layout put as an active message: packed
// payload plus the flattened target layout; the target-side handler
// scatters it and acknowledges.
func (d *Device) putDerivedAM(origin []byte, count int, dt *datatype.Type, world, key, off int) error {
	d.charge(instr.Mandatory, costAMFallback)
	packed := make([]byte, datatype.PackedSize(dt, count))
	if _, err := datatype.Pack(dt, count, origin, packed); err != nil {
		return errString("put", err)
	}
	d.charge(instr.Mandatory, int64(10+len(packed)/2))
	hdr := encodeLayoutHeader(key, off, count, dt)
	d.amSent++
	d.ep.AMSend(world, amPutDerived, hdr, packed)
	return nil
}

// accDerivedAM ships a derived-layout accumulate.
func (d *Device) accDerivedAM(origin []byte, count int, dt *datatype.Type, op coll.Op, world, key, off int) error {
	d.charge(instr.Mandatory, costAMFallback)
	packed := make([]byte, datatype.PackedSize(dt, count))
	if _, err := datatype.Pack(dt, count, origin, packed); err != nil {
		return errString("accumulate", err)
	}
	hdr := encodeLayoutHeader(key, off, count, dt)
	hdr = append(hdr, byte(op), byte(elemCode(dt.BaseElem())))
	d.amSent++
	d.ep.AMSend(world, amAccDerived, hdr, packed)
	return nil
}

// encodeLayoutHeader flattens (key, off, count, extent, segments) into
// the AM header the target handler scatters by.
func encodeLayoutHeader(key, off, count int, dt *datatype.Type) []byte {
	segs := dt.Segments()
	hdr := make([]byte, 0, 20+8*len(segs))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(key))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(off))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(count))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(dt.Extent()))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(segs)))
	for _, s := range segs {
		hdr = binary.LittleEndian.AppendUint32(hdr, uint32(s.Off))
		hdr = binary.LittleEndian.AppendUint32(hdr, uint32(s.Len))
	}
	return hdr
}

type layoutHeader struct {
	key, off, count, extent int
	segs                    []datatype.Segment
	rest                    []byte
}

func decodeLayoutHeader(hdr []byte) layoutHeader {
	u := func(i int) int { return int(binary.LittleEndian.Uint32(hdr[4*i:])) }
	n := u(4)
	lh := layoutHeader{key: u(0), off: u(1), count: u(2), extent: u(3)}
	for i := 0; i < n; i++ {
		lh.segs = append(lh.segs, datatype.Segment{Off: u(5 + 2*i), Len: u(6 + 2*i)})
	}
	lh.rest = hdr[4*(5+2*n):]
	return lh
}

// handlePutDerived is the target-side AM fallback for derived-layout
// puts: scatter the packed payload into window memory per the shipped
// layout, then acknowledge.
func (d *Device) handlePutDerived(src int, hdr, payload []byte, _ vtime.Time) {
	lh := decodeLayoutHeader(hdr)
	d.charge(instr.Mandatory, int64(20+len(payload)/2))
	d.scatter(lh, payload, nil, 0)
	d.ep.AMSend(src, amAck, nil, nil)
}

// handleAccDerived is the target-side AM fallback for derived-layout
// accumulates.
func (d *Device) handleAccDerived(src int, hdr, payload []byte, _ vtime.Time) {
	lh := decodeLayoutHeader(hdr)
	op := coll.Op(lh.rest[0])
	elem := elemFromCode(int(lh.rest[1]))
	d.charge(instr.Mandatory, int64(20+len(payload)))
	d.scatter(lh, payload, elem, op)
	d.ep.AMSend(src, amAck, nil, nil)
}

// scatter writes the packed payload into the local window region
// according to the shipped layout. elem == nil means plain copy;
// otherwise fold with op.
func (d *Device) scatter(lh layoutHeader, payload []byte, elem *datatype.Type, op coll.Op) {
	mem := d.localRegion(lh.key)
	n := 0
	for k := 0; k < lh.count; k++ {
		base := lh.off + k*lh.extent
		for _, s := range lh.segs {
			dst := mem[base+s.Off : base+s.Off+s.Len]
			src := payload[n : n+s.Len]
			if elem == nil {
				copy(dst, src)
			} else if err := coll.Apply(op, elem, dst, src); err != nil {
				panic(errString("am accumulate", err))
			}
			n += s.Len
		}
	}
}

// handleAck counts an AM fallback acknowledgement; the arrival folds
// into the clock at the next flush.
func (d *Device) handleAck(_ int, _, _ []byte, arrival vtime.Time) {
	d.amAcked++
	if arrival > d.amAckArrival {
		d.amAckArrival = arrival
	}
}

// elemCode/elemFromCode serialize predefined element types for AM
// headers.
var elemTable = []*datatype.Type{datatype.Byte, datatype.Char, datatype.Short,
	datatype.Int, datatype.Long, datatype.Float, datatype.Double}

func elemCode(t *datatype.Type) int {
	for i, e := range elemTable {
		if e == t {
			return i
		}
	}
	return -1
}

func elemFromCode(c int) *datatype.Type {
	if c < 0 || c >= len(elemTable) {
		return nil
	}
	return elemTable[c]
}

// --- device-internal barrier -------------------------------------------

// barrier is the dissemination barrier used by epoch synchronization
// and window creation teardown, run over the device's own pt2pt on the
// communicator's collective context with a reserved tag block.
const barrierTagBase = 1 << 20

func (d *Device) barrier(c *comm.Comm) {
	cv := c.CollView()
	rank, size := cv.MyRank, cv.Size()
	var token [1]byte
	round := 0
	for dist := 1; dist < size; dist *= 2 {
		to := (rank + dist) % size
		from := (rank - dist + size) % size
		tag := barrierTagBase + round
		if _, err := d.Isend(token[:], 1, datatype.Byte, to, tag, cv, core.FlagNoProcNull|core.FlagNoReq); err != nil {
			panic(errString("barrier send", err))
		}
		req, err := d.Irecv(token[:], 1, datatype.Byte, from, tag, cv, core.FlagNoProcNull)
		if err != nil {
			panic(errString("barrier recv", err))
		}
		req.Wait()
		req.Free()
		round++
	}
}

// localRegion resolves one of this rank's own region keys to its
// memory.
func (d *Device) localRegion(key int) []byte {
	return d.g.Fab.RegionMem(d.rank.ID(), key)
}
