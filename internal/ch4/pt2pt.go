package ch4

import (
	"errors"
	"fmt"

	"gompi/internal/comm"
	"gompi/internal/core"
	"gompi/internal/datatype"
	"gompi/internal/fabric"
	"gompi/internal/instr"
	"gompi/internal/match"
	"gompi/internal/request"
	"gompi/internal/shm"
	"gompi/internal/vtime"
)

// ErrTruncated reports a receive whose buffer was smaller than the
// matched message (MPI_ERR_TRUNCATE).
var ErrTruncated = errors.New("ch4: message truncated")

// Isend implements the ADI nonblocking send (the paper's MPI_ISEND fast
// path plus the Section 3 proposal variants selected by flags).
func (d *Device) Isend(buf []byte, count int, dt *datatype.Type, dest, tag int,
	c *comm.Comm, flags core.OpFlags) (*request.Request, error) {

	d.chargeDispatch(costDispatchPt2pt)
	issued := d.rank.Now()

	// MPI_PROC_NULL handling (Section 3.4): a comparison and branch
	// every send pays unless the caller promised not to use it.
	if !flags.Has(core.FlagNoProcNull) {
		d.charge(instr.Mandatory, costProcNull)
		if dest == core.ProcNull {
			return d.completedRequest(flags, c, request.Kind(request.KindSend)), nil
		}
	}

	// Communicator object reference (Section 3.3).
	if flags.Has(core.FlagPredefComm) {
		d.charge(instr.Mandatory, costCommPredef)
	} else {
		d.charge(instr.Mandatory, costCommDeref)
	}
	ctx := c.Ctx

	// Rank-to-network-address translation (Section 3.1).
	var world int
	if flags.Has(core.FlagGlobalRank) {
		world = dest // already an MPI_COMM_WORLD rank: zero translation
	} else {
		var err error
		world, err = d.translateRank(c, dest)
		if err != nil {
			return nil, err
		}
	}

	// Datatype resolution (Section 2.2 redundant checks).
	d.chargeRedundant(costRedundantMarshal + costRedundantReload)
	data, err := d.sendBytes(buf, count, dt)
	if err != nil {
		return nil, err
	}

	// Match-bits construction (Section 3.6). The costMatchBits charge
	// includes the branch that dispatches between the full path, the
	// dedicated no-match function, and the info-hint special case.
	var bits match.Bits
	switch {
	case flags.Has(core.FlagNoMatch):
		d.charge(instr.Mandatory, costMatchBitsNoMatch)
		bits = match.MakeBits(ctx, 0, 0)
	case c.AssertNoMatch:
		// The Section 3.6 *alternative*: an info hint instead of a new
		// function. Same wire behavior as FlagNoMatch, but the hint
		// lookup costs an extra dereference into the communicator plus
		// a branch — or just the two branch instructions when the
		// communicator reference already collapsed to a predefined
		// global (Section 3.3), exactly as the paper analyzes.
		if flags.Has(core.FlagPredefComm) {
			d.charge(instr.Mandatory, costMatchBitsNoMatch+2)
		} else {
			d.charge(instr.Mandatory, costMatchBitsNoMatch+2+instr.CostDeref)
		}
		bits = match.MakeBits(ctx, 0, 0)
	default:
		d.charge(instr.Mandatory, costMatchBits)
		bits = match.MakeBits(ctx, c.MyRank, tag)
	}

	// Locality dispatch and injection (ch4 core -> netmod/shmmod). The
	// VCI pick is part of the match-word arithmetic charged above.
	// Requestless sends must stage: without a request there is nothing
	// to carry the handoff's buffer-reuse obligation back to the caller.
	h := d.inject(world, bits, data, d.sendVCI(c, bits), !flags.Has(core.FlagNoReq))

	// Completion (Section 3.5): request object or counter.
	d.chargeRedundant(costRedundantComplete)
	if h != nil {
		// Zero-copy handoff: the buffer is lent to the receiver, so the
		// send completes only when the completion ack comes back over
		// the reverse ring. The request carries that obligation.
		d.charge(instr.Mandatory, costRequestAlloc)
		return d.handoffRequest(h, issued), nil
	}
	r := d.completedRequest(flags, c, request.KindSend)
	// Eager sends are locally complete at return: their request lifetime
	// is the injection cost itself (plus the rendezvous handshake when
	// the message crossed the eager threshold).
	d.rank.Metrics().Lat.ReqLife.Observe(int64(d.rank.Now() - issued))
	if r != nil {
		r.Issued = int64(issued)
	}
	return r, nil
}

// sendBytes resolves the user (buf, count, datatype) triple into wire
// bytes: a zero-copy view for contiguous layouts (the fast path) or a
// pack for derived ones (charged as real pack work).
func (d *Device) sendBytes(buf []byte, count int, dt *datatype.Type) ([]byte, error) {
	d.chargeRedundantType(dt, costRedundantDatatype)
	d.chargeRedundant(costRedundantBufAddr)
	if view, ok := datatype.ContigView(dt, count, buf); ok {
		return view, nil
	}
	packed := make([]byte, datatype.PackedSize(dt, count))
	n, err := datatype.Pack(dt, count, buf, packed)
	if err != nil {
		return nil, err
	}
	// Pack is real per-byte work the fast path never does; it stays in
	// the instruction count so derived-type sends are visibly dearer.
	d.charge(instr.Mandatory, int64(10+n/2))
	return packed, nil
}

// inject routes the message by locality: self-loopback, shmmod for
// on-node peers, netmod otherwise. All three transports deposit at the
// same destination interface, so matching stays consistent across
// them. When allowHandoff is set and the shmmod chose the zero-copy
// handoff protocol, the returned Handoff is the sender's outstanding
// buffer-reuse obligation (nil on every staged/eager path).
func (d *Device) inject(world int, bits match.Bits, data []byte, vci int, allowHandoff bool) *shm.Handoff {
	d.charge(instr.Mandatory, costLocality)
	switch {
	case world == d.rank.ID():
		d.charge(instr.Mandatory, costSelfLoop)
		d.ep.DepositSelfVCI(bits, world, data, d.rank.Now(), vci)
	case d.g.Shm != nil && d.g.World.SameNode(world, d.rank.ID()):
		d.charge(instr.Mandatory, costShmPrep)
		if allowHandoff {
			return d.g.Shm.SendVCI(d.rank.ID(), world, bits, data, vci)
		}
		d.g.Shm.SendStagedVCI(d.rank.ID(), world, bits, data, vci)
	default:
		d.charge(instr.Mandatory, costNetmodPrep)
		d.ep.TaggedSendVCI(world, bits, data, vci)
	}
	return nil
}

// handoffRequest wraps an outstanding zero-copy handoff in a send
// request: completion is the receiver's ack on the reverse ring. Poll
// pumps progress so the rank's own incoming traffic keeps moving while
// it spins; Block parks on the endpoint's event aggregate, which the
// receiver's release wakes through the domain's wake callback. Blocking
// here (not inside the shm send) is what keeps the protocol
// deadlock-free: a sender that blocked before returning could never
// drain its own rings to release views it owes its peers.
func (d *Device) handoffRequest(h *shm.Handoff, issued vtime.Time) *request.Request {
	r := d.pool.Get(request.KindSend)
	r.Issued = int64(issued)
	finish := func(r *request.Request) {
		d.g.Shm.FinishHandoff(h)
		d.rank.Metrics().Lat.ReqLife.Observe(int64(d.rank.Now()) - r.Issued)
		r.MarkComplete(request.Status{})
	}
	r.Poll = func(r *request.Request) bool {
		d.Progress()
		if !h.Done() {
			return false
		}
		finish(r)
		return true
	}
	r.Block = func(r *request.Request) {
		d.waitUntil(h.Done)
		finish(r)
	}
	return r
}

// completedRequest finishes an eagerly completed send: either a pooled
// request object or, under the no-request proposal, a counter bump.
func (d *Device) completedRequest(flags core.OpFlags, c *comm.Comm, kind request.Kind) *request.Request {
	if flags.Has(core.FlagNoReq) {
		d.charge(instr.Mandatory, costCounter)
		c.NoReq.Add()
		c.NoReq.Done() // eager injection: locally complete already
		return nil
	}
	d.charge(instr.Mandatory, costRequestAlloc)
	r := d.pool.Get(kind)
	r.MarkComplete(request.Status{})
	return r
}

// IsendAllOpts is the dedicated MPI_ISEND_ALL_OPTS path of Section 3.7:
// every proposal applied at once, hand-minimized to ~16 instructions.
// The destination is a world rank, the communicator must come from the
// predefined table, matching is arrival-order, completion is counted,
// and the datatype is fixed to bytes (the inlined compile-time-constant
// case).
func (d *Device) IsendAllOpts(buf []byte, worldDest int, c *comm.Comm) error {
	// Context from the predefined-comm global: 1 load.
	d.charge(instr.Mandatory, costCommPredef)
	bits := match.MakeBits(c.Ctx, 0, 0) // arrival-order bits: 1 load
	d.charge(instr.Mandatory, costMatchBitsNoMatch)
	// Counter completion: ~3 instructions.
	d.charge(instr.Mandatory, costCounter)
	c.NoReq.Add()
	c.NoReq.Done()
	// Buffer address + length registers: 2; fused netmod descriptor
	// write and doorbell: 9.
	d.charge(instr.Mandatory, 2+9)
	d.ep.TaggedSendVCI(worldDest, bits, buf, d.sendVCI(c, bits))
	return nil
}

// Irecv implements the ADI nonblocking receive. The receive descriptor
// goes straight to the matching unit shared by netmod and shmmod.
func (d *Device) Irecv(buf []byte, count int, dt *datatype.Type, src, tag int,
	c *comm.Comm, flags core.OpFlags) (*request.Request, error) {

	d.chargeDispatch(costDispatchPt2pt)

	if !flags.Has(core.FlagNoProcNull) {
		d.charge(instr.Mandatory, costProcNull)
		if src == core.ProcNull {
			r := d.pool.Get(request.KindRecv)
			r.MarkComplete(request.Status{Source: core.ProcNull, Tag: core.AnyTag})
			return r, nil
		}
	}

	if flags.Has(core.FlagPredefComm) {
		d.charge(instr.Mandatory, costCommPredef)
	} else {
		d.charge(instr.Mandatory, costCommDeref)
	}

	// Build the match bits and wildcard mask. Receives match on the
	// sender's communicator rank, so no address translation is needed
	// here; wildcard bits replace it.
	var bits, mask match.Bits
	switch {
	case flags.Has(core.FlagNoMatch):
		d.charge(instr.Mandatory, costMatchBitsNoMatch)
		bits = match.MakeBits(c.Ctx, 0, 0)
		mask = match.NoMatchMask
	default:
		d.charge(instr.Mandatory, costMatchBits)
		anySrc := src == core.AnySource
		anyTag := tag == core.AnyTag
		s, tg := src, tag
		if anySrc {
			s = 0
		}
		if anyTag {
			tg = 0
		}
		bits = match.MakeBits(c.Ctx, s, tg)
		mask = match.RecvMask(anySrc, anyTag)
	}

	d.chargeRedundant(costRedundantMarshal + costRedundantReload + costRedundantBufAddr)
	d.chargeRedundantType(dt, costRedundantDatatype)

	// Common shape — contiguous buffer, no wildcards: post through the
	// pooled descriptor path, which allocates nothing once warm.
	wild := flags.Has(core.FlagNoMatch) || src == core.AnySource || tag == core.AnyTag
	if view, ok := datatype.ContigView(dt, count, buf); ok && !wild {
		b := d.getRecvBox()
		b.op.Buf = view
		d.charge(instr.Mandatory, costRecvPost+costRequestAlloc)
		d.ep.PostRecvVCI(&b.op, bits, mask, d.recvVCI(c, bits, mask))
		r := d.pool.Get(request.KindRecv)
		r.Issued = int64(d.rank.Now())
		r.Poll, r.Block = b.poll, b.block
		return r, nil
	}

	// Contiguous receives land in the user buffer; derived layouts
	// receive into a bounce buffer and unpack at completion.
	op := &fabric.RecvOp{}
	var bounce []byte
	if view, ok := datatype.ContigView(dt, count, buf); ok {
		op.Buf = view
	} else {
		bounce = make([]byte, datatype.PackedSize(dt, count))
		op.Buf = bounce
	}

	d.charge(instr.Mandatory, costRecvPost+costRequestAlloc)
	d.ep.PostRecvVCI(op, bits, mask, d.recvVCI(c, bits, mask))

	r := d.pool.Get(request.KindRecv)
	r.Issued = int64(d.rank.Now())
	finish := func(r *request.Request) error {
		if bounce != nil {
			if _, err := datatype.Unpack(dt, count, bounce[:op.N], buf); err != nil {
				return err
			}
			d.charge(instr.Mandatory, int64(10+op.N/2))
		}
		// Request lifetime: post → completion on the owner's clock (the
		// reap already folded the message's arrival into it).
		d.rank.Metrics().Lat.ReqLife.Observe(int64(d.rank.Now()) - r.Issued)
		r.MarkComplete(request.Status{
			Source: op.Src, Tag: op.Tag, Count: op.N, Truncated: op.Truncated,
		})
		return nil
	}
	r.Poll = func(r *request.Request) bool {
		if !d.recvDone(op) {
			return false
		}
		if err := finish(r); err != nil {
			r.MarkComplete(request.Status{Truncated: true})
		}
		return true
	}
	r.Block = func(r *request.Request) {
		d.waitRecv(op)
		if err := finish(r); err != nil {
			r.MarkComplete(request.Status{Truncated: true})
		}
	}
	return r, nil
}

// recvBox bundles a receive descriptor with completion closures bound
// to it once, at box creation. Recycling the box recycles all three
// allocations of the common receive shape (contiguous buffer, no
// wildcards): steady-state receive loops post with zero heap traffic.
// A wildcard receive is excluded because its descriptor is replicated
// across VCI queues and stale replicas may outlive completion; the
// non-wildcard descriptor lives in exactly one queue and is consumed
// at match time, so reuse after completion is safe.
type recvBox struct {
	op    fabric.RecvOp
	poll  func(*request.Request) bool
	block func(*request.Request)
}

// getRecvBox pops a recycled box or builds one with its closures.
func (d *Device) getRecvBox() *recvBox {
	d.boxMu.Lock()
	if n := len(d.boxFree); n > 0 {
		b := d.boxFree[n-1]
		d.boxFree = d.boxFree[:n-1]
		d.boxMu.Unlock()
		return b
	}
	d.boxMu.Unlock()
	b := &recvBox{}
	b.poll = func(r *request.Request) bool {
		if !d.recvDone(&b.op) {
			return false
		}
		d.finishBox(b, r)
		return true
	}
	b.block = func(r *request.Request) {
		d.waitRecv(&b.op)
		d.finishBox(b, r)
	}
	return b
}

// finishBox completes the request from the box's descriptor and
// recycles the box. Runs exactly once per activation: Done/Wait latch
// completion before the closures could fire again.
func (d *Device) finishBox(b *recvBox, r *request.Request) {
	d.rank.Metrics().Lat.ReqLife.Observe(int64(d.rank.Now()) - r.Issued)
	r.MarkComplete(request.Status{
		Source: b.op.Src, Tag: b.op.Tag, Count: b.op.N, Truncated: b.op.Truncated,
	})
	b.op.Reset()
	d.boxMu.Lock()
	d.boxFree = append(d.boxFree, b)
	d.boxMu.Unlock()
}

// recvDone polls one receive, pumping progress so shm and AM traffic
// can complete it.
func (d *Device) recvDone(op *fabric.RecvOp) bool {
	d.Progress()
	return d.ep.RecvDone(op)
}

// waitRecv parks until the receive completes, pumping both transports.
// An op pinned to one interface parks on that interface's event
// sequence, so traffic other goroutines drive over other VCIs never
// wakes it (the spurious-wakeup storm a single per-rank sequence
// causes); a wildcard op parks on the aggregate.
func (d *Device) waitRecv(op *fabric.RecvOp) {
	if v := op.VCI(); v >= 0 {
		for {
			seq := d.ep.EventSeqVCI(v)
			d.Progress()
			if d.ep.RecvDone(op) {
				return
			}
			d.ep.WaitEventVCI(v, seq)
		}
	}
	for {
		seq := d.ep.EventSeq()
		d.Progress()
		if d.ep.RecvDone(op) {
			return
		}
		d.ep.WaitEvent(seq)
	}
}

// Iprobe checks for a matchable unexpected message (MPI_IPROBE). It
// runs a progress pass first so shm traffic is visible.
func (d *Device) Iprobe(src, tag int, c *comm.Comm) (request.Status, bool, error) {
	d.Progress()
	anySrc := src == core.AnySource
	anyTag := tag == core.AnyTag
	s, tg := src, tag
	if anySrc {
		s = 0
	}
	if anyTag {
		tg = 0
	}
	bits := match.MakeBits(c.Ctx, s, tg)
	mask := match.RecvMask(anySrc, anyTag)
	psrc, ptag, size, ok := d.ep.ProbeVCI(bits, mask, d.recvVCI(c, bits, mask))
	if !ok {
		return request.Status{}, false, nil
	}
	return request.Status{Source: psrc, Tag: ptag, Count: size}, true, nil
}

// Improbe extracts a matchable message (MPI_IMPROBE): hardware-matched
// at the endpoint, so extraction is a queue operation there.
func (d *Device) Improbe(src, tag int, c *comm.Comm) ([]byte, request.Status, vtime.Time, bool, error) {
	d.Progress()
	anySrc := src == core.AnySource
	anyTag := tag == core.AnyTag
	s, tg := src, tag
	if anySrc {
		s = 0
	}
	if anyTag {
		tg = 0
	}
	bits := match.MakeBits(c.Ctx, s, tg)
	mask := match.RecvMask(anySrc, anyTag)
	psrc, ptag, data, arrival, ok := d.ep.MProbeVCI(bits, mask, d.recvVCI(c, bits, mask))
	if !ok {
		return nil, request.Status{}, 0, false, nil
	}
	return data, request.Status{Source: psrc, Tag: ptag, Count: len(data)}, arrival, true, nil
}

// CommWaitall completes all requestless operations on the communicator
// (the MPI_COMM_WAITALL proposal). Eager injection means sends are
// locally complete at issue; the wait is a counter check plus progress.
func (d *Device) CommWaitall(c *comm.Comm) error {
	d.charge(instr.Mandatory, costCounter)
	if c.NoReq.Pending() == 0 {
		return nil
	}
	d.waitUntil(func() bool { return c.NoReq.Pending() == 0 })
	return nil
}

// errString formats device errors uniformly.
func errString(op string, err error) error { return fmt.Errorf("ch4 %s: %w", op, err) }
