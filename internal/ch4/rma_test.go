package ch4

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"gompi/internal/coll"
	"gompi/internal/core"
	"gompi/internal/datatype"
	"gompi/internal/fabric"
	"gompi/internal/instr"
	"gompi/internal/rma"
)

func TestWinCreateAndFence(t *testing.T) {
	runWorld(t, 4, 1, fabric.OFI, core.Default, func(e *env) error {
		mem := make([]byte, 64)
		w, err := e.d.WinCreate(mem, 1, e.c)
		if err != nil {
			return err
		}
		if len(w.Shared.Keys) != 4 || w.Shared.Sizes[e.c.Rank()] != 64 {
			return fmt.Errorf("shared table wrong: %+v", w.Shared)
		}
		if err := e.d.Fence(w); err != nil {
			return err
		}
		if !w.InEpoch() {
			return errors.New("fence did not open an epoch")
		}
		if err := e.d.Fence(w); err != nil {
			return err
		}
		return e.d.WinFree(w)
	})
}

func TestPutContiguous(t *testing.T) {
	runWorld(t, 2, 1, fabric.OFI, core.Default, func(e *env) error {
		mem := make([]byte, 32)
		w, err := e.d.WinCreate(mem, 1, e.c)
		if err != nil {
			return err
		}
		if err := e.d.Fence(w); err != nil {
			return err
		}
		if e.c.Rank() == 0 {
			if err := e.d.Put([]byte{1, 2, 3, 4}, 4, datatype.Byte, 1, 8, w, 0); err != nil {
				return err
			}
		}
		if err := e.d.Fence(w); err != nil {
			return err
		}
		if e.c.Rank() == 1 && !bytes.Equal(mem[8:12], []byte{1, 2, 3, 4}) {
			return fmt.Errorf("window after put: %v", mem[8:12])
		}
		return e.d.WinFree(w)
	})
}

func TestPutDispUnitScaling(t *testing.T) {
	runWorld(t, 2, 1, fabric.INF, core.Default, func(e *env) error {
		mem := make([]byte, 64)
		w, err := e.d.WinCreate(mem, 8, e.c) // disp unit = 8 bytes
		if err != nil {
			return err
		}
		e.d.Fence(w)
		if e.c.Rank() == 0 {
			if err := e.d.Put([]byte{0xEE}, 1, datatype.Byte, 1, 3, w, 0); err != nil {
				return err
			}
		}
		e.d.Fence(w)
		if e.c.Rank() == 1 && mem[24] != 0xEE {
			return fmt.Errorf("disp-unit scaling: byte landed at %v", mem[:32])
		}
		return e.d.WinFree(w)
	})
}

func TestPutBoundsChecked(t *testing.T) {
	runWorld(t, 2, 1, fabric.INF, core.Default, func(e *env) error {
		mem := make([]byte, 16)
		w, err := e.d.WinCreate(mem, 1, e.c)
		if err != nil {
			return err
		}
		e.d.Fence(w)
		if e.c.Rank() == 0 {
			if err := e.d.Put(make([]byte, 8), 8, datatype.Byte, 1, 12, w, 0); err == nil {
				return errors.New("out-of-window put accepted")
			}
		}
		e.d.Fence(w)
		return e.d.WinFree(w)
	})
}

func TestGet(t *testing.T) {
	runWorld(t, 2, 1, fabric.OFI, core.Default, func(e *env) error {
		mem := make([]byte, 16)
		if e.c.Rank() == 1 {
			copy(mem, "remote-data!")
		}
		w, err := e.d.WinCreate(mem, 1, e.c)
		if err != nil {
			return err
		}
		e.d.Fence(w)
		if e.c.Rank() == 0 {
			buf := make([]byte, 6)
			if err := e.d.Get(buf, 6, datatype.Byte, 1, 0, w, 0); err != nil {
				return err
			}
			if string(buf) != "remote" {
				return fmt.Errorf("get returned %q", buf)
			}
		}
		e.d.Fence(w)
		return e.d.WinFree(w)
	})
}

func TestPutProcNull(t *testing.T) {
	runWorld(t, 1, 1, fabric.INF, core.Default, func(e *env) error {
		w, err := e.d.WinCreate(make([]byte, 8), 1, e.c)
		if err != nil {
			return err
		}
		e.d.Fence(w)
		return e.d.Put([]byte{1}, 1, datatype.Byte, core.ProcNull, 0, w, 0)
	})
}

func TestAccumulateSum(t *testing.T) {
	const n = 4
	runWorld(t, n, 1, fabric.OFI, core.Default, func(e *env) error {
		mem := make([]byte, 8)
		w, err := e.d.WinCreate(mem, 1, e.c)
		if err != nil {
			return err
		}
		e.d.Fence(w)
		// Everyone (including rank 0) adds its rank+1 into rank 0's
		// counter: NIC atomics must not lose updates.
		contrib := make([]byte, 8)
		binary.LittleEndian.PutUint64(contrib, uint64(e.c.Rank()+1))
		if err := e.d.Accumulate(contrib, 1, datatype.Long, 0, 0, coll.OpSum, w, 0); err != nil {
			return err
		}
		e.d.Fence(w)
		if e.c.Rank() == 0 {
			got := int64(binary.LittleEndian.Uint64(mem))
			if got != n*(n+1)/2 {
				return fmt.Errorf("accumulated %d, want %d", got, n*(n+1)/2)
			}
		}
		return e.d.WinFree(w)
	})
}

func TestGetAccumulateFetchesOld(t *testing.T) {
	runWorld(t, 2, 1, fabric.INF, core.Default, func(e *env) error {
		mem := make([]byte, 8)
		if e.c.Rank() == 1 {
			binary.LittleEndian.PutUint64(mem, 100)
		}
		w, err := e.d.WinCreate(mem, 1, e.c)
		if err != nil {
			return err
		}
		e.d.Fence(w)
		if e.c.Rank() == 0 {
			contrib := make([]byte, 8)
			binary.LittleEndian.PutUint64(contrib, 5)
			old := make([]byte, 8)
			if err := e.d.GetAccumulate(contrib, old, 1, datatype.Long, 1, 0, coll.OpSum, w, 0); err != nil {
				return err
			}
			if got := binary.LittleEndian.Uint64(old); got != 100 {
				return fmt.Errorf("fetched %d, want 100", got)
			}
		}
		e.d.Fence(w)
		if e.c.Rank() == 1 {
			if got := binary.LittleEndian.Uint64(mem); got != 105 {
				return fmt.Errorf("target now %d, want 105", got)
			}
		}
		return e.d.WinFree(w)
	})
}

func TestDerivedPutAMFallback(t *testing.T) {
	vec, _ := datatype.NewVector(3, 1, 2, datatype.Byte) // bytes 0,2,4
	if err := vec.Commit(); err != nil {
		t.Fatal(err)
	}
	runWorld(t, 2, 1, fabric.OFI, core.Default, func(e *env) error {
		mem := bytes.Repeat([]byte{'.'}, 8)
		w, err := e.d.WinCreate(mem, 1, e.c)
		if err != nil {
			return err
		}
		e.d.Fence(w)
		if e.c.Rank() == 0 {
			src := []byte{'A', 'x', 'B', 'y', 'C', 'z'}
			if err := e.d.Put(src, 1, vec, 1, 0, w, 0); err != nil {
				return err
			}
		}
		e.d.Fence(w)
		if e.c.Rank() == 1 && string(mem[:6]) != "A.B.C." {
			return fmt.Errorf("derived put landed %q", mem[:6])
		}
		return e.d.WinFree(w)
	})
}

func TestDerivedGetPerSegment(t *testing.T) {
	vec, _ := datatype.NewVector(2, 1, 2, datatype.Byte)
	vec.Commit()
	runWorld(t, 2, 1, fabric.INF, core.Default, func(e *env) error {
		mem := []byte{'p', 'q', 'r', 's'}
		w, err := e.d.WinCreate(mem, 1, e.c)
		if err != nil {
			return err
		}
		e.d.Fence(w)
		if e.c.Rank() == 0 {
			dst := bytes.Repeat([]byte{'.'}, 4)
			if err := e.d.Get(dst, 1, vec, 1, 0, w, 0); err != nil {
				return err
			}
			if string(dst) != "p.r." {
				return fmt.Errorf("derived get %q", dst)
			}
		}
		e.d.Fence(w)
		return e.d.WinFree(w)
	})
}

func TestLockUnlockPassiveTarget(t *testing.T) {
	const n = 4
	runWorld(t, n, 1, fabric.OFI, core.Default, func(e *env) error {
		mem := make([]byte, 8)
		w, err := e.d.WinCreate(mem, 1, e.c)
		if err != nil {
			return err
		}
		// Passive target: everyone locks rank 0 exclusively and does a
		// read-modify-write via Get+Put. Exclusive locks must make the
		// sequence atomic.
		for i := 0; i < 10; i++ {
			if err := e.d.Lock(w, 0, true); err != nil {
				return err
			}
			buf := make([]byte, 8)
			if err := e.d.Get(buf, 8, datatype.Byte, 0, 0, w, 0); err != nil {
				return err
			}
			v := binary.LittleEndian.Uint64(buf)
			binary.LittleEndian.PutUint64(buf, v+1)
			if err := e.d.Put(buf, 8, datatype.Byte, 0, 0, w, 0); err != nil {
				return err
			}
			if err := e.d.Unlock(w, 0); err != nil {
				return err
			}
		}
		e.d.barrier(e.c)
		if e.c.Rank() == 0 {
			if got := binary.LittleEndian.Uint64(mem); got != n*10 {
				return fmt.Errorf("lock-protected counter = %d, want %d", got, n*10)
			}
		}
		return e.d.WinFree(w)
	})
}

func TestUnlockWrongTargetRejected(t *testing.T) {
	runWorld(t, 2, 1, fabric.INF, core.Default, func(e *env) error {
		w, err := e.d.WinCreate(make([]byte, 8), 1, e.c)
		if err != nil {
			return err
		}
		if e.c.Rank() == 0 {
			if err := e.d.Lock(w, 1, true); err != nil {
				return err
			}
			if err := e.d.Unlock(w, 0); err == nil {
				return errors.New("unlock of wrong target accepted")
			}
			if err := e.d.Unlock(w, 1); err != nil {
				return err
			}
		}
		e.d.barrier(e.c)
		return e.d.WinFree(w)
	})
}

func TestDynamicWindowVirtualAddress(t *testing.T) {
	runWorld(t, 2, 1, fabric.OFI, core.Default, func(e *env) error {
		w, err := e.d.WinCreateDynamic(e.c)
		if err != nil {
			return err
		}
		// Rank 1 attaches memory and publishes its address.
		var va rma.VAddr
		mem := make([]byte, 32)
		if e.c.Rank() == 1 {
			va, err = e.d.WinAttach(w, mem)
			if err != nil {
				return err
			}
		}
		// Exchange the address (the app would send it; the registry
		// rendezvous stands in).
		vals := e.c.Exchange(va)
		va = vals[1].(rma.VAddr)

		e.d.Fence(w)
		if e.c.Rank() == 0 {
			if err := e.d.Put([]byte("dyn!"), 4, datatype.Byte, 1, int(va)+4, w, core.FlagVirtAddr); err != nil {
				return err
			}
		}
		e.d.Fence(w)
		if e.c.Rank() == 1 {
			if string(mem[4:8]) != "dyn!" {
				return fmt.Errorf("dynamic put landed %q", mem[:8])
			}
			if err := e.d.WinDetach(w, mem, va); err != nil {
				return err
			}
		}
		e.d.barrier(e.c)
		return e.d.WinFree(w)
	})
}

// TestPutMandatoryInstructionCount pins the Table 1 MPI_PUT mandatory
// figure: 44 on the contiguous fast path.
func TestPutMandatoryInstructionCount(t *testing.T) {
	runWorld(t, 2, 1, fabric.INF, core.Default, func(e *env) error {
		w, err := e.d.WinCreate(make([]byte, 16), 1, e.c)
		if err != nil {
			return err
		}
		e.d.Fence(w)
		if e.c.Rank() == 0 {
			snap := e.d.Rank().Profile().Snap()
			if err := e.d.Put([]byte{1}, 1, datatype.Byte, 1, 0, w, 0); err != nil {
				return err
			}
			delta := e.d.Rank().Profile().Delta(snap)
			if got := delta.Count(instr.Mandatory); got != 44 {
				return fmt.Errorf("put mandatory = %d, want 44", got)
			}
			if got := delta.Count(instr.Redundant); got != 62 {
				return fmt.Errorf("put redundant = %d, want 62", got)
			}
		}
		e.d.Fence(w)
		return e.d.WinFree(w)
	})
}

// TestVirtAddrSavesInstructions pins the Section 3.2 saving: 3
// instructions (4-instruction translation becomes a single load).
func TestVirtAddrSavesInstructions(t *testing.T) {
	runWorld(t, 2, 1, fabric.INF, core.NoErrSingleIPO, func(e *env) error {
		w, err := e.d.WinCreate(make([]byte, 16), 1, e.c)
		if err != nil {
			return err
		}
		e.d.Fence(w)
		if e.c.Rank() == 0 {
			measure := func(flags core.OpFlags) int64 {
				snap := e.d.Rank().Profile().Snap()
				if err := e.d.Put([]byte{1}, 1, datatype.Byte, 1, 0, w, flags); err != nil {
					t.Error(err)
				}
				return e.d.Rank().Profile().Delta(snap).Count(instr.Mandatory)
			}
			base := measure(0)
			va := measure(core.FlagVirtAddr)
			if base-va != costOffsetXlate-costVirtAddr {
				return fmt.Errorf("virt addr saved %d, want %d", base-va, costOffsetXlate-costVirtAddr)
			}
		}
		e.d.Fence(w)
		return e.d.WinFree(w)
	})
}

func TestFenceSyncsClockToRemoteWrites(t *testing.T) {
	runWorld(t, 2, 1, fabric.OFI, core.Default, func(e *env) error {
		mem := make([]byte, 8)
		w, err := e.d.WinCreate(mem, 1, e.c)
		if err != nil {
			return err
		}
		e.d.Fence(w)
		if e.c.Rank() == 0 {
			// Run the clock forward so the put lands "late".
			e.d.Rank().ChargeCycles(instr.Compute, 1_000_000)
			if err := e.d.Put([]byte{1}, 1, datatype.Byte, 1, 0, w, 0); err != nil {
				return err
			}
		}
		e.d.Fence(w)
		if e.c.Rank() == 1 && e.d.Rank().Now() < 1_000_000 {
			return fmt.Errorf("target clock %d did not absorb remote write time", e.d.Rank().Now())
		}
		return e.d.WinFree(w)
	})
}

func TestDerivedAccumulateAMFallback(t *testing.T) {
	vec, _ := datatype.NewVector(2, 1, 2, datatype.Long) // longs 0 and 2
	if err := vec.Commit(); err != nil {
		t.Fatal(err)
	}
	runWorld(t, 2, 1, fabric.OFI, core.Default, func(e *env) error {
		mem := make([]byte, 8*4)
		if e.c.Rank() == 1 {
			binary.LittleEndian.PutUint64(mem[0:], 100)
			binary.LittleEndian.PutUint64(mem[16:], 200)
		}
		w, err := e.d.WinCreate(mem, 1, e.c)
		if err != nil {
			return err
		}
		e.d.Fence(w)
		if e.c.Rank() == 0 {
			contrib := make([]byte, 8*4)
			binary.LittleEndian.PutUint64(contrib[0:], 5)
			binary.LittleEndian.PutUint64(contrib[16:], 7)
			if err := e.d.Accumulate(contrib, 1, vec, 1, 0, coll.OpSum, w, 0); err != nil {
				return err
			}
			// GetAccumulate is not supported on the AM fallback.
			res := make([]byte, 8*4)
			if err := e.d.GetAccumulate(contrib, res, 1, vec, 1, 0, coll.OpSum, w, 0); err == nil {
				return errors.New("derived get_accumulate accepted")
			}
		}
		e.d.Fence(w)
		if e.c.Rank() == 1 {
			if got := binary.LittleEndian.Uint64(mem[0:]); got != 105 {
				return fmt.Errorf("slot 0 = %d", got)
			}
			if got := binary.LittleEndian.Uint64(mem[16:]); got != 207 {
				return fmt.Errorf("slot 2 = %d", got)
			}
		}
		return e.d.WinFree(w)
	})
}

func TestDeviceAccessors(t *testing.T) {
	runWorld(t, 1, 1, fabric.INF, core.NoErr, func(e *env) error {
		if e.d.Config() != (core.Config{ThreadCheck: true}) {
			return fmt.Errorf("config %+v", e.d.Config())
		}
		seq := e.d.EventSeq()
		// A self-send bumps the event counter; WaitEvent returns.
		if _, err := e.d.Isend([]byte{1}, 1, datatype.Byte, 0, 0, e.c, core.FlagNoReq); err != nil {
			return err
		}
		e.d.WaitEvent(seq)
		buf := make([]byte, 1)
		req, err := e.d.Irecv(buf, 1, datatype.Byte, 0, 0, e.c, 0)
		if err != nil {
			return err
		}
		// Exercise the polling path (recvDone).
		for !req.Done() {
		}
		return nil
	})
}

func TestFenceEndDevice(t *testing.T) {
	runWorld(t, 2, 1, fabric.INF, core.Default, func(e *env) error {
		w, err := e.d.WinCreate(make([]byte, 8), 1, e.c)
		if err != nil {
			return err
		}
		if err := e.d.Fence(w); err != nil {
			return err
		}
		if err := e.d.FenceEnd(w); err != nil {
			return err
		}
		if w.InEpoch() {
			return errors.New("epoch open after FenceEnd")
		}
		// Lock/unlock now legal.
		if err := e.d.Lock(w, 1-e.c.Rank(), false); err != nil { // shared
			return err
		}
		if err := e.d.Unlock(w, 1-e.c.Rank()); err != nil {
			return err
		}
		e.d.barrier(e.c)
		return e.d.WinFree(w)
	})
}

func TestCommWaitallWithPendingShmTraffic(t *testing.T) {
	// Exercise the waiting branch of CommWaitall: with rpn=2 the shm
	// rings need receiver progress, so a full ring could leave sends
	// logically pending. Counter completion is still immediate for
	// eager sends, but the path must at least run its progress loop.
	runWorld(t, 2, 2, fabric.OFI, core.Default, func(e *env) error {
		if e.c.Rank() == 0 {
			for i := 0; i < 5; i++ {
				if _, err := e.d.Isend([]byte{byte(i)}, 1, datatype.Byte, 1, i, e.c, core.FlagNoReq); err != nil {
					return err
				}
			}
			return e.d.CommWaitall(e.c)
		}
		for i := 0; i < 5; i++ {
			buf := make([]byte, 1)
			req, err := e.d.Irecv(buf, 1, datatype.Byte, 0, i, e.c, 0)
			if err != nil {
				return err
			}
			req.Wait()
		}
		return nil
	})
}
