// Package ch4 is the lightweight device — the paper's primary
// contribution, rebuilt in Go. The design goals mirror the original:
// the communication fast path flows from the MPI layer to the netmod or
// shmmod in the fewest instructions, MPI-level semantics are never lost
// on the way down, and anything a transport cannot do natively falls
// back to active messages in the ch4 core. Every structural cost on the
// critical path (rank translation, communicator dereference,
// MPI_PROC_NULL handling, request management, match-bits construction,
// locality dispatch, netmod descriptor preparation) charges its
// documented instruction count, so the Table 1 / Figure 2 numbers are
// produced by executing this code under the different build
// configurations.
package ch4

import (
	"io"
	"sync"

	"gompi/internal/comm"
	"gompi/internal/core"
	"gompi/internal/datatype"
	"gompi/internal/fabric"
	"gompi/internal/instr"
	"gompi/internal/match"
	"gompi/internal/metrics"
	"gompi/internal/proc"
	"gompi/internal/request"
	"gompi/internal/shm"
	"gompi/internal/stall"
	"gompi/internal/vtime"
)

// Mandatory-overhead charge constants (Table 1 row 5, Section 3). Each
// figure is the instruction count of the code structure it annotates;
// the Section 3 proposals eliminate them one by one.
const (
	// costProcNull is the MPI_PROC_NULL comparison and branch every
	// communication call pays (Section 3.4: ~3 instructions).
	costProcNull = 3
	// costCommDeref is the dereference into the dynamically allocated
	// communicator object for context id and tables (Section 3.3: 8).
	costCommDeref = 8
	// costCommPredef is the constant-indexed global-array load that
	// replaces it under the predefined-handle proposal.
	costCommPredef = 1
	// costRankTranslate is the compressed rank-to-network-address
	// lookup (Section 3.1: ~11 instructions with the memory-scalable
	// representation of [22]).
	costRankTranslate = 11
	// costRankTranslateDense is the plain O(P)-table lookup: two
	// instructions plus the dereference (the ablation comparison).
	costRankTranslateDense = 2 + instr.CostDeref
	// costMatchBits builds the (context|source|tag) match word
	// (Section 3.6: 5).
	costMatchBits = 5
	// costMatchBitsNoMatch is the single context load that remains
	// under the no-match proposal.
	costMatchBitsNoMatch = 1
	// costRequestAlloc allocates and initializes a request object from
	// the rank's pool (Section 3.5).
	costRequestAlloc = 13
	// costCounter is the counter increment replacing it under the
	// no-request proposal (~3 instructions, as the paper estimates).
	costCounter = 3
	// costLocality is the ch4-core self/shm/netmod dispatch.
	costLocality = 4
	// costNetmodPrep translates MPI-level parameters into the netmod
	// descriptor (endpoint lookup, remote address, completion slot).
	costNetmodPrep = 15
	// costShmPrep is the cheaper shmmod descriptor setup.
	costShmPrep = 10
	// costSelfLoop is the ch4-core self-send shortcut.
	costSelfLoop = 6
	// costRecvPost readies the matching-unit receive descriptor.
	costRecvPost = 12
)

// Redundant-runtime-check charge constants (Table 1 row 4, Section
// 2.2): work the compiler folds away once the MPI call is inlined and
// the datatype is a compile-time constant. The no-err-single-ipo build
// charges none of these.
const (
	costRedundantMarshal  = 16 // generic ADI parameter struct fill
	costRedundantReload   = 8  // device-side reload of those params
	costRedundantDatatype = 14 // datatype size/contiguity re-derivation
	costRedundantBufAddr  = 9  // buffer address and alignment compute
	costRedundantComplete = 12 // completion-mode genericity checks
	costRedundantWinKind  = 15 // static/dynamic window-kind genericity
)

// AM handler ids used by the ch4 core fallback.
const (
	amPutDerived uint8 = iota + 1
	amAccDerived
	amAck
)

// Global is the device state shared by all ranks: the fabric, the
// shared-memory domain, and the build configuration. One Global exists
// per job.
type Global struct {
	World *proc.World
	Fab   *fabric.Fabric
	Shm   *shm.Domain
	Cfg   core.Config
}

// NewGlobal wires the job-wide device state. When the world spans
// multiple ranks per node, a shared-memory domain is created and its
// deliveries feed each rank's fabric matching engine, so netmod and
// shmmod share one matching context. Cfg.VCIs splits every endpoint
// into that many virtual communication interfaces; shm fragments carry
// the sender's interface choice so both transports agree on where a
// message matches.
func NewGlobal(w *proc.World, prof fabric.Profile, cfg core.Config) *Global {
	fabOpts := fabric.Options{EagerPeers: cfg.EagerPeers, MaxPeerBytes: cfg.MaxPeerBytes}
	g := &Global{World: w, Fab: fabric.NewVCIOpt(prof, w.Size(), cfg.VCIs, fabOpts), Cfg: cfg}
	if w.RanksPerNode() > 1 {
		shmCfg := shm.Config{
			CellSize:     cfg.ShmCellSize,
			RingCells:    cfg.ShmRingCells,
			EagerMax:     cfg.ShmEagerMax,
			MaxPeerBytes: cfg.MaxPeerBytes,
		}
		g.Shm = shm.NewDomainCfg(shm.DefaultProfile, shmCfg, w.Size(),
			func(dst int, bits match.Bits, src int, data []byte, arrival vtime.Time, vci int) {
				g.Fab.Endpoint(dst).DepositShmVCI(bits, src, data, arrival, vci)
			},
			func(dst, vci int) { g.Fab.Endpoint(dst).WakeVCI(vci) },
		)
		g.Shm.SetDeliverView(func(dst int, bits match.Bits, src int, view []byte, arrival vtime.Time, vci int, rel shm.Releaser) {
			g.Fab.Endpoint(dst).DepositShmViewVCI(bits, src, view, arrival, vci, rel)
		})
	}
	return g
}

// Abort tears the world down after a rank failure: all blocked waits
// panic with abort.ErrWorldAborted.
func (g *Global) Abort() {
	g.Fab.Abort()
	if g.Shm != nil {
		g.Shm.Abort()
	}
}

// SetStall attaches the stall watchdog to both transports.
func (g *Global) SetStall(m *stall.Monitor) {
	g.Fab.SetStall(m)
	if g.Shm != nil {
		g.Shm.SetStall(m)
	}
}

// DumpState writes the device-wide wait graph: every rank's unmatched
// posted receives, buffered unexpected messages, and who-waits-on-whom
// edges. CH4 matches on the fabric endpoint, so the fabric holds most
// of the picture (shm traffic deposits there too); the shm domain adds
// its ring occupancy and outstanding zero-copy handoffs, whose senders
// may be parked awaiting completion acks.
func (g *Global) DumpState(w io.Writer) {
	g.Fab.WriteWaitGraph(w)
	if g.Shm != nil {
		g.Shm.WriteWaitGraph(w)
	}
}

// Device is one rank's ch4 instance.
type Device struct {
	g    *Global
	rank *proc.Rank
	ep   *fabric.Endpoint
	cfg  core.Config
	pool request.Pool

	// Receive-descriptor freelist: the RecvOp and its completion
	// closures for the common receive shape (contiguous buffer, no
	// wildcards) are recycled instead of reallocated, so steady-state
	// receive loops — persistent-collective replays especially — post
	// without touching the heap. A short mutex mirrors request.Pool:
	// under MPI_THREAD_MULTIPLE several goroutines of one rank post
	// receives concurrently.
	boxMu   sync.Mutex
	boxFree []*recvBox

	// AM fallback accounting: operations shipped and acknowledgements
	// received. All mutate only on the owner goroutine (the ack
	// handler runs there).
	amSent       int64
	amAcked      int64
	amAckArrival vtime.Time
}

// Open attaches rank to the device. Must be called on the rank's own
// goroutine before its StartBarrier.
func (g *Global) Open(r *proc.Rank) *Device {
	d := &Device{g: g, rank: r, ep: g.Fab.Endpoint(r.ID()), cfg: g.Cfg}
	d.pool.Metrics = r.Metrics()
	d.ep.Bind(r)
	if g.Shm != nil {
		g.Shm.Bind(r.ID(), r)
	}
	d.ep.RegisterAM(amPutDerived, d.handlePutDerived)
	d.ep.RegisterAM(amAccDerived, d.handleAccDerived)
	d.ep.RegisterAM(amAck, d.handleAck)
	if g.Cfg.EagerPeers {
		// The eager-peers ablation: materialize connection state toward
		// every peer (and the shm ring toward every on-node peer) at
		// open, the all-pairs O(n²)-total setup the on-demand model
		// replaces.
		d.ep.EagerConnect()
		if g.Shm != nil {
			me := r.ID()
			rpn := g.World.RanksPerNode()
			node := me / rpn
			lo, hi := node*rpn, (node+1)*rpn
			if hi > g.World.Size() {
				hi = g.World.Size()
			}
			for p := lo; p < hi; p++ {
				g.Shm.Preconnect(me, p)
			}
		}
	}
	return d
}

// Rank returns the owning rank.
func (d *Device) Rank() *proc.Rank { return d.rank }

// Config returns the device's build configuration.
func (d *Device) Config() core.Config { return d.cfg }

// Stats snapshots the rank's metrics registry, folding in the
// endpoint matching engine's counters (kept on the engine itself so
// the match hot path stays a plain increment). The copy happens under
// the endpoint lock: peer ranks write receive-side counters under it,
// and a mid-run snapshot (Proc.Metrics) or a teardown snapshot taken
// while peers still send must not race with them.
func (d *Device) Stats() metrics.Snapshot {
	return d.ep.FoldAndSnapshot()
}

// Progress drains the shared-memory rings and runs pending active
// messages.
func (d *Device) Progress() {
	if d.g.Shm != nil {
		d.g.Shm.Progress(d.rank.ID())
	}
	d.ep.Progress()
}

// EventSeq exposes the endpoint's transport-event counter.
func (d *Device) EventSeq() uint64 { return d.ep.EventSeq() }

// WaitEvent parks the rank until the event counter moves past seq.
func (d *Device) WaitEvent(seq uint64) { d.ep.WaitEvent(seq) }

// waitUntil parks the rank until pred holds, pumping both transports.
// The event-sequence capture precedes the progress pass so a message
// that lands mid-pass is never slept through.
func (d *Device) waitUntil(pred func() bool) {
	for {
		seq := d.ep.EventSeq()
		d.Progress()
		if pred() {
			return
		}
		d.ep.WaitEvent(seq)
	}
}

// charge records n instructions in cat on the owning rank.
func (d *Device) charge(cat instr.Category, n int64) { d.rank.Charge(cat, n) }

// chargeDispatch records the ADI dispatch call overhead (the device's
// share of Table 1's "MPI function call" row) unless the build is
// inlined.
func (d *Device) chargeDispatch(n int64) {
	if !d.cfg.Inline {
		d.charge(instr.Call, n)
	}
}

// Call-dispatch costs of the ch4 entry points: together with the
// 17-instruction public entry they form the paper's 23 (Isend) and 25
// (Put) function-call figures.
const (
	costDispatchPt2pt = 6
	costDispatchRMA   = 8
)

// chargeRedundant records redundant-runtime-check instructions unless
// the build is inlined (Section 2.2: inlining folds them into
// compile-time constants).
func (d *Device) chargeRedundant(n int64) {
	if !d.cfg.Inline {
		d.charge(instr.Redundant, n)
	}
}

// chargeRedundantType records the datatype re-derivation cost. It
// survives link-time inlining for "class 3" types (Section 2.2):
// predefined types reached through runtime variables stay opaque to
// the compiler unless the whole application is inlined.
func (d *Device) chargeRedundantType(dt *datatype.Type, n int64) {
	if !d.cfg.Inline || dt.RuntimeMapped() {
		d.charge(instr.Redundant, n)
	}
}

// sendVCI picks the virtual interface a send on c travels: a hinted
// communicator owns a private interface keyed by its context pair;
// otherwise the (context, tag) hash spreads traffic. The selection is
// a handful of arithmetic instructions already covered by the
// match-bits charge — CH4 folds VCI selection into the match-word
// build the same way.
func (d *Device) sendVCI(c *comm.Comm, bits match.Bits) int {
	if c.Hints.Pinned() {
		return d.g.Fab.VCIForCtx(bits.Context())
	}
	return d.g.Fab.VCIFor(bits)
}

// recvVCI picks the interface a receive searches. A hinted
// communicator's receives — even its remaining legal wildcard — live
// on the private interface, so they never pay the cross-VCI walk.
// No-match receives ride the same (ctx, 0, 0) hash their senders use.
// Anything else with an exact context+tag hashes like a send; a true
// wildcard falls back to AnyVCI.
func (d *Device) recvVCI(c *comm.Comm, bits, mask match.Bits) int {
	switch {
	case c.Hints.Pinned():
		return d.g.Fab.VCIForCtx(bits.Context())
	case mask == match.NoMatchMask:
		return d.g.Fab.VCIFor(bits)
	case mask.ExactCtxTag():
		return d.g.Fab.VCIFor(bits)
	default:
		return fabric.AnyVCI
	}
}

// VCIOf reports the interface a send (recv=false) or receive
// (recv=true) with the given tag on c would use, for trace annotation.
// AnyVCI (-1) means the cross-VCI path. Called only when tracing is
// enabled; never charged.
func (d *Device) VCIOf(c *comm.Comm, tag int, recv bool) int {
	if recv {
		anySrc, anyTag := false, tag == core.AnyTag
		tg := tag
		if anyTag {
			tg = 0
		}
		return d.recvVCI(c, match.MakeBits(c.Ctx, 0, tg), match.RecvMask(anySrc, anyTag))
	}
	return d.sendVCI(c, match.MakeBits(c.Ctx, c.MyRank, tag))
}

// translateRank resolves a communicator rank to the world/fabric rank,
// charging by table representation.
func (d *Device) translateRank(c *comm.Comm, rank int) (int, error) {
	if c.Table.Kind() == comm.TableDense {
		d.charge(instr.Mandatory, costRankTranslateDense)
	} else {
		d.charge(instr.Mandatory, costRankTranslate)
	}
	return c.WorldRank(rank)
}
