package core

import (
	"gompi/internal/coll"
	"gompi/internal/comm"
	"gompi/internal/datatype"
	"gompi/internal/metrics"
	"gompi/internal/proc"
	"gompi/internal/request"
	"gompi/internal/rma"
	"gompi/internal/vtime"
)

// MPI-layer charge constants: what the machine-independent layer costs
// before the device is reached. Charged by the public API layer; the
// devices charge their own (mandatory and redundant) costs.
const (
	// CallEntryCost is the call-frame setup of the public MPI symbol
	// (Table 1 "MPI function call", the 16-18 instruction figure).
	CallEntryCost = 17
	// CallDispatchIsendCost / CallDispatchPutCost is the additional
	// ADI dispatch overhead reaching the device entry point.
	CallDispatchIsendCost = 6
	CallDispatchPutCost   = 8
	// ThreadCheckCost is the runtime threading-level branch taken on
	// every call even in single-threaded runs when the library is
	// built with thread support (Table 1 "Thread-safety check").
	ThreadCheckCost = 6
	// ThreadCheckWinCost is the window-path variant, which also checks
	// the window's own synchronization mode.
	ThreadCheckWinCost = 14
	// CommCreateStepCost is the modeled per-round cost of a
	// communicator-creation collective (context-id agreement). The
	// public layer charges ceil(log2 n) of these — the O(log n)
	// collective cost the sparse-table redesign reduces creation to,
	// replacing the old implicit O(n) table copies.
	CommCreateStepCost = 40
)

// Device is the abstract device interface (ADI): the boundary between
// the machine-independent MPI layer and a machine-specific
// implementation. Both devices (ch4 and original) implement it. MPI
// semantics flow through unreduced — the device sees the user's
// buffers, datatypes, communicator, and per-call extension flags.
//
// A Device instance belongs to one rank; only that rank's goroutine may
// call its methods.
type Device interface {
	// Rank returns the owning rank.
	Rank() *proc.Rank
	// Config returns the build configuration the device was opened
	// with.
	Config() Config
	// Stats snapshots the rank's metrics registry, folding in any
	// counters kept on device-internal structures (matching engines).
	Stats() metrics.Snapshot

	// Isend starts a nonblocking send of count elements of dt from buf
	// to dest (a communicator rank, or a world rank under
	// FlagGlobalRank, or ProcNull) with the given tag. Under FlagNoReq
	// it returns a nil request and counts completion on the
	// communicator.
	Isend(buf []byte, count int, dt *datatype.Type, dest, tag int, c *comm.Comm, flags OpFlags) (*request.Request, error)
	// Irecv starts a nonblocking receive. src may be AnySource; tag
	// may be AnyTag.
	Irecv(buf []byte, count int, dt *datatype.Type, src, tag int, c *comm.Comm, flags OpFlags) (*request.Request, error)
	// IsendAllOpts is the dedicated hand-minimized path of Section
	// 3.7: world-rank destination, predefined-communicator context,
	// counter completion, arrival-order matching, no PROC_NULL.
	IsendAllOpts(buf []byte, worldDest int, c *comm.Comm) error
	// Iprobe checks for a matchable incoming message without receiving
	// it.
	Iprobe(src, tag int, c *comm.Comm) (request.Status, bool, error)
	// Improbe extracts a matchable incoming message (MPI_IMPROBE): on
	// success the message is removed from matching and its payload,
	// envelope, and virtual arrival time are returned for a later
	// matched receive.
	Improbe(src, tag int, c *comm.Comm) (data []byte, st request.Status, arrival vtime.Time, ok bool, err error)
	// CommWaitall completes every outstanding requestless operation on
	// the communicator (the MPI_COMM_WAITALL proposal).
	CommWaitall(c *comm.Comm) error
	// Progress advances the device's engines (active messages,
	// shared-memory rings).
	Progress()
	// EventSeq returns an opaque counter that increases whenever new
	// transport events arrive for this rank; WaitEvent parks the rank
	// until the counter moves past the given value. Together they let
	// blocking MPI-layer loops (MPI_PROBE) sleep instead of spin.
	EventSeq() uint64
	WaitEvent(seq uint64)

	// WinCreate collectively exposes mem with the given displacement
	// unit over c.
	WinCreate(mem []byte, dispUnit int, c *comm.Comm) (*rma.Win, error)
	// WinCreateDynamic collectively creates a window with no initial
	// memory; Attach exposes regions later.
	WinCreateDynamic(c *comm.Comm) (*rma.Win, error)
	// WinFree collectively releases the window.
	WinFree(w *rma.Win) error
	// Put transfers count elements of dt from origin into the target
	// window at displacement disp. Under FlagVirtAddr, disp is a
	// rma.VAddr and translation is skipped.
	Put(origin []byte, count int, dt *datatype.Type, target, disp int, w *rma.Win, flags OpFlags) error
	// Get transfers from the target window into origin.
	Get(origin []byte, count int, dt *datatype.Type, target, disp int, w *rma.Win, flags OpFlags) error
	// Accumulate folds origin into the target window with op.
	Accumulate(origin []byte, count int, dt *datatype.Type, target, disp int, op coll.Op, w *rma.Win, flags OpFlags) error
	// GetAccumulate fetches the prior target contents into result and
	// folds origin in, atomically per element.
	GetAccumulate(origin, result []byte, count int, dt *datatype.Type, target, disp int, op coll.Op, w *rma.Win, flags OpFlags) error
	// Fence closes and reopens a fence epoch (MPI_WIN_FENCE).
	Fence(w *rma.Win) error
	// FenceEnd closes the fence epoch sequence without opening a new
	// one (MPI_WIN_FENCE with MPI_MODE_NOSUCCEED).
	FenceEnd(w *rma.Win) error
	// Lock opens a passive-target epoch on target rank.
	Lock(w *rma.Win, target int, exclusive bool) error
	// Unlock flushes and closes the passive-target epoch.
	Unlock(w *rma.Win, target int) error
	// Flush completes all outstanding operations to target without
	// closing the epoch.
	Flush(w *rma.Win, target int) error
	// FlushLocal completes outstanding operations to target locally
	// (MPI_WIN_FLUSH_LOCAL): origin buffers are reusable, remote
	// completion is not implied. target -1 means all targets.
	FlushLocal(w *rma.Win, target int) error
	// FlushAll completes outstanding operations to every target without
	// closing the epoch (MPI_WIN_FLUSH_ALL).
	FlushAll(w *rma.Win) error
	// FlushRequest returns a request that completes when every
	// operation issued to target (or all targets when target is -1) so
	// far is remotely complete — the completion substrate of
	// request-based Rput/Rget/Raccumulate, progressed off the request
	// engine like any two-sided request.
	FlushRequest(w *rma.Win, target int) (*request.Request, error)
	// LockAll opens one passive-target epoch spanning every rank
	// (MPI_WIN_LOCK_ALL): a single epoch object, shared or exclusive.
	LockAll(w *rma.Win, exclusive bool) error
	// UnlockAll flushes and closes the LockAll epoch.
	UnlockAll(w *rma.Win) error
	// PutAllOpts is the hand-minimized fused one-sided path, the RMA
	// analogue of IsendAllOpts: a contiguous byte payload to a world
	// target rank inside an already-open epoch, with validation and
	// call-frame charges elided by the caller's contract.
	PutAllOpts(origin []byte, worldTarget, disp int, w *rma.Win) error
}
