// Package core defines the abstract device interface (ADI) between the
// machine-independent MPI layer and the devices (ch4, original), the
// build configurations of Figure 2, and the operation flags that encode
// the paper's proposed MPI standard extensions. Parameters flow through
// the ADI at MPI-level fidelity — the devices see which MPI call
// triggered an operation, with all its arguments — which is the CH4
// design takeaway the paper highlights.
package core

// Config is the library build configuration. Each knob corresponds to
// one step of the Figure 2 ladder: the default build has everything on;
// "no-err" clears ErrorChecking; "no-err-single" additionally clears
// ThreadCheck; "no-err-single-ipo" additionally sets Inline, modeling
// link-time inlining (which removes function-call overhead and lets the
// compiler fold the redundant runtime checks of Section 2.2 into
// compile-time constants).
type Config struct {
	// ErrorChecking validates arguments and objects on every call.
	ErrorChecking bool
	// ThreadCheck branches on the runtime threading level on every
	// call, even when the application is single-threaded — the
	// software-distribution compromise described in Section 2.1.
	ThreadCheck bool
	// ThreadMultiple serializes communication with per-object critical
	// sections (implies the runtime check is taken, not just present).
	ThreadMultiple bool
	// Inline models link-time inlining of the performance-critical MPI
	// functions: function-call overhead and redundant runtime checks
	// are no longer charged.
	Inline bool
	// VCIs is the number of virtual communication interfaces each
	// rank's endpoint exposes (0 or 1 = the classic single-interface
	// endpoint). Only the ch4 device honors it; the baseline device
	// keeps the CH3-era single critical section regardless.
	VCIs int
	// ShmEagerMax is the shared-memory staged/handoff threshold in
	// bytes: on-node payloads strictly larger than it are lent to the
	// receiver as zero-copy handoff descriptors instead of being
	// fragmented through ring cells. 0 disables the handoff path.
	// Only the ch4 device honors it.
	ShmEagerMax int
	// ShmCellSize and ShmRingCells override the shared-memory ring
	// geometry (0 = the shm package defaults), so the eager/handoff
	// crossover can be swept against the cell cost model.
	ShmCellSize  int
	ShmRingCells int
	// RmaStagedShm forces intra-node RMA on shm-backed windows through
	// the staged cell-fragmentation cost model instead of the zero-copy
	// direct path — the ablation knob the RMA sweep compares against.
	// Only the ch4 device honors it.
	RmaStagedShm bool
	// EagerPeers restores all-pairs per-peer state materialization at
	// endpoint open (fabric connections and on-node shm rings toward
	// every peer) — the pre-on-demand model, kept as the measurable
	// baseline of the lazy-peer-state ablation. Default false: peer
	// state materializes on first send toward each peer.
	EagerPeers bool
	// MaxPeerBytes is the hard per-rank ceiling on modeled per-peer
	// state bytes (fabric connection slots + shm rings). A rank whose
	// materializations exceed it panics — the assertion that bounds
	// memory at 10K-rank scale. 0 means unlimited.
	MaxPeerBytes int64
}

// The named builds of Figure 2.
var (
	// Default is the user- and administrator-friendly build.
	Default = Config{ErrorChecking: true, ThreadCheck: true}
	// NoErr disables error checking ("mpich/ch4 (no-err)").
	NoErr = Config{ThreadCheck: true}
	// NoErrSingle also removes the thread-safety check
	// ("mpich/ch4 (no-err-single)").
	NoErrSingle = Config{}
	// NoErrSingleIPO adds link-time inlining
	// ("mpich/ch4 (no-err-single-ipo)").
	NoErrSingleIPO = Config{Inline: true}
)

// ConfigByName resolves the Figure 2 legend names.
func ConfigByName(name string) (Config, bool) {
	switch name {
	case "default", "":
		return Default, true
	case "no-err":
		return NoErr, true
	case "no-err-single":
		return NoErrSingle, true
	case "no-err-single-ipo", "ipo":
		return NoErrSingleIPO, true
	}
	return Config{}, false
}

// ConfigNames lists the build names in Figure 2 order.
var ConfigNames = []string{"default", "no-err", "no-err-single", "no-err-single-ipo"}

// OpFlags selects the proposed standard extensions on a per-call basis
// (Section 3). Zero means plain MPI-3.1 semantics.
type OpFlags uint8

// Extension flags.
const (
	// FlagGlobalRank: the destination is an MPI_COMM_WORLD rank and
	// communicator rank translation is skipped (MPI_ISEND_GLOBAL,
	// Section 3.1).
	FlagGlobalRank OpFlags = 1 << iota
	// FlagPredefComm: the communicator came from the predefined handle
	// table, so referencing it is a constant-indexed global load
	// instead of a dereference into a dynamically allocated object
	// (MPI_COMM_DUP_PREDEFINED, Section 3.3).
	FlagPredefComm
	// FlagNoProcNull: the caller guarantees the target is not
	// MPI_PROC_NULL (MPI_ISEND_NPN, Section 3.4).
	FlagNoProcNull
	// FlagNoReq: no request object; completion is counted on the
	// communicator and collected by MPI_COMM_WAITALL
	// (MPI_ISEND_NOREQ, Section 3.5).
	FlagNoReq
	// FlagNoMatch: source and tag match bits are disabled; messages
	// match receives in arrival order within the communicator
	// (MPI_ISEND_NOMATCH, Section 3.6).
	FlagNoMatch
	// FlagVirtAddr: the RMA target location is a virtual address, not
	// a window offset (MPI_PUT_VIRTUAL_ADDR, Section 3.2).
	FlagVirtAddr

	// FlagAllOpts combines every point-to-point proposal; the device
	// takes a dedicated hand-minimized path (MPI_ISEND_ALL_OPTS,
	// Section 3.7).
	FlagAllOpts = FlagGlobalRank | FlagPredefComm | FlagNoProcNull | FlagNoReq | FlagNoMatch
)

// Has reports whether all bits of q are set.
func (f OpFlags) Has(q OpFlags) bool { return f&q == q }

// ProcNull is the MPI_PROC_NULL sentinel rank: communication addressed
// to it is discarded.
const ProcNull = -2

// AnySource is the MPI_ANY_SOURCE wildcard for receives.
const AnySource = -1

// AnyTag is the MPI_ANY_TAG wildcard for receives.
const AnyTag = -1
