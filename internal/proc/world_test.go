package proc

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"gompi/internal/instr"
)

func TestWorldGeometry(t *testing.T) {
	w := NewWorld(32, 16, 2.2e9)
	if w.Size() != 32 || w.Nodes() != 2 || w.RanksPerNode() != 16 {
		t.Fatalf("geometry = %d/%d/%d", w.Size(), w.Nodes(), w.RanksPerNode())
	}
	if w.Node(0) != 0 || w.Node(15) != 0 || w.Node(16) != 1 {
		t.Error("node mapping wrong")
	}
	if !w.SameNode(0, 15) || w.SameNode(15, 16) {
		t.Error("SameNode wrong")
	}
}

func TestWorldDefaultsSingleNode(t *testing.T) {
	w := NewWorld(8, 0, 1e9)
	if w.Nodes() != 1 {
		t.Fatalf("Nodes = %d, want 1", w.Nodes())
	}
}

func TestWorldOddNodeCount(t *testing.T) {
	w := NewWorld(10, 4, 1e9)
	if w.Nodes() != 3 {
		t.Fatalf("Nodes = %d, want 3 (ceil 10/4)", w.Nodes())
	}
}

func TestZeroSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWorld(0) did not panic")
		}
	}()
	NewWorld(0, 1, 1e9)
}

func TestRunAllRanks(t *testing.T) {
	w := NewWorld(17, 4, 1e9)
	var n atomic.Int64
	var seen [17]atomic.Bool
	err := w.Run(func(r *Rank) error {
		n.Add(1)
		seen[r.ID()].Store(true)
		if r.World() != w {
			t.Error("rank has wrong world")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.Load() != 17 {
		t.Fatalf("ran %d ranks, want 17", n.Load())
	}
	for i := range seen {
		if !seen[i].Load() {
			t.Errorf("rank %d never ran", i)
		}
	}
}

func TestRunCollectsErrors(t *testing.T) {
	w := NewWorld(4, 4, 1e9)
	boom := errors.New("boom")
	err := w.Run(func(r *Rank) error {
		if r.ID() == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "rank 2") {
		t.Errorf("error does not identify the failing rank: %v", err)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	w := NewWorld(3, 3, 1e9)
	err := w.Run(func(r *Rank) error {
		if r.ID() == 1 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "rank 1 panicked") {
		t.Fatalf("err = %v, want rank 1 panic", err)
	}
}

func TestRankMeter(t *testing.T) {
	w := NewWorld(1, 1, 2.2e9)
	r := w.Rank(0)
	r.Charge(instr.Mandatory, 10)
	r.ChargeCycles(instr.Transport, 100)
	if r.Profile().Total() != 10 {
		t.Errorf("Total = %d, want 10", r.Profile().Total())
	}
	if r.Now() != 110 {
		t.Errorf("Now = %d, want 110", r.Now())
	}
	r.Sync(500)
	if r.Now() != 500 {
		t.Errorf("Sync: Now = %d, want 500", r.Now())
	}
	if r.Clock().Hz() != 2.2e9 {
		t.Error("clock frequency lost")
	}
}

func TestStartBarrier(t *testing.T) {
	const n = 8
	w := NewWorld(n, 4, 1e9)
	var before, after atomic.Int64
	err := w.Run(func(r *Rank) error {
		before.Add(1)
		r.StartBarrier()
		// Every rank must have passed "before" by now.
		if before.Load() != n {
			t.Errorf("rank %d passed barrier with only %d arrivals", r.ID(), before.Load())
		}
		after.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if after.Load() != n {
		t.Fatalf("after = %d", after.Load())
	}
}

func TestBarrierReusable(t *testing.T) {
	b := newBarrier(3)
	var phase atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				b.await()
				phase.Add(1)
				b.await()
				if got := phase.Load(); got%3 != 0 && got < int64(3*(k+1)) {
					// Between the two barriers all three must have
					// bumped phase for this round.
				}
			}
		}()
	}
	wg.Wait()
	if phase.Load() != 150 {
		t.Fatalf("phase = %d, want 150", phase.Load())
	}
}

// Property: node mapping partitions ranks into contiguous blocks of
// ranksPerNode.
func TestNodeMappingProperty(t *testing.T) {
	f := func(size, rpn uint8) bool {
		n := int(size%64) + 1
		k := int(rpn%8) + 1
		w := NewWorld(n, k, 1e9)
		for r := 0; r < n; r++ {
			if w.Node(r) != r/k {
				return false
			}
		}
		return w.Nodes() == (n+k-1)/k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
