// Package proc is the process-manager stand-in: it spawns one goroutine
// per MPI rank, assigns ranks to simulated nodes (which decides netmod
// vs shmmod locality), owns each rank's virtual clock and instruction
// profile, and collects per-rank failures. It plays the role PMI and
// the job launcher play for a real MPICH.
package proc

import (
	"errors"
	"fmt"
	"sync"

	"gompi/internal/abort"
	"gompi/internal/instr"
	"gompi/internal/metrics"
	"gompi/internal/vtime"
)

// World describes one job: P ranks over P/ranksPerNode nodes.
type World struct {
	size         int
	ranksPerNode int
	hz           float64
	ranks        []*Rank

	startOnce sync.Once
	start     *barrier
}

// NewWorld creates a world of n ranks at ranksPerNode ranks per node,
// with per-rank clocks at hz.
func NewWorld(n, ranksPerNode int, hz float64) *World {
	if n <= 0 {
		panic("proc: world size must be positive")
	}
	if ranksPerNode <= 0 {
		ranksPerNode = n // single node
	}
	w := &World{size: n, ranksPerNode: ranksPerNode, hz: hz, start: newBarrier(n)}
	w.ranks = make([]*Rank, n)
	for i := range w.ranks {
		w.ranks[i] = &Rank{id: i, world: w, clock: vtime.NewClock(hz), cpi: 1}
	}
	return w
}

// SetInstrCPI sets the cycles-per-instruction of MPI software on this
// platform (1.0 = the x86 testbeds; ~6 for the BG/Q A2). Must be called
// before Run.
func (w *World) SetInstrCPI(cpi float64) {
	if cpi <= 0 {
		cpi = 1
	}
	for _, r := range w.ranks {
		r.cpi = cpi
	}
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// RanksPerNode returns the node width.
func (w *World) RanksPerNode() int { return w.ranksPerNode }

// Nodes returns the number of simulated nodes.
func (w *World) Nodes() int { return (w.size + w.ranksPerNode - 1) / w.ranksPerNode }

// Node returns the node hosting rank.
func (w *World) Node(rank int) int { return rank / w.ranksPerNode }

// SameNode reports whether two ranks share a node (shmmod reachable).
func (w *World) SameNode(a, b int) bool { return w.Node(a) == w.Node(b) }

// Rank returns the rank object with the given id.
func (w *World) Rank(id int) *Rank { return w.ranks[id] }

// Run spawns one goroutine per rank and executes body on each. It
// returns after every rank finishes; rank failures (errors or panics)
// are joined into the returned error.
func (w *World) Run(body func(r *Rank) error) error {
	return errors.Join(w.RunAll(body)...)
}

// RunAll is Run returning the per-rank errors (nil entries for ranks
// that succeeded). A panic with abort.ErrWorldAborted — raised by
// blocking layers during teardown — is recorded as that sentinel, so
// callers can separate the original failure from its fallout.
func (w *World) RunAll(body func(r *Rank) error) []error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	wg.Add(w.size)
	for _, r := range w.ranks {
		go func(r *Rank) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					if err, ok := p.(error); ok && errors.Is(err, abort.ErrWorldAborted) {
						errs[r.id] = fmt.Errorf("rank %d: %w", r.id, abort.ErrWorldAborted)
						return
					}
					errs[r.id] = fmt.Errorf("rank %d panicked: %v", r.id, p)
				}
			}()
			errs[r.id] = wrapRankErr(r.id, body(r))
		}(r)
	}
	wg.Wait()
	return errs
}

func wrapRankErr(id int, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("rank %d: %w", id, err)
}

// Rank is one MPI process: a goroutine plus its virtual clock and
// instruction profile. It implements the Meter interfaces of the
// fabric and shm packages. All methods except the world queries must be
// called only from the rank's own goroutine.
type Rank struct {
	id    int
	world *World
	clock *vtime.Clock
	prof  instr.Profile
	cpi   float64 // cycles per MPI instruction (platform model)
	m     metrics.Rank
}

// ID returns the rank's world rank.
func (r *Rank) ID() int { return r.id }

// World returns the owning world.
func (r *Rank) World() *World { return r.world }

// Node returns the rank's simulated node.
func (r *Rank) Node() int { return r.world.Node(r.id) }

// Charge records n MPI-library instructions and advances the virtual
// clock by n*CPI cycles. Instruction counts (Table 1, Figure 2) are
// CPI-independent; only time is platform-scaled.
func (r *Rank) Charge(cat instr.Category, n int64) {
	r.prof.Charge(cat, n)
	r.clock.Advance(int64(float64(n) * r.cpi))
}

// ChargeCycles records n non-instruction cycles (transport injection,
// modeled compute) and advances the clock.
func (r *Rank) ChargeCycles(cat instr.Category, n int64) {
	r.prof.ChargeCycles(cat, n)
	r.clock.Advance(n)
}

// Now returns the rank's current virtual time.
func (r *Rank) Now() vtime.Time { return r.clock.Now() }

// Sync advances the rank's clock to t if t is in the future (message
// arrival, epoch close).
func (r *Rank) Sync(t vtime.Time) { r.clock.Sync(t) }

// Clock exposes the rank's clock for rate computations.
func (r *Rank) Clock() *vtime.Clock { return r.clock }

// Profile exposes the rank's instruction profile for snapshots.
func (r *Rank) Profile() *instr.Profile { return &r.prof }

// Metrics exposes the rank's observability registry. The transports
// and devices bump its counters; the public layer snapshots it at
// teardown. Value field, so the registry costs no allocation.
func (r *Rank) Metrics() *metrics.Rank { return &r.m }

// StartBarrier blocks until every rank in the world has called it.
// Devices call it once after local setup so that no rank communicates
// before all endpoints have registered handlers and callbacks.
func (r *Rank) StartBarrier() { r.world.start.await() }

// barrier is a reusable N-party rendezvous.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   int
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}
