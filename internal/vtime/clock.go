// Package vtime implements the per-rank virtual clocks that replace the
// paper's wall-clock measurements on real hardware. Each rank carries a
// cycle counter advanced by the instruction-accounted MPI software path
// (CPI 1.0), by modeled application compute, and by fabric injection and
// wire latency. Messages carry the sender's clock at injection time;
// completing a receive advances the receiver's clock to at least the
// message arrival time. This is a conservative parallel-discrete-event
// approximation: it reproduces the compute/communication balance that
// shapes the paper's strong-scaling curves, deterministically.
package vtime

import "sync/atomic"

// Time is a point in virtual time, in cycles since rank spawn.
type Time int64

// Cycles is a duration in virtual cycles.
type Cycles = int64

// Clock is one rank's virtual clock. Updates are atomic: a rank is
// normally one goroutine, but under MPI_THREAD_MULTIPLE several
// application goroutines advance the same rank's clock concurrently.
// Cross-rank ordering still happens only through message timestamps
// (Sync). Single-threaded advancement is numerically identical to the
// plain-add form.
type Clock struct {
	now int64 // atomic
	hz  float64
}

// NewClock returns a clock ticking at the given model frequency.
func NewClock(hz float64) *Clock {
	if hz <= 0 {
		panic("vtime: non-positive frequency")
	}
	return &Clock{hz: hz}
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return Time(atomic.LoadInt64(&c.now)) }

// Hz returns the model core frequency in cycles per second.
func (c *Clock) Hz() float64 { return c.hz }

// Advance moves the clock forward by n cycles. Negative n panics:
// virtual time never runs backward.
func (c *Clock) Advance(n Cycles) {
	if n < 0 {
		panic("vtime: negative advance")
	}
	atomic.AddInt64(&c.now, n)
}

// Sync advances the clock to t if t is in the future; a rank that waited
// for a message lands at the message's arrival time. Sync never moves
// the clock backward (a CAS maximum, so concurrent Syncs cannot regress
// the clock either).
func (c *Clock) Sync(t Time) {
	for {
		cur := atomic.LoadInt64(&c.now)
		if int64(t) <= cur {
			return
		}
		if atomic.CompareAndSwapInt64(&c.now, cur, int64(t)) {
			return
		}
	}
}

// Seconds converts a duration between two points on this clock to
// seconds at the model frequency.
func (c *Clock) Seconds(from, to Time) float64 {
	return float64(to-from) / c.hz
}

// Rate converts an operation count over a virtual interval into
// operations per second. It returns 0 for an empty interval.
func (c *Clock) Rate(ops int64, from, to Time) float64 {
	s := c.Seconds(from, to)
	if s <= 0 {
		return 0
	}
	return float64(ops) / s
}

// Max returns the later of two virtual times.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}
