package vtime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAdvance(t *testing.T) {
	c := NewClock(2.2e9)
	c.Advance(100)
	c.Advance(50)
	if c.Now() != 150 {
		t.Errorf("Now = %d, want 150", c.Now())
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewClock(1e9).Advance(-1)
}

func TestNewClockBadHzPanics(t *testing.T) {
	for _, hz := range []float64{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewClock(%v) did not panic", hz)
				}
			}()
			NewClock(hz)
		}()
	}
}

func TestSyncMonotone(t *testing.T) {
	c := NewClock(1e9)
	c.Advance(100)
	c.Sync(50) // in the past: no-op
	if c.Now() != 100 {
		t.Errorf("Sync to past moved clock: Now = %d, want 100", c.Now())
	}
	c.Sync(300)
	if c.Now() != 300 {
		t.Errorf("Sync to future: Now = %d, want 300", c.Now())
	}
}

func TestSecondsAndRate(t *testing.T) {
	c := NewClock(2.0e9)
	from := c.Now()
	c.Advance(2_000_000_000) // one second of cycles
	if got := c.Seconds(from, c.Now()); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("Seconds = %v, want 1.0", got)
	}
	if got := c.Rate(4_000_000, from, c.Now()); math.Abs(got-4e6) > 1e-3 {
		t.Errorf("Rate = %v, want 4e6", got)
	}
}

func TestRateEmptyInterval(t *testing.T) {
	c := NewClock(1e9)
	if got := c.Rate(100, c.Now(), c.Now()); got != 0 {
		t.Errorf("Rate over empty interval = %v, want 0", got)
	}
}

func TestMax(t *testing.T) {
	if Max(3, 5) != 5 || Max(5, 3) != 5 || Max(4, 4) != 4 {
		t.Error("Max is wrong")
	}
}

// Property: any interleaving of Advance and Sync keeps the clock
// monotonically non-decreasing.
func TestMonotonicity(t *testing.T) {
	f := func(steps []int16) bool {
		c := NewClock(1e9)
		prev := c.Now()
		for _, s := range steps {
			if s >= 0 {
				c.Advance(int64(s))
			} else {
				c.Sync(Time(-int64(s) * 3))
			}
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Advance is additive — advancing by a then b equals advancing
// by a+b.
func TestAdvanceAdditive(t *testing.T) {
	f := func(a, b uint16) bool {
		c1 := NewClock(1e9)
		c1.Advance(int64(a))
		c1.Advance(int64(b))
		c2 := NewClock(1e9)
		c2.Advance(int64(a) + int64(b))
		return c1.Now() == c2.Now()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
