package md

import "gompi"

// Exchange tags (world communicator; per-pair FIFO keeps successive
// steps ordered).
const (
	tagGhost   = 400 // +2*dim for low-bound sends, +2*dim+1 for high
	tagMigrate = 500
)

// exchangeGhosts rebuilds the ghost shell with the three-sweep plane
// exchange: per dimension, atoms (local and already-imported ghosts)
// within the cutoff of a boundary are shipped to that neighbor, with
// periodic image shifts applied by the sender. Sweeping x, then y, then
// z covers edge and corner neighbors transitively.
func (s *sim) exchangeGhosts() error {
	s.ghosts = s.ghosts[:0]
	rc := s.prm.Cutoff
	for dim := 0; dim < 3; dim++ {
		var sendLo, sendHi [][3]float64
		consider := func(p [3]float64) {
			if p[dim] < s.lo[dim]+rc {
				q := p
				if s.coords[dim] == 0 {
					q[dim] += s.L[dim] // wraps to the high side of the domain
				}
				sendLo = append(sendLo, q)
			}
			if p[dim] >= s.hi[dim]-rc {
				q := p
				if s.coords[dim] == s.grid[dim]-1 {
					q[dim] -= s.L[dim]
				}
				sendHi = append(sendHi, q)
			}
		}
		for i := 0; i < s.n; i++ {
			consider(s.pos[i])
		}
		for _, g := range s.ghosts {
			consider(g)
		}

		lo := s.neighbor(dim, -1)
		hi := s.neighbor(dim, +1)
		if err := s.sendAtoms(sendLo, lo, tagGhost+2*dim, nil); err != nil {
			return err
		}
		if err := s.sendAtoms(sendHi, hi, tagGhost+2*dim+1, nil); err != nil {
			return err
		}
		// Receive: from the high neighbor comes its low-bound set (tag
		// 2*dim), from the low neighbor its high-bound set (tag 2*dim+1).
		fromHi, _, err := s.recvAtoms(hi, tagGhost+2*dim, false)
		if err != nil {
			return err
		}
		fromLo, _, err := s.recvAtoms(lo, tagGhost+2*dim+1, false)
		if err != nil {
			return err
		}
		s.ghosts = append(s.ghosts, fromHi...)
		s.ghosts = append(s.ghosts, fromLo...)
		if err := s.w.CommWaitall(); err != nil {
			return err
		}
	}
	return nil
}

// migrate ships atoms that left the box to the owning neighbor, one
// dimension at a time (an atom crossing a corner is forwarded
// transitively). Sender wraps coordinates across the periodic
// boundary.
func (s *sim) migrate() error {
	for dim := 0; dim < 3; dim++ {
		var keepPos, keepVel [][3]float64
		var keepID []int32
		var loPos, loVel, hiPos, hiVel [][3]float64
		var loID, hiID []int32

		for i := 0; i < s.n; i++ {
			p := s.pos[i]
			switch {
			case p[dim] < s.lo[dim]:
				if s.coords[dim] == 0 {
					p[dim] += s.L[dim]
				}
				loPos = append(loPos, p)
				loVel = append(loVel, s.vel[i])
				loID = append(loID, s.id[i])
			case p[dim] >= s.hi[dim]:
				if s.coords[dim] == s.grid[dim]-1 {
					p[dim] -= s.L[dim]
				}
				hiPos = append(hiPos, p)
				hiVel = append(hiVel, s.vel[i])
				hiID = append(hiID, s.id[i])
			default:
				keepPos = append(keepPos, p)
				keepVel = append(keepVel, s.vel[i])
				keepID = append(keepID, s.id[i])
			}
		}

		lo := s.neighbor(dim, -1)
		hi := s.neighbor(dim, +1)
		if err := s.sendAtoms(loPos, lo, tagMigrate+4*dim, &migExtra{loVel, loID}); err != nil {
			return err
		}
		if err := s.sendAtoms(hiPos, hi, tagMigrate+4*dim+1, &migExtra{hiVel, hiID}); err != nil {
			return err
		}
		inHiPos, inHiX, err := s.recvAtoms(hi, tagMigrate+4*dim, true)
		if err != nil {
			return err
		}
		inLoPos, inLoX, err := s.recvAtoms(lo, tagMigrate+4*dim+1, true)
		if err != nil {
			return err
		}

		s.pos = append(append(keepPos, inHiPos...), inLoPos...)
		s.vel = append(append(keepVel, inHiX.vel...), inLoX.vel...)
		s.id = append(append(keepID, inHiX.id...), inLoX.id...)
		s.n = len(s.pos)
		if err := s.w.CommWaitall(); err != nil {
			return err
		}
	}
	if len(s.frc) < s.n {
		s.frc = make([][3]float64, s.n)
	}
	s.frc = s.frc[:s.n]
	return nil
}

// migExtra carries velocities and ids alongside positions for
// migration messages.
type migExtra struct {
	vel [][3]float64
	id  []int32
}

// sendAtoms packs and ships one atom set (positions, optionally
// velocities+ids) with a requestless send. Empty sets still send a
// zero-length message so the receiver's matching recv completes.
func (s *sim) sendAtoms(pos [][3]float64, dest, tag int, extra *migExtra) error {
	per := 3
	if extra != nil {
		per = 7 // pos + vel + id (id packed as float64 for simplicity)
	}
	vals := make([]float64, 0, per*len(pos))
	for i, p := range pos {
		vals = append(vals, p[0], p[1], p[2])
		if extra != nil {
			v := extra.vel[i]
			vals = append(vals, v[0], v[1], v[2], float64(extra.id[i]))
		}
	}
	wire := gompi.Float64Bytes(vals, nil)
	return s.w.IsendNoReq(wire, len(wire), gompi.Byte, dest, tag)
}

// recvAtoms probes for size, receives, and unpacks one atom set.
func (s *sim) recvAtoms(src, tag int, withExtra bool) ([][3]float64, migExtra, error) {
	st, err := s.w.Probe(src, tag)
	if err != nil {
		return nil, migExtra{}, err
	}
	buf := make([]byte, st.Count)
	if _, err := s.w.Recv(buf, len(buf), gompi.Byte, src, tag); err != nil {
		return nil, migExtra{}, err
	}
	vals := gompi.BytesFloat64(buf, nil)
	per := 3
	if withExtra {
		per = 7
	}
	n := len(vals) / per
	pos := make([][3]float64, n)
	var ex migExtra
	if withExtra {
		ex.vel = make([][3]float64, n)
		ex.id = make([]int32, n)
	}
	for i := 0; i < n; i++ {
		v := vals[i*per:]
		pos[i] = [3]float64{v[0], v[1], v[2]}
		if withExtra {
			ex.vel[i] = [3]float64{v[3], v[4], v[5]}
			ex.id[i] = int32(v[6])
		}
	}
	return pos, ex, nil
}
