package md

import (
	"math"
	"math/rand"

	"gompi"
)

// sim is one rank's simulation state.
type sim struct {
	p   *gompi.Proc
	w   *gompi.Comm
	prm *Params

	grid   [3]int
	coords [3]int
	cells  int        // global FCC cells per dimension
	L      [3]float64 // global box
	lo, hi [3]float64 // this rank's box

	// Local atoms (structure of arrays).
	n   int
	pos [][3]float64
	vel [][3]float64
	frc [][3]float64
	id  []int32

	// Ghost atoms (positions only), appended after exchange.
	ghosts [][3]float64

	// Scratch.
	flopAcc   float64
	energyPot float64 // accumulated by computeForces
}

func newSim(p *gompi.Proc, prm *Params) *sim {
	s := &sim{p: p, w: p.World(), prm: prm, grid: prm.RankGrid}
	r := p.Rank()
	s.coords[0] = r % s.grid[0]
	s.coords[1] = (r / s.grid[0]) % s.grid[1]
	s.coords[2] = r / (s.grid[0] * s.grid[1])

	// The lattice defines the box (the LAMMPS convention): choose the
	// FCC cell count nearest the target atom total and size the
	// periodic box to tile it exactly, so the density is exact and the
	// decomposition never straddles partial cells.
	a := math.Cbrt(4.0 / prm.Density)
	total := prm.AtomsPerCore * p.Size()
	cells := int(math.Round(math.Cbrt(float64(total) / 4.0)))
	if cells < 1 {
		cells = 1
	}
	s.cells = cells
	L := float64(cells) * a
	for d := 0; d < 3; d++ {
		s.L[d] = L
		side := L / float64(s.grid[d])
		s.lo[d] = side * float64(s.coords[d])
		s.hi[d] = side * float64(s.coords[d]+1)
	}
	return s
}

// neighbor returns the world rank one step along dim (periodic).
func (s *sim) neighbor(dim, step int) int {
	c := s.coords
	c[dim] = (c[dim] + step + s.grid[dim]) % s.grid[dim]
	return c[0] + s.grid[0]*(c[1]+s.grid[1]*c[2])
}

// flop charges accumulated compute cycles in batches.
func (s *sim) flop(cycles float64) {
	s.flopAcc += cycles
	if s.flopAcc >= 8192 {
		s.p.ChargeCompute(int64(s.flopAcc))
		s.flopAcc = 0
	}
}

func (s *sim) flushFlops() {
	if s.flopAcc > 0 {
		s.p.ChargeCompute(int64(s.flopAcc))
		s.flopAcc = 0
	}
}

// buildLattice places the global FCC lattice and keeps the atoms inside
// this rank's box. The lattice constant comes from the density (4 atoms
// per FCC cell), and the global cell count is chosen to land near
// AtomsPerCore * P total atoms.
func (s *sim) buildLattice() {
	cells := [3]int{s.cells, s.cells, s.cells}
	var ax [3]float64
	for d := 0; d < 3; d++ {
		ax[d] = s.L[d] / float64(cells[d])
	}
	basis := [4][3]float64{
		{0, 0, 0},
		{0.5, 0.5, 0},
		{0.5, 0, 0.5},
		{0, 0.5, 0.5},
	}
	id := int32(0)
	for cz := 0; cz < cells[2]; cz++ {
		for cy := 0; cy < cells[1]; cy++ {
			for cx := 0; cx < cells[0]; cx++ {
				for _, b := range basis {
					x := (float64(cx) + b[0]) * ax[0]
					y := (float64(cy) + b[1]) * ax[1]
					z := (float64(cz) + b[2]) * ax[2]
					if x >= s.lo[0] && x < s.hi[0] &&
						y >= s.lo[1] && y < s.hi[1] &&
						z >= s.lo[2] && z < s.hi[2] {
						s.pos = append(s.pos, [3]float64{x, y, z})
						s.id = append(s.id, id)
					}
					id++
				}
			}
		}
	}
	s.n = len(s.pos)
	s.vel = make([][3]float64, s.n)
	s.frc = make([][3]float64, s.n)
}

// initVelocities draws Maxwell-like velocities deterministically from
// each atom's global id (so the initial state is independent of the
// decomposition), then removes the global drift.
func (s *sim) initVelocities() {
	scale := math.Sqrt(s.prm.Temp)
	for i := 0; i < s.n; i++ {
		rng := rand.New(rand.NewSource(s.prm.Seed + int64(s.id[i])))
		for d := 0; d < 3; d++ {
			s.vel[i][d] = scale * rng.NormFloat64()
		}
	}
	// Zero total momentum: subtract the global mean velocity.
	sum := [3]float64{}
	for i := 0; i < s.n; i++ {
		for d := 0; d < 3; d++ {
			sum[d] += s.vel[i][d]
		}
	}
	vals, err := s.w.AllreduceFloat64([]float64{sum[0], sum[1], sum[2], float64(s.n)}, gompi.OpSum)
	if err != nil {
		panic(err)
	}
	total := vals[3]
	for i := 0; i < s.n; i++ {
		for d := 0; d < 3; d++ {
			s.vel[i][d] -= vals[d] / total
		}
	}
}

// integrateHalf performs the first Verlet half-kick and the drift.
func (s *sim) integrateHalf() {
	dt := s.prm.Dt
	for i := 0; i < s.n; i++ {
		for d := 0; d < 3; d++ {
			s.vel[i][d] += 0.5 * dt * s.frc[i][d]
			s.pos[i][d] += dt * s.vel[i][d]
		}
	}
	s.flop(float64(s.n) * s.prm.CyclesPerAtom)
}

// integrateFinal performs the second half-kick.
func (s *sim) integrateFinal() {
	dt := s.prm.Dt
	for i := 0; i < s.n; i++ {
		for d := 0; d < 3; d++ {
			s.vel[i][d] += 0.5 * dt * s.frc[i][d]
		}
	}
	s.flop(float64(s.n) * s.prm.CyclesPerAtom * 0.5)
}

// totalEnergyPerAtom returns (KE + PE) / N over the whole system.
func (s *sim) totalEnergyPerAtom() (float64, error) {
	ke := 0.0
	for i := 0; i < s.n; i++ {
		for d := 0; d < 3; d++ {
			ke += 0.5 * s.vel[i][d] * s.vel[i][d]
		}
	}
	vals, err := s.w.AllreduceFloat64([]float64{ke, s.energyPot, float64(s.n)}, gompi.OpSum)
	if err != nil {
		return 0, err
	}
	if vals[2] == 0 {
		return 0, nil
	}
	return (vals[0] + vals[1]) / vals[2], nil
}

// totalMomentum returns the magnitude of the global momentum vector.
func (s *sim) totalMomentum() (float64, error) {
	sum := [3]float64{}
	for i := 0; i < s.n; i++ {
		for d := 0; d < 3; d++ {
			sum[d] += s.vel[i][d]
		}
	}
	vals, err := s.w.AllreduceFloat64([]float64{sum[0], sum[1], sum[2]}, gompi.OpSum)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(vals[0]*vals[0] + vals[1]*vals[1] + vals[2]*vals[2]), nil
}

// globalAtomCount sums local counts (conservation check).
func (s *sim) globalAtomCount() (int, error) {
	vals, err := s.w.AllreduceFloat64([]float64{float64(s.n)}, gompi.OpSum)
	if err != nil {
		return 0, err
	}
	return int(vals[0] + 0.5), nil
}
