package md

import (
	"fmt"
	"math"
	"testing"

	"gompi"
)

func TestParamsValidate(t *testing.T) {
	p := Params{AtomsPerCore: 100, RankGrid: [3]int{2, 2, 2}, Steps: 5}
	p.Defaults()
	if err := p.Validate(8); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(4); err == nil {
		t.Error("wrong world accepted")
	}
	tiny := Params{AtomsPerCore: 5, RankGrid: [3]int{1, 1, 1}, Steps: 1}
	tiny.Defaults()
	if err := tiny.Validate(1); err == nil {
		t.Error("box smaller than cutoff accepted")
	}
}

func TestLatticeCoversDomainExactlyOnce(t *testing.T) {
	prm := Params{AtomsPerCore: 108, RankGrid: [3]int{2, 2, 1}, Steps: 1}
	prm.Defaults()
	counts := make([]int, 4)
	err := gompi.Run(4, gompi.Config{Fabric: "inf"}, func(p *gompi.Proc) error {
		s := newSim(p, &prm)
		s.buildLattice()
		counts[p.Rank()] = s.n
		// All atoms strictly inside the rank box.
		for i := 0; i < s.n; i++ {
			for d := 0; d < 3; d++ {
				if s.pos[i][d] < s.lo[d] || s.pos[i][d] >= s.hi[d] {
					return fmt.Errorf("atom %d outside box along %d", i, d)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	// The global FCC lattice: 4 atoms per cell, cells rounded from the
	// box — every lattice site assigned to exactly one rank.
	if total%4 != 0 || total == 0 {
		t.Fatalf("total atoms %d not a 4-multiple FCC count", total)
	}
	want := float64(4 * 108)
	if math.Abs(float64(total)-want)/want > 0.35 {
		t.Fatalf("total atoms %d far from target %v", total, want)
	}
}

func TestGhostExchangeCoverage(t *testing.T) {
	// Every ghost must lie within the cutoff shell outside the box.
	prm := Params{AtomsPerCore: 108, RankGrid: [3]int{2, 1, 1}, Steps: 1}
	prm.Defaults()
	err := gompi.Run(2, gompi.Config{Fabric: "inf"}, func(p *gompi.Proc) error {
		s := newSim(p, &prm)
		s.buildLattice()
		s.vel = make([][3]float64, s.n)
		if err := s.exchangeGhosts(); err != nil {
			return err
		}
		if len(s.ghosts) == 0 {
			return fmt.Errorf("rank %d received no ghosts", p.Rank())
		}
		rc := prm.Cutoff
		for _, g := range s.ghosts {
			for d := 0; d < 3; d++ {
				if g[d] < s.lo[d]-rc-1e-9 || g[d] > s.hi[d]+rc+1e-9 {
					return fmt.Errorf("ghost %v outside shell of [%v,%v]", g, s.lo, s.hi)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestShortRunConservation(t *testing.T) {
	prm := Params{AtomsPerCore: 108, RankGrid: [3]int{2, 2, 1}, Steps: 10}
	err := gompi.Run(4, gompi.Config{Fabric: "ofi"}, func(p *gompi.Proc) error {
		res, err := Run(p, prm)
		if err != nil {
			return err
		}
		if p.Rank() != 0 {
			return nil
		}
		if res.AtomsTotal == 0 {
			return fmt.Errorf("no atoms")
		}
		// NVE drift over 10 small steps must be tiny.
		drift := math.Abs(res.Energy-res.InitialEnergy) / math.Abs(res.InitialEnergy)
		if drift > 2e-3 {
			return fmt.Errorf("energy drift %.3g (E0=%.6f E1=%.6f)", drift, res.InitialEnergy, res.Energy)
		}
		if res.Momentum > 1e-9*float64(res.AtomsTotal) {
			return fmt.Errorf("momentum |p| = %g", res.Momentum)
		}
		if res.StepsPerSec <= 0 || res.Seconds <= 0 {
			return fmt.Errorf("bad timing %+v", res)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAtomCountConservedAcrossMigration(t *testing.T) {
	// Longer, hotter run to force migrations across boundaries.
	prm := Params{AtomsPerCore: 60, RankGrid: [3]int{2, 2, 2}, Steps: 25, Temp: 2.5}
	var before, after int
	err := gompi.Run(8, gompi.Config{Fabric: "inf"}, func(p *gompi.Proc) error {
		res, err := Run(p, prm)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			after = res.AtomsTotal
			before = int(res.AtomsPerCore*8 + 0.5)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Fatalf("atom count changed: %d -> %d", before, after)
	}
	if after == 0 {
		t.Fatal("no atoms simulated")
	}
}

func TestSingleRankPeriodic(t *testing.T) {
	// grid 1x1x1: all neighbors are self; periodic images via
	// self-messaging must still conserve energy.
	prm := Params{AtomsPerCore: 108, RankGrid: [3]int{1, 1, 1}, Steps: 10}
	err := gompi.Run(1, gompi.Config{}, func(p *gompi.Proc) error {
		res, err := Run(p, prm)
		if err != nil {
			return err
		}
		drift := math.Abs(res.Energy-res.InitialEnergy) / math.Abs(res.InitialEnergy)
		if drift > 2e-3 {
			return fmt.Errorf("energy drift %.3g", drift)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDecompositionInvariance(t *testing.T) {
	// The same global system on 1 vs 8 ranks must produce the same
	// energy trajectory (deterministic initial state from atom ids).
	energy := map[int]float64{}
	for _, grid := range [][3]int{{1, 1, 1}, {2, 2, 2}} {
		ranks := grid[0] * grid[1] * grid[2]
		// Keep the same GLOBAL box: atoms/core scales inversely.
		prm := Params{AtomsPerCore: 864 / ranks, RankGrid: grid, Steps: 5}
		var e float64
		err := gompi.Run(ranks, gompi.Config{Fabric: "inf"}, func(p *gompi.Proc) error {
			res, err := Run(p, prm)
			if err != nil {
				return err
			}
			if p.Rank() == 0 {
				e = res.Energy
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		energy[ranks] = e
	}
	if math.Abs(energy[1]-energy[8]) > 1e-9*math.Abs(energy[1]) {
		t.Fatalf("decomposition changed physics: E(1)=%v E(8)=%v", energy[1], energy[8])
	}
}

func TestStrongScalingCommFraction(t *testing.T) {
	// Fewer atoms per core => larger communication fraction.
	fracs := map[int]float64{}
	for _, apc := range []int{368, 23} {
		prm := Params{AtomsPerCore: apc, RankGrid: [3]int{2, 2, 2}, Steps: 5}
		var f float64
		err := gompi.Run(8, gompi.Config{Fabric: "ofi"}, func(p *gompi.Proc) error {
			res, err := Run(p, prm)
			if err != nil {
				return err
			}
			if p.Rank() == 0 {
				f = res.CommFrac
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		fracs[apc] = f
	}
	if !(fracs[23] > fracs[368]) {
		t.Fatalf("comm fraction should grow at the scaling limit: %v", fracs)
	}
}

func TestCh4FasterThanOriginalAtScalingLimit(t *testing.T) {
	rates := map[string]float64{}
	prm := Params{AtomsPerCore: 23, RankGrid: [3]int{2, 2, 2}, Steps: 5}
	for _, dev := range []gompi.DeviceKind{gompi.DeviceCH4, gompi.DeviceOriginal} {
		var r float64
		err := gompi.Run(8, gompi.Config{Device: dev, Fabric: "ofi"}, func(p *gompi.Proc) error {
			res, err := Run(p, prm)
			if err != nil {
				return err
			}
			if p.Rank() == 0 {
				r = res.StepsPerSec
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		rates[string(dev)] = r
	}
	if rates["ch4"] <= rates["original"] {
		t.Fatalf("ch4 %.3g <= original %.3g timesteps/s", rates["ch4"], rates["original"])
	}
}
