package md

// computeForces evaluates Lennard-Jones forces on local atoms from
// local and ghost neighbors within the cutoff, using a cell list over
// the extended (box + ghost shell) volume. It also accumulates this
// rank's share of the potential energy (pairs with ghosts count half).
func (s *sim) computeForces() {
	rc := s.prm.Cutoff
	rc2 := rc * rc

	for i := range s.frc {
		s.frc[i] = [3]float64{}
	}
	s.energyPot = 0

	nAll := s.n + len(s.ghosts)
	if nAll == 0 {
		return
	}
	at := func(i int) [3]float64 {
		if i < s.n {
			return s.pos[i]
		}
		return s.ghosts[i-s.n]
	}

	// Cell list over [lo-rc, hi+rc).
	var cells [3]int
	var origin, inv [3]float64
	totalCells := 1
	for d := 0; d < 3; d++ {
		span := s.hi[d] - s.lo[d] + 2*rc
		cells[d] = int(span / rc)
		if cells[d] < 1 {
			cells[d] = 1
		}
		origin[d] = s.lo[d] - rc
		inv[d] = float64(cells[d]) / span
		totalCells *= cells[d]
	}
	cellOf := func(p [3]float64) int {
		c := [3]int{}
		for d := 0; d < 3; d++ {
			c[d] = int((p[d] - origin[d]) * inv[d])
			if c[d] < 0 {
				c[d] = 0
			}
			if c[d] >= cells[d] {
				c[d] = cells[d] - 1
			}
		}
		return c[0] + cells[0]*(c[1]+cells[1]*c[2])
	}

	head := make([]int, totalCells)
	for i := range head {
		head[i] = -1
	}
	next := make([]int, nAll)
	for i := 0; i < nAll; i++ {
		c := cellOf(at(i))
		next[i] = head[c]
		head[c] = i
	}
	s.flop(float64(nAll) * 12) // cell binning

	// Shifted-potential energy at the cutoff keeps energy continuous.
	sr6c := 1.0 / (rc2 * rc2 * rc2)
	eCut := 4 * (sr6c*sr6c - sr6c)

	pairs := 0
	for i := 0; i < s.n; i++ {
		pi := s.pos[i]
		ci := [3]int{}
		for d := 0; d < 3; d++ {
			ci[d] = int((pi[d] - origin[d]) * inv[d])
			if ci[d] < 0 {
				ci[d] = 0
			}
			if ci[d] >= cells[d] {
				ci[d] = cells[d] - 1
			}
		}
		for dz := -1; dz <= 1; dz++ {
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					cx, cy, cz := ci[0]+dx, ci[1]+dy, ci[2]+dz
					if cx < 0 || cx >= cells[0] || cy < 0 || cy >= cells[1] || cz < 0 || cz >= cells[2] {
						continue
					}
					for j := head[cx+cells[0]*(cy+cells[1]*cz)]; j >= 0; j = next[j] {
						// Local pairs once (j > i); ghost neighbors always.
						if j < s.n {
							if j <= i {
								continue
							}
						}
						pj := at(j)
						dxr := pi[0] - pj[0]
						dyr := pi[1] - pj[1]
						dzr := pi[2] - pj[2]
						r2 := dxr*dxr + dyr*dyr + dzr*dzr
						if r2 >= rc2 || r2 == 0 {
							continue
						}
						pairs++
						inv2 := 1.0 / r2
						sr6 := inv2 * inv2 * inv2
						// F = 24 eps (2 sr12 - sr6) / r^2 * dr
						fmag := 24 * (2*sr6*sr6 - sr6) * inv2
						e := 4*(sr6*sr6-sr6) - eCut
						s.frc[i][0] += fmag * dxr
						s.frc[i][1] += fmag * dyr
						s.frc[i][2] += fmag * dzr
						if j < s.n {
							s.frc[j][0] -= fmag * dxr
							s.frc[j][1] -= fmag * dyr
							s.frc[j][2] -= fmag * dzr
							s.energyPot += e
						} else {
							s.energyPot += 0.5 * e
						}
					}
				}
			}
		}
	}
	s.flop(float64(pairs) * s.prm.CyclesPerPair)
}
