// Package md implements the paper's LAMMPS benchmark (Section 4.4,
// Figure 8): Lennard-Jones molecular dynamics with a 3-D spatial
// decomposition. Each rank owns a box of the periodic domain; every
// timestep it exchanges ghost atoms with its neighbors (the x/y/z
// three-sweep that covers all 26 directions), computes short-range LJ
// forces with cell lists, integrates with velocity Verlet, and migrates
// atoms that left its box. Strong scaling shrinks atoms-per-core, so
// the per-step neighbor exchange latency dominates — exactly the regime
// where the paper's lightweight MPI pays off.
package md

import (
	"fmt"
	"math"

	"gompi"
)

// Params describes one simulation.
type Params struct {
	// AtomsPerCore targets the per-rank atom count (the Figure 8
	// x-axis labels: 368, 184, 90, 45, 23).
	AtomsPerCore int
	// RankGrid is the 3-D process grid.
	RankGrid [3]int
	// Steps is the number of timesteps.
	Steps int
	// Density is the reduced number density (LJ melt: 0.8442).
	Density float64
	// Cutoff is the LJ cutoff radius (2.5 sigma).
	Cutoff float64
	// Dt is the timestep (0.005 tau).
	Dt float64
	// Temp is the initial reduced temperature (1.44, the melt).
	Temp float64
	// Seed makes velocity initialization deterministic.
	Seed int64
	// CyclesPerPair / CyclesPerAtom model the compute cost charged to
	// the virtual clock.
	CyclesPerPair float64
	CyclesPerAtom float64
}

// Defaults fills the standard LJ-melt parameters for anything unset.
func (p *Params) Defaults() {
	if p.Density == 0 {
		p.Density = 0.8442
	}
	if p.Cutoff == 0 {
		p.Cutoff = 2.5
	}
	if p.Dt == 0 {
		p.Dt = 0.005
	}
	if p.Temp == 0 {
		p.Temp = 1.44
	}
	if p.CyclesPerPair == 0 {
		p.CyclesPerPair = 45
	}
	if p.CyclesPerAtom == 0 {
		p.CyclesPerAtom = 25
	}
	if p.Seed == 0 {
		p.Seed = 12345
	}
}

// Validate checks the parameters against a world size.
func (p *Params) Validate(worldSize int) error {
	if p.RankGrid[0]*p.RankGrid[1]*p.RankGrid[2] != worldSize {
		return fmt.Errorf("md: rank grid %v != world %d", p.RankGrid, worldSize)
	}
	if p.AtomsPerCore < 1 || p.Steps < 1 {
		return fmt.Errorf("md: atoms/core %d, steps %d", p.AtomsPerCore, p.Steps)
	}
	// Each rank's box must cover the cutoff for one-deep ghost
	// exchange.
	side := math.Cbrt(float64(p.AtomsPerCore) / p.Density)
	if side < p.Cutoff {
		return fmt.Errorf("md: rank box side %.2f < cutoff %.2f (too few atoms/core)", side, p.Cutoff)
	}
	return nil
}

// Result reports one run.
type Result struct {
	AtomsTotal    int
	AtomsPerCore  float64
	Steps         int
	Seconds       float64 // max virtual seconds across ranks
	StepsPerSec   float64 // Figure 8 y-axis
	Energy        float64 // final total energy per atom (KE+PE)
	InitialEnergy float64
	Momentum      float64 // |total momentum| (must stay ~0)
	CommFrac      float64
}

// Run executes the simulation (collective over the world communicator).
func Run(p *gompi.Proc, prm Params) (Result, error) {
	prm.Defaults()
	if err := prm.Validate(p.Size()); err != nil {
		return Result{}, err
	}
	s := newSim(p, &prm)
	if side := s.hi[0] - s.lo[0]; side < prm.Cutoff {
		return Result{}, fmt.Errorf("md: snapped rank box side %.2f < cutoff %.2f", side, prm.Cutoff)
	}
	s.buildLattice()
	s.initVelocities()

	if err := s.w.Barrier(); err != nil {
		return Result{}, err
	}
	// Initial ghosts and forces.
	if err := s.exchangeGhosts(); err != nil {
		return Result{}, err
	}
	s.computeForces()
	e0, err := s.totalEnergyPerAtom()
	if err != nil {
		return Result{}, err
	}

	if err := s.w.Barrier(); err != nil {
		return Result{}, err
	}
	startCycles := p.VirtualCycles()
	startCounters := p.Counters()

	for step := 0; step < prm.Steps; step++ {
		s.integrateHalf() // v += dt/2 f; x += dt v
		if err := s.migrate(); err != nil {
			return Result{}, err
		}
		if err := s.exchangeGhosts(); err != nil {
			return Result{}, err
		}
		s.computeForces()
		s.integrateFinal() // v += dt/2 f
	}
	s.flushFlops()
	elapsed := float64(p.VirtualCycles() - startCycles)
	dc := p.Counters().Sub(startCounters)

	e1, err := s.totalEnergyPerAtom()
	if err != nil {
		return Result{}, err
	}
	mom, err := s.totalMomentum()
	if err != nil {
		return Result{}, err
	}
	total, err := s.globalAtomCount()
	if err != nil {
		return Result{}, err
	}

	maxed, err := s.w.AllreduceFloat64([]float64{elapsed}, gompi.OpMax)
	if err != nil {
		return Result{}, err
	}
	seconds := maxed[0] / p.ClockHz()

	res := Result{
		AtomsTotal:    total,
		AtomsPerCore:  float64(total) / float64(p.Size()),
		Steps:         prm.Steps,
		Seconds:       seconds,
		Energy:        e1,
		InitialEnergy: e0,
		Momentum:      mom,
	}
	if seconds > 0 {
		res.StepsPerSec = float64(prm.Steps) / seconds
	}
	if elapsed > 0 {
		// Everything that is not modeled compute — software paths,
		// injection, and wire/wait time — is communication overhead.
		res.CommFrac = (elapsed - float64(dc.Compute)) / elapsed
	}
	return res, nil
}
