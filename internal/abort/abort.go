// Package abort provides the world-teardown signal shared by every
// blocking layer: when one rank fails, the runtime raises the flag and
// wakes all sleepers, whose blocking waits then panic with
// ErrWorldAborted instead of hanging forever. The rank runtime converts
// those panics into per-rank errors, so the original failure surfaces.
package abort

import (
	"errors"
	"sync"
	"sync/atomic"
)

// ErrWorldAborted is the panic value blocking operations raise during
// teardown.
var ErrWorldAborted = errors.New("world aborted: another rank failed")

// Flag is the teardown signal. The zero value is ready to use.
type Flag struct {
	set atomic.Bool
}

// Raise sets the flag.
func (f *Flag) Raise() { f.set.Store(true) }

// Raised reports whether the flag is set.
func (f *Flag) Raised() bool { return f.set.Load() }

// Check panics with ErrWorldAborted if the flag is set.
func (f *Flag) Check() {
	if f.set.Load() {
		panic(ErrWorldAborted)
	}
}

// CheckLocked is Check for callers holding mu, which must be released
// before the panic propagates.
func (f *Flag) CheckLocked(mu *sync.Mutex) {
	if f.set.Load() {
		mu.Unlock()
		panic(ErrWorldAborted)
	}
}
