package abort

import (
	"errors"
	"sync"
	"testing"
)

func TestFlagLifecycle(t *testing.T) {
	var f Flag
	if f.Raised() {
		t.Fatal("zero flag raised")
	}
	f.Check() // must not panic
	f.Raise()
	if !f.Raised() {
		t.Fatal("raise lost")
	}
	defer func() {
		r := recover()
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrWorldAborted) {
			t.Fatalf("Check panicked with %v", r)
		}
	}()
	f.Check()
	t.Fatal("Check did not panic after Raise")
}

func TestCheckLockedReleasesMutex(t *testing.T) {
	var f Flag
	var mu sync.Mutex
	f.Raise()
	mu.Lock()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("CheckLocked did not panic")
			}
		}()
		f.CheckLocked(&mu)
	}()
	// The mutex must have been released before the panic.
	if !mu.TryLock() {
		t.Fatal("mutex still held after CheckLocked panic")
	}
	mu.Unlock()
}

func TestCheckLockedNoop(t *testing.T) {
	var f Flag
	var mu sync.Mutex
	mu.Lock()
	f.CheckLocked(&mu) // not raised: must keep the lock
	if mu.TryLock() {
		t.Fatal("CheckLocked released the mutex without panicking")
	}
	mu.Unlock()
}

func TestConcurrentRaise(t *testing.T) {
	var f Flag
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.Raise()
		}()
	}
	wg.Wait()
	if !f.Raised() {
		t.Fatal("concurrent raise lost")
	}
}
