package request

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestImmediateCompletion(t *testing.T) {
	var r Request
	r.MarkComplete(Status{Source: 3, Tag: 7, Count: 16})
	if !r.Done() {
		t.Fatal("completed request not done")
	}
	r.Wait() // must not hang
	if r.Status.Source != 3 || r.Status.Tag != 7 || r.Status.Count != 16 {
		t.Errorf("status = %+v", r.Status)
	}
}

func TestPollDrivenCompletion(t *testing.T) {
	fired := 0
	r := Request{Kind: KindRecv}
	r.Poll = func(r *Request) bool {
		fired++
		if fired < 3 {
			return false
		}
		r.MarkComplete(Status{Count: 1})
		return true
	}
	if r.Done() || r.Done() {
		t.Fatal("request completed early")
	}
	if !r.Done() {
		t.Fatal("request did not complete on third poll")
	}
	if !r.Done() { // must stay complete without re-polling
		t.Fatal("completion not sticky")
	}
	if fired != 3 {
		t.Errorf("poll fired %d times, want 3", fired)
	}
}

func TestBlockDrivenCompletion(t *testing.T) {
	blocked := false
	r := Request{Kind: KindSend}
	r.Block = func(r *Request) {
		blocked = true
		r.MarkComplete(Status{})
	}
	r.Wait()
	if !blocked || !r.Done() {
		t.Fatal("Wait did not run Block")
	}
	blocked = false
	r.Wait() // second wait must not block again
	if blocked {
		t.Fatal("Wait re-ran Block on a complete request")
	}
}

func TestPoolRecycling(t *testing.T) {
	var p Pool
	r1 := p.Get(KindSend)
	r1.MarkComplete(Status{Count: 99})
	r1.Free()
	if p.Len() != 1 {
		t.Fatalf("pool len = %d, want 1", p.Len())
	}
	r2 := p.Get(KindRecv)
	if r2 != r1 {
		t.Error("pool did not recycle the freed request")
	}
	if r2.Done() || r2.Status.Count != 0 || r2.Kind != KindRecv {
		t.Error("recycled request not zeroed")
	}
}

func TestPoolGrowth(t *testing.T) {
	var p Pool
	rs := make([]*Request, 10)
	for i := range rs {
		rs[i] = p.Get(KindSend)
	}
	for _, r := range rs {
		r.Free()
	}
	if p.Len() != 10 {
		t.Fatalf("pool len = %d, want 10", p.Len())
	}
}

func TestLockedPoolConcurrent(t *testing.T) {
	var p LockedPool
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r := p.Get(KindSend)
				r.MarkComplete(Status{})
				p.Put(r)
			}
		}()
	}
	wg.Wait()
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Add()
	c.Add()
	if c.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", c.Pending())
	}
	c.Done()
	c.Done()
	if c.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", c.Pending())
	}
}

func TestCounterUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("counter underflow did not panic")
		}
	}()
	var c Counter
	c.Done()
}

// Property: pool Get/Free conserves requests — after n gets and n
// frees, pool depth grows by exactly the number of distinct requests
// freed.
func TestPoolConservation(t *testing.T) {
	f := func(n uint8) bool {
		var p Pool
		k := int(n % 50)
		rs := make([]*Request, k)
		for i := range rs {
			rs[i] = p.Get(KindSend)
		}
		if p.Len() != 0 {
			return false
		}
		for _, r := range rs {
			r.Free()
		}
		return p.Len() == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: counter pending equals adds minus dones for any valid
// prefix sequence.
func TestCounterBalance(t *testing.T) {
	f := func(ops []bool) bool {
		var c Counter
		var bal int64
		for _, add := range ops {
			if add {
				c.Add()
				bal++
			} else if bal > 0 {
				c.Done()
				bal--
			}
			if c.Pending() != bal {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
