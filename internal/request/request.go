// Package request implements MPI request objects and their allocation
// strategies. The paper's Section 3.5 identifies per-operation request
// management as a mandatory overhead of MPI-3.1 point-to-point
// semantics; this package provides both the request machinery (with a
// per-rank freelist for the lightweight device and a globally locked
// pool reproducing the baseline CH3 cost structure) and the counter
// completion model of the proposed MPI_ISEND_NOREQ / MPI_COMM_WAITALL
// extension.
package request

import (
	"sync"

	"gompi/internal/metrics"
)

// Kind says what operation a request tracks.
type Kind uint8

// Request kinds.
const (
	KindSend Kind = iota
	KindRecv
	KindRMA
	KindColl
)

// Status is the MPI_Status equivalent delivered at completion.
type Status struct {
	Source    int
	Tag       int
	Count     int // received bytes
	Cancelled bool
	Truncated bool // receive buffer was too small (MPI_ERR_TRUNCATE)
}

// Request tracks one outstanding operation. A request is owned by the
// rank that created it; the transport signals completion through the
// Poll/Block hooks installed by the device.
type Request struct {
	Kind     Kind
	Status   Status
	complete bool

	// Issued is the owning rank's virtual clock when the operation was
	// issued. The device stamps it at Isend/Irecv time and observes the
	// issue→completion latency into the rank's registry when the request
	// finishes. Zero when the device does not track request lifetime.
	Issued int64

	// Poll returns true once the underlying transport operation has
	// finished, filling Status via Finish. Nil for operations that
	// completed immediately.
	Poll func(r *Request) bool
	// Block waits for the underlying operation to finish. Nil for
	// immediately complete operations.
	Block func(r *Request)

	pool *Pool
}

// MarkComplete finalizes the request with the given status.
func (r *Request) MarkComplete(st Status) {
	r.Status = st
	r.complete = true
}

// Done polls the request.
func (r *Request) Done() bool {
	if r.complete {
		return true
	}
	if r.Poll != nil && r.Poll(r) {
		r.complete = true
		return true
	}
	return false
}

// Wait blocks until the request completes.
func (r *Request) Wait() {
	if r.complete {
		return
	}
	if r.Block != nil {
		r.Block(r)
	}
	r.complete = true
}

// Free recycles the request into its pool, if pooled. The request must
// not be used afterward.
func (r *Request) Free() {
	if r.pool != nil {
		r.pool.put(r)
	}
}

// Pool is a per-rank request freelist. A short mutex guards the
// freelist itself (under MPI_THREAD_MULTIPLE several goroutines of one
// rank allocate and free concurrently); the requests handed out are
// still owned by single goroutines. The zero value is ready to use.
type Pool struct {
	mu   sync.Mutex
	free []*Request

	// Metrics, when set, counts gets and freelist reuses (the
	// request-recycling rate the paper's Section 3.5 is about).
	Metrics *metrics.Rank
}

// Get returns a zeroed request.
func (p *Pool) Get(kind Kind) *Request {
	var r *Request
	p.mu.Lock()
	reused := false
	if n := len(p.free); n > 0 {
		reused = true
		r = p.free[n-1]
		p.free = p.free[:n-1]
		*r = Request{}
	} else {
		r = &Request{}
	}
	p.mu.Unlock()
	if p.Metrics != nil {
		p.Metrics.NoteReqAlloc(reused)
	}
	r.Kind = kind
	r.pool = p
	return r
}

func (p *Pool) put(r *Request) {
	r.Poll, r.Block = nil, nil
	p.mu.Lock()
	p.free = append(p.free, r)
	p.mu.Unlock()
}

// Len reports the freelist depth (tests).
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// LockedPool is the baseline device's globally locked request pool: the
// CH3-era structure whose atomics show up in the paper's MPI_PUT
// instruction count.
type LockedPool struct {
	mu   sync.Mutex
	pool Pool
}

// Get allocates under the global lock.
func (p *LockedPool) Get(kind Kind) *Request { return p.GetFor(kind, nil) }

// GetFor allocates under the global lock, attributing the get to m
// (the pool is shared across ranks, so per-rank attribution must come
// from the caller).
func (p *LockedPool) GetFor(kind Kind, m *metrics.Rank) *Request {
	p.mu.Lock()
	reused := len(p.pool.free) > 0
	r := p.pool.Get(kind)
	r.pool = nil // locked pool recycles via its own Put
	p.mu.Unlock()
	if m != nil {
		m.NoteReqAlloc(reused)
	}
	return r
}

// Put recycles under the global lock.
func (p *LockedPool) Put(r *Request) {
	p.mu.Lock()
	p.pool.put(r)
	p.mu.Unlock()
}

// Counter implements the bulk-completion model of Section 3.5: issued
// operations increment it, completions decrement it, and
// MPI_COMM_WAITALL waits for zero — roughly three instructions per
// operation instead of a request object. One Counter lives on each
// communicator, owned by the rank.
type Counter struct {
	pending int64
}

// Add notes an issued requestless operation that has not completed.
func (c *Counter) Add() { c.pending++ }

// Done notes a completion.
func (c *Counter) Done() {
	if c.pending == 0 {
		panic("request: counter completion underflow")
	}
	c.pending--
}

// Pending returns the number of incomplete requestless operations.
func (c *Counter) Pending() int64 { return c.pending }
