package original

import (
	"gompi/internal/comm"
	"gompi/internal/core"
	"gompi/internal/datatype"
	"gompi/internal/flight"
	"gompi/internal/instr"
	"gompi/internal/match"
	"gompi/internal/request"
	"gompi/internal/vtime"
)

// Redundant-runtime-check base charges (same generic work as ch4's MPI
// layer, plus the generic packet handling unique to this device).
const (
	costRedundantMarshal  = 16
	costRedundantReload   = 8
	costRedundantDatatype = 14
	costRedundantBufAddr  = 9
	costRedundantComplete = 12
)

// Isend lowers the send to a generic eager packet: marshal an envelope,
// push it through the layered send machinery, match in software at the
// target. Extension flags are honored semantically (so the public API
// behaves identically on both devices) but buy no instruction savings
// here — the baseline predates the proposals.
func (d *Device) Isend(buf []byte, count int, dt *datatype.Type, dest, tag int,
	c *comm.Comm, flags core.OpFlags) (*request.Request, error) {

	d.lock()
	defer d.unlock()
	d.chargeDispatch(costDispatchLayers)
	d.charge(instr.Mandatory, costProcNull)
	if dest == core.ProcNull {
		return d.finishSend(flags, c), nil
	}
	d.charge(instr.Mandatory, costCommDeref)

	var world int
	if flags.Has(core.FlagGlobalRank) {
		world = dest
		d.charge(instr.Mandatory, costRankXlate) // baseline translates anyway
	} else {
		var err error
		world, err = d.translateRank(c, dest)
		if err != nil {
			return nil, err
		}
	}

	d.chargeRedundant(costRedundantMarshal + costRedundantReload +
		costRedundantBufAddr + costPacketGeneric)
	d.chargeRedundantType(dt, costRedundantDatatype)
	data, err := d.sendBytes(buf, count, dt)
	if err != nil {
		return nil, err
	}

	d.charge(instr.Mandatory, costMatchBits)
	bits := match.MakeBits(c.Ctx, c.MyRank, tag)
	if flags.Has(core.FlagNoMatch) {
		// Semantically honored: zero source/tag so arrival-order
		// receives match. No charge savings on this device.
		bits = match.MakeBits(c.Ctx, 0, 0)
	}

	// Envelope marshal + protocol branch + layered issue.
	d.charge(instr.Mandatory, costHeaderBuild+costProtoBranch)
	// Every send is a generic eager packet over the netmod on this
	// device (no locality split, no rendezvous): count the MPI payload
	// on the netmod path; the fabric counts the AM packet itself.
	mm := d.rank.Metrics()
	mm.NetSend.Note(len(data))
	mm.Eager.Note(len(data))
	env := envelope{bits: bits, size: uint32(len(data))}
	d.ep.AMSend(world, amEager, env.marshal(), data)

	d.chargeRedundant(costRedundantComplete)
	return d.finishSend(flags, c), nil
}

// sendBytes mirrors the ch4 resolution but always via the generic
// segment path (no zero-copy view): CH3 runs every buffer through its
// segment machinery.
func (d *Device) sendBytes(buf []byte, count int, dt *datatype.Type) ([]byte, error) {
	if view, ok := datatype.ContigView(dt, count, buf); ok {
		return view, nil
	}
	packed := make([]byte, datatype.PackedSize(dt, count))
	n, err := datatype.Pack(dt, count, buf, packed)
	if err != nil {
		return nil, err
	}
	d.charge(instr.Mandatory, int64(10+n/2))
	return packed, nil
}

// finishSend allocates the completion vehicle: a request from the
// globally locked pool, or the counter under FlagNoReq.
func (d *Device) finishSend(flags core.OpFlags, c *comm.Comm) *request.Request {
	if flags.Has(core.FlagNoReq) {
		c.NoReq.Add()
		c.NoReq.Done()
		d.charge(instr.Mandatory, 3)
		return nil
	}
	d.charge(instr.Mandatory, costLockedReqPool)
	r := d.g.pool.GetFor(request.KindSend, d.rank.Metrics())
	r.MarkComplete(request.Status{})
	return r
}

// IsendAllOpts exists for ADI parity; the baseline has no minimized
// path, so it runs the ordinary send with the flags' semantics.
func (d *Device) IsendAllOpts(buf []byte, worldDest int, c *comm.Comm) error {
	_, err := d.Isend(buf, len(buf), datatype.Byte, worldDest, 0, c, core.FlagAllOpts)
	return err
}

// handleEager is the target-side packet handler: software matching at
// the MPI layer, charged per queue element inspected.
func (d *Device) handleEager(src int, hdr, payload []byte, arrival vtime.Time) {
	env := unmarshalEnvelope(hdr)
	d.charge(instr.Mandatory, costPacketGeneric)

	// CH3 copies eager payloads aside before matching, so the cookie
	// carries the buffered copy whether or not a receive is posted.
	cp := append([]byte(nil), payload...)
	mm := d.rank.Metrics()
	mm.NetRecv.Note(len(payload))
	before := d.eng.Searches
	entry, ok := d.eng.Arrive(env.bits, &unexpected{data: cp, src: src, arrival: arrival})
	d.charge(instr.Mandatory, costMatchSearch*(d.eng.Searches-before))
	if !ok {
		mm.MaxUnexpected(d.eng.UnexpectedLen())
		mm.Flight.Record(flight.Unexpected, int64(arrival), src, len(payload), 0)
		return // queued as unexpected
	}
	rs := entry.Cookie.(*recvState)
	// Post→match span, with zero unexpected residency (pre-posted), so
	// both distributions stay message-count symmetric.
	pm := int64(arrival - rs.posted)
	if pm < 0 {
		pm = 0
	}
	mm.Lat.PostMatch.Observe(pm)
	mm.Lat.UnexRes.Observe(0)
	mm.Flight.Record(flight.Deposit, int64(arrival), src, len(payload), 0)
	d.completeRecv(rs, env.bits, cp, src, arrival)
}

// completeRecv copies the payload into the posted buffer and fills
// status. The arrival time is folded into the receiver's clock when
// the receive completion is observed (finish), not here.
func (d *Device) completeRecv(rs *recvState, bits match.Bits, payload []byte, src int, arrival vtime.Time) {
	d.charge(instr.Mandatory, costMatchComplete)
	n := copy(rs.buf, payload)
	rs.n = n
	rs.truncated = n < len(payload)
	rs.src = bits.Source()
	rs.tag = bits.Tag()
	rs.arrival = arrival
	rs.done = true
}

// Irecv posts a receive into the software matching engine.
func (d *Device) Irecv(buf []byte, count int, dt *datatype.Type, src, tag int,
	c *comm.Comm, flags core.OpFlags) (*request.Request, error) {

	d.lock()
	defer d.unlock()
	d.chargeDispatch(costDispatchLayers)
	d.charge(instr.Mandatory, costProcNull)
	if src == core.ProcNull {
		r := d.g.pool.GetFor(request.KindRecv, d.rank.Metrics())
		r.MarkComplete(request.Status{Source: core.ProcNull, Tag: core.AnyTag})
		return r, nil
	}
	d.charge(instr.Mandatory, costCommDeref+costMatchBits)

	var bits, mask match.Bits
	if flags.Has(core.FlagNoMatch) {
		bits = match.MakeBits(c.Ctx, 0, 0)
		mask = match.NoMatchMask
	} else {
		anySrc := src == core.AnySource
		anyTag := tag == core.AnyTag
		s, tg := src, tag
		if anySrc {
			s = 0
		}
		if anyTag {
			tg = 0
		}
		bits = match.MakeBits(c.Ctx, s, tg)
		mask = match.RecvMask(anySrc, anyTag)
	}

	d.chargeRedundant(costRedundantMarshal + costRedundantReload +
		costRedundantBufAddr + costPacketGeneric)
	d.chargeRedundantType(dt, costRedundantDatatype)

	rs := &recvState{posted: d.rank.Now()}
	var bounce []byte
	if view, ok := datatype.ContigView(dt, count, buf); ok {
		rs.buf = view
	} else {
		bounce = make([]byte, datatype.PackedSize(dt, count))
		rs.buf = bounce
	}

	// Progress first so pending packets are matched in software before
	// the posted queue grows (CH3 polls on entry).
	d.progressLocked()
	d.charge(instr.Mandatory, costLockedReqPool)
	before := d.eng.Searches
	entry, ok := d.eng.PostRecv(bits, mask, rs)
	d.charge(instr.Mandatory, costMatchSearch*(d.eng.Searches-before))
	mm := d.rank.Metrics()
	if ok {
		u := entry.Cookie.(*unexpected)
		// Unexpected-queue residency, with zero post→match (the message
		// was already here when the receive arrived).
		res := int64(d.rank.Now() - u.arrival)
		if res < 0 {
			res = 0
		}
		mm.Lat.UnexRes.Observe(res)
		mm.Lat.PostMatch.Observe(0)
		mm.Flight.Record(flight.UnexHit, int64(d.rank.Now()), u.src, len(u.data), 0)
		d.completeRecv(rs, entry.Bits, u.data, u.src, u.arrival)
	} else {
		mm.MaxPosted(d.eng.PostedLen())
		mm.Flight.Record(flight.PostRecv, int64(d.rank.Now()), bits.Source(), 0, 0)
	}

	r := d.g.pool.GetFor(request.KindRecv, d.rank.Metrics())
	r.Issued = int64(d.rank.Now())
	finish := func(r *request.Request) {
		// Wait park time: how far ahead of this rank's clock the matched
		// packet arrived (zero when the rank got there after it).
		if park := int64(rs.arrival - d.rank.Now()); park > 0 {
			mm.Lat.WaitPark.Observe(park)
		} else if rs.done {
			mm.Lat.WaitPark.Observe(0)
		}
		d.rank.Sync(rs.arrival)
		if bounce != nil {
			if _, err := datatype.Unpack(dt, count, bounce[:rs.n], buf); err != nil {
				rs.truncated = true
			}
		}
		mm.Lat.ReqLife.Observe(int64(d.rank.Now()) - r.Issued)
		mm.Flight.Record(flight.RecvDone, int64(d.rank.Now()), rs.src, rs.n, 0)
		r.MarkComplete(request.Status{Source: rs.src, Tag: rs.tag, Count: rs.n, Truncated: rs.truncated})
	}
	r.Poll = func(r *request.Request) bool {
		d.lock()
		defer d.unlock()
		d.progressLocked()
		if !rs.done {
			return false
		}
		finish(r)
		return true
	}
	r.Block = func(r *request.Request) {
		d.lock()
		defer d.unlock()
		d.waitUntil(func() bool { return rs.done })
		finish(r)
	}
	return r, nil
}

// Iprobe checks the unexpected queue under software matching.
func (d *Device) Iprobe(src, tag int, c *comm.Comm) (request.Status, bool, error) {
	d.lock()
	defer d.unlock()
	d.progressLocked()
	anySrc := src == core.AnySource
	anyTag := tag == core.AnyTag
	s, tg := src, tag
	if anySrc {
		s = 0
	}
	if anyTag {
		tg = 0
	}
	before := d.eng.Searches
	entry, ok := d.eng.Probe(match.MakeBits(c.Ctx, s, tg), match.RecvMask(anySrc, anyTag))
	d.charge(instr.Mandatory, costMatchSearch*(d.eng.Searches-before))
	if !ok {
		return request.Status{}, false, nil
	}
	u := entry.Cookie.(*unexpected)
	return request.Status{Source: entry.Bits.Source(), Tag: entry.Bits.Tag(), Count: len(u.data)}, true, nil
}

// Improbe extracts a matchable message from the software matching
// engine (MPI_IMPROBE).
func (d *Device) Improbe(src, tag int, c *comm.Comm) ([]byte, request.Status, vtime.Time, bool, error) {
	d.lock()
	defer d.unlock()
	d.progressLocked()
	anySrc := src == core.AnySource
	anyTag := tag == core.AnyTag
	s, tg := src, tag
	if anySrc {
		s = 0
	}
	if anyTag {
		tg = 0
	}
	before := d.eng.Searches
	entry, ok := d.eng.ExtractUnexpected(match.MakeBits(c.Ctx, s, tg), match.RecvMask(anySrc, anyTag))
	d.charge(instr.Mandatory, costMatchSearch*(d.eng.Searches-before))
	if !ok {
		return nil, request.Status{}, 0, false, nil
	}
	u := entry.Cookie.(*unexpected)
	st := request.Status{Source: entry.Bits.Source(), Tag: entry.Bits.Tag(), Count: len(u.data)}
	return u.data, st, u.arrival, true, nil
}

// CommWaitall completes requestless operations.
func (d *Device) CommWaitall(c *comm.Comm) error {
	d.lock()
	defer d.unlock()
	if c.NoReq.Pending() == 0 {
		return nil
	}
	d.waitUntil(func() bool { return c.NoReq.Pending() == 0 })
	return nil
}
