package original

import (
	"encoding/binary"

	"gompi/internal/coll"
	"gompi/internal/comm"
	"gompi/internal/core"
	"gompi/internal/datatype"
	"gompi/internal/flight"
	"gompi/internal/instr"
	"gompi/internal/request"
	"gompi/internal/rma"
	"gompi/internal/vtime"
)

// winState is the target-side window record the packet handlers write
// into.
type winState struct {
	win *rma.Win
	mem []byte
}

// rmaOp is one queued RMA operation: CH3 queues operations on the
// window and issues them at synchronization; we queue then issue
// immediately, keeping the allocation/queue costs while staying
// synchronous.
type rmaOp struct {
	kind    uint8
	target  int
	payload []byte
	hdr     []byte
}

// WinCreate collectively creates a window. Window ids are agreed via
// the registry exchange; every rank installs the target-side record
// before any RMA packet can arrive (the trailing exchange is the
// barrier).
func (d *Device) WinCreate(mem []byte, dispUnit int, c *comm.Comm) (*rma.Win, error) {
	return d.winCreate(mem, dispUnit, c, false)
}

// WinCreateDynamic creates a window with no initial memory. The
// baseline device does not implement dynamic windows (CH3-era MPICH
// gated them behind the same packet path); windows must be created
// with memory.
func (d *Device) WinCreateDynamic(c *comm.Comm) (*rma.Win, error) {
	return nil, errf("dynamic windows not supported by the baseline device")
}

func (d *Device) winCreate(mem []byte, dispUnit int, c *comm.Comm, dynamic bool) (*rma.Win, error) {
	if dispUnit <= 0 {
		return nil, errString("win_create", rma.ErrBadWinArg)
	}
	// Agree on a window id: every rank computes it from the same
	// exchange (rank 0's proposal).
	vals := c.Exchange(winInfoOriginal{size: len(mem), dispUnit: dispUnit})
	var sh *rma.Shared
	var id int
	if c.MyRank == 0 {
		sh = rma.NewShared(c.Size(), dynamic)
		for r, v := range vals {
			wi := v.(winInfoOriginal)
			sh.Sizes[r], sh.DispUnits[r] = wi.size, wi.dispUnit
		}
		id = d.g.nextWinID()
	}
	vals = c.Exchange(sharedAndID{sh, id})
	si := vals[0].(sharedAndID)
	sh, id = si.sh, si.id
	for r := range sh.Keys {
		sh.Keys[r] = id // one id addresses the window on every rank
	}

	w := rma.NewWin(c, mem, dispUnit, id, sh)
	d.lock()
	d.wins[id] = &winState{win: w, mem: mem}
	d.unlock()
	// Final rendezvous: no RMA packet may arrive before every rank has
	// installed its record.
	c.Exchange(nil)
	return w, nil
}

type winInfoOriginal struct{ size, dispUnit int }

type sharedAndID struct {
	sh *rma.Shared
	id int
}

// nextWinID allocates window ids under the global pool's lock.
func (g *Global) nextWinID() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.winSeq++
	return g.winSeq
}

// WinFree collectively releases the window. The critical section is
// dropped across the closing exchange (a cross-rank rendezvous must
// not hold a per-rank lock); the record is deleted only after it, so
// straggler packets from slower ranks still find the window.
func (d *Device) WinFree(w *rma.Win) error {
	d.lock()
	d.flushAM()
	d.unlock()
	w.Comm.Exchange(nil)
	d.lock()
	delete(d.wins, w.MyKey)
	d.unlock()
	return nil
}

// rmaHeader marshals the generic RMA packet header: window id, offset,
// length, op code, element code.
func rmaHeader(id, off, n int, op coll.Op, elem int, seq uint32) []byte {
	b := make([]byte, 24)
	binary.LittleEndian.PutUint32(b, uint32(id))
	binary.LittleEndian.PutUint32(b[4:], uint32(off))
	binary.LittleEndian.PutUint32(b[8:], uint32(n))
	binary.LittleEndian.PutUint32(b[12:], uint32(op))
	binary.LittleEndian.PutUint32(b[16:], uint32(elem))
	binary.LittleEndian.PutUint32(b[20:], seq)
	return b
}

func parseRMAHeader(b []byte) (id, off, n int, op coll.Op, elem int, seq uint32) {
	return int(binary.LittleEndian.Uint32(b)),
		int(binary.LittleEndian.Uint32(b[4:])),
		int(binary.LittleEndian.Uint32(b[8:])),
		coll.Op(binary.LittleEndian.Uint32(b[12:])),
		int(binary.LittleEndian.Uint32(b[16:])),
		binary.LittleEndian.Uint32(b[20:])
}

// chargePutPath charges the full CH3 one-sided origin path. The
// component totals (see device.go) plus validation and layering make
// the default MPI_PUT land at ~1,342 instructions.
func (d *Device) chargePutPath(dt *datatype.Type) {
	d.chargeDispatch(costDispatchLayersRMA)
	d.chargeRedundant(costRedundantMarshal + costRedundantReload +
		costRedundantBufAddr + costPacketGenericRMA + 15 /* op-union genericity */)
	d.chargeRedundantType(dt, costRedundantDatatype)
	d.charge(instr.Mandatory, costProcNull)
	d.charge(instr.Mandatory, costWinDerefEpoch)
	d.charge(instr.Mandatory, costRMAOpAlloc+costRMAOpQueue)
	d.charge(instr.Mandatory, costRMASegment)
	d.charge(instr.Mandatory, costRMAHeaders)
	d.charge(instr.Mandatory, costRMASendPath)
	d.charge(instr.Mandatory, costRMARequest)
	d.charge(instr.Mandatory, costRMAEpochState)
	d.charge(instr.Mandatory, costRMAAck)
}

// resolve translates (target, disp) to (world, offset), always paying
// the full translation (no virtual-address fast path here).
func (d *Device) resolve(target, disp, nbytes int, w *rma.Win) (world, off int, err error) {
	world, err = d.translateRank(w.Comm, target)
	if err != nil {
		return 0, 0, err
	}
	d.charge(instr.Mandatory, 4) // base + displacement-unit scaling
	off, err = w.TargetOffset(target, disp, nbytes)
	if err != nil {
		return 0, 0, err
	}
	return world, off, nil
}

// Put emulates the one-sided put two-sided: queue an op, marshal the
// generic headers, ship it through the packet machinery, and track the
// acknowledgement.
func (d *Device) Put(origin []byte, count int, dt *datatype.Type, target, disp int,
	w *rma.Win, flags core.OpFlags) error {

	d.lock()
	defer d.unlock()
	d.rank.Metrics().NoteRmaPut()
	d.chargePutPath(dt)
	if target == core.ProcNull {
		return nil
	}
	data, err := d.sendBytes(origin, count, dt)
	if err != nil {
		return err
	}
	world, off, err := d.resolve(target, disp, len(data), w)
	if err != nil {
		return errString("put", err)
	}
	// Queue then immediately issue (cost structure of the deferred
	// CH3 op list, synchronous semantics). The header carries the
	// flattened target layout so derived types scatter at the target.
	hdr := append(rmaHeader(w.Shared.Keys[target], off, len(data), 0, 0, 0), encodeLayout(dt, count)...)
	d.issue(&rmaOp{kind: amPut, target: world, hdr: hdr, payload: data})
	return nil
}

// encodeLayout flattens (count, extent, segments); zero segments means
// a contiguous blob.
func encodeLayout(dt *datatype.Type, count int) []byte {
	if dt.Contig() {
		return binary.LittleEndian.AppendUint32(nil, 0)
	}
	segs := dt.Segments()
	b := binary.LittleEndian.AppendUint32(nil, uint32(len(segs)))
	b = binary.LittleEndian.AppendUint32(b, uint32(count))
	b = binary.LittleEndian.AppendUint32(b, uint32(dt.Extent()))
	for _, s := range segs {
		b = binary.LittleEndian.AppendUint32(b, uint32(s.Off))
		b = binary.LittleEndian.AppendUint32(b, uint32(s.Len))
	}
	return b
}

// issue ships one queued op and counts the pending ack.
func (d *Device) issue(op *rmaOp) {
	d.amSent++
	d.ep.AMSend(op.target, op.kind, op.hdr, op.payload)
}

// handlePut applies an incoming put packet, scattering derived
// layouts.
func (d *Device) handlePut(src int, hdr, payload []byte, _ vtime.Time) {
	id, off, n, _, _, _ := parseRMAHeader(hdr)
	d.charge(instr.Mandatory, costRMATargetSide)
	ws := d.wins[id]
	if ws == nil {
		panic(errf("put packet for unknown window %d", id))
	}
	layout := hdr[24:]
	u := func(i int) int { return int(binary.LittleEndian.Uint32(layout[4*i:])) }
	nsegs := u(0)
	if nsegs == 0 {
		copy(ws.mem[off:off+n], payload)
	} else {
		count, extent := u(1), u(2)
		p := 0
		for k := 0; k < count; k++ {
			base := off + k*extent
			for i := 0; i < nsegs; i++ {
				so, sl := u(3+2*i), u(4+2*i)
				copy(ws.mem[base+so:base+so+sl], payload[p:p+sl])
				p += sl
			}
		}
	}
	d.ep.AMSend(src, amAck, nil, nil)
}

// Get emulates the one-sided get with a request/response packet pair.
// The target must be inside the progress engine for the response to be
// produced — the CH3 passive-progress problem, faithfully reproduced.
func (d *Device) Get(origin []byte, count int, dt *datatype.Type, target, disp int,
	w *rma.Win, flags core.OpFlags) error {

	d.lock()
	defer d.unlock()
	d.rank.Metrics().NoteRmaGet()
	d.chargePutPath(dt)
	if target == core.ProcNull {
		return nil
	}
	nbytes := datatype.PackedSize(dt, count)
	world, off, err := d.resolve(target, disp, nbytes, w)
	if err != nil {
		return errString("get", err)
	}
	d.getSeq++
	seq := d.getSeq
	gs := &getState{buf: make([]byte, nbytes)}
	d.getWait[seq] = gs
	d.ep.AMSend(world, amGetReq, rmaHeader(w.Shared.Keys[target], off, nbytes, 0, 0, seq), nil)
	d.waitUntil(func() bool { return gs.done })
	d.rank.Sync(gs.arrival) // the response's round-trip time
	delete(d.getWait, seq)

	if view, ok := datatype.ContigView(dt, count, origin); ok {
		copy(view, gs.buf)
		return nil
	}
	if _, err := datatype.Unpack(dt, count, gs.buf, origin); err != nil {
		return errString("get", err)
	}
	return nil
}

// handleGetReq serves a get request from window memory.
func (d *Device) handleGetReq(src int, hdr, _ []byte, _ vtime.Time) {
	id, off, n, _, _, seq := parseRMAHeader(hdr)
	d.charge(instr.Mandatory, costRMATargetSide)
	ws := d.wins[id]
	if ws == nil {
		panic(errf("get packet for unknown window %d", id))
	}
	d.ep.AMSend(src, amGetResp, rmaHeader(id, 0, n, 0, 0, seq), ws.mem[off:off+n])
}

// handleGetResp completes a pending get.
func (d *Device) handleGetResp(_ int, hdr, payload []byte, arrival vtime.Time) {
	_, _, _, _, _, seq := parseRMAHeader(hdr)
	gs := d.getWait[seq]
	if gs == nil {
		panic(errf("get response for unknown sequence %d", seq))
	}
	copy(gs.buf, payload)
	gs.arrival = arrival
	gs.done = true
}

// Accumulate ships the contribution as an accumulate packet applied by
// the target-side handler.
func (d *Device) Accumulate(origin []byte, count int, dt *datatype.Type, target, disp int,
	op coll.Op, w *rma.Win, flags core.OpFlags) error {

	d.lock()
	defer d.unlock()
	d.rank.Metrics().NoteRmaAcc()
	d.chargePutPath(dt)
	if target == core.ProcNull {
		return nil
	}
	elem := dt.BaseElem()
	if elem == nil {
		return errString("accumulate", coll.ErrBadOp)
	}
	data, err := d.sendBytes(origin, count, dt)
	if err != nil {
		return err
	}
	world, off, err := d.resolve(target, disp, len(data), w)
	if err != nil {
		return errString("accumulate", err)
	}
	ec := elemCode(elem)
	d.issue(&rmaOp{kind: amAcc, target: world,
		hdr:     rmaHeader(w.Shared.Keys[target], off, len(data), op, ec, 0),
		payload: data,
	})
	return nil
}

// GetAccumulate is emulated as a locked get followed by accumulate;
// atomicity comes from the target applying packets serially in its
// progress engine — but only per-packet, so the fetch and the update
// ride one packet: the handler does both.
func (d *Device) GetAccumulate(origin, result []byte, count int, dt *datatype.Type,
	target, disp int, op coll.Op, w *rma.Win, flags core.OpFlags) error {

	if result == nil {
		return errString("get_accumulate", rma.ErrBadWinArg)
	}
	// The emulated path also bumps RmaGets/RmaAccs below: the baseline
	// really does issue a get and an accumulate.
	d.rank.Metrics().NoteRmaGetAcc()
	// Fetch first under the same packet ordering: target applies
	// packets in arrival order, and we are the only origin touching
	// this location under a proper epoch.
	if err := d.Get(result, count, dt, target, disp, w, flags); err != nil {
		return err
	}
	return d.Accumulate(origin, count, dt, target, disp, op, w, flags)
}

// handleAcc applies an accumulate packet.
func (d *Device) handleAcc(src int, hdr, payload []byte, _ vtime.Time) {
	id, off, n, op, ec, _ := parseRMAHeader(hdr)
	d.charge(instr.Mandatory, costRMATargetSide+int64(n))
	ws := d.wins[id]
	if ws == nil {
		panic(errf("accumulate packet for unknown window %d", id))
	}
	elem := elemFromCode(ec)
	if err := coll.Apply(op, elem, ws.mem[off:off+n], payload); err != nil {
		panic(errString("am accumulate", err))
	}
	d.ep.AMSend(src, amAck, nil, nil)
}

// Fence flushes outstanding RMA packets and synchronizes. The critical
// section covers only the flush: the barrier re-enters Isend/Irecv,
// which take it per operation.
func (d *Device) Fence(w *rma.Win) error {
	d.lock()
	d.charge(instr.Mandatory, costRMAEpochState)
	d.flushAM()
	d.unlock()
	d.barrier(w.Comm)
	if err := w.OpenEpoch(rma.EpochFence, -1); err != nil {
		return err
	}
	w.OpenedAt = d.rank.Now()
	return nil
}

// FenceEnd closes the fence epoch sequence (MPI_MODE_NOSUCCEED).
func (d *Device) FenceEnd(w *rma.Win) error {
	d.lock()
	d.charge(instr.Mandatory, costRMAEpochState)
	d.flushAM()
	d.unlock()
	d.barrier(w.Comm)
	if w.InEpoch() {
		if _, err := w.CloseEpoch(); err != nil {
			return err
		}
	}
	return nil
}

// Lock opens a passive-target epoch.
func (d *Device) Lock(w *rma.Win, target int, exclusive bool) error {
	if err := w.OpenEpoch(rma.EpochLock, target); err != nil {
		return err
	}
	d.lock()
	d.charge(instr.Mandatory, costLockProto)
	d.rank.ChargeCycles(instr.Transport, 2*d.g.Fab.Profile().WireLatency)
	d.spinLock(func() bool { return w.Shared.TryAcquireLock(target, exclusive) })
	d.unlock()
	w.OpenedAt = d.rank.Now()
	w.LockExclusive = exclusive
	return nil
}

// Unlock flushes and closes the passive epoch.
func (d *Device) Unlock(w *rma.Win, target int) error {
	if lr := w.LockedRank(); lr != target {
		return errf("locked %d, unlocking %d", lr, target)
	}
	if _, err := w.CloseEpoch(); err != nil {
		return err
	}
	if err := d.Flush(w, target); err != nil {
		return err
	}
	d.charge(instr.Mandatory, costLockProto)
	w.Shared.ReleaseLock(target, w.LockExclusive)
	return nil
}

// Flush waits out all pending acknowledgements.
func (d *Device) Flush(w *rma.Win, target int) error {
	d.lock()
	defer d.unlock()
	d.charge(instr.Mandatory, costFlushProto)
	d.flushAM()
	d.rank.ChargeCycles(instr.Transport, 2*d.g.Fab.Profile().WireLatency)
	d.observeFlush(w, target)
	return nil
}

// observeFlush records the flush into the rank's observability fabric:
// op counter, epoch-open→flush latency histogram (only while the epoch
// is still open — Unlock's trailing flush runs after CloseEpoch and is
// deliberately not observed), and a flight-recorder breadcrumb.
func (d *Device) observeFlush(w *rma.Win, target int) {
	m := d.rank.Metrics()
	m.NoteRmaFlush()
	if w.InEpoch() && w.OpenedAt > 0 {
		m.Lat.EpochFlush.Observe(int64(d.rank.Now() - w.OpenedAt))
	}
	m.Flight.Record(flight.RmaFlush, int64(d.rank.Now()), target, 0, -1)
}

// FlushLocal completes operations locally. CH3 has no cheap
// local-completion path — the acknowledgement machinery is the only
// completion evidence — so the baseline pays the full remote flush.
func (d *Device) FlushLocal(w *rma.Win, target int) error {
	return d.Flush(w, target)
}

// FlushAll flushes every target. The baseline has no windowwide
// completion primitive, so it degenerates into a per-target flush loop:
// O(n) round trips, exactly the scaling the flush-based redesign in the
// ch4 device removes.
func (d *Device) FlushAll(w *rma.Win) error {
	for t := 0; t < w.Comm.Size(); t++ {
		if err := d.Flush(w, t); err != nil {
			return err
		}
	}
	return nil
}

// FlushRequest returns a request tracking remote completion. The
// baseline's flush is inherently blocking (the AM drain happens
// inline), so the request is born complete; only the request-allocation
// cost distinguishes it from Flush.
func (d *Device) FlushRequest(w *rma.Win, target int) (*request.Request, error) {
	if err := d.Flush(w, target); err != nil {
		return nil, err
	}
	r := d.g.pool.GetFor(request.KindRMA, d.rank.Metrics())
	r.Issued = int64(d.rank.Now())
	r.MarkComplete(request.Status{})
	return r, nil
}

// LockAll opens a passive epoch covering every rank. CH3 had no
// lock-all protocol: the baseline takes n individual locks, paying the
// per-target lock round trip each time — the O(n) cost the scalable
// rewrite collapses to one. The epoch state is still the single
// EpochLockAll object so the public API semantics match across devices.
func (d *Device) LockAll(w *rma.Win, exclusive bool) error {
	if err := w.OpenEpoch(rma.EpochLockAll, -1); err != nil {
		return err
	}
	w.OpenedAt = d.rank.Now()
	d.rank.Metrics().NoteRmaLockAll()
	for t := 0; t < w.Comm.Size(); t++ {
		d.lock()
		d.charge(instr.Mandatory, costLockProto)
		d.rank.ChargeCycles(instr.Transport, 2*d.g.Fab.Profile().WireLatency)
		t := t
		d.spinLock(func() bool { return w.Shared.TryAcquireLock(t, exclusive) })
		d.unlock()
	}
	w.LockExclusive = exclusive
	return nil
}

// UnlockAll flushes and releases every target, one at a time.
func (d *Device) UnlockAll(w *rma.Win) error {
	if w.Epoch != rma.EpochLockAll {
		return errString("unlock_all", rma.ErrNoEpoch)
	}
	for t := 0; t < w.Comm.Size(); t++ {
		if err := d.Flush(w, t); err != nil {
			return err
		}
	}
	if _, err := w.CloseEpoch(); err != nil {
		return err
	}
	d.charge(instr.Mandatory, costLockProto)
	for t := w.Comm.Size() - 1; t >= 0; t-- {
		w.Shared.ReleaseLock(t, w.LockExclusive)
	}
	return nil
}

// PutAllOpts is the fused fast-path entry. The baseline has no fast
// path — every put walks the full packet machinery — so the option
// fusion buys nothing here and the call delegates to Put.
func (d *Device) PutAllOpts(origin []byte, worldTarget, disp int, w *rma.Win) error {
	return d.Put(origin, len(origin), datatype.Byte, worldTarget, disp, w, 0)
}

// barrier mirrors the ch4 device-internal dissemination barrier.
const barrierTagBase = 1 << 20

func (d *Device) barrier(c *comm.Comm) {
	cv := c.CollView()
	rank, size := cv.MyRank, cv.Size()
	var token [1]byte
	round := 0
	for dist := 1; dist < size; dist *= 2 {
		to := (rank + dist) % size
		from := (rank - dist + size) % size
		tag := barrierTagBase + round
		if _, err := d.Isend(token[:], 1, datatype.Byte, to, tag, cv, core.FlagNoReq); err != nil {
			panic(errString("barrier send", err))
		}
		req, err := d.Irecv(token[:], 1, datatype.Byte, from, tag, cv, 0)
		if err != nil {
			panic(errString("barrier recv", err))
		}
		req.Wait()
		round++
	}
}

// elemCode mirrors the ch4 table (duplicated to keep devices
// independent).
var elemTable = []*datatype.Type{datatype.Byte, datatype.Char, datatype.Short,
	datatype.Int, datatype.Long, datatype.Float, datatype.Double}

func elemCode(t *datatype.Type) int {
	for i, e := range elemTable {
		if e == t {
			return i
		}
	}
	return -1
}

func elemFromCode(c int) *datatype.Type {
	if c < 0 || c >= len(elemTable) {
		return nil
	}
	return elemTable[c]
}
