package original

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"gompi/internal/coll"
	"gompi/internal/comm"
	"gompi/internal/core"
	"gompi/internal/datatype"
	"gompi/internal/fabric"
	"gompi/internal/proc"
)

// The baseline device must satisfy the same ADI as ch4.
var _ core.Device = (*Device)(nil)

type env struct {
	d *Device
	c *comm.Comm
}

func runWorld(t *testing.T, n int, prof fabric.Profile, cfg core.Config, body func(e *env) error) {
	t.Helper()
	hz := prof.Hz
	if hz == 0 {
		hz = 2.2e9
	}
	w := proc.NewWorld(n, 1, hz)
	g := NewGlobal(w, prof, cfg)
	reg := comm.NewRegistry()
	err := w.Run(func(r *proc.Rank) error {
		d := g.Open(r)
		r.StartBarrier()
		return body(&env{d: d, c: comm.NewWorld(reg, n, r.ID())})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvSoftwareMatching(t *testing.T) {
	runWorld(t, 2, fabric.OFI, core.Default, func(e *env) error {
		if e.c.Rank() == 0 {
			req, err := e.d.Isend([]byte("pkt"), 3, datatype.Byte, 1, 4, e.c, 0)
			if err != nil {
				return err
			}
			req.Wait()
			return nil
		}
		buf := make([]byte, 3)
		req, err := e.d.Irecv(buf, 3, datatype.Byte, 0, 4, e.c, 0)
		if err != nil {
			return err
		}
		req.Wait()
		if string(buf) != "pkt" || req.Status.Source != 0 || req.Status.Tag != 4 {
			return fmt.Errorf("recv %q status %+v", buf, req.Status)
		}
		return nil
	})
}

func TestUnexpectedThenPosted(t *testing.T) {
	runWorld(t, 2, fabric.INF, core.Default, func(e *env) error {
		if e.c.Rank() == 0 {
			for i := 0; i < 4; i++ {
				if _, err := e.d.Isend([]byte{byte(i)}, 1, datatype.Byte, 1, i, e.c, core.FlagNoReq); err != nil {
					return err
				}
			}
			return nil
		}
		// Receive out of order: tags 3,1,0,2 — software matching must
		// pick each from the unexpected queue.
		for _, tag := range []int{3, 1, 0, 2} {
			buf := make([]byte, 1)
			req, err := e.d.Irecv(buf, 1, datatype.Byte, 0, tag, e.c, 0)
			if err != nil {
				return err
			}
			req.Wait()
			if buf[0] != byte(tag) {
				return fmt.Errorf("tag %d delivered %d", tag, buf[0])
			}
		}
		return nil
	})
}

func TestAnySourceSoftware(t *testing.T) {
	runWorld(t, 3, fabric.OFI, core.Default, func(e *env) error {
		if e.c.Rank() != 0 {
			_, err := e.d.Isend([]byte{byte(e.c.Rank())}, 1, datatype.Byte, 0, 1, e.c, core.FlagNoReq)
			return err
		}
		seen := map[int]bool{}
		for i := 0; i < 2; i++ {
			buf := make([]byte, 1)
			req, err := e.d.Irecv(buf, 1, datatype.Byte, core.AnySource, 1, e.c, 0)
			if err != nil {
				return err
			}
			req.Wait()
			seen[req.Status.Source] = true
		}
		if !seen[1] || !seen[2] {
			return fmt.Errorf("sources %v", seen)
		}
		return nil
	})
}

func TestProcNullOriginal(t *testing.T) {
	runWorld(t, 1, fabric.INF, core.Default, func(e *env) error {
		req, err := e.d.Isend([]byte{1}, 1, datatype.Byte, core.ProcNull, 0, e.c, 0)
		if err != nil {
			return err
		}
		if !req.Done() {
			return errors.New("PROC_NULL send incomplete")
		}
		return nil
	})
}

func TestDerivedTypeOriginal(t *testing.T) {
	vec, _ := datatype.NewVector(2, 1, 2, datatype.Byte)
	vec.Commit()
	runWorld(t, 2, fabric.INF, core.Default, func(e *env) error {
		if e.c.Rank() == 0 {
			_, err := e.d.Isend([]byte{'a', 'b', 'c', 'd'}, 1, vec, 1, 0, e.c, core.FlagNoReq)
			return err
		}
		dst := bytes.Repeat([]byte{'.'}, 4)
		req, err := e.d.Irecv(dst, 1, vec, 0, 0, e.c, 0)
		if err != nil {
			return err
		}
		req.Wait()
		if string(dst) != "a.c." {
			return fmt.Errorf("derived recv %q", dst)
		}
		return nil
	})
}

// TestIsendInstructionCount pins the device-side share of the paper's
// 253-instruction MPI_ISEND (253 minus the MPI layer's 74+6+17 = 156).
func TestIsendInstructionCount(t *testing.T) {
	runWorld(t, 2, fabric.INF, core.Default, func(e *env) error {
		if e.c.Rank() != 0 {
			buf := make([]byte, 1)
			req, err := e.d.Irecv(buf, 1, datatype.Byte, 0, 0, e.c, 0)
			if err != nil {
				return err
			}
			req.Wait()
			return nil
		}
		snap := e.d.Rank().Profile().Snap()
		if _, err := e.d.Isend([]byte{1}, 1, datatype.Byte, 1, 0, e.c, 0); err != nil {
			return err
		}
		delta := e.d.Rank().Profile().Delta(snap)
		if got := delta.Total; got != 156 {
			return fmt.Errorf("device-side Isend = %d instructions, want 156", got)
		}
		return nil
	})
}

// TestPutInstructionCount pins the device-side share of the paper's
// 1,342-instruction MPI_PUT (1,342 minus the MPI layer's 72+14+17 =
// 1,239).
func TestPutInstructionCount(t *testing.T) {
	runWorld(t, 2, fabric.INF, core.Default, func(e *env) error {
		mem := make([]byte, 16)
		w, err := e.d.WinCreate(mem, 1, e.c)
		if err != nil {
			return err
		}
		if err := e.d.Fence(w); err != nil {
			return err
		}
		if e.c.Rank() == 0 {
			snap := e.d.Rank().Profile().Snap()
			if err := e.d.Put([]byte{1}, 1, datatype.Byte, 1, 0, w, 0); err != nil {
				return err
			}
			delta := e.d.Rank().Profile().Delta(snap)
			if got := delta.Total; got != 1239 {
				return fmt.Errorf("device-side Put = %d instructions, want 1239", got)
			}
		}
		if err := e.d.Fence(w); err != nil {
			return err
		}
		if e.c.Rank() == 1 && mem[0] != 1 {
			return errors.New("put did not land")
		}
		return e.d.WinFree(w)
	})
}

func TestOriginalPutDerived(t *testing.T) {
	vec, _ := datatype.NewVector(3, 1, 2, datatype.Byte)
	vec.Commit()
	runWorld(t, 2, fabric.OFI, core.Default, func(e *env) error {
		mem := bytes.Repeat([]byte{'.'}, 8)
		w, err := e.d.WinCreate(mem, 1, e.c)
		if err != nil {
			return err
		}
		e.d.Fence(w)
		if e.c.Rank() == 0 {
			if err := e.d.Put([]byte{'A', 'x', 'B', 'y', 'C', 'z'}, 1, vec, 1, 0, w, 0); err != nil {
				return err
			}
		}
		e.d.Fence(w)
		if e.c.Rank() == 1 && string(mem[:6]) != "A.B.C." {
			return fmt.Errorf("derived put landed %q", mem[:6])
		}
		return e.d.WinFree(w)
	})
}

func TestOriginalGet(t *testing.T) {
	runWorld(t, 2, fabric.OFI, core.Default, func(e *env) error {
		mem := make([]byte, 8)
		if e.c.Rank() == 1 {
			copy(mem, "SECRET!!")
		}
		w, err := e.d.WinCreate(mem, 1, e.c)
		if err != nil {
			return err
		}
		e.d.Fence(w)
		if e.c.Rank() == 0 {
			buf := make([]byte, 6)
			if err := e.d.Get(buf, 6, datatype.Byte, 1, 0, w, 0); err != nil {
				return err
			}
			if string(buf) != "SECRET" {
				return fmt.Errorf("get %q", buf)
			}
		} else {
			// The target must be in the progress engine for the
			// response to flow: fence's barrier recv pumps it.
		}
		e.d.Fence(w)
		return e.d.WinFree(w)
	})
}

func TestOriginalAccumulate(t *testing.T) {
	const n = 3
	runWorld(t, n, fabric.INF, core.Default, func(e *env) error {
		mem := make([]byte, 8)
		w, err := e.d.WinCreate(mem, 1, e.c)
		if err != nil {
			return err
		}
		e.d.Fence(w)
		contrib := make([]byte, 8)
		binary.LittleEndian.PutUint64(contrib, uint64(e.c.Rank()+1))
		if err := e.d.Accumulate(contrib, 1, datatype.Long, 0, 0, coll.OpSum, w, 0); err != nil {
			return err
		}
		e.d.Fence(w)
		if e.c.Rank() == 0 {
			if got := binary.LittleEndian.Uint64(mem); got != n*(n+1)/2 {
				return fmt.Errorf("accumulate = %d", got)
			}
		}
		return e.d.WinFree(w)
	})
}

func TestOriginalLockUnlock(t *testing.T) {
	runWorld(t, 2, fabric.INF, core.Default, func(e *env) error {
		mem := make([]byte, 8)
		w, err := e.d.WinCreate(mem, 1, e.c)
		if err != nil {
			return err
		}
		if e.c.Rank() == 0 {
			if err := e.d.Lock(w, 1, true); err != nil {
				return err
			}
			if err := e.d.Put([]byte{7}, 1, datatype.Byte, 1, 0, w, 0); err != nil {
				return err
			}
			if err := e.d.Unlock(w, 1); err != nil {
				return err
			}
		}
		e.d.barrier(e.c)
		if e.c.Rank() == 1 {
			// Pump progress: the put packet may still be queued.
			e.d.waitUntil(func() bool { e.d.Progress(); return mem[0] == 7 })
		}
		return e.d.WinFree(w)
	})
}

func TestDynamicWindowUnsupported(t *testing.T) {
	runWorld(t, 1, fabric.INF, core.Default, func(e *env) error {
		if _, err := e.d.WinCreateDynamic(e.c); err == nil {
			return errors.New("baseline accepted a dynamic window")
		}
		return nil
	})
}

// The ch4-vs-original instruction gap is the paper's headline: verify
// the orderings hold structurally.
func TestDeviceGapOrdering(t *testing.T) {
	runWorld(t, 2, fabric.INF, core.Default, func(e *env) error {
		var isend int64
		if e.c.Rank() == 0 {
			snap := e.d.Rank().Profile().Snap()
			if _, err := e.d.Isend([]byte{1}, 1, datatype.Byte, 1, 0, e.c, core.FlagNoReq); err != nil {
				return err
			}
			isend = e.d.Rank().Profile().Delta(snap).Total
		} else {
			buf := make([]byte, 1)
			req, err := e.d.Irecv(buf, 1, datatype.Byte, 0, 0, e.c, 0)
			if err != nil {
				return err
			}
			req.Wait()
		}
		w, err := e.d.WinCreate(make([]byte, 8), 1, e.c)
		if err != nil {
			return err
		}
		if err := e.d.Fence(w); err != nil {
			return err
		}
		if e.c.Rank() == 0 {
			snap := e.d.Rank().Profile().Snap()
			if err := e.d.Put([]byte{1}, 1, datatype.Byte, 1, 0, w, 0); err != nil {
				return err
			}
			put := e.d.Rank().Profile().Delta(snap).Total
			if put <= 4*isend {
				return fmt.Errorf("baseline Put (%d) should dwarf Isend (%d)", put, isend)
			}
		}
		if err := e.d.Fence(w); err != nil {
			return err
		}
		return e.d.WinFree(w)
	})
}

func TestOriginalAccessorsAndAllOpts(t *testing.T) {
	runWorld(t, 2, fabric.INF, core.NoErr, func(e *env) error {
		if e.d.Config() != (core.Config{ThreadCheck: true}) {
			return fmt.Errorf("config %+v", e.d.Config())
		}
		if e.c.Rank() == 0 {
			seq := e.d.EventSeq()
			// IsendAllOpts exists for ADI parity on this device.
			if err := e.d.IsendAllOpts([]byte{1}, 1, e.c); err != nil {
				return err
			}
			_ = seq
			return e.d.CommWaitall(e.c)
		}
		buf := make([]byte, 1)
		req, err := e.d.Irecv(buf, 1, datatype.Byte, core.AnySource, core.AnyTag, e.c, core.FlagNoMatch)
		if err != nil {
			return err
		}
		req.Wait()
		return nil
	})
}

func TestOriginalIprobe(t *testing.T) {
	runWorld(t, 2, fabric.INF, core.Default, func(e *env) error {
		if e.c.Rank() == 0 {
			_, err := e.d.Isend([]byte{1, 2}, 2, datatype.Byte, 1, 6, e.c, core.FlagNoReq)
			return err
		}
		for {
			st, ok, err := e.d.Iprobe(0, 6, e.c)
			if err != nil {
				return err
			}
			if ok {
				if st.Count != 2 || st.Source != 0 || st.Tag != 6 {
					return fmt.Errorf("probe %+v", st)
				}
				break
			}
		}
		// And a wildcard probe must also hit.
		if _, ok, err := e.d.Iprobe(core.AnySource, core.AnyTag, e.c); err != nil || !ok {
			return fmt.Errorf("wildcard probe (%v,%v)", ok, err)
		}
		buf := make([]byte, 2)
		req, err := e.d.Irecv(buf, 2, datatype.Byte, 0, 6, e.c, 0)
		if err != nil {
			return err
		}
		req.Wait()
		return nil
	})
}

func TestOriginalGetAccumulate(t *testing.T) {
	runWorld(t, 2, fabric.OFI, core.Default, func(e *env) error {
		mem := make([]byte, 8)
		if e.c.Rank() == 1 {
			binary.LittleEndian.PutUint64(mem, 40)
		}
		w, err := e.d.WinCreate(mem, 1, e.c)
		if err != nil {
			return err
		}
		e.d.Fence(w)
		if e.c.Rank() == 0 {
			add := make([]byte, 8)
			binary.LittleEndian.PutUint64(add, 2)
			old := make([]byte, 8)
			if err := e.d.GetAccumulate(add, old, 1, datatype.Long, 1, 0, coll.OpSum, w, 0); err != nil {
				return err
			}
			if got := binary.LittleEndian.Uint64(old); got != 40 {
				return fmt.Errorf("fetched %d", got)
			}
		}
		e.d.Fence(w)
		if e.c.Rank() == 1 {
			if got := binary.LittleEndian.Uint64(mem); got != 42 {
				return fmt.Errorf("target %d", got)
			}
		}
		return e.d.WinFree(w)
	})
}

func TestOriginalFenceEnd(t *testing.T) {
	runWorld(t, 2, fabric.INF, core.Default, func(e *env) error {
		w, err := e.d.WinCreate(make([]byte, 8), 1, e.c)
		if err != nil {
			return err
		}
		if err := e.d.Fence(w); err != nil {
			return err
		}
		if err := e.d.FenceEnd(w); err != nil {
			return err
		}
		if w.InEpoch() {
			return errors.New("epoch open after FenceEnd")
		}
		return e.d.WinFree(w)
	})
}
