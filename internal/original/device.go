// Package original is the baseline device: a deliberate reconstruction
// of the MPICH/CH3 cost structure the paper compares against
// ("MPICH/Original"), which also underlies MVAPICH, Intel MPI, and Cray
// MPI. Where ch4 rides hardware tag matching and native RDMA, this
// device lowers every operation to generic packets over active
// messages: sends carry a marshaled envelope matched in software at the
// target, one-sided operations are emulated two-sided through packet
// handlers with per-operation queue entries allocated from a globally
// locked pool, and every layer boundary costs a real function-call
// charge. The structure — not hard-coded totals — produces the paper's
// 253-instruction MPI_ISEND and 1,342-instruction MPI_PUT.
package original

import (
	"encoding/binary"
	"fmt"
	"io"
	"runtime"
	"sync"

	"gompi/internal/abort"
	"gompi/internal/comm"
	"gompi/internal/core"
	"gompi/internal/datatype"
	"gompi/internal/fabric"
	"gompi/internal/instr"
	"gompi/internal/match"
	"gompi/internal/metrics"
	"gompi/internal/proc"
	"gompi/internal/request"
	"gompi/internal/stall"
	"gompi/internal/vtime"
)

// Charge constants for the layered CH3-style critical path.
const (
	// costDispatchLayers: ADI3 -> CH3 -> channel -> netmod function
	// boundaries on the send path (beyond the public entry's 17).
	costDispatchLayers = 18
	// costDispatchLayersRMA: the one-sided path crosses more layers
	// (RMA frontend, op queue, channel).
	costDispatchLayersRMA = 45

	// costPacketGeneric: the generic packet-type switch and union
	// bookkeeping every operation passes through.
	costPacketGeneric = 12
	// costPacketGenericRMA is the fatter RMA variant.
	costPacketGenericRMA = 15

	// Mandatory-path components, pt2pt.
	costProcNull      = 3
	costCommDeref     = 8
	costRankXlate     = 11
	costMatchBits     = 5
	costLockedReqPool = 21 // request from the globally locked pool
	costHeaderBuild   = 12 // eager envelope marshal
	costProtoBranch   = 7  // eager/rendezvous protocol selection

	// Software matching costs at the target (per queue element
	// inspected and per completed match).
	costMatchSearch   = 6
	costMatchComplete = 15

	// One-sided emulation components (MPI_PUT = 1,342 in the default
	// build; see the breakdown at each charge site).
	costWinDerefEpoch = 20  // window dereference + epoch list touch
	costRMAOpAlloc    = 60  // RMA op object from the locked pool
	costRMAOpQueue    = 45  // enqueue + dequeue on the window op list
	costRMASegment    = 280 // generic segment/datatype processing (CH3 "segment" machinery)
	costRMAHeaders    = 130 // RMA packet header + eager envelope marshal
	costRMASendPath   = 220 // reuse of the layered internal send machinery
	costRMARequest    = 150 // origin-side request and completion tracking
	costRMAEpochState = 95  // epoch/lock state machine updates
	costRMAAck        = 99  // acknowledgement bookkeeping
	costRMATargetSide = 160 // target-side handler work (charged to the target)
	costLockProto     = 40
	costFlushProto    = 25
)

// AM handler ids.
const (
	amEager uint8 = iota + 1
	amPut
	amAcc
	amGetReq
	amGetResp
	amAck
)

// Global is the job-wide device state.
type Global struct {
	World *proc.World
	Fab   *fabric.Fabric
	Cfg   core.Config
	pool  request.LockedPool // the CH3-era globally locked request pool

	mu     sync.Mutex
	winSeq int
	devs   []*Device // every opened device, for wait-graph dumps
}

// NewGlobal builds the shared state. The original device has no shmmod
// split: every message takes the generic netmod path, as the paper's
// baseline does on these fabrics.
func NewGlobal(w *proc.World, prof fabric.Profile, cfg core.Config) *Global {
	fabOpts := fabric.Options{EagerPeers: cfg.EagerPeers, MaxPeerBytes: cfg.MaxPeerBytes}
	return &Global{World: w, Fab: fabric.NewVCIOpt(prof, w.Size(), 1, fabOpts), Cfg: cfg}
}

// Abort tears the world down after a rank failure.
func (g *Global) Abort() { g.Fab.Abort() }

// SetStall attaches the stall watchdog (this device has no shmmod, so
// the fabric's park sites cover every blocking wait).
func (g *Global) SetStall(m *stall.Monitor) { g.Fab.SetStall(m) }

// DumpState writes the device-wide wait graph. Matching happens in
// software at the MPI layer on this device, so each rank's own engine —
// not the fabric's unused matching unit — holds the posted and
// unexpected queues. Each device's critical section is taken raw
// (ignoring the ThreadMultiple flag): the dump runs from the watchdog or
// teardown goroutine while ranks are parked, and parked waits hold no
// device lock.
func (g *Global) DumpState(w io.Writer) {
	g.mu.Lock()
	devs := append([]*Device(nil), g.devs...)
	g.mu.Unlock()
	fmt.Fprintf(w, "wait-graph: %d rank(s), software matching at the MPI layer\n", len(devs))
	for _, d := range devs {
		d.bigMu.Lock()
		posted, unex := d.eng.PostedLen(), d.eng.UnexpectedLen()
		fmt.Fprintf(w, "rank %d: %d posted, %d unexpected, %d unacked AM\n",
			d.rank.ID(), posted, unex, d.amSent-d.amAcked)
		d.eng.PostedEach(func(e match.Entry) {
			fmt.Fprintf(w, "  posted recv %s\n", e.DescribeRecv())
		})
		d.eng.UnexpectedEach(func(e match.Entry) {
			fmt.Fprintf(w, "  unexpected %s\n", e.Bits.String())
		})
		d.bigMu.Unlock()
	}
}

// recvState is one posted receive in the software matching engine.
type recvState struct {
	buf       []byte
	n         int
	src, tag  int
	truncated bool
	done      bool
	arrival   vtime.Time // virtual arrival of the matched packet
	posted    vtime.Time // receiver's clock at post time (post→match span)
}

// unexpected buffers one unmatched arrival.
type unexpected struct {
	data    []byte
	src     int
	arrival vtime.Time
}

// Device is one rank's baseline device instance.
type Device struct {
	g    *Global
	rank *proc.Rank
	ep   *fabric.Endpoint
	cfg  core.Config

	eng  match.Engine // software matching, at the MPI layer
	wins map[int]*winState

	// Get request/response bookkeeping (owner goroutine only).
	getSeq  uint32
	getWait map[uint32]*getState

	amSent       int64
	amAcked      int64
	amAckArrival vtime.Time // latest ack arrival, folded in at flush

	// bigMu is the CH3-era global critical section: under
	// MPI_THREAD_MULTIPLE every ADI entry on this device serializes on
	// one per-rank lock — the whole-device mutual exclusion the paper's
	// baseline pays for thread safety, in contrast to ch4's per-VCI
	// locks. Blocking waits release it while parked so packet handlers
	// and sibling goroutines can run.
	bigMu   sync.Mutex
	locking bool
}

type getState struct {
	buf     []byte
	done    bool
	arrival vtime.Time
}

// Open attaches a rank.
func (g *Global) Open(r *proc.Rank) *Device {
	d := &Device{
		g: g, rank: r, ep: g.Fab.Endpoint(r.ID()), cfg: g.Cfg,
		wins:    make(map[int]*winState),
		getWait: make(map[uint32]*getState),
		locking: g.Cfg.ThreadMultiple,
	}
	// CH3's software matching is the single linear queue the paper
	// ascribes to legacy stacks: every search pays full queue depth.
	d.eng.Mode = match.Linear
	d.ep.Bind(r)
	d.ep.RegisterAM(amEager, d.handleEager)
	d.ep.RegisterAM(amPut, d.handlePut)
	d.ep.RegisterAM(amAcc, d.handleAcc)
	d.ep.RegisterAM(amGetReq, d.handleGetReq)
	d.ep.RegisterAM(amGetResp, d.handleGetResp)
	d.ep.RegisterAM(amAck, d.handleAck)
	if g.Cfg.EagerPeers {
		// All-pairs connection setup at open — the eager baseline of
		// the lazy peer-state ablation (this device has no shmmod, so
		// fabric connections are the whole of its per-peer state).
		d.ep.EagerConnect()
	}
	g.mu.Lock()
	g.devs = append(g.devs, d)
	g.mu.Unlock()
	return d
}

// Rank returns the owning rank.
func (d *Device) Rank() *proc.Rank { return d.rank }

// Config returns the build configuration.
func (d *Device) Config() core.Config { return d.cfg }

// Stats snapshots the rank's metrics registry. Matching happens in
// software at the MPI layer on this device, so the device's own
// engine — not the (unused) endpoint matching unit — is folded in.
// Owner-goroutine only, like every other Device method; the engine
// fold is safe unlocked (only this goroutine touches it), but the
// registry copy goes through the endpoint so it happens under the
// lock peers hold while bumping receive-side counters.
func (d *Device) Stats() metrics.Snapshot {
	d.lock()
	defer d.unlock()
	d.rank.Metrics().StoreMatch(d.eng.BinOps, d.eng.Searches, d.eng.BinHits, d.eng.WildHits)
	return d.ep.SnapshotStats()
}

// lock enters the global critical section when the build requested
// MPI_THREAD_MULTIPLE; single-threaded builds skip the mutex entirely,
// so the serial cost model is untouched.
func (d *Device) lock() {
	if d.locking {
		d.bigMu.Lock()
	}
}

func (d *Device) unlock() {
	if d.locking {
		d.bigMu.Unlock()
	}
}

// Progress runs the packet handlers. Public entry: takes the critical
// section so handlers never race with ADI calls from sibling
// goroutines.
func (d *Device) Progress() {
	d.lock()
	d.ep.Progress()
	d.unlock()
}

// progressLocked pumps the handlers from code already inside the
// critical section.
func (d *Device) progressLocked() { d.ep.Progress() }

func (d *Device) charge(cat instr.Category, n int64) { d.rank.Charge(cat, n) }

func (d *Device) chargeRedundant(n int64) {
	if !d.cfg.Inline {
		d.charge(instr.Redundant, n)
	}
}

func (d *Device) chargeDispatch(n int64) {
	if !d.cfg.Inline {
		d.charge(instr.Call, n)
	}
}

// chargeRedundantType mirrors ch4: class-3 datatypes keep their
// runtime checks even under link-time inlining.
func (d *Device) chargeRedundantType(dt *datatype.Type, n int64) {
	if !d.cfg.Inline || dt.RuntimeMapped() {
		d.charge(instr.Redundant, n)
	}
}

// EventSeq exposes the endpoint's transport-event counter.
func (d *Device) EventSeq() uint64 { return d.ep.EventSeq() }

// WaitEvent parks the rank until the event counter moves past seq.
func (d *Device) WaitEvent(seq uint64) { d.ep.WaitEvent(seq) }

// waitUntil parks until pred holds, pumping packet handlers. Callers
// hold the critical section; the lock is dropped while parked — the
// CH3 "yield the global lock on blocking waits" rule — and retaken
// before pred is re-evaluated.
func (d *Device) waitUntil(pred func() bool) {
	for {
		seq := d.ep.EventSeq()
		d.progressLocked()
		if pred() {
			return
		}
		d.unlock()
		d.ep.WaitEvent(seq)
		d.lock()
	}
}

func (d *Device) flushAM() {
	if d.amSent != d.amAcked {
		d.waitUntil(func() bool { return d.amSent == d.amAcked })
	}
	d.rank.Sync(d.amAckArrival)
}

func (d *Device) handleAck(_ int, _, _ []byte, arrival vtime.Time) {
	d.amAcked++
	if arrival > d.amAckArrival {
		d.amAckArrival = arrival
	}
}

// spinLock acquires a shared window lock while pumping progress.
// Callers hold the critical section; it is released between attempts
// so a sibling goroutine holding the window lock can reach Unlock.
func (d *Device) spinLock(try func() bool) {
	for !try() {
		if d.g.Fab.Aborted() {
			panic(abort.ErrWorldAborted)
		}
		d.progressLocked()
		d.unlock()
		runtime.Gosched()
		d.lock()
	}
}

// envelope is the 16-byte eager packet header: match bits + length.
type envelope struct {
	bits match.Bits
	size uint32
}

func (e envelope) marshal() []byte {
	b := make([]byte, 12)
	binary.LittleEndian.PutUint64(b, uint64(e.bits))
	binary.LittleEndian.PutUint32(b[8:], e.size)
	return b
}

func unmarshalEnvelope(b []byte) envelope {
	return envelope{
		bits: match.Bits(binary.LittleEndian.Uint64(b)),
		size: binary.LittleEndian.Uint32(b[8:]),
	}
}

func errString(op string, err error) error { return fmt.Errorf("original %s: %w", op, err) }

// errf builds a formatted device error.
func errf(format string, args ...any) error {
	return fmt.Errorf("original: "+format, args...)
}

// translateRank mirrors the ch4 translation but always pays the
// baseline's full table walk.
func (d *Device) translateRank(c *comm.Comm, rank int) (int, error) {
	d.charge(instr.Mandatory, costRankXlate)
	return c.WorldRank(rank)
}
