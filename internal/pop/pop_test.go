package pop

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// inUnit reports whether every metric lies in [0,1] (no NaN sneaks in).
func inUnit(m Metrics) bool {
	for _, v := range []float64{m.LoadBalance, m.CommEff, m.SerEff, m.TransferEff, m.ParallelEff} {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return false
		}
	}
	return true
}

// TestComputeProperties is the property test: on random inputs every
// efficiency stays in [0,1] and the hierarchy factors exactly
// (PE == LB × CommE, CommE == SerE × TE).
func TestComputeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(9)) // deterministic: same cases every run
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(16)
		ranks := make([]Rank, n)
		for i := range ranks {
			useful := rng.Int63n(1 << 20)
			transport := rng.Int63n(1 << 18)
			// Total covers useful+transport plus random wait time, as a
			// real clock would.
			ranks[i] = Rank{
				Valid:     rng.Intn(8) != 0, // occasional dead slot
				Useful:    useful,
				Transport: transport,
				Total:     useful + transport + rng.Int63n(1<<19),
			}
		}
		m := Compute(ranks)
		if !inUnit(m) {
			t.Fatalf("trial %d: metric outside [0,1]: %+v (ranks %+v)", trial, m, ranks)
		}
		if diff := math.Abs(m.ParallelEff - m.LoadBalance*m.CommEff); diff > 1e-12 {
			t.Fatalf("trial %d: PE %g != LB×CommE %g", trial, m.ParallelEff, m.LoadBalance*m.CommEff)
		}
		if diff := math.Abs(m.CommEff - m.SerEff*m.TransferEff); diff > 1e-9 {
			t.Fatalf("trial %d: CommE %g != SerE×TE %g (%+v)", trial, m.CommEff, m.SerEff*m.TransferEff, m)
		}
	}
}

// TestComputeBalanced pins Load Balance to exactly 1.0 when every rank
// did identical useful work.
func TestComputeBalanced(t *testing.T) {
	ranks := make([]Rank, 4)
	for i := range ranks {
		ranks[i] = Rank{Valid: true, Useful: 5000, Transport: 100, Total: 6000}
	}
	m := Compute(ranks)
	if m.LoadBalance != 1.0 {
		t.Fatalf("balanced run: LB = %g, want exactly 1.0", m.LoadBalance)
	}
	if !inUnit(m) {
		t.Fatalf("metrics outside [0,1]: %+v", m)
	}
}

// TestComputeHandDerived checks the whole hierarchy against values
// derived by hand: useful {100,200,300,400}, every total 1000, no
// transport.
//
//	LB    = avg(250) / max(400)      = 0.625
//	CommE = max(400) / runtime(1000) = 0.4
//	ideal = total − transport = 1000, so SerE = 0.4, TE = 1
//	PE    = 0.625 × 0.4              = 0.25
func TestComputeHandDerived(t *testing.T) {
	ranks := []Rank{
		{Valid: true, Useful: 100, Total: 1000},
		{Valid: true, Useful: 200, Total: 1000},
		{Valid: true, Useful: 300, Total: 1000},
		{Valid: true, Useful: 400, Total: 1000},
	}
	m := Compute(ranks)
	want := Metrics{LoadBalance: 0.625, CommEff: 0.4, SerEff: 0.4, TransferEff: 1, ParallelEff: 0.25}
	if m != want {
		t.Fatalf("hand-derived case:\n got %+v\nwant %+v", m, want)
	}
}

// TestComputeExcludesInvalid verifies dead slots don't drag the math:
// a zero slot among balanced ranks must not lower Load Balance.
func TestComputeExcludesInvalid(t *testing.T) {
	ranks := []Rank{
		{Valid: true, Useful: 500, Total: 800},
		{}, // rank died by panic: zero slot, Valid false
		{Valid: true, Useful: 500, Total: 800},
	}
	m := Compute(ranks)
	if m.LoadBalance != 1.0 {
		t.Fatalf("LB = %g with a dead slot, want 1.0 (slot must be excluded)", m.LoadBalance)
	}
	if all := Compute(nil); all != (Metrics{}) {
		t.Fatalf("no ranks: metrics %+v, want zero", all)
	}
}

// TestComputeNoUseful pins the pure-communication conventions: LB and
// TE are 1, CommE and SerE (and hence PE) are 0.
func TestComputeNoUseful(t *testing.T) {
	ranks := []Rank{
		{Valid: true, Total: 1000, Transport: 200},
		{Valid: true, Total: 900, Transport: 100},
	}
	m := Compute(ranks)
	if m.LoadBalance != 1 || m.CommEff != 0 || m.SerEff != 0 || m.ParallelEff != 0 {
		t.Fatalf("pure-communication run: %+v", m)
	}
	if m.TransferEff != 0.8 {
		t.Fatalf("TE = %g, want (1000-200)/1000 = 0.8", m.TransferEff)
	}
}

// TestBuildReport checks the report assembly: counts, runtime, phase
// rows, sorting, and the text table rendering.
func TestBuildReport(t *testing.T) {
	ranks := []Rank{
		{Valid: true, Useful: 100, Total: 1000},
		{Valid: true, Useful: 300, Total: 1200, Transport: 50},
		{},
	}
	phases := []PhaseInput{
		{Name: "halo", Calls: 6, Ranks: []Rank{{Valid: true, Useful: 10, Total: 40}, {Valid: true, Useful: 20, Total: 60}}},
		{Name: "compute", Calls: 6, Ranks: []Rank{{Valid: true, Useful: 400, Total: 400}, {Valid: true, Useful: 400, Total: 400}}},
	}
	rep := Build(ranks, phases)
	if rep.Ranks != 2 || rep.Excluded != 1 {
		t.Fatalf("ranks=%d excluded=%d, want 2/1", rep.Ranks, rep.Excluded)
	}
	if rep.RuntimeCycles != 1200 || rep.MaxUsefulCycles != 300 || rep.AvgUsefulCycles != 200 {
		t.Fatalf("runtime=%d max=%d avg=%g", rep.RuntimeCycles, rep.MaxUsefulCycles, rep.AvgUsefulCycles)
	}
	if len(rep.Phases) != 2 || rep.Phases[0].Name != "halo" {
		t.Fatalf("phases %+v, want entry order halo first", rep.Phases)
	}
	rep.SortPhases()
	if rep.Phases[0].Name != "compute" {
		t.Fatalf("after SortPhases hottest first, got %q", rep.Phases[0].Name)
	}
	if pc := rep.Phases[0]; pc.Ranks != 2 || pc.UsefulCycles != 800 || pc.RuntimeCycles != 400 {
		t.Fatalf("compute phase row %+v", pc)
	}
	var buf bytes.Buffer
	if err := rep.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Parallel Efficiency", "Load Balance", "dead slot(s) excluded", "compute", "halo"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
