// Package pop computes the POP (Performance Optimisation and
// Productivity centre-of-excellence) parallel-efficiency hierarchy from
// per-rank virtual-cycle totals — the model pypop applies to real MPI
// traces, applied here to gompi's deterministic clocks.
//
// The hierarchy factors one run's quality into multiplicative terms,
// each structurally in [0,1]:
//
//	Parallel Efficiency   PE = LB × CommE
//	Load Balance          LB = avg(useful) / max(useful)
//	Communication Eff  CommE = max(useful) / runtime
//	                         = SerE × TE
//	Serialization Eff   SerE = max(useful) / ideal runtime
//	Transfer Eff          TE = ideal runtime / runtime
//
// where useful is a rank's application-compute cycles, runtime is the
// slowest rank's total virtual cycles, and the ideal runtime is the
// slowest rank's cycles with its transport (injection/delivery) charges
// removed — the run replayed on an instantaneous network, which is the
// Dimemas ideal-network simulation POP obtains by re-simulation and
// gompi gets for free from its additive cost model. Low LB means work
// is unevenly divided; low SerE means ranks wait on each other's
// progress even with free data transfer (dependency serialization);
// low TE means the cycles spent moving bytes are themselves the
// bottleneck.
//
// Global Efficiency extends PE with Computation Scaling when comparing
// runs at different scales: CompScale = reference total useful / this
// run's total useful, so extra work introduced by parallelisation
// (replicated arithmetic, halo recomputation) is charged to the
// parallelisation. For a single run CompScale is 1 and GE == PE.
package pop

import (
	"fmt"
	"io"
	"sort"
)

// Rank is one process's attributed cycle totals, the model's inputs.
type Rank struct {
	// Valid marks a slot that was actually filled by a finished rank;
	// ranks that died by panic leave zero slots, which must be excluded
	// rather than read as perfectly-idle ranks (a zero-useful rank
	// would otherwise drag Load Balance toward zero).
	Valid bool
	// Total is the rank's runtime in virtual cycles (its clock at
	// teardown, including time it spent parked waiting on peers).
	Total int64
	// Useful is the rank's application-compute cycles — time spent
	// outside MPI and its transports.
	Useful int64
	// Transport is the rank's fabric/shm injection and delivery cycles:
	// the pure data-movement cost an instantaneous network would erase.
	Transport int64
}

// Metrics is one level of the POP hierarchy: the five per-run
// efficiencies, each in [0,1].
type Metrics struct {
	LoadBalance float64 `json:"load_balance"`
	CommEff     float64 `json:"communication_efficiency"`
	SerEff      float64 `json:"serialization_efficiency"`
	TransferEff float64 `json:"transfer_efficiency"`
	ParallelEff float64 `json:"parallel_efficiency"`
}

// Compute derives the POP metrics from per-rank totals. Invalid slots
// are excluded. With no valid ranks every metric is zero; with no
// useful cycles at all (a pure-communication run) Load Balance is 1 by
// convention — nothing is imbalanced — and the communication terms
// other than Transfer Efficiency are 0.
func Compute(ranks []Rank) Metrics {
	var (
		n                   int
		sumUseful           int64
		maxUseful, maxTotal int64
		maxIdeal            int64
	)
	for _, r := range ranks {
		if !r.Valid {
			continue
		}
		n++
		sumUseful += r.Useful
		if r.Useful > maxUseful {
			maxUseful = r.Useful
		}
		if r.Total > maxTotal {
			maxTotal = r.Total
		}
		ideal := r.Total - r.Transport
		if ideal < r.Useful {
			// Defensive clamp: transport can never have eaten into the
			// rank's own compute cycles.
			ideal = r.Useful
		}
		if ideal > maxIdeal {
			maxIdeal = ideal
		}
	}
	if n == 0 {
		return Metrics{}
	}
	m := Metrics{LoadBalance: 1, TransferEff: 1}
	if maxUseful > 0 {
		m.LoadBalance = float64(sumUseful) / float64(n) / float64(maxUseful)
	}
	if maxTotal > 0 {
		m.CommEff = float64(maxUseful) / float64(maxTotal)
		m.TransferEff = float64(maxIdeal) / float64(maxTotal)
	}
	if maxIdeal > 0 {
		m.SerEff = float64(maxUseful) / float64(maxIdeal)
	}
	m.ParallelEff = m.LoadBalance * m.CommEff
	return m
}

// PhaseInput is one named application region's per-rank totals: the
// region's cycles attributed the same way as the whole run's. A rank
// that never entered the phase contributes an invalid slot.
type PhaseInput struct {
	Name  string
	Calls int64 // total entries across ranks
	Ranks []Rank
}

// PhaseReport is the efficiency hierarchy of one application region.
type PhaseReport struct {
	Name string `json:"name"`
	// Calls is the total number of times ranks entered the phase.
	Calls int64 `json:"calls"`
	// Ranks is how many valid ranks entered the phase.
	Ranks int `json:"ranks"`
	// RuntimeCycles is the slowest rank's cycles inside the phase.
	RuntimeCycles int64 `json:"runtime_cycles"`
	// UsefulCycles / TransportCycles sum the phase's attributed cycles
	// across ranks.
	UsefulCycles    int64 `json:"useful_cycles"`
	TransportCycles int64 `json:"transport_cycles"`
	Metrics
}

// Report is a whole run's efficiency hierarchy plus its per-phase
// breakdown.
type Report struct {
	// Ranks is the number of valid ranks the metrics are computed over;
	// Excluded counts zero slots left by ranks that died by panic.
	Ranks    int `json:"ranks"`
	Excluded int `json:"excluded,omitempty"`
	// RuntimeCycles is the slowest valid rank's total virtual cycles.
	RuntimeCycles int64 `json:"runtime_cycles"`
	// AvgUsefulCycles / MaxUsefulCycles are the Load Balance operands.
	AvgUsefulCycles float64 `json:"avg_useful_cycles"`
	MaxUsefulCycles int64   `json:"max_useful_cycles"`
	// TransportCycles is the total transfer cost across valid ranks.
	TransportCycles int64 `json:"transport_cycles"`
	Metrics
	// Phases holds per-region hierarchies, in first-entry order of the
	// lowest-ranked process that named them.
	Phases []PhaseReport `json:"phases,omitempty"`
}

// Build assembles the full report: run-level metrics from ranks,
// phase-level metrics from each phase's own per-rank totals.
func Build(ranks []Rank, phases []PhaseInput) Report {
	rep := Report{Metrics: Compute(ranks)}
	for _, r := range ranks {
		if !r.Valid {
			rep.Excluded++
			continue
		}
		rep.Ranks++
		rep.AvgUsefulCycles += float64(r.Useful)
		rep.TransportCycles += r.Transport
		if r.Useful > rep.MaxUsefulCycles {
			rep.MaxUsefulCycles = r.Useful
		}
		if r.Total > rep.RuntimeCycles {
			rep.RuntimeCycles = r.Total
		}
	}
	if rep.Ranks > 0 {
		rep.AvgUsefulCycles /= float64(rep.Ranks)
	}
	for _, ph := range phases {
		pr := PhaseReport{Name: ph.Name, Calls: ph.Calls, Metrics: Compute(ph.Ranks)}
		for _, r := range ph.Ranks {
			if !r.Valid {
				continue
			}
			pr.Ranks++
			pr.UsefulCycles += r.Useful
			pr.TransportCycles += r.Transport
			if r.Total > pr.RuntimeCycles {
				pr.RuntimeCycles = r.Total
			}
		}
		rep.Phases = append(rep.Phases, pr)
	}
	return rep
}

// SortPhases orders the report's phases by descending runtime, the
// order a performance analyst reads them in. Build preserves entry
// order; writers that want hottest-first call this.
func (r *Report) SortPhases() {
	sort.SliceStable(r.Phases, func(i, j int) bool {
		return r.Phases[i].RuntimeCycles > r.Phases[j].RuntimeCycles
	})
}

// WriteTable renders the report as an aligned text table: one header
// block with the run-level hierarchy, then one row per phase.
func (r Report) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"POP efficiency (over %d rank(s)%s)\n"+
			"  Parallel Efficiency      %6.3f\n"+
			"    Load Balance           %6.3f   (avg useful %.0f / max useful %d cycles)\n"+
			"    Communication Eff      %6.3f   (runtime %d cycles)\n"+
			"      Serialization Eff    %6.3f\n"+
			"      Transfer Eff         %6.3f   (transport %d cycles total)\n",
		r.Ranks, excludedNote(r.Excluded),
		r.ParallelEff, r.LoadBalance, r.AvgUsefulCycles, r.MaxUsefulCycles,
		r.CommEff, r.RuntimeCycles, r.SerEff, r.TransferEff, r.TransportCycles); err != nil {
		return err
	}
	if len(r.Phases) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "%-16s %6s %6s %12s %8s %8s %8s %8s %8s\n",
		"phase", "calls", "ranks", "cycles", "PE", "LB", "CommE", "SerE", "TE"); err != nil {
		return err
	}
	for _, p := range r.Phases {
		if _, err := fmt.Fprintf(w, "%-16s %6d %6d %12d %8.3f %8.3f %8.3f %8.3f %8.3f\n",
			p.Name, p.Calls, p.Ranks, p.RuntimeCycles,
			p.ParallelEff, p.LoadBalance, p.CommEff, p.SerEff, p.TransferEff); err != nil {
			return err
		}
	}
	return nil
}

func excludedNote(n int) string {
	if n == 0 {
		return ""
	}
	return fmt.Sprintf(", %d dead slot(s) excluded", n)
}
