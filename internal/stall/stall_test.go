package stall

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestNilMonitorIsNoop(t *testing.T) {
	var m *Monitor
	m.Park(0)
	m.Unpark(0)
	m.Activity()
	m.RankExited(0)
	m.Start()
	m.Stop()
	if m.Trips() != 0 || m.Parked(0) {
		t.Fatal("nil monitor reported state")
	}
}

func TestTripsOnFullQuiescence(t *testing.T) {
	var fired atomic.Int32
	m := New(2, time.Millisecond, func() { fired.Add(1) })
	m.Park(0)
	m.Park(1)
	m.Start()
	deadline := time.After(2 * time.Second)
	for fired.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("watchdog never tripped on a fully parked world")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if m.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", m.Trips())
	}
	// The loop exits after the trip; Stop must not hang.
	m.Stop()
}

func TestNoTripWhileActive(t *testing.T) {
	m := New(2, 20*time.Millisecond, func() { t.Error("watchdog tripped on an active world") })
	m.Park(0)
	m.Park(1)
	m.Start()
	// Activity keeps moving: no two consecutive scans see frozen
	// counters, so the watchdog must stay silent. Bump in a tight loop
	// so scheduler hiccups cannot fake a quiet scan pair.
	stop := time.After(100 * time.Millisecond)
	for {
		select {
		case <-stop:
			m.Stop()
			if m.Trips() != 0 {
				t.Fatalf("trips = %d, want 0", m.Trips())
			}
			return
		default:
			m.Activity()
		}
	}
}

func TestNoTripWithUnparkedRank(t *testing.T) {
	m := New(2, time.Millisecond, func() { t.Error("watchdog tripped with a runnable rank") })
	m.Park(0) // rank 1 never parks: it could still make progress
	m.Start()
	time.Sleep(30 * time.Millisecond)
	m.Stop()
	if m.Trips() != 0 {
		t.Fatalf("trips = %d, want 0", m.Trips())
	}
}

func TestExitedRanksDoNotBlockTrip(t *testing.T) {
	var fired atomic.Int32
	m := New(3, time.Millisecond, func() { fired.Add(1) })
	m.Park(0)
	m.Park(1)
	m.RankExited(2) // finished rank, never parked
	m.Start()
	deadline := time.After(2 * time.Second)
	for fired.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("watchdog ignored a stall because a finished rank was idle")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	m.Stop()
}

func TestAllExitedNeverTrips(t *testing.T) {
	m := New(2, time.Millisecond, func() { t.Error("watchdog tripped on an exited world") })
	m.RankExited(0)
	m.RankExited(1)
	m.Start()
	time.Sleep(30 * time.Millisecond)
	m.Stop()
}
