// Package stall is the stall watchdog: a wall-clock scanner that
// detects a world that has stopped making progress — every live rank
// parked in a blocking wait with no transport events moving — and
// fires a diagnosis callback exactly once.
//
// The detector is built to be structurally free of false positives.
// Virtual clocks freeze while a rank is parked, so no virtual-time
// threshold can distinguish a deadlock from a long wait; instead the
// monitor watches two global counters:
//
//   - activity: bumped by every transport event broadcast (deposits,
//     wakes, active messages, ring drains) — anything that could wake
//     a parked goroutine;
//   - transitions: bumped every time a goroutine enters or leaves a
//     blocking park.
//
// A goroutine parked on a condition variable can only resume after a
// broadcast, and every broadcast site bumps activity. So if two
// consecutive scans observe (a) every live rank with at least one
// goroutine parked, and (b) both counters unchanged, then nothing
// woke, nothing moved, and nothing can ever move: the world is
// deadlocked. A healthy run — the CI chaos guard — can never satisfy
// (b) across a scan pair that spans real work.
//
// Under MPI_THREAD_MULTIPLE a rank may have an application goroutine
// computing outside MPI while another lane is parked; a compute phase
// longer than two scan intervals with zero MPI activity would then
// trip spuriously. The interval is configurable for such workloads;
// the shipped default (50ms scans) is far above any in-MPI pause.
package stall

import (
	"sync/atomic"
	"time"
)

// DefaultInterval is the wall-clock scan period.
const DefaultInterval = 50 * time.Millisecond

// Monitor is the watchdog. All methods are safe on a nil receiver
// (no-ops), so the transports hook it unconditionally and pay one
// branch when the watchdog is disabled.
type Monitor struct {
	interval time.Duration
	onTrip   func()

	activity    atomic.Uint64
	transitions atomic.Uint64
	inWait      []atomic.Int32
	exited      []atomic.Bool
	trips       atomic.Int64

	prevQuiet bool
	prevAct   uint64
	prevTr    uint64

	stop chan struct{}
	done chan struct{}
}

// New creates a monitor for n ranks scanning at the given interval
// (DefaultInterval if non-positive). onTrip runs on the monitor's
// goroutine, at most once; it is expected to dump diagnosis and abort
// the world.
func New(n int, interval time.Duration, onTrip func()) *Monitor {
	if interval <= 0 {
		interval = DefaultInterval
	}
	return &Monitor{
		interval: interval,
		onTrip:   onTrip,
		inWait:   make([]atomic.Int32, n),
		exited:   make([]atomic.Bool, n),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the scan loop.
func (m *Monitor) Start() {
	if m == nil {
		return
	}
	go m.run()
}

// Stop terminates the scan loop and waits for it to exit.
func (m *Monitor) Stop() {
	if m == nil {
		return
	}
	close(m.stop)
	<-m.done
}

// Park marks one goroutine of rank as blocked in a transport wait.
func (m *Monitor) Park(rank int) {
	if m == nil {
		return
	}
	m.inWait[rank].Add(1)
	m.transitions.Add(1)
}

// Unpark reverses Park.
func (m *Monitor) Unpark(rank int) {
	if m == nil {
		return
	}
	m.inWait[rank].Add(-1)
	m.transitions.Add(1)
}

// Activity notes one transport event broadcast — anything that could
// wake a parked goroutine.
func (m *Monitor) Activity() {
	if m == nil {
		return
	}
	m.activity.Add(1)
}

// RankExited marks a rank's body as returned: it no longer needs to be
// parked for the world to count as stalled.
func (m *Monitor) RankExited(rank int) {
	if m == nil {
		return
	}
	m.exited[rank].Store(true)
	m.transitions.Add(1)
}

// Parked reports whether rank currently has a goroutine blocked in a
// transport wait (diagnosis rendering).
func (m *Monitor) Parked(rank int) bool {
	if m == nil {
		return false
	}
	return m.inWait[rank].Load() > 0
}

// Trips returns how many times the watchdog fired (0 or 1).
func (m *Monitor) Trips() int64 {
	if m == nil {
		return 0
	}
	return m.trips.Load()
}

func (m *Monitor) run() {
	defer close(m.done)
	t := time.NewTicker(m.interval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			if m.scan() {
				return
			}
		}
	}
}

// scan evaluates one tick; it returns true once the watchdog has
// tripped (the loop stops — the trip aborts the world).
func (m *Monitor) scan() bool {
	act := m.activity.Load()
	tr := m.transitions.Load()
	quiet := m.allLiveParked()
	tripped := quiet && m.prevQuiet && act == m.prevAct && tr == m.prevTr
	m.prevQuiet, m.prevAct, m.prevTr = quiet, act, tr
	if !tripped {
		return false
	}
	m.trips.Add(1)
	if m.onTrip != nil {
		m.onTrip()
	}
	return true
}

// allLiveParked reports whether at least one rank is still live and
// every live rank has a goroutine parked in a transport wait.
func (m *Monitor) allLiveParked() bool {
	live := 0
	for i := range m.inWait {
		if m.exited[i].Load() {
			continue
		}
		live++
		if m.inWait[i].Load() == 0 {
			return false
		}
	}
	return live > 0
}
