package group

import (
	"testing"
	"testing/quick"
)

func TestWorldGroup(t *testing.T) {
	g := WorldGroup(4)
	if g.Size() != 4 {
		t.Fatalf("Size = %d", g.Size())
	}
	for i := 0; i < 4; i++ {
		w, err := g.WorldRank(i)
		if err != nil || w != i {
			t.Errorf("WorldRank(%d) = (%d,%v)", i, w, err)
		}
		if g.Rank(i) != i {
			t.Errorf("Rank(%d) = %d", i, g.Rank(i))
		}
	}
}

func TestWorldRankOutOfRange(t *testing.T) {
	g := WorldGroup(3)
	if _, err := g.WorldRank(3); err != ErrBadRank {
		t.Error("rank 3 of size-3 group accepted")
	}
	if _, err := g.WorldRank(-1); err != ErrBadRank {
		t.Error("rank -1 accepted")
	}
	if g.Rank(99) != Undefined {
		t.Error("absent world rank not Undefined")
	}
}

func TestFromRanksDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate world rank did not panic")
		}
	}()
	FromRanks([]int{1, 2, 1})
}

func TestInclExcl(t *testing.T) {
	g := WorldGroup(6)
	sub, err := g.Incl([]int{4, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Size() != 3 {
		t.Fatalf("Incl size = %d", sub.Size())
	}
	if w, _ := sub.WorldRank(0); w != 4 {
		t.Errorf("Incl order not preserved: %d", w)
	}
	rest, err := g.Excl([]int{0, 5})
	if err != nil {
		t.Fatal(err)
	}
	if rest.Size() != 4 || rest.Rank(0) != Undefined || rest.Rank(5) != Undefined {
		t.Error("Excl kept excluded ranks")
	}
	if _, err := g.Incl([]int{9}); err != ErrBadRank {
		t.Error("Incl out-of-range accepted")
	}
	if _, err := g.Excl([]int{-2}); err != ErrBadRank {
		t.Error("Excl out-of-range accepted")
	}
}

func TestSetOperations(t *testing.T) {
	a := FromRanks([]int{0, 1, 2, 3})
	b := FromRanks([]int{2, 3, 4, 5})

	u := Union(a, b)
	if u.Size() != 6 {
		t.Errorf("Union size = %d, want 6", u.Size())
	}
	if w, _ := u.WorldRank(4); w != 4 { // a's ranks first, then b's new
		t.Errorf("Union order: rank 4 = world %d, want 4", w)
	}

	i := Intersection(a, b)
	if i.Size() != 2 || i.Rank(2) == Undefined || i.Rank(3) == Undefined {
		t.Error("Intersection wrong")
	}

	d := Difference(a, b)
	if d.Size() != 2 || d.Rank(0) == Undefined || d.Rank(1) == Undefined {
		t.Error("Difference wrong")
	}
}

func TestTranslateRanks(t *testing.T) {
	a := FromRanks([]int{10, 20, 30})
	b := FromRanks([]int{30, 10})
	out, err := TranslateRanks(a, []int{0, 1, 2}, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, Undefined, 0}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("translate[%d] = %d, want %d", i, out[i], want[i])
		}
	}
	if _, err := TranslateRanks(a, []int{7}, b); err != ErrBadRank {
		t.Error("out-of-range translate accepted")
	}
}

func TestEqualSimilar(t *testing.T) {
	a := FromRanks([]int{1, 2, 3})
	b := FromRanks([]int{1, 2, 3})
	c := FromRanks([]int{3, 2, 1})
	d := FromRanks([]int{1, 2})
	if !Equal(a, b) || Equal(a, c) || Equal(a, d) {
		t.Error("Equal wrong")
	}
	if !Similar(a, c) || Similar(a, d) {
		t.Error("Similar wrong")
	}
}

// Property: Rank and WorldRank are inverse on every member.
func TestRankInverseProperty(t *testing.T) {
	f := func(perm []uint8) bool {
		seen := map[int]bool{}
		var ranks []int
		for _, p := range perm {
			w := int(p)
			if !seen[w] {
				seen[w] = true
				ranks = append(ranks, w)
			}
		}
		if len(ranks) == 0 {
			return true
		}
		g := FromRanks(ranks)
		for i := range ranks {
			w, err := g.WorldRank(i)
			if err != nil || g.Rank(w) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: |A∩B| + |A\B| = |A|, and Union contains every member of
// both.
func TestSetAlgebraProperty(t *testing.T) {
	f := func(as, bs []uint8) bool {
		mk := func(xs []uint8) *Group {
			seen := map[int]bool{}
			var ranks []int
			for _, x := range xs {
				if !seen[int(x)] {
					seen[int(x)] = true
					ranks = append(ranks, int(x))
				}
			}
			return FromRanks(ranks)
		}
		a, b := mk(as), mk(bs)
		if Intersection(a, b).Size()+Difference(a, b).Size() != a.Size() {
			return false
		}
		u := Union(a, b)
		for _, w := range a.Ranks() {
			if u.Rank(w) == Undefined {
				return false
			}
		}
		for _, w := range b.Ranks() {
			if u.Rank(w) == Undefined {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
