// Package group implements MPI process groups: ordered sets of world
// ranks with the MPI-3.1 set operations and rank translation
// (MPI_GROUP_TRANSLATE_RANKS — the function the paper's global-rank
// proposal builds on).
//
// Groups over regular rank sequences (the world group, node-local
// blocks, strided splits) are stored arithmetically — {size, base,
// stride} — so constructing the 10K-rank world group costs O(1) memory
// instead of an O(n) slice plus an O(n) map per rank. Irregular groups
// fall back to the materialized slice + index-map representation.
package group

import "errors"

// Undefined is returned for ranks with no image in the target group
// (MPI_UNDEFINED).
const Undefined = -1

// ErrBadRank reports a rank outside the group.
var ErrBadRank = errors.New("group: rank out of range")

// Group is an immutable ordered set of world ranks. Index = group rank,
// value = world rank. When ranks == nil the group is arithmetic:
// world = base + i*stride for 0 <= i < size.
type Group struct {
	size   int
	base   int
	stride int
	ranks  []int
	index  map[int]int // world rank -> group rank (materialized groups)
}

// Strided builds the arithmetic group {base + i*stride : 0 <= i < size}
// in O(1) space. stride must be nonzero for size >= 2 (zero would alias
// every member to the same world rank).
func Strided(size, base, stride int) *Group {
	if size < 0 {
		panic("group: negative size")
	}
	if size >= 2 && stride == 0 {
		panic("group: zero stride")
	}
	if size <= 1 {
		stride = 1
	}
	return &Group{size: size, base: base, stride: stride}
}

// FromRanks builds a group from world ranks. The slice is copied unless
// it forms an arithmetic progression, in which case the group collapses
// to the O(1) strided representation. World ranks must be distinct;
// duplicates make matching ambiguous.
func FromRanks(worldRanks []int) *Group {
	n := len(worldRanks)
	if n == 0 {
		return Strided(0, 0, 1)
	}
	if n == 1 {
		return Strided(1, worldRanks[0], 1)
	}
	base, stride := worldRanks[0], worldRanks[1]-worldRanks[0]
	if stride != 0 {
		regular := true
		for i, w := range worldRanks {
			if w != base+i*stride {
				regular = false
				break
			}
		}
		if regular {
			// stride != 0 implies all members distinct.
			return Strided(n, base, stride)
		}
	}
	g := &Group{size: n, ranks: append([]int(nil), worldRanks...)}
	g.index = make(map[int]int, n)
	for i, w := range g.ranks {
		g.index[w] = i
	}
	if len(g.index) != n {
		panic("group: duplicate world rank")
	}
	return g
}

// WorldGroup returns the group 0..n-1 (the MPI_COMM_WORLD group) in
// O(1) space — no per-rank copy of the full rank list.
func WorldGroup(n int) *Group {
	return Strided(n, 0, 1)
}

// Size returns the number of processes in the group.
func (g *Group) Size() int { return g.size }

// Strided reports the arithmetic representation (base, stride) when the
// group is stored that way. ok is false for materialized groups.
func (g *Group) Strided() (base, stride int, ok bool) {
	if g.ranks != nil {
		return 0, 0, false
	}
	return g.base, g.stride, true
}

// WorldRank translates a group rank to its world rank. O(1) for both
// representations.
func (g *Group) WorldRank(r int) (int, error) {
	if r < 0 || r >= g.size {
		return Undefined, ErrBadRank
	}
	if g.ranks == nil {
		return g.base + r*g.stride, nil
	}
	return g.ranks[r], nil
}

// worldAt is WorldRank without the bounds check, for internal loops
// that iterate 0..size-1.
func (g *Group) worldAt(i int) int {
	if g.ranks == nil {
		return g.base + i*g.stride
	}
	return g.ranks[i]
}

// Rank translates a world rank to this group's rank, or Undefined.
// O(1) for both representations (arithmetic inversion or map lookup).
func (g *Group) Rank(world int) int {
	if g.ranks == nil {
		d := world - g.base
		if g.size == 0 || d%g.stride != 0 {
			return Undefined
		}
		r := d / g.stride
		if r < 0 || r >= g.size {
			return Undefined
		}
		return r
	}
	if r, ok := g.index[world]; ok {
		return r
	}
	return Undefined
}

// Ranks returns a copy of the world-rank list. This materializes O(n)
// storage even for strided groups — scale-sensitive callers should use
// Strided/WorldRank instead.
func (g *Group) Ranks() []int {
	if g.ranks != nil {
		return append([]int(nil), g.ranks...)
	}
	out := make([]int, g.size)
	for i := range out {
		out[i] = g.base + i*g.stride
	}
	return out
}

// TranslateRanks maps ranks in g to the corresponding ranks in to
// (MPI_GROUP_TRANSLATE_RANKS). Ranks with no image map to Undefined.
func TranslateRanks(g *Group, ranks []int, to *Group) ([]int, error) {
	out := make([]int, len(ranks))
	for i, r := range ranks {
		w, err := g.WorldRank(r)
		if err != nil {
			return nil, err
		}
		out[i] = to.Rank(w)
	}
	return out, nil
}

// Incl returns the subgroup containing the listed ranks of g, in the
// listed order (MPI_GROUP_INCL).
func (g *Group) Incl(ranks []int) (*Group, error) {
	world := make([]int, len(ranks))
	for i, r := range ranks {
		w, err := g.WorldRank(r)
		if err != nil {
			return nil, err
		}
		world[i] = w
	}
	return FromRanks(world), nil
}

// Excl returns the subgroup of g without the listed ranks, preserving
// order (MPI_GROUP_EXCL).
func (g *Group) Excl(ranks []int) (*Group, error) {
	drop := make(map[int]bool, len(ranks))
	for _, r := range ranks {
		if r < 0 || r >= g.size {
			return nil, ErrBadRank
		}
		drop[r] = true
	}
	var world []int
	for i := 0; i < g.size; i++ {
		if !drop[i] {
			world = append(world, g.worldAt(i))
		}
	}
	return FromRanks(world), nil
}

// Union returns the group of all processes in a followed by those in b
// not in a (MPI_GROUP_UNION order semantics).
func Union(a, b *Group) *Group {
	world := a.Ranks()
	for i := 0; i < b.size; i++ {
		if w := b.worldAt(i); a.Rank(w) == Undefined {
			world = append(world, w)
		}
	}
	return FromRanks(world)
}

// Intersection returns the processes of a that are also in b, in a's
// order (MPI_GROUP_INTERSECTION).
func Intersection(a, b *Group) *Group {
	var world []int
	for i := 0; i < a.size; i++ {
		if w := a.worldAt(i); b.Rank(w) != Undefined {
			world = append(world, w)
		}
	}
	return FromRanks(world)
}

// Difference returns the processes of a not in b, in a's order
// (MPI_GROUP_DIFFERENCE).
func Difference(a, b *Group) *Group {
	var world []int
	for i := 0; i < a.size; i++ {
		if w := a.worldAt(i); b.Rank(w) == Undefined {
			world = append(world, w)
		}
	}
	return FromRanks(world)
}

// Equal reports whether two groups contain the same ranks in the same
// order (MPI_IDENT). O(1) when both sides are strided.
func Equal(a, b *Group) bool {
	if a.size != b.size {
		return false
	}
	if a.ranks == nil && b.ranks == nil {
		return a.size == 0 || (a.base == b.base && (a.size == 1 || a.stride == b.stride))
	}
	for i := 0; i < a.size; i++ {
		if a.worldAt(i) != b.worldAt(i) {
			return false
		}
	}
	return true
}

// Similar reports whether two groups contain the same ranks in any
// order (MPI_SIMILAR).
func Similar(a, b *Group) bool {
	if a.size != b.size {
		return false
	}
	for i := 0; i < a.size; i++ {
		if b.Rank(a.worldAt(i)) == Undefined {
			return false
		}
	}
	return true
}
