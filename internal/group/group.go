// Package group implements MPI process groups: ordered sets of world
// ranks with the MPI-3.1 set operations and rank translation
// (MPI_GROUP_TRANSLATE_RANKS — the function the paper's global-rank
// proposal builds on).
package group

import "errors"

// Undefined is returned for ranks with no image in the target group
// (MPI_UNDEFINED).
const Undefined = -1

// ErrBadRank reports a rank outside the group.
var ErrBadRank = errors.New("group: rank out of range")

// Group is an immutable ordered set of world ranks. Index = group rank,
// value = world rank.
type Group struct {
	ranks []int
	index map[int]int // world rank -> group rank, built lazily for big groups
}

// FromRanks builds a group from world ranks. The slice is copied. World
// ranks must be distinct; duplicates make matching ambiguous.
func FromRanks(worldRanks []int) *Group {
	g := &Group{ranks: append([]int(nil), worldRanks...)}
	g.index = make(map[int]int, len(g.ranks))
	for i, w := range g.ranks {
		g.index[w] = i
	}
	if len(g.index) != len(g.ranks) {
		panic("group: duplicate world rank")
	}
	return g
}

// WorldGroup returns the group 0..n-1 (the MPI_COMM_WORLD group).
func WorldGroup(n int) *Group {
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = i
	}
	return FromRanks(ranks)
}

// Size returns the number of processes in the group.
func (g *Group) Size() int { return len(g.ranks) }

// WorldRank translates a group rank to its world rank.
func (g *Group) WorldRank(r int) (int, error) {
	if r < 0 || r >= len(g.ranks) {
		return Undefined, ErrBadRank
	}
	return g.ranks[r], nil
}

// Rank translates a world rank to this group's rank, or Undefined.
func (g *Group) Rank(world int) int {
	if r, ok := g.index[world]; ok {
		return r
	}
	return Undefined
}

// Ranks returns a copy of the world-rank list.
func (g *Group) Ranks() []int { return append([]int(nil), g.ranks...) }

// TranslateRanks maps ranks in g to the corresponding ranks in to
// (MPI_GROUP_TRANSLATE_RANKS). Ranks with no image map to Undefined.
func TranslateRanks(g *Group, ranks []int, to *Group) ([]int, error) {
	out := make([]int, len(ranks))
	for i, r := range ranks {
		w, err := g.WorldRank(r)
		if err != nil {
			return nil, err
		}
		out[i] = to.Rank(w)
	}
	return out, nil
}

// Incl returns the subgroup containing the listed ranks of g, in the
// listed order (MPI_GROUP_INCL).
func (g *Group) Incl(ranks []int) (*Group, error) {
	world := make([]int, len(ranks))
	for i, r := range ranks {
		w, err := g.WorldRank(r)
		if err != nil {
			return nil, err
		}
		world[i] = w
	}
	return FromRanks(world), nil
}

// Excl returns the subgroup of g without the listed ranks, preserving
// order (MPI_GROUP_EXCL).
func (g *Group) Excl(ranks []int) (*Group, error) {
	drop := make(map[int]bool, len(ranks))
	for _, r := range ranks {
		if r < 0 || r >= len(g.ranks) {
			return nil, ErrBadRank
		}
		drop[r] = true
	}
	var world []int
	for i, w := range g.ranks {
		if !drop[i] {
			world = append(world, w)
		}
	}
	return FromRanks(world), nil
}

// Union returns the group of all processes in a followed by those in b
// not in a (MPI_GROUP_UNION order semantics).
func Union(a, b *Group) *Group {
	world := a.Ranks()
	for _, w := range b.ranks {
		if a.Rank(w) == Undefined {
			world = append(world, w)
		}
	}
	return FromRanks(world)
}

// Intersection returns the processes of a that are also in b, in a's
// order (MPI_GROUP_INTERSECTION).
func Intersection(a, b *Group) *Group {
	var world []int
	for _, w := range a.ranks {
		if b.Rank(w) != Undefined {
			world = append(world, w)
		}
	}
	return FromRanks(world)
}

// Difference returns the processes of a not in b, in a's order
// (MPI_GROUP_DIFFERENCE).
func Difference(a, b *Group) *Group {
	var world []int
	for _, w := range a.ranks {
		if b.Rank(w) == Undefined {
			world = append(world, w)
		}
	}
	return FromRanks(world)
}

// Equal reports whether two groups contain the same ranks in the same
// order (MPI_IDENT).
func Equal(a, b *Group) bool {
	if a.Size() != b.Size() {
		return false
	}
	for i, w := range a.ranks {
		if b.ranks[i] != w {
			return false
		}
	}
	return true
}

// Similar reports whether two groups contain the same ranks in any
// order (MPI_SIMILAR).
func Similar(a, b *Group) bool {
	if a.Size() != b.Size() {
		return false
	}
	for _, w := range a.ranks {
		if b.Rank(w) == Undefined {
			return false
		}
	}
	return true
}
