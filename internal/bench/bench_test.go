package bench

import (
	"strings"
	"testing"

	"gompi"
)

func TestTable1MatchesPaper(t *testing.T) {
	isend, put, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if isend.Counters.TotalInstr != 221 {
		t.Errorf("Isend total = %d, want 221", isend.Counters.TotalInstr)
	}
	if put.Counters.TotalInstr != 217 {
		t.Errorf("Put total = %d, want 217 (the paper's Table 1 rows sum to 217)", put.Counters.TotalInstr)
	}
	var sb strings.Builder
	WriteTable1(&sb, isend, put)
	for _, want := range []string{"Error checking", "74", "221", "MPI mandatory overheads"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("table output missing %q:\n%s", want, sb.String())
		}
	}
}

func TestFigure2LadderMonotone(t *testing.T) {
	isends, puts, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(isends) != len(BuildLadder) {
		t.Fatalf("got %d points", len(isends))
	}
	// Original must dwarf everything; the ch4 ladder must strictly
	// decrease.
	if isends[0].Counters.TotalInstr != 253 || puts[0].Counters.TotalInstr != 1342 {
		t.Errorf("original = %d/%d, want 253/1342",
			isends[0].Counters.TotalInstr, puts[0].Counters.TotalInstr)
	}
	for i := 2; i < len(isends); i++ {
		if isends[i].Counters.TotalInstr >= isends[i-1].Counters.TotalInstr {
			t.Errorf("isend ladder not decreasing at %d", i)
		}
		if puts[i].Counters.TotalInstr >= puts[i-1].Counters.TotalInstr {
			t.Errorf("put ladder not decreasing at %d", i)
		}
	}
	last := len(isends) - 1
	if isends[last].Counters.TotalInstr != 59 || puts[last].Counters.TotalInstr != 44 {
		t.Errorf("ipo = %d/%d, want 59/44",
			isends[last].Counters.TotalInstr, puts[last].Counters.TotalInstr)
	}
	var sb strings.Builder
	WriteFigure2(&sb, isends, puts)
	if !strings.Contains(sb.String(), "1342") {
		t.Error("figure 2 output missing original Put count")
	}
}

func TestMessageRatesOrdering(t *testing.T) {
	for _, fab := range []string{"ofi", "ucx", "inf"} {
		pts, err := MessageRates(fab, 300)
		if err != nil {
			t.Fatalf("%s: %v", fab, err)
		}
		if len(pts) != len(BuildLadder) {
			t.Fatalf("%s: %d points", fab, len(pts))
		}
		// Every optimization step must not slow either operation; the
		// endpoints must show a real gain.
		for i := 1; i < len(pts); i++ {
			if pts[i].IsendRate < pts[i-1].IsendRate*0.999 {
				t.Errorf("%s: isend rate fell at %s", fab, pts[i].Label)
			}
			if pts[i].PutRate < pts[i-1].PutRate*0.999 {
				t.Errorf("%s: put rate fell at %s", fab, pts[i].Label)
			}
		}
		last := len(pts) - 1
		if pts[last].IsendRate <= pts[0].IsendRate {
			t.Errorf("%s: no isend gain", fab)
		}
		if pts[last].PutRate <= pts[0].PutRate {
			t.Errorf("%s: no put gain", fab)
		}
	}
}

// TestRealNetworkGains pins the headline Figure 3 shape: ~50% Isend
// gain and ~4x Put gain on the OFI fabric between Original and the ipo
// build.
func TestRealNetworkGains(t *testing.T) {
	pts, err := MessageRates("ofi", 400)
	if err != nil {
		t.Fatal(err)
	}
	first, last := pts[0], pts[len(pts)-1]
	isendGain := last.IsendRate / first.IsendRate
	putGain := last.PutRate / first.PutRate
	if isendGain < 1.3 || isendGain > 1.8 {
		t.Errorf("isend gain %.2fx, want ~1.5x", isendGain)
	}
	if putGain < 3.0 || putGain > 5.5 {
		t.Errorf("put gain %.2fx, want ~4x", putGain)
	}
}

// TestInfiniteNetworkSpread pins the Figure 5 shape: orders of
// magnitude between Original Put and the ipo build.
func TestInfiniteNetworkSpread(t *testing.T) {
	pts, err := MessageRates("inf", 300)
	if err != nil {
		t.Fatal(err)
	}
	first, last := pts[0], pts[len(pts)-1]
	if last.PutRate/first.PutRate < 20 {
		t.Errorf("infinite-network put spread only %.1fx", last.PutRate/first.PutRate)
	}
	// ipo Isend on the infinite network: 2.2 GHz / 59 instr ~ 37 M/s.
	if last.IsendRate < 30e6 || last.IsendRate > 45e6 {
		t.Errorf("ipo isend rate %.3g, want ~37M", last.IsendRate)
	}
}

// TestProposalLadderPeak pins the Figure 6 peak: the all-opts path at
// 16 instructions reaches ~137 M msg/s at 2.2 GHz (the paper reports
// 132.8M on their hardware).
func TestProposalLadderPeak(t *testing.T) {
	pts, err := ProposalLadder(300)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("%d ladder points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Rate < pts[i-1].Rate {
			t.Errorf("ladder rate fell at %s", pts[i].Label)
		}
	}
	peak := pts[len(pts)-1]
	if peak.Label != "all_opts" || peak.Instr != 16 {
		t.Errorf("peak = %+v, want all_opts at 16 instructions", peak)
	}
	if peak.Rate < 120e6 || peak.Rate > 145e6 {
		t.Errorf("peak rate %.4g msg/s, want ~137M", peak.Rate)
	}
	var sb strings.Builder
	WriteProposals(&sb, pts)
	if !strings.Contains(sb.String(), "all_opts") {
		t.Error("proposal output incomplete")
	}
}

func TestProposalSavingsRows(t *testing.T) {
	rows, base, err := ProposalSavings()
	if err != nil {
		t.Fatal(err)
	}
	if base != 59 {
		t.Errorf("baseline = %d, want 59", base)
	}
	want := map[string]int64{
		"glob_rank (3.1)":    11,
		"predef_comm (3.3)":  7,
		"no_proc_null (3.4)": 3,
		"no_req (3.5)":       10,
		"no_match (3.6)":     4,
		"all_opts (3.7)":     43,
	}
	for _, r := range rows {
		if w, ok := want[r.Name]; ok && r.Savings != w {
			t.Errorf("%s saved %d, want %d", r.Name, r.Savings, w)
		}
	}
	var sb strings.Builder
	WriteProposalSavings(&sb, rows, base)
	if !strings.Contains(sb.String(), "glob_rank") {
		t.Error("savings output incomplete")
	}
}

func TestNekSweepSmall(t *testing.T) {
	pts, err := NekSweep(NekSweepOptions{
		RankGrid: [3]int{2, 2, 1},
		Orders:   []int{3, 5},
		MaxEPerP: 8,
		Iters:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2*4 {
		t.Fatalf("%d points", len(pts))
	}
	// At the smallest E/P, ch4 must win; performance must grow with
	// n/P for each order.
	for _, p := range pts {
		if p.EPerRank == 1 && p.Ratio <= 1.0 {
			t.Errorf("N=%d E/P=1: ratio %.3f <= 1", p.N, p.Ratio)
		}
		if p.PerfLite <= 0 || p.PerfStd <= 0 {
			t.Errorf("bad perf: %+v", p)
		}
	}
	var sb strings.Builder
	WriteNek(&sb, pts)
	if !strings.Contains(sb.String(), "Ratio") {
		t.Error("nek output incomplete")
	}
}

func TestLammpsSweepSmall(t *testing.T) {
	pts, err := LammpsSweep(LammpsSweepOptions{
		RankGrid: [3]int{2, 2, 2},
		Steps:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("%d points", len(pts))
	}
	// Rates must rise toward the scaling limit; ch4's advantage must
	// grow; original's efficiency must fall faster. At the most
	// work-dominated points the two devices may tie (the paper: "away
	// from the strong-scale limit... little benefit"), so ch4 must
	// never be meaningfully slower anywhere and must win clearly at
	// the limit.
	for i, p := range pts {
		if p.RateCh4 <= 0 || p.RateOrig <= 0 {
			t.Fatalf("bad rates at %d: %+v", i, p)
		}
		if p.RateCh4 < p.RateOrig*0.995 {
			t.Errorf("nodes=%d: ch4 %.0f below orig %.0f", p.Nodes, p.RateCh4, p.RateOrig)
		}
	}
	if last := pts[len(pts)-1]; last.RateCh4 <= last.RateOrig*1.02 {
		t.Errorf("no clear win at the scaling limit: %+v", last)
	}
	if !(pts[len(pts)-1].SpeedupPct > pts[0].SpeedupPct) {
		t.Errorf("speedup should grow with scale: %+v", pts)
	}
	if !(pts[len(pts)-1].EffOrig < pts[len(pts)-1].EffCh4) {
		t.Errorf("original should lose efficiency faster: %+v", pts[len(pts)-1])
	}
	var sb strings.Builder
	WriteLammps(&sb, pts)
	if !strings.Contains(sb.String(), "Speedup") {
		t.Error("lammps output incomplete")
	}
}

func TestOSUSweepShape(t *testing.T) {
	pts, err := OSUSweep(gompi.Config{Device: "ch4", Fabric: "ofi"}, 1<<14, 20, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 4 {
		t.Fatalf("%d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].LatencyUs < pts[i-1].LatencyUs*0.999 {
			t.Errorf("latency fell at %dB: %v -> %v", pts[i].Bytes, pts[i-1].LatencyUs, pts[i].LatencyUs)
		}
		if pts[i].BandwidthMBs <= pts[i-1].BandwidthMBs {
			t.Errorf("bandwidth not rising at %dB", pts[i].Bytes)
		}
	}
	// Small-message latency should be in the ~1 us ballpark (wire
	// latency + software path at 2.2 GHz).
	if pts[0].LatencyUs < 0.5 || pts[0].LatencyUs > 5 {
		t.Errorf("1B latency %v us", pts[0].LatencyUs)
	}
}
