package bench

import (
	"fmt"

	"gompi"
)

// ExchangeRanks is the world size of the ExchangeStats workload.
const ExchangeRanks = 4

// ExchangeStats runs the observability reference workload: a 4-rank
// all-pairs exchange with 2 ranks per node, so the self, shmmod, and
// netmod paths all carry traffic (on the ch4 device; the baseline
// lowers everything to the netmod). Each rank sends two messages to
// every peer including itself — one of msgBytes and one of 4x the
// fabric's eager limit, so both the eager and rendezvous protocols
// fire — and the teardown snapshot is returned for inspection. In the
// aggregate snapshot the shm_send/shm_recv and net_send/net_recv byte
// counters balance exactly: every byte leaving one rank's send counter
// arrives on some rank's receive counter.
//
// cfg's Device, Build, Trace, and Profiler fields are honored; the
// world geometry, fabric default ("ofi" when unset), and traffic
// pattern are fixed so results are comparable across devices.
//
// The body declares three phase regions — "post" (receive posting),
// "exchange" (sends plus completion), and "compute" (a modeled
// application pass over the received bytes at one cycle per eight
// bytes) — so the snapshot's Efficiency() report carries per-phase rows
// and a nonzero useful-cycle term for Load Balance.
func ExchangeStats(cfg gompi.Config, msgBytes int) (*gompi.Stats, error) {
	if msgBytes <= 0 {
		msgBytes = 1024
	}
	if cfg.Fabric == "" {
		cfg.Fabric = gompi.FabricOFI
	}
	cfg.RanksPerNode = 2
	big := 4 * 8192 // past every profile's eager limit
	return gompi.RunStats(ExchangeRanks, cfg, func(p *gompi.Proc) error {
		w := p.World()
		n := p.Size()
		var reqs []*gompi.Request
		post := func(bytes, tag int) error {
			for peer := 0; peer < n; peer++ {
				buf := make([]byte, bytes)
				r, err := w.Irecv(buf, bytes, gompi.Byte, peer, tag)
				if err != nil {
					return err
				}
				reqs = append(reqs, r)
			}
			return nil
		}
		// Post all receives before sending: with every rank doing the
		// same, the exchange cannot deadlock regardless of protocol.
		err := p.Phase("post", func() error {
			if err := post(msgBytes, 1); err != nil {
				return err
			}
			return post(big, 2)
		})
		if err != nil {
			return err
		}
		err = p.Phase("exchange", func() error {
			small := make([]byte, msgBytes)
			large := make([]byte, big)
			for peer := 0; peer < n; peer++ {
				r, err := w.Isend(small, msgBytes, gompi.Byte, peer, 1)
				if err != nil {
					return err
				}
				reqs = append(reqs, r)
				r, err = w.Isend(large, big, gompi.Byte, peer, 2)
				if err != nil {
					return err
				}
				reqs = append(reqs, r)
			}
			return gompi.Waitall(reqs)
		})
		if err != nil {
			return err
		}
		return p.Phase("compute", func() error {
			p.ChargeCompute(int64(n*(msgBytes+big)) / 8)
			return nil
		})
	})
}

// CheckExchangeBalance verifies the conservation property of an
// ExchangeStats snapshot: aggregate send bytes equal aggregate receive
// bytes on both the shm and net paths.
func CheckExchangeBalance(st *gompi.Stats) error {
	agg := st.Aggregate()
	if agg.ShmSend.Bytes != agg.ShmRecv.Bytes {
		return fmt.Errorf("shm bytes unbalanced: sent %d received %d", agg.ShmSend.Bytes, agg.ShmRecv.Bytes)
	}
	if agg.NetSend.Bytes != agg.NetRecv.Bytes {
		return fmt.Errorf("net bytes unbalanced: sent %d received %d", agg.NetSend.Bytes, agg.NetRecv.Bytes)
	}
	if agg.ShmSend.Msgs != agg.ShmRecv.Msgs {
		return fmt.Errorf("shm messages unbalanced: sent %d received %d", agg.ShmSend.Msgs, agg.ShmRecv.Msgs)
	}
	if agg.NetSend.Msgs != agg.NetRecv.Msgs {
		return fmt.Errorf("net messages unbalanced: sent %d received %d", agg.NetSend.Msgs, agg.NetRecv.Msgs)
	}
	return nil
}
