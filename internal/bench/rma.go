package bench

import (
	"fmt"
	"io"

	"gompi"
)

// RmaPoint is one measurement of the one-sided sweep: a batch of
// back-to-back operations of Bytes bytes from rank 0 into rank 1's
// shm-backed window inside one passive LockAll epoch, completed by a
// single Flush, on a 2-rank single-node layout. Mode selects the
// intra-node cost model: "zerocopy" is the direct-placement path,
// "staged" is the RmaStagedShm ablation that fragments every payload
// through the cell model.
type RmaPoint struct {
	Op    string `json:"op"`   // "put", "get", or "fetch_op"
	Mode  string `json:"mode"` // "zerocopy" or "staged"
	Bytes int    `json:"bytes"`
	// LatencyUs is rank 0's per-operation virtual time in model
	// microseconds (batch divided by iterations, flush included).
	LatencyUs float64 `json:"latency_us"`
	// RateMops is the corresponding message rate in million ops/s.
	RateMops float64 `json:"rate_mops"`
	// FlushUs is the cost of the single Flush that completed the batch.
	FlushUs float64 `json:"flush_us"`
	// Copy accounting across the whole job: the zero-copy arm must show
	// zero staged copies.
	CopiesStaged int64 `json:"copies_staged"`
	CopiesDirect int64 `json:"copies_direct"`
}

// RmaSizes is the default sweep, straddling RmaShmEagerMax on both
// sides so the crossover shows in the output.
var RmaSizes = []int{8, 512, 4096, 16384, 65536, 262144}

// RmaShmEagerMax is the shm threshold the sweep runs under; the
// acceptance gate compares the arms at every size above it.
const RmaShmEagerMax = 4096

// RmaIters is the batch size per point.
const RmaIters = 50

// RmaSweep measures Put and Get at each size under both intra-node
// cost models, plus the 8-byte FetchAndOp rate (the atomics floor).
func RmaSweep(sizes []int) ([]RmaPoint, error) {
	if len(sizes) == 0 {
		sizes = RmaSizes
	}
	var out []RmaPoint
	for _, mode := range []string{"zerocopy", "staged"} {
		for _, op := range []string{"put", "get"} {
			for _, n := range sizes {
				pt, err := rmaPoint(op, mode, n)
				if err != nil {
					return nil, fmt.Errorf("rma %s %s n=%d: %w", op, mode, n, err)
				}
				out = append(out, pt)
			}
		}
		pt, err := rmaPoint("fetch_op", mode, 8)
		if err != nil {
			return nil, fmt.Errorf("rma fetch_op %s: %w", mode, err)
		}
		out = append(out, pt)
	}
	return out, nil
}

// rmaPoint runs one batch and reads the clocks and copy counters back
// out.
func rmaPoint(op, mode string, n int) (RmaPoint, error) {
	cfg := gompi.Config{
		RanksPerNode: 2, Fabric: gompi.FabricOFI,
		ShmEagerMax:  RmaShmEagerMax,
		RmaStagedShm: mode == "staged",
	}
	var opCycles, flushCycles int64
	var hz float64
	st, err := gompi.RunStats(2, cfg, func(p *gompi.Proc) error {
		w := p.World()
		win, _, err := w.WinAllocate(n+8, 1)
		if err != nil {
			return err
		}
		if err := win.LockAll(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			hz = p.ClockHz()
			buf := make([]byte, n)
			result := make([]byte, 8)
			start := p.VirtualCycles()
			for i := 0; i < RmaIters; i++ {
				switch op {
				case "put":
					err = win.Put(buf, n, gompi.Byte, 1, 0)
				case "get":
					err = win.Get(buf, n, gompi.Byte, 1, 0)
				case "fetch_op":
					err = win.FetchAndOp(buf[:8], result, gompi.Long, 1, 0, gompi.OpSum)
				}
				if err != nil {
					return err
				}
			}
			fstart := p.VirtualCycles()
			if err := win.Flush(1); err != nil {
				return err
			}
			end := p.VirtualCycles()
			opCycles = end - start
			flushCycles = end - fstart
		}
		if err := win.UnlockAll(); err != nil {
			return err
		}
		if err := w.Barrier(); err != nil {
			return err
		}
		return win.Free()
	})
	if err != nil {
		return RmaPoint{}, err
	}
	pt := RmaPoint{Op: op, Mode: mode, Bytes: n}
	if hz > 0 {
		perOp := float64(opCycles) / RmaIters
		pt.LatencyUs = perOp / hz * 1e6
		if perOp > 0 {
			pt.RateMops = hz / perOp / 1e6
		}
		pt.FlushUs = float64(flushCycles) / hz * 1e6
	}
	agg := st.Aggregate()
	pt.CopiesStaged = agg.CopiesStaged.Msgs
	pt.CopiesDirect = agg.CopiesDirect.Msgs
	return pt, nil
}

// WriteRma renders the sweep as a table.
func WriteRma(w io.Writer, pts []RmaPoint) {
	fmt.Fprintf(w, "One-sided shm sweep: 2 ranks, 1 node, %d ops/batch, ShmEagerMax %d\n", RmaIters, RmaShmEagerMax)
	fmt.Fprintf(w, "%-9s %-9s %9s %12s %10s %10s %8s %8s\n",
		"op", "mode", "bytes", "latency_us", "rate_Mops", "flush_us", "staged", "direct")
	for _, p := range pts {
		fmt.Fprintf(w, "%-9s %-9s %9d %12.3f %10.3f %10.3f %8d %8d\n",
			p.Op, p.Mode, p.Bytes, p.LatencyUs, p.RateMops, p.FlushUs, p.CopiesStaged, p.CopiesDirect)
	}
}
