package bench

import (
	"fmt"
	"io"
)

// rateUnit renders a message rate the way the paper's axes do (M msg/s).
func rateUnit(r float64) string {
	switch {
	case r >= 1e6:
		return fmt.Sprintf("%7.2fM", r/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%7.2fK", r/1e3)
	default:
		return fmt.Sprintf("%8.1f", r)
	}
}

// WriteTable1 renders the Table 1 breakdown.
func WriteTable1(w io.Writer, isend, put Breakdown) {
	fmt.Fprintf(w, "Table 1: Instruction analysis for MPI calls (device=ch4, build=default)\n")
	fmt.Fprintf(w, "%-28s %12s %12s\n", "Reason", "MPI_ISEND", "MPI_PUT")
	rows := []struct {
		name string
		a, b int64
	}{
		{"Error checking", isend.Counters.ErrorCheck, put.Counters.ErrorCheck},
		{"Thread-safety check", isend.Counters.ThreadCheck, put.Counters.ThreadCheck},
		{"MPI function call", isend.Counters.Call, put.Counters.Call},
		{"Redundant runtime checks", isend.Counters.Redundant, put.Counters.Redundant},
		{"MPI mandatory overheads", isend.Counters.Mandatory, put.Counters.Mandatory},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %12d %12d\n", r.name, r.a, r.b)
	}
	fmt.Fprintf(w, "%-28s %12d %12d\n", "Total", isend.Counters.TotalInstr, put.Counters.TotalInstr)
}

// WriteFigure2 renders the build-ladder instruction totals.
func WriteFigure2(w io.Writer, isends, puts []Breakdown) {
	fmt.Fprintf(w, "Figure 2: MPI instruction counts\n")
	fmt.Fprintf(w, "%-32s %10s %10s\n", "Build", "MPI_ISEND", "MPI_PUT")
	for i := range isends {
		fmt.Fprintf(w, "%-32s %10d %10d\n", isends[i].Device,
			isends[i].Counters.TotalInstr, puts[i].Counters.TotalInstr)
	}
}

// WriteRates renders a Figure 3/4/5 rate table.
func WriteRates(w io.Writer, title string, pts []RatePoint) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-32s %12s %12s\n", "Build", "MPI_ISEND", "MPI_PUT")
	for _, p := range pts {
		fmt.Fprintf(w, "%-32s %12s %12s\n", p.Label, rateUnit(p.IsendRate), rateUnit(p.PutRate))
	}
}

// WriteProposals renders the Figure 6 ladder.
func WriteProposals(w io.Writer, pts []ProposalPoint) {
	fmt.Fprintf(w, "Figure 6: MPI standard improvements for MPI_ISEND (infinitely fast network)\n")
	fmt.Fprintf(w, "%-16s %12s %8s\n", "Proposal", "Rate", "Instr")
	for _, p := range pts {
		fmt.Fprintf(w, "%-16s %12s %8d\n", p.Label, rateUnit(p.Rate), p.Instr)
	}
}

// WriteProposalSavings renders the Section 3 savings rows.
func WriteProposalSavings(w io.Writer, rows []ProposalSaving, base int64) {
	fmt.Fprintf(w, "Section 3 per-proposal instruction savings (baseline MPI-3.1 ipo Isend = %d)\n", base)
	fmt.Fprintf(w, "%-22s %8s %8s\n", "Proposal", "Instr", "Saved")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %8d %8d\n", r.Name, r.Instr, r.Savings)
	}
}

// WriteNek renders the Figure 7 table.
func WriteNek(w io.Writer, pts []NekPoint) {
	fmt.Fprintf(w, "Figure 7: Nek5000 mass-matrix inversion (Std = MPICH/Original, Lite = MPICH/CH4)\n")
	fmt.Fprintf(w, "%3s %6s %8s %14s %14s %8s %8s %8s\n",
		"N", "E/P", "n/P", "Std [pi/ps]", "Lite [pi/ps]", "Ratio", "EffStd", "EffLite")
	for _, p := range pts {
		fmt.Fprintf(w, "%3d %6d %8d %14.3e %14.3e %8.3f %8.3f %8.3f\n",
			p.N, p.EPerRank, p.NOverP, p.PerfStd, p.PerfLite, p.Ratio, p.EffStd, p.EffLite)
	}
}

// WriteLammps renders the Figure 8 table.
func WriteLammps(w io.Writer, pts []LammpsPoint) {
	fmt.Fprintf(w, "Figure 8: LAMMPS strong scaling (LJ melt)\n")
	fmt.Fprintf(w, "%6s %12s %10s %14s %14s %10s %8s %8s\n",
		"Nodes", "atoms/core", "actual", "CH4 [ts/s]", "Orig [ts/s]", "Speedup%", "EffCH4", "EffOrig")
	for _, p := range pts {
		fmt.Fprintf(w, "%6d %12d %10.1f %14.1f %14.1f %10.1f %8.3f %8.3f\n",
			p.Nodes, p.AtomsPerCore, p.ActualAPC, p.RateCh4, p.RateOrig, p.SpeedupPct, p.EffCh4, p.EffOrig)
	}
}

// WriteRatesCSV emits a message-rate figure as CSV for plotting.
func WriteRatesCSV(w io.Writer, pts []RatePoint) {
	fmt.Fprintln(w, "build,isend_msgs_per_sec,put_msgs_per_sec")
	for _, p := range pts {
		fmt.Fprintf(w, "%q,%.0f,%.0f\n", p.Label, p.IsendRate, p.PutRate)
	}
}

// WriteNekCSV emits the Figure 7 series as CSV.
func WriteNekCSV(w io.Writer, pts []NekPoint) {
	fmt.Fprintln(w, "N,elems_per_rank,n_over_p,std_pips,lite_pips,ratio,eff_std,eff_lite")
	for _, p := range pts {
		fmt.Fprintf(w, "%d,%d,%d,%.6e,%.6e,%.4f,%.4f,%.4f\n",
			p.N, p.EPerRank, p.NOverP, p.PerfStd, p.PerfLite, p.Ratio, p.EffStd, p.EffLite)
	}
}

// WriteLammpsCSV emits the Figure 8 series as CSV.
func WriteLammpsCSV(w io.Writer, pts []LammpsPoint) {
	fmt.Fprintln(w, "nodes,atoms_per_core,actual_apc,ch4_ts_per_sec,orig_ts_per_sec,speedup_pct,eff_ch4,eff_orig")
	for _, p := range pts {
		fmt.Fprintf(w, "%d,%d,%.1f,%.1f,%.1f,%.2f,%.4f,%.4f\n",
			p.Nodes, p.AtomsPerCore, p.ActualAPC, p.RateCh4, p.RateOrig, p.SpeedupPct, p.EffCh4, p.EffOrig)
	}
}

// WriteProposalsCSV emits the Figure 6 ladder as CSV.
func WriteProposalsCSV(w io.Writer, pts []ProposalPoint) {
	fmt.Fprintln(w, "proposal,msgs_per_sec,instructions")
	for _, p := range pts {
		fmt.Fprintf(w, "%q,%.0f,%d\n", p.Label, p.Rate, p.Instr)
	}
}
