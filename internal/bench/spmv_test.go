package bench

import "testing"

// TestSpmvDeclaredShapeWins is the PR's headline acceptance guard: on
// the SpMV halo exchange, the declared-shape paths (persistent
// neighborhood collective, partitioned pt2pt) must beat per-call
// Isend/Irecv in both virtual time and charged MPI instructions at
// every default sweep size.
func TestSpmvDeclaredShapeWins(t *testing.T) {
	pts, err := SpmvSweep(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	base := map[int]SpmvPoint{}
	for _, p := range pts {
		if p.Mode == "percall" {
			base[p.HaloBytes] = p
		}
	}
	for _, p := range pts {
		if p.Mode == "percall" {
			continue
		}
		pc, ok := base[p.HaloBytes]
		if !ok {
			t.Fatalf("no percall baseline for halo %d", p.HaloBytes)
		}
		if p.LatencyUs >= pc.LatencyUs {
			t.Errorf("%s halo=%d: latency %.3fus not below percall %.3fus",
				p.Mode, p.HaloBytes, p.LatencyUs, pc.LatencyUs)
		}
		if p.MPIInstr >= pc.MPIInstr {
			t.Errorf("%s halo=%d: %d MPI instr not below percall %d",
				p.Mode, p.HaloBytes, p.MPIInstr, pc.MPIInstr)
		}
	}
}

// TestPersistSweep checks the Init/first/replay split: replay must not
// exceed the first activation, and every Start must be a cache hit
// (hits = (1 first + persistReplays) * ranks, misses = ranks).
func TestPersistSweep(t *testing.T) {
	pts, err := PersistSweep([]int{64})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.ReplayUs > p.FirstUs {
			t.Errorf("%s: replay %.3fus exceeds first activation %.3fus",
				p.Collective, p.ReplayUs, p.FirstUs)
		}
		wantHits := int64((1 + persistReplays) * spmvRanks)
		if p.SchedHits != wantHits {
			t.Errorf("%s: sched cache hits = %d, want %d", p.Collective, p.SchedHits, wantHits)
		}
		if p.SchedMisses != int64(spmvRanks) {
			t.Errorf("%s: sched cache misses = %d, want %d", p.Collective, p.SchedMisses, spmvRanks)
		}
	}
}
