package bench

import (
	"bytes"
	"strings"
	"testing"

	"gompi"
)

// checkMetrics fails when any of the five efficiencies leaves [0,1].
func checkMetrics(t *testing.T, where string, m gompi.EfficiencyMetrics) {
	t.Helper()
	for name, v := range map[string]float64{
		"PE": m.ParallelEff, "LB": m.LoadBalance, "CommE": m.CommEff,
		"SerE": m.SerEff, "TE": m.TransferEff,
	} {
		if v < 0 || v > 1 {
			t.Fatalf("%s: %s = %g outside [0,1]", where, name, v)
		}
	}
}

// TestExchangeEfficiencyReport is the acceptance criterion: RunStats on
// the reference 4-rank, 2-per-node exchange yields a full POP report —
// every metric in [0,1], all four ranks valid, and per-phase rows for
// the exchange's named regions.
func TestExchangeEfficiencyReport(t *testing.T) {
	for _, dev := range []gompi.DeviceKind{gompi.DeviceCH4, gompi.DeviceOriginal} {
		dev := dev
		t.Run(string(dev), func(t *testing.T) {
			st, err := ExchangeStats(gompi.Config{Device: dev}, 1024)
			if err != nil {
				t.Fatal(err)
			}
			rep := st.Efficiency()
			if rep.Ranks != ExchangeRanks || rep.Excluded != 0 {
				t.Fatalf("ranks=%d excluded=%d", rep.Ranks, rep.Excluded)
			}
			checkMetrics(t, "run", rep.Metrics)
			if rep.ParallelEff <= 0 {
				t.Fatalf("PE = %g, want > 0 (the workload charges compute)", rep.ParallelEff)
			}
			byName := map[string]bool{}
			for _, ph := range rep.Phases {
				byName[ph.Name] = true
				checkMetrics(t, "phase "+ph.Name, ph.Metrics)
				if ph.Ranks != ExchangeRanks {
					t.Fatalf("phase %s covers %d ranks", ph.Name, ph.Ranks)
				}
			}
			for _, want := range []string{"post", "exchange", "compute"} {
				if !byName[want] {
					t.Fatalf("report missing phase %q (have %v)", want, byName)
				}
			}
			var buf bytes.Buffer
			if err := st.WriteEfficiencyReport(&buf); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			for _, want := range []string{"Parallel Efficiency", "exchange", "compute"} {
				if !strings.Contains(out, want) {
					t.Fatalf("rendered report missing %q:\n%s", want, out)
				}
			}
		})
	}
}

// TestEfficiencySweep smoke-tests the strong-scaling sweep at two small
// world sizes with the full trial discipline.
func TestEfficiencySweep(t *testing.T) {
	sweep, err := EfficiencySweep([]int{1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Points) != 2 || sweep.SerialCycles != sweep.ComputeCycles {
		t.Fatalf("sweep shape: %+v", sweep)
	}
	for _, p := range sweep.Points {
		if p.Trials != 3 || p.RuntimeCycles <= 0 {
			t.Fatalf("np=%d point %+v", p.NP, p)
		}
		checkMetrics(t, "np", p.Efficiency)
		if p.SpeedupVsSerial <= 0 || p.SelfScaling <= 0 || p.CompScale <= 0 {
			t.Fatalf("np=%d derived ratios %+v", p.NP, p)
		}
		// The serial program pays no MPI cost, so speedup-vs-serial can
		// never exceed self-scaling (which is measured against a baseline
		// that already carries the MPI codepath).
		if p.SpeedupVsSerial > p.SelfScaling+1e-9 {
			t.Fatalf("np=%d: vs-serial %.3f > self %.3f", p.NP, p.SpeedupVsSerial, p.SelfScaling)
		}
	}
	// np=1 self-scales to exactly 1 by construction.
	if s := sweep.Points[0].SelfScaling; s != 1 {
		t.Fatalf("np=1 self-scaling %g", s)
	}
	// Scaling up must not slow the run down in absolute terms: the np=2
	// runtime (half the work per rank plus communication) stays below
	// the np=1 runtime for this workload.
	if sweep.Points[1].RuntimeCycles >= sweep.Points[0].RuntimeCycles {
		t.Fatalf("np=2 runtime %d >= np=1 runtime %d",
			sweep.Points[1].RuntimeCycles, sweep.Points[0].RuntimeCycles)
	}
	var buf bytes.Buffer
	WriteScalingTable(&buf, sweep)
	if !strings.Contains(buf.String(), "strong scaling") {
		t.Fatalf("table: %s", buf.String())
	}
}
