package bench

import (
	"fmt"
	"io"
	"sort"

	"gompi"
)

// ScalingPoint is one world size of the strong-scaling efficiency
// sweep: the same total work divided over NP ranks, run Trials times
// with the median reported. Both speedup conventions are reported
// (see SNIPPETS §1): speedup versus the serial program, which pays no
// MPI cost at all, and self-scaling versus this implementation's own
// smallest-np run, which isolates parallel efficiency from single-rank
// MPI overhead. The POP hierarchy of the median trial rides along, so
// a scaling regression decomposes immediately into load balance versus
// serialization versus transfer.
type ScalingPoint struct {
	NP     int `json:"np"`
	Trials int `json:"trials"`
	// RuntimeCycles is the slowest rank's virtual clock at teardown,
	// median across trials (virtual time is deterministic, so the
	// trials agree bit-for-bit; the median discipline is kept so the
	// harness stays honest if nondeterminism ever creeps in).
	RuntimeCycles int64 `json:"runtime_cycles"`
	// SpeedupVsSerial is serial_cycles / runtime: the HPC-convention
	// speedup against the no-MPI baseline.
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
	// SelfScaling is runtime(first np) / runtime(this np): scaling
	// within the MPI codepath itself.
	SelfScaling float64 `json:"self_scaling"`
	// CompScale is the POP Computation Scaling term: the reference
	// run's total useful cycles over this run's (extra work introduced
	// by parallelisation pushes it below 1).
	CompScale float64 `json:"computation_scaling"`
	// GlobalEff is Parallel Efficiency × Computation Scaling.
	GlobalEff float64 `json:"global_efficiency"`
	// Efficiency is the POP hierarchy of the median trial.
	Efficiency gompi.EfficiencyMetrics `json:"efficiency"`
}

// ScalingSweep is the whole np sweep of the strong-scaling workload.
type ScalingSweep struct {
	// Workload names the traffic pattern for the BENCH document.
	Workload string `json:"workload"`
	// ComputeCycles is the total useful work W divided among ranks.
	ComputeCycles int64 `json:"compute_cycles"`
	// SerialCycles is the serial baseline: the same W with no MPI
	// codepath at all (no init, no halo buffers, no allreduce), which
	// in the virtual-cost model is exactly W cycles.
	SerialCycles int64          `json:"serial_cycles"`
	Trials       int            `json:"trials"`
	Points       []ScalingPoint `json:"points"`
}

// scalingWork is the sweep's total useful work: divisible by every
// np×iters combination below so strong scaling divides it exactly.
const scalingWork = 1 << 22

// scalingIters is the number of compute+halo+allreduce iterations.
const scalingIters = 4

// EfficiencySweep runs the strong-scaling workload at each np (typically
// {1, 2, 4, 8}) with trials repetitions and median reduction. The
// workload is a stencil step: per iteration each rank charges its share
// of the fixed W compute cycles inside a "compute" phase, exchanges a
// 1 KiB halo with its ±1 neighbors inside a "halo" phase, and reduces
// 8 doubles inside an "allreduce" phase — 2 ranks per node, so both the
// shm and net transports carry traffic from np=4 up.
func EfficiencySweep(nps []int, trials int) (*ScalingSweep, error) {
	if len(nps) == 0 {
		nps = []int{1, 2, 4, 8}
	}
	if trials <= 0 {
		trials = 3
	}
	sweep := &ScalingSweep{
		Workload:      "stencil: compute + 1KiB halo(±1) + 8-double allreduce, 4 iters, 2 ranks/node",
		ComputeCycles: scalingWork,
		SerialCycles:  scalingWork,
		Trials:        trials,
	}
	var baseRuntime int64
	var refUseful float64
	for i, np := range nps {
		pt, rep, err := scalingPoint(np, trials)
		if err != nil {
			return nil, fmt.Errorf("np=%d: %w", np, err)
		}
		useful := rep.AvgUsefulCycles * float64(rep.Ranks)
		if i == 0 {
			baseRuntime = pt.RuntimeCycles
			refUseful = useful
		}
		pt.SpeedupVsSerial = float64(sweep.SerialCycles) / float64(pt.RuntimeCycles)
		pt.SelfScaling = float64(baseRuntime) / float64(pt.RuntimeCycles)
		if useful > 0 {
			pt.CompScale = refUseful / useful
		}
		pt.GlobalEff = pt.Efficiency.ParallelEff * pt.CompScale
		sweep.Points = append(sweep.Points, pt)
	}
	return sweep, nil
}

// scalingPoint runs one np trials times and median-reduces.
func scalingPoint(np, trials int) (ScalingPoint, gompi.EfficiencyReport, error) {
	type trial struct {
		runtime int64
		report  gompi.EfficiencyReport
	}
	runs := make([]trial, 0, trials)
	for t := 0; t < trials; t++ {
		st, err := gompi.RunStats(np, gompi.Config{
			Device: gompi.DeviceCH4, Fabric: gompi.FabricOFI, RanksPerNode: 2,
		}, scalingBody(np))
		if err != nil {
			return ScalingPoint{}, gompi.EfficiencyReport{}, err
		}
		rep := st.Efficiency()
		runs = append(runs, trial{runtime: rep.RuntimeCycles, report: rep})
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].runtime < runs[j].runtime })
	med := runs[len(runs)/2]
	runtime := med.runtime
	if len(runs)%2 == 0 {
		runtime = (runs[len(runs)/2-1].runtime + runs[len(runs)/2].runtime) / 2
	}
	return ScalingPoint{
		NP:            np,
		Trials:        trials,
		RuntimeCycles: runtime,
		Efficiency:    med.report.Metrics,
	}, med.report, nil
}

// scalingBody is the per-rank stencil step of the sweep's workload.
func scalingBody(np int) func(p *gompi.Proc) error {
	perIter := int64(scalingWork / (np * scalingIters))
	return func(p *gompi.Proc) error {
		w := p.World()
		me := p.Rank()
		var neighbors []int
		for _, d := range []int{-1, 1} {
			if nb := me + d; nb >= 0 && nb < np {
				neighbors = append(neighbors, nb)
			}
		}
		sbuf := make([]byte, 1024)
		rbufs := make([][]byte, len(neighbors))
		for i := range rbufs {
			rbufs[i] = make([]byte, 1024)
		}
		reqs := make([]*gompi.Request, 0, 2*len(neighbors))
		vals := make([]float64, 8)
		for it := 0; it < scalingIters; it++ {
			if err := p.Phase("compute", func() error {
				p.ChargeCompute(perIter)
				return nil
			}); err != nil {
				return err
			}
			if err := p.Phase("halo", func() error {
				reqs = reqs[:0]
				for i, nb := range neighbors {
					r, err := w.Irecv(rbufs[i], len(rbufs[i]), gompi.Byte, nb, it)
					if err != nil {
						return err
					}
					reqs = append(reqs, r)
				}
				for _, nb := range neighbors {
					r, err := w.Isend(sbuf, len(sbuf), gompi.Byte, nb, it)
					if err != nil {
						return err
					}
					reqs = append(reqs, r)
				}
				return gompi.Waitall(reqs)
			}); err != nil {
				return err
			}
			if err := p.Phase("allreduce", func() error {
				_, err := w.AllreduceFloat64(vals, gompi.OpSum)
				return err
			}); err != nil {
				return err
			}
		}
		return nil
	}
}

// WriteScalingTable renders the sweep as an aligned text table.
func WriteScalingTable(w io.Writer, s *ScalingSweep) {
	fmt.Fprintf(w, "strong scaling: %s (W=%d cycles, serial %d cycles, median of %d)\n",
		s.Workload, s.ComputeCycles, s.SerialCycles, s.Trials)
	fmt.Fprintf(w, "%4s %12s %10s %10s %8s %8s %8s %8s %8s %8s\n",
		"np", "cycles", "vs-serial", "self", "GE", "PE", "LB", "CommE", "SerE", "TE")
	for _, p := range s.Points {
		fmt.Fprintf(w, "%4d %12d %10.2fx %9.2fx %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n",
			p.NP, p.RuntimeCycles, p.SpeedupVsSerial, p.SelfScaling,
			p.GlobalEff, p.Efficiency.ParallelEff, p.Efficiency.LoadBalance,
			p.Efficiency.CommEff, p.Efficiency.SerEff, p.Efficiency.TransferEff)
	}
}
