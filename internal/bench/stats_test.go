package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"gompi"
)

// TestExchangeBalance pins the tentpole's conservation property: on
// both devices, aggregate send bytes equal aggregate receive bytes on
// every transport path of the 4-rank exchange.
func TestExchangeBalance(t *testing.T) {
	for _, dev := range []gompi.DeviceKind{gompi.DeviceCH4, gompi.DeviceOriginal} {
		dev := dev
		t.Run(string(dev), func(t *testing.T) {
			st, err := ExchangeStats(gompi.Config{Device: dev}, 1024)
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckExchangeBalance(st); err != nil {
				t.Fatal(err)
			}
			agg := st.Aggregate()
			// 4 ranks x 2 rounds x 4 destinations = 32 sends total,
			// split across self/shm/net by locality.
			total := agg.Self.Msgs + agg.ShmRecv.Msgs + agg.NetRecv.Msgs
			if total != 32 {
				t.Fatalf("delivered %d messages, want 32", total)
			}
			if dev == gompi.DeviceCH4 {
				// 2 ranks per node: each rank's 2 remote peers ride the
				// netmod, the on-node peer the shmmod, itself the
				// self-loop.
				if agg.Self.Msgs != 8 || agg.ShmRecv.Msgs != 8 || agg.NetRecv.Msgs != 16 {
					t.Fatalf("locality split self=%d shm=%d net=%d, want 8/8/16",
						agg.Self.Msgs, agg.ShmRecv.Msgs, agg.NetRecv.Msgs)
				}
				// The large round crosses every profile's eager limit.
				if agg.Eager.Msgs == 0 || agg.Rndv.Msgs == 0 {
					t.Fatalf("protocol split eager=%d rndv=%d, want both nonzero",
						agg.Eager.Msgs, agg.Rndv.Msgs)
				}
				if agg.Match.BinHits == 0 || agg.Match.WildHits != 0 {
					t.Fatalf("ch4 match hits bin=%d wild=%d, want binned only",
						agg.Match.BinHits, agg.Match.WildHits)
				}
			} else {
				// The baseline has no locality dispatch: everything is a
				// netmod AM packet matched in software (Linear mode, so
				// every hit is a wildcard-walk hit).
				if agg.Self.Msgs != 0 || agg.ShmRecv.Msgs != 0 || agg.NetRecv.Msgs != 32 {
					t.Fatalf("baseline split self=%d shm=%d net=%d, want 0/0/32",
						agg.Self.Msgs, agg.ShmRecv.Msgs, agg.NetRecv.Msgs)
				}
				if agg.Match.WildHits == 0 || agg.Match.BinHits != 0 {
					t.Fatalf("baseline match hits bin=%d wild=%d, want wildcard only",
						agg.Match.BinHits, agg.Match.WildHits)
				}
				if agg.Req.Allocs == 0 {
					t.Fatal("baseline exchanged without locked-pool request allocs")
				}
			}
		})
	}
}

// TestExchangeStatsJSON round-trips the full snapshot through JSON and
// checks the documented key shape.
func TestExchangeStatsJSON(t *testing.T) {
	st, err := ExchangeStats(gompi.Config{}, 256)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Hz    float64 `json:"hz"`
		Ranks []struct {
			Rank    int `json:"rank"`
			Metrics struct {
				NetSend struct {
					Bytes int64 `json:"bytes"`
				} `json:"net_send"`
			} `json:"metrics"`
			VirtualCycles int64 `json:"virtual_cycles"`
		} `json:"ranks"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if doc.Hz <= 0 || len(doc.Ranks) != ExchangeRanks {
		t.Fatalf("hz=%g ranks=%d", doc.Hz, len(doc.Ranks))
	}
	for _, r := range doc.Ranks {
		if r.Metrics.NetSend.Bytes == 0 || r.VirtualCycles == 0 {
			t.Fatalf("rank %d snapshot empty: %+v", r.Rank, r)
		}
	}
}
