package bench

import (
	"fmt"
	"io"
	"strings"

	"gompi"
)

// CollPoint is one measurement of the collectives sweep: one
// nonblocking collective, pinned to one algorithm family, on the
// reference 4-rank / 2-per-node hierarchical layout.
type CollPoint struct {
	Collective string `json:"collective"`
	// Algo is the forced family (Config.CollAlgorithm); Resolved is
	// the algorithm the selection actually compiled to, as attributed
	// in the metrics registry (e.g. "allreduce/two-level").
	Algo     string `json:"algo"`
	Resolved string `json:"resolved"`
	Bytes    int    `json:"bytes"` // per-rank payload
	// LatencyUs is the slowest rank's virtual time through start+wait,
	// in model microseconds.
	LatencyUs float64 `json:"latency_us"`
	// NetBytes and ShmBytes split the operation's traffic by path —
	// the two-level win shows up as NetBytes shrinking while ShmBytes
	// absorbs the difference.
	NetBytes int64 `json:"net_bytes"`
	ShmBytes int64 `json:"shm_bytes"`
}

// collRanks is the sweep geometry: 4 ranks, 2 per node — the smallest
// layout where flat and two-level algorithms diverge.
const collRanks = 4

// collCombos pairs each collective with the algorithm families worth
// comparing on the reference layout.
var collCombos = []struct{ coll, algo string }{
	{"barrier", "auto"},
	{"bcast", "flat"},
	{"bcast", "two-level"},
	{"allreduce", "flat"},
	{"allreduce", "rsag"},
	{"allreduce", "reduce-bcast"},
	{"allreduce", "two-level"},
	{"allgather", "bruck"},
	{"allgather", "ring"},
	{"alltoall", "posted"},
	{"alltoall", "pairwise"},
}

// CollSweep measures every (collective, algorithm) combination at each
// payload size: one cold run per point, latency from the virtual
// clock, traffic split from the metrics aggregate. Sizes must be
// multiples of 32 so every allreduce variant (including Rabenseifner's
// reduce-scatter) applies; nil selects the defaults.
func CollSweep(sizes []int) ([]CollPoint, error) {
	if len(sizes) == 0 {
		sizes = []int{64, 4096}
	}
	var out []CollPoint
	for _, c := range collCombos {
		szs := sizes
		if c.coll == "barrier" {
			szs = []int{0} // barrier carries no payload
		}
		for _, n := range szs {
			pt, err := collPoint(c.coll, c.algo, n)
			if err != nil {
				return nil, fmt.Errorf("%s/%s n=%d: %w", c.coll, c.algo, n, err)
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// collPoint runs one nonblocking collective to completion and reads
// the clocks and counters back out. Peers connect eagerly so the
// one-time ConnSetup charge lands before the measured window: this
// sweep isolates the steady-state collective cost, while connection
// establishment is what the scale sweep measures.
func collPoint(collective, algo string, n int) (CollPoint, error) {
	cfg := gompi.Config{
		RanksPerNode: 2, CollAlgorithm: algo, Fabric: gompi.FabricOFI,
		EagerPeers: true,
	}
	lat := make([]int64, collRanks)
	var hz float64
	st, err := gompi.RunStats(collRanks, cfg, func(p *gompi.Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			hz = p.ClockHz()
		}
		start := p.VirtualCycles()
		var req *gompi.Request
		var err error
		switch collective {
		case "barrier":
			req, err = w.Ibarrier()
		case "bcast":
			// Root 1: a non-leader root, where the flat binomial tree's
			// vrank rotation sends most hops cross-node and the
			// two-level variant's advantage is visible.
			req, err = w.Ibcast(make([]byte, n), n, gompi.Byte, 1)
		case "allreduce":
			req, err = w.Iallreduce(make([]byte, n), make([]byte, n),
				n/8, gompi.Long, gompi.OpSum)
		case "allgather":
			req, err = w.Iallgather(make([]byte, n), make([]byte, n*collRanks),
				n, gompi.Byte)
		case "alltoall":
			req, err = w.Ialltoall(make([]byte, n*collRanks), make([]byte, n*collRanks),
				n, gompi.Byte)
		default:
			return fmt.Errorf("bench: unknown collective %q", collective)
		}
		if err != nil {
			return err
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
		lat[p.Rank()] = p.VirtualCycles() - start
		return nil
	})
	if err != nil {
		return CollPoint{}, err
	}
	pt := CollPoint{Collective: collective, Algo: algo, Bytes: n}
	var max int64
	for _, l := range lat {
		if l > max {
			max = l
		}
	}
	if hz > 0 {
		pt.LatencyUs = float64(max) / hz * 1e6
	}
	agg := st.Aggregate()
	pt.NetBytes = agg.NetSend.Bytes
	pt.ShmBytes = agg.ShmRecv.Bytes
	for _, cs := range agg.Coll {
		if cs.Calls > 0 && strings.HasPrefix(cs.Algo, collective+"/") {
			pt.Resolved = cs.Algo
		}
	}
	return pt, nil
}

// WriteColl renders the sweep as a table.
func WriteColl(w io.Writer, pts []CollPoint) {
	fmt.Fprintf(w, "Nonblocking collectives: %d ranks, 2 per node, forced algorithm families\n", collRanks)
	fmt.Fprintf(w, "%-10s %-14s %-24s %8s %12s %10s %10s\n",
		"coll", "forced", "resolved", "bytes", "latency_us", "net_B", "shm_B")
	for _, p := range pts {
		fmt.Fprintf(w, "%-10s %-14s %-24s %8d %12.2f %10d %10d\n",
			p.Collective, p.Algo, p.Resolved, p.Bytes, p.LatencyUs, p.NetBytes, p.ShmBytes)
	}
}
