package bench

import (
	"fmt"

	"gompi"
)

// OSUPoint is one row of an OSU-style microbenchmark table.
type OSUPoint struct {
	Bytes        int
	LatencyUs    float64 // half round trip (osu_latency)
	BandwidthMBs float64 // windowed one-way bandwidth (osu_bw)
}

// OSUSweep runs ping-pong latency and windowed-bandwidth measurements
// across message sizes on the given configuration, in the style of the
// OSU microbenchmarks (the fields the paper's message-rate analysis
// complements).
func OSUSweep(cfg gompi.Config, maxBytes, iters, window int) ([]OSUPoint, error) {
	if maxBytes <= 0 {
		maxBytes = 1 << 16
	}
	if iters <= 0 {
		iters = 100
	}
	if window <= 0 {
		window = 32
	}
	var points []OSUPoint
	for size := 1; size <= maxBytes; size *= 4 {
		lat, err := pingPongLatency(cfg, size, iters)
		if err != nil {
			return nil, fmt.Errorf("latency %dB: %w", size, err)
		}
		bw, err := windowedBandwidth(cfg, size, iters, window)
		if err != nil {
			return nil, fmt.Errorf("bw %dB: %w", size, err)
		}
		points = append(points, OSUPoint{Bytes: size, LatencyUs: lat, BandwidthMBs: bw})
	}
	return points, nil
}

// pingPongLatency returns the half-round-trip virtual latency in
// microseconds.
func pingPongLatency(cfg gompi.Config, size, iters int) (float64, error) {
	var us float64
	err := gompi.Run(2, cfg, func(p *gompi.Proc) error {
		w := p.World()
		buf := make([]byte, size)
		rbuf := make([]byte, size)
		peer := 1 - p.Rank()
		// Warm-up round.
		if p.Rank() == 0 {
			if err := w.Send(buf, size, gompi.Byte, peer, 0); err != nil {
				return err
			}
			if _, err := w.Recv(rbuf, size, gompi.Byte, peer, 0); err != nil {
				return err
			}
		} else {
			if _, err := w.Recv(rbuf, size, gompi.Byte, peer, 0); err != nil {
				return err
			}
			if err := w.Send(buf, size, gompi.Byte, peer, 0); err != nil {
				return err
			}
		}
		start := p.VirtualCycles()
		for i := 0; i < iters; i++ {
			if p.Rank() == 0 {
				if err := w.Send(buf, size, gompi.Byte, peer, 1); err != nil {
					return err
				}
				if _, err := w.Recv(rbuf, size, gompi.Byte, peer, 1); err != nil {
					return err
				}
			} else {
				if _, err := w.Recv(rbuf, size, gompi.Byte, peer, 1); err != nil {
					return err
				}
				if err := w.Send(buf, size, gompi.Byte, peer, 1); err != nil {
					return err
				}
			}
		}
		if p.Rank() == 0 {
			cycles := float64(p.VirtualCycles() - start)
			us = cycles / p.ClockHz() * 1e6 / float64(iters) / 2
		}
		return nil
	})
	return us, err
}

// windowedBandwidth returns the one-way bandwidth in MB/s with window
// messages in flight per ack.
func windowedBandwidth(cfg gompi.Config, size, iters, window int) (float64, error) {
	var mbs float64
	err := gompi.Run(2, cfg, func(p *gompi.Proc) error {
		w := p.World()
		buf := make([]byte, size)
		ack := make([]byte, 1)
		if p.Rank() == 0 {
			start := p.VirtualCycles()
			for i := 0; i < iters; i++ {
				for k := 0; k < window; k++ {
					if err := w.IsendNoReq(buf, size, gompi.Byte, 1, 2); err != nil {
						return err
					}
				}
				if err := w.CommWaitall(); err != nil {
					return err
				}
				if _, err := w.Recv(ack, 1, gompi.Byte, 1, 3); err != nil {
					return err
				}
			}
			seconds := float64(p.VirtualCycles()-start) / p.ClockHz()
			total := float64(size) * float64(window) * float64(iters)
			mbs = total / seconds / 1e6
			return nil
		}
		rbuf := make([]byte, size)
		for i := 0; i < iters; i++ {
			for k := 0; k < window; k++ {
				if _, err := w.Recv(rbuf, size, gompi.Byte, 0, 2); err != nil {
					return err
				}
			}
			if err := w.Send(ack, 1, gompi.Byte, 0, 3); err != nil {
				return err
			}
		}
		return nil
	})
	return mbs, err
}

// WriteOSU renders an OSU-style table.
func WriteOSU(w interface{ Write([]byte) (int, error) }, title string, pts []OSUPoint) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%10s %14s %16s\n", "Size", "Latency [us]", "Bandwidth [MB/s]")
	for _, p := range pts {
		fmt.Fprintf(w, "%10d %14.2f %16.1f\n", p.Bytes, p.LatencyUs, p.BandwidthMBs)
	}
}
