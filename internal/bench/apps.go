package bench

import (
	"fmt"

	"gompi"
	"gompi/internal/md"
	"gompi/internal/nek"
)

// NekPoint is one (N, E/P) measurement pair: MPICH/Original ("Std") vs
// MPICH/CH4 ("Lite"), the paper's Figure 7 legend terms.
type NekPoint struct {
	N        int
	EPerRank int
	NOverP   int
	PerfStd  float64 // point-iterations per processor-second, original
	PerfLite float64 // same, ch4
	Ratio    float64 // Lite/Std (Figure 7 center)
	EffStd   float64 // parallel-efficiency model at the measurement scale
	EffLite  float64
}

// NekSweepOptions sizes the Figure 7 sweep. The paper ran 16,384 ranks
// on BG/Q; we scale the rank count down and keep the per-rank load
// (n/P) on the paper's axis, which is what shapes the curves.
type NekSweepOptions struct {
	RankGrid [3]int // default {4,2,2} = 16 ranks
	Orders   []int  // default {3,5,7}
	MaxEPerP int    // default 128 (E/P = 1,2,4,...,128)
	Iters    int    // default 25
	Fabric   string // default "ofi"
}

func (o *NekSweepOptions) defaults() {
	if o.RankGrid == [3]int{} {
		o.RankGrid = [3]int{4, 2, 2}
	}
	if len(o.Orders) == 0 {
		o.Orders = []int{3, 5, 7}
	}
	if o.MaxEPerP == 0 {
		o.MaxEPerP = 128
	}
	if o.Iters == 0 {
		o.Iters = 25
	}
	if o.Fabric == "" {
		o.Fabric = "bgq"
	}
}

// splitElems factors E/P into a 3-D per-rank element box, keeping it as
// cubic as possible.
func splitElems(ePerP int) [3]int {
	e := [3]int{1, 1, 1}
	d := 0
	for ePerP > 1 {
		e[d] *= 2
		ePerP /= 2
		d = (d + 1) % 3
	}
	return e
}

// NekSweep runs the Figure 7 experiment: for each order N and each
// E/P, the model problem under both devices.
func NekSweep(opts NekSweepOptions) ([]NekPoint, error) {
	opts.defaults()
	ranks := opts.RankGrid[0] * opts.RankGrid[1] * opts.RankGrid[2]
	var points []NekPoint
	for _, order := range opts.Orders {
		for eP := 1; eP <= opts.MaxEPerP; eP *= 2 {
			prm := nek.Params{
				N:            order,
				ElemsPerRank: splitElems(eP),
				RankGrid:     opts.RankGrid,
				Iters:        opts.Iters,
			}
			pt := NekPoint{N: order, EPerRank: eP, NOverP: prm.NOverP()}
			for _, dev := range []gompi.DeviceKind{gompi.DeviceOriginal, gompi.DeviceCH4} {
				var res nek.Result
				err := gompi.Run(ranks, gompi.Config{Device: dev, Fabric: gompi.FabricKind(opts.Fabric)}, func(p *gompi.Proc) error {
					r, err := nek.Solve(p, prm)
					if err != nil {
						return err
					}
					if r.Residual > 1e-8 {
						return fmt.Errorf("residual %g", r.Residual)
					}
					if p.Rank() == 0 {
						res = r
					}
					return nil
				})
				if err != nil {
					return nil, fmt.Errorf("nek N=%d E/P=%d %s: %w", order, eP, dev, err)
				}
				model := nek.NewEfficiencyModel(res, ranks, 2.2e9)
				if dev == "ch4" {
					pt.PerfLite = res.PerfPIPS
					pt.EffLite = model.Efficiency(float64(ranks))
				} else {
					pt.PerfStd = res.PerfPIPS
					pt.EffStd = model.Efficiency(float64(ranks))
				}
			}
			if pt.PerfStd > 0 {
				pt.Ratio = pt.PerfLite / pt.PerfStd
			}
			points = append(points, pt)
		}
	}
	return points, nil
}

// LammpsPoint is one Figure 8 bar: a node count (atoms/core) with both
// devices' timestep rates.
type LammpsPoint struct {
	Nodes        int     // the paper's x-axis label (scaled-down run)
	AtomsPerCore int     // nominal (the paper's ladder)
	ActualAPC    float64 // after FCC lattice snapping
	RateCh4      float64 // timesteps/second
	RateOrig     float64
	EffCh4       float64 // strong-scaling efficiency vs the first point
	EffOrig      float64
	SpeedupPct   float64 // (ch4-orig)/orig * 100
}

// LammpsSweepOptions sizes the Figure 8 sweep.
type LammpsSweepOptions struct {
	RankGrid [3]int // default {3,3,3} = 27 ranks
	Steps    int    // default 10
	Fabric   string // default "ofi"
}

func (o *LammpsSweepOptions) defaults() {
	if o.RankGrid == [3]int{} {
		o.RankGrid = [3]int{3, 3, 3}
	}
	if o.Steps == 0 {
		o.Steps = 10
	}
	if o.Fabric == "" {
		o.Fabric = "bgq"
	}
}

// lammpsScale mirrors the paper's strong-scaling ladder: 3M atoms over
// 512..8192 nodes of 16 cores.
var lammpsScale = []struct {
	nodes        int
	atomsPerCore int
}{
	{512, 368},
	{1024, 184},
	{2048, 90},
	{4096, 45},
	{8192, 23},
}

// LammpsSweep runs the Figure 8 experiment.
func LammpsSweep(opts LammpsSweepOptions) ([]LammpsPoint, error) {
	opts.defaults()
	ranks := opts.RankGrid[0] * opts.RankGrid[1] * opts.RankGrid[2]
	var points []LammpsPoint
	for _, sc := range lammpsScale {
		prm := md.Params{
			AtomsPerCore: sc.atomsPerCore,
			RankGrid:     opts.RankGrid,
			Steps:        opts.Steps,
		}
		pt := LammpsPoint{Nodes: sc.nodes, AtomsPerCore: sc.atomsPerCore}
		for _, dev := range []gompi.DeviceKind{gompi.DeviceCH4, gompi.DeviceOriginal} {
			var res md.Result
			err := gompi.Run(ranks, gompi.Config{Device: dev, Fabric: gompi.FabricKind(opts.Fabric)}, func(p *gompi.Proc) error {
				r, err := md.Run(p, prm)
				if err != nil {
					return err
				}
				if p.Rank() == 0 {
					res = r
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("lammps %d nodes %s: %w", sc.nodes, dev, err)
			}
			if dev == "ch4" {
				pt.RateCh4 = res.StepsPerSec
				pt.ActualAPC = res.AtomsPerCore
			} else {
				pt.RateOrig = res.StepsPerSec
			}
		}
		if pt.RateOrig > 0 {
			pt.SpeedupPct = 100 * (pt.RateCh4 - pt.RateOrig) / pt.RateOrig
		}
		points = append(points, pt)
	}
	// Strong-scaling efficiency relative to the first (most
	// work-dominated) point: the ideal rate scales inversely with the
	// ACTUAL per-rank load after lattice snapping.
	if len(points) > 0 {
		base := points[0]
		for i := range points {
			if points[i].ActualAPC <= 0 {
				continue
			}
			ideal := base.ActualAPC / points[i].ActualAPC
			if base.RateCh4 > 0 {
				points[i].EffCh4 = points[i].RateCh4 / (base.RateCh4 * ideal)
			}
			if base.RateOrig > 0 {
				points[i].EffOrig = points[i].RateOrig / (base.RateOrig * ideal)
			}
		}
	}
	return points, nil
}
