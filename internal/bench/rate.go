// Package bench is the experiment harness shared by the cmd/ tools and
// the benchmark suite: message-rate drivers (Figures 3-6), instruction
// breakdowns (Table 1, Figure 2), and the application sweeps (Figures
// 7-8). Every function runs the real library on the simulated fabrics
// and reports virtual-time results, deterministically.
package bench

import (
	"fmt"

	"gompi"
)

// BuildLadder is the Figure 2/3/4/5 configuration ladder, in
// presentation order.
var BuildLadder = []struct {
	Label  string
	Device gompi.DeviceKind
	Build  gompi.BuildKind
}{
	{"mpich/original", "original", "default"},
	{"mpich/ch4 (default)", "ch4", "default"},
	{"mpich/ch4 (no-err)", "ch4", "no-err"},
	{"mpich/ch4 (no-err-single)", "ch4", "no-err-single"},
	{"mpich/ch4 (no-err-single-ipo)", "ch4", "no-err-single-ipo"},
}

// RatePoint is one bar of a message-rate figure.
type RatePoint struct {
	Label     string
	IsendRate float64 // messages/second
	PutRate   float64
}

// MessageRates measures the Figure 3/4/5 bars on one fabric: the
// single-core issue rate of 1-byte MPI_ISEND and MPI_PUT under each
// build configuration.
func MessageRates(fabricName string, msgs int) ([]RatePoint, error) {
	if msgs <= 0 {
		msgs = 2000
	}
	out := make([]RatePoint, 0, len(BuildLadder))
	for _, bl := range BuildLadder {
		cfg := gompi.Config{Device: bl.Device, Fabric: gompi.FabricKind(fabricName), Build: bl.Build}
		isend, err := isendRate(cfg, msgs)
		if err != nil {
			return nil, fmt.Errorf("%s isend: %w", bl.Label, err)
		}
		put, err := putRate(cfg, msgs)
		if err != nil {
			return nil, fmt.Errorf("%s put: %w", bl.Label, err)
		}
		out = append(out, RatePoint{Label: bl.Label, IsendRate: isend, PutRate: put})
	}
	return out, nil
}

// isendRate measures the 1-byte nonblocking-send issue rate of rank 0.
func isendRate(cfg gompi.Config, msgs int) (float64, error) {
	var rate float64
	err := gompi.Run(2, cfg, func(p *gompi.Proc) error {
		w := p.World()
		buf := []byte{1}
		if p.Rank() == 0 {
			// Warm up one message so one-time costs stay out of the
			// steady-state measurement.
			if err := w.Send(buf, 1, gompi.Byte, 1, 0); err != nil {
				return err
			}
			start := p.VirtualCycles()
			for i := 0; i < msgs; i++ {
				req, err := w.Isend(buf, 1, gompi.Byte, 1, 0)
				if err != nil {
					return err
				}
				if _, err := req.Wait(); err != nil { // eager: completes locally
					return err
				}
			}
			cycles := float64(p.VirtualCycles() - start)
			rate = float64(msgs) * p.ClockHz() / cycles
			return nil
		}
		rbuf := make([]byte, 1)
		for i := 0; i < msgs+1; i++ {
			if _, err := w.Recv(rbuf, 1, gompi.Byte, 0, 0); err != nil {
				return err
			}
		}
		return nil
	})
	return rate, err
}

// putRate measures the 1-byte MPI_PUT issue rate of rank 0 within one
// fence epoch.
func putRate(cfg gompi.Config, msgs int) (float64, error) {
	var rate float64
	err := gompi.Run(2, cfg, func(p *gompi.Proc) error {
		w := p.World()
		win, _, err := w.WinAllocate(64, 1)
		if err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			buf := []byte{1}
			if err := win.Put(buf, 1, gompi.Byte, 1, 0); err != nil { // warm-up
				return err
			}
			start := p.VirtualCycles()
			for i := 0; i < msgs; i++ {
				if err := win.Put(buf, 1, gompi.Byte, 1, 0); err != nil {
					return err
				}
			}
			cycles := float64(p.VirtualCycles() - start)
			rate = float64(msgs) * p.ClockHz() / cycles
		}
		if err := win.Fence(); err != nil {
			return err
		}
		return win.Free()
	})
	return rate, err
}

// ProposalPoint is one bar of Figure 6.
type ProposalPoint struct {
	Label string
	Rate  float64 // messages/second
	Instr int64   // instructions on the issue path
}

// ProposalLadder measures the Figure 6 bars: the MPI-3.1 floor
// (minimal_pt2pt on the ipo build) and the cumulative standard
// proposals, ending at the fused MPI_ISEND_ALL_OPTS path, on the
// infinitely fast network.
func ProposalLadder(msgs int) ([]ProposalPoint, error) {
	if msgs <= 0 {
		msgs = 2000
	}
	cfg := gompi.Config{Device: "ch4", Fabric: "inf", Build: "no-err-single-ipo"}
	var pts []ProposalPoint
	err := gompi.Run(2, cfg, func(p *gompi.Proc) error {
		w := p.World()
		if _, err := w.DupPredefined(gompi.Comm1); err != nil {
			return err
		}
		pc := p.PredefComm(gompi.Comm1)
		buf := []byte{1}

		// The bars stack cumulatively, as the paper's Figure 6 does:
		// each step adds one proposal on top of the previous ones,
		// starting from the MPI-3.1 floor and ending at the fused
		// MPI_ISEND_ALL_OPTS path.
		opt := func(o gompi.SendOptions) func() error {
			return func() error {
				req, err := w.IsendOpt(buf, 1, gompi.Byte, 1, 0, o)
				if err != nil {
					return err
				}
				if req != nil {
					_, err = req.Wait()
				}
				return err
			}
		}
		type step struct {
			label string
			send  func() error
			comm  *gompi.Comm // where the receiver drains
		}
		steps := []step{
			{"minimal_pt2pt", opt(gompi.SendOptions{}), w},
			{"no_req", opt(gompi.SendOptions{NoReq: true}), w},
			{"no_match", opt(gompi.SendOptions{NoReq: true, NoMatch: true}), w},
			{"glob_rank", opt(gompi.SendOptions{NoReq: true, NoMatch: true, GlobalRank: true}), w},
			{"no_proc_null", opt(gompi.SendOptions{NoReq: true, NoMatch: true, GlobalRank: true, NoProcNull: true}), w},
			{"all_opts", func() error {
				return p.IsendAllOpts(gompi.Comm1, buf, 1)
			}, pc},
		}

		if p.Rank() == 0 {
			for _, st := range steps {
				before := p.Counters()
				if err := st.send(); err != nil { // warm-up + instr capture
					return err
				}
				instr := p.Counters().Sub(before).TotalInstr
				start := p.VirtualCycles()
				for i := 0; i < msgs; i++ {
					if err := st.send(); err != nil {
						return err
					}
				}
				cycles := float64(p.VirtualCycles() - start)
				pts = append(pts, ProposalPoint{
					Label: st.label,
					Rate:  float64(msgs) * p.ClockHz() / cycles,
					Instr: instr,
				})
				if err := st.comm.CommWaitall(); err != nil {
					return err
				}
			}
			return nil
		}
		// Receiver: messages arrive with heterogeneous match bits;
		// drain each phase in arrival order on the right communicator.
		for _, st := range steps {
			rbuf := make([]byte, 1)
			for i := 0; i < msgs+1; i++ {
				if _, err := st.comm.RecvNoMatch(rbuf, 1, gompi.Byte); err != nil {
					return err
				}
			}
		}
		return nil
	})
	return pts, err
}
