package bench

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"gompi"
)

// ScalePoint is one measurement of the 10K-rank scale sweep: a world of
// Ranks goroutine ranks running a halo exchange plus a two-level
// allreduce, either with lazy (on-demand) peer state or with the
// EagerPeers all-pairs baseline of pre-on-demand MPI stacks.
type ScalePoint struct {
	Ranks int
	Eager bool // EagerPeers ablation: all-pairs connection setup at init
	// SetupMs is the slowest rank's wall-clock time from process launch
	// to the top of its application body — the MPI_Init analogue. Eager
	// connection establishment lands here.
	SetupMs float64
	// SetupCycles is the slowest rank's virtual-time cycle count at the
	// top of its body: the deterministic, host-independent setup cost
	// (eager mode pays ConnSetup per peer before the body runs).
	SetupCycles int64
	// PeersTouched is the mean number of distinct peers per rank whose
	// connection or ring state actually materialized.
	PeersTouched float64
	// BytesPerRank / MaxBytesPerRank are the modeled per-peer state
	// footprint (connection records + shm rings): mean and worst-case
	// bytes across ranks. The lazy-vs-eager gap here is the memory
	// argument for on-demand connection management.
	BytesPerRank    float64
	MaxBytesPerRank int64
	// WallMs is the whole run's wall-clock time (setup + traffic).
	WallMs float64
}

// scaleCeiling is the per-rank modeled-state ceiling asserted on lazy
// runs: a rank whose connection+ring state exceeds it panics inside the
// library. It is sized for the sweep's traffic pattern (4 halo
// neighbors + two-level allreduce: a node leader talks to its 15 locals
// and O(1) other leaders) with generous headroom — yet far below the
// eager baseline's all-pairs footprint at every sweep size, so the
// assertion would trip immediately if lazy mode silently regressed to
// eager materialization.
const scaleCeiling = 256 << 10

// ScaleSweep runs the halo + two-level allreduce workload at each world
// size, lazy and eager, and reports setup time and bytes/rank. Sizes
// are typically {1000, 4000, 10000}; ranks are goroutines, 16 per
// simulated node, on the "ofi" fabric profile whose ConnSetup charge
// makes connection establishment visible in virtual time.
func ScaleSweep(sizes []int, iters int) ([]ScalePoint, error) {
	if iters <= 0 {
		iters = 2
	}
	out := make([]ScalePoint, 0, 2*len(sizes))
	for _, n := range sizes {
		for _, eager := range []bool{false, true} {
			pt, err := scaleRun(n, eager, iters)
			if err != nil {
				return nil, fmt.Errorf("ranks=%d eager=%v: %w", n, eager, err)
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// scaleRun runs one world: a 4-point halo exchange (ranks ±1 and ±16,
// the stencil-code neighbor set) followed by a two-level allreduce, and
// samples setup time at the top of every rank's body.
func scaleRun(n int, eager bool, iters int) (ScalePoint, error) {
	const rpn = 16
	cfg := gompi.Config{
		Device: "ch4", Fabric: "ofi", Build: "no-err-single-ipo",
		RanksPerNode: rpn,
		// Small rings keep the eager baseline's all-pairs footprint
		// affordable enough to run; the lazy/eager gap is unaffected.
		ShmCellSize: 256, ShmRingCells: 8,
		CollAlgorithm: "two-level",
	}
	if eager {
		cfg.EagerPeers = true
	} else {
		// The ceiling is the lazy mode's enforced contract: state stays
		// O(active peers), not O(n). Eager mode cannot run under it.
		cfg.MaxPeerBytes = scaleCeiling
	}

	var setupNs, setupCycles int64
	t0 := time.Now()
	st, err := gompi.RunStats(n, cfg, func(p *gompi.Proc) error {
		atomicMax(&setupNs, int64(time.Since(t0)))
		atomicMax(&setupCycles, p.VirtualCycles())
		w := p.World()
		me := p.Rank()

		neighbors := haloNeighbors(me, n, rpn)
		sbuf := make([]byte, 64)
		rbufs := make([][]byte, len(neighbors))
		for i := range rbufs {
			rbufs[i] = make([]byte, 64)
		}
		reqs := make([]*gompi.Request, 0, 2*len(neighbors))
		vals := []float64{float64(me), 1}
		for it := 0; it < iters; it++ {
			reqs = reqs[:0]
			for i, nb := range neighbors {
				r, err := w.Irecv(rbufs[i], len(rbufs[i]), gompi.Byte, nb, it)
				if err != nil {
					return err
				}
				reqs = append(reqs, r)
			}
			for _, nb := range neighbors {
				r, err := w.Isend(sbuf, len(sbuf), gompi.Byte, nb, it)
				if err != nil {
					return err
				}
				reqs = append(reqs, r)
			}
			if err := gompi.Waitall(reqs); err != nil {
				return err
			}
			if _, err := w.AllreduceFloat64(vals, gompi.OpSum); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return ScalePoint{}, err
	}
	agg := st.Aggregate()
	wall := time.Since(t0)
	return ScalePoint{
		Ranks:           n,
		Eager:           eager,
		SetupMs:         float64(atomic.LoadInt64(&setupNs)) / 1e6,
		SetupCycles:     atomic.LoadInt64(&setupCycles),
		PeersTouched:    float64(agg.Peers.Touched) / float64(n),
		BytesPerRank:    float64(agg.Peers.StateBytes) / float64(n),
		MaxBytesPerRank: agg.Peers.MaxStateBytes,
		WallMs:          float64(wall) / 1e6,
	}, nil
}

// haloNeighbors returns the 4-point stencil neighbor set of rank me in
// a world of n ranks laid out rpn per node: ±1 (intra-node in the
// interior) and ±rpn (usually cross-node), clipped at the world edges.
func haloNeighbors(me, n, rpn int) []int {
	nbs := make([]int, 0, 4)
	for _, d := range []int{-rpn, -1, 1, rpn} {
		if nb := me + d; nb >= 0 && nb < n {
			nbs = append(nbs, nb)
		}
	}
	return nbs
}

func atomicMax(addr *int64, v int64) {
	for {
		cur := atomic.LoadInt64(addr)
		if v <= cur || atomic.CompareAndSwapInt64(addr, cur, v) {
			return
		}
	}
}

// WriteScaleTable renders the sweep as an aligned text table.
func WriteScaleTable(w io.Writer, pts []ScalePoint) {
	fmt.Fprintf(w, "%8s %6s %10s %12s %8s %12s %12s %10s\n",
		"ranks", "mode", "setup-ms", "setup-cyc", "peers", "B/rank", "maxB/rank", "wall-ms")
	for _, p := range pts {
		mode := "lazy"
		if p.Eager {
			mode = "eager"
		}
		fmt.Fprintf(w, "%8d %6s %10.1f %12d %8.1f %12.0f %12d %10.0f\n",
			p.Ranks, mode, p.SetupMs, p.SetupCycles, p.PeersTouched,
			p.BytesPerRank, p.MaxBytesPerRank, p.WallMs)
	}
}
