package bench

import (
	"fmt"
	"io"
	"time"

	"gompi"
)

// VCIPoint is one measurement of the VCI-scaling sweep.
type VCIPoint struct {
	VCIs  int
	Lanes int // goroutines per rank
	// Rate is the serialization-bound message rate: total messages over
	// the virtual time of the busiest interface's traffic. This is the
	// paper-methodology number — host-independent and deterministic.
	Rate float64
	// MaxShare is the busiest interface's fraction of the receive
	// traffic (1.0 = everything serialized on one interface). Measured,
	// not assumed: if hint-driven pinning failed to spread the lanes,
	// this stays at 1 and the rate shows no scaling.
	MaxShare float64
	// WallRate is the raw wall-clock rate of the same run. On a
	// many-core host it shows the real lock-level scaling; on a
	// single-core CI box it is flat and only sanity-checks the bound.
	WallRate float64
	Speedup  float64 // Rate relative to the 1-VCI row
}

// VCIScaling measures how the multi-threaded message rate scales with
// the number of virtual communication interfaces. Each rank runs
// `lanes` goroutines under MPI_THREAD_MULTIPLE, each ping-ponging on
// its own fully asserted communicator — so each lane's traffic is
// pinned to a private VCI when enough interfaces exist.
//
// The headline rate is a serialization bound in virtual time:
// operations on one interface serialize behind its lock (the CH3
// global-critical-section pathology, scoped down to a channel), while
// operations on different interfaces proceed independently — the
// multi-VCI thesis. The busiest interface therefore bounds throughput:
// modeled elapsed = (its share of the traffic) x (total virtual cost),
// and the rate follows. Both inputs are measured from the run — the
// per-interface traffic split from the metrics registry and the
// per-message cost from the rank's virtual clock — so the sweep
// validates the real channel-selection machinery end to end.
func VCIScaling(vcis []int, lanes, msgs int) ([]VCIPoint, error) {
	if lanes <= 0 {
		lanes = 4
	}
	if msgs <= 0 {
		msgs = 4000
	}
	out := make([]VCIPoint, 0, len(vcis))
	for _, nv := range vcis {
		pt, err := vciRate(nv, lanes, msgs)
		if err != nil {
			return nil, fmt.Errorf("vci=%d: %w", nv, err)
		}
		out = append(out, pt)
	}
	for i := range out {
		if out[0].Rate > 0 {
			out[i].Speedup = out[i].Rate / out[0].Rate
		}
	}
	return out, nil
}

// vciRate runs one 2-rank multi-threaded ping-pong sweep.
func vciRate(nvci, lanes, msgs int) (VCIPoint, error) {
	cfg := gompi.Config{
		Device: "ch4", Fabric: "inf", Build: "no-err-single-ipo",
		ThreadMultiple: true, VCIs: nvci,
	}
	pt := VCIPoint{VCIs: nvci, Lanes: lanes}
	err := gompi.Run(2, cfg, func(p *gompi.Proc) error {
		w := p.World()
		// Each lane gets its own fully asserted communicator; context
		// ids advance per Dup, so with nvci >= lanes every lane lands
		// on a distinct private interface.
		comms := make([]*gompi.Comm, lanes)
		for g := range comms {
			c, err := w.DupWithHints(gompi.CommHints{
				NoAnySource: true, NoAnyTag: true, ExactLength: true,
			})
			if err != nil {
				return err
			}
			comms[g] = c
		}
		if err := w.Barrier(); err != nil {
			return err
		}
		peer := 1 - p.Rank()
		beforeVCIs := perVCIMsgs(p)
		startCycles := p.VirtualCycles()
		start := time.Now()
		errs := make(chan error, lanes)
		for g := 0; g < lanes; g++ {
			go func(g int) {
				c := comms[g]
				out := []byte{byte(g)}
				in := make([]byte, 1)
				for i := 0; i < msgs; i++ {
					if p.Rank() == 0 {
						if err := c.Send(out, 1, gompi.Byte, peer, 0); err != nil {
							errs <- err
							return
						}
						if _, err := c.Recv(in, 1, gompi.Byte, peer, 0); err != nil {
							errs <- err
							return
						}
					} else {
						if _, err := c.Recv(in, 1, gompi.Byte, peer, 0); err != nil {
							errs <- err
							return
						}
						if err := c.Send(out, 1, gompi.Byte, peer, 0); err != nil {
							errs <- err
							return
						}
					}
				}
				errs <- nil
			}(g)
		}
		for g := 0; g < lanes; g++ {
			if e := <-errs; e != nil {
				return e
			}
		}
		if p.Rank() == 0 {
			wall := time.Since(start).Seconds()
			total := float64(2 * lanes * msgs) // sends + receives on this rank
			pt.WallRate = total / wall

			// The bottleneck interface's share of the receive traffic.
			after := perVCIMsgs(p)
			var sum, max int64
			for v := range after {
				d := after[v]
				if v < len(beforeVCIs) {
					d -= beforeVCIs[v]
				}
				sum += d
				if d > max {
					max = d
				}
			}
			if sum > 0 {
				pt.MaxShare = float64(max) / float64(sum)
			} else {
				pt.MaxShare = 1
			}
			// Serialization bound: the busiest channel carries MaxShare
			// of the work, and that slice is the critical path.
			cycles := float64(p.VirtualCycles() - startCycles)
			if cycles > 0 {
				pt.Rate = total / (pt.MaxShare * cycles / p.ClockHz())
			}
		}
		return w.Barrier()
	})
	return pt, err
}

// perVCIMsgs reads the rank's per-interface receive counters.
func perVCIMsgs(p *gompi.Proc) []int64 {
	vcis := p.Metrics().VCIs
	out := make([]int64, len(vcis))
	for i, v := range vcis {
		out[i] = v.Msgs
	}
	return out
}

// WriteVCIScaling renders the sweep.
func WriteVCIScaling(w io.Writer, pts []VCIPoint) {
	fmt.Fprintf(w, "Multi-VCI scaling: %d goroutines/rank ping-pong on hinted disjoint comms\n",
		lanesOf(pts))
	fmt.Fprintf(w, "%6s %12s %10s %12s %8s\n", "VCIs", "Rate", "MaxShare", "WallRate", "Speedup")
	for _, p := range pts {
		fmt.Fprintf(w, "%6d %12s %10.2f %12s %7.2fx\n",
			p.VCIs, rateUnit(p.Rate), p.MaxShare, rateUnit(p.WallRate), p.Speedup)
	}
}

// WriteVCIScalingCSV emits the sweep as CSV.
func WriteVCIScalingCSV(w io.Writer, pts []VCIPoint) {
	fmt.Fprintln(w, "vcis,lanes,msgs_per_sec,max_share,wall_msgs_per_sec,speedup_vs_1vci")
	for _, p := range pts {
		fmt.Fprintf(w, "%d,%d,%.0f,%.4f,%.0f,%.3f\n",
			p.VCIs, p.Lanes, p.Rate, p.MaxShare, p.WallRate, p.Speedup)
	}
}

func lanesOf(pts []VCIPoint) int {
	if len(pts) == 0 {
		return 0
	}
	return pts[0].Lanes
}
