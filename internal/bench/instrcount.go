package bench

import (
	"fmt"

	"gompi"
)

// Breakdown is one Table 1 column: the per-category instruction cost of
// a single MPI call.
type Breakdown struct {
	Op       string
	Device   string
	Build    string
	Counters gompi.Counters
}

// InstrBreakdown measures the instruction cost of one 1-byte MPI_ISEND
// and MPI_PUT under the given device and build, on the infinitely fast
// network (so only MPI software instructions appear).
func InstrBreakdown(device gompi.DeviceKind, build gompi.BuildKind) (isend, put Breakdown, err error) {
	cfg := gompi.Config{Device: device, Fabric: gompi.FabricInf, Build: build}
	err = gompi.Run(2, cfg, func(p *gompi.Proc) error {
		w := p.World()
		// --- Isend ---
		if p.Rank() == 0 {
			buf := []byte{1}
			before := p.Counters()
			req, err := w.Isend(buf, 1, gompi.Byte, 1, 0)
			if err != nil {
				return err
			}
			isend = Breakdown{Op: "MPI_ISEND", Device: string(device), Build: string(build), Counters: p.Counters().Sub(before)}
			if _, err := req.Wait(); err != nil {
				return err
			}
		} else {
			rbuf := make([]byte, 1)
			if _, err := w.Recv(rbuf, 1, gompi.Byte, 0, 0); err != nil {
				return err
			}
		}
		// --- Put ---
		win, _, err := w.WinAllocate(16, 1)
		if err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			before := p.Counters()
			if err := win.Put([]byte{1}, 1, gompi.Byte, 1, 0); err != nil {
				return err
			}
			put = Breakdown{Op: "MPI_PUT", Device: string(device), Build: string(build), Counters: p.Counters().Sub(before)}
		}
		if err := win.Fence(); err != nil {
			return err
		}
		return win.Free()
	})
	return isend, put, err
}

// Table1 returns the paper's Table 1: the per-category breakdown of the
// default ch4 build.
func Table1() (isend, put Breakdown, err error) {
	return InstrBreakdown("ch4", "default")
}

// Figure2 returns the instruction totals across the build ladder for
// both operations (the Figure 2 bars).
func Figure2() ([]Breakdown, []Breakdown, error) {
	var isends, puts []Breakdown
	for _, bl := range BuildLadder {
		is, pt, err := InstrBreakdown(bl.Device, bl.Build)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", bl.Label, err)
		}
		is.Device, pt.Device = bl.Label, bl.Label
		isends = append(isends, is)
		puts = append(puts, pt)
	}
	return isends, puts, nil
}

// ProposalSaving is one row of the Section 3 per-proposal savings
// analysis.
type ProposalSaving struct {
	Name    string
	Instr   int64 // instructions with the proposal applied
	Savings int64 // instructions saved versus the MPI-3.1 floor
}

// ProposalSavings measures each Section 3 proposal's instruction saving
// on the ipo build, matching the "Instruction Savings" notes of the
// paper: global rank ~10, predefined comm ~7-8, no PROC_NULL ~3, no
// request ~10, no match ~4-5, all combined -> 16 total.
func ProposalSavings() ([]ProposalSaving, int64, error) {
	cfg := gompi.Config{Device: "ch4", Fabric: "inf", Build: "no-err-single-ipo"}
	var rows []ProposalSaving
	var base int64
	err := gompi.Run(2, cfg, func(p *gompi.Proc) error {
		w := p.World()
		if _, err := w.DupPredefined(gompi.Comm1); err != nil {
			return err
		}
		buf := []byte{1}
		measure := func(send func() error) (int64, error) {
			before := p.Counters()
			if err := send(); err != nil {
				return 0, err
			}
			return p.Counters().Sub(before).TotalInstr, nil
		}
		if p.Rank() != 0 {
			// Five variants target the world context and two target
			// the predefined communicator; drain each in arrival
			// order.
			rbuf := make([]byte, 1)
			for i := 0; i < 5; i++ {
				if _, err := w.RecvNoMatch(rbuf, 1, gompi.Byte); err != nil {
					return err
				}
			}
			for i := 0; i < 2; i++ {
				if _, err := p.PredefComm(gompi.Comm1).RecvNoMatch(rbuf, 1, gompi.Byte); err != nil {
					return err
				}
			}
			return nil
		}
		var err error
		base, err = measure(func() error {
			req, e := w.Isend(buf, 1, gompi.Byte, 1, 0)
			if e != nil {
				return e
			}
			_, e = req.Wait()
			return e
		})
		if err != nil {
			return err
		}
		variants := []struct {
			name string
			send func() error
		}{
			{"glob_rank (3.1)", func() error {
				req, e := w.IsendGlobal(buf, 1, gompi.Byte, 1, 0)
				if e != nil {
					return e
				}
				_, e = req.Wait()
				return e
			}},
			{"predef_comm (3.3)", func() error {
				req, e := p.IsendPredef(gompi.Comm1, buf, 1, gompi.Byte, 1, 0)
				if e != nil {
					return e
				}
				_, e = req.Wait()
				return e
			}},
			{"no_proc_null (3.4)", func() error {
				req, e := w.IsendNPN(buf, 1, gompi.Byte, 1, 0)
				if e != nil {
					return e
				}
				_, e = req.Wait()
				return e
			}},
			{"no_req (3.5)", func() error { return w.IsendNoReq(buf, 1, gompi.Byte, 1, 0) }},
			{"no_match (3.6)", func() error {
				req, e := w.IsendNoMatch(buf, 1, gompi.Byte, 1)
				if e != nil {
					return e
				}
				_, e = req.Wait()
				return e
			}},
			{"all_opts (3.7)", func() error { return p.IsendAllOpts(gompi.Comm1, buf, 1) }},
		}
		for _, v := range variants {
			n, err := measure(v.send)
			if err != nil {
				return err
			}
			rows = append(rows, ProposalSaving{Name: v.name, Instr: n, Savings: base - n})
		}
		if err := w.CommWaitall(); err != nil {
			return err
		}
		return p.PredefComm(gompi.Comm1).CommWaitall()
	})
	return rows, base, err
}
