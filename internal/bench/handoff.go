package bench

import (
	"fmt"
	"io"

	"gompi"
)

// HandoffPoint is one measurement of the staged-vs-handoff sweep: one
// on-node point-to-point message of Bytes bytes, sent either through
// staging cells (Mode "staged", ShmEagerMax disabled) or as a
// zero-copy handoff descriptor (Mode "handoff", threshold below the
// payload), on a 2-rank single-node layout.
type HandoffPoint struct {
	Bytes int    `json:"bytes"`
	Mode  string `json:"mode"` // "staged" or "handoff"
	// LatencyUs is the slowest rank's virtual time through
	// send+wait/recv, in model microseconds.
	LatencyUs float64 `json:"latency_us"`
	// TransportCycles is the job's charged fabric/shm transport work —
	// the fragmentation per-byte charges are what the handoff path
	// avoids, so the win must show here too, not just in latency.
	TransportCycles int64 `json:"transport_cycles"`
	// Copy accounting: the staged path pays copy-in plus reassembly
	// plus the landing; the handoff path pays the landing alone.
	CopiesStaged int64 `json:"copies_staged"`
	CopiesDirect int64 `json:"copies_direct"`
	HandoffBytes int64 `json:"handoff_bytes"`
}

// HandoffSizes is the default sweep: from well under the default
// threshold to 1 MiB.
var HandoffSizes = []int{4096, 16384, 65536, 262144, 1048576}

// HandoffThreshold is the staged/handoff crossover used for the
// "handoff" arm of the sweep.
const HandoffThreshold = 8192

// HandoffSweep measures each size under both shm transports. Sizes at
// or below HandoffThreshold ride the staged path in both arms (the
// threshold is strict), which pins the crossover in the output.
func HandoffSweep(sizes []int) ([]HandoffPoint, error) {
	if len(sizes) == 0 {
		sizes = HandoffSizes
	}
	var out []HandoffPoint
	for _, n := range sizes {
		for _, mode := range []string{"staged", "handoff"} {
			eager := 0
			if mode == "handoff" {
				eager = HandoffThreshold
			}
			pt, err := handoffPoint(n, mode, eager)
			if err != nil {
				return nil, fmt.Errorf("handoff %s n=%d: %w", mode, n, err)
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// handoffPoint sends one on-node message and reads the clocks and copy
// counters back out.
func handoffPoint(n int, mode string, eagerMax int) (HandoffPoint, error) {
	cfg := gompi.Config{
		RanksPerNode: 2, Fabric: gompi.FabricOFI, ShmEagerMax: eagerMax,
	}
	lat := make([]int64, 2)
	transport := make([]int64, 2)
	var hz float64
	st, err := gompi.RunStats(2, cfg, func(p *gompi.Proc) error {
		w := p.World()
		if p.Rank() == 0 {
			hz = p.ClockHz()
		}
		start := p.VirtualCycles()
		tstart := p.Counters().Transport
		if p.Rank() == 0 {
			r, err := w.Isend(make([]byte, n), n, gompi.Byte, 1, 0)
			if err != nil {
				return err
			}
			if _, err := r.Wait(); err != nil {
				return err
			}
		} else {
			if _, err := w.Recv(make([]byte, n), n, gompi.Byte, 0, 0); err != nil {
				return err
			}
		}
		lat[p.Rank()] = p.VirtualCycles() - start
		transport[p.Rank()] = p.Counters().Transport - tstart
		return nil
	})
	if err != nil {
		return HandoffPoint{}, err
	}
	pt := HandoffPoint{Bytes: n, Mode: mode}
	var max int64
	for _, l := range lat {
		if l > max {
			max = l
		}
	}
	if hz > 0 {
		pt.LatencyUs = float64(max) / hz * 1e6
	}
	pt.TransportCycles = transport[0] + transport[1]
	agg := st.Aggregate()
	pt.CopiesStaged = agg.CopiesStaged.Msgs
	pt.CopiesDirect = agg.CopiesDirect.Msgs
	pt.HandoffBytes = agg.ShmHandoff.Bytes
	return pt, nil
}

// WriteHandoff renders the sweep as a table.
func WriteHandoff(w io.Writer, pts []HandoffPoint) {
	fmt.Fprintf(w, "Shm staged vs zero-copy handoff: 2 ranks, 1 node, threshold %d bytes\n", HandoffThreshold)
	fmt.Fprintf(w, "%-9s %9s %12s %16s %8s %8s %12s\n",
		"mode", "bytes", "latency_us", "transport_cyc", "staged", "direct", "handoff_B")
	for _, p := range pts {
		fmt.Fprintf(w, "%-9s %9d %12.2f %16d %8d %8d %12d\n",
			p.Mode, p.Bytes, p.LatencyUs, p.TransportCycles, p.CopiesStaged, p.CopiesDirect, p.HandoffBytes)
	}
}
