package bench

import (
	"fmt"
	"io"

	"gompi"
)

// The SpMV halo-exchange sweep: the declared-shape communication
// benchmark. A banded sparse matrix-vector product on a 1-D periodic
// process ring exchanges boundary halos with both neighbors every
// iteration, then computes. The same exchange is driven three ways:
//
//   percall     — fresh Isend/Irecv requests every iteration, the
//                 textbook MPI-1 pattern. Pays argument validation,
//                 request allocation, and matching setup per call.
//   persistent  — MPI_NEIGHBOR_ALLGATHER_INIT once, Start/Wait per
//                 iteration. The schedule DAG is compiled at Init and
//                 replayed; per-iteration cost is the wire time plus a
//                 Start that validates nothing.
//   partitioned — MPI-4 PsendInit/PrecvInit with Pready per partition,
//                 interleaved with the compute: each slice of the halo
//                 is published the moment the rows feeding it are done,
//                 so communication overlaps the compute phase instead
//                 of waiting behind it.
//
// The sweep reports per-iteration virtual latency (slowest rank) and
// per-iteration charged MPI instructions (job-wide), the two axes on
// which the paper's Section 4 charges per-call software overhead.

// SpmvPoint is one (mode, halo size) measurement.
type SpmvPoint struct {
	Mode      string `json:"mode"`
	HaloBytes int    `json:"halo_bytes"` // per-neighbor halo payload
	// Partitions and Chunks describe the partitioned mode's declared
	// shape: user partitions and the wire chunks they aggregated into.
	Partitions int `json:"partitions,omitempty"`
	Chunks     int `json:"chunks,omitempty"`
	Iters      int `json:"iters"`
	// LatencyUs is the slowest rank's virtual time per iteration,
	// including the (identical) modeled compute phase.
	LatencyUs float64 `json:"latency_us"`
	// MPIInstr is the job-wide charged MPI instruction count per
	// iteration — error-check, thread-check, call, redundant, and
	// mandatory categories; compute and transport cycles excluded.
	MPIInstr int64 `json:"mpi_instr"`
}

// spmvRanks is the ring geometry: 4 ranks, 2 per node, so each rank
// has one shm-reachable neighbor and one network neighbor.
const spmvRanks = 4

// spmvIters is the measured iteration count per point.
const spmvIters = 32

// SpmvSweep measures the halo exchange in all three modes at each halo
// size. Sizes must be multiples of partitions; nil selects defaults.
func SpmvSweep(sizes []int, partitions int) ([]SpmvPoint, error) {
	if len(sizes) == 0 {
		sizes = []int{1024, 4096}
	}
	if partitions <= 0 {
		partitions = 4
	}
	var out []SpmvPoint
	for _, n := range sizes {
		for _, mode := range []string{"percall", "persistent", "partitioned"} {
			pt, err := spmvPoint(mode, n, partitions)
			if err != nil {
				return nil, fmt.Errorf("spmv %s n=%d: %w", mode, n, err)
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// spmvComputeCycles is the modeled SpMV compute per iteration for a
// given halo width — identical across modes, so latency differences
// isolate communication overhead and overlap.
func spmvComputeCycles(halo int) int64 { return int64(4 * halo) }

// spmvPoint runs one mode at one halo size: an untimed warmup
// iteration (connection setup, schedule compilation, pool warming),
// then spmvIters measured iterations.
func spmvPoint(mode string, halo, partitions int) (SpmvPoint, error) {
	if halo%partitions != 0 {
		return SpmvPoint{}, fmt.Errorf("halo %d not divisible by %d partitions", halo, partitions)
	}
	cfg := gompi.Config{
		RanksPerNode: 2, Fabric: gompi.FabricOFI, EagerPeers: true,
	}
	lat := make([]int64, spmvRanks)
	instr := make([]int64, spmvRanks)
	chunks := make([]int, spmvRanks)
	var hz float64
	_, err := gompi.RunStats(spmvRanks, cfg, func(p *gompi.Proc) error {
		if p.Rank() == 0 {
			hz = p.ClockHz()
		}
		cc, err := p.World().CartCreate([]int{spmvRanks}, []bool{true})
		if err != nil {
			return err
		}
		left, right, err := cc.Shift(0, 1) // recv from left, send to right
		if err != nil {
			return err
		}
		send := make([]byte, halo)
		recv := make([]byte, 2*halo) // block 0 from left, block 1 from right
		for i := range send {
			send[i] = byte(p.Rank() + i)
		}
		compute := spmvComputeCycles(halo)

		// iter runs one halo exchange + compute in the chosen mode;
		// built once so the warmup and measured loops share it.
		var iter func() error
		switch mode {
		case "percall":
			iter = func() error {
				p.ChargeCompute(compute)
				reqs := make([]*gompi.Request, 0, 4)
				r, err := cc.Irecv(recv[:halo], halo, gompi.Byte, left, 0)
				if err != nil {
					return err
				}
				reqs = append(reqs, r)
				r, err = cc.Irecv(recv[halo:], halo, gompi.Byte, right, 1)
				if err != nil {
					return err
				}
				reqs = append(reqs, r)
				r, err = cc.Isend(send, halo, gompi.Byte, right, 0)
				if err != nil {
					return err
				}
				reqs = append(reqs, r)
				r, err = cc.Isend(send, halo, gompi.Byte, left, 1)
				if err != nil {
					return err
				}
				reqs = append(reqs, r)
				for _, r := range reqs {
					if _, err := r.Wait(); err != nil {
						return err
					}
				}
				return nil
			}
		case "persistent":
			op, err := cc.NeighborAllgatherInit(send, recv, halo, gompi.Byte)
			if err != nil {
				return err
			}
			iter = func() error {
				p.ChargeCompute(compute)
				if err := op.Start(); err != nil {
					return err
				}
				return op.Wait()
			}
		case "partitioned":
			per := halo / partitions
			sr, err := cc.PsendInit(send, partitions, per, gompi.Byte, right, 0)
			if err != nil {
				return err
			}
			sl, err := cc.PsendInit(send, partitions, per, gompi.Byte, left, 1)
			if err != nil {
				return err
			}
			rl, err := cc.PrecvInit(recv[:halo], partitions, per, gompi.Byte, left, 0)
			if err != nil {
				return err
			}
			rr, err := cc.PrecvInit(recv[halo:], partitions, per, gompi.Byte, right, 1)
			if err != nil {
				return err
			}
			chunks[p.Rank()] = sr.Chunks()
			ops := []*gompi.PartitionedOp{sr, sl, rl, rr}
			slice := compute / int64(partitions)
			iter = func() error {
				if err := gompi.StartAll(ops); err != nil {
					return err
				}
				// Publish each halo slice as soon as its rows are
				// computed: communication rides under the compute.
				for k := 0; k < partitions; k++ {
					p.ChargeCompute(slice)
					if err := sr.Pready(k); err != nil {
						return err
					}
					if err := sl.Pready(k); err != nil {
						return err
					}
				}
				for _, o := range ops {
					if err := o.Wait(); err != nil {
						return err
					}
				}
				return nil
			}
		default:
			return fmt.Errorf("bench: unknown spmv mode %q", mode)
		}

		if err := iter(); err != nil { // warmup, untimed
			return err
		}
		before := p.Counters()
		start := p.VirtualCycles()
		for it := 0; it < spmvIters; it++ {
			if err := iter(); err != nil {
				return err
			}
		}
		lat[p.Rank()] = p.VirtualCycles() - start
		instr[p.Rank()] = p.Counters().Sub(before).TotalInstr
		return nil
	})
	if err != nil {
		return SpmvPoint{}, err
	}
	pt := SpmvPoint{Mode: mode, HaloBytes: halo, Iters: spmvIters}
	if mode == "partitioned" {
		pt.Partitions = partitions
		pt.Chunks = chunks[0]
	}
	var max, sum int64
	for i := range lat {
		if lat[i] > max {
			max = lat[i]
		}
		sum += instr[i]
	}
	if hz > 0 {
		pt.LatencyUs = float64(max) / float64(spmvIters) / hz * 1e6
	}
	pt.MPIInstr = sum / spmvIters
	return pt, nil
}

// WriteSpmv renders the sweep as a table.
func WriteSpmv(w io.Writer, pts []SpmvPoint) {
	fmt.Fprintf(w, "SpMV halo exchange: %d ranks, 2 per node, periodic ring, %d iterations\n",
		spmvRanks, spmvIters)
	fmt.Fprintf(w, "%-12s %10s %6s %7s %14s %14s\n",
		"mode", "halo_B", "parts", "chunks", "latency_us/it", "mpi_instr/it")
	for _, p := range pts {
		fmt.Fprintf(w, "%-12s %10d %6d %7d %14.2f %14d\n",
			p.Mode, p.HaloBytes, p.Partitions, p.Chunks, p.LatencyUs, p.MPIInstr)
	}
}

// PersistPoint is one persistent-collective measurement: the cost
// split between the one-time Init (compile) and the replayed Starts.
type PersistPoint struct {
	Collective string  `json:"collective"`
	Bytes      int     `json:"bytes"`
	InitUs     float64 `json:"init_us"`   // Init: validate + compile
	FirstUs    float64 `json:"first_us"`  // first Start+Wait
	ReplayUs   float64 `json:"replay_us"` // steady-state Start+Wait, avg
	// SchedHits/SchedMisses are the job-wide schedule-cache counters:
	// every Start is a hit by construction, every Init a miss.
	SchedHits   int64 `json:"sched_hits"`
	SchedMisses int64 `json:"sched_misses"`
}

// persistReplays is the steady-state replay count per point.
const persistReplays = 32

// PersistSweep measures persistent allreduce and neighborhood
// allgather: Init cost, first activation, and steady-state replay.
func PersistSweep(sizes []int) ([]PersistPoint, error) {
	if len(sizes) == 0 {
		sizes = []int{64, 4096}
	}
	var out []PersistPoint
	for _, coll := range []string{"allreduce", "neighbor-allgather"} {
		for _, n := range sizes {
			pt, err := persistPoint(coll, n)
			if err != nil {
				return nil, fmt.Errorf("persist %s n=%d: %w", coll, n, err)
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

func persistPoint(coll string, n int) (PersistPoint, error) {
	cfg := gompi.Config{
		RanksPerNode: 2, Fabric: gompi.FabricOFI, EagerPeers: true,
	}
	initLat := make([]int64, spmvRanks)
	firstLat := make([]int64, spmvRanks)
	replayLat := make([]int64, spmvRanks)
	var hz float64
	st, err := gompi.RunStats(spmvRanks, cfg, func(p *gompi.Proc) error {
		if p.Rank() == 0 {
			hz = p.ClockHz()
		}
		w := p.World()
		var op *gompi.PersistentColl
		var err error
		t0 := p.VirtualCycles()
		switch coll {
		case "allreduce":
			op, err = w.AllreduceInit(make([]byte, n), make([]byte, n),
				n/8, gompi.Long, gompi.OpSum)
		case "neighbor-allgather":
			var cc *gompi.CartComm
			cc, err = w.CartCreate([]int{spmvRanks}, []bool{true})
			if err != nil {
				return err
			}
			t0 = p.VirtualCycles() // exclude topology creation
			op, err = cc.NeighborAllgatherInit(make([]byte, n),
				make([]byte, 2*n), n, gompi.Byte)
		default:
			return fmt.Errorf("bench: unknown persistent collective %q", coll)
		}
		if err != nil {
			return err
		}
		initLat[p.Rank()] = p.VirtualCycles() - t0
		t0 = p.VirtualCycles()
		if err := op.Start(); err != nil {
			return err
		}
		if err := op.Wait(); err != nil {
			return err
		}
		firstLat[p.Rank()] = p.VirtualCycles() - t0
		t0 = p.VirtualCycles()
		for i := 0; i < persistReplays; i++ {
			if err := op.Start(); err != nil {
				return err
			}
			if err := op.Wait(); err != nil {
				return err
			}
		}
		replayLat[p.Rank()] = (p.VirtualCycles() - t0) / persistReplays
		return nil
	})
	if err != nil {
		return PersistPoint{}, err
	}
	pt := PersistPoint{Collective: coll, Bytes: n}
	max := func(v []int64) int64 {
		var m int64
		for _, x := range v {
			if x > m {
				m = x
			}
		}
		return m
	}
	if hz > 0 {
		pt.InitUs = float64(max(initLat)) / hz * 1e6
		pt.FirstUs = float64(max(firstLat)) / hz * 1e6
		pt.ReplayUs = float64(max(replayLat)) / hz * 1e6
	}
	agg := st.Aggregate()
	pt.SchedHits = agg.Sched.CacheHits
	pt.SchedMisses = agg.Sched.CacheMisses
	return pt, nil
}

// WritePersist renders the sweep as a table.
func WritePersist(w io.Writer, pts []PersistPoint) {
	fmt.Fprintf(w, "Persistent collectives: %d ranks, 2 per node, %d replays\n",
		spmvRanks, persistReplays)
	fmt.Fprintf(w, "%-20s %8s %10s %10s %10s %6s %6s\n",
		"collective", "bytes", "init_us", "first_us", "replay_us", "hits", "miss")
	for _, p := range pts {
		fmt.Fprintf(w, "%-20s %8d %10.2f %10.2f %10.2f %6d %6d\n",
			p.Collective, p.Bytes, p.InitUs, p.FirstUs, p.ReplayUs, p.SchedHits, p.SchedMisses)
	}
}
