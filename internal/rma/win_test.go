package rma

import (
	"sync"
	"testing"
	"testing/quick"

	"gompi/internal/comm"
)

func testWin(sizes, dispUnits []int, dynamic bool) *Win {
	n := len(sizes)
	sh := NewShared(n, dynamic)
	copy(sh.Sizes, sizes)
	copy(sh.DispUnits, dispUnits)
	c := comm.NewWorld(comm.NewRegistry(), n, 0)
	return NewWin(c, make([]byte, sizes[0]), dispUnits[0], 1, sh)
}

func TestTargetOffset(t *testing.T) {
	w := testWin([]int{64, 128}, []int{8, 4}, false)
	off, err := w.TargetOffset(1, 3, 4)
	if err != nil || off != 12 {
		t.Fatalf("TargetOffset = (%d,%v), want 12", off, err)
	}
	off, err = w.TargetOffset(0, 7, 8)
	if err != nil || off != 56 {
		t.Fatalf("TargetOffset = (%d,%v), want 56", off, err)
	}
}

func TestTargetOffsetBounds(t *testing.T) {
	w := testWin([]int{64}, []int{8}, false)
	if _, err := w.TargetOffset(0, 8, 1); err == nil {
		t.Error("offset past window accepted")
	}
	if _, err := w.TargetOffset(0, 7, 9); err == nil {
		t.Error("length past window accepted")
	}
	if _, err := w.TargetOffset(0, -1, 1); err == nil {
		t.Error("negative displacement accepted")
	}
}

func TestDynamicWindowSkipsBounds(t *testing.T) {
	w := testWin([]int{0}, []int{1}, true)
	if _, err := w.TargetOffset(0, 4096, 64); err != nil {
		t.Errorf("dynamic window bounds-checked: %v", err)
	}
}

func TestCheckVAddr(t *testing.T) {
	w := testWin([]int{32}, []int{1}, false)
	if err := w.CheckVAddr(0, 0, 32); err != nil {
		t.Errorf("full-window vaddr rejected: %v", err)
	}
	if err := w.CheckVAddr(0, 16, 17); err == nil {
		t.Error("overflowing vaddr accepted")
	}
	if w.BaseAddr(0) != 0 {
		t.Error("base address should be 0")
	}
}

func TestEpochLifecycle(t *testing.T) {
	w := testWin([]int{8}, []int{1}, false)
	if w.InEpoch() {
		t.Fatal("fresh window in epoch")
	}
	if _, err := w.CloseEpoch(); err != ErrNoEpoch {
		t.Fatal("close without open accepted")
	}
	if err := w.OpenEpoch(EpochLock, 0); err != nil {
		t.Fatal(err)
	}
	if !w.InEpoch() || w.LockedRank() != 0 {
		t.Error("epoch state wrong")
	}
	if err := w.OpenEpoch(EpochPSCW, 1); err == nil {
		t.Error("nested epoch of different kind accepted")
	}
	lr, err := w.CloseEpoch()
	if err != nil || lr != 0 {
		t.Fatalf("CloseEpoch = (%d,%v)", lr, err)
	}
	if w.InEpoch() {
		t.Error("epoch still open after close")
	}
}

func TestFenceEpochReentrant(t *testing.T) {
	// Fence-to-fence transitions keep the epoch kind; opening a fence
	// epoch while one is active is the normal steady state.
	w := testWin([]int{8}, []int{1}, false)
	if err := w.OpenEpoch(EpochFence, -1); err != nil {
		t.Fatal(err)
	}
	if err := w.OpenEpoch(EpochFence, -1); err != nil {
		t.Fatalf("fence-to-fence rejected: %v", err)
	}
}

func TestSharedLockSerializes(t *testing.T) {
	sh := NewShared(2, false)
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sh.AcquireLock(1, true)
				counter++
				sh.ReleaseLock(1, true)
			}
		}()
	}
	wg.Wait()
	if counter != 800 {
		t.Fatalf("counter = %d, want 800 (lost updates)", counter)
	}
}

func TestDynamicAttachDetach(t *testing.T) {
	w := testWin([]int{0}, []int{1}, true)
	mem := make([]byte, 128)
	if err := w.Attach(mem, 0); err != nil {
		t.Fatal(err)
	}
	if w.Attached() != 1 {
		t.Fatal("attachment not recorded")
	}
	if err := w.Detach(make([]byte, 4)); err == nil {
		t.Error("detach of unattached memory accepted")
	}
	if err := w.Detach(mem); err != nil {
		t.Fatal(err)
	}
	if w.Attached() != 0 {
		t.Error("detach did not remove segment")
	}
}

func TestAttachToStaticWindowRejected(t *testing.T) {
	w := testWin([]int{8}, []int{1}, false)
	if err := w.Attach(make([]byte, 8), 0); err == nil {
		t.Error("attach to static window accepted")
	}
}

// Property: offset translation is linear in disp with slope = target's
// displacement unit, and in-bounds offsets are always accepted.
func TestTargetOffsetProperty(t *testing.T) {
	f := func(duRaw, dispRaw uint8) bool {
		du := int(duRaw%16) + 1
		size := 1 << 12
		w := testWin([]int{size, size}, []int{1, du}, false)
		disp := int(dispRaw)
		off, err := w.TargetOffset(1, disp, 1)
		if disp*du+1 <= size {
			return err == nil && off == disp*du
		}
		return err != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDynAddrRoundTrip(t *testing.T) {
	for _, c := range []struct{ key, off int }{{0, 0}, {1, 4096}, {900, 1<<30 + 5}} {
		va := MakeDynAddr(c.key, c.off)
		if va.DynKey() != c.key || va.DynOff() != c.off {
			t.Errorf("dyn addr (%d,%d) -> (%d,%d)", c.key, c.off, va.DynKey(), va.DynOff())
		}
	}
}

func TestDynAddrProperty(t *testing.T) {
	f := func(key uint16, off uint32) bool {
		va := MakeDynAddr(int(key), int(off))
		return va.DynKey() == int(key) && va.DynOff() == int(off)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSharedAndExclusiveLocks(t *testing.T) {
	sh := NewShared(2, false)
	// Two shared locks coexist.
	sh.AcquireLock(0, false)
	if !sh.TryAcquireLock(0, false) {
		t.Fatal("second shared lock refused")
	}
	// Exclusive must be refused while shared held.
	if sh.TryAcquireLock(0, true) {
		t.Fatal("exclusive granted under shared locks")
	}
	sh.ReleaseLock(0, false)
	sh.ReleaseLock(0, false)
	// Now exclusive succeeds; shared refused.
	if !sh.TryAcquireLock(0, true) {
		t.Fatal("exclusive refused when free")
	}
	if sh.TryAcquireLock(0, false) {
		t.Fatal("shared granted under exclusive")
	}
	sh.ReleaseLock(0, true)
}

func TestExposureEpochState(t *testing.T) {
	w := testWin([]int{8}, []int{1}, false)
	if w.Exposed() {
		t.Fatal("fresh window exposed")
	}
	if _, err := w.Unexpose(); err == nil {
		t.Fatal("unexpose without post accepted")
	}
	if err := w.Expose([]int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if !w.Exposed() {
		t.Fatal("not exposed after Expose")
	}
	if err := w.Expose([]int{3}); err == nil {
		t.Fatal("double expose accepted")
	}
	peek := w.ExposureGroupPeek()
	if len(peek) != 2 || peek[0] != 1 {
		t.Fatalf("peek %v", peek)
	}
	g, err := w.Unexpose()
	if err != nil || len(g) != 2 || g[1] != 2 {
		t.Fatalf("unexpose (%v,%v)", g, err)
	}
	if w.Exposed() {
		t.Fatal("still exposed after Unexpose")
	}
	// Access group is independent bookkeeping.
	w.SetAccessGroup([]int{0})
	if ag := w.AccessGroup(); len(ag) != 1 || ag[0] != 0 {
		t.Fatalf("access group %v", ag)
	}
}
