// Package rma holds the MPI one-sided communication state: window
// objects (created, allocated, dynamic), the offset-to-virtual-address
// translation the paper's Section 3.2 analyzes, epoch tracking for
// fence / lock / PSCW synchronization, and the virtual-address fast
// path of the MPI_PUT_VIRTUAL_ADDR proposal. Data movement itself is
// the device's job; this package is the passive window bookkeeping the
// device manipulates.
package rma

import (
	"errors"
	"fmt"
	"sync"

	"gompi/internal/comm"
	"gompi/internal/vtime"
)

// Errors returned by window operations.
var (
	ErrBadDisp   = errors.New("rma: target displacement out of window")
	ErrNoEpoch   = errors.New("rma: RMA call outside an access epoch")
	ErrEpochOpen = errors.New("rma: synchronization call with epoch already open")
	ErrBadWinArg = errors.New("rma: bad window argument")
)

// EpochKind tracks the active synchronization regime on a window.
type EpochKind uint8

// Epoch kinds.
const (
	EpochNone EpochKind = iota
	EpochFence
	EpochLock
	EpochPSCW
	// EpochLockAll is the single passive epoch MPI_WIN_LOCK_ALL opens
	// over every rank at once: one epoch object, one state transition,
	// however many targets the window spans — the foMPI-style design,
	// in contrast to the CH3-era n-Lock loop.
	EpochLockAll
)

// VAddr is a "remote virtual address" in the simulated address space.
// For static windows it is a byte offset into the target's registered
// window region; for dynamic windows it also carries the attachment's
// region key in the high bits, the way a real virtual address carries
// the mapping. The MPI_PUT_VIRTUAL_ADDR proposal lets applications
// store these directly, skipping the per-operation displacement-unit
// scaling and base-address dereference.
type VAddr uint64

// dynShift splits a dynamic VAddr into (region key, offset).
const dynShift = 40

// MakeDynAddr builds the virtual address of byte off inside the dynamic
// attachment registered under key.
func MakeDynAddr(key, off int) VAddr { return VAddr(key)<<dynShift | VAddr(off) }

// DynKey extracts the region key of a dynamic virtual address.
func (v VAddr) DynKey() int { return int(v >> dynShift) }

// DynOff extracts the byte offset of a dynamic virtual address.
func (v VAddr) DynOff() int { return int(v & (1<<dynShift - 1)) }

// Shared is the window state common to all ranks: established once at
// creation (the collective key exchange) and immutable afterward,
// except for the passive-target lock table.
type Shared struct {
	Keys      []int // fabric region key per comm rank
	Sizes     []int // window size in bytes per rank
	DispUnits []int // displacement unit per rank
	Dynamic   bool

	// locks serializes passive-target access per rank: exclusive locks
	// write-lock, shared locks read-lock. A real implementation runs a
	// lock protocol over the network; with one address space an
	// RWMutex models the same serialization, and the device charges
	// the protocol's cycles.
	locks []sync.RWMutex
}

// NewShared builds the shared table for a window over n ranks.
func NewShared(n int, dynamic bool) *Shared {
	return &Shared{
		Keys:      make([]int, n),
		Sizes:     make([]int, n),
		DispUnits: make([]int, n),
		Dynamic:   dynamic,
		locks:     make([]sync.RWMutex, n),
	}
}

// AcquireLock takes the passive-target lock for rank.
func (s *Shared) AcquireLock(rank int, exclusive bool) {
	if exclusive {
		s.locks[rank].Lock()
	} else {
		s.locks[rank].RLock()
	}
}

// TryAcquireLock attempts the passive-target lock without blocking.
// Devices spin on it while pumping progress, so a rank waiting for a
// lock can still service incoming active messages (a blocking acquire
// would deadlock AM-based RMA).
func (s *Shared) TryAcquireLock(rank int, exclusive bool) bool {
	if exclusive {
		return s.locks[rank].TryLock()
	}
	return s.locks[rank].TryRLock()
}

// ReleaseLock releases the passive-target lock for rank.
func (s *Shared) ReleaseLock(rank int, exclusive bool) {
	if exclusive {
		s.locks[rank].Unlock()
	} else {
		s.locks[rank].RUnlock()
	}
}

// Win is one rank's view of a window.
type Win struct {
	Comm     *comm.Comm
	Mem      []byte // locally exposed memory (nil for dynamic windows until attach)
	DispUnit int
	MyKey    int
	Shared   *Shared

	// Epoch state, owned by the rank.
	Epoch      EpochKind
	lockedRank int // target locked in a passive epoch, or -1
	// LockExclusive records the mode of the open passive epoch, so
	// Unlock releases the right lock flavor.
	LockExclusive bool
	// PendingSync is the virtual arrival high-water mark of remote
	// writes folded in at the last close; the device maintains it.
	PendingSync vtime.Time
	// OpenedAt is the rank's virtual clock when the current access
	// epoch opened; the device stamps it at every epoch open and the
	// flush paths observe now−OpenedAt into the epoch-open→flush
	// histogram.
	OpenedAt vtime.Time

	// NoLocks asserts (MPI info key no_locks) that no passive-target
	// lock will ever be taken on this window; Lock/LockAll reject.
	NoLocks bool
	// SameDispUnit asserts every rank passed the same displacement
	// unit, so target translation reuses the local unit instead of
	// dereferencing the per-rank table.
	SameDispUnit bool

	// PSCW generalized-active-target state. Exposure (post/wait) and
	// access (start/complete) are independent: MPI allows a window to
	// be exposed and accessing at the same time, so exposure is not
	// part of the single access-epoch field above.
	exposed       bool
	exposureGroup []int // comm ranks allowed to access (post's group)
	accessGroup   []int // comm ranks being accessed (start's group)

	attached []segment // dynamic window attachments
}

// Expose opens the exposure epoch (MPI_WIN_POST bookkeeping).
func (w *Win) Expose(group []int) error {
	if w.exposed {
		return fmt.Errorf("%w: exposure epoch already open", ErrEpochOpen)
	}
	w.exposed = true
	w.exposureGroup = append([]int(nil), group...)
	return nil
}

// Unexpose closes the exposure epoch (MPI_WIN_WAIT bookkeeping) and
// returns the origin group.
func (w *Win) Unexpose() ([]int, error) {
	if !w.exposed {
		return nil, fmt.Errorf("%w: no exposure epoch", ErrNoEpoch)
	}
	g := w.exposureGroup
	w.exposed = false
	w.exposureGroup = nil
	return g, nil
}

// Exposed reports whether an exposure epoch is open.
func (w *Win) Exposed() bool { return w.exposed }

// ExposureGroupPeek returns the open exposure epoch's origin group
// without closing it (MPI_WIN_TEST needs it).
func (w *Win) ExposureGroupPeek() []int { return w.exposureGroup }

// SetAccessGroup records the start group for the open PSCW access
// epoch.
func (w *Win) SetAccessGroup(group []int) { w.accessGroup = append([]int(nil), group...) }

// AccessGroup returns the group recorded by SetAccessGroup.
func (w *Win) AccessGroup() []int { return w.accessGroup }

type segment struct {
	mem []byte
	off int // offset of this attachment inside the registered region
}

// NewWin builds one rank's view after the collective exchange.
func NewWin(c *comm.Comm, mem []byte, dispUnit, myKey int, shared *Shared) *Win {
	return &Win{
		Comm: c, Mem: mem, DispUnit: dispUnit, MyKey: myKey,
		Shared: shared, lockedRank: -1,
	}
}

// TargetOffset translates (targetRank, disp) to a byte offset in the
// target's region — the translation of Section 3.2: one dereference for
// the target's displacement unit plus the scaling arithmetic. It
// validates count bytes fit when the window size is known.
func (w *Win) TargetOffset(targetRank, disp, nbytes int) (int, error) {
	du := w.DispUnit
	if !w.SameDispUnit {
		du = w.Shared.DispUnits[targetRank]
	}
	off := disp * du
	if off < 0 {
		return 0, fmt.Errorf("%w: disp %d", ErrBadDisp, disp)
	}
	if size := w.Shared.Sizes[targetRank]; !w.Shared.Dynamic && off+nbytes > size {
		return 0, fmt.Errorf("%w: [%d,%d) beyond size %d", ErrBadDisp, off, off+nbytes, size)
	}
	return off, nil
}

// CheckVAddr validates a virtual-address target (the fast path skips
// translation entirely; only bounds are confirmed when known).
func (w *Win) CheckVAddr(targetRank int, va VAddr, nbytes int) error {
	if w.Shared.Dynamic {
		return nil
	}
	if int(va)+nbytes > w.Shared.Sizes[targetRank] {
		return fmt.Errorf("%w: va %d + %d beyond size %d", ErrBadDisp, va, nbytes, w.Shared.Sizes[targetRank])
	}
	return nil
}

// BaseAddr returns the virtual address of byte 0 of targetRank's
// window, for applications adopting the virtual-address proposal.
func (w *Win) BaseAddr(targetRank int) VAddr { return 0 }

// OpenEpoch transitions into an access epoch.
func (w *Win) OpenEpoch(kind EpochKind, target int) error {
	if w.Epoch != EpochNone && !(w.Epoch == kind && kind == EpochFence) {
		return fmt.Errorf("%w: %d open", ErrEpochOpen, w.Epoch)
	}
	w.Epoch = kind
	w.lockedRank = target
	return nil
}

// CloseEpoch leaves the current epoch.
func (w *Win) CloseEpoch() (lockedRank int, err error) {
	if w.Epoch == EpochNone {
		return -1, ErrNoEpoch
	}
	lr := w.lockedRank
	w.Epoch = EpochNone
	w.lockedRank = -1
	return lr, nil
}

// InEpoch reports whether RMA operations are currently legal.
func (w *Win) InEpoch() bool { return w.Epoch != EpochNone }

// LockedRank returns the passive-epoch target, or -1.
func (w *Win) LockedRank() int { return w.lockedRank }

// Attach adds memory to a dynamic window at the given region offset
// (MPI_WIN_ATTACH). The device has already grown the registered region.
func (w *Win) Attach(mem []byte, off int) error {
	if !w.Shared.Dynamic {
		return fmt.Errorf("%w: attach to a static window", ErrBadWinArg)
	}
	w.attached = append(w.attached, segment{mem, off})
	return nil
}

// Detach removes a previously attached segment (MPI_WIN_DETACH).
func (w *Win) Detach(mem []byte) error {
	for i, s := range w.attached {
		if len(s.mem) > 0 && len(mem) > 0 && &s.mem[0] == &mem[0] {
			w.attached = append(w.attached[:i], w.attached[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("%w: detach of unattached memory", ErrBadWinArg)
}

// Attached returns the number of dynamic attachments (tests).
func (w *Win) Attached() int { return len(w.attached) }
