// Package instr provides abstract-instruction accounting for the MPI
// critical path. It stands in for the Intel SDE traces used in the paper:
// every check, dereference, branch, call-frame setup, and arithmetic step
// that the implementation executes charges a documented cost into a
// per-category counter. Because charging happens only on paths the code
// actually takes, the per-build-configuration counts (Table 1, Figure 2)
// are produced by executing the real critical path, not hard-coded.
//
// The same charges drive the virtual clock (see package vtime) with a
// CPI of 1.0, so instruction counts and message rates come from a single
// cost model.
package instr

// Abstract per-operation instruction costs. The constants model a modern
// out-of-order x86 core at the granularity the paper reasons about: a
// plain ALU op or register load is one instruction, a pointer chase into
// a dynamically allocated object is a load plus address arithmetic, a
// conditional is a compare plus a branch, and a function call is the
// 16-18 instruction frame setup the paper measures (plus return).
const (
	// CostArith is a register-to-register ALU operation.
	CostArith = 1
	// CostLoad is a load of a global or stack value.
	CostLoad = 1
	// CostStore is a store to memory.
	CostStore = 1
	// CostCmp is a comparison feeding a branch.
	CostCmp = 1
	// CostBranch is a conditional branch.
	CostBranch = 1
	// CostCheck is a full compare-and-branch validation step.
	CostCheck = CostCmp + CostBranch
	// CostDeref is a dereference into a dynamically allocated object:
	// address computation plus the (potentially cache-missing) load.
	CostDeref = 2
	// CostCall is the stack/register setup of a function call boundary.
	// The paper: "Each MPI function call can take around 16-18
	// instructions just to load the stack and registers".
	CostCall = 17
	// CostIndirectCall is a call through a function pointer (netmod
	// dispatch table), slightly more expensive than a direct call.
	CostIndirectCall = CostCall + 2
	// CostHash is computing a hash-bin index and loading the bin head —
	// the per-operation price of binned (MPICH CH4-style) message
	// matching: a shift/mask over the match word plus the bucket
	// lookup. Charged so binned matching is not modeled as free.
	CostHash = 4
	// CostAtomic is a locked read-modify-write (pool locks, refcounts
	// under MPI_THREAD_MULTIPLE).
	CostAtomic = 8
	// CostLockUnlock is acquiring and releasing an uncontended mutex.
	CostLockUnlock = 2 * CostAtomic
)

// Category labels where on the critical path instructions are spent.
// The first five mirror the rows of Table 1 in the paper; Transport and
// Compute cover costs outside the MPI software stack proper (network
// injection cycles and application arithmetic) and never count toward
// the MPI instruction totals.
type Category uint8

const (
	// ErrorCheck is argument and object validation (Table 1 "Error
	// checking"). Not mandated by the standard; removed by the no-err
	// build.
	ErrorCheck Category = iota
	// ThreadCheck is the runtime thread-safety check (Table 1
	// "Thread-safety check"). Removed by the single-threaded build.
	ThreadCheck
	// Call is MPI function call overhead (Table 1 "MPI function
	// call"). Removed by link-time inlining (ipo).
	Call
	// Redundant is runtime checks that would be compile-time constant
	// if the call were inlined, e.g. re-deriving the size of
	// MPI_DOUBLE on every call (Table 1 "Redundant runtime checks").
	// Removed by link-time inlining (ipo).
	Redundant
	// Mandatory is overhead forced by MPI-3.1 semantics: rank
	// translation, object dereference, MPI_PROC_NULL handling, request
	// management, match bits (Table 1 "MPI mandatory overheads").
	// Only the proposed standard extensions (Section 3) remove these.
	Mandatory
	// Transport is network/shared-memory injection and delivery cost,
	// charged by the fabric, not the MPI library.
	Transport
	// Compute is application arithmetic (SpMV flops, LJ force loops),
	// charged by the applications.
	Compute

	// NumCategories is the number of charge categories.
	NumCategories
)

// String returns the Table-1-style row label for the category.
func (c Category) String() string {
	switch c {
	case ErrorCheck:
		return "Error checking"
	case ThreadCheck:
		return "Thread-safety check"
	case Call:
		return "MPI function call"
	case Redundant:
		return "Redundant runtime checks"
	case Mandatory:
		return "MPI mandatory overheads"
	case Transport:
		return "Transport"
	case Compute:
		return "Compute"
	default:
		return "Unknown"
	}
}

// MPICategories lists the categories that count as MPI-library
// instructions (the rows of Table 1), in presentation order.
var MPICategories = [...]Category{ErrorCheck, ThreadCheck, Call, Redundant, Mandatory}
