package instr

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestChargeAccumulates(t *testing.T) {
	var p Profile
	p.Charge(ErrorCheck, 10)
	p.Charge(ErrorCheck, 5)
	p.Charge(Mandatory, 7)
	if got := p.Count(ErrorCheck); got != 15 {
		t.Errorf("Count(ErrorCheck) = %d, want 15", got)
	}
	if got := p.Count(Mandatory); got != 7 {
		t.Errorf("Count(Mandatory) = %d, want 7", got)
	}
	if got := p.Total(); got != 22 {
		t.Errorf("Total = %d, want 22", got)
	}
	if got := p.Cycles(); got != 22 {
		t.Errorf("Cycles = %d, want 22", got)
	}
}

func TestTransportExcludedFromTotal(t *testing.T) {
	var p Profile
	p.Charge(Mandatory, 3)
	p.ChargeCycles(Transport, 100)
	p.ChargeCycles(Compute, 50)
	if got := p.Total(); got != 3 {
		t.Errorf("Total = %d, want 3 (transport/compute must not count)", got)
	}
	if got := p.Cycles(); got != 153 {
		t.Errorf("Cycles = %d, want 153", got)
	}
}

func TestChargeCyclesPanicsOnMPICategory(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ChargeCycles(Mandatory) did not panic")
		}
	}()
	var p Profile
	p.ChargeCycles(Mandatory, 1)
}

func TestSnapshotDelta(t *testing.T) {
	var p Profile
	p.Charge(ErrorCheck, 100)
	s := p.Snap()
	p.Charge(ErrorCheck, 4)
	p.Charge(Call, CostCall)
	p.ChargeCycles(Transport, 300)
	d := p.Delta(s)
	if d.Count(ErrorCheck) != 4 {
		t.Errorf("delta ErrorCheck = %d, want 4", d.Count(ErrorCheck))
	}
	if d.Count(Call) != CostCall {
		t.Errorf("delta Call = %d, want %d", d.Count(Call), CostCall)
	}
	if d.Total != 4+CostCall {
		t.Errorf("delta Total = %d, want %d", d.Total, 4+CostCall)
	}
	if d.Cycles != 4+CostCall+300 {
		t.Errorf("delta Cycles = %d, want %d", d.Cycles, 4+CostCall+300)
	}
}

func TestReset(t *testing.T) {
	var p Profile
	p.Charge(Redundant, 9)
	p.Reset()
	if p.Total() != 0 || p.Cycles() != 0 || p.Count(Redundant) != 0 {
		t.Error("Reset did not zero the profile")
	}
}

func TestBreakdownAddScale(t *testing.T) {
	var p Profile
	p.Charge(Mandatory, 10)
	b := p.Delta(Snapshot{})
	sum := b.Add(b).Add(b)
	if sum.Count(Mandatory) != 30 || sum.Total != 30 {
		t.Errorf("Add: got %d/%d, want 30/30", sum.Count(Mandatory), sum.Total)
	}
	avg := sum.Scale(3)
	if avg.Count(Mandatory) != 10 || avg.Total != 10 {
		t.Errorf("Scale: got %d/%d, want 10/10", avg.Count(Mandatory), avg.Total)
	}
}

func TestBreakdownScaleRoundsToNearest(t *testing.T) {
	b := Breakdown{Total: 10, Cycles: 11}
	b.Counts[Mandatory] = 10
	b.Counts[Call] = 2
	avg := b.Scale(4)
	// 10/4 = 2.5 rounds to 3 (not the truncated 2); 2/4 = 0.5 rounds to
	// 1; 11/4 = 2.75 rounds to 3.
	if avg.Counts[Mandatory] != 3 {
		t.Errorf("Scale(4) of 10 = %d, want 3", avg.Counts[Mandatory])
	}
	if avg.Counts[Call] != 1 {
		t.Errorf("Scale(4) of 2 = %d, want 1", avg.Counts[Call])
	}
	if avg.Total != 3 || avg.Cycles != 3 {
		t.Errorf("Scale(4) total/cycles = %d/%d, want 3/3", avg.Total, avg.Cycles)
	}
	// Exact multiples stay exact — the pinned single-op counts.
	exact := Breakdown{Total: 300}
	if got := exact.Scale(3).Total; got != 100 {
		t.Errorf("Scale(3) of 300 = %d, want 100", got)
	}
}

func TestBreakdownScalePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Scale(0) did not panic")
		}
	}()
	Breakdown{}.Scale(0)
}

func TestCategoryStrings(t *testing.T) {
	want := map[Category]string{
		ErrorCheck:  "Error checking",
		ThreadCheck: "Thread-safety check",
		Call:        "MPI function call",
		Redundant:   "Redundant runtime checks",
		Mandatory:   "MPI mandatory overheads",
		Transport:   "Transport",
		Compute:     "Compute",
	}
	for cat, s := range want {
		if cat.String() != s {
			t.Errorf("Category(%d).String() = %q, want %q", cat, cat.String(), s)
		}
	}
	if Category(200).String() != "Unknown" {
		t.Error("unknown category should stringify as Unknown")
	}
}

func TestBreakdownStringHasAllRows(t *testing.T) {
	var p Profile
	p.Charge(ErrorCheck, 74)
	p.Charge(ThreadCheck, 6)
	p.Charge(Call, 23)
	p.Charge(Redundant, 59)
	p.Charge(Mandatory, 59)
	s := p.Delta(Snapshot{}).String()
	for _, cat := range MPICategories {
		if !strings.Contains(s, cat.String()) {
			t.Errorf("String() missing row %q:\n%s", cat.String(), s)
		}
	}
	if !strings.Contains(s, "221") {
		t.Errorf("String() missing total 221:\n%s", s)
	}
}

// Property: for any sequence of charges, Total equals the sum over MPI
// categories and Cycles equals the sum over all categories.
func TestTotalInvariant(t *testing.T) {
	f := func(charges []uint16) bool {
		var p Profile
		for i, c := range charges {
			cat := Category(i % int(NumCategories))
			n := int64(c % 1000)
			if cat < Transport {
				p.Charge(cat, n)
			} else {
				p.ChargeCycles(cat, n)
			}
		}
		var mpi, all int64
		for cat := Category(0); cat < NumCategories; cat++ {
			all += p.Count(cat)
			if cat < Transport {
				mpi += p.Count(cat)
			}
		}
		return p.Total() == mpi && p.Cycles() == all
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Delta is the difference of two snapshots regardless of
// interleaving.
func TestDeltaInvariant(t *testing.T) {
	f := func(pre, post []uint8) bool {
		var p Profile
		for _, c := range pre {
			p.Charge(Category(c%5), int64(c))
		}
		s := p.Snap()
		var want int64
		for _, c := range post {
			p.Charge(Category(c%5), int64(c))
			want += int64(c)
		}
		return p.Delta(s).Total == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
