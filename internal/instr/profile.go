package instr

import "fmt"

// Profile accumulates instruction charges for a single rank. It is
// confined to the rank's goroutine (ranks never share a Profile), so
// charging is a plain add — cheap enough to leave on permanently, which
// is what lets the same charges drive both instruction counting and the
// virtual clock.
type Profile struct {
	counts [NumCategories]int64
	total  int64 // MPI categories only (excludes Transport and Compute)
	cycles int64 // everything, CPI 1.0 (includes Transport and Compute)
}

// Charge records n abstract instructions in category cat.
func (p *Profile) Charge(cat Category, n int64) {
	p.counts[cat] += n
	p.cycles += n
	if cat < Transport {
		p.total += n
	}
}

// ChargeCycles records raw cycles that are not instructions executed by
// the MPI library (fabric injection latency, modeled compute time). They
// advance the clock but never appear in instruction counts.
func (p *Profile) ChargeCycles(cat Category, n int64) {
	if cat < Transport {
		panic("instr: ChargeCycles on an MPI instruction category")
	}
	p.counts[cat] += n
	p.cycles += n
}

// Count returns the accumulated charge for one category.
func (p *Profile) Count(cat Category) int64 { return p.counts[cat] }

// Total returns the accumulated MPI-library instruction count (the
// Table 1 total: everything except Transport and Compute).
func (p *Profile) Total() int64 { return p.total }

// Cycles returns the total virtual cycles accumulated, including
// transport and compute charges.
func (p *Profile) Cycles() int64 { return p.cycles }

// Reset zeroes the profile.
func (p *Profile) Reset() { *p = Profile{} }

// Snapshot is a point-in-time copy of a Profile, used to attribute the
// cost of a single call: snap before, call, Delta after.
type Snapshot struct {
	counts [NumCategories]int64
	total  int64
	cycles int64
}

// Snap captures the current state of the profile.
func (p *Profile) Snap() Snapshot {
	return Snapshot{counts: p.counts, total: p.total, cycles: p.cycles}
}

// Delta returns the charges accumulated since the snapshot was taken,
// as a Breakdown.
func (p *Profile) Delta(s Snapshot) Breakdown {
	var b Breakdown
	for i := range p.counts {
		b.Counts[i] = p.counts[i] - s.counts[i]
	}
	b.Total = p.total - s.total
	b.Cycles = p.cycles - s.cycles
	return b
}

// Breakdown is the per-category instruction cost of one operation or one
// region — one column of Table 1.
type Breakdown struct {
	Counts [NumCategories]int64
	Total  int64
	Cycles int64
}

// Count returns the charge recorded for one category.
func (b Breakdown) Count(cat Category) int64 { return b.Counts[cat] }

// Add returns the element-wise sum of two breakdowns.
func (b Breakdown) Add(o Breakdown) Breakdown {
	for i := range b.Counts {
		b.Counts[i] += o.Counts[i]
	}
	b.Total += o.Total
	b.Cycles += o.Cycles
	return b
}

// Scale returns the breakdown divided by n (for averaging over n
// repetitions). n must be positive.
func (b Breakdown) Scale(n int64) Breakdown {
	if n <= 0 {
		panic("instr: Scale by non-positive n")
	}
	for i := range b.Counts {
		b.Counts[i] /= n
	}
	b.Total /= n
	b.Cycles /= n
	return b
}

// String renders the breakdown as Table-1-style rows.
func (b Breakdown) String() string {
	s := ""
	for _, cat := range MPICategories {
		s += fmt.Sprintf("%-26s %4d instructions\n", cat.String(), b.Counts[cat])
	}
	s += fmt.Sprintf("%-26s %4d instructions", "Total", b.Total)
	return s
}
