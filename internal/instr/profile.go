package instr

import (
	"fmt"
	"sync/atomic"
)

// Profile accumulates instruction charges for a single rank. Charges
// are atomic adds: a rank is normally one goroutine, but under
// MPI_THREAD_MULTIPLE several application goroutines drive the same
// rank concurrently, and each must be able to charge without a lock.
// Single-threaded behavior (and therefore every pinned instruction
// count) is unchanged — an uncontended atomic add produces the same
// totals as a plain add.
type Profile struct {
	counts [NumCategories]int64
	total  int64 // MPI categories only (excludes Transport and Compute)
	cycles int64 // everything, CPI 1.0 (includes Transport and Compute)
}

// Charge records n abstract instructions in category cat.
func (p *Profile) Charge(cat Category, n int64) {
	atomic.AddInt64(&p.counts[cat], n)
	atomic.AddInt64(&p.cycles, n)
	if cat < Transport {
		atomic.AddInt64(&p.total, n)
	}
}

// ChargeCycles records raw cycles that are not instructions executed by
// the MPI library (fabric injection latency, modeled compute time). They
// advance the clock but never appear in instruction counts.
func (p *Profile) ChargeCycles(cat Category, n int64) {
	if cat < Transport {
		panic("instr: ChargeCycles on an MPI instruction category")
	}
	atomic.AddInt64(&p.counts[cat], n)
	atomic.AddInt64(&p.cycles, n)
}

// Count returns the accumulated charge for one category.
func (p *Profile) Count(cat Category) int64 { return atomic.LoadInt64(&p.counts[cat]) }

// Total returns the accumulated MPI-library instruction count (the
// Table 1 total: everything except Transport and Compute).
func (p *Profile) Total() int64 { return atomic.LoadInt64(&p.total) }

// Cycles returns the total virtual cycles accumulated, including
// transport and compute charges.
func (p *Profile) Cycles() int64 { return atomic.LoadInt64(&p.cycles) }

// Reset zeroes the profile. Not safe against concurrent charging;
// callers reset only while the rank is quiescent.
func (p *Profile) Reset() {
	for i := range p.counts {
		atomic.StoreInt64(&p.counts[i], 0)
	}
	atomic.StoreInt64(&p.total, 0)
	atomic.StoreInt64(&p.cycles, 0)
}

// Snapshot is a point-in-time copy of a Profile, used to attribute the
// cost of a single call: snap before, call, Delta after.
type Snapshot struct {
	counts [NumCategories]int64
	total  int64
	cycles int64
}

// Snap captures the current state of the profile.
func (p *Profile) Snap() Snapshot {
	var s Snapshot
	for i := range p.counts {
		s.counts[i] = atomic.LoadInt64(&p.counts[i])
	}
	s.total = atomic.LoadInt64(&p.total)
	s.cycles = atomic.LoadInt64(&p.cycles)
	return s
}

// Delta returns the charges accumulated since the snapshot was taken,
// as a Breakdown.
func (p *Profile) Delta(s Snapshot) Breakdown {
	var b Breakdown
	for i := range p.counts {
		b.Counts[i] = atomic.LoadInt64(&p.counts[i]) - s.counts[i]
	}
	b.Total = atomic.LoadInt64(&p.total) - s.total
	b.Cycles = atomic.LoadInt64(&p.cycles) - s.cycles
	return b
}

// Breakdown is the per-category instruction cost of one operation or one
// region — one column of Table 1.
type Breakdown struct {
	Counts [NumCategories]int64
	Total  int64
	Cycles int64
}

// Count returns the charge recorded for one category.
func (b Breakdown) Count(cat Category) int64 { return b.Counts[cat] }

// Add returns the element-wise sum of two breakdowns.
func (b Breakdown) Add(o Breakdown) Breakdown {
	for i := range b.Counts {
		b.Counts[i] += o.Counts[i]
	}
	b.Total += o.Total
	b.Cycles += o.Cycles
	return b
}

// Scale returns the breakdown divided by n, rounding to nearest (for
// averaging over n repetitions; truncating would silently lose up to
// n-1 counts per category on uneven totals). Exact multiples — the
// pinned single-op measurements — are unaffected. n must be positive.
func (b Breakdown) Scale(n int64) Breakdown {
	if n <= 0 {
		panic("instr: Scale by non-positive n")
	}
	div := func(v int64) int64 {
		if v >= 0 {
			return (v + n/2) / n
		}
		return (v - n/2) / n
	}
	for i := range b.Counts {
		b.Counts[i] = div(b.Counts[i])
	}
	b.Total = div(b.Total)
	b.Cycles = div(b.Cycles)
	return b
}

// String renders the breakdown as Table-1-style rows.
func (b Breakdown) String() string {
	s := ""
	for _, cat := range MPICategories {
		s += fmt.Sprintf("%-26s %4d instructions\n", cat.String(), b.Counts[cat])
	}
	s += fmt.Sprintf("%-26s %4d instructions", "Total", b.Total)
	return s
}
