// Package flight is the always-on flight recorder: a fixed-size
// per-rank ring of recent protocol events, far cheaper than full event
// tracing (no per-event allocation, no growth, a few words per entry)
// and therefore left running on every build. Its job is post-mortem
// diagnosis: when a job aborts, tears down on error, or trips the
// stall watchdog, each rank's last protocol steps are dumped so the
// failure's communication history is visible without re-running under
// Config.Trace.
package flight

import (
	"fmt"
	"io"
	"sync"
)

// Kind classifies one recorded protocol event.
type Kind uint8

// Protocol event kinds.
const (
	SendEager   Kind = iota // eager tagged send injected (peer = dst)
	SendRndv                // rendezvous tagged send injected (peer = dst)
	ShmSend                 // shared-memory send started (peer = dst)
	Deposit                 // incoming message matched a posted receive (peer = src)
	Unexpected              // incoming message buffered unexpected (peer = src)
	PostRecv                // receive posted, no unexpected match (peer = src or -1)
	UnexHit                 // receive posted, satisfied from unexpected queue
	RecvDone                // receive completion reaped
	AMSend                  // active message injected (peer = dst)
	AMRecv                  // active message delivered (peer = src)
	Park                    // goroutine blocked waiting for transport events
	ShmHandoff              // zero-copy handoff descriptor published (peer = dst, bytes = full payload)
	HandoffDone             // handoff completion ack observed by the sender (peer = dst)
	RmaPut                  // one-sided put issued (peer = target)
	RmaGet                  // one-sided get issued (peer = target)
	RmaAcc                  // one-sided accumulate/get-accumulate issued (peer = target)
	RmaFlush                // passive-target flush completed (peer = target or -1 for all)
	NotifyWait              // notified-access wait posted (peer = origin)
	Pready                  // partitioned send: partition marked ready (peer = dst, bytes = partition)
	Parrived                // partitioned recv: chunk observed complete (peer = src, bytes = chunk)
	numKinds
)

var kindNames = [numKinds]string{
	"send-eager", "send-rndv", "shm-send", "deposit", "unexpected",
	"post-recv", "unex-hit", "recv-done", "am-send", "am-recv", "park",
	"shm-handoff", "handoff-done",
	"rma-put", "rma-get", "rma-acc", "rma-flush", "notify-wait",
	"pready", "parrived",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one recorded protocol step. T is the recording rank's
// virtual clock in cycles; Peer is the other rank involved (-1 when
// not applicable); VCI is the virtual interface (-1 when not
// applicable).
type Event struct {
	Seq   uint64
	T     int64
	Kind  Kind
	VCI   int16
	Peer  int32
	Bytes int32
}

// Size is the ring capacity: enough recent history to see the
// protocol exchange that led to a stall, small enough to live inside
// every rank's metrics registry.
const Size = 128

// Ring is a bounded ring of the rank's most recent protocol events.
// The zero value is ready to use. Record is safe for concurrent use:
// peers depositing into a rank's endpoint record into that rank's
// ring from their own goroutines. The mutex bounds the hot-path cost
// to one uncontended lock per protocol event and keeps the dump
// coherent.
type Ring struct {
	mu  sync.Mutex
	buf [Size]Event
	n   uint64 // total events ever recorded
}

// Record appends one event, overwriting the oldest once full. It never
// allocates.
func (r *Ring) Record(k Kind, t int64, peer, bytes, vci int) {
	r.mu.Lock()
	r.buf[r.n%Size] = Event{
		Seq: r.n, T: t, Kind: k,
		VCI: int16(vci), Peer: int32(peer), Bytes: int32(bytes),
	}
	r.n++
	r.mu.Unlock()
}

// Total returns the number of events ever recorded (recent Size of
// them are retained).
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Events returns the retained events oldest-first. Dump-time only: it
// allocates the copy.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.n
	if n > Size {
		out := make([]Event, Size)
		for i := uint64(0); i < Size; i++ {
			out[i] = r.buf[(n+i)%Size]
		}
		return out
	}
	out := make([]Event, n)
	copy(out, r.buf[:n])
	return out
}

// Dump renders the retained events human-readably, oldest first, one
// line each, prefixed by label.
func (r *Ring) Dump(w io.Writer, label string) {
	evs := r.Events()
	total := r.Total()
	fmt.Fprintf(w, "%s flight recorder: %d event(s) recorded, last %d:\n", label, total, len(evs))
	for _, e := range evs {
		fmt.Fprintf(w, "%s   #%d @%d %s peer=%d bytes=%d vci=%d\n",
			label, e.Seq, e.T, e.Kind, e.Peer, e.Bytes, e.VCI)
	}
}
