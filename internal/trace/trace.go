// Package trace is the per-rank event-tracing substrate: an MPE-style
// log of every MPI operation with virtual-time intervals, peers, and
// payload sizes. The paper's analysis aggregates instructions by
// category; the trace gives the per-operation view — which calls, how
// often, how long, to whom — that a profiler user of the library would
// expect. Recording is owner-goroutine-only and allocation-free after
// the ring fills.
package trace

import (
	"fmt"
	"io"
	"sort"

	"gompi/internal/vtime"
)

// Kind classifies traced operations.
type Kind uint8

// Operation kinds.
const (
	KindSend Kind = iota
	KindRecv
	KindWait
	KindProbe
	KindColl
	KindPut
	KindGet
	KindAcc
	KindSync   // fence, lock/unlock, PSCW
	KindSched  // one dependency round of a nonblocking-collective schedule
	KindFlush  // passive-target flush (Flush/FlushLocal/FlushAll variants)
	KindNotify // notified access (PutNotify token send, WaitNotify wait)
	KindPhase  // one application phase region (Proc.PhaseBegin/PhaseEnd)
	numKinds
)

// String returns the display name.
func (k Kind) String() string {
	switch k {
	case KindSend:
		return "send"
	case KindRecv:
		return "recv"
	case KindWait:
		return "wait"
	case KindProbe:
		return "probe"
	case KindColl:
		return "collective"
	case KindPut:
		return "put"
	case KindGet:
		return "get"
	case KindAcc:
		return "accumulate"
	case KindSync:
		return "rma-sync"
	case KindSched:
		return "sched-round"
	case KindFlush:
		return "rma-flush"
	case KindNotify:
		return "rma-notify"
	case KindPhase:
		return "phase"
	default:
		return "unknown"
	}
}

// Event is one recorded operation.
type Event struct {
	Kind  Kind
	Peer  int // communicator rank, ProcNull, or -1 when not applicable
	Bytes int
	// VCI is the virtual communication interface the operation used,
	// or -1 when not applicable (collectives, waits, RMA, the
	// cross-VCI wildcard path). Zero names interface 0, so recorders
	// must set the field explicitly.
	VCI   int
	Start vtime.Time
	End   vtime.Time
	// Name is the application-chosen label of a KindPhase event (empty
	// for library operations, whose Kind names them).
	Name string
	// Useful and Comm split a KindPhase event's cycles into
	// application-compute and everything-else (MPI instructions,
	// transport, waiting); zero for other kinds.
	Useful int64
	Comm   int64
}

// Dur returns the event's virtual duration in cycles.
func (e Event) Dur() int64 { return int64(e.End - e.Start) }

// Log is one rank's bounded event log. The zero value is disabled;
// Enable sizes the ring. Only the owning rank's goroutine may call its
// methods.
type Log struct {
	events  []Event
	next    int
	wrapped bool
	dropped int64
	enabled bool
}

// Enable activates recording with space for cap events (older events
// are overwritten once the ring fills).
func (l *Log) Enable(cap int) {
	if cap < 1 {
		cap = 1024
	}
	l.events = make([]Event, 0, cap)
	l.next, l.wrapped, l.dropped = 0, false, 0
	l.enabled = true
}

// Enabled reports whether recording is active.
func (l *Log) Enabled() bool { return l.enabled }

// Record appends one event.
func (l *Log) Record(e Event) {
	if !l.enabled {
		return
	}
	if len(l.events) < cap(l.events) {
		l.events = append(l.events, e)
		return
	}
	// Ring overwrite.
	l.events[l.next] = e
	l.next = (l.next + 1) % cap(l.events)
	l.wrapped = true
	l.dropped++
}

// Events returns the recorded events in chronological order.
func (l *Log) Events() []Event {
	if !l.wrapped {
		return append([]Event(nil), l.events...)
	}
	out := make([]Event, 0, len(l.events))
	out = append(out, l.events[l.next:]...)
	out = append(out, l.events[:l.next]...)
	return out
}

// Dropped returns how many events were overwritten.
func (l *Log) Dropped() int64 { return l.dropped }

// KindStat aggregates one operation kind.
type KindStat struct {
	Kind   Kind
	Count  int64
	Cycles int64
	Bytes  int64
	MaxDur int64
}

// Summary is the per-kind aggregation of a log.
type Summary struct {
	Stats   []KindStat // only kinds that occurred, by descending cycles
	Total   int64      // events
	Cycles  int64
	Dropped int64
}

// Summarize aggregates the log.
func (l *Log) Summarize() Summary {
	var acc [numKinds]KindStat
	for i := range acc {
		acc[i].Kind = Kind(i)
	}
	var total, cycles int64
	for _, e := range l.Events() {
		s := &acc[e.Kind]
		s.Count++
		s.Cycles += e.Dur()
		s.Bytes += int64(e.Bytes)
		if d := e.Dur(); d > s.MaxDur {
			s.MaxDur = d
		}
		total++
		cycles += e.Dur()
	}
	var stats []KindStat
	for _, s := range acc {
		if s.Count > 0 {
			stats = append(stats, s)
		}
	}
	sort.Slice(stats, func(i, j int) bool { return stats[i].Cycles > stats[j].Cycles })
	return Summary{Stats: stats, Total: total, Cycles: cycles, Dropped: l.dropped}
}

// Write renders the summary as a profile table.
func (s Summary) Write(w io.Writer) {
	fmt.Fprintf(w, "%-12s %10s %14s %12s %12s\n", "Operation", "Count", "Cycles", "Bytes", "MaxCycles")
	for _, st := range s.Stats {
		fmt.Fprintf(w, "%-12s %10d %14d %12d %12d\n", st.Kind, st.Count, st.Cycles, st.Bytes, st.MaxDur)
	}
	fmt.Fprintf(w, "%-12s %10d %14d", "total", s.Total, s.Cycles)
	if s.Dropped > 0 {
		fmt.Fprintf(w, "   (%d events dropped)", s.Dropped)
	}
	fmt.Fprintln(w)
}
