package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"gompi/internal/vtime"
)

// vtimeT shortens literal conversions in the tests.
func vtimeT(v int) vtime.Time { return vtime.Time(v) }

func TestDisabledRecordsNothing(t *testing.T) {
	var l Log
	l.Record(Event{Kind: KindSend})
	if len(l.Events()) != 0 || l.Enabled() {
		t.Fatal("zero-value log recorded")
	}
}

func TestRecordAndSummarize(t *testing.T) {
	var l Log
	l.Enable(16)
	l.Record(Event{Kind: KindSend, Peer: 1, Bytes: 8, Start: 0, End: 100})
	l.Record(Event{Kind: KindSend, Peer: 2, Bytes: 8, Start: 100, End: 150})
	l.Record(Event{Kind: KindRecv, Peer: 1, Bytes: 8, Start: 150, End: 400})

	ev := l.Events()
	if len(ev) != 3 || ev[0].Dur() != 100 {
		t.Fatalf("events %v", ev)
	}
	s := l.Summarize()
	if s.Total != 3 || s.Cycles != 400 {
		t.Fatalf("summary %+v", s)
	}
	// recv has more cycles than send: must sort first.
	if s.Stats[0].Kind != KindRecv || s.Stats[0].MaxDur != 250 {
		t.Fatalf("stats %+v", s.Stats)
	}
	if s.Stats[1].Kind != KindSend || s.Stats[1].Count != 2 || s.Stats[1].Bytes != 16 {
		t.Fatalf("send stat %+v", s.Stats[1])
	}
}

func TestRingOverwrite(t *testing.T) {
	var l Log
	l.Enable(4)
	for i := 0; i < 10; i++ {
		l.Record(Event{Kind: KindSend, Start: vtimeT(i), End: vtimeT(i + 1)})
	}
	ev := l.Events()
	if len(ev) != 4 {
		t.Fatalf("%d events", len(ev))
	}
	// Chronological: the oldest surviving first.
	for i := 1; i < len(ev); i++ {
		if ev[i].Start < ev[i-1].Start {
			t.Fatalf("events out of order: %v", ev)
		}
	}
	if ev[0].Start != 6 || l.Dropped() != 6 {
		t.Fatalf("oldest %d dropped %d", ev[0].Start, l.Dropped())
	}
}

func TestSummaryWrite(t *testing.T) {
	var l Log
	l.Enable(8)
	l.Record(Event{Kind: KindColl, Bytes: 64, Start: 0, End: 5000})
	var sb strings.Builder
	l.Summarize().Write(&sb)
	for _, want := range []string{"collective", "5000", "total"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, sb.String())
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(200).String() != "unknown" {
		t.Error("out-of-range kind named")
	}
}

// Property: total cycles in the summary equal the sum of event
// durations regardless of ring wrap.
func TestSummaryConservation(t *testing.T) {
	f := func(durs []uint8, capRaw uint8) bool {
		var l Log
		l.Enable(int(capRaw%16) + 1)
		now := vtimeT(0)
		var lastN int
		var want int64
		n := cap(l.events)
		for i, d := range durs {
			l.Record(Event{Kind: Kind(uint8(i) % uint8(numKinds)), Start: now, End: now + vtime.Time(d)})
			now += vtime.Time(d)
			_ = lastN
		}
		// Expected: sum over the last min(len, cap) events.
		start := 0
		if len(durs) > n {
			start = len(durs) - n
		}
		for _, d := range durs[start:] {
			want += int64(d)
		}
		return l.Summarize().Cycles == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
