package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome-trace (catapult) JSON object
// format: "X" complete events carry a timestamp and duration in
// microseconds; "M" metadata events name the threads.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat,omitempty"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	// No omitempty: a zero duration is a valid value for an "X"
	// event, and some catapult consumers reject X events without dur.
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the top-level object-format document.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome renders per-rank event logs as one Chrome-trace document
// loadable in chrome://tracing or Perfetto. Ranks map to threads of a
// single process; virtual cycles convert to microseconds at hz. The
// exporter is for post-run analysis, so unlike Record it may allocate
// freely.
func WriteChrome(w io.Writer, hz float64, perRank [][]Event) error {
	if hz <= 0 {
		return fmt.Errorf("trace: WriteChrome needs a positive clock rate, got %g", hz)
	}
	usPerCycle := 1e6 / hz
	n := 0
	for _, events := range perRank {
		n += len(events)
	}
	evs := make([]chromeEvent, 0, n+len(perRank)+1)
	// Name the process once: every rank is a thread of the one simulated
	// job (viewers otherwise show a bare pid 0).
	evs = append(evs, chromeEvent{
		Name: "process_name", Ph: "M",
		Args: map[string]any{"name": "gompi"},
	})
	for rank, events := range perRank {
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", Tid: rank,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", rank)},
		})
		for _, e := range events {
			args := map[string]any{"peer": e.Peer, "bytes": e.Bytes}
			if e.VCI >= 0 {
				args["vci"] = e.VCI
			}
			evs = append(evs, chromeEvent{
				Name: e.Kind.String(),
				Cat:  "mpi",
				Ph:   "X",
				Ts:   float64(e.Start) * usPerCycle,
				Dur:  float64(e.Dur()) * usPerCycle,
				Tid:  rank,
				Args: args,
			})
		}
	}
	return json.NewEncoder(w).Encode(chromeDoc{
		TraceEvents:     evs,
		DisplayTimeUnit: "ms",
	})
}
