package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome-trace (catapult) JSON object
// format: "X" complete events carry a timestamp and duration in
// microseconds; "M" metadata events name the threads.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat,omitempty"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	// No omitempty: a zero duration is a valid value for an "X"
	// event, and some catapult consumers reject X events without dur.
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the top-level object-format document.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome renders per-rank event logs as one Chrome-trace document
// loadable in chrome://tracing or Perfetto. Ranks map to threads of a
// single process; virtual cycles convert to microseconds at hz. The
// exporter is for post-run analysis, so unlike Record it may allocate
// freely.
func WriteChrome(w io.Writer, hz float64, perRank [][]Event) error {
	if hz <= 0 {
		return fmt.Errorf("trace: WriteChrome needs a positive clock rate, got %g", hz)
	}
	usPerCycle := 1e6 / hz
	n := 0
	for _, events := range perRank {
		n += len(events)
	}
	evs := make([]chromeEvent, 0, n+len(perRank)+1)
	// Name the process once: every rank is a thread of the one simulated
	// job (viewers otherwise show a bare pid 0).
	evs = append(evs, chromeEvent{
		Name: "process_name", Ph: "M",
		Args: map[string]any{"name": "gompi"},
	})
	for rank, events := range perRank {
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", Tid: rank,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", rank)},
		})
		// Cumulative phase-cycle split for the rank's counter track.
		var cumUseful, cumComm int64
		for _, e := range events {
			if e.Kind == KindPhase {
				// A phase region renders twice: an "X" span named after
				// the application's label, and a "C" counter sample so
				// the per-rank useful-vs-communication split shows as a
				// stacked area over virtual time.
				cumUseful += e.Useful
				cumComm += e.Comm
				evs = append(evs,
					chromeEvent{
						Name: "phase:" + e.Name,
						Cat:  "phase",
						Ph:   "X",
						Ts:   float64(e.Start) * usPerCycle,
						Dur:  float64(e.Dur()) * usPerCycle,
						Tid:  rank,
						Args: map[string]any{"useful_cycles": e.Useful, "comm_cycles": e.Comm},
					},
					chromeEvent{
						Name: fmt.Sprintf("phase cycles (rank %d)", rank),
						Cat:  "phase",
						Ph:   "C",
						Ts:   float64(e.End) * usPerCycle,
						Tid:  rank,
						Args: map[string]any{"useful": cumUseful, "comm": cumComm},
					})
				continue
			}
			args := map[string]any{"peer": e.Peer, "bytes": e.Bytes}
			if e.VCI >= 0 {
				args["vci"] = e.VCI
			}
			evs = append(evs, chromeEvent{
				Name: e.Kind.String(),
				Cat:  "mpi",
				Ph:   "X",
				Ts:   float64(e.Start) * usPerCycle,
				Dur:  float64(e.Dur()) * usPerCycle,
				Tid:  rank,
				Args: args,
			})
		}
	}
	return json.NewEncoder(w).Encode(chromeDoc{
		TraceEvents:     evs,
		DisplayTimeUnit: "ms",
	})
}
