package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteChrome(t *testing.T) {
	perRank := [][]Event{
		{
			{Kind: KindSend, Peer: 1, Bytes: 8, Start: 100, End: 300},
			{Kind: KindWait, Peer: -1, Start: 300, End: 500},
		},
		{
			{Kind: KindRecv, Peer: 0, Bytes: 8, Start: 150, End: 400},
		},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, 1e6, perRank); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome document does not parse: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// 3 complete events + 1 process-name + 2 thread-name metadata
	// events.
	var x, m, procNames int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			x++
		case "M":
			m++
			switch e.Name {
			case "process_name":
				procNames++
				if e.Args["name"].(string) != "gompi" {
					t.Errorf("process name = %v", e.Args["name"])
				}
			case "thread_name":
				if !strings.HasPrefix(e.Args["name"].(string), "rank ") {
					t.Errorf("metadata name = %v", e.Args["name"])
				}
			default:
				t.Errorf("unexpected metadata event %q", e.Name)
			}
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if x != 3 || m != 3 {
		t.Fatalf("events: %d complete, %d metadata; want 3, 3", x, m)
	}
	if procNames != 1 {
		t.Fatalf("process_name events = %d, want 1", procNames)
	}
	// At 1 MHz, one cycle is one microsecond: the send at cycle 100
	// lasting 200 cycles must appear as ts=100us dur=200us on tid 0.
	first := doc.TraceEvents[2] // [0] is process_name, [1] rank 0's thread_name
	if first.Name != "send" || first.Ts != 100 || first.Dur != 200 || first.Tid != 0 {
		t.Fatalf("send event = %+v", first)
	}
	if first.Args["peer"].(float64) != 1 || first.Args["bytes"].(float64) != 8 {
		t.Fatalf("send args = %v", first.Args)
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, 2.2e9, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
}

func TestWriteChromeBadHz(t *testing.T) {
	if err := WriteChrome(&bytes.Buffer{}, 0, nil); err == nil {
		t.Fatal("WriteChrome(hz=0) did not error")
	}
}
