package match

// Entry is one element of a matching queue: a posted receive (Bits+Mask
// describe what it accepts, Cookie identifies the request) or an
// unexpected message (Bits are fully specified, Cookie identifies the
// buffered message).
type Entry struct {
	Bits   Bits
	Mask   Bits // FullMask for incoming messages
	Cookie any  // request or message owned by the caller
	seq    uint64
}

// Engine holds the two matching queues of one endpoint. It is not
// synchronized: the owning endpoint serializes access (the fabric
// endpoint under its lock, a single-threaded device directly). Queues
// preserve insertion order, which is what gives MPI its non-overtaking
// guarantee: an incoming message matches the earliest posted receive it
// satisfies, and a posted receive matches the earliest unexpected
// message it satisfies.
type Engine struct {
	posted     []Entry
	unexpected []Entry
	seq        uint64

	// Searches counts queue elements inspected, exposed so ablation
	// benchmarks can compare hardware-offloaded vs software matching
	// depth.
	Searches int64
}

// PostRecv offers a receive to the engine. If a buffered unexpected
// message satisfies it, that message's Entry is returned with ok=true
// and the receive is NOT enqueued (the caller delivers the data).
// Otherwise the receive joins the posted queue.
func (e *Engine) PostRecv(bits Bits, mask Bits, cookie any) (msg Entry, ok bool) {
	for i := range e.unexpected {
		e.Searches++
		if e.unexpected[i].Bits.Matches(bits, mask) {
			msg = e.unexpected[i]
			e.unexpected = append(e.unexpected[:i], e.unexpected[i+1:]...)
			return msg, true
		}
	}
	e.seq++
	e.posted = append(e.posted, Entry{Bits: bits, Mask: mask, Cookie: cookie, seq: e.seq})
	return Entry{}, false
}

// Arrive offers an incoming message to the engine. If a posted receive
// accepts it, that receive's Entry is returned with ok=true and removed
// from the posted queue. Otherwise the message joins the unexpected
// queue.
func (e *Engine) Arrive(bits Bits, cookie any) (recv Entry, ok bool) {
	for i := range e.posted {
		e.Searches++
		if bits.Matches(e.posted[i].Bits, e.posted[i].Mask) {
			recv = e.posted[i]
			e.posted = append(e.posted[:i], e.posted[i+1:]...)
			return recv, true
		}
	}
	e.seq++
	e.unexpected = append(e.unexpected, Entry{Bits: bits, Mask: FullMask, Cookie: cookie, seq: e.seq})
	return Entry{}, false
}

// CancelRecv removes a posted receive identified by its cookie,
// implementing MPI_CANCEL for receives. It reports whether the receive
// was still posted.
func (e *Engine) CancelRecv(cookie any) bool {
	for i := range e.posted {
		if e.posted[i].Cookie == cookie {
			e.posted = append(e.posted[:i], e.posted[i+1:]...)
			return true
		}
	}
	return false
}

// Probe reports whether an unexpected message satisfying (bits, mask)
// is buffered, without removing it (MPI_IPROBE).
func (e *Engine) Probe(bits Bits, mask Bits) (msg Entry, ok bool) {
	for i := range e.unexpected {
		if e.unexpected[i].Bits.Matches(bits, mask) {
			return e.unexpected[i], true
		}
	}
	return Entry{}, false
}

// ExtractUnexpected removes and returns the first unexpected message
// satisfying (bits, mask) — the matched-probe (MPI_MPROBE) primitive:
// the message leaves the matching engine and can no longer match any
// receive.
func (e *Engine) ExtractUnexpected(bits Bits, mask Bits) (Entry, bool) {
	for i := range e.unexpected {
		e.Searches++
		if e.unexpected[i].Bits.Matches(bits, mask) {
			msg := e.unexpected[i]
			e.unexpected = append(e.unexpected[:i], e.unexpected[i+1:]...)
			return msg, true
		}
	}
	return Entry{}, false
}

// PostedLen exposes the posted-queue depth for tests and diagnostics.
func (e *Engine) PostedLen() int { return len(e.posted) }

// UnexpectedLen exposes the unexpected-queue depth.
func (e *Engine) UnexpectedLen() int { return len(e.unexpected) }
