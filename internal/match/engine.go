package match

import "fmt"

// Entry is one element of a matching queue: a posted receive (Bits+Mask
// describe what it accepts, Cookie identifies the request) or an
// unexpected message (Bits are fully specified, Cookie identifies the
// buffered message).
type Entry struct {
	Bits   Bits
	Mask   Bits // FullMask for incoming messages
	Cookie any  // request or message owned by the caller
	seq    uint64
}

// Mode selects the queue organization of an Engine.
type Mode uint8

const (
	// Binned is the MPICH CH4-style organization (and the model of a
	// NIC's offloaded match units): entries hash into per-(context,
	// source) bins, with a separate queue for wildcard-masked posted
	// receives, so match cost is independent of total queue depth. The
	// zero value, used by the ch4 device and the fabric.
	Binned Mode = iota
	// Linear is the single-queue linear scan the baseline (CH3-style)
	// device deliberately keeps: every search walks the full queue in
	// insertion order, so the ablation benchmarks retain the
	// queue-depth cost dimension the paper attributes to legacy stacks.
	Linear
)

// exactBinMask covers the fields a bin key is derived from. A posted
// receive whose mask specifies both of them can only ever match
// messages in one bin.
const exactBinMask = ctxMask | srcMask

// binKey collapses (context, source) into the bin index: the top 32
// bits of the match word.
func binKey(b Bits) uint32 { return uint32(b >> srcShift) }

// node is an intrusive queue element. Each live node is threaded on two
// lists: its structural list (a bin or the wildcard queue, via
// bprev/bnext) and the global insertion-order list (via gprev/gnext)
// that serves wildcard searches, cancellation, and Linear mode. Free
// nodes are chained through bnext.
type node struct {
	Entry
	key  uint32 // bin index, valid when !wild
	wild bool   // posted entry living on the wildcard queue

	bprev, bnext *node
	gprev, gnext *node
}

// binList is a FIFO threaded through the bin links. Appends at the
// tail, so the list is seq-ordered.
type binList struct{ head, tail *node }

func (l *binList) push(n *node) {
	n.bprev = l.tail
	n.bnext = nil
	if l.tail != nil {
		l.tail.bnext = n
	} else {
		l.head = n
	}
	l.tail = n
}

func (l *binList) remove(n *node) {
	if n.bprev != nil {
		n.bprev.bnext = n.bnext
	} else {
		l.head = n.bnext
	}
	if n.bnext != nil {
		n.bnext.bprev = n.bprev
	} else {
		l.tail = n.bprev
	}
	n.bprev, n.bnext = nil, nil
}

// allList is the same FIFO threaded through the global links.
type allList struct{ head, tail *node }

func (l *allList) push(n *node) {
	n.gprev = l.tail
	n.gnext = nil
	if l.tail != nil {
		l.tail.gnext = n
	} else {
		l.head = n
	}
	l.tail = n
}

func (l *allList) remove(n *node) {
	if n.gprev != nil {
		n.gprev.gnext = n.gnext
	} else {
		l.head = n.gnext
	}
	if n.gnext != nil {
		n.gnext.gprev = n.gprev
	} else {
		l.tail = n.gprev
	}
	n.gprev, n.gnext = nil, nil
}

// Engine holds the two matching queues of one endpoint. It is not
// synchronized: the owning endpoint serializes access (the fabric
// endpoint under its lock, a single-threaded device directly). Queues
// preserve insertion order, which is what gives MPI its non-overtaking
// guarantee: an incoming message matches the earliest posted receive it
// satisfies, and a posted receive matches the earliest unexpected
// message it satisfies. In Binned mode that earliest-entry semantic is
// preserved by seq arbitration: the exact bin and the wildcard queue
// are each seq-ordered, so comparing their first matches yields the
// globally earliest one.
type Engine struct {
	// Mode selects Binned (default) or Linear organization. It must be
	// set before the first operation and never changed afterwards.
	Mode Mode

	// Searches counts queue elements inspected, exposed so ablation
	// benchmarks can compare hardware-offloaded vs software matching
	// depth.
	Searches int64
	// BinOps counts bin-index computations and bin lookups — the hash
	// cost a binned implementation pays on every operation, charged by
	// the transports so the speedup over Linear is priced honestly.
	BinOps int64
	// BinHits counts matches found through the per-(ctx,src) bin
	// organization; WildHits counts matches found on the wildcard /
	// global arrival-order walk. In Linear mode every match is a
	// global walk, so it lands in WildHits.
	BinHits  int64
	WildHits int64

	seq  uint64
	free *node // recycled nodes, chained through bnext

	postedBins map[uint32]*binList // exact posted receives by (ctx,src)
	postedWild binList             // wildcard-masked posted receives
	postedAll  allList             // every posted receive, insertion order

	unexBins map[uint32]*binList // unexpected messages by (ctx,src)
	unexAll  allList             // every unexpected message, arrival order

	nPosted, nUnex int
}

// alloc returns a zeroed node, reusing a freed one when available so
// steady-state matching performs no heap allocations.
func (e *Engine) alloc() *node {
	n := e.free
	if n == nil {
		return new(node)
	}
	e.free = n.bnext
	n.bnext = nil
	return n
}

// release zeroes a node (dropping its Cookie reference for the GC) and
// chains it onto the free list.
func (e *Engine) release(n *node) {
	*n = node{bnext: e.free}
	e.free = n
}

// bin returns the list for key in m, creating map and list on first
// use. Empty lists stay in the map so steady-state traffic on a working
// set of (ctx,src) pairs never allocates.
func (e *Engine) bin(m *map[uint32]*binList, key uint32) *binList {
	if *m == nil {
		*m = make(map[uint32]*binList)
	}
	l := (*m)[key]
	if l == nil {
		l = new(binList)
		(*m)[key] = l
	}
	return l
}

// findUnexpected returns the earliest unexpected node satisfying
// (bits, mask), or nil. Every element inspected counts as a search.
func (e *Engine) findUnexpected(bits Bits, mask Bits) *node {
	if e.Mode == Binned && mask&exactBinMask == exactBinMask {
		// All candidates share this (ctx,src): one bin holds them in
		// arrival order, so its first match is the global first match.
		e.BinOps++
		l := e.unexBins[binKey(bits)]
		if l == nil {
			return nil
		}
		for n := l.head; n != nil; n = n.bnext {
			e.Searches++
			if n.Bits.Matches(bits, mask) {
				e.BinHits++
				return n
			}
		}
		return nil
	}
	// Wildcard (or Linear-mode) search walks the global arrival-order
	// list, spanning all bins.
	for n := e.unexAll.head; n != nil; n = n.gnext {
		e.Searches++
		if n.Bits.Matches(bits, mask) {
			e.WildHits++
			return n
		}
	}
	return nil
}

// removeUnexpected unlinks an unexpected node from its lists, returns
// its Entry, and recycles the node.
func (e *Engine) removeUnexpected(n *node) Entry {
	ent := n.Entry
	e.unexAll.remove(n)
	if e.Mode == Binned {
		e.unexBins[n.key].remove(n)
	}
	e.nUnex--
	e.release(n)
	return ent
}

// removePosted unlinks a posted node from its lists, returns its Entry,
// and recycles the node.
func (e *Engine) removePosted(n *node) Entry {
	ent := n.Entry
	e.postedAll.remove(n)
	if e.Mode == Binned {
		if n.wild {
			e.postedWild.remove(n)
		} else {
			e.postedBins[n.key].remove(n)
		}
	}
	e.nPosted--
	e.release(n)
	return ent
}

// PostRecv offers a receive to the engine. If a buffered unexpected
// message satisfies it, that message's Entry is returned with ok=true
// and the receive is NOT enqueued (the caller delivers the data).
// Otherwise the receive joins the posted queue.
func (e *Engine) PostRecv(bits Bits, mask Bits, cookie any) (msg Entry, ok bool) {
	if n := e.findUnexpected(bits, mask); n != nil {
		return e.removeUnexpected(n), true
	}
	e.seq++
	n := e.alloc()
	n.Entry = Entry{Bits: bits, Mask: mask, Cookie: cookie, seq: e.seq}
	e.postedAll.push(n)
	if e.Mode == Binned {
		if mask&exactBinMask == exactBinMask {
			n.key = binKey(bits)
			e.BinOps++
			e.bin(&e.postedBins, n.key).push(n)
		} else {
			n.wild = true
			e.postedWild.push(n)
		}
	}
	e.nPosted++
	return Entry{}, false
}

// Arrive offers an incoming message to the engine. If a posted receive
// accepts it, that receive's Entry is returned with ok=true and removed
// from the posted queue. Otherwise the message joins the unexpected
// queue.
func (e *Engine) Arrive(bits Bits, cookie any) (recv Entry, ok bool) {
	var best *node
	fromBin := false
	if e.Mode == Binned {
		e.BinOps++
		if l := e.postedBins[binKey(bits)]; l != nil {
			for n := l.head; n != nil; n = n.bnext {
				e.Searches++
				if bits.Matches(n.Bits, n.Mask) {
					best = n
					fromBin = true
					break
				}
			}
		}
		// Arbitrate against the wildcard queue by seq: both lists are
		// seq-ordered, so the scan stops as soon as it passes the bin
		// candidate — an earlier wildcard match wins, a later one
		// cannot.
		for n := e.postedWild.head; n != nil; n = n.bnext {
			if best != nil && n.seq > best.seq {
				break
			}
			e.Searches++
			if bits.Matches(n.Bits, n.Mask) {
				best = n
				fromBin = false
				break
			}
		}
	} else {
		for n := e.postedAll.head; n != nil; n = n.gnext {
			e.Searches++
			if bits.Matches(n.Bits, n.Mask) {
				best = n
				break
			}
		}
	}
	if best != nil {
		if fromBin {
			e.BinHits++
		} else {
			e.WildHits++
		}
		return e.removePosted(best), true
	}
	e.seq++
	n := e.alloc()
	n.Entry = Entry{Bits: bits, Mask: FullMask, Cookie: cookie, seq: e.seq}
	e.unexAll.push(n)
	if e.Mode == Binned {
		n.key = binKey(bits)
		e.BinOps++
		e.bin(&e.unexBins, n.key).push(n)
	}
	e.nUnex++
	return Entry{}, false
}

// CancelRecv removes a posted receive identified by its cookie,
// implementing MPI_CANCEL for receives. It reports whether the receive
// was still posted.
func (e *Engine) CancelRecv(cookie any) bool {
	for n := e.postedAll.head; n != nil; n = n.gnext {
		if n.Cookie == cookie {
			e.removePosted(n)
			return true
		}
	}
	return false
}

// Probe reports whether an unexpected message satisfying (bits, mask)
// is buffered, without removing it (MPI_IPROBE). Probe traffic walks
// the same queues as everything else and counts toward Searches.
func (e *Engine) Probe(bits Bits, mask Bits) (msg Entry, ok bool) {
	if n := e.findUnexpected(bits, mask); n != nil {
		return n.Entry, true
	}
	return Entry{}, false
}

// ExtractUnexpected removes and returns the first unexpected message
// satisfying (bits, mask) — the matched-probe (MPI_MPROBE) primitive:
// the message leaves the matching engine and can no longer match any
// receive.
func (e *Engine) ExtractUnexpected(bits Bits, mask Bits) (Entry, bool) {
	if n := e.findUnexpected(bits, mask); n != nil {
		return e.removeUnexpected(n), true
	}
	return Entry{}, false
}

// PostedLen exposes the posted-queue depth for tests and diagnostics.
func (e *Engine) PostedLen() int { return e.nPosted }

// UnexpectedLen exposes the unexpected-queue depth.
func (e *Engine) UnexpectedLen() int { return e.nUnex }

// PostedEach calls f for every posted receive in insertion order. The
// wait-graph dump uses it to name unmatched receives; the caller holds
// whatever lock serializes the engine.
func (e *Engine) PostedEach(f func(Entry)) {
	for n := e.postedAll.head; n != nil; n = n.gnext {
		f(n.Entry)
	}
}

// UnexpectedEach calls f for every buffered unexpected message in
// arrival order.
func (e *Engine) UnexpectedEach(f func(Entry)) {
	for n := e.unexAll.head; n != nil; n = n.gnext {
		f(n.Entry)
	}
}

// DescribeRecv renders a posted receive's (Bits, Mask) pair for
// wait-graph dumps: wildcarded fields print as "any".
func (e Entry) DescribeRecv() string {
	src, tag := "any", "any"
	if !e.Mask.SourceWild() {
		src = fmt.Sprintf("%d", e.Bits.Source())
	}
	if !e.Mask.TagWild() {
		tag = fmt.Sprintf("%d", e.Bits.Tag())
	}
	return fmt.Sprintf("src=%s tag=%s ctx=%d", src, tag, e.Bits.Context())
}
