package match

import "testing"

// FuzzEngineNeverLoses drives the matching engine with an arbitrary
// interleaving of arrivals and postings: every message must end up
// delivered exactly once or parked in exactly one queue.
// FuzzBinnedMatchesLinear runs the binned engine and the retained
// linear engine side by side over an arbitrary program of postings,
// arrivals, cancels, probes, and matched probes, and requires identical
// outcomes at every step — the two organizations may only differ in
// cost, never in MPI matching semantics (wildcard interleavings
// included).
func FuzzBinnedMatchesLinear(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{2, 0, 0, 0, 5, 0, 3, 17, 1, 0, 9, 9})
	f.Add([]byte{3, 6, 0, 0, 6, 0, 3, 0, 0, 5, 1, 1, 4, 2, 2})
	f.Add([]byte{1, 1, 1, 2, 2, 2, 3, 3, 3, 4, 4, 4, 5, 5, 5, 0, 0, 0})
	f.Fuzz(func(t *testing.T, prog []byte) {
		bn := &Engine{Mode: Binned}
		ln := &Engine{Mode: Linear}
		cookie := 0
		step := func(i int, got Entry, okB bool, want Entry, okL bool) {
			if okB != okL || (okB && (got.Cookie != want.Cookie || got.Bits != want.Bits)) {
				t.Fatalf("step %d: binned = (%v,%v,%v), linear = (%v,%v,%v)",
					i, got.Cookie, got.Bits, okB, want.Cookie, want.Bits, okL)
			}
			if bn.PostedLen() != ln.PostedLen() || bn.UnexpectedLen() != ln.UnexpectedLen() {
				t.Fatalf("step %d: depths binned (%d,%d) vs linear (%d,%d)", i,
					bn.PostedLen(), bn.UnexpectedLen(), ln.PostedLen(), ln.UnexpectedLen())
			}
		}
		for i := 0; i+2 < len(prog); i += 3 {
			op, a, b := prog[i], prog[i+1], prog[i+2]
			// Tiny value ranges force bin collisions, cross-bin
			// wildcard races, and cross-communicator misses.
			bits := MakeBits(uint16(a%2+1), int(a/2%4), int(b%4))
			switch op % 6 {
			case 0, 1: // message arrival
				c := cookie
				cookie++
				g, okB := bn.Arrive(bits, c)
				w, okL := ln.Arrive(bits, c)
				step(i, g, okB, w, okL)
			case 2: // exact posted receive
				c := cookie
				cookie++
				g, okB := bn.PostRecv(bits, FullMask, c)
				w, okL := ln.PostRecv(bits, FullMask, c)
				step(i, g, okB, w, okL)
			case 3: // wildcard (or no-match-mode) posted receive
				mask := RecvMask(b%2 == 0, b%3 == 0)
				if b%7 == 0 {
					mask = NoMatchMask
				}
				c := cookie
				cookie++
				g, okB := bn.PostRecv(bits, mask, c)
				w, okL := ln.PostRecv(bits, mask, c)
				step(i, g, okB, w, okL)
			case 4: // iprobe or mprobe
				mask := RecvMask(a%2 == 0, a%5 == 0)
				if b%2 == 0 {
					g, okB := bn.Probe(bits, mask)
					w, okL := ln.Probe(bits, mask)
					step(i, g, okB, w, okL)
				} else {
					g, okB := bn.ExtractUnexpected(bits, mask)
					w, okL := ln.ExtractUnexpected(bits, mask)
					step(i, g, okB, w, okL)
				}
			case 5: // cancel a previously issued cookie
				if cookie == 0 {
					continue
				}
				c := (int(a)<<8 | int(b)) % cookie
				okB := bn.CancelRecv(c)
				okL := ln.CancelRecv(c)
				if okB != okL {
					t.Fatalf("step %d: cancel(%d) binned=%v linear=%v", i, c, okB, okL)
				}
			}
		}
	})
}

func FuzzEngineNeverLoses(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, []byte{1, 0, 3, 2})
	f.Add([]byte{}, []byte{5})
	f.Fuzz(func(t *testing.T, arrivals, postings []byte) {
		var e Engine
		delivered := 0
		for i := 0; i < len(arrivals) || i < len(postings); i++ {
			if i < len(arrivals) {
				tag := int(arrivals[i]) % 8
				if _, ok := e.Arrive(MakeBits(1, 0, tag), i); ok {
					delivered++
				}
			}
			if i < len(postings) {
				b := postings[i]
				tag := int(b) % 8
				mask := FullMask
				if b%3 == 0 {
					mask = RecvMask(true, true)
				}
				if _, ok := e.PostRecv(MakeBits(1, 0, tag), mask, i); ok {
					delivered++
				}
			}
		}
		total := len(arrivals) + len(postings)
		if delivered*2+e.PostedLen()+e.UnexpectedLen() != total {
			t.Fatalf("conservation: %d arrivals+postings, %d matched pairs, %d posted, %d unexpected",
				total, delivered, e.PostedLen(), e.UnexpectedLen())
		}
	})
}
