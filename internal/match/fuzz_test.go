package match

import "testing"

// FuzzEngineNeverLoses drives the matching engine with an arbitrary
// interleaving of arrivals and postings: every message must end up
// delivered exactly once or parked in exactly one queue.
func FuzzEngineNeverLoses(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, []byte{1, 0, 3, 2})
	f.Add([]byte{}, []byte{5})
	f.Fuzz(func(t *testing.T, arrivals, postings []byte) {
		var e Engine
		delivered := 0
		for i := 0; i < len(arrivals) || i < len(postings); i++ {
			if i < len(arrivals) {
				tag := int(arrivals[i]) % 8
				if _, ok := e.Arrive(MakeBits(1, 0, tag), i); ok {
					delivered++
				}
			}
			if i < len(postings) {
				b := postings[i]
				tag := int(b) % 8
				mask := FullMask
				if b%3 == 0 {
					mask = RecvMask(true, true)
				}
				if _, ok := e.PostRecv(MakeBits(1, 0, tag), mask, i); ok {
					delivered++
				}
			}
		}
		total := len(arrivals) + len(postings)
		if delivered*2+e.PostedLen()+e.UnexpectedLen() != total {
			t.Fatalf("conservation: %d arrivals+postings, %d matched pairs, %d posted, %d unexpected",
				total, delivered, e.PostedLen(), e.UnexpectedLen())
		}
	})
}
