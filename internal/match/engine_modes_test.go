package match

import "testing"

// forEachMode runs the same scenario against the binned and the linear
// organization: MPI semantics must be identical, only cost differs.
func forEachMode(t *testing.T, run func(t *testing.T, e *Engine)) {
	t.Run("binned", func(t *testing.T) { run(t, &Engine{Mode: Binned}) })
	t.Run("linear", func(t *testing.T) { run(t, &Engine{Mode: Linear}) })
}

func TestModesNonOvertaking(t *testing.T) {
	forEachMode(t, func(t *testing.T, e *Engine) {
		e.PostRecv(MakeBits(1, 2, 3), FullMask, "first")
		e.PostRecv(MakeBits(1, 0, 0), RecvMask(true, true), "second")
		if recv, ok := e.Arrive(MakeBits(1, 2, 3), "m"); !ok || recv.Cookie != "first" {
			t.Fatalf("matched %v, want first", recv.Cookie)
		}
		if recv, ok := e.Arrive(MakeBits(1, 9, 9), "m2"); !ok || recv.Cookie != "second" {
			t.Fatalf("matched %v, want second", recv.Cookie)
		}
	})
}

func TestModesWildcardBeforeExact(t *testing.T) {
	// The wildcard receive is older than the exact one: seq arbitration
	// must hand it the message even though the exact bin has a hit.
	forEachMode(t, func(t *testing.T, e *Engine) {
		e.PostRecv(MakeBits(1, 0, 0), RecvMask(true, true), "wild")
		e.PostRecv(MakeBits(1, 2, 3), FullMask, "exact")
		if recv, ok := e.Arrive(MakeBits(1, 2, 3), "m"); !ok || recv.Cookie != "wild" {
			t.Fatalf("matched %v, want wild (older)", recv.Cookie)
		}
		if recv, ok := e.Arrive(MakeBits(1, 2, 3), "m2"); !ok || recv.Cookie != "exact" {
			t.Fatalf("matched %v, want exact", recv.Cookie)
		}
	})
}

func TestModesUnexpectedWildcardRecv(t *testing.T) {
	// ANY_SOURCE receives must see unexpected messages across bins in
	// arrival order.
	forEachMode(t, func(t *testing.T, e *Engine) {
		e.Arrive(MakeBits(1, 7, 5), "fromSeven")
		e.Arrive(MakeBits(1, 3, 5), "fromThree")
		if msg, ok := e.PostRecv(MakeBits(1, 0, 5), RecvMask(true, false), "r"); !ok || msg.Cookie != "fromSeven" {
			t.Fatalf("matched %v, want fromSeven (arrival order)", msg.Cookie)
		}
		if msg, ok := e.PostRecv(MakeBits(1, 0, 5), RecvMask(true, false), "r2"); !ok || msg.Cookie != "fromThree" {
			t.Fatalf("matched %v, want fromThree", msg.Cookie)
		}
	})
}

func TestModesCancelThenArrive(t *testing.T) {
	forEachMode(t, func(t *testing.T, e *Engine) {
		e.PostRecv(MakeBits(1, 2, 3), FullMask, "r1")
		e.PostRecv(MakeBits(1, 0, 0), RecvMask(true, true), "r2")
		if !e.CancelRecv("r1") {
			t.Fatal("cancel failed")
		}
		if recv, ok := e.Arrive(MakeBits(1, 2, 3), "m"); !ok || recv.Cookie != "r2" {
			t.Fatalf("matched %v, want r2 after cancel", recv.Cookie)
		}
	})
}

func TestModesMProbeHidesMessage(t *testing.T) {
	forEachMode(t, func(t *testing.T, e *Engine) {
		e.Arrive(MakeBits(1, 2, 3), "m")
		if msg, ok := e.ExtractUnexpected(MakeBits(1, 2, 3), FullMask); !ok || msg.Cookie != "m" {
			t.Fatal("mprobe missed buffered message")
		}
		if _, ok := e.PostRecv(MakeBits(1, 2, 3), FullMask, "r"); ok {
			t.Fatal("extracted message matched a later receive")
		}
	})
}

// TestProbeCountsSearches is the accounting bugfix: Probe walks the
// unexpected queue like every other scan and must count what it
// inspects.
func TestProbeCountsSearches(t *testing.T) {
	forEachMode(t, func(t *testing.T, e *Engine) {
		e.Arrive(MakeBits(1, 2, 1), "a")
		e.Arrive(MakeBits(1, 2, 2), "b")
		before := e.Searches
		if _, ok := e.Probe(MakeBits(1, 2, 2), FullMask); !ok {
			t.Fatal("probe missed")
		}
		if e.Searches-before != 2 {
			t.Fatalf("Probe counted %d searches, want 2", e.Searches-before)
		}
	})
}

func TestBinnedSearchDepthIndependent(t *testing.T) {
	// The point of binning: an arrival for source S inspects only S's
	// bin, regardless of how many receives other sources posted.
	e := &Engine{Mode: Binned}
	for src := 0; src < 64; src++ {
		e.PostRecv(MakeBits(1, src, 0), FullMask, src)
	}
	before := e.Searches
	if _, ok := e.Arrive(MakeBits(1, 63, 0), "m"); !ok {
		t.Fatal("arrive missed posted receive")
	}
	if got := e.Searches - before; got != 1 {
		t.Fatalf("binned arrive inspected %d entries, want 1", got)
	}

	l := &Engine{Mode: Linear}
	for src := 0; src < 64; src++ {
		l.PostRecv(MakeBits(1, src, 0), FullMask, src)
	}
	before = l.Searches
	l.Arrive(MakeBits(1, 63, 0), "m")
	if got := l.Searches - before; got != 64 {
		t.Fatalf("linear arrive inspected %d entries, want 64", got)
	}
}

func TestBinOpsCounting(t *testing.T) {
	e := &Engine{Mode: Binned}
	e.PostRecv(MakeBits(1, 2, 3), FullMask, "r")
	e.Arrive(MakeBits(1, 2, 3), "m")
	if e.BinOps == 0 {
		t.Fatal("binned engine performed no counted bin operations")
	}
	l := &Engine{Mode: Linear}
	l.PostRecv(MakeBits(1, 2, 3), FullMask, "r")
	l.Arrive(MakeBits(1, 2, 3), "m")
	if l.BinOps != 0 {
		t.Fatalf("linear engine counted %d bin operations, want 0", l.BinOps)
	}
}

// TestSteadyStateNoAllocs pins the free-list property: once warmed, a
// post/arrive pairing cycle allocates nothing.
func TestSteadyStateNoAllocs(t *testing.T) {
	forEachMode(t, func(t *testing.T, e *Engine) {
		e.PostRecv(MakeBits(1, 3, 0), FullMask, 1)
		e.Arrive(MakeBits(1, 3, 0), 2)
		avg := testing.AllocsPerRun(200, func() {
			e.PostRecv(MakeBits(1, 3, 0), FullMask, 1)
			e.Arrive(MakeBits(1, 3, 0), 2)
		})
		if avg != 0 {
			t.Fatalf("steady-state pairing allocates %.1f objects/op, want 0", avg)
		}
	})
}
