// Package match implements the MPI message-matching engine: the posted
// receive queue and the unexpected message queue keyed by the
// (communicator context, source, tag) triplet, with MPI_ANY_SOURCE /
// MPI_ANY_TAG wildcards. The triplet is encoded into a 64-bit match
// word the way OFI-capable NICs consume it, so the same engine serves
// as the fabric's "hardware" matching unit and as the baseline device's
// software matching path. It also implements the arrival-order mode of
// the paper's no-match-bits proposal (Section 3.6): masking source and
// tag away leaves only communicator isolation.
package match

import "fmt"

// Bits is a 64-bit match word: context id (16 bits) | source rank
// (16 bits) | tag (32 bits).
type Bits uint64

// Field widths and shifts of the match-word layout.
const (
	ctxShift = 48
	srcShift = 32
	tagShift = 0

	ctxMask Bits = 0xffff << ctxShift
	srcMask Bits = 0xffff << srcShift
	tagMask Bits = 0xffffffff << tagShift

	// MaxContext is the largest encodable communicator context id.
	MaxContext = 1<<16 - 1
	// MaxSource is the largest encodable source rank.
	MaxSource = 1<<16 - 1
	// MaxTag is the largest encodable tag (MPI guarantees at least
	// 32767 for MPI_TAG_UB; we provide the full 31-bit positive range).
	MaxTag = 1<<31 - 1
)

// MakeBits encodes a fully specified (context, source, tag) triplet.
// Senders always produce fully specified bits.
func MakeBits(context uint16, source int, tag int) Bits {
	return Bits(context)<<ctxShift | Bits(uint16(source))<<srcShift | Bits(uint32(tag))<<tagShift
}

// FullMask matches on all three fields (the ordinary MPI receive).
const FullMask = ctxMask | srcMask | tagMask

// RecvMask builds the mask for a posted receive: wildcards clear the
// corresponding field from the comparison.
func RecvMask(anySource, anyTag bool) Bits {
	m := FullMask
	if anySource {
		m &^= srcMask
	}
	if anyTag {
		m &^= tagMask
	}
	return m
}

// NoMatchMask retains only communicator isolation: source and tag are
// ignored and messages match receives in arrival order (the
// MPI_ISEND_NOMATCH proposal).
const NoMatchMask = ctxMask

// Context extracts the communicator context id.
func (b Bits) Context() uint16 { return uint16(b >> ctxShift) }

// Source extracts the source rank.
func (b Bits) Source() int { return int(uint16(b >> srcShift)) }

// Tag extracts the tag.
func (b Bits) Tag() int { return int(uint32(b >> tagShift)) }

// ExactCtxTag reports whether a mask fully specifies the context and
// tag fields — the fields VCI selection hashes. A receive whose mask
// passes this can name a single virtual interface; MPI_ANY_TAG and
// no-match-bits masks cannot.
func (b Bits) ExactCtxTag() bool { return b&(ctxMask|tagMask) == ctxMask|tagMask }

// Matches reports whether incoming fully-specified bits satisfy a
// posted (bits, mask) pair.
func (b Bits) Matches(posted Bits, mask Bits) bool {
	return b&mask == posted&mask
}

// SourceWild reports whether a mask leaves the source unconstrained
// (MPI_ANY_SOURCE, or a no-match-bits mask).
func (b Bits) SourceWild() bool { return b&srcMask == 0 }

// TagWild reports whether a mask leaves the tag unconstrained
// (MPI_ANY_TAG, or a no-match-bits mask).
func (b Bits) TagWild() bool { return b&tagMask == 0 }

// String renders the triplet for diagnostics.
func (b Bits) String() string {
	return fmt.Sprintf("ctx=%d src=%d tag=%d", b.Context(), b.Source(), b.Tag())
}
