package match

// Reserved tag ranges of the collective context. The library's
// machinery multiplexes several tag consumers onto each communicator's
// collective context; the ranges below keep them disjoint so traffic of
// one subsystem can never match another's, and so diagnosis tooling can
// name the subsystem a stuck receive belongs to from its tag alone.
//
// Layout (all on the collective context; user pt2pt tags live on the
// point-to-point context and are unconstrained up to MaxTag):
//
//	[1, 32)                      blocking collectives (fixed per-op tags)
//	[TagNBCBase, +TagNBCSpan)    nonblocking-collective schedules
//	[TagPartBase, +TagPartSpan)  partitioned pt2pt chunk traffic
//	[TagPersistCollBase, +Span)  persistent-collective schedules
const (
	// TagNBCBase / TagNBCSpan bound the per-communicator
	// nonblocking-collective tag sequence.
	TagNBCBase = 32
	TagNBCSpan = 1 << 20

	// TagPartBase is the base of the partitioned point-to-point chunk
	// tags: chunk tag = TagPartBase + userTag*TagPartMaxChunks + chunk.
	// With user tags below TagPartMaxUserTag and at most TagPartMaxChunks
	// chunks per operation the encoded range is [TagPartBase, 2*TagPartBase).
	TagPartBase        = 1 << 21
	TagPartMaxUserTag  = 1 << 10
	TagPartMaxChunks   = 1 << 11
	tagPartEnd         = TagPartBase + TagPartMaxUserTag*TagPartMaxChunks

	// TagPersistCollBase / TagPersistCollSpan bound the
	// persistent-collective schedule tags (each Init draws one; every
	// Start replays it, so the tag must outlive the nbc sequence's).
	TagPersistCollBase = 1 << 23
	TagPersistCollSpan = 1 << 20
)

// TagClass names the reserved subsystem a tag belongs to: "partitioned"
// for partitioned pt2pt chunk traffic, "persistent-coll" for persistent
// collective schedules, "" for everything else (user tags and the
// low collective ranges share small values, so only the unambiguous
// high ranges are classified). Diagnosis tooling labels stuck receives
// with it.
func TagClass(tag int) string {
	switch {
	case tag >= TagPartBase && tag < tagPartEnd:
		return "partitioned"
	case tag >= TagPersistCollBase && tag < TagPersistCollBase+TagPersistCollSpan:
		return "persistent-coll"
	}
	return ""
}
