package match

import (
	"testing"
	"testing/quick"
)

func TestBitsRoundTrip(t *testing.T) {
	cases := []struct {
		ctx uint16
		src int
		tag int
	}{
		{0, 0, 0},
		{1, 2, 3},
		{MaxContext, MaxSource, 12345},
		{7, 1000, MaxTag},
	}
	for _, c := range cases {
		b := MakeBits(c.ctx, c.src, c.tag)
		if b.Context() != c.ctx || b.Source() != c.src || b.Tag() != c.tag {
			t.Errorf("roundtrip(%d,%d,%d) = (%d,%d,%d)",
				c.ctx, c.src, c.tag, b.Context(), b.Source(), b.Tag())
		}
	}
}

func TestBitsRoundTripProperty(t *testing.T) {
	f := func(ctx uint16, src uint16, tag uint32) bool {
		tg := int(tag % (MaxTag + 1))
		b := MakeBits(ctx, int(src), tg)
		return b.Context() == ctx && b.Source() == int(src) && b.Tag() == tg
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExactMatch(t *testing.T) {
	var e Engine
	// Post a receive for (ctx=1, src=2, tag=3); nothing buffered.
	if _, ok := e.PostRecv(MakeBits(1, 2, 3), FullMask, "r1"); ok {
		t.Fatal("PostRecv matched on empty engine")
	}
	// Wrong tag does not match.
	if _, ok := e.Arrive(MakeBits(1, 2, 4), "m-wrong"); ok {
		t.Fatal("message with wrong tag matched")
	}
	// Right triplet matches the posted receive.
	recv, ok := e.Arrive(MakeBits(1, 2, 3), "m1")
	if !ok || recv.Cookie != "r1" {
		t.Fatalf("Arrive = (%v, %v), want r1", recv.Cookie, ok)
	}
	if e.PostedLen() != 0 || e.UnexpectedLen() != 1 {
		t.Errorf("queue depths = (%d,%d), want (0,1)", e.PostedLen(), e.UnexpectedLen())
	}
}

func TestUnexpectedThenRecv(t *testing.T) {
	var e Engine
	e.Arrive(MakeBits(5, 0, 9), "m1")
	msg, ok := e.PostRecv(MakeBits(5, 0, 9), FullMask, "r1")
	if !ok || msg.Cookie != "m1" {
		t.Fatalf("PostRecv = (%v,%v), want m1", msg.Cookie, ok)
	}
	if e.UnexpectedLen() != 0 {
		t.Error("matched unexpected message not removed")
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	var e Engine
	e.PostRecv(MakeBits(1, 0, 0), RecvMask(true, true), "rAny")
	recv, ok := e.Arrive(MakeBits(1, 42, 17), "m")
	if !ok || recv.Cookie != "rAny" {
		t.Fatal("wildcard receive did not match")
	}
	// Communicator context is never wildcarded: different ctx must miss.
	e.PostRecv(MakeBits(1, 0, 0), RecvMask(true, true), "rAny2")
	if _, ok := e.Arrive(MakeBits(2, 42, 17), "m2"); ok {
		t.Fatal("wildcard receive matched across communicators")
	}
}

func TestAnySourceOnly(t *testing.T) {
	var e Engine
	e.PostRecv(MakeBits(1, 0, 7), RecvMask(true, false), "r")
	if _, ok := e.Arrive(MakeBits(1, 3, 8), "bad-tag"); ok {
		t.Fatal("ANY_SOURCE receive matched wrong tag")
	}
	if recv, ok := e.Arrive(MakeBits(1, 3, 7), "good"); !ok || recv.Cookie != "r" {
		t.Fatal("ANY_SOURCE receive did not match right tag")
	}
}

func TestNonOvertakingPostedOrder(t *testing.T) {
	// Two receives that both accept the message: the earlier one wins.
	var e Engine
	e.PostRecv(MakeBits(1, 2, 3), FullMask, "first")
	e.PostRecv(MakeBits(1, 0, 0), RecvMask(true, true), "second")
	recv, ok := e.Arrive(MakeBits(1, 2, 3), "m")
	if !ok || recv.Cookie != "first" {
		t.Fatalf("matched %v, want first (non-overtaking)", recv.Cookie)
	}
}

func TestNonOvertakingArrivalOrder(t *testing.T) {
	// Two buffered messages that both satisfy the receive: earliest
	// arrival wins.
	var e Engine
	e.Arrive(MakeBits(1, 2, 3), "early")
	e.Arrive(MakeBits(1, 2, 3), "late")
	msg, ok := e.PostRecv(MakeBits(1, 2, 3), FullMask, "r")
	if !ok || msg.Cookie != "early" {
		t.Fatalf("matched %v, want early", msg.Cookie)
	}
	msg, ok = e.PostRecv(MakeBits(1, 2, 3), FullMask, "r2")
	if !ok || msg.Cookie != "late" {
		t.Fatalf("matched %v, want late", msg.Cookie)
	}
}

func TestNoMatchMode(t *testing.T) {
	// Arrival-order mode: source and tag are ignored, context retained.
	var e Engine
	e.Arrive(MakeBits(1, 9, 100), "m1")
	e.Arrive(MakeBits(1, 8, 200), "m2")
	e.Arrive(MakeBits(2, 9, 100), "otherComm")
	msg, ok := e.PostRecv(MakeBits(1, 0, 0), NoMatchMask, "r")
	if !ok || msg.Cookie != "m1" {
		t.Fatalf("no-match recv got %v, want m1 (arrival order)", msg.Cookie)
	}
	msg, ok = e.PostRecv(MakeBits(1, 0, 0), NoMatchMask, "r")
	if !ok || msg.Cookie != "m2" {
		t.Fatalf("no-match recv got %v, want m2", msg.Cookie)
	}
	if _, ok := e.PostRecv(MakeBits(1, 0, 0), NoMatchMask, "r"); ok {
		t.Fatal("no-match recv crossed communicator isolation")
	}
}

func TestCancelRecv(t *testing.T) {
	var e Engine
	e.PostRecv(MakeBits(1, 2, 3), FullMask, "r1")
	if !e.CancelRecv("r1") {
		t.Fatal("CancelRecv failed on posted receive")
	}
	if e.CancelRecv("r1") {
		t.Fatal("CancelRecv succeeded twice")
	}
	if _, ok := e.Arrive(MakeBits(1, 2, 3), "m"); ok {
		t.Fatal("message matched a cancelled receive")
	}
}

func TestProbe(t *testing.T) {
	var e Engine
	if _, ok := e.Probe(MakeBits(1, 2, 3), FullMask); ok {
		t.Fatal("Probe hit on empty engine")
	}
	e.Arrive(MakeBits(1, 2, 3), "m")
	msg, ok := e.Probe(MakeBits(1, 0, 0), RecvMask(true, true))
	if !ok || msg.Cookie != "m" {
		t.Fatal("Probe missed buffered message")
	}
	if e.UnexpectedLen() != 1 {
		t.Fatal("Probe removed the message")
	}
}

// Property: pairing N sends with N fully-specified receives in any
// posting order delivers each message to the receive with its triplet,
// and leaves both queues empty.
func TestPairingDrainsQueues(t *testing.T) {
	f := func(order []bool, n uint8) bool {
		count := int(n%8) + 1
		var e Engine
		delivered := map[int]int{} // tag -> matched count
		sent, recvd := 0, 0
		// Interleave sends and receives per `order`, then drain.
		step := func(send bool) {
			if send && sent < count {
				e.Arrive(MakeBits(3, 0, sent), sent)
				sent++
			} else if !send && recvd < count {
				e.PostRecv(MakeBits(3, 0, recvd), FullMask, recvd)
				recvd++
			}
		}
		for _, b := range order {
			step(b)
		}
		for sent < count {
			step(true)
		}
		for recvd < count {
			step(false)
		}
		// After all arrivals and postings with identical triplet sets,
		// every pairing must have happened: both queues empty.
		_ = delivered
		return e.PostedLen() == 0 && e.UnexpectedLen() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
