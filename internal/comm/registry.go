package comm

import (
	"sync"

	"gompi/internal/abort"
)

// Registry is the job-wide coordination service backing collective
// communicator creation: it allocates context ids consistently across
// ranks and provides the rendezvous exchange that replaces the
// allgather a distributed MPI would run. It is shared by all ranks of
// one world and is internally synchronized. None of this is on the
// communication critical path.
type Registry struct {
	mu      sync.Mutex
	cond    *sync.Cond
	nextCtx uint16
	ctx     map[ctxKey]uint16
	slots   map[slotKey]*slot
	aborted abort.Flag
}

// ctxKey identifies one collective context-id allocation: all ranks of
// the parent communicator performing the same (seq-th) creation on the
// same color must agree on the id.
type ctxKey struct {
	parent uint16
	seq    int
	color  int
}

type slotKey struct {
	parent uint16
	seq    int
}

// slot is a rendezvous allgather cell.
type slot struct {
	vals    []any
	present int
	taken   int
}

// NewRegistry creates the coordination service for one world. Context
// ids 0 and 1 are reserved for MPI_COMM_WORLD's point-to-point and
// collective contexts.
func NewRegistry() *Registry {
	r := &Registry{nextCtx: 2, ctx: make(map[ctxKey]uint16), slots: make(map[slotKey]*slot)}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// AllocContext returns the context-id pair (pt2pt, coll) for the seq-th
// communicator created from parent with the given color. Every rank
// asking with the same key receives the same pair; the first request
// allocates.
func (r *Registry) AllocContext(parent uint16, seq, color int) (uint16, uint16) {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := ctxKey{parent, seq, color}
	id, ok := r.ctx[k]
	if !ok {
		id = r.nextCtx
		r.nextCtx += 2 // pt2pt and collective contexts
		if r.nextCtx < id {
			panic("comm: context id space exhausted")
		}
		r.ctx[k] = id
	}
	return id, id + 1
}

// Abort wakes every Exchange waiter; their rendezvous panics with
// abort.ErrWorldAborted.
func (r *Registry) Abort() {
	r.aborted.Raise()
	r.mu.Lock()
	r.cond.Broadcast()
	r.mu.Unlock()
}

// Exchange is the rendezvous allgather used by Split and Create: each
// of size participants deposits its value under (parent, seq) and
// receives the full slice indexed by parent rank. The slot is reclaimed
// once every participant has taken the result.
func (r *Registry) Exchange(parent uint16, seq, rank, size int, val any) []any {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := slotKey{parent, seq}
	s := r.slots[k]
	if s == nil {
		s = &slot{vals: make([]any, size)}
		r.slots[k] = s
	}
	s.vals[rank] = val
	s.present++
	if s.present == size {
		r.cond.Broadcast()
	}
	for s.present < size {
		// The deferred Unlock releases the mutex when Check panics.
		r.aborted.Check()
		r.cond.Wait()
	}
	out := s.vals
	s.taken++
	if s.taken == size {
		delete(r.slots, k)
	}
	return out
}
