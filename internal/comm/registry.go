package comm

import (
	"sort"
	"sync"

	"gompi/internal/abort"
	"gompi/internal/group"
)

// Registry is the job-wide coordination service backing collective
// communicator creation: it allocates context ids consistently across
// ranks and provides the rendezvous exchange that replaces the
// allgather a distributed MPI would run. It is shared by all ranks of
// one world and is internally synchronized. None of this is on the
// communication critical path.
type Registry struct {
	mu      sync.Mutex
	cond    *sync.Cond
	nextCtx uint16
	ctx     map[ctxKey]uint16
	slots   map[slotKey]*slot
	splits  map[slotKey]*splitSlot
	aborted abort.Flag
}

// ctxKey identifies one collective context-id allocation: all ranks of
// the parent communicator performing the same (seq-th) creation on the
// same color must agree on the id.
type ctxKey struct {
	parent uint16
	seq    int
	color  int
}

type slotKey struct {
	parent uint16
	seq    int
}

// slot is a rendezvous allgather cell.
type slot struct {
	vals    []any
	present int
	taken   int
}

// NewRegistry creates the coordination service for one world. Context
// ids 0 and 1 are reserved for MPI_COMM_WORLD's point-to-point and
// collective contexts.
func NewRegistry() *Registry {
	r := &Registry{
		nextCtx: 2,
		ctx:     make(map[ctxKey]uint16),
		slots:   make(map[slotKey]*slot),
		splits:  make(map[slotKey]*splitSlot),
	}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// AllocContext returns the context-id pair (pt2pt, coll) for the seq-th
// communicator created from parent with the given color. Every rank
// asking with the same key receives the same pair; the first request
// allocates.
func (r *Registry) AllocContext(parent uint16, seq, color int) (uint16, uint16) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.allocContextLocked(parent, seq, color)
}

// allocContextLocked is AllocContext with r.mu already held, for use by
// the shared-split builder which runs under the registry lock.
func (r *Registry) allocContextLocked(parent uint16, seq, color int) (uint16, uint16) {
	k := ctxKey{parent, seq, color}
	id, ok := r.ctx[k]
	if !ok {
		id = r.nextCtx
		r.nextCtx += 2 // pt2pt and collective contexts
		if r.nextCtx < id {
			panic("comm: context id space exhausted")
		}
		r.ctx[k] = id
	}
	return id, id + 1
}

// Abort wakes every Exchange waiter; their rendezvous panics with
// abort.ErrWorldAborted.
func (r *Registry) Abort() {
	r.aborted.Raise()
	r.mu.Lock()
	r.cond.Broadcast()
	r.mu.Unlock()
}

// SplitSpec is one rank's contribution to a shared split collective:
// its color/key pair, its rank in the parent communicator, and its
// world rank (carried along so the shared builder never touches the
// parent's rank table).
type SplitSpec struct {
	Color, Key, Rank, World int
}

// SplitResult is the per-color outcome of a shared split: one
// Group/RankTable pair built once by the last depositor and shared by
// every member rank, plus the color's context-id pair. Members recover
// their own new rank with Grp.Rank(world) — O(1) on both group
// representations.
type SplitResult struct {
	Grp   *group.Group
	Table *RankTable
	Ctx   uint16
	Coll  uint16
}

// splitSlot is the rendezvous cell for one split collective.
type splitSlot struct {
	specs   []SplitSpec
	taken   int
	results map[int]*SplitResult // nil until the last depositor builds
}

// SplitShared is the collective behind MPI_COMM_SPLIT, restructured so
// the whole collective does O(n log n) total work instead of O(n) per
// member (O(n²) total): every rank deposits its SplitSpec, the last
// depositor sorts once, builds one shared Group/RankTable per color,
// and allocates context ids; everyone else just picks up the shared
// result for its color. Ranks with color Undefined receive nil.
func (r *Registry) SplitShared(parent uint16, seq, size int, spec SplitSpec) *SplitResult {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := slotKey{parent, seq}
	s := r.splits[k]
	if s == nil {
		s = &splitSlot{specs: make([]SplitSpec, 0, size)}
		r.splits[k] = s
	}
	s.specs = append(s.specs, spec)
	if len(s.specs) == size {
		s.results = r.buildSplitLocked(parent, seq, s.specs)
		s.specs = nil
		r.cond.Broadcast()
	}
	for s.results == nil {
		// The deferred Unlock releases the mutex when Check panics.
		r.aborted.Check()
		r.cond.Wait()
	}
	res := s.results[spec.Color]
	s.taken++
	if s.taken == size {
		delete(r.splits, k)
	}
	return res
}

// buildSplitLocked runs once per split collective, under r.mu: sort all
// specs by (color, key, parent rank), then cut the sorted slice into
// per-color groups. Group construction goes through group.FromRanks, so
// regular partitions (node blocks, strided leader sets) collapse to the
// O(1) arithmetic representation and nothing here retains an O(n) copy
// per member.
func (r *Registry) buildSplitLocked(parent uint16, seq int, specs []SplitSpec) map[int]*SplitResult {
	sort.Slice(specs, func(i, j int) bool {
		if specs[i].Color != specs[j].Color {
			return specs[i].Color < specs[j].Color
		}
		if specs[i].Key != specs[j].Key {
			return specs[i].Key < specs[j].Key
		}
		return specs[i].Rank < specs[j].Rank
	})
	out := make(map[int]*SplitResult)
	for i := 0; i < len(specs); {
		j := i
		for j < len(specs) && specs[j].Color == specs[i].Color {
			j++
		}
		if specs[i].Color != Undefined {
			world := make([]int, j-i)
			for m := i; m < j; m++ {
				world[m-i] = specs[m].World
			}
			g := group.FromRanks(world)
			ctx, coll := r.allocContextLocked(parent, seq, specs[i].Color)
			out[specs[i].Color] = &SplitResult{Grp: g, Table: BuildRankTable(g), Ctx: ctx, Coll: coll}
		}
		i = j
	}
	return out
}

// Exchange is the rendezvous allgather used by Split and Create: each
// of size participants deposits its value under (parent, seq) and
// receives the full slice indexed by parent rank. The slot is reclaimed
// once every participant has taken the result.
func (r *Registry) Exchange(parent uint16, seq, rank, size int, val any) []any {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := slotKey{parent, seq}
	s := r.slots[k]
	if s == nil {
		s = &slot{vals: make([]any, size)}
		r.slots[k] = s
	}
	s.vals[rank] = val
	s.present++
	if s.present == size {
		r.cond.Broadcast()
	}
	for s.present < size {
		// The deferred Unlock releases the mutex when Check panics.
		r.aborted.Check()
		r.cond.Wait()
	}
	out := s.vals
	s.taken++
	if s.taken == size {
		delete(r.slots, k)
	}
	return out
}
