package comm

import (
	"errors"
	"fmt"
	"sync"

	"gompi/internal/group"
	"gompi/internal/request"
)

// Errors returned by communicator operations.
var (
	ErrBadRank = errors.New("comm: rank out of communicator range")
	ErrFreed   = errors.New("comm: communicator already freed")
)

// Undefined is returned from Split with color Undefined: the caller is
// not a member of any resulting communicator (MPI_UNDEFINED).
const Undefined = -1

// Comm is one rank's view of a communicator. The fields read on the
// communication critical path (Ctx, Table, MyRank) are immutable after
// creation; Lock is taken only under MPI_THREAD_MULTIPLE.
type Comm struct {
	Grp     *group.Group
	Table   *RankTable
	MyRank  int
	Ctx     uint16 // point-to-point context id (high bits of match words)
	CollCtx uint16 // collective context id (isolates collectives from pt2pt)

	Lock sync.Mutex // per-object critical section (MPI_THREAD_MULTIPLE)

	// NoReq counts outstanding requestless operations issued on this
	// communicator (the MPI_ISEND_NOREQ / MPI_COMM_WAITALL proposal,
	// Section 3.5). Owned by the rank.
	NoReq request.Counter

	// AssertNoMatch caches the info hint of the paper's Section 3.6
	// alternative proposal: the application promises to receive
	// everything on this communicator with MPI_ANY_SOURCE and
	// MPI_ANY_TAG, so senders may drop the match bits. The hint
	// variant costs an extra dereference and branch on every send
	// compared with the dedicated MPI_ISEND_NOMATCH function — which
	// is exactly the trade-off the paper quantifies.
	AssertNoMatch bool

	// Hints caches the MPI-4-style communicator assertions that let the
	// device refine its channel selection. Set at creation time (before
	// any traffic) via the hint-carrying Dup/Split variants or SetInfo;
	// immutable once communication begins.
	Hints Hints

	// CollAlgo caches the HintCollAlgorithm info key: a collective
	// algorithm family name pinning selection for this communicator
	// (empty means automatic). The MPI layer parses it at each
	// collective entry.
	CollAlgo string

	reg        *Registry
	seq        int // per-rank count of creation collectives on this comm
	nbcSeq     int // nonblocking-collective tag sequence (owned by the rank)
	persistSeq int // persistent-collective tag sequence (owned by the rank)
	info     map[string]string
	freed    bool
	collView *Comm

	// topoCache memoizes the node structure two-level collectives
	// derive over this communicator, keyed by the preferring root.
	// Owned by the rank: collectives on one communicator are serialized
	// per rank (MPI semantics), so no lock is needed.
	topoCache map[int]any
}

// LoadTopo returns the cached collective topology for key, if present.
func (c *Comm) LoadTopo(key int) (any, bool) {
	v, ok := c.topoCache[key]
	return v, ok
}

// StoreTopo caches the collective topology for key.
func (c *Comm) StoreTopo(key int, v any) {
	if c.topoCache == nil {
		c.topoCache = make(map[int]any)
	}
	c.topoCache[key] = v
}

// NextNBCSeq returns the next nonblocking-collective sequence number.
// Collectives are called in the same order on every rank of a
// communicator, so per-rank counters agree globally and the derived
// tags isolate concurrently outstanding schedules.
func (c *Comm) NextNBCSeq() int {
	s := c.nbcSeq
	c.nbcSeq++
	return s
}

// NextPersistSeq returns the next persistent-collective sequence
// number. Like NBC sequences, persistent-collective Inits are
// collective calls made in the same order on every rank, so per-rank
// counters agree globally; unlike NBC tags, the derived tag is replayed
// by every Start of the operation, so it draws from a separate range.
func (c *Comm) NextPersistSeq() int {
	s := c.persistSeq
	c.persistSeq++
	return s
}

// Hints are the communicator assertions of MPI-4's mpi_assert_* info
// keys: promises about how the application will use the communicator,
// which the device exchanges for a better traffic-to-VCI mapping. A
// violated assertion is erroneous; this library detects violations and
// returns a defined error instead of corrupting matching.
type Hints struct {
	// NoAnySource: no receive or probe on this communicator ever
	// passes MPI_ANY_SOURCE.
	NoAnySource bool
	// NoAnyTag: no receive or probe ever passes MPI_ANY_TAG.
	NoAnyTag bool
	// ExactLength: every receive buffer is exactly the size of the
	// message that will match it — no truncation, no short delivery.
	ExactLength bool
}

// Pinned reports whether the hints entitle the communicator to a
// private virtual interface: once either wildcard is ruled out, every
// receive that could still be posted (including the remaining legal
// wildcard) can be served by one interface, so the cross-VCI fallback
// is never needed.
func (h Hints) Pinned() bool { return h.NoAnySource || h.NoAnyTag }

// The info keys that cache into Hints (MPI-4 spelling).
const (
	HintNoAnySource = "mpi_assert_no_any_source"
	HintNoAnyTag    = "mpi_assert_no_any_tag"
	HintExactLength = "mpi_assert_exact_length"
)

// HintCollAlgorithm pins collective algorithm selection on the
// communicator (a gompi extension key; values are the nbc package's
// algorithm family names, e.g. "two-level", "flat", "rdouble").
const HintCollAlgorithm = "gompi_coll_algorithm"

// CollView returns a view of the communicator whose point-to-point
// context is the collective context: the machine-independent
// collectives send through it so application traffic can never match
// collective traffic. The view is cached per rank.
func (c *Comm) CollView() *Comm {
	if c.collView == nil {
		c.collView = &Comm{
			Grp:     c.Grp,
			Table:   c.Table,
			MyRank:  c.MyRank,
			Ctx:     c.CollCtx,
			CollCtx: c.CollCtx,
			reg:     c.reg,
		}
		c.collView.collView = c.collView
	}
	return c.collView
}

// Exchange performs the registry rendezvous allgather on this
// communicator: each rank deposits val and receives every rank's value
// indexed by communicator rank. Collective; used by window creation.
func (c *Comm) Exchange(val any) []any {
	seq := c.seq
	c.seq++
	return c.reg.Exchange(c.Ctx, seq, c.MyRank, c.Size(), val)
}

// NewWorld builds rank myRank's view of MPI_COMM_WORLD over n ranks.
func NewWorld(reg *Registry, n, myRank int) *Comm {
	g := group.WorldGroup(n)
	return &Comm{
		Grp:     g,
		Table:   BuildRankTable(g),
		MyRank:  myRank,
		Ctx:     0,
		CollCtx: 1,
		reg:     reg,
	}
}

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return c.Grp.Size() }

// Rank returns the calling rank's rank within the communicator.
func (c *Comm) Rank() int { return c.MyRank }

// Group returns the communicator's group.
func (c *Comm) Group() *group.Group { return c.Grp }

// Freed reports whether Free has been called.
func (c *Comm) Freed() bool { return c.freed }

// Free marks the communicator released. Pending operations are the
// caller's responsibility, as in MPI_COMM_FREE.
func (c *Comm) Free() error {
	if c.freed {
		return ErrFreed
	}
	c.freed = true
	return nil
}

// SetInfo attaches an info hint (MPI_COMM_SET_INFO). The
// "mpi_assert_allow_overtaking" hint (and its gompi alias
// "gompi_assert_no_match") caches into the AssertNoMatch fast-path
// flag.
func (c *Comm) SetInfo(key, value string) {
	if c.info == nil {
		c.info = make(map[string]string)
	}
	c.info[key] = value
	switch key {
	case "mpi_assert_allow_overtaking", "gompi_assert_no_match":
		c.AssertNoMatch = value == "true"
	case HintNoAnySource:
		c.Hints.NoAnySource = value == "true"
	case HintNoAnyTag:
		c.Hints.NoAnyTag = value == "true"
	case HintExactLength:
		c.Hints.ExactLength = value == "true"
	case HintCollAlgorithm:
		c.CollAlgo = value
	}
}

// Info returns the hint for key, if set (MPI_COMM_GET_INFO).
func (c *Comm) Info(key string) (string, bool) {
	v, ok := c.info[key]
	return v, ok
}

// WorldRank translates a communicator rank to the world/fabric rank.
// The device charges the translation cost according to Table.Kind.
func (c *Comm) WorldRank(r int) (int, error) {
	if r < 0 || r >= c.Grp.Size() {
		return -1, fmt.Errorf("%w: %d not in [0,%d)", ErrBadRank, r, c.Grp.Size())
	}
	return c.Table.World(r), nil
}

// Dup creates a duplicate with a fresh context (MPI_COMM_DUP). It is a
// creation collective: every rank of c must call it in the same order.
func (c *Comm) Dup() (*Comm, error) {
	if c.freed {
		return nil, ErrFreed
	}
	seq := c.seq
	c.seq++
	ctx, coll := c.reg.AllocContext(c.Ctx, seq, 0)
	dup := &Comm{
		Grp:     c.Grp,
		Table:   c.Table,
		MyRank:  c.MyRank,
		Ctx:     ctx,
		CollCtx: coll,
		reg:     c.reg,
	}
	for k, v := range c.info {
		dup.SetInfo(k, v)
	}
	return dup, nil
}

// Split partitions the communicator by color and orders each part by
// (key, parent rank) (MPI_COMM_SPLIT). Ranks passing color == Undefined
// receive nil.
//
// The heavy lifting happens once per collective, not once per member:
// the registry's shared-split builder sorts the deposited specs and
// constructs a single Group/RankTable per color that all members share.
// Each rank's own contribution here is O(1) plus its group-rank lookup.
func (c *Comm) Split(color, key int) (*Comm, error) {
	if c.freed {
		return nil, ErrFreed
	}
	seq := c.seq
	c.seq++
	w, err := c.WorldRank(c.MyRank)
	if err != nil {
		return nil, err
	}
	res := c.reg.SplitShared(c.Ctx, seq, c.Size(), SplitSpec{Color: color, Key: key, Rank: c.MyRank, World: w})
	if res == nil {
		return nil, nil
	}
	return &Comm{
		Grp:     res.Grp,
		Table:   res.Table,
		MyRank:  res.Grp.Rank(w),
		Ctx:     res.Ctx,
		CollCtx: res.Coll,
		reg:     c.reg,
	}, nil
}

// Create builds a communicator over the given subgroup of c
// (MPI_COMM_CREATE). Every rank of c must call it with an equal group;
// ranks outside the group receive nil. Like Split, it is a creation
// collective on c.
func (c *Comm) Create(g *group.Group) (*Comm, error) {
	if c.freed {
		return nil, ErrFreed
	}
	seq := c.seq
	c.seq++
	// All ranks must agree on the context id; participate in the
	// allocation even when not a member.
	ctx, coll := c.reg.AllocContext(c.Ctx, seq, 0)
	// Rendezvous so no member races ahead of the collective.
	c.reg.Exchange(c.Ctx, seq, c.MyRank, c.Size(), nil)

	w, err := c.WorldRank(c.MyRank)
	if err != nil {
		return nil, err
	}
	myNew := g.Rank(w)
	if myNew == group.Undefined {
		return nil, nil
	}
	return &Comm{
		Grp:     g,
		Table:   BuildRankTable(g),
		MyRank:  myNew,
		Ctx:     ctx,
		CollCtx: coll,
		reg:     c.reg,
	}, nil
}
