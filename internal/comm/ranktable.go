// Package comm implements MPI communicators: context-id allocation,
// rank translation tables (dense and compressed, per the memory-
// compression techniques of Guo et al. [22] that the paper cites),
// dup/split/create, and info hints. Communicator creation is collective
// and coordinated through a shared registry — the stand-in for the
// agreement protocols a distributed MPI runs — but the communication
// critical path touches only the immutable per-communicator state.
package comm

import "gompi/internal/group"

// TableKind discriminates rank-translation representations.
type TableKind uint8

// Rank-table representations, cheapest first.
const (
	// TableIdentity: comm rank == world rank (MPI_COMM_WORLD).
	TableIdentity TableKind = iota
	// TableStrided: world = base + rank*stride (regular subsets, e.g.
	// from strided splits). The compressed form of [22].
	TableStrided
	// TableDense: explicit O(P) lookup array (irregular groups).
	TableDense
)

// RankTable translates communicator ranks to world (fabric) ranks. It
// is immutable after construction. The representation is detected at
// build time; the translation cost the device charges depends on the
// kind — that asymmetry is the rank-translation ablation.
type RankTable struct {
	kind   TableKind
	size   int
	base   int
	stride int
	dense  []int32
}

// BuildRankTable detects the cheapest representation for a group.
// Strided groups (the world group, node blocks, regular splits) map
// directly to TableIdentity/TableStrided in O(1) — no O(n) rank-list
// materialization, which is what keeps communicator creation free of
// full-world copies at 10K ranks.
func BuildRankTable(g *group.Group) *RankTable {
	n := g.Size()
	t := &RankTable{size: n}
	if base, stride, ok := g.Strided(); ok {
		if base == 0 && stride == 1 {
			t.kind = TableIdentity
			return t
		}
		t.kind = TableStrided
		t.base, t.stride = base, stride
		if n <= 1 {
			t.stride = 1
		}
		return t
	}
	ranks := g.Ranks()

	// Identity?
	ident := true
	for i, w := range ranks {
		if w != i {
			ident = false
			break
		}
	}
	if ident {
		t.kind = TableIdentity
		return t
	}

	// Strided?
	if n >= 2 {
		base, stride := ranks[0], ranks[1]-ranks[0]
		ok := stride != 0
		for i, w := range ranks {
			if w != base+i*stride {
				ok = false
				break
			}
		}
		if ok {
			t.kind = TableStrided
			t.base, t.stride = base, stride
			return t
		}
	} else if n == 1 {
		t.kind = TableStrided
		t.base, t.stride = ranks[0], 1
		return t
	}

	t.kind = TableDense
	t.dense = make([]int32, n)
	for i, w := range ranks {
		t.dense[i] = int32(w)
	}
	return t
}

// Kind returns the detected representation.
func (t *RankTable) Kind() TableKind { return t.kind }

// Size returns the number of ranks.
func (t *RankTable) Size() int { return t.size }

// World translates a communicator rank to a world rank. The caller has
// already validated 0 <= r < Size.
func (t *RankTable) World(r int) int {
	switch t.kind {
	case TableIdentity:
		return r
	case TableStrided:
		return t.base + r*t.stride
	default:
		return int(t.dense[r])
	}
}
