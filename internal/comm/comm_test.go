package comm

import (
	"sync"
	"testing"
	"testing/quick"

	"gompi/internal/group"
)

// worldViews builds every rank's view of MPI_COMM_WORLD for one job.
func worldViews(n int) []*Comm {
	reg := NewRegistry()
	cs := make([]*Comm, n)
	for i := range cs {
		cs[i] = NewWorld(reg, n, i)
	}
	return cs
}

// collective runs body once per rank concurrently and waits.
func collective(cs []*Comm, body func(c *Comm)) {
	var wg sync.WaitGroup
	for _, c := range cs {
		wg.Add(1)
		go func(c *Comm) {
			defer wg.Done()
			body(c)
		}(c)
	}
	wg.Wait()
}

func TestWorldComm(t *testing.T) {
	cs := worldViews(4)
	for i, c := range cs {
		if c.Size() != 4 || c.Rank() != i {
			t.Fatalf("rank %d: size=%d rank=%d", i, c.Size(), c.Rank())
		}
		if c.Ctx != 0 || c.CollCtx != 1 {
			t.Errorf("world contexts = %d/%d, want 0/1", c.Ctx, c.CollCtx)
		}
		w, err := c.WorldRank(i)
		if err != nil || w != i {
			t.Errorf("WorldRank(%d) = (%d,%v)", i, w, err)
		}
		if c.Table.Kind() != TableIdentity {
			t.Error("world table should be identity")
		}
	}
}

func TestWorldRankValidation(t *testing.T) {
	cs := worldViews(2)
	if _, err := cs[0].WorldRank(2); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if _, err := cs[0].WorldRank(-1); err == nil {
		t.Error("negative rank accepted")
	}
}

func TestDup(t *testing.T) {
	cs := worldViews(3)
	dups := make([]*Comm, 3)
	collective(cs, func(c *Comm) {
		d, err := c.Dup()
		if err != nil {
			t.Error(err)
			return
		}
		dups[c.Rank()] = d
	})
	ctx := dups[0].Ctx
	if ctx == cs[0].Ctx {
		t.Error("dup reused parent context")
	}
	for i, d := range dups {
		if d.Ctx != ctx {
			t.Fatalf("rank %d dup ctx %d != rank 0 ctx %d", i, d.Ctx, ctx)
		}
		if d.Rank() != i || d.Size() != 3 {
			t.Errorf("dup rank/size wrong at %d", i)
		}
	}
}

func TestSequentialDupsGetDistinctContexts(t *testing.T) {
	cs := worldViews(2)
	var first, second [2]*Comm
	collective(cs, func(c *Comm) {
		d1, _ := c.Dup()
		d2, _ := c.Dup()
		first[c.Rank()], second[c.Rank()] = d1, d2
	})
	if first[0].Ctx == second[0].Ctx {
		t.Error("two dups share a context")
	}
	if first[0].Ctx != first[1].Ctx || second[0].Ctx != second[1].Ctx {
		t.Error("ranks disagree on dup contexts")
	}
}

func TestDupCopiesInfo(t *testing.T) {
	cs := worldViews(1)
	cs[0].SetInfo("mpi_assert_no_any_tag", "true")
	d, err := cs[0].Dup()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := d.Info("mpi_assert_no_any_tag"); !ok || v != "true" {
		t.Error("info hint not copied to dup")
	}
	if _, ok := d.Info("absent"); ok {
		t.Error("phantom info hint")
	}
}

func TestSplitEvenOdd(t *testing.T) {
	const n = 6
	cs := worldViews(n)
	subs := make([]*Comm, n)
	collective(cs, func(c *Comm) {
		s, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			t.Error(err)
			return
		}
		subs[c.Rank()] = s
	})
	for i, s := range subs {
		if s.Size() != n/2 {
			t.Fatalf("rank %d: split size %d, want %d", i, s.Size(), n/2)
		}
		if s.Rank() != i/2 {
			t.Errorf("rank %d: new rank %d, want %d", i, s.Rank(), i/2)
		}
		w, _ := s.WorldRank(s.Rank())
		if w != i {
			t.Errorf("rank %d: translates to world %d", i, w)
		}
	}
	if subs[0].Ctx == subs[1].Ctx {
		t.Error("even and odd halves share a context")
	}
	if subs[0].Ctx != subs[2].Ctx {
		t.Error("even half ranks disagree on context")
	}
	// Even ranks {0,2,4}: strided table expected.
	if subs[0].Table.Kind() != TableStrided {
		t.Errorf("even half table kind = %d, want strided", subs[0].Table.Kind())
	}
}

func TestSplitKeyOrdering(t *testing.T) {
	const n = 4
	cs := worldViews(n)
	subs := make([]*Comm, n)
	collective(cs, func(c *Comm) {
		// Reverse order by key.
		s, err := c.Split(0, n-c.Rank())
		if err != nil {
			t.Error(err)
			return
		}
		subs[c.Rank()] = s
	})
	for i, s := range subs {
		if want := n - 1 - i; s.Rank() != want {
			t.Errorf("world %d: new rank %d, want %d", i, s.Rank(), want)
		}
	}
}

func TestSplitUndefined(t *testing.T) {
	cs := worldViews(3)
	subs := make([]*Comm, 3)
	collective(cs, func(c *Comm) {
		color := 0
		if c.Rank() == 1 {
			color = Undefined
		}
		s, err := c.Split(color, 0)
		if err != nil {
			t.Error(err)
			return
		}
		subs[c.Rank()] = s
	})
	if subs[1] != nil {
		t.Error("UNDEFINED rank got a communicator")
	}
	if subs[0] == nil || subs[0].Size() != 2 {
		t.Error("remaining ranks got wrong communicator")
	}
}

func TestCreate(t *testing.T) {
	const n = 4
	cs := worldViews(n)
	g := group.FromRanks([]int{3, 1}) // deliberately reordered
	subs := make([]*Comm, n)
	collective(cs, func(c *Comm) {
		s, err := c.Create(g)
		if err != nil {
			t.Error(err)
			return
		}
		subs[c.Rank()] = s
	})
	if subs[0] != nil || subs[2] != nil {
		t.Error("non-members received a communicator")
	}
	if subs[3] == nil || subs[3].Rank() != 0 {
		t.Error("world 3 should be rank 0 of the new comm")
	}
	if subs[1] == nil || subs[1].Rank() != 1 {
		t.Error("world 1 should be rank 1 of the new comm")
	}
	if subs[1].Ctx != subs[3].Ctx {
		t.Error("created comm contexts disagree")
	}
}

func TestFree(t *testing.T) {
	cs := worldViews(1)
	if err := cs[0].Free(); err != nil {
		t.Fatal(err)
	}
	if err := cs[0].Free(); err != ErrFreed {
		t.Error("double free not detected")
	}
	if _, err := cs[0].Dup(); err != ErrFreed {
		t.Error("dup of freed comm accepted")
	}
	if _, err := cs[0].Split(0, 0); err != ErrFreed {
		t.Error("split of freed comm accepted")
	}
}

func TestRankTableKinds(t *testing.T) {
	cases := []struct {
		ranks []int
		kind  TableKind
	}{
		{[]int{0, 1, 2, 3}, TableIdentity},
		{[]int{4}, TableStrided},
		{[]int{2, 4, 6}, TableStrided},
		{[]int{5, 4, 3}, TableStrided}, // negative stride
		{[]int{0, 1, 3}, TableDense},
		{[]int{7, 2, 9}, TableDense},
	}
	for _, c := range cases {
		rt := BuildRankTable(group.FromRanks(c.ranks))
		if rt.Kind() != c.kind {
			t.Errorf("ranks %v: kind %d, want %d", c.ranks, rt.Kind(), c.kind)
		}
		for i, w := range c.ranks {
			if rt.World(i) != w {
				t.Errorf("ranks %v: World(%d) = %d, want %d", c.ranks, i, rt.World(i), w)
			}
		}
	}
}

// Property: every representation translates identically to the dense
// truth for arbitrary groups.
func TestRankTableProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		seen := map[int]bool{}
		var ranks []int
		for _, x := range raw {
			if !seen[int(x)] {
				seen[int(x)] = true
				ranks = append(ranks, int(x))
			}
		}
		if len(ranks) == 0 {
			return true
		}
		rt := BuildRankTable(group.FromRanks(ranks))
		if rt.Size() != len(ranks) {
			return false
		}
		for i, w := range ranks {
			if rt.World(i) != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: splitting any world by modulo-k color yields consistent
// contexts within a color and disjoint contexts across colors.
func TestSplitContextProperty(t *testing.T) {
	f := func(sz, kk uint8) bool {
		n := int(sz%6) + 2
		k := int(kk%3) + 1
		cs := worldViews(n)
		subs := make([]*Comm, n)
		collective(cs, func(c *Comm) {
			s, err := c.Split(c.Rank()%k, 0)
			if err == nil {
				subs[c.Rank()] = s
			}
		})
		ctxByColor := map[int]uint16{}
		for i, s := range subs {
			if s == nil {
				return false
			}
			color := i % k
			if prev, ok := ctxByColor[color]; ok && prev != s.Ctx {
				return false
			}
			ctxByColor[color] = s.Ctx
		}
		seen := map[uint16]bool{}
		for _, ctx := range ctxByColor {
			if seen[ctx] {
				return false
			}
			seen[ctx] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
