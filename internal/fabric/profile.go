// Package fabric simulates the low-level network communication API that
// the paper's netmods (OFI over Omni-Path/PSM2, UCX over Mellanox EDR)
// talk to, plus the "infinitely fast network" build used for Figures 5
// and 6. All ranks live in one address space; the fabric moves real
// bytes between endpoint queues and memory regions, while a cost profile
// charges virtual cycles for descriptor injection, per-byte copies, and
// wire latency. Tag matching is performed "in hardware" at the target
// endpoint, the way PSM2 and UCX expose it, so an MPI device built on
// this fabric does not need a software matching path (and the baseline
// CH3-style device deliberately does not use it).
package fabric

import (
	"gompi/internal/instr"
	"gompi/internal/vtime"
)

// Profile is the cost model of one fabric. Cycle figures are calibrated
// against the paper's measured message rates: on the real networks a
// 1-byte MPI_ISEND costs (MPI software path + SendInject) cycles, and
// the paper's ~50% Isend and ~4x Put rate gains between MPICH/Original
// and MPICH/CH4 pin the injection overheads to a few hundred cycles
// (see DESIGN.md, substitution table).
type Profile struct {
	// Name identifies the profile ("ofi", "ucx", "inf").
	Name string
	// Hz is the model core frequency of the host driving this fabric
	// (IT cluster: 2.2 GHz Broadwell; Gomez: 2.5 GHz Haswell-EX).
	Hz float64
	// SendInject is the CPU cost of injecting a tagged-send descriptor.
	SendInject vtime.Cycles
	// RecvPost is the CPU cost of handing a receive to the NIC's
	// matching unit.
	RecvPost vtime.Cycles
	// RecvComplete is the receiver-side CPU cost of reaping a
	// completion.
	RecvComplete vtime.Cycles
	// PutInject and GetInject are the CPU costs of injecting RDMA
	// descriptors.
	PutInject vtime.Cycles
	GetInject vtime.Cycles
	// AMInject is the CPU cost of injecting an active message (the
	// fallback path and the CH3-style two-sided substrate).
	AMInject vtime.Cycles
	// InjectPerByte is the CPU cost per payload byte on the eager path
	// (PIO/bounce-buffer copy).
	InjectPerByte float64
	// WireLatency is the one-way wire-plus-switch latency in cycles.
	WireLatency vtime.Cycles
	// WirePerByte is the serialization cost per byte added to arrival
	// time (inverse bandwidth).
	WirePerByte float64
	// EagerLimit is the largest payload sent eagerly; larger messages
	// pay a rendezvous handshake (RTS/CTS round trip) before the data
	// moves — the latency cliff every MPI exhibits at its eager
	// threshold. Zero means no limit (the infinitely fast network).
	EagerLimit int
	// RndvInject is the extra CPU cost of the rendezvous control
	// messages on each side.
	RndvInject vtime.Cycles
	// MatchBin is the cycle cost of one matching-unit bin operation
	// (hashing the match word and indexing the bin), and MatchSearch the
	// cost of each queue element the unit inspects. They model the
	// NIC's offloaded match engine honestly: binning is cheap but not
	// free, and deep searches still cost cycles. Zero on the infinitely
	// fast network.
	MatchBin    vtime.Cycles
	MatchSearch vtime.Cycles
	// ConnSetup is the one-time CPU cost of materializing connection
	// state toward a new peer (address-vector insert, QP-like setup) —
	// the per-peer price the on-demand connection model (Liu et al.)
	// defers off the startup path. Charged on first send toward each
	// peer; the EagerPeers ablation pays it for every peer at open.
	// Zero on the infinitely fast network.
	ConnSetup vtime.Cycles
	// InstrCPI is the cycles-per-instruction of MPI software on this
	// platform's cores (1.0 when unset). The x86 testbeds run the
	// branchy MPI critical path near one instruction per cycle; the
	// BG/Q A2 is a slow in-order core where the same code costs
	// several cycles per instruction — which is exactly why the
	// paper's application results (measured on BG/Q) are so sensitive
	// to instruction counts.
	InstrCPI float64
}

// OFI models the Intel Omni-Path fabric with the PSM2 provider on the
// 2.2 GHz "IT" cluster (Figure 3).
var OFI = Profile{
	Name:          "ofi",
	Hz:            2.2e9,
	SendInject:    370,
	RecvPost:      40,
	RecvComplete:  60,
	PutInject:     389,
	GetInject:     420,
	AMInject:      410,
	InjectPerByte: 0.3,
	WireLatency:   2200, // ~1 us one-way
	WirePerByte:   0.18, // ~100 Gb/s
	EagerLimit:    8192,
	RndvInject:    250,
	MatchBin:      instr.CostHash,
	MatchSearch:   2,
	ConnSetup:     300,
}

// UCX models the Mellanox EDR fabric with UCX on the 2.5 GHz "Gomez"
// cluster (Figure 4). RDMA writes are comparatively cheaper than tagged
// sends on this stack.
var UCX = Profile{
	Name:          "ucx",
	Hz:            2.5e9,
	SendInject:    430,
	RecvPost:      45,
	RecvComplete:  65,
	PutInject:     360,
	GetInject:     400,
	AMInject:      470,
	InjectPerByte: 0.3,
	WireLatency:   2500, // ~1 us one-way
	WirePerByte:   0.2,  // ~100 Gb/s
	EagerLimit:    8192,
	RndvInject:    220,
	MatchBin:      instr.CostHash,
	MatchSearch:   2,
	ConnSetup:     320,
}

// INF is the paper's "infinitely fast network": every operation
// completes instantly and costs nothing, isolating the MPI software
// path (Figures 5 and 6).
var INF = Profile{
	Name: "inf",
	Hz:   2.2e9,
}

// BGQ models the IBM Blue Gene/Q platform of the application
// experiments (Cetus/Mira, Section 4.3-4.4): a 1.6 GHz in-order A2
// core where MPI software runs at several cycles per instruction, a
// ~1.8 us torus hop, and a large gap between the lightweight native
// messaging path (used by the ch4 netmod) and the generic
// active-message channel the CH3-style baseline lowers everything to.
var BGQ = Profile{
	Name:          "bgq",
	Hz:            1.6e9,
	SendInject:    500,
	RecvPost:      90,
	RecvComplete:  140,
	PutInject:     550,
	GetInject:     650,
	AMInject:      1500,
	InjectPerByte: 0.5,
	WireLatency:   2880, // ~1.8 us
	WirePerByte:   0.45, // ~3.5 GB/s torus link
	EagerLimit:    4096,
	RndvInject:    400,
	MatchBin:      2 * instr.CostHash, // slow in-order core
	MatchSearch:   4,
	ConnSetup:     900,
	InstrCPI:      6,
}

// ByName returns the profile with the given name.
func ByName(name string) (Profile, bool) {
	switch name {
	case "ofi":
		return OFI, true
	case "ucx":
		return UCX, true
	case "bgq":
		return BGQ, true
	case "inf", "":
		return INF, true
	}
	return Profile{}, false
}

// injectCost is the CPU cycles to inject n payload bytes with base
// descriptor cost c.
func (p *Profile) injectCost(c vtime.Cycles, n int) vtime.Cycles {
	return c + vtime.Cycles(p.InjectPerByte*float64(n))
}

// matchCost prices the matching-unit work recorded by (binOps,
// searches) engine-counter deltas.
func (p *Profile) matchCost(binOps, searches int64) vtime.Cycles {
	return vtime.Cycles(binOps)*p.MatchBin + vtime.Cycles(searches)*p.MatchSearch
}

// arrival computes when n bytes injected at time now land at the target.
func (p *Profile) arrival(now vtime.Time, n int) vtime.Time {
	return p.arrivalAt(now, n)
}

// arrivalAt is arrival with an explicit start time (rendezvous delays
// the start by the handshake).
func (p *Profile) arrivalAt(now vtime.Time, n int) vtime.Time {
	return now + vtime.Time(p.WireLatency) + vtime.Time(p.WirePerByte*float64(n))
}
