package fabric

import (
	"sync"
	"testing"

	"gompi/internal/match"
)

// TestLazyEndpointSingleMaterialization hammers Endpoint() for one rank
// from many goroutines at once: the CAS race must converge on a single
// Endpoint object, never two (a split would lose queued messages).
func TestLazyEndpointSingleMaterialization(t *testing.T) {
	f := New(INF, 32)
	const g = 16
	eps := make([]*Endpoint, g)
	var wg sync.WaitGroup
	wg.Add(g)
	for i := 0; i < g; i++ {
		go func(i int) {
			defer wg.Done()
			eps[i] = f.Endpoint(7)
		}(i)
	}
	wg.Wait()
	for i := 1; i < g; i++ {
		if eps[i] != eps[0] {
			t.Fatalf("goroutine %d materialized a different endpoint", i)
		}
	}
	// Only the touched endpoint exists; the other 31 stay nil.
	if got := f.peek(7); got != eps[0] {
		t.Fatalf("peek(7) = %p, want %p", got, eps[0])
	}
	for r := 0; r < 32; r++ {
		if r != 7 && f.peek(r) != nil {
			t.Fatalf("rank %d materialized without being touched", r)
		}
	}
}

// TestLazyConnChaosFirstTouch drives concurrent first-touch of the same
// peer from multiple lanes per sender — the MPI_THREAD_MULTIPLE shape
// where several VCI lanes open the connection at once. Each (src,dst)
// pair must be accounted exactly once no matter how many lanes race,
// and every message must still be delivered. Run under -race this also
// checks the connMu/CAS interleavings.
func TestLazyConnChaosFirstTouch(t *testing.T) {
	const senders, lanes, msgs = 4, 4, 8
	f := NewVCI(INF, senders+1, 2)
	ms := make([]*testMeter, senders+1)
	for i := range ms {
		ms[i] = newTestMeter(1e9)
		f.Endpoint(i).Bind(ms[i])
	}

	var wg sync.WaitGroup
	for s := 1; s <= senders; s++ {
		for l := 0; l < lanes; l++ {
			wg.Add(1)
			go func(s, l int) {
				defer wg.Done()
				for i := 0; i < msgs; i++ {
					bits := match.MakeBits(1, s, l*msgs+i)
					f.Endpoint(s).TaggedSendVCI(0, bits, []byte{byte(s)}, f.VCIFor(bits))
				}
			}(s, l)
		}
	}

	for s := 1; s <= senders; s++ {
		for i := 0; i < lanes*msgs; i++ {
			op := &RecvOp{Buf: make([]byte, 1)}
			f.Endpoint(0).PostRecv(op, match.MakeBits(1, s, i), match.FullMask)
			f.Endpoint(0).WaitRecv(op)
			if op.Buf[0] != byte(s) {
				t.Fatalf("message from %d carried %d", s, op.Buf[0])
			}
		}
	}
	wg.Wait()

	for s := 1; s <= senders; s++ {
		if c := f.Endpoint(s).Conns(); c != 1 {
			t.Errorf("sender %d: %d conns, want 1 (one peer touched)", s, c)
		}
		peers := ms[s].m.Snapshot().Peers
		if peers.Touched != 1 || peers.StateBytes != ConnStateBytes {
			t.Errorf("sender %d: peers=%d state=%dB, want 1 peer / %dB — lanes double-counted the first touch",
				s, peers.Touched, peers.StateBytes, ConnStateBytes)
		}
	}
}

// TestEagerConnectRacesFirstTouch overlaps EagerConnect (the all-pairs
// ablation baseline) with on-demand first touches from send lanes: the
// two paths share noteConn, so the union must still count each peer
// exactly once.
func TestEagerConnectRacesFirstTouch(t *testing.T) {
	const n = 16
	f := New(INF, n)
	ms := make([]*testMeter, n)
	for i := range ms {
		ms[i] = newTestMeter(1e9)
		f.Endpoint(i).Bind(ms[i])
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		f.Endpoint(0).EagerConnect()
	}()
	go func() {
		defer wg.Done()
		for dst := 1; dst < n; dst++ {
			f.Endpoint(0).TaggedSend(dst, match.MakeBits(0, 0, dst), []byte{1})
		}
	}()
	wg.Wait()

	if c := f.Endpoint(0).Conns(); c != n-1 {
		t.Fatalf("conns = %d, want %d", c, n-1)
	}
	peers := ms[0].m.Snapshot().Peers
	if peers.Touched != n-1 || peers.StateBytes != (n-1)*ConnStateBytes {
		t.Fatalf("peers=%d state=%dB, want %d peers / %dB",
			peers.Touched, peers.StateBytes, n-1, (n-1)*ConnStateBytes)
	}
}
