package fabric

import (
	"sync"

	"gompi/internal/instr"
	"gompi/internal/match"
	"gompi/internal/vtime"
)

// RecvOp is an outstanding tagged receive. The owner posts it with
// PostRecv and completes it with RecvDone/WaitRecv; the fabric fills in
// the result fields when a message matches.
type RecvOp struct {
	Buf []byte // destination buffer (fabric copies into it)

	// Results, valid once the op completes.
	N         int        // bytes delivered
	Src       int        // sending rank (world address space)
	Tag       int        // sender's tag
	Truncated bool       // message was longer than Buf
	Arrival   vtime.Time // virtual arrival time at the target

	done   bool
	reaped bool
}

// AMHandler consumes an incoming active message on the owner goroutine
// of the receiving endpoint. hdr and payload are owned by the handler.
type AMHandler func(src int, hdr, payload []byte, arrival vtime.Time)

// message is a buffered unexpected tagged message.
type message struct {
	src     int
	data    []byte
	arrival vtime.Time
}

// am is a queued active message.
type am struct {
	src     int
	handler uint8
	hdr     []byte
	payload []byte
	arrival vtime.Time
}

// Endpoint is one rank's attachment to the fabric. The tagged matching
// engine lives behind the endpoint lock — that is the "hardware"
// matching unit. Only the owner goroutine posts receives, waits, and
// runs progress; remote ranks deposit messages under the lock.
type Endpoint struct {
	f    *Fabric
	rank int

	mu   sync.Mutex
	cond *sync.Cond
	eng  match.Engine
	amq  []am

	handlers [256]AMHandler
	meter    Meter
	eventSeq uint64
}

func newEndpoint(f *Fabric, rank int) *Endpoint {
	ep := &Endpoint{f: f, rank: rank}
	ep.cond = sync.NewCond(&ep.mu)
	return ep
}

// Rank returns the endpoint's fabric address.
func (ep *Endpoint) Rank() int { return ep.rank }

// Bind attaches the owning rank's meter. Must be called before any
// operation that charges costs.
func (ep *Endpoint) Bind(m Meter) { ep.meter = m }

// RegisterAM installs the handler for one active-message id. Handlers
// are installed at device init, before communication starts.
func (ep *Endpoint) RegisterAM(id uint8, h AMHandler) { ep.handlers[id] = h }

// TaggedSend injects a tagged send toward dst. The payload is copied,
// so the caller may reuse data immediately. Messages up to the
// profile's eager limit are deposited directly; larger ones pay the
// rendezvous handshake in time (an RTS/CTS round trip before the data
// crosses) and extra control-message CPU on the sender — the latency
// cliff every MPI shows at its eager threshold. Matching happens at
// the destination endpoint as the message arrives — the
// hardware-offload model of PSM2 and UCX.
func (ep *Endpoint) TaggedSend(dst int, bits match.Bits, data []byte) {
	p := &ep.f.prof
	ep.meter.ChargeCycles(instr.Transport, p.injectCost(p.SendInject, len(data)))
	now := ep.meter.Now()
	if p.EagerLimit > 0 && len(data) > p.EagerLimit {
		// RTS out, CTS back, then the payload: two extra wire
		// latencies plus the control processing.
		ep.meter.ChargeCycles(instr.Transport, p.RndvInject)
		now = ep.meter.Now() + 2*vtime.Time(p.WireLatency)
	}
	arrival := p.arrivalAt(now, len(data))

	buf := make([]byte, len(data))
	copy(buf, data)
	ep.f.eps[dst].deposit(bits, &message{src: ep.rank, data: buf, arrival: arrival})
}

// deposit lands an incoming message at this endpoint: match against the
// posted queue or buffer as unexpected. Called from the sender's
// goroutine.
func (ep *Endpoint) deposit(bits match.Bits, m *message) {
	ep.mu.Lock()
	if entry, ok := ep.eng.Arrive(bits, m); ok {
		op := entry.Cookie.(*RecvOp)
		completeRecv(op, bits, m)
	}
	ep.eventSeq++
	ep.cond.Broadcast()
	ep.mu.Unlock()
}

// DepositLocal lands a message that arrived over a different transport
// (the shared-memory rings) in this endpoint's matching engine, so that
// netmod and shmmod traffic share one matching context — which is what
// makes MPI_ANY_SOURCE receives work across transports in CH4. The
// caller transfers ownership of data.
func (ep *Endpoint) DepositLocal(bits match.Bits, src int, data []byte, arrival vtime.Time) {
	ep.deposit(bits, &message{src: src, data: data, arrival: arrival})
}

// Wake nudges the endpoint's owner out of WaitEvent: another transport
// has work for it.
func (ep *Endpoint) Wake() {
	ep.mu.Lock()
	ep.eventSeq++
	ep.cond.Broadcast()
	ep.mu.Unlock()
}

// EventSeq returns an opaque counter that increases on every deposit,
// active message, and Wake.
func (ep *Endpoint) EventSeq() uint64 {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.eventSeq
}

// WaitEvent blocks until the event counter moves past last, then
// returns its new value. Devices that poll multiple transports use it
// to park between polls without losing wakeups. Panics with
// core.ErrWorldAborted once the fabric is aborted.
func (ep *Endpoint) WaitEvent(last uint64) uint64 {
	ep.mu.Lock()
	for ep.eventSeq == last && len(ep.amq) == 0 {
		ep.f.aborted.CheckLocked(&ep.mu)
		ep.cond.Wait()
	}
	seq := ep.eventSeq
	ep.mu.Unlock()
	return seq
}

// completeRecv copies message data into the receive buffer and fills
// results. Caller holds the endpoint lock (or owns both op and m). The
// source reported is the MPI-level source the sender encoded in the
// match bits (its communicator rank), not the transport address.
func completeRecv(op *RecvOp, bits match.Bits, m *message) {
	n := copy(op.Buf, m.data)
	op.N = n
	op.Truncated = n < len(m.data)
	op.Src = bits.Source()
	op.Tag = bits.Tag()
	op.Arrival = m.arrival
	op.done = true
}

// PostRecv hands a receive to the matching unit. If an unexpected
// message already satisfies it the op completes immediately.
func (ep *Endpoint) PostRecv(op *RecvOp, bits match.Bits, mask match.Bits) {
	p := &ep.f.prof
	ep.meter.ChargeCycles(instr.Transport, p.RecvPost)

	ep.mu.Lock()
	if entry, ok := ep.eng.PostRecv(bits, mask, op); ok {
		completeRecv(op, entry.Bits, entry.Cookie.(*message))
	}
	ep.mu.Unlock()
}

// RecvDone polls one receive for completion. On the completing poll it
// syncs the owner's clock to the message arrival and charges the
// completion-reap cost.
func (ep *Endpoint) RecvDone(op *RecvOp) bool {
	ep.mu.Lock()
	done := op.done
	ep.mu.Unlock()
	if done {
		ep.reap(op)
	}
	return done
}

// WaitRecv blocks until the receive completes, running active-message
// handlers that arrive in the meantime (progress happens inside MPI
// calls, as in a real implementation).
func (ep *Endpoint) WaitRecv(op *RecvOp) {
	ep.mu.Lock()
	for !op.done {
		if len(ep.amq) > 0 {
			ep.drainAMLocked()
			continue
		}
		ep.f.aborted.CheckLocked(&ep.mu)
		ep.cond.Wait()
	}
	ep.mu.Unlock()
	ep.reap(op)
}

// reap accounts for a completed receive on the owner's clock, exactly
// once per op.
func (ep *Endpoint) reap(op *RecvOp) {
	if op.reaped {
		return
	}
	op.reaped = true
	ep.meter.Sync(op.Arrival)
	ep.meter.ChargeCycles(instr.Transport, ep.f.prof.RecvComplete)
}

// CancelRecv removes a posted receive. It reports false if the receive
// already matched.
func (ep *Endpoint) CancelRecv(op *RecvOp) bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if op.done {
		return false
	}
	return ep.eng.CancelRecv(op)
}

// Probe checks for a buffered unexpected message matching (bits, mask)
// and returns its source, tag and size without consuming it.
func (ep *Endpoint) Probe(bits, mask match.Bits) (src, tag, size int, ok bool) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	entry, ok := ep.eng.Probe(bits, mask)
	if !ok {
		return 0, 0, 0, false
	}
	m := entry.Cookie.(*message)
	return m.src, entry.Bits.Tag(), len(m.data), true
}

// MProbe extracts a buffered unexpected message matching (bits, mask):
// the matched-probe primitive. The returned payload is owned by the
// caller; the message can no longer match any posted receive.
func (ep *Endpoint) MProbe(bits, mask match.Bits) (src, tag int, data []byte, arrival vtime.Time, ok bool) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	entry, ok := ep.eng.ExtractUnexpected(bits, mask)
	if !ok {
		return 0, 0, nil, 0, false
	}
	m := entry.Cookie.(*message)
	return entry.Bits.Source(), entry.Bits.Tag(), m.data, m.arrival, true
}

// AMSend injects an active message toward dst. hdr and payload are
// copied.
func (ep *Endpoint) AMSend(dst int, handler uint8, hdr, payload []byte) {
	p := &ep.f.prof
	ep.meter.ChargeCycles(instr.Transport, p.injectCost(p.AMInject, len(hdr)+len(payload)))
	arrival := p.arrival(ep.meter.Now(), len(hdr)+len(payload))

	h := append([]byte(nil), hdr...)
	pl := append([]byte(nil), payload...)
	tgt := ep.f.eps[dst]
	tgt.mu.Lock()
	tgt.amq = append(tgt.amq, am{src: ep.rank, handler: handler, hdr: h, payload: pl, arrival: arrival})
	tgt.eventSeq++
	tgt.cond.Broadcast()
	tgt.mu.Unlock()
}

// Progress runs pending active-message handlers on the owner goroutine.
// It returns the number of messages handled.
func (ep *Endpoint) Progress() int {
	ep.mu.Lock()
	n := ep.drainAMLocked()
	ep.mu.Unlock()
	return n
}

// drainAMLocked pops and runs all queued AMs. The endpoint lock is
// released while handlers run (handlers may send) and re-acquired
// before returning.
func (ep *Endpoint) drainAMLocked() int {
	total := 0
	for len(ep.amq) > 0 {
		batch := ep.amq
		ep.amq = nil
		ep.mu.Unlock()
		for _, m := range batch {
			// No clock sync here: the handler runs asynchronously to
			// the rank's logical timeline (a NIC/progress-thread
			// stand-in). Consumers fold m.arrival into the clock at
			// the point the message's effect is logically observed
			// (receive completion, ack wait, epoch close); syncing at
			// drain time would let real-goroutine scheduling races
			// leak future timestamps into the virtual clock.
			h := ep.handlers[m.handler]
			if h == nil {
				panic("fabric: active message with unregistered handler")
			}
			h(m.src, m.hdr, m.payload, m.arrival)
		}
		total += len(batch)
		ep.mu.Lock()
	}
	return total
}

// WaitUntil blocks until pred (evaluated by the owner goroutine)
// returns true, running AM handlers while waiting. pred is evaluated
// without the endpoint lock; it is the device's own completion flag.
func (ep *Endpoint) WaitUntil(pred func() bool) {
	for {
		ep.Progress()
		if pred() {
			return
		}
		ep.mu.Lock()
		if len(ep.amq) == 0 && !pred() {
			ep.f.aborted.CheckLocked(&ep.mu)
			ep.cond.Wait()
		}
		ep.mu.Unlock()
	}
}

// Matching exposes the engine's search counter for the matching
// ablation benchmark.
func (ep *Endpoint) MatchSearches() int64 {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.eng.Searches
}
