package fabric

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gompi/internal/flight"
	"gompi/internal/hist"
	"gompi/internal/instr"
	"gompi/internal/match"
	"gompi/internal/metrics"
	"gompi/internal/vtime"
)

// AnyVCI asks the endpoint to consider every virtual communication
// interface: the degraded path a receive takes when its wildcards erase
// the information VCI selection hashes (tag), mirroring how CH4 falls
// back to a shared context when semantic hints are missing. On a
// single-VCI endpoint it is identical to VCI 0.
const AnyVCI = -1

// RecvOp is an outstanding tagged receive. The owner posts it with
// PostRecv and completes it with RecvDone/WaitRecv; the fabric fills in
// the result fields when a message matches. Ops must be fresh (or
// zeroed) when posted.
type RecvOp struct {
	Buf []byte // destination buffer (fabric copies into it)

	// Fold, when set, consumes the matched payload in place of the
	// final copy: Fold(dst, src) reduces src into dst element-wise
	// (both truncated to the shorter length). With a zero-copy handoff
	// view this makes the receive copy-free — the payload is folded
	// where the sender left it. Fold runs on whichever goroutine
	// delivers the match, under the VCI lock; the device keeps shm
	// deposits on the receiving rank's goroutine, so folds never race
	// the buffers they touch.
	Fold func(dst, src []byte)

	// Results, valid once the op completes.
	N         int        // bytes delivered
	Src       int        // sending rank (world address space)
	Tag       int        // sender's tag
	Truncated bool       // message was longer than Buf
	Arrival   vtime.Time // virtual arrival time at the target

	// done is the completion flag. The atomic store in completeRecv
	// publishes the result fields written just before it (Go memory
	// model: everything sequenced before the Store is visible after a
	// Load that observes true).
	done   atomic.Bool
	reaped bool // owner-goroutine only

	// vci is the interface the op was posted on, or AnyVCI when the op
	// is replicated across every interface (wildcard fallback).
	vci int
	// posted is the owner's virtual clock at PostRecv time; the
	// depositing peer reads it (under the VCI lock that also ordered
	// the engine insertion) to observe post→match latency.
	posted vtime.Time
	// multi marks a replicated op; claimed is its once-only completion
	// claim: the depositing goroutine that wins the CAS delivers, any
	// replica matched afterward is stale and re-offers its message.
	multi   bool
	claimed atomic.Bool
}

// Reset clears a completed op for reuse (the device's receive-descriptor
// pooling). Only legal once the op has completed and been reaped: a
// non-wildcard op is consumed from its single VCI queue at match time,
// so nothing in the fabric still references it. Fields are cleared
// individually because the atomics are not assignable wholesale.
func (op *RecvOp) Reset() {
	op.Buf = nil
	op.Fold = nil
	op.N = 0
	op.Src = 0
	op.Tag = 0
	op.Truncated = false
	op.Arrival = 0
	op.done.Store(false)
	op.reaped = false
	op.vci = 0
	op.posted = 0
	op.multi = false
	op.claimed.Store(false)
}

// VCI returns the interface the op was posted on, or AnyVCI for a
// replicated wildcard op. Valid after PostRecv.
func (op *RecvOp) VCI() int { return op.vci }

// AMHandler consumes an incoming active message on the progressing
// goroutine of the receiving endpoint. hdr and payload are owned by the
// handler. Handlers are not synchronized by the fabric: devices that
// use active messages (RMA, the CH3-style baseline) keep them on the
// owner goroutine.
type AMHandler func(src int, hdr, payload []byte, arrival vtime.Time)

// message is a buffered unexpected tagged message. Instances are
// recycled through the owning VCI's free list (chained via next); data
// is a pooled copy returned to that VCI's buffer pool when the message
// is consumed by a receive.
type message struct {
	src     int
	data    []byte
	arrival vtime.Time
	// rel is non-nil for a zero-copy handoff view parked unexpected:
	// data is then the sender's live buffer, valid until rel is
	// released, and never belongs to the pool.
	rel ViewReleaser
	// gseq is the endpoint-global arrival stamp, taken under the VCI
	// lock at buffering time. Cross-VCI wildcard searches use it to
	// pick the globally earliest match, preserving the non-overtaking
	// order that a single queue gives for free.
	gseq uint64
	next *message
}

// am is a queued active message.
type am struct {
	src     int
	handler uint8
	hdr     []byte
	payload []byte
	arrival vtime.Time
}

// vci is one virtual communication interface: a private lock, matching
// engine, buffer pool, envelope free list, and event sequence. Two
// goroutines of the same rank driving different VCIs never contend.
type vci struct {
	mu       sync.Mutex
	cond     *sync.Cond
	eng      match.Engine
	pool     bufPool
	msgFree  *message
	eventSeq uint64
	stats    metrics.VCIStat // receive-side traffic + events, under mu
	// postMatch is this interface's post→match latency distribution
	// (hist.H is atomic; writers happen to hold mu anyway).
	postMatch hist.H
}

// getMessage pops a recycled message envelope (or allocates the first
// time). Caller holds the VCI lock.
func (s *vci) getMessage() *message {
	m := s.msgFree
	if m == nil {
		return new(message)
	}
	s.msgFree = m.next
	m.next = nil
	return m
}

// putMessage zeroes an envelope and chains it on the free list. Caller
// holds the VCI lock and has already dealt with m.data.
func (s *vci) putMessage(m *message) {
	*m = message{next: s.msgFree}
	s.msgFree = m
}

// releaseMessage recycles a consumed unexpected message: payload back
// to the VCI's buffer pool, envelope to its free list. Caller holds the
// VCI lock.
func (s *vci) releaseMessage(m *message) {
	s.pool.put(m.data)
	s.putMessage(m)
}

// consumeMessage recycles a consumed unexpected message and returns the
// view releaser the caller must fire once it drops the VCI lock (nil
// for pooled messages, which are recycled here). Releasing outside the
// lock matters: Release wakes the sending rank, which takes that rank's
// VCI lock — two ranks consuming each other's lent views under their
// own locks would otherwise deadlock.
func (s *vci) consumeMessage(m *message) ViewReleaser {
	rel := m.rel
	if rel != nil {
		m.data, m.rel = nil, nil
		s.putMessage(m)
		return rel
	}
	s.releaseMessage(m)
	return nil
}

// Endpoint is one rank's attachment to the fabric, split into N virtual
// communication interfaces. Each VCI owns a lock, match bins, buffer
// pool, and event sequence — that is the "hardware" matching unit,
// replicated the way CH4's VCIs (Zambre et al.) replicate netmod
// contexts so concurrent goroutines of one rank stop convoying on a
// single endpoint lock. Remote ranks deposit messages under the target
// VCI's lock; wildcard receives that cannot name a VCI take the
// cross-VCI path (all locks, ascending).
type Endpoint struct {
	f    *Fabric
	rank int
	vcis []*vci

	// Aggregate event state: aggSeq increases on every deposit, active
	// message, and wake anywhere on the endpoint. Waiters that cannot
	// name a VCI park on evCond; the waiter gate keeps the common case
	// (no aggregate waiter) to one atomic load per event.
	aggSeq    uint64 // atomic
	evMu      sync.Mutex
	evCond    *sync.Cond
	evWaiters int32 // atomic

	// Active messages ride a single endpoint-level queue (they are
	// rank-global control traffic: RMA, the baseline's packets), with an
	// atomic length so per-VCI waiters can poll it without the queue
	// lock.
	amMu   sync.Mutex
	amq    []am
	amqLen int32 // atomic, mutated under amMu

	// gctr stamps buffered unexpected messages with a global arrival
	// order for cross-VCI wildcard matching.
	gctr uint64 // atomic

	// stale holds claimed wildcard ops whose replicas are still sitting
	// in other VCIs' posted queues; the next cross-VCI operation sweeps
	// them out. staleMu is always innermost (after any VCI lock).
	staleMu sync.Mutex
	stale   []*RecvOp

	handlers [256]AMHandler
	meter    Meter
	// m caches meter.Metrics(). The registry is atomic throughout, so
	// depositing peers and concurrent owner goroutines bump it without
	// holding any particular lock. Starts as a placeholder registry;
	// Bind replaces it.
	m *metrics.Rank

	// conns tracks which peers this endpoint has materialized send-side
	// connection state toward (the on-demand connection model): first
	// send to a new peer pays the profile's ConnSetup cycles and
	// ConnStateBytes of modeled memory, checked against the fabric's
	// MaxPeerBytes ceiling. Multiple VCI lanes of one rank may race on
	// the first touch; the read-mostly RWMutex keeps the steady state to
	// one shared-lock lookup.
	connMu sync.RWMutex
	conns  map[int32]struct{}
}

// ConnStateBytes is the modeled per-connection state footprint (send
// queue descriptors, sequence/ack state — the address-vector entry plus
// QP-like state a real netmod keeps per connected peer).
const ConnStateBytes = 256

// via says which transport carried a deposited message, for
// receive-side path attribution.
type via uint8

const (
	viaNet via = iota
	viaShm
	viaSelf
)

func newEndpoint(f *Fabric, rank, nvci int) *Endpoint {
	// The placeholder registry keeps deposits into a never-bound
	// endpoint safe (direct fabric tests); Bind replaces it with the
	// owning rank's registry.
	ep := &Endpoint{f: f, rank: rank, m: new(metrics.Rank), vcis: make([]*vci, nvci)}
	for i := range ep.vcis {
		s := new(vci)
		s.cond = sync.NewCond(&s.mu)
		ep.vcis[i] = s
	}
	ep.evCond = sync.NewCond(&ep.evMu)
	return ep
}

// Rank returns the endpoint's fabric address.
func (ep *Endpoint) Rank() int { return ep.rank }

// NVCI returns the number of virtual communication interfaces.
func (ep *Endpoint) NVCI() int { return len(ep.vcis) }

// norm maps AnyVCI to 0 on a single-VCI endpoint (where the fallback
// path is pointless) and bounds-checks explicit indices.
func (ep *Endpoint) norm(v int) int {
	if v == AnyVCI {
		if len(ep.vcis) == 1 {
			return 0
		}
		return AnyVCI
	}
	if v < 0 || v >= len(ep.vcis) {
		panic(fmt.Sprintf("fabric: VCI %d out of range [0,%d)", v, len(ep.vcis)))
	}
	return v
}

// vciForRecv picks the interface a receive described by (bits, mask)
// must search: the deterministic hash when the mask pins the hashed
// fields (context and tag — source never feeds the hash, so AnySource
// stays cheap), AnyVCI otherwise.
func (ep *Endpoint) vciForRecv(bits, mask match.Bits) int {
	if len(ep.vcis) == 1 {
		return 0
	}
	if mask.ExactCtxTag() {
		return ep.f.VCIFor(bits)
	}
	return AnyVCI
}

// Bind attaches the owning rank's meter. Must be called before any
// operation that charges costs.
func (ep *Endpoint) Bind(m Meter) {
	ep.meter = m
	ep.m = m.Metrics()
}

// RegisterAM installs the handler for one active-message id. Handlers
// are installed at device init, before communication starts.
func (ep *Endpoint) RegisterAM(id uint8, h AMHandler) { ep.handlers[id] = h }

// noteConn materializes send-side connection state toward dst if this
// is the first traffic that way: charge the profile's connection-setup
// cost, account the modeled state bytes, and enforce the per-rank
// ceiling. Steady-state cost is one RLock'd map hit.
func (ep *Endpoint) noteConn(dst int) {
	if dst == ep.rank {
		return
	}
	ep.connMu.RLock()
	_, ok := ep.conns[int32(dst)]
	ep.connMu.RUnlock()
	if ok {
		return
	}
	ep.connMu.Lock()
	if _, ok := ep.conns[int32(dst)]; ok {
		ep.connMu.Unlock()
		return
	}
	if ep.conns == nil {
		ep.conns = make(map[int32]struct{})
	}
	ep.conns[int32(dst)] = struct{}{}
	ep.connMu.Unlock()
	if cs := ep.f.prof.ConnSetup; cs > 0 {
		ep.meter.ChargeCycles(instr.Transport, cs)
	}
	total := ep.m.NotePeerState(true, ConnStateBytes)
	ep.f.checkPeerCeiling(ep.rank, total)
}

// Conns returns the number of peers this endpoint holds connection
// state toward.
func (ep *Endpoint) Conns() int {
	ep.connMu.RLock()
	defer ep.connMu.RUnlock()
	return len(ep.conns)
}

// EagerConnect materializes connection state toward every peer at once
// — the all-pairs setup the EagerPeers ablation restores, so the
// on-demand model has a measurable baseline. Called from the owner at
// endpoint open.
func (ep *Endpoint) EagerConnect() {
	for dst := 0; dst < ep.f.Size(); dst++ {
		ep.noteConn(dst)
	}
}

// bumpAgg publishes one endpoint-level event: bump the aggregate
// sequence and wake aggregate waiters if any are parked.
func (ep *Endpoint) bumpAgg() {
	atomic.AddUint64(&ep.aggSeq, 1)
	// Every path that can wake a parked waiter passes through here
	// (deposit, Wake, WakeVCI, abort), so this is the single spot that
	// proves liveness to the stall watchdog.
	ep.f.stall.Activity()
	if atomic.LoadInt32(&ep.evWaiters) != 0 {
		ep.evMu.Lock()
		ep.evCond.Broadcast()
		ep.evMu.Unlock()
	}
}

// TaggedSend injects a tagged send toward dst on the hash-selected VCI.
// The payload is copied, so the caller may reuse data immediately.
func (ep *Endpoint) TaggedSend(dst int, bits match.Bits, data []byte) {
	ep.TaggedSendVCI(dst, bits, data, ep.f.VCIFor(bits))
}

// TaggedSendVCI injects a tagged send toward dst's interface v (the
// device names the VCI when communicator hints refine the hash).
// Messages up to the profile's eager limit are deposited directly;
// larger ones pay the rendezvous handshake in time (an RTS/CTS round
// trip before the data crosses) and extra control-message CPU on the
// sender — the latency cliff every MPI shows at its eager threshold.
// Matching happens at the destination as the message arrives — the
// hardware-offload model of PSM2 and UCX.
func (ep *Endpoint) TaggedSendVCI(dst int, bits match.Bits, data []byte, v int) {
	ep.noteConn(dst)
	p := &ep.f.prof
	ep.meter.ChargeCycles(instr.Transport, p.injectCost(p.SendInject, len(data)))
	ep.m.NetSend.Note(len(data))
	now := ep.meter.Now()
	if p.EagerLimit > 0 && len(data) > p.EagerLimit {
		// RTS out, CTS back, then the payload: two extra wire
		// latencies plus the control processing.
		start := now
		ep.meter.ChargeCycles(instr.Transport, p.RndvInject)
		now = ep.meter.Now() + 2*vtime.Time(p.WireLatency)
		ep.m.Rndv.Note(len(data))
		// The handshake round-trip the sender paid before the payload
		// could cross: control processing plus two wire latencies.
		ep.m.Lat.RndvRTT.Observe(int64(now - start))
		ep.m.Flight.Record(flight.SendRndv, int64(now), dst, len(data), v)
	} else {
		ep.m.Eager.Note(len(data))
		ep.m.Flight.Record(flight.SendEager, int64(now), dst, len(data), v)
	}
	arrival := p.arrivalAt(now, len(data))

	ep.f.Endpoint(dst).deposit(v, bits, ep.rank, data, arrival, viaNet, nil)
}

// ViewReleaser is the fabric's handle on a zero-copy handoff view
// (satisfied by *shm.Handoff): Release returns the lent buffer to its
// sender, with copied saying whether the consumer memcpy'd the payload
// out or folded it in place.
type ViewReleaser interface {
	Release(copied bool)
}

// deposit lands an incoming message at interface v of this endpoint:
// match against the posted queue or buffer as unexpected. Called from
// the sender's goroutine; data is borrowed from the caller for the
// duration of the call. A message that matches a posted receive copies
// straight into the receive buffer — no intermediate copy exists on the
// fast path; only an unexpected message pays for a (pooled) buffered
// copy. A match against a stale replica of an already-claimed wildcard
// receive re-offers the message until it finds a live consumer.
// A non-nil rel marks data as a zero-copy handoff view: it stays valid
// until rel is released, so the unexpected path parks it without a
// pooled copy and the matched path releases it (outside the VCI lock)
// once the receive consumed it.
func (ep *Endpoint) deposit(v int, bits match.Bits, src int, data []byte, arrival vtime.Time, via via, rel ViewReleaser) {
	v = ep.norm(v)
	switch via {
	case viaShm:
		ep.m.ShmRecv.Note(len(data))
	case viaSelf:
		// Self-loop traffic is counted once, at delivery.
		ep.m.Self.Note(len(data))
	default:
		ep.m.NetRecv.Note(len(data))
	}
	s := ep.vcis[v]
	var fireRel ViewReleaser
	fireCopied := false
	s.mu.Lock()
	s.stats.Msgs++
	s.stats.Bytes += int64(len(data))
	for {
		m := s.getMessage()
		entry, ok := s.eng.Arrive(bits, m)
		if !ok {
			m.src = src
			if rel != nil {
				// Lent view: park it as-is. No staging copy exists —
				// the payload waits in the sender's buffer.
				m.data = data
				m.rel = rel
			} else {
				buf := s.pool.get(len(data), ep.m)
				copy(buf, data)
				m.data = buf
				if len(data) > 0 {
					ep.m.CopiesStaged.Note(len(data))
				}
			}
			m.arrival = arrival
			m.gseq = atomic.AddUint64(&ep.gctr, 1)
			ep.m.MaxUnexpected(s.eng.UnexpectedLen())
			ep.m.Flight.Record(flight.Unexpected, int64(arrival), src, len(data), v)
			break
		}
		s.putMessage(m)
		op := entry.Cookie.(*RecvOp)
		if op.multi {
			if !op.claimed.CompareAndSwap(false, true) {
				// Stale replica: the op already completed on another
				// VCI. Its node is gone from this engine now; retry.
				continue
			}
			ep.addStale(op)
		}
		// Post→match: how long the receive sat posted before its
		// message arrived. Observed into the receiving rank's
		// registry from the depositing goroutine (hist is atomic);
		// op.posted is ordered by the engine insertion under s.mu.
		ep.m.Lat.PostMatch.Observe(int64(arrival - op.posted))
		s.postMatch.Observe(int64(arrival - op.posted))
		// A pre-posted match never touches the unexpected queue:
		// observe zero residency so the two distributions stay
		// message-count symmetric.
		ep.m.Lat.UnexRes.Observe(0)
		ep.m.Flight.Record(flight.Deposit, int64(arrival), src, len(data), v)
		ep.completeRecv(op, bits, data, arrival)
		if rel != nil {
			fireRel, fireCopied = rel, op.Fold == nil
		}
		break
	}
	s.eventSeq++
	s.stats.Events++
	s.cond.Broadcast()
	s.mu.Unlock()
	ep.bumpAgg()
	if fireRel != nil {
		fireRel.Release(fireCopied)
	}
}

// addStale remembers a claimed wildcard op whose replicas still sit in
// other VCIs' posted queues, for the next cross-VCI sweep.
func (ep *Endpoint) addStale(op *RecvOp) {
	ep.staleMu.Lock()
	ep.stale = append(ep.stale, op)
	ep.staleMu.Unlock()
}

// sweepStaleLocked cancels leftover replicas of claimed wildcard ops.
// Caller holds every VCI lock.
func (ep *Endpoint) sweepStaleLocked() {
	ep.staleMu.Lock()
	stale := ep.stale
	ep.stale = nil
	ep.staleMu.Unlock()
	for _, op := range stale {
		for _, s := range ep.vcis {
			s.eng.CancelRecv(op)
		}
	}
}

// lockAll takes every VCI lock in ascending order (the endpoint's
// global lock order; staleMu nests inside).
func (ep *Endpoint) lockAll() {
	for _, s := range ep.vcis {
		s.mu.Lock()
	}
}

func (ep *Endpoint) unlockAll() {
	for i := len(ep.vcis) - 1; i >= 0; i-- {
		ep.vcis[i].mu.Unlock()
	}
}

// DepositShm lands a message that arrived over the shared-memory rings
// in this endpoint's matching engine, so that netmod and shmmod traffic
// share one matching context — which is what makes MPI_ANY_SOURCE
// receives work across transports in CH4. data is borrowed: the
// endpoint copies what it keeps, so the caller may reuse the slice as
// soon as the call returns.
func (ep *Endpoint) DepositShm(bits match.Bits, src int, data []byte, arrival vtime.Time) {
	ep.deposit(ep.f.VCIFor(bits), bits, src, data, arrival, viaShm, nil)
}

// DepositShmVCI is DepositShm onto an explicitly named interface (the
// sender's hint-refined choice travels with the shm fragment).
func (ep *Endpoint) DepositShmVCI(bits match.Bits, src int, data []byte, arrival vtime.Time, v int) {
	ep.deposit(v, bits, src, data, arrival, viaShm, nil)
}

// DepositShmViewVCI lands a zero-copy handoff view in the matching
// engine. Unlike DepositShmVCI's borrowed data, view stays valid until
// rel is released, so an unexpected view is parked as-is — no pooled
// copy — and consumed (single direct copy, or an in-place fold)
// whenever a receive claims it.
func (ep *Endpoint) DepositShmViewVCI(bits match.Bits, src int, view []byte, arrival vtime.Time, v int, rel ViewReleaser) {
	ep.deposit(v, bits, src, view, arrival, viaShm, rel)
}

// DepositSelf lands a self-loop message (the ch4-core self-send
// shortcut). Same borrowing contract as DepositShm.
func (ep *Endpoint) DepositSelf(bits match.Bits, src int, data []byte, arrival vtime.Time) {
	ep.deposit(ep.f.VCIFor(bits), bits, src, data, arrival, viaSelf, nil)
}

// DepositSelfVCI is DepositSelf onto an explicitly named interface.
func (ep *Endpoint) DepositSelfVCI(bits match.Bits, src int, data []byte, arrival vtime.Time, v int) {
	ep.deposit(v, bits, src, data, arrival, viaSelf, nil)
}

// Wake nudges every waiter on the endpoint out of WaitEvent /
// WaitEventVCI: another transport has work for it.
func (ep *Endpoint) Wake() {
	for i := range ep.vcis {
		ep.wakeVCI(i)
	}
	ep.bumpAgg()
}

// WakeVCI nudges waiters on one interface (and aggregate waiters).
func (ep *Endpoint) WakeVCI(v int) {
	ep.wakeVCI(ep.norm(v))
	ep.bumpAgg()
}

func (ep *Endpoint) wakeVCI(v int) {
	s := ep.vcis[v]
	s.mu.Lock()
	s.eventSeq++
	s.stats.Events++
	s.cond.Broadcast()
	s.mu.Unlock()
}

// EventSeq returns an opaque counter that increases on every deposit,
// active message, and Wake, endpoint-wide.
func (ep *Endpoint) EventSeq() uint64 { return atomic.LoadUint64(&ep.aggSeq) }

// WaitEvent blocks until the aggregate event counter moves past last,
// then returns its new value. Devices that poll multiple transports use
// it to park between polls without losing wakeups. Panics with
// core.ErrWorldAborted once the fabric is aborted.
func (ep *Endpoint) WaitEvent(last uint64) uint64 {
	parked := false
	defer func() {
		if parked {
			ep.f.stall.Unpark(ep.rank)
		}
	}()
	ep.evMu.Lock()
	atomic.AddInt32(&ep.evWaiters, 1)
	for atomic.LoadUint64(&ep.aggSeq) == last && atomic.LoadInt32(&ep.amqLen) == 0 {
		ep.f.aborted.CheckLocked(&ep.evMu)
		if !parked {
			parked = true
			ep.f.stall.Park(ep.rank)
			ep.m.Flight.Record(flight.Park, int64(ep.meter.Now()), -1, 0, AnyVCI)
		}
		ep.evCond.Wait()
	}
	atomic.AddInt32(&ep.evWaiters, -1)
	ep.evMu.Unlock()
	return atomic.LoadUint64(&ep.aggSeq)
}

// EventSeqVCI returns one interface's event counter: it moves only on
// that VCI's deposits and wakes (plus endpoint-wide wakes and active
// messages), so a waiter parked on it is not disturbed by unrelated
// traffic on other VCIs.
func (ep *Endpoint) EventSeqVCI(v int) uint64 {
	s := ep.vcis[ep.norm(v)]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eventSeq
}

// WaitEventVCI blocks until interface v's event counter moves past
// last (or active messages are pending, which any waiter must surface
// for progress), then returns the new value.
func (ep *Endpoint) WaitEventVCI(v int, last uint64) uint64 {
	vn := ep.norm(v)
	s := ep.vcis[vn]
	parked := false
	defer func() {
		if parked {
			ep.f.stall.Unpark(ep.rank)
		}
	}()
	s.mu.Lock()
	for s.eventSeq == last && atomic.LoadInt32(&ep.amqLen) == 0 {
		ep.f.aborted.CheckLocked(&s.mu)
		if !parked {
			parked = true
			ep.f.stall.Park(ep.rank)
			ep.m.Flight.Record(flight.Park, int64(ep.meter.Now()), -1, 0, vn)
		}
		s.cond.Wait()
	}
	seq := s.eventSeq
	s.mu.Unlock()
	return seq
}

// completeRecv consumes a (borrowed) payload into the receive buffer —
// the final direct copy, or an in-place fold when the op carries one —
// and fills results. Caller holds the lock of the VCI delivering the
// message; the atomic done.Store publishes the result fields to
// whichever goroutine observes completion. The source reported is the
// MPI-level source the sender encoded in the match bits (its
// communicator rank), not the transport address.
func (ep *Endpoint) completeRecv(op *RecvOp, bits match.Bits, data []byte, arrival vtime.Time) {
	var n int
	if op.Fold != nil {
		n = len(data)
		if n > len(op.Buf) {
			n = len(op.Buf)
		}
		op.Fold(op.Buf[:n], data[:n])
	} else {
		n = copy(op.Buf, data)
		if n > 0 {
			ep.m.CopiesDirect.Note(n)
		}
	}
	op.N = n
	op.Truncated = n < len(data)
	op.Src = bits.Source()
	op.Tag = bits.Tag()
	op.Arrival = arrival
	op.done.Store(true)
}

// PostRecv hands a receive to the matching unit, inferring the VCI from
// (bits, mask). If an unexpected message already satisfies it the op
// completes immediately and its buffered copy returns to the pool. The
// matching unit's bin and search work is charged at the handoff, priced
// by the profile.
func (ep *Endpoint) PostRecv(op *RecvOp, bits match.Bits, mask match.Bits) {
	ep.PostRecvVCI(op, bits, mask, ep.vciForRecv(bits, mask))
}

// PostRecvVCI hands a receive to one interface's matching unit, or to
// the cross-VCI wildcard path when v is AnyVCI.
func (ep *Endpoint) PostRecvVCI(op *RecvOp, bits match.Bits, mask match.Bits, v int) {
	p := &ep.f.prof
	ep.meter.ChargeCycles(instr.Transport, p.RecvPost)
	now := ep.meter.Now()
	op.posted = now
	v = ep.norm(v)
	if v == AnyVCI {
		ep.postRecvMulti(op, bits, mask)
		return
	}
	op.vci = v
	op.multi = false
	s := ep.vcis[v]
	var fireRel ViewReleaser
	s.mu.Lock()
	bins, searches := s.eng.BinOps, s.eng.Searches
	if entry, ok := s.eng.PostRecv(bits, mask, op); ok {
		m := entry.Cookie.(*message)
		// The receive found its message waiting: it spent the span
		// since m.arrival on the unexpected queue; the receive itself
		// waited zero.
		ep.m.Lat.UnexRes.Observe(int64(now - m.arrival))
		ep.m.Lat.PostMatch.Observe(0)
		s.postMatch.Observe(0)
		ep.m.Flight.Record(flight.UnexHit, int64(now), m.src, len(m.data), v)
		ep.completeRecv(op, entry.Bits, m.data, m.arrival)
		fireRel = s.consumeMessage(m)
	} else {
		ep.m.MaxPosted(s.eng.PostedLen())
		ep.m.Flight.Record(flight.PostRecv, int64(now), recvPeer(bits, mask), 0, v)
	}
	bins, searches = s.eng.BinOps-bins, s.eng.Searches-searches
	s.mu.Unlock()
	ep.meter.ChargeCycles(instr.Transport, p.matchCost(bins, searches))
	if fireRel != nil {
		fireRel.Release(op.Fold == nil)
	}
}

// recvPeer is the flight-recorder peer of a posted receive: the
// constrained source, or -1 under MPI_ANY_SOURCE.
func recvPeer(bits, mask match.Bits) int {
	if mask.SourceWild() {
		return -1
	}
	return bits.Source()
}

// postRecvMulti is the wildcard fallback: under every VCI lock, sweep
// stale replicas, then look for the globally earliest buffered match by
// arrival stamp; failing that, replicate the receive into every engine
// with a once-only completion claim. Matching order is preserved both
// ways: buffered messages are compared by their endpoint-global arrival
// stamps, and a live replica set behaves like one posted receive that
// the earliest matching arrival claims (same-sender deposits are
// ordered by the sender's own sequencing).
func (ep *Endpoint) postRecvMulti(op *RecvOp, bits, mask match.Bits) {
	op.vci = AnyVCI
	op.multi = true
	op.claimed.Store(false)
	var bins, searches int64
	var fireRel ViewReleaser
	ep.lockAll()
	ep.sweepStaleLocked()
	best := -1
	var bestSeq uint64
	for i, s := range ep.vcis {
		b, se := s.eng.BinOps, s.eng.Searches
		if entry, ok := s.eng.Probe(bits, mask); ok {
			m := entry.Cookie.(*message)
			if best < 0 || m.gseq < bestSeq {
				best, bestSeq = i, m.gseq
			}
		}
		bins += s.eng.BinOps - b
		searches += s.eng.Searches - se
	}
	if best >= 0 {
		s := ep.vcis[best]
		entry, _ := s.eng.ExtractUnexpected(bits, mask)
		m := entry.Cookie.(*message)
		now := ep.meter.Now()
		ep.m.Lat.UnexRes.Observe(int64(now - m.arrival))
		ep.m.Lat.PostMatch.Observe(0)
		s.postMatch.Observe(0)
		ep.m.Flight.Record(flight.UnexHit, int64(now), m.src, len(m.data), best)
		ep.completeRecv(op, entry.Bits, m.data, m.arrival)
		fireRel = s.consumeMessage(m)
	} else {
		for _, s := range ep.vcis {
			s.eng.PostRecv(bits, mask, op)
			ep.m.MaxPosted(s.eng.PostedLen())
		}
		ep.m.Flight.Record(flight.PostRecv, int64(ep.meter.Now()), recvPeer(bits, mask), 0, AnyVCI)
	}
	ep.unlockAll()
	ep.meter.ChargeCycles(instr.Transport, ep.f.prof.matchCost(bins, searches))
	if fireRel != nil {
		fireRel.Release(op.Fold == nil)
	}
}

// RecvDone polls one receive for completion. On the completing poll it
// syncs the owner's clock to the message arrival and charges the
// completion-reap cost.
func (ep *Endpoint) RecvDone(op *RecvOp) bool {
	if !op.done.Load() {
		return false
	}
	ep.reap(op)
	return true
}

// WaitRecv blocks until the receive completes, running active-message
// handlers that arrive in the meantime (progress happens inside MPI
// calls, as in a real implementation). An op posted to a single VCI
// parks on that VCI's condition and is not woken by unrelated traffic
// elsewhere on the endpoint; a wildcard op parks on the aggregate.
func (ep *Endpoint) WaitRecv(op *RecvOp) {
	if op.vci >= 0 {
		s := ep.vcis[op.vci]
		parked := false
		defer func() {
			if parked {
				ep.f.stall.Unpark(ep.rank)
			}
		}()
		s.mu.Lock()
		for !op.done.Load() {
			if atomic.LoadInt32(&ep.amqLen) > 0 {
				s.mu.Unlock()
				ep.Progress()
				s.mu.Lock()
				continue
			}
			ep.f.aborted.CheckLocked(&s.mu)
			if !parked {
				parked = true
				ep.f.stall.Park(ep.rank)
				ep.m.Flight.Record(flight.Park, int64(ep.meter.Now()), -1, 0, op.vci)
			}
			s.cond.Wait()
		}
		s.mu.Unlock()
	} else {
		for !op.done.Load() {
			seq := ep.EventSeq()
			ep.Progress()
			if op.done.Load() {
				break
			}
			ep.WaitEvent(seq)
		}
	}
	ep.reap(op)
}

// reap accounts for a completed receive on the owner's clock, exactly
// once per op.
func (ep *Endpoint) reap(op *RecvOp) {
	if op.reaped {
		return
	}
	op.reaped = true
	// Wait park time: the virtual-time jump Sync is about to perform —
	// how far ahead of this rank's clock the completion arrived (zero
	// when the rank got there after the message).
	now := ep.meter.Now()
	ep.m.Lat.WaitPark.Observe(int64(op.Arrival - now))
	ep.meter.Sync(op.Arrival)
	ep.meter.ChargeCycles(instr.Transport, ep.f.prof.RecvComplete)
	ep.m.Flight.Record(flight.RecvDone, int64(ep.meter.Now()), op.Src, op.N, op.vci)
}

// CancelRecv removes a posted receive. It reports false if the receive
// already matched.
func (ep *Endpoint) CancelRecv(op *RecvOp) bool {
	if op.vci >= 0 {
		s := ep.vcis[op.vci]
		s.mu.Lock()
		defer s.mu.Unlock()
		if op.done.Load() {
			return false
		}
		return s.eng.CancelRecv(op)
	}
	ep.lockAll()
	defer ep.unlockAll()
	if op.done.Load() {
		return false
	}
	ok := false
	for _, s := range ep.vcis {
		if s.eng.CancelRecv(op) {
			ok = true
		}
	}
	return ok
}

// Probe checks for a buffered unexpected message matching (bits, mask)
// and returns its source, tag and size without consuming it. The
// matching unit's work is charged like any other search; a wildcard
// mask pays the cross-VCI walk.
func (ep *Endpoint) Probe(bits, mask match.Bits) (src, tag, size int, ok bool) {
	return ep.ProbeVCI(bits, mask, ep.vciForRecv(bits, mask))
}

// ProbeVCI is Probe against an explicitly named interface (or the
// cross-VCI walk when v is AnyVCI) — the device names the VCI when
// communicator hints refine the mapping.
func (ep *Endpoint) ProbeVCI(bits, mask match.Bits, v int) (src, tag, size int, ok bool) {
	p := &ep.f.prof
	var bins, searches int64
	v = ep.norm(v)
	if v >= 0 {
		s := ep.vcis[v]
		s.mu.Lock()
		b, se := s.eng.BinOps, s.eng.Searches
		entry, hit := s.eng.Probe(bits, mask)
		bins, searches = s.eng.BinOps-b, s.eng.Searches-se
		if hit {
			m := entry.Cookie.(*message)
			src, tag, size = m.src, entry.Bits.Tag(), len(m.data)
		}
		s.mu.Unlock()
		ep.meter.ChargeCycles(instr.Transport, p.matchCost(bins, searches))
		return src, tag, size, hit
	}
	ep.lockAll()
	ep.sweepStaleLocked()
	var bm *message
	var bt int
	var bestSeq uint64
	hit := false
	for _, s := range ep.vcis {
		b, se := s.eng.BinOps, s.eng.Searches
		if entry, ok := s.eng.Probe(bits, mask); ok {
			m := entry.Cookie.(*message)
			if !hit || m.gseq < bestSeq {
				hit, bestSeq, bm, bt = true, m.gseq, m, entry.Bits.Tag()
			}
		}
		bins += s.eng.BinOps - b
		searches += s.eng.Searches - se
	}
	if hit {
		src, tag, size = bm.src, bt, len(bm.data)
	}
	ep.unlockAll()
	ep.meter.ChargeCycles(instr.Transport, p.matchCost(bins, searches))
	return src, tag, size, hit
}

// MProbe extracts a buffered unexpected message matching (bits, mask):
// the matched-probe primitive. The returned payload is owned by the
// caller (it leaves the pool for good); the message can no longer match
// any posted receive.
func (ep *Endpoint) MProbe(bits, mask match.Bits) (src, tag int, data []byte, arrival vtime.Time, ok bool) {
	return ep.MProbeVCI(bits, mask, ep.vciForRecv(bits, mask))
}

// MProbeVCI is MProbe against an explicitly named interface (or the
// cross-VCI walk when v is AnyVCI).
func (ep *Endpoint) MProbeVCI(bits, mask match.Bits, v int) (src, tag int, data []byte, arrival vtime.Time, ok bool) {
	p := &ep.f.prof
	var bins, searches int64
	var fireRel ViewReleaser
	v = ep.norm(v)
	if v >= 0 {
		s := ep.vcis[v]
		s.mu.Lock()
		b, se := s.eng.BinOps, s.eng.Searches
		entry, hit := s.eng.ExtractUnexpected(bits, mask)
		bins, searches = s.eng.BinOps-b, s.eng.Searches-se
		if hit {
			m := entry.Cookie.(*message)
			src, tag, data, arrival = entry.Bits.Source(), entry.Bits.Tag(), m.data, m.arrival
			ep.m.Lat.UnexRes.Observe(int64(ep.meter.Now() - m.arrival))
			data, fireRel = ep.ownMProbeData(m)
			s.putMessage(m)
		}
		s.mu.Unlock()
		ep.meter.ChargeCycles(instr.Transport, p.matchCost(bins, searches))
		if fireRel != nil {
			fireRel.Release(true)
		}
		return src, tag, data, arrival, hit
	}
	ep.lockAll()
	ep.sweepStaleLocked()
	best := -1
	var bestSeq uint64
	for i, s := range ep.vcis {
		b, se := s.eng.BinOps, s.eng.Searches
		if entry, okp := s.eng.Probe(bits, mask); okp {
			m := entry.Cookie.(*message)
			if best < 0 || m.gseq < bestSeq {
				best, bestSeq = i, m.gseq
			}
		}
		bins += s.eng.BinOps - b
		searches += s.eng.Searches - se
	}
	if best >= 0 {
		s := ep.vcis[best]
		entry, _ := s.eng.ExtractUnexpected(bits, mask)
		m := entry.Cookie.(*message)
		src, tag, data, arrival, ok = entry.Bits.Source(), entry.Bits.Tag(), m.data, m.arrival, true
		ep.m.Lat.UnexRes.Observe(int64(ep.meter.Now() - m.arrival))
		data, fireRel = ep.ownMProbeData(m)
		s.putMessage(m)
	}
	ep.unlockAll()
	ep.meter.ChargeCycles(instr.Transport, p.matchCost(bins, searches))
	if fireRel != nil {
		fireRel.Release(true)
	}
	return src, tag, data, arrival, ok
}

// ownMProbeData turns an extracted unexpected message's payload into a
// caller-owned buffer. A pooled payload already leaves the pool for
// good; a zero-copy handoff view cannot outlive its release, so it is
// copied into fresh storage (that staging copy is what a matched probe
// costs the handoff path) and the view is released once the caller
// drops the VCI locks.
func (ep *Endpoint) ownMProbeData(m *message) ([]byte, ViewReleaser) {
	if m.rel == nil {
		return m.data, nil
	}
	buf := append([]byte(nil), m.data...)
	if len(buf) > 0 {
		// The copy's cycle cost is charged by the release below
		// (Release with copied=true prices one per-byte pass).
		ep.m.CopiesStaged.Note(len(buf))
	}
	rel := m.rel
	m.data, m.rel = nil, nil
	return buf, rel
}

// AMSend injects an active message toward dst. hdr and payload are
// copied. Every waiter on the target wakes: whichever goroutine is
// parked must surface to run the progress engine.
func (ep *Endpoint) AMSend(dst int, handler uint8, hdr, payload []byte) {
	ep.noteConn(dst)
	p := &ep.f.prof
	ep.meter.ChargeCycles(instr.Transport, p.injectCost(p.AMInject, len(hdr)+len(payload)))
	ep.m.AmSend.Note(len(hdr) + len(payload))
	arrival := p.arrival(ep.meter.Now(), len(hdr)+len(payload))

	h := append([]byte(nil), hdr...)
	pl := append([]byte(nil), payload...)
	tgt := ep.f.Endpoint(dst)
	tgt.amMu.Lock()
	tgt.amq = append(tgt.amq, am{src: ep.rank, handler: handler, hdr: h, payload: pl, arrival: arrival})
	atomic.AddInt32(&tgt.amqLen, 1)
	tgt.amMu.Unlock()
	ep.m.Flight.Record(flight.AMSend, int64(arrival), dst, len(hdr)+len(payload), AnyVCI)
	for i := range tgt.vcis {
		tgt.wakeVCI(i)
	}
	tgt.bumpAgg()
}

// Progress runs pending active-message handlers. It returns the number
// of messages handled. Handlers run on the calling goroutine; devices
// that use active messages keep progress on the owner goroutine.
func (ep *Endpoint) Progress() int {
	total := 0
	for {
		ep.amMu.Lock()
		batch := ep.amq
		ep.amq = nil
		if len(batch) > 0 {
			atomic.AddInt32(&ep.amqLen, -int32(len(batch)))
		}
		ep.amMu.Unlock()
		if len(batch) == 0 {
			return total
		}
		// AmRecv counts at delivery (when the handler runs), not at
		// enqueue, so a snapshot never reports still-queued messages
		// as received.
		for i := range batch {
			m := &batch[i]
			ep.m.AmRecv.Note(len(m.hdr) + len(m.payload))
			ep.m.Flight.Record(flight.AMRecv, int64(m.arrival), m.src, len(m.hdr)+len(m.payload), AnyVCI)
		}
		for i := range batch {
			// No clock sync here: the handler runs asynchronously to
			// the rank's logical timeline (a NIC/progress-thread
			// stand-in). Consumers fold m.arrival into the clock at
			// the point the message's effect is logically observed
			// (receive completion, ack wait, epoch close); syncing at
			// drain time would let real-goroutine scheduling races
			// leak future timestamps into the virtual clock.
			m := &batch[i]
			h := ep.handlers[m.handler]
			if h == nil {
				panic("fabric: active message with unregistered handler")
			}
			h(m.src, m.hdr, m.payload, m.arrival)
		}
		total += len(batch)
	}
}

// WaitUntil blocks until pred (evaluated by the calling goroutine)
// returns true, running AM handlers while waiting. pred is evaluated
// without any fabric lock; it is the device's own completion flag.
func (ep *Endpoint) WaitUntil(pred func() bool) {
	for {
		seq := ep.EventSeq()
		ep.Progress()
		if pred() {
			return
		}
		ep.WaitEvent(seq)
	}
}

// MatchSearches exposes the summed engine search counter for the
// matching ablation benchmark.
func (ep *Endpoint) MatchSearches() int64 {
	var n int64
	for _, s := range ep.vcis {
		s.mu.Lock()
		n += s.eng.Searches
		s.mu.Unlock()
	}
	return n
}

// MatchBinOps exposes the summed bin-operation counter: the hash work
// the binned organization pays for its depth independence.
func (ep *Endpoint) MatchBinOps() int64 {
	var n int64
	for _, s := range ep.vcis {
		s.mu.Lock()
		n += s.eng.BinOps
		s.mu.Unlock()
	}
	return n
}

// vciStats copies each interface's traffic counters, taking the VCI
// locks one at a time.
func (ep *Endpoint) vciStats() []metrics.VCIStat {
	out := make([]metrics.VCIStat, len(ep.vcis))
	for i, s := range ep.vcis {
		s.mu.Lock()
		out[i] = s.stats
		s.mu.Unlock()
		out[i].PostMatch = s.postMatch.Snapshot()
	}
	return out
}

// SnapshotStats snapshots the bound rank's registry (atomic throughout,
// so no endpoint lock is needed) and attaches the per-VCI traffic
// split. Devices that match in software at the MPI layer fold their own
// engine first and call this.
func (ep *Endpoint) SnapshotStats() metrics.Snapshot {
	s := ep.m.Snapshot()
	s.VCIs = ep.vciStats()
	return s
}

// FoldAndSnapshot sums the per-VCI matching engines' counters into the
// bound rank's registry and snapshots it. Devices whose matching runs
// on the endpoint (CH4) use this.
func (ep *Endpoint) FoldAndSnapshot() metrics.Snapshot {
	var binOps, searches, binHits, wildHits int64
	for _, s := range ep.vcis {
		s.mu.Lock()
		binOps += s.eng.BinOps
		searches += s.eng.Searches
		binHits += s.eng.BinHits
		wildHits += s.eng.WildHits
		s.mu.Unlock()
	}
	ep.m.StoreMatch(binOps, searches, binHits, wildHits)
	return ep.SnapshotStats()
}
