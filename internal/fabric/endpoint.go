package fabric

import (
	"sync"

	"gompi/internal/instr"
	"gompi/internal/match"
	"gompi/internal/metrics"
	"gompi/internal/vtime"
)

// RecvOp is an outstanding tagged receive. The owner posts it with
// PostRecv and completes it with RecvDone/WaitRecv; the fabric fills in
// the result fields when a message matches.
type RecvOp struct {
	Buf []byte // destination buffer (fabric copies into it)

	// Results, valid once the op completes.
	N         int        // bytes delivered
	Src       int        // sending rank (world address space)
	Tag       int        // sender's tag
	Truncated bool       // message was longer than Buf
	Arrival   vtime.Time // virtual arrival time at the target

	done   bool
	reaped bool
}

// AMHandler consumes an incoming active message on the owner goroutine
// of the receiving endpoint. hdr and payload are owned by the handler.
type AMHandler func(src int, hdr, payload []byte, arrival vtime.Time)

// message is a buffered unexpected tagged message. Instances are
// recycled through the endpoint's free list (chained via next); data is
// a pooled copy returned to the endpoint's buffer pool when the message
// is consumed by a receive.
type message struct {
	src     int
	data    []byte
	arrival vtime.Time
	next    *message
}

// am is a queued active message.
type am struct {
	src     int
	handler uint8
	hdr     []byte
	payload []byte
	arrival vtime.Time
}

// Endpoint is one rank's attachment to the fabric. The tagged matching
// engine lives behind the endpoint lock — that is the "hardware"
// matching unit. Only the owner goroutine posts receives, waits, and
// runs progress; remote ranks deposit messages under the lock.
type Endpoint struct {
	f    *Fabric
	rank int

	mu   sync.Mutex
	cond *sync.Cond
	eng  match.Engine
	amq  []am

	// Eager-path recycling, guarded by mu: payload copies come from the
	// size-classed pool, message envelopes from the free list, so the
	// steady-state eager path performs zero heap allocations.
	pool    bufPool
	msgFree *message

	handlers [256]AMHandler
	meter    Meter
	// m caches meter.Metrics(). Receive-side counters are bumped
	// through it under mu by depositing peers, so traffic lands on the
	// receiving rank's registry regardless of which goroutine carries
	// it — and snapshots must also hold mu (SnapshotStats). Starts as
	// a placeholder registry; Bind replaces it.
	m        *metrics.Rank
	eventSeq uint64
}

// via says which transport carried a deposited message, for
// receive-side path attribution.
type via uint8

const (
	viaNet via = iota
	viaShm
	viaSelf
)

// getMessage pops a recycled message envelope (or allocates the first
// time). Caller holds the endpoint lock.
func (ep *Endpoint) getMessage() *message {
	m := ep.msgFree
	if m == nil {
		return new(message)
	}
	ep.msgFree = m.next
	m.next = nil
	return m
}

// putMessage zeroes an envelope and chains it on the free list. Caller
// holds the endpoint lock and has already dealt with m.data.
func (ep *Endpoint) putMessage(m *message) {
	*m = message{next: ep.msgFree}
	ep.msgFree = m
}

// releaseMessage recycles a consumed unexpected message: payload back
// to the buffer pool, envelope to the free list. Caller holds the lock.
func (ep *Endpoint) releaseMessage(m *message) {
	ep.pool.put(m.data)
	ep.putMessage(m)
}

func newEndpoint(f *Fabric, rank int) *Endpoint {
	// The placeholder registry keeps deposits into a never-bound
	// endpoint safe (direct fabric tests); Bind replaces it with the
	// owning rank's registry.
	ep := &Endpoint{f: f, rank: rank, m: new(metrics.Rank)}
	ep.cond = sync.NewCond(&ep.mu)
	return ep
}

// Rank returns the endpoint's fabric address.
func (ep *Endpoint) Rank() int { return ep.rank }

// Bind attaches the owning rank's meter. Must be called before any
// operation that charges costs.
func (ep *Endpoint) Bind(m Meter) {
	ep.meter = m
	ep.m = m.Metrics()
}

// RegisterAM installs the handler for one active-message id. Handlers
// are installed at device init, before communication starts.
func (ep *Endpoint) RegisterAM(id uint8, h AMHandler) { ep.handlers[id] = h }

// TaggedSend injects a tagged send toward dst. The payload is copied,
// so the caller may reuse data immediately. Messages up to the
// profile's eager limit are deposited directly; larger ones pay the
// rendezvous handshake in time (an RTS/CTS round trip before the data
// crosses) and extra control-message CPU on the sender — the latency
// cliff every MPI shows at its eager threshold. Matching happens at
// the destination endpoint as the message arrives — the
// hardware-offload model of PSM2 and UCX.
func (ep *Endpoint) TaggedSend(dst int, bits match.Bits, data []byte) {
	p := &ep.f.prof
	ep.meter.ChargeCycles(instr.Transport, p.injectCost(p.SendInject, len(data)))
	ep.m.NetSend.Note(len(data))
	now := ep.meter.Now()
	if p.EagerLimit > 0 && len(data) > p.EagerLimit {
		// RTS out, CTS back, then the payload: two extra wire
		// latencies plus the control processing.
		ep.meter.ChargeCycles(instr.Transport, p.RndvInject)
		now = ep.meter.Now() + 2*vtime.Time(p.WireLatency)
		ep.m.Rndv.Note(len(data))
	} else {
		ep.m.Eager.Note(len(data))
	}
	arrival := p.arrivalAt(now, len(data))

	ep.f.eps[dst].deposit(bits, ep.rank, data, arrival, viaNet)
}

// deposit lands an incoming message at this endpoint: match against the
// posted queue or buffer as unexpected. Called from the sender's
// goroutine; data is borrowed from the caller for the duration of the
// call. A message that matches a posted receive copies straight into
// the receive buffer — no intermediate copy exists on the fast path;
// only an unexpected message pays for a (pooled) buffered copy.
func (ep *Endpoint) deposit(bits match.Bits, src int, data []byte, arrival vtime.Time, v via) {
	ep.mu.Lock()
	switch v {
	case viaShm:
		ep.m.ShmRecv.Note(len(data))
	case viaSelf:
		// Self-loop traffic is counted once, at delivery.
		ep.m.Self.Note(len(data))
	default:
		ep.m.NetRecv.Note(len(data))
	}
	m := ep.getMessage()
	if entry, ok := ep.eng.Arrive(bits, m); ok {
		ep.putMessage(m)
		op := entry.Cookie.(*RecvOp)
		completeRecv(op, bits, data, arrival)
	} else {
		m.src = src
		buf := ep.pool.get(len(data), ep.m)
		copy(buf, data)
		m.data = buf
		m.arrival = arrival
		ep.m.MaxUnexpected(ep.eng.UnexpectedLen())
	}
	ep.eventSeq++
	ep.cond.Broadcast()
	ep.mu.Unlock()
}

// DepositShm lands a message that arrived over the shared-memory rings
// in this endpoint's matching engine, so that netmod and shmmod traffic
// share one matching context — which is what makes MPI_ANY_SOURCE
// receives work across transports in CH4. data is borrowed: the
// endpoint copies what it keeps, so the caller may reuse the slice as
// soon as the call returns.
func (ep *Endpoint) DepositShm(bits match.Bits, src int, data []byte, arrival vtime.Time) {
	ep.deposit(bits, src, data, arrival, viaShm)
}

// DepositSelf lands a self-loop message (the ch4-core self-send
// shortcut). Same borrowing contract as DepositShm.
func (ep *Endpoint) DepositSelf(bits match.Bits, src int, data []byte, arrival vtime.Time) {
	ep.deposit(bits, src, data, arrival, viaSelf)
}

// Wake nudges the endpoint's owner out of WaitEvent: another transport
// has work for it.
func (ep *Endpoint) Wake() {
	ep.mu.Lock()
	ep.eventSeq++
	ep.cond.Broadcast()
	ep.mu.Unlock()
}

// EventSeq returns an opaque counter that increases on every deposit,
// active message, and Wake.
func (ep *Endpoint) EventSeq() uint64 {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.eventSeq
}

// WaitEvent blocks until the event counter moves past last, then
// returns its new value. Devices that poll multiple transports use it
// to park between polls without losing wakeups. Panics with
// core.ErrWorldAborted once the fabric is aborted.
func (ep *Endpoint) WaitEvent(last uint64) uint64 {
	ep.mu.Lock()
	for ep.eventSeq == last && len(ep.amq) == 0 {
		ep.f.aborted.CheckLocked(&ep.mu)
		ep.cond.Wait()
	}
	seq := ep.eventSeq
	ep.mu.Unlock()
	return seq
}

// completeRecv copies a (borrowed) payload into the receive buffer and
// fills results. Caller holds the endpoint lock. The source reported is
// the MPI-level source the sender encoded in the match bits (its
// communicator rank), not the transport address.
func completeRecv(op *RecvOp, bits match.Bits, data []byte, arrival vtime.Time) {
	n := copy(op.Buf, data)
	op.N = n
	op.Truncated = n < len(data)
	op.Src = bits.Source()
	op.Tag = bits.Tag()
	op.Arrival = arrival
	op.done = true
}

// PostRecv hands a receive to the matching unit. If an unexpected
// message already satisfies it the op completes immediately and its
// buffered copy returns to the pool. The matching unit's bin and
// search work is charged at the handoff, priced by the profile.
func (ep *Endpoint) PostRecv(op *RecvOp, bits match.Bits, mask match.Bits) {
	p := &ep.f.prof
	ep.meter.ChargeCycles(instr.Transport, p.RecvPost)

	ep.mu.Lock()
	bins, searches := ep.eng.BinOps, ep.eng.Searches
	if entry, ok := ep.eng.PostRecv(bits, mask, op); ok {
		m := entry.Cookie.(*message)
		completeRecv(op, entry.Bits, m.data, m.arrival)
		ep.releaseMessage(m)
	} else {
		ep.m.MaxPosted(ep.eng.PostedLen())
	}
	bins, searches = ep.eng.BinOps-bins, ep.eng.Searches-searches
	ep.mu.Unlock()
	ep.meter.ChargeCycles(instr.Transport, p.matchCost(bins, searches))
}

// RecvDone polls one receive for completion. On the completing poll it
// syncs the owner's clock to the message arrival and charges the
// completion-reap cost.
func (ep *Endpoint) RecvDone(op *RecvOp) bool {
	ep.mu.Lock()
	done := op.done
	ep.mu.Unlock()
	if done {
		ep.reap(op)
	}
	return done
}

// WaitRecv blocks until the receive completes, running active-message
// handlers that arrive in the meantime (progress happens inside MPI
// calls, as in a real implementation).
func (ep *Endpoint) WaitRecv(op *RecvOp) {
	ep.mu.Lock()
	for !op.done {
		if len(ep.amq) > 0 {
			ep.drainAMLocked()
			continue
		}
		ep.f.aborted.CheckLocked(&ep.mu)
		ep.cond.Wait()
	}
	ep.mu.Unlock()
	ep.reap(op)
}

// reap accounts for a completed receive on the owner's clock, exactly
// once per op.
func (ep *Endpoint) reap(op *RecvOp) {
	if op.reaped {
		return
	}
	op.reaped = true
	ep.meter.Sync(op.Arrival)
	ep.meter.ChargeCycles(instr.Transport, ep.f.prof.RecvComplete)
}

// CancelRecv removes a posted receive. It reports false if the receive
// already matched.
func (ep *Endpoint) CancelRecv(op *RecvOp) bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if op.done {
		return false
	}
	return ep.eng.CancelRecv(op)
}

// Probe checks for a buffered unexpected message matching (bits, mask)
// and returns its source, tag and size without consuming it. The
// matching unit's work is charged like any other search.
func (ep *Endpoint) Probe(bits, mask match.Bits) (src, tag, size int, ok bool) {
	ep.mu.Lock()
	bins, searches := ep.eng.BinOps, ep.eng.Searches
	entry, hit := ep.eng.Probe(bits, mask)
	bins, searches = ep.eng.BinOps-bins, ep.eng.Searches-searches
	if hit {
		m := entry.Cookie.(*message)
		src, tag, size = m.src, entry.Bits.Tag(), len(m.data)
	}
	ep.mu.Unlock()
	ep.meter.ChargeCycles(instr.Transport, ep.f.prof.matchCost(bins, searches))
	return src, tag, size, hit
}

// MProbe extracts a buffered unexpected message matching (bits, mask):
// the matched-probe primitive. The returned payload is owned by the
// caller (it leaves the pool for good); the message can no longer match
// any posted receive.
func (ep *Endpoint) MProbe(bits, mask match.Bits) (src, tag int, data []byte, arrival vtime.Time, ok bool) {
	ep.mu.Lock()
	bins, searches := ep.eng.BinOps, ep.eng.Searches
	entry, hit := ep.eng.ExtractUnexpected(bits, mask)
	bins, searches = ep.eng.BinOps-bins, ep.eng.Searches-searches
	if hit {
		m := entry.Cookie.(*message)
		src, tag, data, arrival = entry.Bits.Source(), entry.Bits.Tag(), m.data, m.arrival
		ep.putMessage(m)
	}
	ep.mu.Unlock()
	ep.meter.ChargeCycles(instr.Transport, ep.f.prof.matchCost(bins, searches))
	return src, tag, data, arrival, hit
}

// AMSend injects an active message toward dst. hdr and payload are
// copied.
func (ep *Endpoint) AMSend(dst int, handler uint8, hdr, payload []byte) {
	p := &ep.f.prof
	ep.meter.ChargeCycles(instr.Transport, p.injectCost(p.AMInject, len(hdr)+len(payload)))
	ep.m.AmSend.Note(len(hdr) + len(payload))
	arrival := p.arrival(ep.meter.Now(), len(hdr)+len(payload))

	h := append([]byte(nil), hdr...)
	pl := append([]byte(nil), payload...)
	tgt := ep.f.eps[dst]
	tgt.mu.Lock()
	tgt.amq = append(tgt.amq, am{src: ep.rank, handler: handler, hdr: h, payload: pl, arrival: arrival})
	tgt.eventSeq++
	tgt.cond.Broadcast()
	tgt.mu.Unlock()
}

// Progress runs pending active-message handlers on the owner goroutine.
// It returns the number of messages handled.
func (ep *Endpoint) Progress() int {
	ep.mu.Lock()
	n := ep.drainAMLocked()
	ep.mu.Unlock()
	return n
}

// drainAMLocked pops and runs all queued AMs. The endpoint lock is
// released while handlers run (handlers may send) and re-acquired
// before returning.
func (ep *Endpoint) drainAMLocked() int {
	total := 0
	for len(ep.amq) > 0 {
		batch := ep.amq
		ep.amq = nil
		// AmRecv counts at delivery (when the handler runs), not at
		// enqueue, so a snapshot never reports still-queued messages
		// as received.
		for _, m := range batch {
			ep.m.AmRecv.Note(len(m.hdr) + len(m.payload))
		}
		ep.mu.Unlock()
		for _, m := range batch {
			// No clock sync here: the handler runs asynchronously to
			// the rank's logical timeline (a NIC/progress-thread
			// stand-in). Consumers fold m.arrival into the clock at
			// the point the message's effect is logically observed
			// (receive completion, ack wait, epoch close); syncing at
			// drain time would let real-goroutine scheduling races
			// leak future timestamps into the virtual clock.
			h := ep.handlers[m.handler]
			if h == nil {
				panic("fabric: active message with unregistered handler")
			}
			h(m.src, m.hdr, m.payload, m.arrival)
		}
		total += len(batch)
		ep.mu.Lock()
	}
	return total
}

// WaitUntil blocks until pred (evaluated by the owner goroutine)
// returns true, running AM handlers while waiting. pred is evaluated
// without the endpoint lock; it is the device's own completion flag.
func (ep *Endpoint) WaitUntil(pred func() bool) {
	for {
		ep.Progress()
		if pred() {
			return
		}
		ep.mu.Lock()
		if len(ep.amq) == 0 && !pred() {
			ep.f.aborted.CheckLocked(&ep.mu)
			ep.cond.Wait()
		}
		ep.mu.Unlock()
	}
}

// MatchSearches exposes the engine's search counter for the matching
// ablation benchmark.
func (ep *Endpoint) MatchSearches() int64 {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.eng.Searches
}

// MatchBinOps exposes the engine's bin-operation counter: the hash work
// the binned organization pays for its depth independence.
func (ep *Endpoint) MatchBinOps() int64 {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.eng.BinOps
}

// SnapshotStats copies the bound rank's registry under the endpoint
// lock. Receive-side counters (NetRecv, ShmRecv, Self, AmRecv, pool
// and unexpected-queue gauges) are written by depositing peers under
// that lock, so an unlocked Rank.Snapshot would race with them; the
// owner's send-side counters are safe because Stats runs on the owner
// goroutine. Called at snapshot time only — the hot paths stay plain
// increments.
func (ep *Endpoint) SnapshotStats() metrics.Snapshot {
	ep.mu.Lock()
	s := ep.m.Snapshot()
	ep.mu.Unlock()
	return s
}

// FoldAndSnapshot stores the endpoint matching engine's counters into
// the bound rank's registry and snapshots it, all under the endpoint
// lock. Devices whose matching runs on the endpoint (CH4) use this;
// devices that match in software at the MPI layer fold their own
// engine and call SnapshotStats.
func (ep *Endpoint) FoldAndSnapshot() metrics.Snapshot {
	ep.mu.Lock()
	ep.m.MatchBinOps = ep.eng.BinOps
	ep.m.MatchSearches = ep.eng.Searches
	ep.m.MatchBinHits = ep.eng.BinHits
	ep.m.MatchWildHits = ep.eng.WildHits
	s := ep.m.Snapshot()
	ep.mu.Unlock()
	return s
}
