package fabric

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gompi/internal/match"
)

// newVCIFabric builds an nvci-way fabric with bound meters.
func newVCIFabric(t *testing.T, n, nvci int) *Fabric {
	t.Helper()
	f := NewVCI(INF, n, nvci)
	for i := 0; i < n; i++ {
		f.Endpoint(i).Bind(newTestMeter(1e9))
	}
	return f
}

func TestVCIMappingDeterministic(t *testing.T) {
	f := newVCIFabric(t, 2, 4)
	bits := match.MakeBits(6, 3, 17)
	v := f.VCIFor(bits)
	if v < 0 || v >= 4 {
		t.Fatalf("VCIFor out of range: %d", v)
	}
	if f.VCIFor(bits) != v {
		t.Fatal("VCIFor is not deterministic")
	}
	// Source must not influence the mapping: an AnySource receive with
	// an exact tag has to land on the same interface as every sender.
	if got := f.VCIFor(match.MakeBits(6, 9, 17)); got != v {
		t.Fatalf("VCIFor depends on source: %d vs %d", got, v)
	}
	if got := f.VCIForCtx(6); got < 0 || got >= 4 {
		t.Fatalf("VCIForCtx out of range: %d", got)
	}
	// Single-VCI fabrics collapse everything to interface 0.
	f1 := newVCIFabric(t, 2, 1)
	if f1.VCIFor(bits) != 0 || f1.VCIForCtx(6) != 0 {
		t.Fatal("single-VCI fabric must map everything to 0")
	}
}

func TestVCITrafficIsolatedPerInterface(t *testing.T) {
	f := newVCIFabric(t, 2, 4)
	src, dst := f.Endpoint(0), f.Endpoint(1)
	// One message per interface, each with distinct payload.
	for v := 0; v < 4; v++ {
		src.TaggedSendVCI(1, match.MakeBits(1, 0, v), []byte{byte(0x10 + v)}, v)
	}
	// Receive them in reverse interface order: matching within an
	// interface is independent of the others.
	for v := 3; v >= 0; v-- {
		op := &RecvOp{Buf: make([]byte, 1)}
		dst.PostRecvVCI(op, match.MakeBits(1, 0, v), match.FullMask, v)
		dst.WaitRecv(op)
		if op.N != 1 || op.Buf[0] != byte(0x10+v) {
			t.Fatalf("vci %d delivered % x", v, op.Buf[:op.N])
		}
	}
}

func TestWildcardRecvSearchesAllVCIs(t *testing.T) {
	f := newVCIFabric(t, 2, 4)
	src, dst := f.Endpoint(0), f.Endpoint(1)
	// Park messages on every interface, then drain with AnyVCI
	// wildcard receives; every payload must arrive exactly once.
	want := map[byte]bool{}
	for v := 0; v < 4; v++ {
		p := byte(0x20 + v)
		want[p] = true
		src.TaggedSendVCI(1, match.MakeBits(1, 0, v), []byte{p}, v)
	}
	mask := match.RecvMask(false, true) // exact src, any tag
	for i := 0; i < 4; i++ {
		op := &RecvOp{Buf: make([]byte, 1)}
		dst.PostRecvVCI(op, match.MakeBits(1, 0, 0), mask, AnyVCI)
		dst.WaitRecv(op)
		if op.N != 1 || !want[op.Buf[0]] {
			t.Fatalf("wildcard receive %d delivered unexpected % x", i, op.Buf[:op.N])
		}
		delete(want, op.Buf[0])
	}
	if len(want) != 0 {
		t.Fatalf("wildcard receives missed payloads: %v", want)
	}
}

func TestWildcardRecvPreservesArrivalOrderAcrossVCIs(t *testing.T) {
	f := newVCIFabric(t, 2, 4)
	src, dst := f.Endpoint(0), f.Endpoint(1)
	// Same (would-be) matching set, deposited in a known global order
	// across different interfaces. The cross-VCI search must hand them
	// back in arrival order, not interface order.
	order := []int{2, 0, 3, 1}
	for i, v := range order {
		src.TaggedSendVCI(1, match.MakeBits(1, 0, v), []byte{byte(i)}, v)
	}
	mask := match.RecvMask(false, true)
	for i := 0; i < len(order); i++ {
		op := &RecvOp{Buf: make([]byte, 1)}
		dst.PostRecvVCI(op, match.MakeBits(1, 0, 0), mask, AnyVCI)
		dst.WaitRecv(op)
		if op.Buf[0] != byte(i) {
			t.Fatalf("wildcard receive %d got deposit %d: cross-VCI order broken", i, op.Buf[0])
		}
	}
}

// TestEventSeqPerVCIIsolation is the regression test for the
// single-event-sequence design: traffic on one interface must not
// advance another interface's event counter, or every parked waiter
// wakes on every deposit anywhere on the endpoint (the spurious-wakeup
// storm the per-VCI sequences fix).
func TestEventSeqPerVCIIsolation(t *testing.T) {
	f := newVCIFabric(t, 2, 4)
	src, dst := f.Endpoint(0), f.Endpoint(1)
	seq0 := dst.EventSeqVCI(0)
	seq1 := dst.EventSeqVCI(1)
	agg := dst.EventSeq()
	const hammer = 64
	var wg sync.WaitGroup
	wg.Add(2)
	for g := 0; g < 2; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < hammer/2; i++ {
				src.TaggedSendVCI(1, match.MakeBits(1, 0, 1), []byte{1}, 1)
			}
		}(g)
	}
	wg.Wait()
	if got := dst.EventSeqVCI(0); got != seq0 {
		t.Fatalf("VCI 0 sequence moved %d -> %d on VCI 1 traffic", seq0, got)
	}
	if got := dst.EventSeqVCI(1); got == seq1 {
		t.Fatal("VCI 1 sequence did not advance under its own traffic")
	}
	if got := dst.EventSeq(); got == agg {
		t.Fatal("aggregate sequence did not advance")
	}
	// Drain so the fabric ends balanced.
	for i := 0; i < hammer; i++ {
		op := &RecvOp{Buf: make([]byte, 1)}
		dst.PostRecvVCI(op, match.MakeBits(1, 0, 1), match.FullMask, 1)
		dst.WaitRecv(op)
	}
}

// TestWaitEventVCINoSpuriousWakeup pins the blocking side: a waiter
// parked on one interface stays parked while concurrent senders hammer
// a different interface, and wakes promptly on its own.
func TestWaitEventVCINoSpuriousWakeup(t *testing.T) {
	f := newVCIFabric(t, 2, 4)
	src, dst := f.Endpoint(0), f.Endpoint(1)
	seq0 := dst.EventSeqVCI(0)
	var woke atomic.Bool
	done := make(chan struct{})
	go func() {
		dst.WaitEventVCI(0, seq0)
		woke.Store(true)
		close(done)
	}()
	// Hammer interface 1 from several goroutines; the waiter on
	// interface 0 must not observe any of it.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				src.TaggedSendVCI(1, match.MakeBits(1, 0, 1), []byte{1}, 1)
			}
		}()
	}
	wg.Wait()
	time.Sleep(20 * time.Millisecond)
	if woke.Load() {
		t.Fatal("waiter on VCI 0 woke on VCI 1 traffic")
	}
	// Its own interface wakes it.
	src.TaggedSendVCI(1, match.MakeBits(1, 0, 0), []byte{2}, 0)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter on VCI 0 never woke on VCI 0 traffic")
	}
	// Drain both interfaces.
	for i := 0; i < 128; i++ {
		op := &RecvOp{Buf: make([]byte, 1)}
		dst.PostRecvVCI(op, match.MakeBits(1, 0, 1), match.FullMask, 1)
		dst.WaitRecv(op)
	}
	op := &RecvOp{Buf: make([]byte, 1)}
	dst.PostRecvVCI(op, match.MakeBits(1, 0, 0), match.FullMask, 0)
	dst.WaitRecv(op)
	if !bytes.Equal(op.Buf[:op.N], []byte{2}) {
		t.Fatalf("drain of VCI 0 got % x", op.Buf[:op.N])
	}
}

// TestProbeVCIOnPinnedInterface covers the hinted-communicator path:
// probes against a specific interface see exactly that interface's
// unexpected queue.
func TestProbeVCIOnPinnedInterface(t *testing.T) {
	f := newVCIFabric(t, 2, 4)
	src, dst := f.Endpoint(0), f.Endpoint(1)
	src.TaggedSendVCI(1, match.MakeBits(1, 0, 5), []byte{7, 7}, 2)
	if _, _, _, ok := dst.ProbeVCI(match.MakeBits(1, 0, 5), match.FullMask, 3); ok {
		t.Fatal("probe on VCI 3 saw a message deposited on VCI 2")
	}
	srcRank, tag, size, ok := dst.ProbeVCI(match.MakeBits(1, 0, 5), match.FullMask, 2)
	if !ok || srcRank != 0 || tag != 5 || size != 2 {
		t.Fatalf("probe on VCI 2: ok=%v src=%d tag=%d size=%d", ok, srcRank, tag, size)
	}
	op := &RecvOp{Buf: make([]byte, 2)}
	dst.PostRecvVCI(op, match.MakeBits(1, 0, 5), match.FullMask, 2)
	dst.WaitRecv(op)
}
