package fabric

import (
	"testing"

	"gompi/internal/match"
)

// reset readies a RecvOp for reuse, something only these in-package
// tests may do: the public contract is one op per receive.
func (op *RecvOp) reset() {
	op.done.Store(false)
	op.reaped = false
	op.N, op.Truncated = 0, false
}

// TestEagerPathNoAllocs is the strict allocation guard on the fabric
// eager path. Once the pools are warm, a 1-byte tagged send — whether
// it matches a pre-posted receive (direct copy into the receive
// buffer) or lands unexpected (pooled copy, consumed by a later
// receive) — must not allocate at all.
func TestEagerPathNoAllocs(t *testing.T) {
	f, _ := newTestFabric(t, INF, 2)
	src, dst := f.Endpoint(0), f.Endpoint(1)
	bits := match.MakeBits(1, 0, 7)
	payload := []byte{42}
	recvBuf := make([]byte, 8)
	op := &RecvOp{Buf: recvBuf}

	preposted := func() {
		op.reset()
		dst.PostRecv(op, bits, match.FullMask)
		src.TaggedSend(1, bits, payload)
		if !dst.RecvDone(op) || op.N != 1 {
			t.Fatal("pre-posted receive did not complete")
		}
	}
	unexpected := func() {
		op.reset()
		src.TaggedSend(1, bits, payload)
		dst.PostRecv(op, bits, match.FullMask)
		if !dst.RecvDone(op) || op.N != 1 {
			t.Fatal("unexpected-path receive did not complete")
		}
	}

	// Warm the node free list, buffer pool, and message free list.
	preposted()
	unexpected()

	if avg := testing.AllocsPerRun(200, preposted); avg != 0 {
		t.Errorf("pre-posted eager path allocates %.1f objects/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, unexpected); avg != 0 {
		t.Errorf("unexpected eager path allocates %.1f objects/op, want 0", avg)
	}
}

// TestPutPathNoAllocs guards the RMA fast path the same way: a
// steady-state 1-byte Put into a registered region must not allocate.
func TestPutPathNoAllocs(t *testing.T) {
	f, _ := newTestFabric(t, INF, 2)
	src := f.Endpoint(0)
	target := make([]byte, 64)
	key := f.RegisterRegion(1, target)
	data := []byte{9}

	src.Put(1, key, 0, data)
	if avg := testing.AllocsPerRun(200, func() { src.Put(1, key, 0, data) }); avg != 0 {
		t.Errorf("Put path allocates %.1f objects/op, want 0", avg)
	}
}

// TestPoolRecyclesBuffers pins the recycling behavior directly: an
// unexpected message's payload copy returns to the endpoint pool when
// the receive consumes it, and the next unexpected message reuses it.
func TestPoolRecyclesBuffers(t *testing.T) {
	f, _ := newTestFabric(t, INF, 2)
	src, dst := f.Endpoint(0), f.Endpoint(1)
	bits := match.MakeBits(1, 0, 1)

	src.TaggedSend(1, bits, []byte{1, 2, 3})
	s := dst.vcis[dst.f.VCIFor(bits)]
	var first []byte
	s.mu.Lock()
	if entry, ok := s.eng.Probe(bits, match.FullMask); ok {
		first = entry.Cookie.(*message).data
	}
	s.mu.Unlock()
	if first == nil {
		t.Fatal("no buffered unexpected message")
	}

	op := &RecvOp{Buf: make([]byte, 8)}
	dst.PostRecv(op, bits, match.FullMask)
	if !dst.RecvDone(op) {
		t.Fatal("receive did not complete")
	}

	src.TaggedSend(1, bits, []byte{4, 5})
	var second []byte
	s.mu.Lock()
	if entry, ok := s.eng.Probe(bits, match.FullMask); ok {
		second = entry.Cookie.(*message).data
	}
	s.mu.Unlock()
	if second == nil {
		t.Fatal("no second unexpected message")
	}
	if &first[0] != &second[0] {
		t.Error("second unexpected message did not reuse the pooled buffer")
	}
}

// BenchmarkEagerSteadyState measures the full fabric-level eager cycle
// (post, tagged send, reap) in steady state; with warm pools it runs at
// 0 allocs/op.
func BenchmarkEagerSteadyState(b *testing.B) {
	f := New(INF, 2)
	for i := 0; i < 2; i++ {
		f.Endpoint(i).Bind(newTestMeter(1e9))
	}
	src, dst := f.Endpoint(0), f.Endpoint(1)
	bits := match.MakeBits(1, 0, 3)
	payload := []byte{7}
	op := &RecvOp{Buf: make([]byte, 8)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		op.reset()
		dst.PostRecv(op, bits, match.FullMask)
		src.TaggedSend(1, bits, payload)
		if !dst.RecvDone(op) {
			b.Fatal("receive did not complete")
		}
	}
}
