package fabric

import (
	"bytes"
	"sync"
	"testing"

	"gompi/internal/instr"
	"gompi/internal/match"
	"gompi/internal/metrics"
	"gompi/internal/vtime"
)

// testMeter is a minimal Meter for exercising the fabric directly.
type testMeter struct {
	prof  instr.Profile
	clock *vtime.Clock
	m     metrics.Rank
}

func newTestMeter(hz float64) *testMeter {
	return &testMeter{clock: vtime.NewClock(hz)}
}

func (m *testMeter) Charge(cat instr.Category, n int64) {
	m.prof.Charge(cat, n)
	m.clock.Advance(n)
}
func (m *testMeter) ChargeCycles(cat instr.Category, n int64) {
	m.prof.ChargeCycles(cat, n)
	m.clock.Advance(n)
}
func (m *testMeter) Now() vtime.Time        { return m.clock.Now() }
func (m *testMeter) Sync(t vtime.Time)      { m.clock.Sync(t) }
func (m *testMeter) Metrics() *metrics.Rank { return &m.m }

// newTestFabric builds a fabric with bound meters for each endpoint.
func newTestFabric(t *testing.T, prof Profile, n int) (*Fabric, []*testMeter) {
	t.Helper()
	f := New(prof, n)
	ms := make([]*testMeter, n)
	for i := range ms {
		hz := prof.Hz
		if hz == 0 {
			hz = 1e9
		}
		ms[i] = newTestMeter(hz)
		f.Endpoint(i).Bind(ms[i])
	}
	return f, ms
}

func TestByName(t *testing.T) {
	for _, name := range []string{"ofi", "ucx", "inf"} {
		p, ok := ByName(name)
		if !ok || p.Name != name {
			t.Errorf("ByName(%q) = (%v,%v)", name, p.Name, ok)
		}
	}
	if p, ok := ByName(""); !ok || p.Name != "inf" {
		t.Errorf("ByName(\"\") should default to inf, got (%v,%v)", p.Name, ok)
	}
	if _, ok := ByName("tcp"); ok {
		t.Error("ByName(tcp) should fail")
	}
}

func TestSendThenRecv(t *testing.T) {
	f, _ := newTestFabric(t, OFI, 2)
	bits := match.MakeBits(1, 0, 42)

	f.Endpoint(0).TaggedSend(1, bits, []byte("hello"))

	op := &RecvOp{Buf: make([]byte, 16)}
	f.Endpoint(1).PostRecv(op, match.MakeBits(1, 0, 42), match.FullMask)
	f.Endpoint(1).WaitRecv(op)

	if op.N != 5 || !bytes.Equal(op.Buf[:op.N], []byte("hello")) {
		t.Fatalf("received %q (%d bytes)", op.Buf[:op.N], op.N)
	}
	if op.Src != 0 || op.Tag != 42 || op.Truncated {
		t.Errorf("status = src %d tag %d trunc %v", op.Src, op.Tag, op.Truncated)
	}
}

func TestRecvThenSend(t *testing.T) {
	f, _ := newTestFabric(t, INF, 2)
	op := &RecvOp{Buf: make([]byte, 4)}
	f.Endpoint(1).PostRecv(op, match.MakeBits(1, 0, 7), match.FullMask)
	if f.Endpoint(1).RecvDone(op) {
		t.Fatal("receive completed before any send")
	}
	f.Endpoint(0).TaggedSend(1, match.MakeBits(1, 0, 7), []byte{9, 9})
	f.Endpoint(1).WaitRecv(op)
	if op.N != 2 || op.Buf[0] != 9 {
		t.Fatalf("got %d bytes %v", op.N, op.Buf[:op.N])
	}
}

func TestTruncation(t *testing.T) {
	f, _ := newTestFabric(t, INF, 2)
	f.Endpoint(0).TaggedSend(1, match.MakeBits(1, 0, 1), []byte("long message"))
	op := &RecvOp{Buf: make([]byte, 4)}
	f.Endpoint(1).PostRecv(op, match.MakeBits(1, 0, 1), match.FullMask)
	f.Endpoint(1).WaitRecv(op)
	if !op.Truncated || op.N != 4 {
		t.Errorf("Truncated=%v N=%d, want true/4", op.Truncated, op.N)
	}
}

func TestSenderBufferReuse(t *testing.T) {
	// Eager protocol: sender may scribble on the buffer right after
	// TaggedSend returns.
	f, _ := newTestFabric(t, INF, 2)
	buf := []byte("aaaa")
	f.Endpoint(0).TaggedSend(1, match.MakeBits(1, 0, 0), buf)
	copy(buf, "bbbb")
	op := &RecvOp{Buf: make([]byte, 4)}
	f.Endpoint(1).PostRecv(op, match.MakeBits(1, 0, 0), match.FullMask)
	f.Endpoint(1).WaitRecv(op)
	if string(op.Buf) != "aaaa" {
		t.Errorf("received %q, want the value at injection time", op.Buf)
	}
}

func TestVirtualTimeFlows(t *testing.T) {
	f, ms := newTestFabric(t, OFI, 2)
	ms[0].clock.Advance(10_000) // sender is "ahead"
	f.Endpoint(0).TaggedSend(1, match.MakeBits(1, 0, 0), []byte{1})

	op := &RecvOp{Buf: make([]byte, 1)}
	f.Endpoint(1).PostRecv(op, match.MakeBits(1, 0, 0), match.FullMask)
	f.Endpoint(1).WaitRecv(op)

	// Receiver's clock must land at least one wire latency after the
	// sender's injection point.
	if ms[1].Now() < 10_000+vtime.Time(OFI.WireLatency) {
		t.Errorf("receiver clock %d did not sync past sender injection", ms[1].Now())
	}
	if got := ms[0].prof.Count(instr.Transport); got < OFI.SendInject {
		t.Errorf("sender transport charge %d < SendInject %d", got, OFI.SendInject)
	}
}

func TestInfProfileChargesNothing(t *testing.T) {
	f, ms := newTestFabric(t, INF, 2)
	f.Endpoint(0).TaggedSend(1, match.MakeBits(1, 0, 0), []byte{1})
	op := &RecvOp{Buf: make([]byte, 1)}
	f.Endpoint(1).PostRecv(op, match.MakeBits(1, 0, 0), match.FullMask)
	f.Endpoint(1).WaitRecv(op)
	if ms[0].prof.Count(instr.Transport) != 0 || ms[1].prof.Count(instr.Transport) != 0 {
		t.Error("infinite network charged transport cycles")
	}
}

func TestRecvReapOnce(t *testing.T) {
	f, ms := newTestFabric(t, OFI, 2)
	f.Endpoint(0).TaggedSend(1, match.MakeBits(1, 0, 0), []byte{1})
	op := &RecvOp{Buf: make([]byte, 1)}
	f.Endpoint(1).PostRecv(op, match.MakeBits(1, 0, 0), match.FullMask)
	for !f.Endpoint(1).RecvDone(op) {
	}
	before := ms[1].prof.Count(instr.Transport)
	f.Endpoint(1).RecvDone(op)
	f.Endpoint(1).WaitRecv(op)
	if got := ms[1].prof.Count(instr.Transport); got != before {
		t.Errorf("completion reaped more than once: %d -> %d", before, got)
	}
}

func TestCancelRecvEndpoint(t *testing.T) {
	f, _ := newTestFabric(t, INF, 2)
	op := &RecvOp{Buf: make([]byte, 1)}
	f.Endpoint(1).PostRecv(op, match.MakeBits(1, 0, 3), match.FullMask)
	if !f.Endpoint(1).CancelRecv(op) {
		t.Fatal("cancel of pending recv failed")
	}
	// The late message must land in the unexpected queue, not the
	// cancelled op.
	f.Endpoint(0).TaggedSend(1, match.MakeBits(1, 0, 3), []byte{1})
	if f.Endpoint(1).RecvDone(op) {
		t.Fatal("cancelled receive completed")
	}
}

func TestProbeEndpoint(t *testing.T) {
	f, _ := newTestFabric(t, INF, 2)
	if _, _, _, ok := f.Endpoint(1).Probe(match.MakeBits(1, 0, 5), match.FullMask); ok {
		t.Fatal("probe hit with nothing sent")
	}
	f.Endpoint(0).TaggedSend(1, match.MakeBits(1, 0, 5), []byte("abc"))
	src, tag, size, ok := f.Endpoint(1).Probe(match.MakeBits(1, 0, 5), match.FullMask)
	if !ok || src != 0 || tag != 5 || size != 3 {
		t.Fatalf("probe = (%d,%d,%d,%v)", src, tag, size, ok)
	}
}

func TestActiveMessages(t *testing.T) {
	f, _ := newTestFabric(t, OFI, 2)
	var got []byte
	var gotSrc int
	f.Endpoint(1).RegisterAM(7, func(src int, hdr, payload []byte, _ vtime.Time) {
		gotSrc = src
		got = append(append([]byte(nil), hdr...), payload...)
	})
	f.Endpoint(0).AMSend(1, 7, []byte{0xAB}, []byte("data"))
	if n := f.Endpoint(1).Progress(); n != 1 {
		t.Fatalf("Progress handled %d messages, want 1", n)
	}
	if gotSrc != 0 || string(got) != "\xabdata" {
		t.Fatalf("handler saw src=%d data=%q", gotSrc, got)
	}
}

func TestWaitUntilRunsHandlers(t *testing.T) {
	f, _ := newTestFabric(t, OFI, 2)
	done := false
	f.Endpoint(1).RegisterAM(1, func(int, []byte, []byte, vtime.Time) { done = true })

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		f.Endpoint(1).WaitUntil(func() bool { return done })
	}()
	f.Endpoint(0).AMSend(1, 1, nil, nil)
	wg.Wait()
	if !done {
		t.Fatal("WaitUntil returned without handler running")
	}
}

func TestPutGet(t *testing.T) {
	f, ms := newTestFabric(t, OFI, 2)
	mem := make([]byte, 64)
	key := f.RegisterRegion(1, mem)

	f.Endpoint(0).Put(1, key, 8, []byte{1, 2, 3, 4})
	if !bytes.Equal(mem[8:12], []byte{1, 2, 3, 4}) {
		t.Fatalf("put did not land: %v", mem[8:12])
	}
	if f.RegionArrival(1, key) <= 0 {
		t.Error("region arrival not recorded")
	}
	if ms[0].prof.Count(instr.Transport) < OFI.PutInject {
		t.Error("put did not charge injection")
	}

	buf := make([]byte, 4)
	f.Endpoint(0).Get(1, key, 8, buf)
	if !bytes.Equal(buf, []byte{1, 2, 3, 4}) {
		t.Fatalf("get returned %v", buf)
	}
	f.UnregisterRegion(1, key)
}

func TestPutToUnregisteredPanics(t *testing.T) {
	f, _ := newTestFabric(t, INF, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Put to unregistered region did not panic")
		}
	}()
	f.Endpoint(0).Put(1, 999, 0, []byte{1})
}

func TestRMWAtomicity(t *testing.T) {
	f, ms := newTestFabric(t, INF, 3)
	mem := make([]byte, 1)
	key := f.RegisterRegion(0, mem)
	_ = ms

	const perRank = 100
	var wg sync.WaitGroup
	for r := 1; r <= 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perRank; i++ {
				f.Endpoint(r).RMW(0, key, 0, 1, func(t []byte) { t[0]++ })
			}
		}(r)
	}
	wg.Wait()
	if mem[0] != byte(2*perRank) {
		t.Fatalf("lost updates: got %d, want %d", mem[0], 2*perRank)
	}
}

func TestConcurrentSendsToOneReceiver(t *testing.T) {
	const senders, msgs = 4, 50
	f := New(INF, senders+1)
	ms := make([]*testMeter, senders+1)
	for i := range ms {
		ms[i] = newTestMeter(1e9)
		f.Endpoint(i).Bind(ms[i])
	}

	var wg sync.WaitGroup
	for s := 1; s <= senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				f.Endpoint(s).TaggedSend(0, match.MakeBits(1, s, i), []byte{byte(s)})
			}
		}(s)
	}

	got := 0
	for s := 1; s <= senders; s++ {
		for i := 0; i < msgs; i++ {
			op := &RecvOp{Buf: make([]byte, 1)}
			f.Endpoint(0).PostRecv(op, match.MakeBits(1, s, i), match.FullMask)
			f.Endpoint(0).WaitRecv(op)
			if op.Buf[0] != byte(s) {
				t.Fatalf("message from %d carried %d", s, op.Buf[0])
			}
			got++
		}
	}
	wg.Wait()
	if got != senders*msgs {
		t.Fatalf("received %d, want %d", got, senders*msgs)
	}
}

func TestEndpointOutOfRangePanics(t *testing.T) {
	f := New(INF, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Endpoint(5) did not panic")
		}
	}()
	f.Endpoint(5)
}

func TestRendezvousLatencyCliff(t *testing.T) {
	// Crossing the eager limit must add the RTS/CTS round trip to the
	// arrival time.
	f, ms := newTestFabric(t, OFI, 2)
	small := make([]byte, OFI.EagerLimit)
	big := make([]byte, OFI.EagerLimit+1)

	f.Endpoint(0).TaggedSend(1, match.MakeBits(1, 0, 0), small)
	op1 := &RecvOp{Buf: make([]byte, len(small))}
	f.Endpoint(1).PostRecv(op1, match.MakeBits(1, 0, 0), match.FullMask)
	f.Endpoint(1).WaitRecv(op1)
	eagerArrival := op1.Arrival

	sendAt := ms[0].Now()
	f.Endpoint(0).TaggedSend(1, match.MakeBits(1, 0, 1), big)
	op2 := &RecvOp{Buf: make([]byte, len(big))}
	f.Endpoint(1).PostRecv(op2, match.MakeBits(1, 0, 1), match.FullMask)
	f.Endpoint(1).WaitRecv(op2)

	minRndv := sendAt + vtime.Time(3*OFI.WireLatency) // RTS + CTS + data
	if op2.Arrival < minRndv {
		t.Errorf("rendezvous arrival %d < %d (no handshake delay)", op2.Arrival, minRndv)
	}
	if op2.N != len(big) {
		t.Errorf("rendezvous payload truncated: %d", op2.N)
	}
	_ = eagerArrival
}

func TestEagerBelowLimitNoCliff(t *testing.T) {
	f, ms := newTestFabric(t, OFI, 2)
	data := make([]byte, OFI.EagerLimit)
	start := ms[0].Now()
	f.Endpoint(0).TaggedSend(1, match.MakeBits(1, 0, 0), data)
	op := &RecvOp{Buf: make([]byte, len(data))}
	f.Endpoint(1).PostRecv(op, match.MakeBits(1, 0, 0), match.FullMask)
	f.Endpoint(1).WaitRecv(op)
	maxEager := start + vtime.Time(2*OFI.WireLatency) + vtime.Time(OFI.SendInject) +
		vtime.Time(float64(len(data))*(OFI.InjectPerByte+OFI.WirePerByte))
	if op.Arrival > maxEager {
		t.Errorf("eager message delayed as if rendezvous: arrival %d > %d", op.Arrival, maxEager)
	}
}

func TestEndpointAccessors(t *testing.T) {
	f, _ := newTestFabric(t, OFI, 3)
	if f.Size() != 3 || f.Profile().Name != "ofi" {
		t.Fatalf("fabric accessors: size %d profile %s", f.Size(), f.Profile().Name)
	}
	if f.Endpoint(2).Rank() != 2 {
		t.Fatal("endpoint rank wrong")
	}
	if f.Endpoint(0).MatchSearches() != 0 {
		t.Fatal("fresh endpoint has match searches")
	}
}

func TestDepositLocalAndWake(t *testing.T) {
	f, ms := newTestFabric(t, OFI, 2)
	seq := f.Endpoint(1).EventSeq()
	// A local deposit (shm delivery path) must match posted receives
	// and bump the event counter.
	op := &RecvOp{Buf: make([]byte, 2)}
	f.Endpoint(1).PostRecv(op, match.MakeBits(3, 0, 1), match.FullMask)
	f.Endpoint(1).DepositShm(match.MakeBits(3, 0, 1), 0, []byte{7, 8}, 500)
	if got := f.Endpoint(1).EventSeq(); got <= seq {
		t.Fatal("deposit did not bump event counter")
	}
	if !f.Endpoint(1).RecvDone(op) || op.Buf[0] != 7 || op.Arrival != 500 {
		t.Fatalf("local deposit not delivered: %+v", op)
	}
	if ms[1].Now() < 500 {
		t.Fatal("receiver did not sync to local arrival")
	}
	seq = f.Endpoint(1).EventSeq()
	f.Endpoint(1).Wake()
	if f.Endpoint(1).WaitEvent(seq) <= seq {
		t.Fatal("wake did not release WaitEvent")
	}
}

func TestMProbeEndpoint(t *testing.T) {
	f, _ := newTestFabric(t, INF, 2)
	if _, _, _, _, ok := f.Endpoint(1).MProbe(match.MakeBits(1, 0, 2), match.FullMask); ok {
		t.Fatal("mprobe hit on empty endpoint")
	}
	f.Endpoint(0).TaggedSend(1, match.MakeBits(1, 0, 2), []byte{9, 9})
	src, tag, data, _, ok := f.Endpoint(1).MProbe(match.MakeBits(1, 0, 2), match.FullMask)
	if !ok || src != 0 || tag != 2 || len(data) != 2 {
		t.Fatalf("mprobe = (%d,%d,%v,%v)", src, tag, data, ok)
	}
	// Extracted: a posted receive must NOT match it.
	op := &RecvOp{Buf: make([]byte, 2)}
	f.Endpoint(1).PostRecv(op, match.MakeBits(1, 0, 2), match.FullMask)
	if f.Endpoint(1).RecvDone(op) {
		t.Fatal("extracted message matched a receive")
	}
}

func TestRegionMem(t *testing.T) {
	f, _ := newTestFabric(t, INF, 1)
	mem := []byte{1, 2, 3}
	key := f.RegisterRegion(0, mem)
	got := f.RegionMem(0, key)
	if &got[0] != &mem[0] {
		t.Fatal("RegionMem returned a copy")
	}
}
