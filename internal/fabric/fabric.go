package fabric

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gompi/internal/abort"
	"gompi/internal/instr"
	"gompi/internal/match"
	"gompi/internal/metrics"
	"gompi/internal/stall"
	"gompi/internal/vtime"
)

// Meter is what the fabric charges costs to: the calling rank's
// instruction profile and virtual clock. proc.Rank implements it. The
// fabric only ever charges the meter bound to the endpoint whose owner
// goroutine is making the call, so meters need no synchronization.
type Meter interface {
	// Charge records n MPI-library instructions (and advances the
	// clock by n cycles at CPI 1.0).
	Charge(cat instr.Category, n int64)
	// ChargeCycles records n non-instruction cycles (transport,
	// compute).
	ChargeCycles(cat instr.Category, n int64)
	// Now returns the rank's current virtual time.
	Now() vtime.Time
	// Sync advances the rank's clock to t if t is in the future.
	Sync(t vtime.Time)
	// Metrics returns the rank's observability registry. Send-side
	// counters accrue through the calling endpoint's meter;
	// receive-side counters accrue through the destination endpoint's
	// meter under that endpoint's lock.
	Metrics() *metrics.Rank
}

// Options are the fabric's scale knobs — the on-demand connection
// model of Liu et al. (MPICH2 over InfiniBand) and its measurable
// ablation.
type Options struct {
	// EagerPeers restores all-pairs peer-state materialization at
	// endpoint open (today's eager model, kept as the measurable
	// baseline). Default false: connection state materializes on first
	// send toward a peer.
	EagerPeers bool
	// MaxPeerBytes is the hard per-rank ceiling on modeled per-peer
	// state bytes (connection slots, shm rings). Exceeding it panics
	// the rank — the assertion the lazy model is tested against.
	// 0 means unlimited.
	MaxPeerBytes int64
}

// Fabric is one simulated network connecting n endpoints (one per
// rank), each split into nvci virtual communication interfaces. It owns
// the RDMA memory-region registry.
//
// Endpoints materialize lazily: the constructor allocates only the
// pointer table, and an endpoint's VCI/buffer-pool structures come into
// existence on first use — the owner's Open, a peer's first deposit, or
// a matched receive — via a CAS race any number of first-touchers may
// enter safely.
type Fabric struct {
	prof    Profile
	nvci    int
	opts    Options
	eps     []atomic.Pointer[Endpoint]
	aborted abort.Flag

	// stall is the optional stall watchdog (nil when disabled; all its
	// methods are nil-safe). Park sites register blocked goroutines
	// with it and every event broadcast bumps its activity counter.
	stall *stall.Monitor

	regMu   sync.RWMutex
	regions map[regionKey]*region
	nextKey int
}

type regionKey struct {
	rank int
	key  int
}

// New creates a fabric with n single-VCI endpoints using the given cost
// profile — behaviorally identical to the pre-VCI fabric.
func New(prof Profile, n int) *Fabric { return NewVCI(prof, n, 1) }

// NewVCI creates a fabric whose endpoints each expose nvci virtual
// communication interfaces. nvci below 1 is treated as 1.
func NewVCI(prof Profile, n, nvci int) *Fabric {
	return NewVCIOpt(prof, n, nvci, Options{})
}

// NewVCIOpt is NewVCI with the scale knobs. Construction is O(1) in
// per-endpoint work: no endpoint structure exists until first touch.
func NewVCIOpt(prof Profile, n, nvci int, opts Options) *Fabric {
	if nvci < 1 {
		nvci = 1
	}
	return &Fabric{
		prof:    prof,
		nvci:    nvci,
		opts:    opts,
		eps:     make([]atomic.Pointer[Endpoint], n),
		regions: make(map[regionKey]*region),
	}
}

// Opts returns the fabric's scale knobs.
func (f *Fabric) Opts() Options { return f.opts }

// Profile returns the fabric's cost profile.
func (f *Fabric) Profile() Profile { return f.prof }

// Size returns the number of endpoints.
func (f *Fabric) Size() int { return len(f.eps) }

// NVCI returns the per-endpoint virtual-interface count.
func (f *Fabric) NVCI() int { return f.nvci }

// VCIFor is the deterministic traffic-to-VCI hash over the fields both
// sides of a transfer agree on: communicator context and tag, never the
// source (so MPI_ANY_SOURCE receives with an exact tag still name one
// VCI). Contexts are allocated in pt2pt/collective pairs (even/odd), so
// the pair index — not the raw context — feeds the hash, keeping
// consecutive communicators spread across VCIs.
func (f *Fabric) VCIFor(bits match.Bits) int {
	if f.nvci == 1 {
		return 0
	}
	h := (uint32(bits.Context())>>1)*0x9E3779B1 ^ uint32(bits.Tag())*0x85EBCA6B
	return int(h>>16) % f.nvci
}

// VCIForCtx maps a whole communicator onto one private VCI — the
// hint-refined mapping: a communicator asserting it never uses
// wildcards gets every tag on a single interface, so even its probes
// and receives never touch the cross-VCI path.
func (f *Fabric) VCIForCtx(ctx uint16) int {
	if f.nvci == 1 {
		return 0
	}
	return int(ctx>>1) % f.nvci
}

// SetStall attaches the stall watchdog. Must be called before
// communication starts; nil detaches.
func (f *Fabric) SetStall(m *stall.Monitor) { f.stall = m }

// Abort marks the fabric dead and wakes every endpoint: blocked waits
// panic with abort.ErrWorldAborted, which the rank runtime converts to
// errors. Called when any rank fails, so the original error surfaces
// instead of a hang.
func (f *Fabric) Abort() {
	f.aborted.Raise()
	for i := range f.eps {
		// Never-materialized endpoints have no waiters to wake.
		if ep := f.eps[i].Load(); ep != nil {
			ep.Wake()
		}
	}
}

// Aborted reports whether Abort was called.
func (f *Fabric) Aborted() bool { return f.aborted.Raised() }

// Endpoint returns rank's endpoint, materializing it on first touch.
// Any goroutine may be the first toucher (the owner at Open, a peer
// depositing the first message); losers of the CAS race discard their
// candidate and adopt the winner's.
func (f *Fabric) Endpoint(rank int) *Endpoint {
	if rank < 0 || rank >= len(f.eps) {
		panic(fmt.Sprintf("fabric: endpoint %d out of range [0,%d)", rank, len(f.eps)))
	}
	if ep := f.eps[rank].Load(); ep != nil {
		return ep
	}
	ep := newEndpoint(f, rank, f.nvci)
	if f.eps[rank].CompareAndSwap(nil, ep) {
		return ep
	}
	return f.eps[rank].Load()
}

// peek returns rank's endpoint if it has materialized, nil otherwise —
// for observers (dumps, abort) that must not trigger materialization.
func (f *Fabric) peek(rank int) *Endpoint { return f.eps[rank].Load() }

// checkPeerCeiling enforces the MaxPeerBytes assertion: total is the
// rank's modeled per-peer state after the latest materialization.
func (f *Fabric) checkPeerCeiling(rank int, total int64) {
	if f.opts.MaxPeerBytes > 0 && total > f.opts.MaxPeerBytes {
		panic(fmt.Sprintf("fabric: rank %d per-peer state %d bytes exceeds MaxPeerBytes %d",
			rank, total, f.opts.MaxPeerBytes))
	}
}
